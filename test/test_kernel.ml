(* Tests for the LCF-style kernel: rules compute correct conclusions,
   side conditions reject unsound applications, derivations re-validate,
   and the reflective passes (lifting, simplification, discharge) preserve
   semantics on concrete runs. *)

module B = Ac_bignum
module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

let ctx = Rules.empty_ctx Layout.empty
let u32 = Ty.Tword (Ty.Unsigned, Ty.W32)
let s32 = Ty.Tword (Ty.Signed, Ty.W32)

let wctx vars = { ctx with Rules.wvars = vars }

let expect_fail name f =
  match f () with
  | exception Thm.Kernel_error _ -> ()
  | _thm -> Alcotest.failf "%s: kernel accepted an unsound rule application" name

let concl_wval thm =
  match Thm.concl thm with
  | J.Abs_w_val (p, f, a, c) -> (p, f, a, c)
  | _ -> Alcotest.fail "expected abs_w_val"

let rule_tests =
  [
    ( "w_var requires registration",
      fun () ->
        expect_fail "unregistered" (fun () -> Thm.by ctx (Rules.W_var "x") []);
        let c = wctx [ ("x", (Ty.Unsigned, Ty.W32)) ] in
        let _, f, a, conc = concl_wval (Thm.by c (Rules.W_var "x") []) in
        Alcotest.(check bool) "conv unat" true (J.conv_equal f (J.Cunat Ty.W32));
        Alcotest.(check bool) "abstract side ideal" true (E.equal a (E.Var ("x", Ty.Tnat)));
        Alcotest.(check bool) "concrete side word" true (E.equal conc (E.Var ("x", u32))) );
    ( "w_id rejects expressions over abstracted variables",
      fun () ->
        let c = wctx [ ("x", (Ty.Unsigned, Ty.W32)) ] in
        expect_fail "w_id" (fun () -> Thm.by c (Rules.W_id (E.Var ("x", u32))) []);
        (* but accepts anything else *)
        ignore (Thm.by c (Rules.W_id (E.Var ("y", u32))) []) );
    ( "w_sum collects the no-overflow precondition (Table 3 WSUM)",
      fun () ->
        let c = wctx [ ("a", (Ty.Unsigned, Ty.W32)); ("b", (Ty.Unsigned, Ty.W32)) ] in
        let ta = Thm.by c (Rules.W_var "a") [] in
        let tb = Thm.by c (Rules.W_var "b") [] in
        let p, _, a, _ = concl_wval (Thm.by c (Rules.W_binop (E.Add, Ty.Unsigned, Ty.W32)) [ ta; tb ]) in
        Alcotest.(check bool) "sum" true
          (E.equal a (E.Binop (E.Add, E.Var ("a", Ty.Tnat), E.Var ("b", Ty.Tnat))));
        let text = Ac_lang.Pretty.expr_to_string p in
        Alcotest.(check bool) "UINT_MAX bound" true
          (Astring.String.is_infix ~affix:"4294967295" text) );
    ( "w_sub requires the monus precondition b <= a",
      fun () ->
        let c = wctx [ ("a", (Ty.Unsigned, Ty.W32)); ("b", (Ty.Unsigned, Ty.W32)) ] in
        let ta = Thm.by c (Rules.W_var "a") [] in
        let tb = Thm.by c (Rules.W_var "b") [] in
        let p, _, _, _ = concl_wval (Thm.by c (Rules.W_binop (E.Sub, Ty.Unsigned, Ty.W32)) [ ta; tb ]) in
        Alcotest.(check bool) "b <= a" true
          (Astring.String.is_infix ~affix:"b ≤ a" (Ac_lang.Pretty.expr_to_string p)) );
    ( "signed arithmetic collects INT_MIN/INT_MAX bounds",
      fun () ->
        let c = wctx [ ("a", (Ty.Signed, Ty.W32)) ] in
        let ta = Thm.by c (Rules.W_var "a") [] in
        let p, _, _, _ =
          concl_wval (Thm.by c (Rules.W_binop (E.Mul, Ty.Signed, Ty.W32)) [ ta; ta ])
        in
        let text = Ac_lang.Pretty.expr_to_string p in
        Alcotest.(check bool) "INT_MIN" true (Astring.String.is_infix ~affix:"-2147483648" text);
        Alcotest.(check bool) "INT_MAX" true (Astring.String.is_infix ~affix:"2147483647" text) );
    ( "w_binop rejects mixed-conv premises",
      fun () ->
        let c = wctx [ ("a", (Ty.Unsigned, Ty.W32)); ("s", (Ty.Signed, Ty.W32)) ] in
        let ta = Thm.by c (Rules.W_var "a") [] in
        let ts = Thm.by c (Rules.W_var "s") [] in
        expect_fail "mixed" (fun () ->
            Thm.by c (Rules.W_binop (E.Add, Ty.Unsigned, Ty.W32)) [ ta; ts ]) );
    ( "ws_bind rejects pattern/conv mismatches",
      fun () ->
        let c = wctx [ ("x", (Ty.Unsigned, Ty.W32)) ] in
        (* Left side returns a word-typed Cid value, but the pattern is
           registered so pat_conv = unat: the kernel must refuse. *)
        let l =
          Thm.by c Rules.Ws_ret [ Thm.by c (Rules.W_id (E.Var ("y", u32))) [] ]
        in
        let r = Thm.by c Rules.Ws_ret [ Thm.by c (Rules.W_var "x") [] ] in
        expect_fail "mismatch" (fun () ->
            Thm.by c (Rules.Ws_bind (M.Pvar ("x", u32))) [ l; r ]) );
    ( "hv_read adds the validity side condition (Table 4)",
      fun () ->
        let cty = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let p = E.Var ("p", Ty.Tptr cty) in
        let prem = Thm.by ctx (Rules.Hv_id p) [] in
        let thm = Thm.by ctx (Rules.Hv_read cty) [ prem ] in
        match Thm.concl thm with
        | J.Abs_h_val (pre, a, c) ->
          Alcotest.(check bool) "is_valid" true (E.equal pre (E.IsValid (cty, p)));
          Alcotest.(check bool) "typed read" true (E.equal a (E.TypedRead (cty, p)));
          Alcotest.(check bool) "concrete read" true (E.equal c (E.HeapRead (cty, p)))
        | _ -> Alcotest.fail "wrong judgment" );
    ( "hv_id rejects byte-heap reads",
      fun () ->
        let cty = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let e = E.HeapRead (cty, E.Var ("p", Ty.Tptr cty)) in
        expect_fail "hv_id" (fun () -> Thm.by ctx (Rules.Hv_id e) []) );
    ( "eq_trans rejects mismatched middles",
      fun () ->
        let a = M.Return (E.int_e 1) and b = M.Return (E.int_e 2) in
        let t1 = Thm.by ctx (Rules.Eq_refl a) [] in
        let t2 = Thm.by ctx (Rules.Eq_refl b) [] in
        expect_fail "trans" (fun () -> Thm.by ctx Rules.Eq_trans [ t1; t2 ]) );
    ( "rw_bind_assoc rejects captures",
      fun () ->
        let x = ("x", Ty.Tint) in
        let inner = M.Bind (M.Return (E.int_e 1), M.Pvar ("x", Ty.Tint), M.Return (E.Var ("x", Ty.Tint))) in
        ignore inner;
        (* (do x <- A; B od) >>= λy. C where C mentions x: must fail *)
        expect_fail "assoc" (fun () ->
            Thm.by ctx
              (Rules.Rw_bind_assoc
                 ( M.Return (E.int_e 1),
                   M.Pvar (fst x, snd x),
                   M.Return (E.Var ("x", Ty.Tint)),
                   M.Pvar ("y", Ty.Tint),
                   M.Return (E.Var ("x", Ty.Tint)) ))
              []) );
    ( "rw_return_bind alpha-renames capturing binders",
      fun () ->
        (* do v <- return x; do x <- return 1; return (v, x) od od:
           inlining v := x must not capture under the inner binder. *)
        let inner =
          M.Bind
            ( M.Return (E.int_e 1),
              M.Pvar ("x", Ty.Tint),
              M.Return (E.Tuple [ E.Var ("v", Ty.Tint); E.Var ("x", Ty.Tint) ]) )
        in
        let thm =
          Thm.by ctx
            (Rules.Rw_return_bind (M.Return (E.Var ("x", Ty.Tint)), M.Pvar ("v", Ty.Tint), inner))
            []
        in
        match Thm.concl thm with
        | J.Equiv (abs, _) -> (
          match abs with
          | M.Bind (_, M.Pvar (renamed, _), M.Return (E.Tuple [ E.Var (v1, _); E.Var (v2, _) ]))
            ->
            Alcotest.(check string) "outer var substituted" "x" v1;
            Alcotest.(check bool) "binder renamed" true (renamed <> "x");
            Alcotest.(check string) "inner use follows binder" renamed v2
          | _ -> Alcotest.fail "unexpected shape")
        | _ -> Alcotest.fail "expected equivalence" );
    ( "guard discharge drops established conditions only",
      fun () ->
        let g = E.Binop (E.Lt, E.Var ("x", Ty.Tnat), E.nat_e 5) in
        let m =
          M.Bind (M.Guard (Ir.Unsigned_overflow, g), M.Pwild,
                  M.Bind (M.Guard (Ir.Unsigned_overflow, g), M.Pwild, M.Return E.unit_e))
        in
        let thm = Thm.by ctx (Rules.Rw_discharge m) [] in
        (match Thm.concl thm with
        | J.Equiv (abs, _) ->
          let count = ref 0 in
          let rec go m =
            match m with
            | M.Guard _ -> incr count
            | M.Bind (a, _, b) -> go a; go b
            | _ -> ()
          in
          go abs;
          Alcotest.(check int) "one guard left" 1 !count
        | _ -> Alcotest.fail "expected equivalence");
        (* a heap write between heap-reading guards must block discharge *)
        let hg =
          E.Binop (E.Eq, E.TypedRead (Ty.Cword (Ty.Unsigned, Ty.W32), E.Var ("p", Ty.Tptr (Ty.Cword (Ty.Unsigned, Ty.W32)))), E.word_e Ty.Unsigned Ty.W32 0)
        in
        let cty = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let m2 =
          M.Bind (M.Guard (Ir.Unsigned_overflow, hg), M.Pwild,
                  M.Bind (M.Modify [ M.Typed_write (cty, E.Var ("p", Ty.Tptr cty), E.word_e Ty.Unsigned Ty.W32 1) ], M.Pwild,
                          M.Bind (M.Guard (Ir.Unsigned_overflow, hg), M.Pwild, M.Return E.unit_e)))
        in
        match Thm.concl (Thm.by ctx (Rules.Rw_discharge m2) []) with
        | J.Equiv (abs, _) ->
          let count = ref 0 in
          let rec go m =
            match m with
            | M.Guard _ -> incr count
            | M.Bind (a, _, b) -> go a; go b
            | _ -> ()
          in
          go abs;
          Alcotest.(check int) "both guards kept" 2 !count
        | _ -> Alcotest.fail "expected equivalence" );
    ( "derivation checker rejects tampered conclusions",
      fun () ->
        (* Thm.t is abstract: we check instead that check accepts valid
           derivations and that a wrong-ctx re-check fails for w_var. *)
        let c = wctx [ ("x", (Ty.Unsigned, Ty.W32)) ] in
        let thm = Thm.by c (Rules.W_var "x") [] in
        Alcotest.(check bool) "valid in its ctx" true (Thm.check c thm = Ok ());
        Alcotest.(check bool) "invalid without registration" true (Thm.check ctx thm <> Ok ()) );
    ( "custom rules are consulted by name",
      fun () ->
        Rules.register_custom_rule "test_rule" (fun _ _ ->
            Result.ok (J.Abs_w_val (E.true_e, J.Cid, E.int_e 1, E.int_e 1)));
        ignore (Thm.by ctx (Rules.W_custom "test_rule") []);
        expect_fail "unknown" (fun () -> Thm.by ctx (Rules.W_custom "no_such_rule") []) );
  ]

let suite = List.map (fun (n, f) -> Alcotest.test_case n `Quick f) rule_tests
