(* End-to-end tests of the AutoCorres pipeline: output shapes (matching the
   paper's figures), kernel re-validation, and differential refinement
   testing of the generated abstractions against the Simpl semantics. *)

module B = Ac_bignum
module W = Ac_word
module Ty = Ac_lang.Ty
module Value = Ac_lang.Value
module M = Ac_monad.M
module Mprint = Ac_monad.Mprint
module Driver = Autocorres.Driver
module Refine_test = Autocorres.Refine_test

let contains text needle = Astring.String.is_infix ~affix:needle text

let max_c = "int max(int a, int b) {\n  if (a < b)\n    return b;\n  return a;\n}\n"

let gcd_c =
  "unsigned gcd(unsigned a, unsigned b) {\n\
  \  while (b != 0u) { unsigned t = b; b = a % b; a = t; }\n\
  \  return a;\n}\n"

let swap_c = "void swap(unsigned *a, unsigned *b) { unsigned t = *a; *a = *b; *b = t; }"

let reverse_c =
  "struct node { struct node *next; unsigned data; };\n\
   struct node *reverse(struct node *list) {\n\
  \  struct node *rev = NULL;\n\
  \  while (list) {\n\
  \    struct node *next = list->next;\n\
  \    list->next = rev; rev = list; list = next;\n\
  \  }\n\
  \  return rev;\n}\n"

let schorr_waite_c =
  "struct node { struct node *l; struct node *r; unsigned m; unsigned c; };\n\
   void schorr_waite(struct node *root) {\n\
  \  struct node *t = root; struct node *p = NULL; struct node *q;\n\
  \  while (p != NULL || (t != NULL && !t->m)) {\n\
  \    if (t == NULL || t->m) {\n\
  \      if (p->c) { q = t; t = p; p = p->r; t->r = q; }\n\
  \      else { q = t; t = p->r; p->r = p->l; p->l = q; p->c = 1u; }\n\
  \    } else { q = p; p = t; t = t->l; p->l = q; p->m = 1u; p->c = 0u; }\n\
  \  }\n}\n"

let fact_c =
  "unsigned fact(unsigned n) { if (n == 0u) return 1u; unsigned r; r = fact(n - 1u); \
   return n * r; }"

let mid_c = "unsigned mid(unsigned l, unsigned r) { unsigned m = (l + r) / 2u; return m; }"

let field_c =
  "struct pair { int fst; int snd; };\n\
   int swap_fields(struct pair *p) { int t = p->fst; p->fst = p->snd; p->snd = t; return \
   p->fst; }"

let breaks_c =
  "int first_above(int *a, int n, int limit) {\n\
  \  int i = 0; int found = 0 - 1;\n\
  \  while (i < n) { if (a[i] > limit) { found = i; break; } i = i + 1; }\n\
  \  return found;\n}\n"

let globals_c =
  "unsigned counter;\n\
   void bump(unsigned by) { counter = counter + by; }\n\
   unsigned twice(unsigned x) { bump(x); bump(x); return counter; }\n"

let memset_c =
  "void my_memset(unsigned char *p, unsigned char v, unsigned n) {\n\
  \  unsigned i = 0u;\n\
  \  while (i < n) { p[i] = v; i = i + 1u; }\n}\n"

let corpus =
  [
    ("max", max_c); ("gcd", gcd_c); ("swap", swap_c); ("reverse", reverse_c);
    ("schorr_waite", schorr_waite_c); ("fact", fact_c); ("mid", mid_c);
    ("fields", field_c); ("breaks", breaks_c); ("globals", globals_c);
    ("memset", memset_c);
  ]

let final_text res fname =
  match Driver.find_result res fname with
  | Some fr -> Mprint.func_to_string fr.Driver.fr_final
  | None -> Alcotest.fail ("no result for " ^ fname)

let shape_tests =
  [
    ( "max abstracts to the paper's output (Fig 2)",
      fun () ->
        let res = Driver.run max_c in
        let out = final_text res "max" in
        let squeeze s =
          String.concat " "
            (List.filter (fun w -> w <> "") (String.split_on_char ' '
               (String.concat " " (String.split_on_char '\n' s))))
        in
        Alcotest.(check string) "max'" "max' a b ≡ return (if a < b then b else a)"
          (squeeze out) );
    ( "swap with heap abstraction matches Fig 5",
      fun () ->
        let options =
          { Driver.default_options with
            defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } }
        in
        let res = Driver.run ~options swap_c in
        let out = final_text res "swap" in
        List.iter
          (fun needle -> Alcotest.(check bool) needle true (contains out needle))
          [ "guard (λs. is_valid_w32 s a)"; "guard (λs. is_valid_w32 s b)";
            "s[a := s[b]]"; "s[b := t]"; "t ← gets (λs. s[a])" ];
        (* exactly two validity guards survive de-duplication, as in Fig 5 *)
        let count_guards s =
          let rec go i n =
            match Astring.String.find_sub ~start:i ~sub:"guard" s with
            | Some j -> go (j + 1) (n + 1)
            | None -> n
          in
          go 0 0
        in
        Alcotest.(check int) "two guards" 2 (count_guards out) );
    ( "swap without heap abstraction keeps the byte-level model (Fig 3)",
      fun () ->
        let options =
          { Driver.default_options with
            defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = false } }
        in
        let res = Driver.run ~options swap_c in
        let out = final_text res "swap" in
        Alcotest.(check bool) "ptr_aligned" true (contains out "ptr_aligned");
        Alcotest.(check bool) "byte-level read" true (contains out "read[u32]");
        Alcotest.(check bool) "no typed heap" false (contains out "is_valid") );
    ( "gcd abstracts to ideal arithmetic",
      fun () ->
        let res = Driver.run gcd_c in
        let out = final_text res "gcd" in
        Alcotest.(check bool) "ideal mod" true (contains out "a mod b");
        Alcotest.(check bool) "no word mod" false (contains out "modw32");
        Alcotest.(check bool) "guard discharged" false (contains out "guard") );
    ( "midpoint gains an overflow guard (Sec 3.2)",
      fun () ->
        let res = Driver.run mid_c in
        let out = final_text res "mid" in
        Alcotest.(check bool) "overflow guard" true (contains out "l + r ≤ 4294967295");
        Alcotest.(check bool) "ideal div" true (contains out "l + r) div 2") );
    ( "reverse output matches Fig 6's structure",
      fun () ->
        let res = Driver.run reverse_c in
        let out = final_text res "reverse" in
        List.iter
          (fun needle -> Alcotest.(check bool) needle true (contains out needle))
          [ "whileLoop"; "is_valid_node_C"; "s[list].next"; "(|next := rev|)"; "NULL" ] );
    ( "pipeline skips nothing on the corpus",
      fun () ->
        List.iter
          (fun (name, src) ->
            let res = Driver.run src in
            List.iter
              (fun fr ->
                List.iter
                  (fun (phase, why) ->
                    Alcotest.failf "%s/%s skipped %s: %s" name fr.Driver.fr_name phase why)
                  fr.Driver.fr_skipped)
              res.Driver.funcs)
          corpus );
  ]

let kernel_tests =
  [
    ( "all derivations re-validate on the corpus",
      fun () ->
        List.iter
          (fun (name, src) ->
            let res = Driver.run src in
            match Driver.check_all res with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" name e)
          corpus );
    ( "every function gets an end-to-end Fn_refines chain",
      fun () ->
        List.iter
          (fun (name, src) ->
            let res = Driver.run src in
            List.iter
              (fun fr ->
                match fr.Driver.fr_chain with
                | Some _ -> ()
                | None -> Alcotest.failf "%s/%s: no chain" name fr.Driver.fr_name)
              res.Driver.funcs)
          corpus );
    ( "derivations are substantial (not vacuous)",
      fun () ->
        let res = Driver.run reverse_c in
        let fr = Option.get (Driver.find_result res "reverse") in
        Alcotest.(check bool) "l1 thm > 10 rules" true
          (Ac_kernel.Thm.size fr.Driver.fr_l1_thm > 10);
        Alcotest.(check bool) "wa thm > 10 rules" true
          (match fr.Driver.fr_wa_thm with
          | Some t -> Ac_kernel.Thm.size t > 10
          | None -> false) );
  ]

let differential_tests =
  List.map
    (fun (name, src) ->
      ( Printf.sprintf "refinement holds on random states: %s" name,
        fun () ->
          let res = Driver.run src in
          let report = Refine_test.check_program ~cases:60 res in
          (match report.Refine_test.violations with
          | [] -> ()
          | (f, d) :: _ -> Alcotest.failf "%s.%s: %s" name f d);
          Alcotest.(check bool) "some cases executed" true (report.Refine_test.agreed > 0) ))
    corpus

let exec_tests =
  [
    ( "abstracted max computes max over ideal integers",
      fun () ->
        let res = Driver.run max_c in
        let vi n = Value.Vint (B.of_int n) in
        match
          Ac_monad.Interp.run_func res.Driver.final_prog ~fuel:1000
            Ac_simpl.State.empty "max" [ vi 3; vi 7 ]
        with
        | Ac_monad.Interp.Returns (v, _) ->
          Alcotest.(check string) "max 3 7" "7" (Value.to_string v)
        | _ -> Alcotest.fail "execution failed" );
    ( "abstracted gcd equals Euclid on naturals",
      fun () ->
        let res = Driver.run gcd_c in
        let vn n = Value.vnat (B.of_int n) in
        List.iter
          (fun (a, b, expect) ->
            match
              Ac_monad.Interp.run_func res.Driver.final_prog ~fuel:10000
                Ac_simpl.State.empty "gcd" [ vn a; vn b ]
            with
            | Ac_monad.Interp.Returns (v, _) ->
              Alcotest.(check string) "gcd" (string_of_int expect) (Value.to_string v)
            | _ -> Alcotest.fail "execution failed")
          [ (54, 24, 6); (17, 5, 1); (0, 9, 9); (9, 0, 9) ] );
    ( "recursive fact abstracts and runs",
      fun () ->
        let res = Driver.run fact_c in
        let vn n = Value.vnat (B.of_int n) in
        match
          Ac_monad.Interp.run_func res.Driver.final_prog ~fuel:10000
            Ac_simpl.State.empty "fact" [ vn 5 ]
        with
        | Ac_monad.Interp.Returns (v, _) ->
          Alcotest.(check string) "5!" "120" (Value.to_string v)
        | Ac_monad.Interp.Fails m -> Alcotest.fail ("fails: " ^ m)
        | _ -> Alcotest.fail "execution failed" );
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    (shape_tests @ kernel_tests @ exec_tests @ differential_tests)
