(* Tests for the automatic prover: linear integer arithmetic, congruence
   closure, select/store (split-heap) reasoning, and the word-vs-ideal
   asymmetry the paper builds on. *)

module B = Ac_bignum
open Ac_prover
open Term

let x = Var ("x", Sint)
let y = Var ("y", Sint)
let z = Var ("z", Sint)
let l = Var ("l", Sint)
let r = Var ("r", Sint)
let h = Var ("h", Sarr Sint)
let p = Var ("p", Sint)
let q = Var ("q", Sint)

let assert_proved ?hyps name goal =
  match fst (Solver.prove ?hyps goal) with
  | Solver.Proved -> ()
  | Solver.Refuted model ->
    Alcotest.failf "%s: refuted (%s)" name
      (String.concat ", "
         (List.map
            (fun (v, value) ->
              Printf.sprintf "%s=%s" v
                (match value with
                | Term.Vint n -> B.to_string n
                | Term.Vbool b -> string_of_bool b
                | Term.Varr _ -> "<array>"))
            model))
  | Solver.Unknown _ -> Alcotest.failf "%s: unknown" name

let assert_not_proved ?hyps name goal =
  match fst (Solver.prove ?hyps goal) with
  | Solver.Proved -> Alcotest.failf "%s: unexpectedly proved" name
  | _ -> ()

let assert_refuted ?hyps name goal =
  match fst (Solver.prove ?hyps goal) with
  | Solver.Refuted _ -> ()
  | Solver.Proved -> Alcotest.failf "%s: unexpectedly proved" name
  | Solver.Unknown _ -> Alcotest.failf "%s: no countermodel found" name

let uint_max = Int (B.pred (B.pow2 32))
let pow32 = Int (B.pow2 32)

let la_tests =
  [
    ( "transitivity of <",
      fun () -> assert_proved "lt trans" ~hyps:[ lt_t x y; lt_t y z ] (lt_t x z) );
    ( "strict chain tightening",
      fun () ->
        (* x < y < x + 2 over the integers forces y = x + 1 *)
        assert_proved "tight" ~hyps:[ lt_t x y; lt_t y (add_t x (int_of 2)) ]
          (eq_t y (add_t x one)) );
    ( "unsat detection",
      fun () ->
        assert_proved "bounds" ~hyps:[ le_t (int_of 6) x; le_t x (int_of 5) ] ff );
    ( "equality substitution",
      fun () ->
        assert_proved "subst" ~hyps:[ eq_t x (add_t y one); le_t z y ] (lt_t z x) );
    ( "coefficient tightening (omega-style)",
      fun () ->
        (* 2x = 2y + 1 has no integer solution *)
        assert_proved "parity"
          ~hyps:[ eq_t (mul_t (int_of 2) x) (add_t (mul_t (int_of 2) y) one) ]
          ff );
    ( "not valid goals are not proved",
      fun () -> assert_not_proved "x<y" ~hyps:[ le_t x y ] (lt_t x y) );
  ]

let cc_tests =
  [
    ( "congruence of unary functions",
      fun () ->
        let f t = App (Uf "f", [ t ]) in
        assert_proved "cong" ~hyps:[ eq_t x y ] (eq_t (f x) (f y)) );
    ( "transitive equality chains",
      fun () ->
        assert_proved "chain"
          ~hyps:[ eq_t (App (Uf "g", [ x ])) y; eq_t x z ]
          (eq_t (App (Uf "g", [ z ])) y) );
    ( "disequality propagation",
      fun () ->
        assert_proved "diseq"
          ~hyps:[ eq_t x y; not_t (eq_t y z) ]
          (not_t (eq_t x z)) );
  ]

let heap_tests =
  [
    ( "read over matching write",
      fun () -> assert_proved "rw" (eq_t (select_t (store_t h p x) p) x) );
    ( "read over distinct write",
      fun () ->
        assert_proved "ro"
          ~hyps:[ not_t (eq_t p q) ]
          (eq_t (select_t (store_t h p x) q) (select_t h q)) );
    ( "swap is correct on the split heap",
      fun () ->
        (* h2 = h[p := h q][q := h p]  ==>  h2 p = h q  and  h2 q = h p,
           both when p = q and when p <> q (the paper's swap statement) *)
        let h2 = store_t (store_t h p (select_t h q)) q (select_t h p) in
        assert_proved "swap q" (eq_t (select_t h2 q) (select_t h p));
        assert_proved "swap p"
          ~hyps:[ not_t (eq_t p q) ]
          (eq_t (select_t h2 p) (select_t h q));
        (* aliasing case: p = q still swaps correctly *)
        assert_proved "swap aliased" ~hyps:[ eq_t p q ]
          (eq_t (select_t h2 p) (select_t h q)) );
    ( "suzuki's challenge on split heaps (Sec 4.3)",
      fun () ->
        (* w->next = x; x->next = y; y->next = z; x->next = z;
           w->data = 1; x->data = 2; y->data = 3; z->data = 4;
           return w->next->next->data;   == 4  given distinctness *)
        let w = Var ("w", Sint)
        and xv = Var ("xv", Sint)
        and yv = Var ("yv", Sint)
        and zv = Var ("zv", Sint) in
        let next0 = Var ("next", Sarr Sint) and data0 = Var ("data", Sarr Sint) in
        let next1 = store_t next0 w xv in
        let next2 = store_t next1 xv yv in
        let next3 = store_t next2 yv zv in
        let next4 = store_t next3 xv zv in
        let data1 = store_t data0 w one in
        let data2 = store_t data1 xv (int_of 2) in
        let data3 = store_t data2 yv (int_of 3) in
        let data4 = store_t data3 zv (int_of 4) in
        let distinct =
          [ not_t (eq_t w xv); not_t (eq_t w yv); not_t (eq_t w zv);
            not_t (eq_t xv yv); not_t (eq_t xv zv); not_t (eq_t yv zv) ]
        in
        let result = select_t data4 (select_t next4 (select_t next4 w)) in
        assert_proved "suzuki" ~hyps:distinct (eq_t result (int_of 4)) );
  ]

(* The footnote-2 benchmark: the midpoint VC is automatic on ℕ but not on
   32-bit words. *)
let footnote2_tests =
  [
    ( "midpoint on naturals is automatic",
      fun () ->
        let mid = App (Div, [ add_t l r; int_of 2 ]) in
        assert_proved "mid"
          ~hyps:[ le_t zero l; le_t zero r; lt_t l r ]
          (and_t (le_t l mid) (lt_t mid r)) );
    ( "midpoint on words is refuted without the overflow precondition",
      fun () ->
        (* words modelled by their unsigned values with wraparound *)
        let mid = App (Div, [ App (Mod, [ add_t l r; pow32 ]); int_of 2 ]) in
        assert_refuted "wmid"
          ~hyps:[ le_t zero l; le_t l uint_max; le_t zero r; le_t r uint_max; lt_t l r ]
          (and_t (le_t l mid) (lt_t mid r)) );
    ( "midpoint on words with the overflow precondition is automatic",
      fun () ->
        let mid = App (Div, [ add_t l r; int_of 2 ]) in
        (* unat l + unat r <= UINT_MAX removes the mod, as word abstraction's
           guard does *)
        assert_proved "wmid ok"
          ~hyps:
            [ le_t zero l; le_t l uint_max; le_t zero r; le_t r uint_max; lt_t l r;
              le_t (add_t l r) uint_max ]
          (and_t (le_t l mid) (lt_t mid r)) );
  ]

let simp_tests =
  [
    ( "linear canonicalisation",
      fun () ->
        let a = Simp.normalize (add_t (add_t x y) (sub_t x y)) in
        Alcotest.(check string) "2x" "(* 2 x)" (Term.to_string a) );
    ( "comparisons normalise to one side",
      fun () ->
        let a = Simp.normalize (lt_t (add_t x one) (add_t x (int_of 3))) in
        Alcotest.(check string) "true" "true" (Term.to_string a) );
    ( "select over store chains",
      fun () ->
        let t = select_t (store_t (store_t h p x) q y) q in
        Alcotest.(check string) "y" "y" (Term.to_string (Simp.normalize t)) );
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    (la_tests @ cc_tests @ heap_tests @ footnote2_tests @ simp_tests)
