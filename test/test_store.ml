(* PR 4's persistent proof store: content-keyed invalidation, kernel
   replay, and the trust story.

   The properties pinned here are the ones the store's soundness argument
   stands on:

   - a warm (replayed) run is observably identical to a cold run — same
     programs, levels, skip lists, diagnostics;
   - invalidation tracks every key component: the function's own source,
     the sources of its transitive callees (through mutual-recursion
     cycles), the driver option vector, and the ruleset tag;
   - a corrupted entry (bit flip) is rejected before deserialization and
     degrades to full translation — it can never mint a theorem;
   - a digest-valid but *wrong* entry (a forged certificate recorded from
     a different program) fails kernel replay / source anchoring and
     degrades the same way. *)

module Driver = Autocorres.Driver
module Diag = Autocorres.Diag
module Store = Ac_store.Store
module Trace = Ac_store.Trace
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment
module Mprint = Ac_monad.Mprint
module Csources = Ac_cases.Csources

(* ------------------------------------------------------------------ *)
(* Helpers. *)

let opts = { Driver.default_options with Driver.keep_going = true }

let fresh_dir () =
  let d = Filename.temp_file "accstore" ".d" in
  Sys.remove d;
  d

let open_store ?tag dir =
  match Store.open_ ?tag ~dir () with
  | Ok st -> st
  | Error m -> Alcotest.fail m

(* A fresh handle per run so [store_hits]/[store_misses] count one run. *)
let run ?tag ~dir ?(options = opts) src =
  Driver.run ~options ~store:(open_store ?tag dir) src

(* Everything the caller can observe (the same fingerprint the --jobs
   differential uses). *)
let fingerprint (res : Driver.result) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun fr ->
      Buffer.add_string b fr.Driver.fr_name;
      Buffer.add_string b (Driver.level_name (Driver.level_of fr));
      Buffer.add_string b (if fr.Driver.fr_chain = None then "-" else "+");
      Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_l1);
      Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_l2);
      Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_final);
      List.iter (fun (p, w) -> Buffer.add_string b (p ^ ":" ^ w)) fr.Driver.fr_skipped)
    res.Driver.funcs;
  List.iter
    (fun (d : Driver.degraded) ->
      Buffer.add_string b d.Driver.dg_name;
      Buffer.add_string b (Driver.level_name (Driver.degraded_level d)))
    res.Driver.degraded;
  List.iter (fun d -> Buffer.add_string b (Diag.to_string d)) res.Driver.diags;
  Buffer.add_string b (string_of_int res.Driver.budget_hits);
  Buffer.contents b

(* The fingerprint minus diagnostics: degradation paths legitimately add
   [Diag.Store] warnings, but must not change any program or theorem. *)
let prog_fingerprint (res : Driver.result) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun fr ->
      Buffer.add_string b fr.Driver.fr_name;
      Buffer.add_string b (Driver.level_name (Driver.level_of fr));
      Buffer.add_string b (if fr.Driver.fr_chain = None then "-" else "+");
      Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_final))
    res.Driver.funcs;
  Buffer.contents b

let replace_once ~sub ~by s =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then None
    else if String.sub s i n = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.fail ("replace_once: substring not found: " ^ sub)
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)

let counters (res : Driver.result) = (res.Driver.store_hits, res.Driver.store_misses)

let check_counters what expected res =
  Alcotest.(check (pair int int)) what expected (counters res)

let has_store_diag (res : Driver.result) =
  List.exists (fun (d : Diag.t) -> d.Diag.d_phase = Diag.Store) res.Driver.diags

(* Standalone copies of the multi-function corpus files (the test corpus
   is compiled in; corpus/*.c files are exercised via ci.sh). *)
let chain_c =
  {|
int clamp(int lo, int hi, int v) {
  if (v < lo) return lo;
  if (hi < v) return hi;
  return v;
}

int clamp3(int v) {
  int r = 0;
  r = clamp(0, 3, v);
  return r;
}

int sum3(int a, int b, int c) {
  int x = 0;
  int y = 0;
  int z = 0;
  x = clamp3(a);
  y = clamp3(b);
  z = clamp3(c);
  return x + y + z;
}

int scale(int v) {
  if (v < 0) return 0;
  return v * 2;
}
|}

let parity_c =
  {|
unsigned is_even(unsigned n) {
  unsigned r = 0u;
  if (n == 0u) return 1u;
  r = is_odd(n - 1u);
  return r;
}

unsigned is_odd(unsigned n) {
  unsigned r = 0u;
  if (n == 0u) return 0u;
  r = is_even(n - 1u);
  return r;
}

unsigned parity(unsigned n) {
  unsigned e = 0u;
  e = is_even(n);
  if (e == 1u) return 0u;
  return 1u;
}
|}

(* ------------------------------------------------------------------ *)
(* Warm = cold over the whole corpus. *)

let test_corpus_roundtrip () =
  List.iter
    (fun (name, src) ->
      let dir = fresh_dir () in
      let cold = run ~dir src in
      let warm = run ~dir src in
      check_counters (name ^ ": cold run hits nothing") (0, cold.Driver.store_misses) cold;
      Alcotest.(check string)
        (name ^ ": warm output = cold output")
        (fingerprint cold) (fingerprint warm);
      Alcotest.(check bool)
        (name ^ ": warm derivations re-validate") true
        (Driver.check_all warm = Ok ()))
    Csources.all

(* ------------------------------------------------------------------ *)
(* Hit/miss counters and per-key-component invalidation. *)

let test_invalidation_cone () =
  let dir = fresh_dir () in
  check_counters "cold: all four miss" (0, 4) (run ~dir chain_c);
  check_counters "warm: all four hit" (4, 0) (run ~dir chain_c);
  (* Source edit to the leaf [clamp]: its whole caller cone (clamp,
     clamp3, sum3) must miss; the island [scale] must still hit. *)
  let edited = replace_once ~sub:"if (v < lo) return lo;" ~by:"if (v <= lo) return lo;" chain_c in
  check_counters "leaf edit invalidates exactly its cone" (1, 3) (run ~dir edited);
  (* Option vector: flipping any per-function switch misses everything. *)
  let no_wa =
    { opts with
      Driver.defaults = { Driver.default_func_options with Driver.word_abs = false } }
  in
  check_counters "option change invalidates" (0, 4) (run ~dir ~options:no_wa chain_c);
  (* Ruleset/version tag: a bumped tag never matches old entries. *)
  check_counters "tag change invalidates" (0, 4) (run ~dir ~tag:"other-ruleset" chain_c);
  (* And the original keys are all still present and valid. *)
  check_counters "original entries survived" (4, 0) (run ~dir chain_c)

let test_mutual_recursion_cone () =
  let dir = fresh_dir () in
  check_counters "cold" (0, 3) (run ~dir parity_c);
  check_counters "warm" (3, 0) (run ~dir parity_c);
  (* Editing one member of the is_even/is_odd cycle invalidates the whole
     strongly connected component and everything above it. *)
  let edited = replace_once ~sub:"r = is_even(n - 1u);" ~by:"r = is_even(n - 1u); r = r;" parity_c in
  check_counters "cycle edit invalidates cycle + caller" (0, 3) (run ~dir edited);
  (* Editing only the caller above the cycle leaves the cycle's entries
     valid. *)
  let edited = replace_once ~sub:"if (e == 1u) return 0u;" ~by:"if (e == 1u) return 2u;" parity_c in
  check_counters "caller edit keeps the cycle's entries" (2, 1) (run ~dir edited)

(* ------------------------------------------------------------------ *)
(* Poisoning. *)

let flip_all_entries dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".acc" then begin
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
        close_in ic;
        let i = Bytes.length s - 10 in
        Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0xff));
        let oc = open_out_bin path in
        output_bytes oc s;
        close_out oc
      end)
    (Sys.readdir dir)

let test_bit_flip_poisoning () =
  let dir = fresh_dir () in
  let cold = run ~dir chain_c in
  flip_all_entries dir;
  let poisoned = run ~dir chain_c in
  (* Every entry is rejected (digest mismatch, before [Marshal] ever
     runs) and the run degrades to a full translation... *)
  check_counters "poisoned entries all miss" (0, 4) poisoned;
  Alcotest.(check bool) "corruption is diagnosed" true (has_store_diag poisoned);
  (* ...whose observable result is the cold run's, and whose theorems all
     re-validate — the corrupt entries minted nothing. *)
  Alcotest.(check string) "programs unchanged" (prog_fingerprint cold)
    (prog_fingerprint poisoned);
  Alcotest.(check bool) "all chains present" true
    (List.for_all (fun fr -> fr.Driver.fr_chain <> None) poisoned.Driver.funcs);
  Alcotest.(check bool) "derivations re-validate" true
    (Driver.check_all poisoned = Ok ());
  (* The flip also repaired nothing silently: the next run re-banked the
     entries and hits again. *)
  check_counters "store repopulated" (4, 0) (run ~dir chain_c)

(* A forged certificate with a *valid* digest: an entry recorded from a
   genuinely certified translation of a different program, saved under
   the victim's content key.  Decoding succeeds — only kernel replay and
   the source anchor can catch it, and they must. *)
let test_forged_entry_fails_replay () =
  let src_a = "int f(int x) { return x + 1; }\n" in
  let src_b = "int f(int x) { return x + 2; }\n" in
  let dir = fresh_dir () in
  (* Cold-run B once to learn the key the driver will use for it. *)
  let cold_b = run ~dir src_b in
  let key_b =
    match
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun f -> Filename.check_suffix f ".acc")
    with
    | [ f ] -> Filename.chop_suffix f ".acc"
    | l -> Alcotest.fail (Printf.sprintf "expected 1 entry, found %d" (List.length l))
  in
  (* Record a genuine certificate — for A. *)
  let res_a = Driver.run ~options:opts src_a in
  let fr_a = List.hd res_a.Driver.funcs in
  let chain_a =
    match fr_a.Driver.fr_chain with
    | Some t -> t
    | None -> Alcotest.fail "A produced no chain"
  in
  let forged =
    {
      Store.e_name = "f";
      e_l1 = fr_a.Driver.fr_l1;
      e_l2g = fr_a.Driver.fr_l2;
      e_l2 = fr_a.Driver.fr_l2;
      e_hl = fr_a.Driver.fr_hl;
      e_wa = fr_a.Driver.fr_wa;
      e_final = fr_a.Driver.fr_final;
      e_wvars = fr_a.Driver.fr_wa_wvars;
      e_skipped = fr_a.Driver.fr_skipped;
      e_nothrow = List.mem "f" res_a.Driver.ctx.Rules.nothrows;
      e_fsig = List.assoc "f" res_a.Driver.ctx.Rules.fsigs;
      (* A genuine-looking digest, from A's own summary table: rejection
         must come from replay/anchoring, not from an obviously-bogus
         digest. *)
      e_sums_digest =
        Ac_analysis.Domains.sums_digest
          (Ac_analysis.Domains.restrict res_a.Driver.sums [ "f" ]);
      e_trace = Trace.record chain_a;
      e_n_hl = List.length fr_a.Driver.fr_hl_thms;
    }
  in
  let st = open_store dir in
  (match Store.save st ~key:key_b forged with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* The forged entry decodes (its digest is honest), so it surfaces as a
     hit — and then replay anchors it against B's parsed source, rejects
     it, and the driver re-translates. *)
  let warm_b = run ~dir src_b in
  Alcotest.(check bool) "forged entry is diagnosed" true (has_store_diag warm_b);
  check_counters "forged entry is demoted to a miss" (0, 1) warm_b;
  Alcotest.(check string) "B's result is B's, not A's" (prog_fingerprint cold_b)
    (prog_fingerprint warm_b);
  Alcotest.(check bool) "derivations re-validate" true (Driver.check_all warm_b = Ok ())

(* ------------------------------------------------------------------ *)
(* Trace record/replay in isolation. *)

let test_trace_roundtrip () =
  let res = Driver.run ~options:opts Csources.gcd_c in
  let fr = List.hd res.Driver.funcs in
  let chain = match fr.Driver.fr_chain with Some t -> t | None -> Alcotest.fail "no chain" in
  let tr = Trace.record chain in
  Alcotest.(check int) "tree size is preserved" (Thm.size chain) (Trace.tree_size tr);
  let ctx = { res.Driver.ctx with Rules.wvars = fr.Driver.fr_wa_wvars } in
  match Trace.replay ctx tr with
  | Error m -> Alcotest.fail ("replay failed: " ^ m)
  | Ok t ->
    Alcotest.(check bool) "replayed conclusion is the original" true
      (J.judgment_equal (Thm.concl t) (Thm.concl chain));
    (* Replay under the wrong context must fail, exactly like the
       corrupted-certificate tests of the memoized checker. *)
    Alcotest.(check bool) "replay under the wrong context fails" true
      (match Trace.replay res.Driver.ctx tr with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* qcheck: warm = cold across the corpus under random option vectors. *)

let prop_replay_identical =
  QCheck.Test.make ~count:15 ~name:"store: warm replay = fresh translation"
    QCheck.(triple (int_range 0 (List.length Csources.all - 1)) bool bool)
    (fun (i, no_word, no_heap) ->
      let _, src = List.nth Csources.all i in
      let options =
        { opts with
          Driver.defaults =
            { Driver.default_func_options with
              Driver.word_abs = not no_word;
              heap_abs = not no_heap } }
      in
      let dir = fresh_dir () in
      let cold = run ~dir ~options src in
      let warm = run ~dir ~options src in
      String.equal (fingerprint cold) (fingerprint warm))

(* ------------------------------------------------------------------ *)
(* Exit-code contract through the real binary. *)

let acc_exe =
  (* cwd is _build/default/test under `dune runtest`, the repo root under
     `dune exec test/main.exe`. *)
  let candidates =
    [
      Filename.concat (Sys.getcwd ()) "../bin/acc.exe";
      Filename.concat (Sys.getcwd ()) "_build/default/bin/acc.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_acc args =
  let out = Filename.temp_file "acc_out" ".txt" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" (Filename.quote acc_exe) args (Filename.quote out) in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let test_cli_exit_codes () =
  Alcotest.(check bool) "acc.exe present" true (Sys.file_exists acc_exe);
  let cfile = Filename.temp_file "acc_store" ".c" in
  let oc = open_out cfile in
  output_string oc chain_c;
  close_out oc;
  let dir = fresh_dir () in
  let code, _ = run_acc (Printf.sprintf "translate --store %s %s" (Filename.quote dir) (Filename.quote cfile)) in
  Alcotest.(check int) "translate with store: exit 0" 0 code;
  (* A corrupt entry during `acc check` is a structured finding: exit 1,
     with a [store] diagnostic, never an uncaught exception (exit 2). *)
  flip_all_entries dir;
  let code, out = run_acc (Printf.sprintf "check --store %s %s" (Filename.quote dir) (Filename.quote cfile)) in
  Alcotest.(check int) "check with corrupt entry: exit 1" 1 code;
  Alcotest.(check bool) "check names the store phase" true
    (Astring.String.is_infix ~affix:"[store]" out);
  (* An unusable store directory is a configuration error: structured,
     exit 1 (not an internal-error exit 2). *)
  let notadir = Filename.temp_file "acc_notadir" ".txt" in
  let code, out = run_acc (Printf.sprintf "check --store %s %s" (Filename.quote notadir) (Filename.quote cfile)) in
  Alcotest.(check int) "check with unusable store: exit 1" 1 code;
  Alcotest.(check bool) "unusable store is a structured diagnostic" true
    (Astring.String.is_infix ~affix:"[store]" out);
  Sys.remove cfile;
  Sys.remove notadir

(* The serve session: one JSON response line per request, lint findings in
   the exact structured-diagnostic shape `--diag-json` established
   (phase/function/line/col/severity/recoverable/message, via
   [Diag.list_to_json]), and a bad request that answers ok:false without
   ending the session. *)
let serve_lint_c =
  "unsigned bad_div(unsigned x) {\n  unsigned y;\n  y = 0u;\n  return x / y;\n}\n"

let test_serve_lint_diag_shape () =
  Alcotest.(check bool) "acc.exe present" true (Sys.file_exists acc_exe);
  let cfile = Filename.temp_file "acc_serve" ".c" in
  let oc = open_out cfile in
  output_string oc serve_lint_c;
  close_out oc;
  let req = Filename.temp_file "acc_serve_req" ".txt" in
  let oc = open_out req in
  Printf.fprintf oc "lint %s\nfrobnicate %s\nlint %s\nstatus\n" cfile cfile cfile;
  close_out oc;
  let code, out =
    run_acc (Printf.sprintf "serve --no-store < %s" (Filename.quote req))
  in
  Alcotest.(check int) "serve exits 0 at EOF" 0 code;
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "one response line per request" 4 (List.length lines);
  let first = List.nth lines 0 in
  let bad = List.nth lines 1 in
  let again = List.nth lines 2 in
  let has affix s = Astring.String.is_infix ~affix s in
  Alcotest.(check bool) "lint response ok" true (has "\"ok\":true,\"cmd\":\"lint\"" first);
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " in findings") true (has affix first))
    [
      "\"phase\":\"guard-discharge\"";
      "\"function\":\"bad_div\"";
      "\"line\":4";
      "\"col\":";
      "\"severity\":\"warning\"";
      "\"recoverable\":";
      "\"message\":\"division by zero";
    ];
  Alcotest.(check bool) "bad request answers ok:false" true (has "\"ok\":false" bad);
  Alcotest.(check bool) "session survives a bad request" true (String.equal first again);
  (* Counter invariants (documented next to [status_json] in bin/acc.ml):
     [requests] counts every non-empty request line — the two lints, the
     malformed "frobnicate", and the status probe itself — and
     [failures] the ok:false subset, so failures <= requests.  The PR 8
     regression: malformed lines used to bump failures only, letting a
     status probe report failures > requests. *)
  let status = List.nth lines 3 in
  Alcotest.(check bool) "requests counts all four lines" true
    (has "\"requests\":4" status);
  Alcotest.(check bool) "failures counts only the malformed one" true
    (has "\"failures\":1" status);
  Sys.remove cfile;
  Sys.remove req

(* ------------------------------------------------------------------ *)
(* Crash-shaped damage: truncation and unreadable entries (this PR).
   The bit-flip test above covers random corruption; these cover the
   shapes a real crash or operator accident produces. *)

let entry_paths dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".acc")
  |> List.map (Filename.concat dir)

let test_truncation_degrades () =
  let dir = fresh_dir () in
  let cold = run ~dir chain_c in
  (* Truncate every entry to zero bytes — the classic kill-during-flush
     residue.  Zero bytes can't even carry the magic, a different failure
     path from a digest mismatch. *)
  List.iter (fun p -> close_out (open_out_bin p)) (entry_paths dir);
  let poisoned = run ~dir chain_c in
  check_counters "truncated entries all miss" (0, 4) poisoned;
  Alcotest.(check bool) "truncation is diagnosed" true (has_store_diag poisoned);
  Alcotest.(check string) "programs unchanged" (prog_fingerprint cold)
    (prog_fingerprint poisoned);
  Alcotest.(check bool) "derivations re-validate" true
    (Driver.check_all poisoned = Ok ());
  (* The damaged entries were quarantined, so the store itself is clean
     again: doctor finds only healthy entries. *)
  (match Store.doctor ~dir () with
  | Ok r ->
    Alcotest.(check int) "doctor finds no further damage" 0 r.Store.dr_quarantined;
    Alcotest.(check bool) "quarantine holds the truncated entries" true
      (r.Store.dr_quarantine_files >= 4)
  | Error m -> Alcotest.fail m);
  check_counters "store repopulated" (4, 0) (run ~dir chain_c)

let test_unreadable_degrades () =
  let dir = fresh_dir () in
  let cold = run ~dir chain_c in
  (* An unreadable entry: the path exists but can't be read as a file.
     (chmod 000 is invisible to root, which the CI user is, so model it
     as the entry replaced by a directory — same open/read failure
     path.) *)
  List.iter
    (fun p ->
      Sys.remove p;
      Unix.mkdir p 0o755)
    (entry_paths dir);
  let poisoned = run ~dir chain_c in
  check_counters "unreadable entries all miss" (0, 4) poisoned;
  Alcotest.(check bool) "unreadable entry is a structured warning" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.d_phase = Diag.Store && d.Diag.d_severity = Diag.Warning)
       poisoned.Driver.diags);
  Alcotest.(check string) "programs unchanged" (prog_fingerprint cold)
    (prog_fingerprint poisoned);
  check_counters "store repopulated" (4, 0) (run ~dir chain_c)

(* ------------------------------------------------------------------ *)
(* gc vs a concurrent writer (regression for the satellite fix): gc must
   never delete an in-flight tmp file inside the grace window, must sweep
   genuinely orphaned ones, and interleaved save/gc must never lose a
   committed entry. *)

let test_gc_skips_live_tmp () =
  let dir = fresh_dir () in
  ignore (run ~dir chain_c);
  (* A young tmp file: an in-flight write happening right now. *)
  let live = Filename.concat dir ".acc-tmp-live.part" in
  let oc = open_out_bin live in
  output_string oc "half-written";
  close_out oc;
  (* An orphaned tmp file: its writer died two minutes ago. *)
  let orphan = Filename.concat dir ".acc-tmp-orphan.part" in
  let oc = open_out_bin orphan in
  output_string oc "abandoned";
  close_out oc;
  let old = Unix.gettimeofday () -. 120. in
  Unix.utimes orphan old old;
  (match Store.gc ~dir ~max_entries:1024 () with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "gc leaves the in-flight tmp alone" true (Sys.file_exists live);
  Alcotest.(check bool) "gc sweeps the orphaned tmp" false (Sys.file_exists orphan);
  Alcotest.(check bool) "the orphan went to quarantine, not /dev/null" true
    (Sys.file_exists (Filename.concat (Store.quarantine_dir dir) ".acc-tmp-orphan.part"));
  Sys.remove live

let test_gc_interleaved_writer () =
  let dir = fresh_dir () in
  ignore (run ~dir chain_c);
  (* Recover a genuine entry to republish: its bytes don't matter to gc,
     but using the real save path exercises the real tmp+rename window. *)
  let st = open_store dir in
  let key0 =
    match entry_paths dir with
    | p :: _ -> Filename.chop_suffix (Filename.basename p) ".acc"
    | [] -> Alcotest.fail "no seeded entries"
  in
  let entry =
    match Store.load st ~key:key0 with
    | Store.Hit e -> e
    | _ -> Alcotest.fail "seed entry does not load"
  in
  (* A writer domain hammers saves under rotating keys while the main
     domain runs gc rounds with headroom: every save must succeed and no
     committed entry may vanish. *)
  let writer_failures = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to 199 do
          match Store.save st ~key:(Printf.sprintf "%s%04d" key0 i) entry with
          | Ok () -> ()
          | Error _ -> Atomic.incr writer_failures
        done)
  in
  for _ = 0 to 24 do
    match Store.gc ~dir ~max_entries:4096 () with
    | Ok n -> Alcotest.(check int) "gc with headroom removes nothing" 0 n
    | Error m -> Alcotest.fail m
  done;
  Domain.join writer;
  Alcotest.(check int) "every interleaved save succeeded" 0
    (Atomic.get writer_failures);
  Alcotest.(check bool) "all writes landed" true (List.length (entry_paths dir) >= 204);
  (* And everything in the directory verifies — the race corrupted
     nothing. *)
  (match Store.doctor ~dir () with
  | Ok r -> Alcotest.(check int) "no corrupt entries" 0 r.Store.dr_quarantined
  | Error m -> Alcotest.fail m);
  check_counters "original entries still load" (4, 0) (run ~dir chain_c)

(* ------------------------------------------------------------------ *)
(* Two-process contention through the real binary: two `acc translate`
   runs hammering one store concurrently (cold, so both write every key)
   must produce byte-identical results and leave a consistent store. *)

(* Strip the volatile counters ("store":{...}) from a --diag-json line,
   like ci.sh's sed does. *)
let strip_store_json s =
  match Astring.String.find_sub ~sub:"\"store\":{" s with
  | None -> s
  | Some i -> (
    match String.index_from_opt s i '}' with
    | None -> s
    | Some j -> String.sub s 0 i ^ String.sub s (j + 1) (String.length s - j - 1))

let test_two_process_contention () =
  Alcotest.(check bool) "acc.exe present" true (Sys.file_exists acc_exe);
  let cfile = Filename.temp_file "acc_contend" ".c" in
  let oc = open_out cfile in
  output_string oc chain_c;
  close_out oc;
  let dir = fresh_dir () in
  let out1 = Filename.temp_file "acc_contend1" ".json" in
  let out2 = Filename.temp_file "acc_contend2" ".json" in
  (* Both processes start cold on the same store and race every write;
     a gc runs beside them for good measure. *)
  let cmd =
    Printf.sprintf
      "( %s translate --keep-going --diag-json --store %s %s > %s 2>&1 & %s translate \
       --keep-going --diag-json --store %s %s > %s 2>&1 & %s cache gc --store %s \
       --max-entries 1024 > /dev/null 2>&1 ; wait )"
      (Filename.quote acc_exe) (Filename.quote dir) (Filename.quote cfile)
      (Filename.quote out1) (Filename.quote acc_exe) (Filename.quote dir)
      (Filename.quote cfile) (Filename.quote out2) (Filename.quote acc_exe)
      (Filename.quote dir)
  in
  Alcotest.(check int) "contending processes exit 0" 0 (Sys.command cmd);
  let slurp p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let o1 = strip_store_json (slurp out1) and o2 = strip_store_json (slurp out2) in
  Alcotest.(check string) "contending runs agree byte-for-byte" o1 o2;
  (* The store survived the race consistent: every entry verifies. *)
  (match Store.doctor ~dir () with
  | Ok r ->
    Alcotest.(check int) "no corrupt entries after contention" 0 r.Store.dr_quarantined;
    Alcotest.(check bool) "entries were banked" true (r.Store.dr_ok >= 4)
  | Error m -> Alcotest.fail m);
  check_counters "the contended store replays warm" (4, 0) (run ~dir chain_c);
  List.iter Sys.remove [ cfile; out1; out2 ]

(* ------------------------------------------------------------------ *)
(* qcheck: a write truncated at ANY byte (the kill -9 window) leaves the
   store openable, the damaged entry quarantined rather than trusted, and
   the rerun byte-identical to a fault-free run. *)

let prop_write_truncation =
  QCheck.Test.make ~count:20
    ~name:"store: truncation at any write point degrades cleanly"
    QCheck.(pair (int_bound 0x3FFFFFF) bool)
    (fun (seed, kill_before_rename) ->
      let dir = fresh_dir () in
      let cold = run ~dir chain_c in
      let paths = entry_paths dir in
      let victim = List.nth paths (seed mod List.length paths) in
      let raw =
        let ic = open_in_bin victim in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let cut = seed mod (String.length raw + 1) in
      let truncated = String.sub raw 0 cut in
      if kill_before_rename then begin
        (* The writer died before publishing: the entry is gone and its
           partial tmp file is an orphan from two minutes ago. *)
        Sys.remove victim;
        let tmp = Filename.concat dir ".acc-tmp-killed.part" in
        let oc = open_out_bin tmp in
        output_string oc truncated;
        close_out oc;
        let old = Unix.gettimeofday () -. 120. in
        Unix.utimes tmp old old
      end
      else begin
        (* Filesystem-level truncation of the published entry. *)
        let oc = open_out_bin victim in
        output_string oc truncated;
        close_out oc
      end;
      (* The store must open (recovery quarantines the orphan), the rerun
         must reproduce the fault-free programs, and nothing may raise. *)
      let rerun = run ~dir chain_c in
      let ok_prog = String.equal (prog_fingerprint cold) (prog_fingerprint rerun) in
      let ok_doctor =
        match Store.doctor ~dir () with
        | Ok r -> r.Store.dr_quarantined = 0 (* load already quarantined it *)
        | Error _ -> false
      in
      (* And a full truncated-at-cut=len copy is just the honest entry. *)
      ok_prog && ok_doctor)

(* ------------------------------------------------------------------ *)
(* The lock-fd regression (PR 8 satellite): POSIX record locks are owned
   by the process, and closing ANY fd on the lock file drops ALL of the
   process's locks on it.  The old [Lock] opened a fresh fd per acquire
   and closed it on release — so inside one serve process, a best-effort
   writer's [with_lock] finishing would silently evaporate a strict
   [acquire] that gc/doctor still held mid-scan.  The fix (refcounted
   singleton handle, fd never closed) is only observable from OUTSIDE
   the process, so the probe re-execs this test binary with
   $ACC_LOCK_PROBE (see test/main.ml): it tries a non-blocking lock and
   exits 0 if the parent holds it, 1 if nobody does.  (Not [Unix.fork]:
   forking is forbidden once worker domains exist, and earlier tests
   spawn them.) *)

let probe_locked dir =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let env =
    Array.append (Unix.environment ())
      [| "ACC_LOCK_PROBE=" ^ Filename.concat dir ".lock" |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env null null null
  in
  Unix.close null;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c = 0
  | _ -> Alcotest.fail "lock probe child died abnormally"

let test_lock_survives_same_process_release () =
  let dir = fresh_dir () in
  let module Lock = Ac_store.Lock in
  (* gc/doctor's strict lock... *)
  let strict =
    match Lock.acquire ~timeout_s:2.0 ~dir () with
    | Ok l -> l
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "strict acquire excludes other processes" true
    (probe_locked dir);
  (* ...then a writer's best-effort critical section in the SAME process.
     Same-process callers share the refcounted handle (record locks were
     always re-entrant within a process), so the writer sees locked:true
     instantly rather than timing out against itself. *)
  Lock.with_lock ~timeout_s:0.2 ~dir (fun ~locked ->
      Alcotest.(check bool) "same-process writer shares the lock" true locked);
  (* THE regression: before the fix, with_lock's release closed its fd
     and the kernel dropped the strict lock with it. *)
  Alcotest.(check bool) "strict lock survives a same-process with_lock cycle" true
    (probe_locked dir);
  Lock.release strict;
  Alcotest.(check bool) "last release actually unlocks" false (probe_locked dir);
  (* Double release is inert — it must not decrement someone else's
     refcount. *)
  Lock.release strict;
  let again =
    match Lock.acquire ~timeout_s:2.0 ~dir () with
    | Ok l -> l
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "lock is reacquirable after release" true (probe_locked dir);
  Lock.release again

let suite =
  [
    Alcotest.test_case "warm = cold across the corpus" `Quick test_corpus_roundtrip;
    Alcotest.test_case "hit/miss and per-key invalidation" `Quick test_invalidation_cone;
    Alcotest.test_case "mutual-recursion invalidation cone" `Quick test_mutual_recursion_cone;
    Alcotest.test_case "bit-flipped entry degrades, never mints" `Quick test_bit_flip_poisoning;
    Alcotest.test_case "forged digest-valid entry fails replay" `Quick
      test_forged_entry_fails_replay;
    Alcotest.test_case "trace record/replay roundtrip" `Quick test_trace_roundtrip;
    QCheck_alcotest.to_alcotest prop_replay_identical;
    Alcotest.test_case "CLI store exit codes" `Quick test_cli_exit_codes;
    Alcotest.test_case "serve lint emits --diag-json-shaped findings" `Quick
      test_serve_lint_diag_shape;
    Alcotest.test_case "truncated-to-zero entries degrade to misses" `Quick
      test_truncation_degrades;
    Alcotest.test_case "unreadable entries degrade with a structured warning" `Quick
      test_unreadable_degrades;
    Alcotest.test_case "gc honours the tmp grace window" `Quick test_gc_skips_live_tmp;
    Alcotest.test_case "gc never loses an interleaved writer's entries" `Quick
      test_gc_interleaved_writer;
    Alcotest.test_case "two processes hammering one store agree" `Quick
      test_two_process_contention;
    QCheck_alcotest.to_alcotest prop_write_truncation;
    Alcotest.test_case "strict lock survives same-process with_lock (fd-drop fix)"
      `Quick test_lock_survives_same_process_release;
  ]
