(* A broader C corpus through the full pipeline with differential
   refinement testing: wider integer widths, early returns inside loops
   (the exception-monad fallback path), nested structs, pointer arithmetic,
   casts, and call graphs.  Each program also re-validates its kernel
   derivations. *)

module B = Ac_bignum
module Value = Ac_lang.Value
module Ty = Ac_lang.Ty
module Driver = Autocorres.Driver
module Refine_test = Autocorres.Refine_test

let corpus : (string * string) list =
  [
    ( "widths64",
      "unsigned long long mix64(unsigned long long a, unsigned int b) {\n\
      \  unsigned long long x = a + b;\n\
      \  return x * 2ull;\n}\n" );
    ( "widths8",
      "unsigned char narrow(unsigned char c, unsigned char d) {\n\
      \  return (unsigned char)(c + d);\n}\n" );
    ( "signed64",
      "long long smul(long long a, long long b) { return a * b; }" );
    ( "sign_mix",
      "int sign_mix(int s, unsigned u) {\n\
      \  unsigned r = s + u;\n\
      \  return (int) (r >> 1);\n}\n" );
    ( "early_return_loop",
      "int find(int *a, int n, int key) {\n\
      \  int i = 0;\n\
      \  while (i < n) {\n\
      \    if (a[i] == key) return i;\n\
      \    i = i + 1;\n\
      \  }\n\
      \  return 0 - 1;\n}\n" );
    ( "nested_struct",
      "struct inner { unsigned lo; unsigned hi; };\n\
       struct outer { struct inner pair; unsigned tag; };\n\
       unsigned read_tagged(struct outer *p) {\n\
      \  if (p->tag != 0u)\n\
      \    return p->pair.lo + p->pair.hi;\n\
      \  return 0u;\n}\n" );
    ( "linked_sum",
      "struct node { struct node *next; unsigned data; };\n\
       unsigned sum(struct node *p, unsigned fuel) {\n\
      \  unsigned acc = 0u;\n\
      \  while (p != NULL && fuel != 0u) {\n\
      \    acc = acc + p->data;\n\
      \    p = p->next;\n\
      \    fuel = fuel - 1u;\n\
      \  }\n\
      \  return acc;\n}\n" );
    ( "ptr_walk",
      "unsigned char sum_bytes(unsigned char *p, unsigned n) {\n\
      \  unsigned char acc = 0;\n\
      \  unsigned i = 0u;\n\
      \  while (i < n) {\n\
      \    acc = (unsigned char)(acc + p[i]);\n\
      \    i = i + 1u;\n\
      \  }\n\
      \  return acc;\n}\n" );
    ( "bit_tricks",
      "unsigned popcount_ish(unsigned x) {\n\
      \  unsigned c = 0u;\n\
      \  while (x != 0u) { c = c + (x & 1u); x = x >> 1; }\n\
      \  return c;\n}\n" );
    ( "ternary",
      "int clamp(int x, int lo, int hi) { return x < lo ? lo : (x > hi ? hi : x); }" );
    ( "do_while",
      "unsigned collatz_steps(unsigned n, unsigned fuel) {\n\
      \  unsigned steps = 0u;\n\
      \  do {\n\
      \    if (n % 2u == 0u) n = n / 2u; else n = 3u * n + 1u;\n\
      \    steps = steps + 1u;\n\
      \    fuel = fuel - 1u;\n\
      \  } while (n != 1u && fuel != 0u);\n\
      \  return steps;\n}\n" );
    ( "call_graph",
      "unsigned sq(unsigned x) { return x * x; }\n\
       unsigned cube(unsigned x) { unsigned s; s = sq(x); return s * x; }\n\
       unsigned poly(unsigned x) { unsigned c; unsigned s; c = cube(x); s = sq(x); \
       return c + s + x; }\n" );
    ( "global_state_machine",
      "unsigned state;\n\
       unsigned step(unsigned input) {\n\
      \  if (state == 0u) { if (input != 0u) state = 1u; }\n\
      \  else if (state == 1u) { state = input == 0u ? 2u : 1u; }\n\
      \  else { state = 0u; }\n\
      \  return state;\n}\n" );
    ( "casts",
      "unsigned truncate_and_extend(unsigned x) {\n\
      \  unsigned char low = (unsigned char) x;\n\
      \  short s = (short) x;\n\
      \  return (unsigned) low + (unsigned) s;\n}\n" );
    ( "compound_ops",
      "unsigned compound(unsigned x) {\n\
      \  unsigned a = x;\n\
      \  a += 3u; a <<= 2; a ^= x; a |= 1u; a &= 0xffffu; a -= 2u;\n\
      \  return a;\n}\n" );
    ( "struct_copy",
      "struct pair { unsigned fst; unsigned snd; };\n\
       unsigned mirror(struct pair *a, struct pair *b) {\n\
      \  b->fst = a->snd;\n\
      \  b->snd = a->fst;\n\
      \  return b->fst + b->snd;\n}\n" );
  ]

let pipeline_tests =
  List.map
    (fun (name, src) ->
      ( Printf.sprintf "pipeline + derivations: %s" name,
        fun () ->
          let res = Driver.run src in
          (match Driver.check_all res with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" name e);
          (* every function must produce a final form *)
          Alcotest.(check bool) "has functions" true (res.Driver.funcs <> []) ))
    corpus

let differential_tests =
  List.map
    (fun (name, src) ->
      ( Printf.sprintf "refinement on random states: %s" name,
        fun () ->
          let res = Driver.run src in
          let report = Refine_test.check_program ~cases:40 res in
          (match report.Refine_test.violations with
          | [] -> ()
          | (f, d) :: _ -> Alcotest.failf "%s.%s: %s" name f d);
          Alcotest.(check bool) "cases ran" true
            (report.Refine_test.agreed + report.Refine_test.abstract_failed
             + report.Refine_test.skipped
            = report.Refine_test.cases) ))
    corpus

let width_tests =
  [
    ( "64-bit unsigned abstraction bounds use 2^64",
      fun () ->
        let res =
          Driver.run "unsigned long long add64(unsigned long long a, unsigned long long b) { return a + b; }"
        in
        let fr = Option.get (Driver.find_result res "add64") in
        let out = Ac_monad.Mprint.func_to_string fr.Driver.fr_final in
        Alcotest.(check bool) "UINT64_MAX guard" true
          (Astring.String.is_infix ~affix:"18446744073709551615" out) );
    ( "8-bit arithmetic goes through int promotion (no overflow guard needed)",
      fun () ->
        let res = Driver.run "unsigned char addc(unsigned char a, unsigned char b) { return (unsigned char)(a + b); }" in
        let fr = Option.get (Driver.find_result res "addc") in
        (* a and b promote to int; the addition is signed 32-bit and cannot
           overflow on 8-bit inputs, so the guard must discharge or be
           provable; executing must agree with C (differential covers it) *)
        Alcotest.(check bool) "produced" true (Ac_monad.M.func_size fr.Driver.fr_final > 0) );
    ( "collatz executes correctly after abstraction",
      fun () ->
        let res = Driver.run (List.assoc "do_while" corpus) in
        let vn n = Value.vnat (B.of_int n) in
        match
          Ac_monad.Interp.run_func res.Driver.final_prog ~fuel:100_000
            Ac_simpl.State.empty "collatz_steps" [ vn 6; vn 100 ]
        with
        | Ac_monad.Interp.Returns (v, _) ->
          (* 6 -> 3 -> 10 -> 5 -> 16 -> 8 -> 4 -> 2 -> 1 : 8 steps *)
          Alcotest.(check string) "steps" "8" (Value.to_string v)
        | _ -> Alcotest.fail "execution failed" );
    ( "early-return-in-loop keeps a sound exception form",
      fun () ->
        let res = Driver.run (List.assoc "early_return_loop" corpus) in
        let fr = Option.get (Driver.find_result res "find") in
        (* whether or not the wrapper was eliminated, execution must agree *)
        Alcotest.(check bool) "final exists" true (Ac_monad.M.func_size fr.Driver.fr_final > 0)
    );
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    (pipeline_tests @ differential_tests @ width_tests)
