(* PR 8's serve layer: the Line_buf framing fix, the socket server, and
   the counter invariants.

   The load-bearing properties:

   - framing is chunking-independent: a batch of requests delivered in
     one write produces byte-identical responses to one-at-a-time
     delivery (the O(n²) reader this PR replaced was correct too — the
     test pins behaviour while the implementation changed underneath);
   - N concurrent socket clients each see exactly the response stream a
     sequential stdin session would have given them, under 0% and 5%
     injected socket-fault rates — concurrency and fault injection are
     invisible in the bytes;
   - SIGTERM drains: requests already sent get their responses, then
     EOF, then the server exits 0;
   - backpressure sheds with the structured overload line, in request
     order, and `status` counts every shed. *)

module Line_buf = Ac_serve.Line_buf

(* ------------------------------------------------------------------ *)
(* Helpers (same acc.exe discovery as test_store). *)

let acc_exe =
  let candidates =
    [
      Filename.concat (Sys.getcwd ()) "../bin/acc.exe";
      Filename.concat (Sys.getcwd ()) "_build/default/bin/acc.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let shell cmd = Sys.command cmd

(* Run `acc serve --no-store` over stdin with [reqs] as the request
   stream; return the raw response bytes. *)
let stdin_serve ?(extra = "") reqs =
  let req = Filename.temp_file "serve_req" ".txt" in
  let out = Filename.temp_file "serve_out" ".txt" in
  write_file req reqs;
  let cmd =
    Printf.sprintf "%s serve --no-store %s < %s > %s 2>/dev/null"
      (Filename.quote acc_exe) extra (Filename.quote req) (Filename.quote out)
  in
  let code = shell cmd in
  Alcotest.(check int) "stdin serve exits 0" 0 code;
  let s = read_file out in
  Sys.remove req;
  Sys.remove out;
  s

let devnull () = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0

(* Start `acc serve` with [args] (socket mode), return its pid.  Stdout
   is unused in socket mode; silence it so alcotest's capture stays
   clean. *)
let start_server args =
  let null = devnull () in
  let pid =
    Unix.create_process acc_exe
      (Array.of_list (("acc" :: "serve" :: args)))
      null null null
  in
  Unix.close null;
  pid

let rec wait_for_socket ?(tries = 200) path =
  if tries = 0 then Alcotest.fail (path ^ ": server socket never appeared");
  match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> ()
  | _ -> Alcotest.fail (path ^ ": exists but is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    Unix.sleepf 0.025;
    wait_for_socket ~tries:(tries - 1) path

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_all fd s =
  let b = Bytes.unsafe_of_string s in
  let ofs = ref 0 in
  while !ofs < Bytes.length b do
    ofs := !ofs + Unix.write fd b !ofs (Bytes.length b - !ofs)
  done

let stop_server pid =
  Unix.kill pid Sys.sigterm;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c
  | _, _ -> -1

(* ------------------------------------------------------------------ *)
(* Line_buf unit tests. *)

let test_line_buf_chunking () =
  (* Deterministic pseudo-random lines and chunk splits: whatever the
     chunking, the extracted lines are exactly the input lines. *)
  let st = Random.State.make [| 42 |] in
  let lines =
    List.init 500 (fun i ->
        let len = Random.State.int st 200 in
        String.init len (fun j ->
            Char.chr (32 + ((i + (3 * j) + Random.State.int st 64) mod 90))))
  in
  let payload = String.concat "\n" lines ^ "\n" in
  let feed_chunked chunk_of =
    let lb = Line_buf.create ~capacity:16 () in
    let got = ref [] in
    let n = String.length payload in
    let i = ref 0 in
    while !i < n do
      let k = min (chunk_of ()) (n - !i) in
      Line_buf.add lb (Bytes.of_string (String.sub payload !i k)) 0 k;
      i := !i + k;
      let rec drain () =
        match Line_buf.next lb with
        | Some l ->
          got := l :: !got;
          drain ()
        | None -> ()
      in
      drain ()
    done;
    (match Line_buf.take_rest lb with
    | Some tail -> got := tail :: !got
    | None -> ());
    List.rev !got
  in
  let whole = feed_chunked (fun () -> String.length payload) in
  let tiny = feed_chunked (fun () -> 1) in
  let random = feed_chunked (fun () -> 1 + Random.State.int st 37) in
  Alcotest.(check (list string)) "one-write delivery" lines whole;
  Alcotest.(check (list string)) "byte-at-a-time delivery" lines tiny;
  Alcotest.(check (list string)) "random chunk delivery" lines random

let test_line_buf_tail () =
  let lb = Line_buf.create () in
  Line_buf.add_string lb "complete\npartial";
  Alcotest.(check (option string)) "terminated line" (Some "complete") (Line_buf.next lb);
  Alcotest.(check (option string)) "no second line yet" None (Line_buf.next lb);
  (* The scan offset must survive: adding more bytes resumes the search,
     and the pending partial line is intact. *)
  Line_buf.add_string lb " done\n";
  Alcotest.(check (option string)) "spanning line" (Some "partial done") (Line_buf.next lb);
  Line_buf.add_string lb "eof tail";
  Alcotest.(check (option string)) "unterminated tail at EOF" (Some "eof tail")
    (Line_buf.take_rest lb);
  Alcotest.(check int) "buffer empty after take_rest" 0 (Line_buf.pending lb)

(* ------------------------------------------------------------------ *)
(* Pipelined batch vs one-at-a-time delivery: byte-identical responses
   (the reader-bugfix regression test).  10k cheap requests. *)

let test_pipelined_batch_equivalence () =
  let n = 10_000 in
  let reqs = List.init n (fun i -> Printf.sprintf "frob%d x" i) in
  let batch = stdin_serve (String.concat "\n" reqs ^ "\n") in
  (* One-at-a-time: a full round trip per request through a live serve
     process, so the server's buffer never holds more than one line. *)
  let inc, outc =
    Unix.open_process_args acc_exe [| "acc"; "serve"; "--no-store" |]
  in
  let one_at_a_time = Buffer.create (String.length batch) in
  List.iter
    (fun r ->
      output_string outc (r ^ "\n");
      flush outc;
      Buffer.add_string one_at_a_time (input_line inc);
      Buffer.add_char one_at_a_time '\n')
    reqs;
  close_out outc;
  ignore (Unix.close_process (inc, outc));
  Alcotest.(check bool) "10k pipelined = 10k one-at-a-time" true
    (String.equal batch (Buffer.contents one_at_a_time))

(* ------------------------------------------------------------------ *)
(* Socket concurrency: 4 clients, interleaved translate/check/lint, each
   client's response stream byte-identical to a sequential stdin session
   with the same requests — with and without injected faults. *)

let a_src = "int add(int a, int b) { return a + b; }\n"
let b_src = "unsigned bad_div(unsigned x) {\n  unsigned y;\n  y = 0u;\n  return x / y;\n}\n"

let client_requests ~a ~b i =
  [
    Printf.sprintf "translate %s" a;
    Printf.sprintf "check %s" b;
    Printf.sprintf "lint %s" b;
    Printf.sprintf "frob%d x" i;
    Printf.sprintf "check %s" a;
    Printf.sprintf "lint %s" a;
  ]

let run_socket_clients ~sock ~nclients ~reqs_of =
  let worker i =
    Domain.spawn (fun () ->
        let fd = connect sock in
        let reqs = reqs_of i in
        send_all fd (String.concat "\n" reqs ^ "\n");
        (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
        let ic = Unix.in_channel_of_descr fd in
        let buf = Buffer.create 4096 in
        (try
           while true do
             Buffer.add_string buf (input_line ic);
             Buffer.add_char buf '\n'
           done
         with End_of_file -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Buffer.contents buf)
  in
  let domains = List.init nclients worker in
  List.map Domain.join domains

let check_socket_vs_stdin ~inject () =
  let a = Filename.temp_file "serve_a" ".c" in
  let b = Filename.temp_file "serve_b" ".c" in
  write_file a a_src;
  write_file b b_src;
  let sock = Filename.temp_file "serve" ".sock" in
  Sys.remove sock;
  let extra = match inject with None -> [] | Some s -> [ "--inject"; s ] in
  let pid =
    start_server ([ "--no-store"; "--socket"; sock; "--max-inflight"; "64" ] @ extra)
  in
  wait_for_socket sock;
  let reqs_of i = client_requests ~a ~b i in
  let got = run_socket_clients ~sock ~nclients:4 ~reqs_of in
  let code = stop_server pid in
  Alcotest.(check int) "server exits 0 on SIGTERM" 0 code;
  (* References: the same request streams through sequential stdin mode.
     [--no-store] keeps per-request counters in responses at zero, so
     responses are independent of session history and interleaving. *)
  List.iteri
    (fun i out ->
      let expect = stdin_serve (String.concat "\n" (reqs_of i) ^ "\n") in
      Alcotest.(check bool)
        (Printf.sprintf "client %d byte-identical to stdin mode%s" i
           (match inject with None -> "" | Some s -> " under " ^ s))
        true (String.equal expect out))
    got;
  Sys.remove a;
  Sys.remove b

let test_socket_concurrency () = check_socket_vs_stdin ~inject:None ()

let test_socket_concurrency_faults () =
  check_socket_vs_stdin ~inject:(Some "io_error:0.05,seed:3") ()

(* ------------------------------------------------------------------ *)
(* SIGTERM drain: a client with requests in flight gets every response,
   then EOF; the server exits 0. *)

let test_sigterm_drain () =
  let a = Filename.temp_file "serve_a" ".c" in
  write_file a a_src;
  let sock = Filename.temp_file "serve" ".sock" in
  Sys.remove sock;
  let pid = start_server [ "--no-store"; "--socket"; sock ] in
  wait_for_socket sock;
  let reqs = List.init 5 (fun _ -> Printf.sprintf "translate %s" a) in
  let fd = connect sock in
  send_all fd (String.concat "\n" reqs ^ "\n");
  (* No shutdown, no EOF: the connection is live with work queued. *)
  let ic = Unix.in_channel_of_descr fd in
  let first = input_line ic in
  Unix.kill pid Sys.sigterm;
  let rest = ref [] in
  (try
     while true do
       rest := input_line ic :: !rest
     done
   with End_of_file -> ());
  let code = match Unix.waitpid [] pid with _, Unix.WEXITED c -> c | _ -> -1 in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Alcotest.(check int) "all 5 responses arrive across the drain" 5
    (1 + List.length !rest);
  List.iter
    (fun r -> Alcotest.(check string) "drained responses identical" first r)
    (List.rev !rest);
  Alcotest.(check int) "server exits 0 after drain" 0 code;
  Sys.remove a

(* ------------------------------------------------------------------ *)
(* Backpressure: a pipelining client into --max-inflight 1 gets one
   response per request, overloads are the exact structured line, and
   `status` on the same connection accounts for every shed. *)

let test_shedding () =
  let sock = Filename.temp_file "serve" ".sock" in
  Sys.remove sock;
  let pid = start_server [ "--no-store"; "--socket"; sock; "--max-inflight"; "1" ] in
  wait_for_socket sock;
  let n = 50 in
  let reqs = List.init n (fun i -> Printf.sprintf "frob%d x" i) in
  let fd = connect sock in
  send_all fd (String.concat "\n" reqs ^ "\n");
  let ic = Unix.in_channel_of_descr fd in
  let responses = List.init n (fun _ -> input_line ic) in
  let overloaded =
    List.filter (String.equal Ac_serve.Server.overloaded_response) responses
  in
  Alcotest.(check int) "one response per request" n (List.length responses);
  Alcotest.(check bool) "a flood into max-inflight 1 sheds most of itself" true
    (List.length overloaded >= n / 2);
  Alcotest.(check bool) "non-shed responses answer the request" true
    (List.exists (fun r -> r <> Ac_serve.Server.overloaded_response) responses);
  (* The flood is answered; the connection is idle again.  status must
     count every line so far (50 + itself) and every shed. *)
  send_all fd "status\n";
  let status = input_line ic in
  let has affix s = Astring.String.is_infix ~affix s in
  Alcotest.(check bool) "status counts all 51 request lines" true
    (has (Printf.sprintf "\"requests\":%d" (n + 1)) status);
  Alcotest.(check bool) "status counts the sheds" true
    (has (Printf.sprintf "\"shed\":%d" (List.length overloaded)) status);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let code = stop_server pid in
  Alcotest.(check int) "server exits 0" 0 code

(* ------------------------------------------------------------------ *)
(* PR 10: the metrics plane.  /metrics must parse as OpenMetrics and its
   counters must agree with the status verb on the data socket;
   /healthz and /readyz answer on the same port. *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  send_all fd (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path);
  let ic = Unix.in_channel_of_descr fd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let raw = Buffer.contents buf in
  match Astring.String.find_sub ~sub:"\r\n\r\n" raw with
  | Some i ->
    let head = String.sub raw 0 i in
    let body = String.sub raw (i + 4) (String.length raw - i - 4) in
    let status =
      match String.split_on_char ' ' head with
      | _ :: code :: _ -> int_of_string code
      | _ -> -1
    in
    (status, body)
  | None -> Alcotest.fail ("malformed HTTP response: " ^ raw)

let metrics_sample body name =
  let prefix = name ^ " " in
  List.find_map
    (fun l ->
      if Astring.String.is_prefix ~affix:prefix l then
        float_of_string_opt
          (String.sub l (String.length prefix) (String.length l - String.length prefix))
      else None)
    (String.split_on_char '\n' body)

let json_int_field line field =
  let key = Printf.sprintf "\"%s\":" field in
  match Astring.String.find_sub ~sub:key line with
  | None -> None
  | Some i ->
    let start = i + String.length key in
    let stop = ref start in
    while
      !stop < String.length line
      && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr stop
    done;
    int_of_string_opt (String.sub line start (!stop - start))

let test_metrics_endpoint () =
  let a = Filename.temp_file "serve_a" ".c" in
  write_file a a_src;
  let sock = Filename.temp_file "serve" ".sock" in
  Sys.remove sock;
  let port = 21000 + (Unix.getpid () mod 10000) in
  let pid =
    start_server
      [ "--no-store"; "--socket"; sock; "--metrics-port"; string_of_int port ]
  in
  wait_for_socket sock;
  let fd = connect sock in
  let ic = Unix.in_channel_of_descr fd in
  send_all fd (Printf.sprintf "translate %s\ncheck %s\nfrob x\n" a a);
  let _r1 = input_line ic and _r2 = input_line ic and _r3 = input_line ic in
  send_all fd "status\n";
  let status = input_line ic in
  (* the scrape runs on the same select loop, strictly after the status
     request we just read the answer to — the counters must agree *)
  let code, body = http_get port "/metrics" in
  Alcotest.(check int) "/metrics answers 200" 200 code;
  Alcotest.(check bool) "exposition is # EOF terminated" true
    (Astring.String.is_suffix ~affix:"# EOF\n" body);
  let counter name =
    match metrics_sample body name with
    | Some v -> int_of_float v
    | None -> Alcotest.fail (name ^ " missing from /metrics")
  in
  let field f =
    match json_int_field status f with
    | Some v -> v
    | None -> Alcotest.fail (f ^ " missing from status JSON")
  in
  Alcotest.(check int) "requests: /metrics = status (4 lines)" (field "requests")
    (counter "acc_serve_requests_total");
  Alcotest.(check int) "failures: /metrics = status (1 bad verb)" (field "failures")
    (counter "acc_serve_failures_total");
  Alcotest.(check int) "4 request lines seen" 4 (field "requests");
  Alcotest.(check int) "trace_dropped_events: /metrics = status dropped"
    (field "dropped")
    (counter "acc_trace_dropped_events_total");
  Alcotest.(check bool) "latency histogram exposed with _sum" true
    (metrics_sample body "acc_serve_request_latency_s_sum" <> None);
  Alcotest.(check bool) "latency histogram has le buckets" true
    (Astring.String.is_infix ~affix:"acc_serve_request_latency_s_bucket{le=\"" body);
  let hcode, hbody = http_get port "/healthz" in
  Alcotest.(check int) "/healthz 200" 200 hcode;
  Alcotest.(check string) "/healthz body" "ok\n" hbody;
  let rcode, rbody = http_get port "/readyz" in
  Alcotest.(check int) "/readyz 200" 200 rcode;
  Alcotest.(check string) "/readyz body" "ready\n" rbody;
  let ncode, _ = http_get port "/nope" in
  Alcotest.(check int) "unknown path 404" 404 ncode;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let code = stop_server pid in
  Alcotest.(check int) "server exits 0" 0 code;
  Sys.remove a

(* ------------------------------------------------------------------ *)
(* PR 10: SIGTERM drain flushes an in-progress --trace file, and the
   flushed trace validates. *)

let test_sigterm_trace_flush () =
  let a = Filename.temp_file "serve_a" ".c" in
  write_file a a_src;
  let trace = Filename.temp_file "serve_trace" ".json" in
  Sys.remove trace;
  let sock = Filename.temp_file "serve" ".sock" in
  Sys.remove sock;
  let pid = start_server [ "--no-store"; "--socket"; sock; "--trace"; trace ] in
  wait_for_socket sock;
  let fd = connect sock in
  let ic = Unix.in_channel_of_descr fd in
  send_all fd (Printf.sprintf "translate %s\ncheck %s\n" a a);
  let _ = input_line ic and _ = input_line ic in
  (* connection still open, requests answered: kill mid-session *)
  let code = stop_server pid in
  Alcotest.(check int) "server exits 0 on SIGTERM" 0 code;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Alcotest.(check bool) "trace file flushed on drain" true (Sys.file_exists trace);
  let v =
    shell
      (Printf.sprintf "%s trace --validate %s > /dev/null 2>&1" (Filename.quote acc_exe)
         (Filename.quote trace))
  in
  Alcotest.(check int) "flushed trace passes acc trace --validate" 0 v;
  Sys.remove a;
  Sys.remove trace

(* ------------------------------------------------------------------ *)
(* PR 10: SIGUSR1 dumps the flight-recorder ring mid-flight; the dump
   validates while the server keeps serving. *)

let test_sigusr1_flight_dump () =
  let a = Filename.temp_file "serve_a" ".c" in
  write_file a a_src;
  let dump = Filename.temp_file "serve_flight" ".json" in
  Sys.remove dump;
  let sock = Filename.temp_file "serve" ".sock" in
  Sys.remove sock;
  let pid =
    start_server
      [
        "--no-store"; "--socket"; sock; "--flight-recorder"; "4096";
        "--flight-dump"; dump;
      ]
  in
  wait_for_socket sock;
  let fd = connect sock in
  let ic = Unix.in_channel_of_descr fd in
  send_all fd (Printf.sprintf "translate %s\n" a);
  let _ = input_line ic in
  Unix.kill pid Sys.sigusr1;
  (* the dump happens on the serve loop's next tick *)
  let rec wait_dump tries =
    if tries = 0 then Alcotest.fail "flight dump never appeared"
    else if
      Sys.file_exists dump
      && shell
           (Printf.sprintf "%s trace --validate %s > /dev/null 2>&1"
              (Filename.quote acc_exe) (Filename.quote dump))
         = 0
    then ()
    else (
      Unix.sleepf 0.05;
      wait_dump (tries - 1))
  in
  wait_dump 200;
  (* still serving after the dump *)
  send_all fd (Printf.sprintf "check %s\n" a);
  let resp = input_line ic in
  Alcotest.(check bool) "server alive after SIGUSR1 dump" true
    (Astring.String.is_infix ~affix:"\"ok\":true" resp);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let code = stop_server pid in
  Alcotest.(check int) "server exits 0" 0 code;
  Sys.remove a;
  (try Sys.remove dump with Sys_error _ -> ())

let suite =
  [
    Alcotest.test_case "line_buf: chunking-independent framing" `Quick
      test_line_buf_chunking;
    Alcotest.test_case "line_buf: spanning lines and EOF tail" `Quick
      test_line_buf_tail;
    Alcotest.test_case "10k pipelined requests = one-at-a-time" `Quick
      test_pipelined_batch_equivalence;
    Alcotest.test_case "4 socket clients = sequential stdin" `Quick
      test_socket_concurrency;
    Alcotest.test_case "4 socket clients = sequential stdin under 5% faults" `Quick
      test_socket_concurrency_faults;
    Alcotest.test_case "SIGTERM drains in-flight requests" `Quick test_sigterm_drain;
    Alcotest.test_case "backpressure sheds in order and is counted" `Quick
      test_shedding;
    Alcotest.test_case "/metrics parses and agrees with status" `Slow
      test_metrics_endpoint;
    Alcotest.test_case "SIGTERM drain flushes a validating --trace" `Slow
      test_sigterm_trace_flush;
    Alcotest.test_case "SIGUSR1 dumps the flight recorder mid-flight" `Slow
      test_sigusr1_flight_dump;
  ]
