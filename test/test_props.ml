(* Property-based soundness tests for the trusted computational pieces:
   the kernel expression simplifier preserves evaluation, the prover's
   term simplifier preserves ground evaluation, linear-arithmetic verdicts
   agree with brute-force search, and the byte codec round-trips. *)

module B = Ac_bignum
module W = Ac_word
module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module T = Ac_prover.Term
module SMap = Map.Make (String)

let lenv = Layout.empty

(* ------------------------------------------------------------------ *)
(* Random pure expressions over a small environment. *)

let env_vars =
  [ ("i", Ty.Tint); ("j", Ty.Tint); ("n", Ty.Tnat); ("m", Ty.Tnat); ("b", Ty.Tbool) ]

let gen_expr =
  let open QCheck.Gen in
  let leaf_int = oneof [ map E.int_e (int_range (-20) 20);
                         oneofl [ E.Var ("i", Ty.Tint); E.Var ("j", Ty.Tint) ] ] in
  let leaf_nat = oneof [ map E.nat_e (int_range 0 20);
                         oneofl [ E.Var ("n", Ty.Tnat); E.Var ("m", Ty.Tnat) ] ] in
  let rec expr ty n =
    if n = 0 then (match ty with `I -> leaf_int | `N -> leaf_nat | `B -> bool_leaf)
    else begin
      match ty with
      | `I ->
        oneof
          [ leaf_int;
            map2 (fun a c -> E.Binop (E.Add, a, c)) (expr `I (n - 1)) (expr `I (n - 1));
            map2 (fun a c -> E.Binop (E.Sub, a, c)) (expr `I (n - 1)) (expr `I (n - 1));
            map2 (fun a c -> E.Binop (E.Mul, a, c)) (expr `I (n - 1)) (expr `I (n - 1));
            map (fun a -> E.Unop (E.Neg, a)) (expr `I (n - 1));
            map3 (fun c a x -> E.Ite (c, a, x)) (expr `B (n - 1)) (expr `I (n - 1))
              (expr `I (n - 1)) ]
      | `N ->
        oneof
          [ leaf_nat;
            map2 (fun a c -> E.Binop (E.Add, a, c)) (expr `N (n - 1)) (expr `N (n - 1));
            map2 (fun a c -> E.Binop (E.Sub, a, c)) (expr `N (n - 1)) (expr `N (n - 1));
            map3 (fun c a x -> E.Ite (c, a, x)) (expr `B (n - 1)) (expr `N (n - 1))
              (expr `N (n - 1)) ]
      | `B ->
        oneof
          [ bool_leaf;
            map2 (fun a c -> E.Binop (E.Lt, a, c)) (expr `I (n - 1)) (expr `I (n - 1));
            map2 (fun a c -> E.Binop (E.Le, a, c)) (expr `N (n - 1)) (expr `N (n - 1));
            map2 (fun a c -> E.Binop (E.Eq, a, c)) (expr `I (n - 1)) (expr `I (n - 1));
            map2 E.and_e (expr `B (n - 1)) (expr `B (n - 1));
            map2 E.or_e (expr `B (n - 1)) (expr `B (n - 1));
            map E.not_e (expr `B (n - 1)) ]
    end
  and bool_leaf =
    oneof [ oneofl [ E.true_e; E.false_e ]; return (E.Var ("b", Ty.Tbool)) ]
  in
  let* depth = int_range 0 4 in
  let* k = oneofl [ `I; `N; `B ] in
  expr k depth

let gen_env =
  let open QCheck.Gen in
  let* i = int_range (-30) 30 in
  let* j = int_range (-30) 30 in
  let* n = int_range 0 30 in
  let* m = int_range 0 30 in
  let* b = bool in
  return
    (SMap.of_list
       [ ("i", Value.Vint (B.of_int i)); ("j", Value.Vint (B.of_int j));
         ("n", Value.vnat (B.of_int n)); ("m", Value.vnat (B.of_int m));
         ("b", Value.Vbool b) ])

let arb_expr_env =
  QCheck.make
    ~print:(fun (e, _) -> Ac_lang.Pretty.expr_to_string e)
    QCheck.Gen.(pair gen_expr gen_env)

(* ------------------------------------------------------------------ *)
(* Random prover terms. *)

let gen_term =
  let open QCheck.Gen in
  let leaf =
    oneof [ map T.int_of (int_range (-20) 20); oneofl [ T.Var ("x", T.Sint); T.Var ("y", T.Sint) ] ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          map2 T.add_t (go (n - 1)) (go (n - 1));
          map2 T.sub_t (go (n - 1)) (go (n - 1));
          map2 (fun a b -> T.mul_t (T.int_of 3) (T.add_t a b)) (go (n - 1)) (go (n - 1));
          map (fun a -> T.App (T.Neg, [ a ])) (go (n - 1)) ]
  in
  let* depth = int_range 0 4 in
  go depth

let arb_term_env =
  QCheck.make
    ~print:(fun (t, _) -> T.to_string t)
    QCheck.Gen.(
      pair gen_term (pair (int_range (-15) 15) (int_range (-15) 15)))

(* ------------------------------------------------------------------ *)
(* Random monadic programs with guards, for the guard-discharge pass.
   Every value is a u32 word, so arithmetic is total (modular); the only
   failure source is a [Guard] evaluating to false — exactly the outcome
   the discharge pass claims to rule out for the guards it removes.  The
   property is differential: the kernel-checked rewrite must agree with
   the original program under the interpreter on every probed input, so a
   discharged guard that could actually fail shows up as [Fails] on one
   side and a normal outcome on the other. *)

module M = Ac_monad.M
module Interp = Ac_monad.Interp
module State = Ac_simpl.State
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

let u32 = Ty.Tword (Ty.Unsigned, Ty.W32)
let w32 n = E.word_e Ty.Unsigned Ty.W32 n

let gen_wexpr vars n =
  let open QCheck.Gen in
  let leaf =
    oneof [ map w32 (int_range 0 40); map (fun x -> E.Var (x, u32)) (oneofl vars) ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          map2 (fun a b -> E.Binop (E.Add, a, b)) (go (n - 1)) (go (n - 1));
          map2 (fun a b -> E.Binop (E.Sub, a, b)) (go (n - 1)) (go (n - 1));
          map2 (fun a b -> E.Binop (E.Mul, a, b)) (go (n - 1)) (go (n - 1)) ]
  in
  go n

let gen_cond vars n =
  let open QCheck.Gen in
  let cmp =
    let* op = oneofl [ E.Lt; E.Le; E.Eq; E.Ne; E.Gt; E.Ge ] in
    map2 (fun a b -> E.Binop (op, a, b)) (gen_wexpr vars n) (gen_wexpr vars n)
  in
  oneof [ cmp; map2 E.and_e cmp cmp; map2 E.or_e cmp cmp; map E.not_e cmp ]

let gen_guard_kind =
  QCheck.Gen.oneofl
    [ Ir.Div_by_zero; Ir.Shift_bounds; Ir.Array_bounds; Ir.Unsigned_overflow ]

let rec gen_prog vars n =
  let open QCheck.Gen in
  if n = 0 then map (fun e -> M.Return e) (gen_wexpr vars 1)
  else
    oneof
      [ map (fun e -> M.Return e) (gen_wexpr vars 2);
        map (fun e -> M.Throw e) (gen_wexpr vars 1);
        (let* k = gen_guard_kind in
         let* c = gen_cond vars 1 in
         let* rest = gen_prog vars (n - 1) in
         return (M.Bind (M.Guard (k, c), M.Pwild, rest)));
        (let* c = gen_cond vars 1 in
         map2 (fun a b -> M.Cond (c, a, b)) (gen_prog vars (n - 1)) (gen_prog vars (n - 1)));
        (let z = Printf.sprintf "z%d" (List.length vars) in
         let* e = gen_wexpr vars 2 in
         let* rest = gen_prog (z :: vars) (n - 1) in
         return (M.Bind (M.Return e, M.Pvar (z, u32), rest)));
        (let* g = gen_wexpr vars 2 in
         let* rest = gen_prog vars (n - 1) in
         return (M.Bind (M.Modify [ M.Global_set ("g", g) ], M.Pwild, rest)));
        (let i = Printf.sprintf "w%d" (List.length vars) in
         let z = Printf.sprintf "z%d" (List.length vars) in
         let* bound = int_range 0 6 in
         let* k = gen_guard_kind in
         let* c = gen_cond (i :: vars) 1 in
         let* init = gen_wexpr vars 1 in
         let body =
           M.Bind
             (M.Guard (k, c), M.Pwild, M.Return (E.Binop (E.Add, E.Var (i, u32), w32 1)))
         in
         let loop =
           M.While (M.Pvar (i, u32), E.Binop (E.Lt, E.Var (i, u32), w32 bound), body, init)
         in
         let* rest = gen_prog (z :: vars) (n - 1) in
         return (M.Bind (loop, M.Pvar (z, u32), rest))) ]

let gen_mprog =
  QCheck.Gen.(
    let* depth = int_range 1 4 in
    gen_prog [ "x"; "y" ] depth)

let arb_mprog =
  QCheck.make
    ~print:(fun (m, _) -> Ac_monad.Mprint.to_string m)
    QCheck.Gen.(pair gen_mprog (pair (int_range 0 0xFFFF) (int_range 0 0xFFFF)))

let mk_ufunc name params body : M.func =
  { M.name; params; ret_ty = u32; body; convention = M.Lambda_bound;
    heap_model = M.Byte_level; locals = [] }

(* [f] (with body m / m') applied to every probe input must behave
   identically under the interpreter: a discharged guard that could
   actually fail shows up as [Fails] on one side only. *)
let funcs_agree (funcs : M.t -> M.func list) (m : M.t) (m' : M.t) probes =
  let prog body = { M.lenv; globals = [ ("g", u32) ]; funcs = funcs body; heap_types = [] } in
  let state0 =
    State.set_global State.empty "g" (Value.vword Ty.Unsigned (W.of_int W.W32 0))
  in
  let agree (vx, vy) =
    let args =
      [ Value.vword Ty.Unsigned (W.of_int W.W32 vx);
        Value.vword Ty.Unsigned (W.of_int W.W32 vy) ]
    in
    let r = Interp.run_func (prog m) ~fuel:5000 state0 "f" args in
    let r' = Interp.run_func (prog m') ~fuel:5000 state0 "f" args in
    match (r, r') with
    | Interp.Returns (v, s), Interp.Returns (v', s') ->
      Value.equal v v' && Value.equal (State.get_global s "g") (State.get_global s' "g")
    | Interp.Throws (v, _), Interp.Throws (v', _) -> Value.equal v v'
    | Interp.Fails p, Interp.Fails q -> String.equal p q
    | Interp.Gets_stuck _, Interp.Gets_stuck _ -> true
    | Interp.Diverges, Interp.Diverges -> true
    | _ -> false
  in
  List.for_all agree probes

let discharge_agrees ((m : M.t), (a, b)) =
  let ctx = Rules.empty_ctx lenv in
  let cert = Ac_analysis.infer_cert lenv m in
  match Thm.by_opt ctx (Rules.Rule_guard_true (m, cert)) [] with
  | None -> false (* the kernel must accept the analysis's own certificate *)
  | Some thm ->
    (match Thm.check ctx thm with Result.Ok () -> true | Result.Error _ -> false)
    &&
    let m' = match Thm.concl thm with J.Equiv (m', _) -> m' | _ -> m in
    funcs_agree
      (fun body -> [ mk_ufunc "f" [ ("x", u32); ("y", u32) ] body ])
      m m'
      [ (a, b); (0, 0); (1, 0xFFFFFFFF); (31, 2); (0xFFFFFFFF, 0xFFFFFFFF) ]

(* ------------------------------------------------------------------ *)
(* Interprocedural summaries: on random two-function programs, the
   summary-assisted discharge of the caller must (1) produce a
   certificate the kernel accepts, (2) agree with the original program
   under the interpreter on every probe (differential soundness: no
   refutable guard is ever discharged), and (3) discharge at least every
   guard the intraprocedural pass discharges (monotone improvement: a
   summary can only add facts, never lose them). *)

let gen_callprog =
  QCheck.Gen.(
    let* hdepth = int_range 1 3 in
    let* hbody = gen_prog [ "a" ] hdepth in
    let* arg = gen_wexpr [ "x"; "y" ] 1 in
    let* fdepth = int_range 1 3 in
    let* rest = gen_prog [ "z"; "x"; "y" ] fdepth in
    return (hbody, M.Bind (M.Call ("h", [ arg ]), M.Pvar ("z", u32), rest)))

let arb_callprog =
  QCheck.make
    ~print:(fun ((hbody, fbody), _) ->
      "h(a) = " ^ Ac_monad.Mprint.to_string hbody ^ "\nf(x,y) = "
      ^ Ac_monad.Mprint.to_string fbody)
    QCheck.Gen.(pair gen_callprog (pair (int_range 0 0xFFFF) (int_range 0 0xFFFF)))

let interproc_discharge_sound (((hbody : M.t), (fbody : M.t)), (a, b)) =
  let hf = mk_ufunc "h" [ ("a", u32) ] hbody in
  let ff = mk_ufunc "f" [ ("x", u32); ("y", u32) ] fbody in
  let fbodies = [ hf; ff ] in
  let sums, _ = Ac_analysis.Summary.compute lenv fbodies in
  let ctx = { (Rules.empty_ctx lenv) with Rules.fbodies } in
  let discharged cert =
    match Thm.by_opt ctx (Rules.Rule_guard_true (fbody, cert)) [] with
    | None -> None
    | Some thm -> (
      match Thm.check ctx thm with
      | Result.Error _ -> None
      | Result.Ok () -> (
        match Thm.concl thm with J.Equiv (m', _) -> Some m' | _ -> None))
  in
  match discharged (Ac_analysis.infer_cert ~sums lenv fbody) with
  | None -> false (* the kernel must accept the analysis's own certificate *)
  | Some inter ->
    let intra =
      match discharged (Ac_analysis.infer_cert lenv fbody) with
      | Some m -> m
      | None -> fbody
    in
    (* Monotone improvement. *)
    Ac_analysis.guard_count inter <= Ac_analysis.guard_count intra
    (* Differential soundness, caller body rewritten, callee kept. *)
    && funcs_agree
         (fun body -> [ hf; mk_ufunc "f" [ ("x", u32); ("y", u32) ] body ])
         fbody inter
         [ (a, b); (0, 0); (1, 0xFFFFFFFF); (31, 2); (0xFFFFFFFF, 0xFFFFFFFF) ]

(* ------------------------------------------------------------------ *)

let props =
  let open QCheck in
  [
    Test.make ~name:"kernel esimp preserves evaluation" ~count:800 arb_expr_env
      (fun (e, env) ->
        let v1 = try Some (E.eval_pure lenv env e) with E.Eval_stuck _ -> None in
        let v2 =
          try Some (E.eval_pure lenv env (Ac_kernel.Esimp.simp lenv e))
          with E.Eval_stuck _ -> None
        in
        match (v1, v2) with
        | Some a, Some b -> Value.equal a b
        | None, _ -> QCheck.assume_fail ()
        | Some _, None -> false);
    Test.make ~name:"prover simp preserves ground evaluation" ~count:800 arb_term_env
      (fun (t, (x, y)) ->
        let env = [ ("x", T.Vint (B.of_int x)); ("y", T.Vint (B.of_int y)) ] in
        T.veq (T.eval env t) (T.eval env (Ac_prover.Simp.normalize t)));
    Test.make ~name:"LA unsat verdicts are sound (no small model exists)" ~count:200
      (QCheck.make
         QCheck.Gen.(
           list_size (int_range 1 4)
             (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-6) 6))))
      (fun constraints ->
        (* each (a, b, c) is the constraint a*x + b*y + c >= 0 *)
        let x = T.Var ("x", T.Sint) and y = T.Var ("y", T.Sint) in
        let terms =
          List.map
            (fun (a, b, c) ->
              T.le_t T.zero
                (T.add_t
                   (T.add_t (T.mul_t (T.int_of a) x) (T.mul_t (T.int_of b) y))
                   (T.int_of c)))
            constraints
        in
        if not (Ac_prover.La.unsat (List.map Ac_prover.Simp.normalize terms)) then true
        else begin
          (* claimed unsat: verify no model with |x|,|y| <= 25 *)
          let sat = ref false in
          for vx = -25 to 25 do
            for vy = -25 to 25 do
              if
                List.for_all
                  (fun (a, b, c) -> (a * vx) + (b * vy) + c >= 0)
                  constraints
              then sat := true
            done
          done;
          not !sat
        end);
    Test.make ~name:"solver never proves falsifiable ground facts" ~count:300
      (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50))
      (fun (a, b) ->
        let x = T.Var ("x", T.Sint) in
        (* claim: x = a -> x = b; valid iff a = b *)
        let goal = T.imp_t (T.eq_t x (T.int_of a)) (T.eq_t x (T.int_of b)) in
        let proved = Ac_prover.Solver.holds goal in
        proved = (a = b));
    Test.make ~name:"codec round-trips random struct values" ~count:300
      (QCheck.make
         QCheck.Gen.(
           triple (int_range 0 0xFFFF) (int_range 0 0xFFFFFF) (int_range 0 255)))
      (fun (a, b, c) ->
        let lenv =
          Layout.declare_struct Layout.empty "s"
            [ ("x", Ty.Cword (Ty.Unsigned, Ty.W16)); ("y", Ty.Cword (Ty.Unsigned, Ty.W32));
              ("z", Ty.Cword (Ty.Unsigned, Ty.W8)) ]
        in
        let v =
          Value.Vstruct
            ( "s",
              [ ("x", Value.vword Ty.Unsigned (W.of_int W.W16 a));
                ("y", Value.vword Ty.Unsigned (W.of_int W.W32 b));
                ("z", Value.vword Ty.Unsigned (W.of_int W.W8 c)) ] )
        in
        let bytes = Ac_lang.Codec.encode lenv v in
        let read i = List.nth bytes (B.to_int_exn i) in
        let v' = Ac_lang.Codec.decode lenv (Ty.Cstruct "s") read B.zero in
        Value.equal v v');
    Test.make ~name:"struct layout respects alignment" ~count:200
      (QCheck.make
         QCheck.Gen.(
           list_size (int_range 1 5)
             (oneofl
                [ Ty.Cword (Ty.Unsigned, Ty.W8); Ty.Cword (Ty.Unsigned, Ty.W16);
                  Ty.Cword (Ty.Unsigned, Ty.W32); Ty.Cword (Ty.Unsigned, Ty.W64) ])))
      (fun ctys ->
        let fields = List.mapi (fun i c -> (Printf.sprintf "f%d" i, c)) ctys in
        let lenv = Layout.declare_struct Layout.empty "s" fields in
        List.for_all
          (fun (fname, c) ->
            let off = Layout.field_offset lenv "s" fname in
            off mod Layout.align_of lenv c = 0)
          fields
        && Layout.size_of lenv (Ty.Cstruct "s") mod Layout.align_of lenv (Ty.Cstruct "s") = 0);
    Test.make ~name:"discharged guards never fail under the interpreter" ~count:600
      arb_mprog discharge_agrees;
    Test.make
      ~name:"interprocedural discharge is sound and monotone vs intraprocedural"
      ~count:300 arb_callprog interproc_discharge_sound;
  ]

let suite = List.map QCheck_alcotest.to_alcotest props
