(* PR 3's performance layer: term-order/equality consistency, hash-cons
   soundness, the memoized derivation checker, and the parallel driver.

   The ordering/equality properties are the bugfix half (compare_t used to
   ignore the sort on Var, so ordered containers could identify terms that
   [equal] distinguishes); the differentials are the performance half —
   every fast path must be observationally identical to the slow one. *)

module B = Ac_bignum
module T = Ac_prover.Term
module Driver = Autocorres.Driver
module Check_cache = Autocorres.Check_cache
module Pool = Autocorres.Pool
module Diag = Autocorres.Diag
module Thm = Ac_kernel.Thm
module Mprint = Ac_monad.Mprint
module Csources = Ac_cases.Csources

(* ------------------------------------------------------------------ *)
(* Term generators.  A deliberately tiny vocabulary (two names, two
   sorts, small constants, depth <= 2) so random pairs collide often
   enough to exercise the [equal]/[compare_t = 0] direction, and
   same-name-different-sort vars probe exactly the fixed bug. *)

let gen_term =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map T.int_of (int_range (-3) 3);
        oneofl
          [ T.Var ("x", T.Sint); T.Var ("x", T.Sbool); T.Var ("y", T.Sint);
            T.tt; T.ff ] ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          map2 (fun a b -> T.App (T.Add, [ a; b ])) (go (n - 1)) (go (n - 1));
          map2 (fun a b -> T.App (T.Eq, [ a; b ])) (go (n - 1)) (go (n - 1));
          map (fun a -> T.App (T.Neg, [ a ])) (go (n - 1));
          map (fun a -> T.App (T.Uf "f", [ a ])) (go (n - 1)) ]
  in
  let* depth = int_range 0 2 in
  go depth

(* A structural copy sharing no nodes with the original, so the
   properties cannot be satisfied by the [==] fast paths alone. *)
let rec deep_copy (t : T.t) : T.t =
  match t with
  | T.Int n -> T.Int (B.add n B.zero)
  | T.Bool b -> T.Bool b
  | T.Var (x, s) -> T.Var (String.init (String.length x) (String.get x), s)
  | T.App (f, xs) -> T.App (f, List.map deep_copy xs)

(* Pairs biased towards equality: half the time b is a deep copy of a. *)
let gen_pair =
  let open QCheck.Gen in
  let* a = gen_term in
  let* copy = bool in
  let+ b = if copy then return (deep_copy a) else gen_term in
  (a, b)

let arb_pair =
  QCheck.make ~print:(fun (a, b) -> T.to_string a ^ " / " ^ T.to_string b) gen_pair

let arb_triple =
  QCheck.make
    ~print:(fun (a, (b, c)) ->
      String.concat " / " (List.map T.to_string [ a; b; c ]))
    QCheck.Gen.(pair gen_term (pair gen_term gen_term))

let sign n = compare n 0

let props =
  let open QCheck in
  [
    Test.make ~name:"equal a b <=> compare_t a b = 0" ~count:2000 arb_pair
      (fun (a, b) -> T.equal a b = (T.compare_t a b = 0));
    Test.make ~name:"compare_t antisymmetry" ~count:2000 arb_pair (fun (a, b) ->
        sign (T.compare_t a b) = -sign (T.compare_t b a));
    Test.make ~name:"compare_t transitivity" ~count:2000 arb_triple
      (fun (a, (b, c)) ->
        let ab = T.compare_t a b and bc = T.compare_t b c in
        if ab <= 0 && bc <= 0 then T.compare_t a c <= 0 else true);
    Test.make ~name:"hash-cons soundness: hc a == hc b <=> equal a b" ~count:2000
      arb_pair
      (fun (a, b) ->
        let was = !T.hc_enabled in
        T.hc_enabled := true;
        let r = T.hc a == T.hc b in
        T.hc_enabled := was;
        r = T.equal a b);
    Test.make ~name:"hc preserves the term" ~count:1000
      (QCheck.make ~print:T.to_string gen_term)
      (fun a ->
        let was = !T.hc_enabled in
        T.hc_enabled := true;
        let r = T.equal (T.hc a) a in
        T.hc_enabled := was;
        r);
  ]

(* ------------------------------------------------------------------ *)
(* The worker pool is observably List.map. *)

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "ordered results" (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs)

let test_pool_first_failure () =
  let xs = List.init 50 Fun.id in
  let f x = if x >= 10 then failwith (string_of_int x) else x in
  match Pool.map ~jobs:4 f xs with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m ->
    Alcotest.(check string) "lowest-index failure wins" "10" m

let test_pool_reuse () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 40 Fun.id in
      Alcotest.(check (list int))
        "first map" (List.map succ xs)
        (Pool.map_on pool succ xs);
      Alcotest.(check (list int))
        "second map on the same pool"
        (List.map (fun x -> x * 3) xs)
        (Pool.map_on pool (fun x -> x * 3) xs))

(* Regression for the missed-wakeup race: a worker that slept through an
   entire map (every item drained before it woke) used to exit its wait
   loop after [map_on] had torn the task down and die on the missing
   task, which poisoned the next [shutdown].  Many tiny maps on a pool
   much wider than the work make missed maps overwhelmingly likely. *)
let test_pool_missed_wakeup () =
  let pool = Pool.create ~jobs:8 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for i = 1 to 200 do
        Alcotest.(check (list int)) "tiny map" [ i ] (Pool.map_on pool Fun.id [ i ])
      done)

(* ------------------------------------------------------------------ *)
(* The parallel driver is observably the sequential driver.  Everything
   the caller can see must match: per-function levels, final bodies,
   skip lists, diagnostics, budget accounting. *)

let opts jobs =
  { Driver.default_options with Driver.keep_going = true; jobs }

let fingerprint (res : Driver.result) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun fr ->
      Buffer.add_string b fr.Driver.fr_name;
      Buffer.add_string b (Driver.level_name (Driver.level_of fr));
      Buffer.add_string b (if fr.Driver.fr_chain = None then "-" else "+");
      Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_final);
      List.iter (fun (p, w) -> Buffer.add_string b (p ^ ":" ^ w)) fr.Driver.fr_skipped)
    res.Driver.funcs;
  List.iter
    (fun (d : Driver.degraded) ->
      Buffer.add_string b d.Driver.dg_name;
      Buffer.add_string b (Driver.level_name (Driver.degraded_level d)))
    res.Driver.degraded;
  List.iter (fun d -> Buffer.add_string b (Diag.to_string d)) res.Driver.diags;
  Buffer.add_string b (string_of_int res.Driver.budget_hits);
  Buffer.contents b

let test_driver_jobs_differential () =
  List.iter
    (fun (name, src) ->
      let seq = Driver.run ~options:(opts 1) src in
      let par = Driver.run ~options:(opts 4) src in
      Alcotest.(check string)
        (name ^ ": --jobs 4 output = --jobs 1 output")
        (fingerprint seq) (fingerprint par))
    Csources.all

(* The same differential through the real binary: `acc translate
   --diag-json --jobs 4` must be byte-identical to `--jobs 1`. *)
let acc_exe = Filename.concat (Sys.getcwd ()) "../bin/acc.exe"

let run_acc args file =
  let out = Filename.temp_file "acc_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s %s > %s 2> /dev/null" (Filename.quote acc_exe) args
      (Filename.quote file) (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, s)

let test_cli_jobs_differential () =
  Alcotest.(check bool) "acc.exe present" true (Sys.file_exists acc_exe);
  List.iter
    (fun (name, src) ->
      let file = Filename.temp_file "acc_jobs" ".c" in
      let oc = open_out file in
      output_string oc src;
      close_out oc;
      let code1, out1 = run_acc "translate --keep-going --diag-json --jobs 1" file in
      let code4, out4 = run_acc "translate --keep-going --diag-json --jobs 4" file in
      Sys.remove file;
      Alcotest.(check int) (name ^ ": same exit code") code1 code4;
      Alcotest.(check string) (name ^ ": same --diag-json output") out1 out4)
    Csources.all

(* ------------------------------------------------------------------ *)
(* Cached vs uncached derivation checking: over every theorem the corpus
   produces, both modes accept; over a corrupted derivation, both
   reject. *)

let test_check_differential () =
  List.iter
    (fun (name, src) ->
      let res = Driver.run ~options:(opts 1) src in
      Alcotest.(check bool)
        (name ^ ": uncached accepts") true
        (Driver.check_all ~cached:false res = Ok ());
      Alcotest.(check bool)
        (name ^ ": cached accepts") true
        (Driver.check_all ~cached:true res = Ok ()))
    Csources.all

(* The kernel deliberately exposes no way to build a theorem without
   running [Rules.infer] — not even for tests — so the corrupted
   certificate the auditors must catch is a *genuine* derivation
   presented under the wrong context: gcd's end-to-end chain was built
   under its word-abstraction context (whose [wvars] the W_* steps
   depend on), so auditing it under the run context, whose [wvars] are
   empty, re-runs the same inferences against premises they cannot
   reproduce.  Both the uncached and the cached checker must reject. *)
let test_check_rejects_corruption () =
  let res = Driver.run ~options:(opts 1) Csources.gcd_c in
  let fr = List.hd res.Driver.funcs in
  let chain =
    match fr.Driver.fr_chain with
    | Some t -> t
    | None -> Alcotest.fail "gcd produced no end-to-end chain theorem"
  in
  (* Sanity: the derivation is genuine — under the context it was built
     with (recomputed by check_all), everything accepts. *)
  Alcotest.(check bool) "derivation is genuine" true
    (Driver.check_all ~cached:false res = Ok ());
  let is_err = function Error _ -> true | Ok () -> false in
  Alcotest.(check bool)
    "kernel check rejects the wrong-context derivation" true
    (is_err (Thm.check res.Driver.ctx chain));
  let cache = Check_cache.create res.Driver.ctx in
  Alcotest.(check bool)
    "cached check rejects the wrong-context derivation" true
    (is_err (Check_cache.check cache chain));
  (* And a fresh cache re-validates from scratch: its memo table is
     private and dies with it, so nothing an earlier cache (or anyone
     else) did can pre-seed a later one. *)
  let good = fr.Driver.fr_l2_thm in
  let c1 = Check_cache.create res.Driver.ctx in
  Alcotest.(check bool) "first cache accepts" true
    (Check_cache.check c1 good = Ok ());
  let c2 = Check_cache.create res.Driver.ctx in
  Alcotest.(check bool) "second cache accepts" true
    (Check_cache.check c2 good = Ok ());
  Alcotest.(check bool) "second cache re-walked the derivation" true
    (Check_cache.misses c2 > 0)

(* Pin down the wvars-locality invariant stated next to [Rules.infer]
   (and relied on by [Driver.check_all]'s per-function grouping): the
   L1/L2/HL component derivations contain no wvars-sensitive rule, so
   they must check under the run context too, not only under the
   function's recomputed word-abstraction context.  If a rule outside
   the W_* family starts reading [ctx.wvars], this fails. *)
let test_components_check_under_run_ctx () =
  List.iter
    (fun (name, src) ->
      let res = Driver.run ~options:(opts 1) src in
      List.iter
        (fun fr ->
          List.iter
            (fun t ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s: %s checks under the run context" name
                   fr.Driver.fr_name (Thm.rule_name t))
                true
                (Thm.check res.Driver.ctx t = Ok ()))
            (fr.Driver.fr_l1_thm :: fr.Driver.fr_l2_thm :: fr.Driver.fr_hl_thms))
        res.Driver.funcs)
    Csources.all

let suite =
  List.map QCheck_alcotest.to_alcotest props
  @ [
      ("pool map preserves order", `Quick, test_pool_map_order);
      ("pool re-raises the first failure", `Quick, test_pool_first_failure);
      ("pool survives reuse across maps", `Quick, test_pool_reuse);
      ("pool survives missed wakeups", `Quick, test_pool_missed_wakeup);
      ("driver --jobs differential over corpus", `Slow, test_driver_jobs_differential);
      ("CLI --diag-json --jobs differential", `Slow, test_cli_jobs_differential);
      ("cached vs uncached check over corpus", `Slow, test_check_differential);
      ("both check modes reject corruption", `Quick, test_check_rejects_corruption);
      ( "components check under the run context",
        `Slow,
        test_components_check_under_run_ctx );
    ]
