(* Tests for the guard-discharge analysis (lib/analysis + kernel Absdom):
   domain algebra and widening termination, nullness transfer, kernel-checked
   discharge on hand-built programs and on the paper corpus, definite
   initialisation, and lint refutations. *)

module B = Ac_bignum
module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Layout = Ac_lang.Layout
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module A = Ac_kernel.Absdom
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment
module Driver = Autocorres.Driver
module Csources = Ac_cases.Csources

let lenv = Layout.empty
let u32 = Ty.Tword (Ty.Unsigned, Ty.W32)
let w32 n = E.word_e Ty.Unsigned Ty.W32 n
let itv lo hi = A.itv_make (Some (B.of_int lo)) (Some (B.of_int hi))

(* ------------------------------------------------------------------ *)
(* Interval domain. *)

let interval_tests =
  [
    ( "join is an upper bound",
      fun () ->
        let a = itv 0 5 and b = itv 3 9 in
        let j = A.itv_join a b in
        Alcotest.(check bool) "a <= join" true (A.itv_leq a j);
        Alcotest.(check bool) "b <= join" true (A.itv_leq b j);
        Alcotest.(check bool) "join = [0,9]" true
          (A.itv_leq j (itv 0 9) && A.itv_leq (itv 0 9) j) );
    ( "widening terminates on a strictly ascending chain",
      fun () ->
        (* [0,0] ⊑ [0,1] ⊑ [0,2] ⊑ ... — joins never converge, widening
           must reach a post-fixpoint in a bounded number of steps. *)
        let steps = ref 0 in
        let cur = ref (itv 0 0) in
        let continue = ref true in
        while !continue && !steps < 10 do
          let next = itv 0 (!steps + 1) in
          if A.itv_leq next !cur then continue := false
          else begin
            cur := A.itv_widen !cur next;
            incr steps
          end
        done;
        Alcotest.(check bool) "stabilised well before the bound" true (!steps <= 3);
        Alcotest.(check bool) "post-fixpoint is upward-open" true
          (A.itv_leq (itv 0 1000000) !cur) );
    ( "env widening terminates per variable",
      fun () ->
        let env n =
          A.set_var A.env_top "i" (A.Dword (Ty.Unsigned, Ty.W32, itv 0 n, A.Ptop))
        in
        let steps = ref 0 in
        let cur = ref (env 0) in
        let continue = ref true in
        while !continue && !steps < 10 do
          let next = env (!steps + 1) in
          if A.env_leq next !cur then continue := false
          else begin
            cur := A.env_widen !cur next;
            incr steps
          end
        done;
        Alcotest.(check bool) "env chain stabilised" true (!steps <= 3) );
    ( "meet of disjoint intervals is empty",
      fun () ->
        Alcotest.(check bool) "empty" true (A.itv_is_empty (A.itv_meet (itv 0 3) (itv 5 9)))
    );
  ]

(* ------------------------------------------------------------------ *)
(* Nullness transfer through [assume]. *)

let nullness_tests =
  let cty = Ty.Cword (Ty.Unsigned, Ty.W32) in
  let pty = Ty.Tptr cty in
  let p = E.Var ("p", pty) in
  [
    ( "PtrSpan assumption makes a pointer non-null",
      fun () ->
        match A.assume lenv A.env_top (E.PtrSpan (cty, p)) true with
        | None -> Alcotest.fail "nonnull assumption should be satisfiable"
        | Some env -> (
          match A.lookup_var env "p" pty with
          | A.Dptr A.Nnonnull -> ()
          | d -> Alcotest.failf "expected Nnonnull, got %s" (A.vdom_to_string d)) );
    ( "null and non-null assumptions contradict",
      fun () ->
        match A.assume lenv A.env_top (E.Binop (E.Eq, p, E.null_e cty)) true with
        | None -> Alcotest.fail "p = NULL should be satisfiable at top"
        | Some env -> (
          match A.assume lenv env (E.PtrSpan (cty, p)) true with
          | None -> ()
          | Some _ -> Alcotest.fail "NULL pointer cannot satisfy PtrSpan") );
    ( "comparison assumption narrows a word variable",
      fun () ->
        let x = E.Var ("x", u32) in
        match A.assume lenv A.env_top (E.Binop (E.Lt, x, w32 10)) true with
        | None -> Alcotest.fail "x < 10 should be satisfiable"
        | Some env -> (
          match A.lookup_var env "x" u32 with
          | A.Dword (_, _, i, _) ->
            Alcotest.(check bool) "x <= 9" true (A.itv_leq i (itv 0 9))
          | d -> Alcotest.failf "expected word interval, got %s" (A.vdom_to_string d)) );
  ]

(* ------------------------------------------------------------------ *)
(* Kernel-checked discharge on hand-built monadic programs. *)

let discharge_m (m : M.t) : M.t =
  let ctx = Rules.empty_ctx lenv in
  let cert = Ac_analysis.infer_cert lenv m in
  let thm = Thm.by ctx (Rules.Rule_guard_true (m, cert)) [] in
  (match Thm.check ctx thm with
  | Result.Ok () -> ()
  | Result.Error e -> Alcotest.failf "Thm.check rejected the discharge: %s" e);
  match Thm.concl thm with J.Equiv (m', _) -> m' | _ -> Alcotest.fail "not an Equiv"

let discharge_tests =
  [
    ( "a tautological guard is discharged",
      fun () ->
        let m =
          M.Bind (M.Guard (Ir.Div_by_zero, E.Binop (E.Lt, w32 0, w32 1)), M.Pwild,
                  M.Return (w32 7))
        in
        Alcotest.(check int) "no guards left" 0 (Ac_analysis.guard_count (discharge_m m)) );
    ( "an unprovable guard is kept",
      fun () ->
        let m =
          M.Bind
            ( M.Guard (Ir.Div_by_zero, E.Binop (E.Lt, E.Var ("x", u32), E.Var ("y", u32))),
              M.Pwild, M.Return (w32 0) )
        in
        Alcotest.(check int) "guard survives" 1 (Ac_analysis.guard_count (discharge_m m)) );
    ( "a branch condition discharges the guard under it",
      fun () ->
        let x = E.Var ("x", u32) in
        let m =
          M.Cond
            ( E.Binop (E.Lt, x, w32 32),
              M.Bind (M.Guard (Ir.Shift_bounds, E.Binop (E.Lt, x, w32 32)), M.Pwild,
                      M.Return x),
              M.Return (w32 0) )
        in
        Alcotest.(check int) "guard under the branch discharged" 0
          (Ac_analysis.guard_count (discharge_m m)) );
    ( "a loop invariant from widening discharges a body guard",
      fun () ->
        let i = E.Var ("i", u32) in
        (* while (i < 10) { guard (i < 32); i = i + 1 } from 0: needs the
           widened invariant i ∈ [0, ∞) meet the loop condition. *)
        let body =
          M.Bind (M.Guard (Ir.Shift_bounds, E.Binop (E.Lt, i, w32 32)), M.Pwild,
                  M.Return (E.Binop (E.Add, i, w32 1)))
        in
        let m = M.While (M.Pvar ("i", u32), E.Binop (E.Lt, i, w32 10), body, w32 0) in
        Alcotest.(check int) "loop guard discharged" 0
          (Ac_analysis.guard_count (discharge_m m)) );
    ( "certificates for the wrong invariant are rejected",
      fun () ->
        let i = E.Var ("i", u32) in
        let body =
          M.Bind (M.Guard (Ir.Shift_bounds, E.Binop (E.Lt, i, w32 5)), M.Pwild,
                  M.Return (E.Binop (E.Add, i, w32 1)))
        in
        let m = M.While (M.Pvar ("i", u32), E.Binop (E.Lt, i, w32 10), body, w32 0) in
        (* Claim the bogus invariant i ∈ [0,3]: not inductive (the body
           reaches 4), so the kernel must refuse to discharge with it. *)
        let bogus =
          {
            A.c_invs =
              [ (0, A.set_var A.env_top "i" (A.Dword (Ty.Unsigned, Ty.W32, itv 0 3, A.Ptop))) ];
            c_sums = [];
          }
        in
        let ctx = Rules.empty_ctx lenv in
        match Thm.by_opt ctx (Rules.Rule_guard_true (m, bogus)) [] with
        | None -> ()
        | Some thm -> (
          (* Accepting it is fine only if it did not discharge anything. *)
          match Thm.concl thm with
          | J.Equiv (m', _) ->
            Alcotest.(check int) "nothing discharged under a bogus invariant" 1
              (Ac_analysis.guard_count m')
          | _ -> Alcotest.fail "not an Equiv") );
  ]

let no_discharge_options =
  { Driver.default_options with
    Driver.defaults = { Driver.default_func_options with Driver.discharge_guards = false }
  }

let final_guards options source =
  let res = Driver.run ~options source in
  List.fold_left
    (fun acc fr -> acc + Ac_analysis.guard_count fr.Driver.fr_final.M.body)
    0 res.Driver.funcs

(* ------------------------------------------------------------------ *)
(* Parity component of the product domain. *)

let parity_tests =
  [
    ( "parity lattice algebra",
      fun () ->
        Alcotest.(check bool) "odd + odd is even" true (A.par_add A.Podd A.Podd = A.Peven);
        Alcotest.(check bool) "odd * odd is odd" true (A.par_mul A.Podd A.Podd = A.Podd);
        Alcotest.(check bool) "even * top is even" true (A.par_mul A.Peven A.Ptop = A.Peven);
        Alcotest.(check bool) "or with odd is odd" true (A.par_or A.Ptop A.Podd = A.Podd);
        Alcotest.(check bool) "join of distinct is top" true
          (A.par_join A.Peven A.Podd = A.Ptop);
        Alcotest.(check bool) "flip swaps" true (A.par_flip A.Peven = A.Podd);
        Alcotest.(check bool) "leq is reflexive and top-bounded" true
          (A.par_leq A.Podd A.Podd && A.par_leq A.Peven A.Ptop && not (A.par_leq A.Ptop A.Peven))
    );
    ( "an odd divisor discharges the division guard",
      fun () ->
        (* d = x*2 + 1 is odd whatever x, so d ≠ 0 holds even though d's
           interval is the full word range — only the parity component can
           prove this guard. *)
        let x = E.Var ("x", u32) in
        let odd = E.Binop (E.Add, E.Binop (E.Mul, x, w32 2), w32 1) in
        let d = E.Var ("d", u32) in
        let m =
          M.Bind
            ( M.Return odd, M.Pvar ("d", u32),
              M.Bind (M.Guard (Ir.Div_by_zero, E.Binop (E.Ne, d, w32 0)), M.Pwild,
                      M.Return d) )
        in
        Alcotest.(check int) "odd-divisor guard discharged" 0
          (Ac_analysis.guard_count (discharge_m m)) );
    ( "an even expression does not discharge the guard",
      fun () ->
        let x = E.Var ("x", u32) in
        let even = E.Binop (E.Mul, x, w32 2) in
        let d = E.Var ("d", u32) in
        let m =
          M.Bind
            ( M.Return even, M.Pvar ("d", u32),
              M.Bind (M.Guard (Ir.Div_by_zero, E.Binop (E.Ne, d, w32 0)), M.Pwild,
                      M.Return d) )
        in
        Alcotest.(check int) "even divisor can be zero" 1
          (Ac_analysis.guard_count (discharge_m m)) );
  ]

(* ------------------------------------------------------------------ *)
(* Interprocedural summaries: kernel-checked discharge across calls. *)

let mk_l2_func name params ret_ty body : M.func =
  { M.name; params; ret_ty; body; convention = M.Lambda_bound;
    heap_model = M.Byte_level; locals = [] }

(* g(x) = x < 32 ? x : 0 — returns a word in [0, 31]. *)
let bounded_callee =
  let x = E.Var ("x", u32) in
  mk_l2_func "g" [ ("x", u32) ] u32
    (M.Cond (E.Binop (E.Lt, x, w32 32), M.Return x, M.Return (w32 0)))

(* d ← g(x); guard (d < 32); return d — provable only via g's summary. *)
let summary_caller =
  let x = E.Var ("x", u32) in
  let d = E.Var ("d", u32) in
  M.Bind
    ( M.Call ("g", [ x ]), M.Pvar ("d", u32),
      M.Bind (M.Guard (Ir.Shift_bounds, E.Binop (E.Lt, d, w32 32)), M.Pwild, M.Return d) )

let summary_tests =
  [
    ( "a sound summary discharges a caller guard through the kernel",
      fun () ->
        let truth =
          { A.s_args = [ A.type_top u32 ];
            s_ret = A.Dword (Ty.Unsigned, Ty.W32, itv 0 31, A.Ptop);
            s_noret = false; s_throws = false; s_invs = [] }
        in
        let cert = { A.c_invs = []; c_sums = [ ("g", [ truth ]) ] } in
        let ctx = { (Rules.empty_ctx lenv) with Rules.fbodies = [ bounded_callee ] } in
        let thm = Thm.by ctx (Rules.Rule_guard_true (summary_caller, cert)) [] in
        (match Thm.check ctx thm with
        | Result.Ok () -> ()
        | Result.Error e -> Alcotest.failf "Thm.check rejected the discharge: %s" e);
        match Thm.concl thm with
        | J.Equiv (m', _) ->
          Alcotest.(check int) "caller guard discharged" 0 (Ac_analysis.guard_count m')
        | _ -> Alcotest.fail "not an Equiv" );
    ( "a forged summary is rejected by the kernel",
      fun () ->
        (* Claim g never exceeds 7: false (g can return up to 31).  The
           kernel re-walks g's body against the claim and must refuse to
           discharge anything with it. *)
        let lie =
          { A.s_args = [ A.type_top u32 ];
            s_ret = A.Dword (Ty.Unsigned, Ty.W32, itv 0 7, A.Ptop);
            s_noret = false; s_throws = false; s_invs = [] }
        in
        let cert = { A.c_invs = []; c_sums = [ ("g", [ lie ]) ] } in
        let ctx = { (Rules.empty_ctx lenv) with Rules.fbodies = [ bounded_callee ] } in
        match Thm.by_opt ctx (Rules.Rule_guard_true (summary_caller, cert)) [] with
        | None -> ()
        | Some thm -> (
          match Thm.concl thm with
          | J.Equiv (m', _) ->
            Alcotest.(check int) "nothing discharged under a forged summary" 1
              (Ac_analysis.guard_count m')
          | _ -> Alcotest.fail "not an Equiv") );
    ( "without the callee body the summary is unverifiable",
      fun () ->
        (* The same sound claim, but the kernel context has no body for g:
           check_sums cannot validate it, so the discharge must not go
           through. *)
        let truth =
          { A.s_args = [ A.type_top u32 ];
            s_ret = A.Dword (Ty.Unsigned, Ty.W32, itv 0 31, A.Ptop);
            s_noret = false; s_throws = false; s_invs = [] }
        in
        let cert = { A.c_invs = []; c_sums = [ ("g", [ truth ]) ] } in
        let ctx = Rules.empty_ctx lenv in
        match Thm.by_opt ctx (Rules.Rule_guard_true (summary_caller, cert)) [] with
        | None -> ()
        | Some thm -> (
          match Thm.concl thm with
          | J.Equiv (m', _) ->
            Alcotest.(check int) "nothing discharged without the body" 1
              (Ac_analysis.guard_count m')
          | _ -> Alcotest.fail "not an Equiv") );
    ( "the summary engine infers the bound and the driver uses it",
      fun () ->
        (* End-to-end on the interprocedural corpus member: with summaries
           every guard goes; intraprocedurally the caller guards stay. *)
        let source = List.assoc "clamp_shift" Csources.all in
        let res = Driver.run source in
        (* Round-1 (L2) discharge is interprocedural: every guard goes.
           (Round 2 runs after word abstraction, whose bodies the L2-level
           summaries do not describe, so a WA-introduced guard may survive
           — the [inter < intra] check below still holds on the final
           output.) *)
        Alcotest.(check int) "all L2 guards discharged" 0
          (List.fold_left
             (fun acc fr -> acc + Ac_analysis.guard_count fr.Driver.fr_l2.M.body)
             0 res.Driver.funcs);
        let inter =
          List.fold_left
            (fun acc fr -> acc + Ac_analysis.guard_count fr.Driver.fr_final.M.body)
            0 res.Driver.funcs
        in
        Alcotest.(check bool) "derivations re-validate" true
          (Driver.check_all res = Result.Ok ());
        let intra =
          final_guards { Driver.default_options with Driver.interproc = false } source
        in
        Alcotest.(check bool)
          (Printf.sprintf "%d (inter) < %d (intra)" inter intra)
          true (inter < intra) );
    ( "recursive callee summaries converge and discharge",
      fun () ->
        let source = List.assoc "rec_bound" Csources.all in
        let res = Driver.run source in
        let left =
          List.fold_left
            (fun acc fr -> acc + Ac_analysis.guard_count fr.Driver.fr_final.M.body)
            0 res.Driver.funcs
        in
        Alcotest.(check int) "all rec_bound guards discharged" 0 left;
        Alcotest.(check bool) "derivations re-validate" true
          (Driver.check_all res = Result.Ok ()) );
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end: the paper corpus through the driver. *)

let corpus_tests =
  let per_case =
    List.map
      (fun (name, source) ->
        ( Printf.sprintf "discharge never adds guards: %s" name,
          fun () ->
            let with_d = final_guards Driver.default_options source in
            let without = final_guards no_discharge_options source in
            Alcotest.(check bool)
              (Printf.sprintf "%d (on) <= %d (off)" with_d without)
              true (with_d <= without) ))
      Csources.all
  in
  let strict =
    List.map
      (fun name ->
        let source = List.assoc name Csources.all in
        ( Printf.sprintf "flow-sensitive guards are discharged: %s" name,
          fun () ->
            let with_d = final_guards Driver.default_options source in
            let without = final_guards no_discharge_options source in
            Alcotest.(check bool)
              (Printf.sprintf "%d (on) < %d (off)" with_d without)
              true (with_d < without) ))
      [ "shift_guarded"; "div_guarded" ]
  in
  let acceptance =
    [
      ( "corpus discharges at least 30% of parser guards",
        fun () ->
          let parser_total, final_total =
            List.fold_left
              (fun (p, f) (name, source) ->
                let row, _ = Ac_stats.measure ~name source in
                (p + row.Ac_stats.guards_parser, f + row.Ac_stats.guards_final))
              (0, 0) Csources.all
          in
          let discharged = 100. *. (1. -. (float_of_int final_total /. float_of_int parser_total)) in
          Alcotest.(check bool)
            (Printf.sprintf "%d -> %d guards (%.0f%%)" parser_total final_total discharged)
            true
            (discharged >= 30.) );
      ( "corpus L2 discharge rate is at least 70% interprocedurally",
        fun () ->
          (* The tentpole acceptance metric: of the parser-emitted UB
             guards, at least 70% are gone after the (interprocedural)
             L2 discharge round — against the ~57% the intraprocedural
             pass topped out at. *)
          let src_total, l2_total =
            List.fold_left
              (fun (p, f) (_, source) ->
                let res = Driver.run source in
                let p' =
                  List.fold_left
                    (fun acc fr -> acc + Ac_stats.ir_guard_count fr.Driver.fr_simpl.Ir.body)
                    p res.Driver.funcs
                in
                let f' =
                  List.fold_left
                    (fun acc fr -> acc + Ac_analysis.guard_count fr.Driver.fr_l2.M.body)
                    f res.Driver.funcs
                in
                (p', f'))
              (0, 0) Csources.all
          in
          let rate = 100. *. (1. -. (float_of_int l2_total /. float_of_int src_total)) in
          Alcotest.(check bool)
            (Printf.sprintf "%d -> %d guards (%.0f%%)" src_total l2_total rate)
            true (rate >= 70.) );
      ( "discharged derivations re-validate through Thm.check",
        fun () ->
          List.iter
            (fun name ->
              let source = List.assoc name Csources.all in
              let res = Driver.run source in
              match Driver.check_all res with
              | Result.Ok () -> ()
              | Result.Error e -> Alcotest.failf "%s: %s" name e)
            [ "shift_guarded"; "div_guarded"; "swap"; "gcd"; "clamp_shift";
              "odd_divisor"; "rec_bound" ] );
    ]
  in
  per_case @ strict @ acceptance

(* ------------------------------------------------------------------ *)
(* Definite initialisation on the typed front-end IR. *)

let uninit_of source =
  let tprog = Ac_cfront.Typecheck.parse_and_check source in
  List.concat_map Ac_analysis.uninit_findings tprog.Ac_cfront.Tir.tp_funcs

let uninit_tests =
  [
    ( "an uninitialised read is reported with its position",
      fun () ->
        let findings =
          uninit_of "int f(int a) {\n  int x;\n  int y;\n  y = x + a;\n  return y;\n}\n"
        in
        match findings with
        | [ f ] ->
          Alcotest.(check bool) "mentions x" true
            (Astring.String.is_infix ~affix:"'x'" f.Ac_analysis.lf_msg);
          (match f.Ac_analysis.lf_pos with
          | Some p -> Alcotest.(check int) "read is on line 4" 4 p.Ac_cfront.Ast.line
          | None -> Alcotest.fail "expected a position")
        | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs) );
    ( "assignment on only one branch is still uninitialised",
      fun () ->
        let findings =
          uninit_of "int h(int a) {\n  int x;\n  if (a) {\n    x = 1;\n  }\n  return x;\n}\n"
        in
        Alcotest.(check int) "one finding" 1 (List.length findings) );
    ( "assignment on both branches initialises",
      fun () ->
        let findings =
          uninit_of
            "int h(int a) {\n  int x;\n  if (a) {\n    x = 1;\n  } else {\n    x = 2;\n  }\n  return x;\n}\n"
        in
        Alcotest.(check int) "no findings" 0 (List.length findings) );
    ( "initialised locals and parameters are clean",
      fun () ->
        let findings = uninit_of "int g(int a) {\n  int x;\n  x = 1;\n  return x + a;\n}\n" in
        Alcotest.(check int) "no findings" 0 (List.length findings) );
  ]

(* ------------------------------------------------------------------ *)
(* Lint: refuted guards map back to source positions. *)

let lint_tests =
  [
    ( "a division by zero under the refuting branch is reported",
      fun () ->
        let source =
          "unsigned f(unsigned x) {\n  if (x == 0u) {\n    return 1u / x;\n  }\n  return 0u;\n}\n"
        in
        let res = Driver.run source in
        let klenv = res.Driver.ctx.Ac_kernel.Rules.lenv in
        let findings =
          List.concat_map
            (fun fr -> Ac_analysis.lint_func klenv ~simpl:fr.Driver.fr_simpl fr.Driver.fr_l2)
            res.Driver.funcs
        in
        match
          List.filter (fun f -> f.Ac_analysis.lf_kind = Some Ir.Div_by_zero) findings
        with
        | [ f ] -> (
          Alcotest.(check string) "in f" "f" f.Ac_analysis.lf_func;
          match f.Ac_analysis.lf_pos with
          | Some p -> Alcotest.(check int) "division is on line 3" 3 p.Ac_cfront.Ast.line
          | None -> Alcotest.fail "expected a source position")
        | fs -> Alcotest.failf "expected one Div0 finding, got %d" (List.length fs) );
    ( "guarded code produces no findings",
      fun () ->
        let source = List.assoc "div_guarded" Csources.all in
        let res = Driver.run source in
        let klenv = res.Driver.ctx.Ac_kernel.Rules.lenv in
        let findings =
          List.concat_map
            (fun fr -> Ac_analysis.lint_func klenv ~simpl:fr.Driver.fr_simpl fr.Driver.fr_l2)
            res.Driver.funcs
        in
        Alcotest.(check int) "no findings" 0 (List.length findings) );
  ]

let tests =
  interval_tests @ nullness_tests @ discharge_tests @ parity_tests @ summary_tests
  @ corpus_tests @ uninit_tests @ lint_tests
let suite = List.map (fun (n, f) -> Alcotest.test_case n `Quick f) tests
