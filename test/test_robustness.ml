(* The robustness harness: fault injection, graceful degradation, resource
   budgets, and the CLI exit-code contract.

   The properties being defended:
   - under arbitrary injected faults the driver (in keep-going mode) never
     raises, always returns results-or-diagnostics, and never emits a
     theorem that fails [Thm.check];
   - a deliberately failing function degrades to its last certified level
     while the rest of the unit translates and certifies normally;
   - budget exhaustion degrades (guards kept, rewriting stopped) instead
     of hanging or crashing;
   - the acc CLI keeps its 0/1/2 exit-code contract on corrupted inputs —
     no uncaught exceptions, no stack traces. *)

module B = Ac_bignum
module M = Ac_monad.M
module T = Ac_prover.Term
module Solver = Ac_prover.Solver
module Thm = Ac_kernel.Thm
module Driver = Autocorres.Driver
module Diag = Autocorres.Diag
module Faults = Autocorres.Faults
module Pool = Autocorres.Pool
module Supervisor = Autocorres.Supervisor
module Store = Ac_store.Store
module Mprint = Ac_monad.Mprint
module Csources = Ac_cases.Csources

let contains text needle = Astring.String.is_infix ~affix:needle text
let keep_going = { Driver.default_options with Driver.keep_going = true }

(* A deterministic pseudo-random bit stream (the fault schedule). *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state

let uninstall_hooks () =
  Thm.set_fault_hook None;
  Solver.set_fault_hook None;
  Ac_analysis.set_fault_hook None;
  Faults.clear ()

(* Make every kernel rule application fail while the driver is processing
   [victim]. *)
let fail_function victim =
  Thm.set_fault_hook (Some (fun _rule -> Driver.processing () = Some victim))

let two_funcs = Csources.max_c ^ "\n" ^ Csources.gcd_c

let names_of res =
  List.map (fun fr -> fr.Driver.fr_name) res.Driver.funcs

(* ------------------------------------------------------------------ *)
(* Fault isolation: the acceptance scenario.  One function is made to
   fail; with --keep-going the other still reaches WA with a checked
   end-to-end chain. *)

let test_isolation_simpl () =
  Fun.protect ~finally:uninstall_hooks (fun () ->
      fail_function "gcd";
      let res = Driver.run ~options:keep_going two_funcs in
      Alcotest.(check (list string)) "survivors" [ "max" ] (names_of res);
      (match res.Driver.degraded with
      | [ d ] ->
        Alcotest.(check string) "victim" "gcd" d.Driver.dg_name;
        Alcotest.(check string) "level" "Simpl"
          (Driver.level_name (Driver.degraded_level d));
        Alcotest.(check bool) "has diagnostics" true (d.Driver.dg_diags <> [])
      | _ -> Alcotest.fail "expected exactly one degraded function");
      let fr = Option.get (Driver.find_result res "max") in
      Alcotest.(check bool) "survivor chained" true (fr.Driver.fr_chain <> None);
      Alcotest.(check string) "survivor level" "WA"
        (Driver.level_name (Driver.level_of fr));
      Alcotest.(check bool) "all theorems re-validate" true
        (Driver.check_all res = Ok ()))

let test_isolation_l1 () =
  (* Failing only the lifting rule lets L1 complete, so the victim keeps
     its certified L1 image: one rung further up the ladder. *)
  Fun.protect ~finally:uninstall_hooks (fun () ->
      Thm.set_fault_hook
        (Some (fun rule -> rule = "rw_lift" && Driver.processing () = Some "gcd"));
      let res = Driver.run ~options:keep_going two_funcs in
      (match res.Driver.degraded with
      | [ d ] ->
        Alcotest.(check string) "victim" "gcd" d.Driver.dg_name;
        Alcotest.(check string) "level" "L1"
          (Driver.level_name (Driver.degraded_level d));
        Alcotest.(check bool) "keeps the L1 theorem" true (d.Driver.dg_l1 <> None)
      | _ -> Alcotest.fail "expected exactly one degraded function");
      Alcotest.(check bool) "all theorems re-validate (incl. the L1 one)" true
        (Driver.check_all res = Ok ()))

let test_isolation_wa_skip () =
  (* Failing only word-abstraction rules is recoverable: the victim stays
     a full result, just without the WA stage. *)
  Fun.protect ~finally:uninstall_hooks (fun () ->
      Thm.set_fault_hook
        (Some
           (fun rule ->
             String.length rule >= 2
             && String.sub rule 0 2 = "w_"
             && Driver.processing () = Some "gcd"));
      let res = Driver.run ~options:keep_going two_funcs in
      Alcotest.(check int) "no function degraded below L2" 0
        (List.length res.Driver.degraded);
      let fr = Option.get (Driver.find_result res "gcd") in
      Alcotest.(check bool) "gcd lost WA" true (fr.Driver.fr_wa = None);
      Alcotest.(check bool) "other function kept WA" true
        ((Option.get (Driver.find_result res "max")).Driver.fr_wa <> None);
      Alcotest.(check bool) "all theorems re-validate" true
        (Driver.check_all res = Ok ()))

let test_fail_fast_raises () =
  Fun.protect ~finally:uninstall_hooks (fun () ->
      fail_function "gcd";
      match Driver.run two_funcs with
      | _ -> Alcotest.fail "expected Diag.Error without --keep-going"
      | exception Diag.Error d ->
        Alcotest.(check (option string)) "diagnostic names the function"
          (Some "gcd") d.Diag.d_func;
        Alcotest.(check bool) "non-recoverable" false d.Diag.d_recoverable)

(* ------------------------------------------------------------------ *)
(* The qcheck property: under arbitrary fault schedules (random rule
   failures, solver faults, analysis faults, starved budgets) the driver
   never raises, every function is accounted for, and every theorem it
   did emit still passes the independent checker. *)

let fault_sources =
  [ Csources.max_c; Csources.gcd_c; Csources.counter_c; Csources.memset_mixed_c;
    Csources.div_guarded_c ]

(* One shared store directory for the fault property: iterations that
   draw a store reuse it, so I/O faults exercise the degrade-and-requarantine
   paths against a populated store. *)
let fault_store_dir =
  lazy
    (let d = Filename.temp_file "acc_fault_store" "" in
     Sys.remove d;
     d)

let prop_fault_schedules =
  let open QCheck in
  let arb_schedule =
    triple (int_bound 0x3FFFFFF) (int_bound 300) (int_bound (List.length fault_sources - 1))
  in
  Test.make ~name:"driver never raises under injected faults" ~count:500 arb_schedule
    (fun (seed, rate, src_ix) ->
      let src = List.nth fault_sources src_ix in
      let next = lcg seed in
      let hit () = next () mod 1000 < rate in
      let budgets =
        (* Starve a random subset of the budgets, driven by the same
           schedule. *)
        {
          Driver.default_budgets with
          Driver.rewrite_fuel =
            (if hit () then next () mod 50 else Autocorres.Rewrite.default_fuel);
          analysis_steps = (if hit () then next () mod 20 else 20_000);
          solver_branches = (if hit () then 1 + (next () mod 10) else 40000);
        }
      in
      let options = { keep_going with Driver.budgets } in
      Thm.set_fault_hook (Some (fun _rule -> hit ()));
      Solver.set_fault_hook (Some hit);
      Ac_analysis.set_fault_hook (Some hit);
      (* Layer domain-crash and transient-I/O faults on top of the
         kernel/solver/analysis schedule: worker crashes are retried and
         quarantined by the supervisor, I/O faults hit the store hooks
         (when the schedule puts a store in play) and degrade to
         misses. *)
      Faults.install
        {
          Faults.default with
          Faults.seed;
          worker_crash = float_of_int (rate mod 150) /. 1000.;
          io_error = float_of_int (rate mod 250) /. 1000.;
        };
      let store =
        if rate land 1 = 1 then
          match Store.open_ ~dir:(Lazy.force fault_store_dir) () with
          | Ok st -> Some st
          | Error _ -> None
        else None
      in
      let outcome =
        match Driver.run ~options ?store src with
        | res -> Ok res
        | exception e -> Error e
      in
      uninstall_hooks ();
      match outcome with
      | Error e ->
        Test.fail_reportf "driver raised %s" (Printexc.to_string e)
      | Ok res ->
        let total = List.length res.Driver.simpl.Ac_simpl.Ir.funcs in
        let accounted =
          List.length res.Driver.funcs + List.length res.Driver.degraded
        in
        if accounted <> total then
          Test.fail_reportf "%d of %d functions unaccounted for" (total - accounted)
            total
        else begin
          (* Every theorem that was emitted — under whatever faults — must
             still re-validate through the unfaulted independent checker. *)
          match Driver.check_all res with
          | Ok () -> true
          | Error e -> Test.fail_reportf "emitted theorem failed Thm.check: %s" e
        end)

(* ------------------------------------------------------------------ *)
(* Worker supervision: an injected worker-domain crash never loses a
   function result.  Crash injection fires at task dispatch — before the
   work function runs — so under retry and quarantine the work runs
   exactly once per item and the output is byte-identical to a
   fault-free run. *)

let with_faults cfg f = Faults.install cfg; Fun.protect ~finally:Faults.clear f

let crash_all ~seed = { Faults.default with Faults.worker_crash = 1.0; seed }

(* The full observable surface, same shape as the --jobs differential in
   test_perf_layer: names, levels, final bodies, skips, degradations,
   diagnostics, budget accounting. *)
let fingerprint (res : Driver.result) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun fr ->
      Buffer.add_string b fr.Driver.fr_name;
      Buffer.add_string b (Driver.level_name (Driver.level_of fr));
      Buffer.add_string b (if fr.Driver.fr_chain = None then "-" else "+");
      Buffer.add_string b (Mprint.func_to_string fr.Driver.fr_final);
      List.iter (fun (p, w) -> Buffer.add_string b (p ^ ":" ^ w)) fr.Driver.fr_skipped)
    res.Driver.funcs;
  List.iter
    (fun (d : Driver.degraded) ->
      Buffer.add_string b d.Driver.dg_name;
      Buffer.add_string b (Driver.level_name (Driver.degraded_level d)))
    res.Driver.degraded;
  List.iter (fun d -> Buffer.add_string b (Diag.to_string d)) res.Driver.diags;
  Buffer.add_string b (string_of_int res.Driver.budget_hits);
  Buffer.contents b

let test_pool_crash_isolated () =
  let p = Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let f x =
        Unix.sleepf 0.005;
        if x = 3 then raise (Pool.Crash "boom");
        x * 2
      in
      let slots = Pool.map_outcomes p f [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
      Array.iteri
        (fun i o ->
          match o with
          | Pool.Done v -> Alcotest.(check int) "value" (i * 2) v
          | Pool.Lost _ -> Alcotest.(check int) "only item 3 lost" 3 i
          | Pool.Failed _ -> Alcotest.fail "unexpected Failed")
        slots;
      (match slots.(3) with
      | Pool.Lost _ -> ()
      | _ -> Alcotest.fail "item 3 should be Lost");
      ignore (Pool.respawn p);
      let again = Pool.map_outcomes p (fun x -> x + 1) [ 10; 20; 30 ] in
      Array.iteri
        (fun i o ->
          match o with
          | Pool.Done v ->
            Alcotest.(check int) "pool usable after respawn" ([| 11; 21; 31 |]).(i) v
          | _ -> Alcotest.fail "lost/failed item after respawn")
        again)

let test_supervisor_quarantine_sequential () =
  let sup = Supervisor.create ~seed:42 () in
  with_faults (crash_all ~seed:9) (fun () ->
      let out = Supervisor.map sup (fun x -> x * x) [ 1; 2; 3; 4 ] in
      Alcotest.(check (list int)) "results survive total crash injection"
        [ 1; 4; 9; 16 ] out);
  let st = Supervisor.stats sup in
  Alcotest.(check int) "every item quarantined" 4 st.Supervisor.quarantined;
  Alcotest.(check int) "one retry per item" 4 st.Supervisor.retries;
  Alcotest.(check bool) "crashes counted" true (st.Supervisor.crashes >= 4)

let test_supervisor_quarantine_pooled () =
  let p = Pool.create ~jobs:3 in
  let sup = Supervisor.create ~seed:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      with_faults (crash_all ~seed:5) (fun () ->
          let out = Supervisor.map sup ~pool:p (fun x -> x + 100) [ 1; 2; 3; 4; 5; 6 ] in
          Alcotest.(check (list int)) "no item lost under total worker loss"
            [ 101; 102; 103; 104; 105; 106 ] out);
      let st = Supervisor.stats sup in
      Alcotest.(check int) "all items quarantined" 6 st.Supervisor.quarantined;
      Alcotest.(check bool) "crashes counted" true (st.Supervisor.crashes >= 6);
      (* Faults cleared: the same pool must be healthy again. *)
      let again = Supervisor.map sup ~pool:p (fun x -> x * 2) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "pool healthy after faults cleared" [ 2; 4; 6 ] again)

let test_driver_crash_byte_identical () =
  List.iter
    (fun jobs ->
      let options = { keep_going with Driver.jobs } in
      let clean = Driver.run ~options two_funcs in
      let res =
        with_faults (crash_all ~seed:17) (fun () -> Driver.run ~options two_funcs)
      in
      let label = Printf.sprintf "jobs=%d" jobs in
      Alcotest.(check string) (label ^ ": byte-identical to the fault-free run")
        (fingerprint clean) (fingerprint res);
      Alcotest.(check bool) (label ^ ": quarantines counted") true
        (res.Driver.quarantined > 0);
      Alcotest.(check bool) (label ^ ": retries counted") true (res.Driver.retries > 0);
      Alcotest.(check bool) (label ^ ": still certifies") true
        (Driver.check_all res = Ok ()))
    [ 1; 4 ]

(* Randomised version of the same guarantee: any crash rate, any seed,
   any corpus source — the supervised result is byte-identical to the
   fault-free baseline. *)
let prop_crash_byte_identical =
  let open QCheck in
  let baselines = Hashtbl.create 8 in
  let baseline src =
    match Hashtbl.find_opt baselines src with
    | Some fp -> fp
    | None ->
      let fp = fingerprint (Driver.run ~options:keep_going src) in
      Hashtbl.add baselines src fp;
      fp
  in
  Test.make ~name:"worker crashes never change the output" ~count:60
    (triple (int_bound 0x3FFFFFF) (int_bound 1000)
       (int_bound (List.length fault_sources - 1)))
    (fun (seed, rate, src_ix) ->
      let src = List.nth fault_sources src_ix in
      let expect = baseline src in
      let got =
        with_faults
          { Faults.default with
            Faults.seed;
            worker_crash = float_of_int rate /. 1000. }
          (fun () -> fingerprint (Driver.run ~options:keep_going src))
      in
      if String.equal expect got then true
      else Test.fail_reportf "output diverged under worker-crash faults (seed %d rate %d)" seed rate)

(* ------------------------------------------------------------------ *)
(* Resource budgets: exhaustion degrades instead of hanging/crashing. *)

let test_solver_budget () =
  let goal =
    (* Needs case splitting, so it costs branches. *)
    let x = T.Var ("x", T.Sint) and y = T.Var ("y", T.Sint) in
    T.or_t (T.le_t x y) (T.le_t y x)
  in
  Alcotest.(check bool) "provable with the default budget" true
    (Solver.is_proved (fst (Solver.prove goal)));
  let saved = !Solver.budget in
  Solver.budget := { Solver.max_branches = 0; deadline_s = None };
  Atomic.set Solver.exhaustions 0;
  let out = fst (Solver.prove goal) in
  Solver.budget := saved;
  Alcotest.(check bool) "not proved when starved" false (Solver.is_proved out);
  Alcotest.(check bool) "exhaustion counted" true (Atomic.get Solver.exhaustions > 0)

let test_solver_deadline () =
  let goal =
    let x = T.Var ("x", T.Sint) and y = T.Var ("y", T.Sint) in
    T.or_t (T.le_t x y) (T.le_t y x)
  in
  let saved = !Solver.budget in
  Solver.budget := { Solver.max_branches = 40000; deadline_s = Some (-1.0) };
  Atomic.set Solver.exhaustions 0;
  let out = fst (Solver.prove goal) in
  Solver.budget := saved;
  Alcotest.(check bool) "not proved past the deadline" false (Solver.is_proved out);
  Alcotest.(check bool) "exhaustion counted" true (Atomic.get Solver.exhaustions > 0)

let test_solver_fault () =
  Fun.protect ~finally:uninstall_hooks (fun () ->
      Solver.set_fault_hook (Some (fun () -> true));
      let goal = T.eq_t (T.int_of 1) (T.int_of 1) in
      match Solver.prove goal with
      | out, _ ->
        Alcotest.(check bool) "injected timeout degrades to not-proved" false
          (Solver.is_proved out))

let test_cc_budget () =
  let module Cc = Ac_prover.Cc in
  let saved = !Cc.merge_budget in
  Cc.merge_budget := 0;
  Atomic.set Cc.exhaustions 0;
  let cc = Cc.create () in
  let a = T.Var ("a", T.Sint) and b = T.Var ("b", T.Sint) in
  Cc.assert_eq cc a b;
  let merged = Cc.equal_terms cc a b in
  Cc.merge_budget := saved;
  (* Starved closure only under-approximates: the equality is lost (the
     goal stays open), no contradiction is invented. *)
  Alcotest.(check bool) "merge skipped" false merged;
  Alcotest.(check bool) "no contradiction invented" false (Cc.inconsistent cc);
  Alcotest.(check bool) "exhaustion counted" true (Atomic.get Cc.exhaustions > 0)

let test_analysis_budget () =
  (* Starving the fixpoint keeps the guards (no discharge) but must not
     raise, and the result still certifies. *)
  (* The fixpoint engine only spends budget at loop heads, so use a
     looping program (gcd's guards need its loop invariant). *)
  let starved =
    { keep_going with
      Driver.budgets = { Driver.default_budgets with Driver.analysis_steps = 0 } }
  in
  let res = Driver.run ~options:starved Csources.gcd_c in
  Alcotest.(check bool) "budget exhaustion recorded" true (res.Driver.budget_hits > 0);
  Alcotest.(check bool) "still certifies" true (Driver.check_all res = Ok ());
  let guards r =
    List.fold_left
      (fun acc fr -> acc + Ac_analysis.guard_count fr.Driver.fr_final.M.body)
      0 r.Driver.funcs
  in
  let normal = Driver.run ~options:keep_going Csources.gcd_c in
  Alcotest.(check bool) "starved run keeps at least as many guards" true
    (guards res >= guards normal)

let test_rewrite_fuel () =
  let starved =
    { keep_going with
      Driver.budgets = { Driver.default_budgets with Driver.rewrite_fuel = 0 } }
  in
  let res = Driver.run ~options:starved Csources.gcd_c in
  Alcotest.(check bool) "budget exhaustion recorded" true (res.Driver.budget_hits > 0);
  Alcotest.(check bool) "still certifies" true (Driver.check_all res = Ok ());
  Alcotest.(check int) "nothing degraded" 0 (List.length res.Driver.degraded)

(* ------------------------------------------------------------------ *)
(* Structured diagnostics. *)

let test_diag_rendering () =
  let d =
    Diag.make ~func:"gcd" ~severity:Diag.Warning ~recoverable:true Diag.Word_abs
      "demoted"
  in
  let s = Diag.to_string ~file:"t.c" d in
  Alcotest.(check bool) "has file" true (contains s "t.c");
  Alcotest.(check bool) "has phase" true (contains s "word-abstraction");
  Alcotest.(check bool) "has function" true (contains s "(in gcd)");
  Alcotest.(check bool) "marks degradation" true (contains s "[degraded]")

let test_diag_json () =
  let d = Diag.make ~func:"f\"n" Diag.L1 "a \"quoted\" message\nline 2" in
  let j = Diag.to_json d in
  Alcotest.(check bool) "escapes quotes" true (contains j "\\\"quoted\\\"");
  Alcotest.(check bool) "escapes newlines" true (contains j "\\n");
  Alcotest.(check bool) "phase named" true (contains j "\"phase\":\"l1\"");
  Alcotest.(check string) "list shape" "[]" (Diag.list_to_json [])

let test_frontend_structs () =
  let expect_type_error src =
    match Ac_cfront.Typecheck.parse_and_check src with
    | _ -> Alcotest.fail "expected Type_error"
    | exception Ac_cfront.Typecheck.Type_error _ -> ()
  in
  expect_type_error "struct e {};";
  expect_type_error "struct s { struct s inner; };"

(* ------------------------------------------------------------------ *)
(* The CLI crash corpus: run the real acc binary over truncated and
   byte-mutated variants of every corpus source; the exit-code contract
   (0/1/2, one-line diagnostics, no stack traces) must hold on all of
   them. *)

let acc_exe = Filename.concat (Sys.getcwd ()) "../bin/acc.exe"

let run_acc args file =
  let out = Filename.temp_file "acc_out" ".txt" in
  let err = Filename.temp_file "acc_err" ".txt" in
  let cmd =
    Printf.sprintf "%s %s %s > %s 2> %s" (Filename.quote acc_exe) args
      (Filename.quote file) (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove p;
    s
  in
  (code, slurp out, slurp err)

(* SIGTERM during an in-flight serve request: the session must finish
   the request, emit one complete response line, flush, and exit 0 —
   whether the signal lands mid-request or while blocked waiting for the
   next one (stdin is kept open so only the signal can end the session). *)
let test_serve_sigterm_in_flight () =
  let src_file = Filename.temp_file "acc_serve" ".c" in
  let oc = open_out_bin src_file in
  output_string oc two_funcs;
  close_out oc;
  let out_file = Filename.temp_file "acc_serve_out" ".txt" in
  let out_fd = Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let rd, wr = Unix.pipe () in
  let pid =
    Unix.create_process acc_exe [| acc_exe; "serve"; "--no-store" |] rd out_fd
      Unix.stderr
  in
  Unix.close rd;
  Unix.close out_fd;
  let req = Printf.sprintf "translate %s\n" src_file in
  ignore (Unix.write_substring wr req 0 (String.length req));
  Unix.sleepf 0.05;
  Unix.kill pid Sys.sigterm;
  let rec wait_exit deadline =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        Alcotest.fail "serve did not exit within 10s of SIGTERM"
      end
      else begin
        Unix.sleepf 0.02;
        wait_exit deadline
      end
    | _, status -> status
  in
  let status = wait_exit (Unix.gettimeofday () +. 10.) in
  Unix.close wr;
  Sys.remove src_file;
  let ic = open_in_bin out_file in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out_file;
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.failf "serve exited %d after SIGTERM" c
  | Unix.WSIGNALED s -> Alcotest.failf "serve killed by signal %d" s
  | Unix.WSTOPPED s -> Alcotest.failf "serve stopped by signal %d" s);
  match String.split_on_char '\n' (String.trim out) with
  | [ line ] ->
    Alcotest.(check bool) "response line is complete JSON" true
      (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}');
    Alcotest.(check bool) "in-flight request succeeded" true
      (contains line "\"ok\":true")
  | lines ->
    Alcotest.failf "expected exactly one response line, got %d: %S"
      (List.length lines) out

let mutants (src : string) : string list =
  let n = String.length src in
  let truncations =
    List.filter_map
      (fun k -> if n > 1 then Some (String.sub src 0 (k * n / 4)) else None)
      [ 1; 2; 3 ]
  in
  let mutated seed =
    let next = lcg seed in
    let b = Bytes.of_string src in
    for _ = 1 to 4 do
      if n > 0 then Bytes.set b (next () mod n) (Char.chr (next () mod 256))
    done;
    Bytes.to_string b
  in
  ("" :: truncations) @ List.map mutated [ 1; 2; 3; 4; 5 ]

let test_cli_crash_corpus () =
  Alcotest.(check bool) "acc.exe present" true (Sys.file_exists acc_exe);
  List.iter
    (fun (name, src) ->
      List.iteri
        (fun i variant ->
          let file = Filename.temp_file "acc_crash" ".c" in
          let oc = open_out_bin file in
          output_string oc variant;
          close_out oc;
          let code, _out, err = run_acc "translate --keep-going" file in
          Sys.remove file;
          let label = Printf.sprintf "%s variant %d" name i in
          if not (List.mem code [ 0; 1; 2 ]) then
            Alcotest.failf "%s: exit code %d (err: %s)" label code err;
          if contains err "Fatal error" || contains err "Raised at"
             || contains err "uncaught exception" then
            Alcotest.failf "%s: stack trace leaked: %s" label err;
          (* Failures must say something: exit 2 comes with a one-line
             diagnostic on stderr. *)
          if code = 2 && String.trim err = "" then
            Alcotest.failf "%s: exit 2 with no diagnostic" label)
        (mutants src))
    Csources.all

let test_cli_diag_json () =
  let file = Filename.temp_file "acc_json" ".c" in
  let oc = open_out_bin file in
  output_string oc Csources.max_c;
  close_out oc;
  let code, out, _err = run_acc "translate --keep-going --diag-json" file in
  Sys.remove file;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "function listed" true (contains out "\"name\":\"max\"");
  Alcotest.(check bool) "level reported" true (contains out "\"level\":\"WA\"");
  Alcotest.(check bool) "diagnostics array" true (contains out "\"diagnostics\":[")

let test_cli_budget_flags () =
  let file = Filename.temp_file "acc_budget" ".c" in
  let oc = open_out_bin file in
  output_string oc Csources.div_guarded_c;
  close_out oc;
  let code, out, _err =
    run_acc "translate --keep-going --diag-json --analysis-steps 0 --rewrite-fuel 0" file
  in
  Sys.remove file;
  Alcotest.(check int) "exit 0 (degradation is not failure)" 0 code;
  Alcotest.(check bool) "budget exhaustions surfaced" true
    (not (contains out "\"budget_exhaustions\":0"))

let suite =
  [
    ("a deliberate failure degrades one function to Simpl", `Quick, test_isolation_simpl);
    ("a lifting failure degrades one function to L1", `Quick, test_isolation_l1);
    ("a word-abstraction failure is a recoverable skip", `Quick, test_isolation_wa_skip);
    ("without --keep-going the failure raises Diag.Error", `Quick, test_fail_fast_raises);
    ("a worker crash loses only the item it held", `Quick, test_pool_crash_isolated);
    ("repeated crashes quarantine the item (sequential)", `Quick,
      test_supervisor_quarantine_sequential);
    ("repeated crashes quarantine the item (pooled)", `Quick,
      test_supervisor_quarantine_pooled);
    ("driver output is byte-identical under total crash injection", `Quick,
      test_driver_crash_byte_identical);
    ("SIGTERM during an in-flight serve request", `Quick, test_serve_sigterm_in_flight);
    ("solver branch budget degrades to not-proved", `Quick, test_solver_budget);
    ("solver deadline degrades to not-proved", `Quick, test_solver_deadline);
    ("an injected solver timeout degrades to not-proved", `Quick, test_solver_fault);
    ("congruence-closure budget under-approximates soundly", `Quick, test_cc_budget);
    ("analysis budget exhaustion keeps guards, still certifies", `Quick, test_analysis_budget);
    ("rewrite fuel exhaustion still certifies", `Quick, test_rewrite_fuel);
    ("diagnostics render compiler-style", `Quick, test_diag_rendering);
    ("diagnostics render as escaped JSON", `Quick, test_diag_json);
    ("degenerate struct declarations are type errors", `Quick, test_frontend_structs);
    ("CLI exit-code contract on the crash corpus", `Slow, test_cli_crash_corpus);
    ("CLI --diag-json machine output", `Quick, test_cli_diag_json);
    ("CLI budget flags surface exhaustions", `Quick, test_cli_budget_flags);
  ]
  |> List.map (fun (n, s, f) -> Alcotest.test_case n s f)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_fault_schedules;
      QCheck_alcotest.to_alcotest prop_crash_byte_identical;
    ]
