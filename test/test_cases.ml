(* The paper's case studies (Sec 5): the ported Mehta-Nipkow proofs and the
   supporting lemma library, plus the Sec 4.6 mixed-model memset. *)

module B = Ac_bignum
module T = Ac_prover.Term
module Solver = Ac_prover.Solver
module Value = Ac_lang.Value
module Ty = Ac_lang.Ty
open Ac_cases

let tests =
  [
    ( "the list lemma library validates (List definitions, Table 6)",
      fun () ->
        match Listlib.validate_all ~trials:800 () with
        | Ok () -> ()
        | Error e -> Alcotest.fail e );
    ( "each lemma rejects a deliberately false variant",
      fun () ->
        (* sanity check of the validator itself: corrupt islist_unfold's
           conclusion and expect a falsification *)
        let l = Listlib.find "islist_unfold" in
        let bogus =
          {
            l with
            Listlib.name = "bogus";
            statement =
              T.imp_t
                (T.and_t
                   (Ac_prover.Seq.islist Listlib.h Listlib.v Listlib.p Listlib.ps)
                   (T.not_t (T.eq_t Listlib.p T.zero)))
                (T.eq_t Listlib.ps Ac_prover.Seq.nil);
          }
        in
        match Listlib.validate ~trials:2000 bogus with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "validator accepted a false lemma" );
    ( "in-place list reversal: the full M/N port is discharged (Sec 5.2)",
      fun () ->
        let r = Reverse_proof.run ~check_lemmas:false () in
        List.iter
          (fun (label, o) ->
            if not (Solver.is_proved o) then Alcotest.failf "%s not proved" label)
          r.Reverse_proof.vcs;
        Alcotest.(check int) "three obligations" 3 (List.length r.Reverse_proof.vcs) );
    ( "schorr-waite: bounded exhaustive validation (Sec 5.3)",
      fun () ->
        let r = Schorr_waite_proof.run ~exhaustive_nodes:2 ~random_samples:120 () in
        (match r.Schorr_waite_proof.failures with
        | [] -> ()
        | f :: _ -> Alcotest.fail f);
        Alcotest.(check bool) "hundreds of graphs" true
          (r.Schorr_waite_proof.graphs_checked > 300) );
    ( "schorr-waite catches broken implementations",
      fun () ->
        (* The same harness must reject a mutant that forgets to restore
           the right pointer (t->r = q dropped from the pop branch). *)
        let replace ~sub ~by s =
          match Astring.String.find_sub ~sub s with
          | Some i ->
            String.sub s 0 i ^ by ^ String.sub s (i + String.length sub) (String.length s - i - String.length sub)
          | None -> Alcotest.fail "mutation site not found"
        in
        let broken =
          replace ~sub:"q = t; t = p; p = p->r; t->r = q;"
            ~by:"q = t; t = p; p = p->r;" Csources.schorr_waite_c
        in
        Alcotest.(check bool) "mutant detected" true
          (let res = Autocorres.Driver.run broken in
           let any_failure = ref false in
           (* run a focused subset of graphs against the mutant *)
           for k = 1 to 2 do
             let links = Array.make (k + 1) (0, 0) in
             let rec assign i =
               if i > k then begin
                 for root = 1 to k do
                   match Schorr_waite_proof.check_one res k links root with
                   | Ok () -> ()
                   | Error _ -> any_failure := true
                 done
               end
               else
                 for l = 0 to k do
                   for r = 0 to k do
                     links.(i) <- (l, r);
                     assign (i + 1)
                   done
                 done
             in
             assign 1
           done;
           !any_failure) );
    ( "memset stays byte-level and its lifted caller uses exec_concrete (Sec 4.6)",
      fun () ->
        let options =
          {
            Autocorres.Driver.default_options with
            overrides = [ ("my_memset", { Autocorres.Driver.default_func_options with Autocorres.Driver.word_abs = false; heap_abs = false }) ];
          }
        in
        let res = Autocorres.Driver.run ~options Csources.memset_mixed_c in
        let fr = Option.get (Autocorres.Driver.find_result res "zero_cell") in
        let out = Ac_monad.Mprint.func_to_string fr.Autocorres.Driver.fr_final in
        Alcotest.(check bool) "exec_concrete call" true
          (Astring.String.is_infix ~affix:"exec_concrete" out);
        (* the abstract triple of Sec 4.6: after the call, s[p] = 0 *)
        let lenv = res.Autocorres.Driver.final_prog.Ac_monad.M.lenv in
        let u32 = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let addr, h = Ac_simpl.Heap.alloc lenv Ac_simpl.Heap.empty u32 in
        let h = Ac_simpl.Heap.write_obj lenv h u32 addr (Value.vword Ty.Unsigned (Ac_word.of_int Ac_word.W32 0xDEADBEEF)) in
        let state = Ac_simpl.State.with_heap Ac_simpl.State.empty h in
        match
          Ac_monad.Interp.run_func res.Autocorres.Driver.final_prog ~fuel:10_000 state
            "zero_cell" [ Value.vptr addr u32 ]
        with
        | Ac_monad.Interp.Returns (v, _) ->
          Alcotest.(check string) "memset zeroed the cell" "0" (Value.to_string v)
        | _ -> Alcotest.fail "zero_cell did not execute" );
    ( "binary search (Sec 3.2's context) abstracts and runs correctly",
      fun () ->
        let res = Autocorres.Driver.run Csources.binary_search_c in
        (match Autocorres.Driver.check_all res with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (* build a sorted array [10; 20; 30; 40; 50] in the heap *)
        let lenv = res.Autocorres.Driver.final_prog.Ac_monad.M.lenv in
        let u32 = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let base = B.of_int 0x1000 in
        let heap = ref (Ac_simpl.Heap.retype lenv Ac_simpl.Heap.empty u32 base) in
        List.iteri
          (fun i v ->
            let addr = B.add base (B.of_int (4 * i)) in
            heap := Ac_simpl.Heap.retype lenv !heap u32 addr;
            heap :=
              Ac_simpl.Heap.write_obj lenv !heap u32 addr
                (Value.vword Ty.Unsigned (Ac_word.of_int Ac_word.W32 v)))
          [ 10; 20; 30; 40; 50 ];
        let state = Ac_simpl.State.with_heap Ac_simpl.State.empty !heap in
        let search key =
          match
            Ac_monad.Interp.run_func res.Autocorres.Driver.final_prog ~fuel:10_000 state
              "binary_search"
              [ Value.vptr base u32; Value.vnat (B.of_int 5); Value.vnat (B.of_int key) ]
          with
          | Ac_monad.Interp.Returns (v, _) -> Value.to_string v
          | Ac_monad.Interp.Fails m -> "fails:" ^ m
          | _ -> "error"
        in
        Alcotest.(check string) "find 30" "2" (search 30);
        Alcotest.(check string) "find 10" "0" (search 10);
        Alcotest.(check string) "find 50" "4" (search 50);
        Alcotest.(check string) "missing 35" "-1" (search 35) );
    ( "every paper source in Csources.all makes it through the pipeline",
      fun () ->
        List.iter
          (fun (name, src) ->
            let options =
              if name = "memset" || name = "memset_mixed" then
                { Autocorres.Driver.default_options with
                  overrides =
                    [ ("my_memset", { Autocorres.Driver.default_func_options with Autocorres.Driver.word_abs = false; heap_abs = false }) ] }
              else Autocorres.Driver.default_options
            in
            let res = Autocorres.Driver.run ~options src in
            match Autocorres.Driver.check_all res with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" name e)
          Csources.all );
    ( "negative control: a weakened reversal invariant fails to verify",
      fun () ->
        (* drop the disjointness conjunct: preservation must no longer be
           provable (the frame lemma's hypothesis becomes unavailable) *)
        let open Ac_prover in
        let res = Autocorres.Driver.run Csources.reverse_c in
        let cfg = Ac_hoare.Vc.make_config res.Autocorres.Driver.final_prog in
        let weak =
          {
            Reverse_proof.invariant with
            Ac_hoare.Vc.inv =
              (fun binds gs st ->
                let list = Ac_hoare.Vc.tv_to_term (List.assoc "list" binds) in
                let rv = Ac_hoare.Vc.tv_to_term (List.assoc "rev" binds) in
                let ps = List.assoc "ps" gs and qs = List.assoc "qs" gs in
                T.conj
                  [
                    Seq.islist (Reverse_proof.next_heap st) (Reverse_proof.validity st) list ps;
                    Seq.islist (Reverse_proof.next_heap st) (Reverse_proof.validity st) rv qs;
                    (* disjointness omitted *)
                    T.eq_t (Seq.rev Reverse_proof.ps0)
                      (Seq.append (Seq.rev ps) qs);
                  ]);
          }
        in
        Ac_hoare.Vc.add_invariant cfg "reverse" 0 weak;
        let vcs = Ac_hoare.Vc.func_vcs cfg "reverse" Reverse_proof.triple in
        let all_proved =
          List.for_all (fun (_, vc) -> Solver.is_proved (fst (Solver.prove vc))) vcs
        in
        Alcotest.(check bool) "weakened invariant rejected" false all_proved );
    ( "negative control: the prover does not claim unprovable heap goals",
      fun () ->
        let open Ac_prover in
        let h = T.Var ("h", T.Sarr T.Sint) in
        let p = T.Var ("p", T.Sint) and q = T.Var ("q", T.Sint) in
        (* without p <> q this is false *)
        let goal =
          T.eq_t (T.select_t (T.store_t h p T.one) q) (T.select_t h q)
        in
        match fst (Solver.prove goal) with
        | Solver.Proved -> Alcotest.fail "claimed an invalid goal"
        | _ -> () );
    ( "multi-declarator declarations parse (Fig 8 source verbatim)",
      fun () ->
        ignore (Autocorres.Driver.run Csources.schorr_waite_c);
        ignore
          (Autocorres.Driver.run
             "int f() { int a = 1, b = 2, c; c = a + b; return c; }") );
  ]

let suite = List.map (fun (n, f) -> Alcotest.test_case n `Quick f) tests
