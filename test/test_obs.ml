(* PR 9's observability layer: the metrics registry, the span runtime,
   and the instrumentation threaded through the driver.

   The load-bearing properties:

   - metrics are exact under concurrency: counters incremented from
     several domains lose nothing, histogram quantiles land in the
     bucket the observations actually fell in;
   - harvested span streams are well-formed — per-domain B/E events
     balance with stack discipline, timestamps are monotone per buffer,
     sequence numbers order ties — and stay well-formed under injected
     worker crashes and I/O errors (the [Fun.protect] in [Obs.span] is
     what this pins);
   - tracing is invisible in the results: a traced, fault-injected run
     produces the same observable surface as a clean untraced run;
   - per-phase profile totals harvested from pool workers match the
     sequential run unit-for-unit (the per-domain-accumulate/merge
     rework: no work dropped, none double-counted);
   - the CLI contract: `--trace` leaves stdout/stderr byte-identical,
     the emitted file passes `acc trace --validate`, and serve's
     `status`/`metrics` verbs expose the new latency/registry JSON. *)

module Obs = Ac_obs.Obs
module Metrics = Ac_obs.Metrics
module Driver = Autocorres.Driver
module Profile = Autocorres.Profile
module Pool = Autocorres.Pool
module Supervisor = Autocorres.Supervisor
module Faults = Autocorres.Faults
module Csources = Ac_cases.Csources

let contains text needle = Astring.String.is_infix ~affix:needle text
let keep_going = { Driver.default_options with Driver.keep_going = true }

(* Every test leaves tracing the way it found it: off, empty. *)
let with_tracing f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let with_faults cfg f =
  Faults.install cfg;
  Fun.protect ~finally:Faults.clear f

(* ------------------------------------------------------------------ *)
(* Metrics units. *)

let test_metrics_counter_gauge () =
  Metrics.reset_all ();
  let c = Metrics.counter "t.requests" in
  Alcotest.(check int) "fresh counter" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.counter_value c);
  (* find-or-create returns the same instance *)
  Metrics.incr (Metrics.counter "t.requests");
  Alcotest.(check int) "same instance by name" 43 (Metrics.counter_value c);
  let g = Metrics.gauge "t.depth" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 1e-9)) "gauge" 2.5 (Metrics.gauge_value g);
  (* a name registered as one kind cannot come back as another *)
  (match Metrics.gauge "t.requests" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ());
  let json = Metrics.to_json () in
  Alcotest.(check bool) "counter in json" true (contains json "\"t.requests\":43");
  Metrics.reset_all ();
  Alcotest.(check int) "reset_all zeroes" 0 (Metrics.counter_value c)

let test_metrics_histogram_quantiles () =
  Metrics.reset_all ();
  let h = Metrics.histogram "t.latency_s" in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Metrics.quantile h 0.5);
  (* observe 1..100 ms; quantiles are bucket midpoints (~19% buckets),
     so p50 must land near 50ms and p99 near 100ms, both within one
     bucket's slack. *)
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i /. 1000.)
  done;
  Alcotest.(check int) "count" 100 (Metrics.hist_count h);
  let p50 = Metrics.quantile h 0.5 and p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p50=%.4f in [0.040,0.065]" p50)
    true
    (p50 >= 0.040 && p50 <= 0.065);
  Alcotest.(check bool)
    (Printf.sprintf "p99=%.4f in [0.080,0.125]" p99)
    true
    (p99 >= 0.080 && p99 <= 0.125);
  (* clamping: out-of-range observations land in the edge buckets
     rather than vanishing *)
  Metrics.observe h 0.;
  Metrics.observe h 1e9;
  Alcotest.(check int) "clamped observations counted" 102 (Metrics.hist_count h);
  Metrics.reset_all ()

let test_metrics_multidomain () =
  Metrics.reset_all ();
  let c = Metrics.counter "t.par" in
  let per = 10_000 in
  let work () =
    for _ = 1 to per do
      Metrics.incr c
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join ds;
  Alcotest.(check int) "4 domains x 10k increments, none lost" (4 * per)
    (Metrics.counter_value c);
  Metrics.reset_all ()

(* ------------------------------------------------------------------ *)
(* Span well-formedness: the checker. *)

let by_tid evs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tid = e.Obs.ev_tid in
      Hashtbl.replace tbl tid (e :: (Option.value ~default:[] (Hashtbl.find_opt tbl tid))))
    evs;
  Hashtbl.fold (fun tid es acc -> (tid, List.rev es) :: acc) tbl []

(* Per-domain stream discipline: seq strictly increasing, ts monotone,
   E matches the innermost open B, all spans closed at the end.  Returns
   an error description instead of asserting so the qcheck property can
   report the schedule that broke it. *)
let check_stream (tid, es) =
  let err fmt = Printf.ksprintf (fun s -> Some (Printf.sprintf "tid %d: %s" tid s)) fmt in
  let rec go stack last_seq last_ts = function
    | [] ->
      if stack = [] then None
      else err "%d span(s) left open: %s" (List.length stack) (String.concat "," stack)
    | e :: rest ->
      if e.Obs.ev_seq <= last_seq then err "seq not increasing at %s" e.Obs.ev_name
      else if not (Float.is_finite e.Obs.ev_ts) || e.Obs.ev_ts < 0. then
        err "bad ts on %s" e.Obs.ev_name
      else if e.Obs.ev_ts < last_ts then err "ts went backwards at %s" e.Obs.ev_name
      else
        let continue stack = go stack e.Obs.ev_seq e.Obs.ev_ts rest in
        (match e.Obs.ev_ph with
        | Obs.B -> continue (e.Obs.ev_name :: stack)
        | Obs.E -> (
          match stack with
          | top :: tl when String.equal top e.Obs.ev_name -> continue tl
          | top :: _ -> err "E %s does not match open B %s" e.Obs.ev_name top
          | [] -> err "E %s with no open span" e.Obs.ev_name)
        | Obs.I -> continue stack
        | Obs.X ->
          if e.Obs.ev_dur < 0. || not (Float.is_finite e.Obs.ev_dur) then
            err "X %s with bad dur" e.Obs.ev_name
          else continue stack)
  in
  go [] (-1) neg_infinity es

let check_wellformed evs =
  List.fold_left
    (fun acc stream -> match acc with Some _ -> acc | None -> check_stream stream)
    None (by_tid evs)

let test_span_nesting_unit () =
  with_tracing (fun () ->
      let v =
        Obs.with_ctx "req-1" (fun () ->
            Obs.span ~cat:"t" "outer" (fun () ->
                Obs.instant ~cat:"t" ~args:[ ("k", "v") ] "tick";
                Obs.span ~cat:"t" "inner" (fun () -> 7)))
      in
      Alcotest.(check int) "span returns f's value" 7 v;
      (* the E is emitted even when f raises *)
      (try Obs.span ~cat:"t" "raiser" (fun () -> failwith "boom") with Failure _ -> ());
      let evs = Obs.harvest () in
      Alcotest.(check (option string)) "well-formed" None (check_wellformed evs);
      Alcotest.(check int) "2 nested + 1 raising span + 1 instant = 7 events" 7
        (List.length evs);
      let names = List.map (fun e -> e.Obs.ev_name) evs in
      Alcotest.(check (list string)) "deterministic order"
        [ "outer"; "tick"; "inner"; "inner"; "outer"; "raiser"; "raiser" ] names;
      List.iter
        (fun e ->
          if e.Obs.ev_name <> "raiser" then
            Alcotest.(check (option string)) (e.Obs.ev_name ^ " carries ctx")
              (Some "req-1")
              (List.assoc_opt "ctx" e.Obs.ev_args))
        evs;
      (* export formats stay parseable-shaped *)
      let chrome = Obs.to_chrome evs in
      Alcotest.(check bool) "chrome wrapper" true
        (contains chrome "{\"traceEvents\":[" && contains chrome "\"displayTimeUnit\":\"ms\"");
      let jsonl = Obs.to_jsonl evs in
      Alcotest.(check int) "jsonl one line per event" 7
        (List.length
           (List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl))))

(* ------------------------------------------------------------------ *)
(* Traced full pipeline runs: spans from driver, pool, supervisor, store
   and analysis instrumentation all harvest into one well-formed stream,
   and the result is untouched. *)

let fingerprint (res : Driver.result) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun fr ->
      Buffer.add_string b fr.Driver.fr_name;
      Buffer.add_string b (Driver.level_name (Driver.level_of fr));
      Buffer.add_string b (Ac_monad.Mprint.func_to_string fr.Driver.fr_final);
      List.iter
        (fun (p, r) ->
          Buffer.add_string b p;
          Buffer.add_string b r)
        fr.Driver.fr_skipped)
    res.Driver.funcs;
  List.iter
    (fun d ->
      Buffer.add_string b d.Driver.dg_name;
      Buffer.add_string b (Driver.level_name (Driver.degraded_level d)))
    res.Driver.degraded;
  Buffer.add_string b (string_of_int res.Driver.budget_hits);
  Buffer.contents b

let fault_sources =
  [ Csources.max_c; Csources.gcd_c; Csources.counter_c; Csources.div_guarded_c ]

(* qcheck: any crash/io-error schedule, traced, on a real multi-domain
   pool — the harvested stream is well-formed and the result matches the
   clean untraced baseline byte for byte.  [Driver.run] caps
   [options.jobs] at the hardware, so the pool is created directly
   ([Pool.create] is uncapped) to get genuine worker domains even on a
   single-core machine. *)
let prop_traced_faulted_wellformed =
  let open QCheck in
  let baselines = Hashtbl.create 8 in
  let baseline src =
    match Hashtbl.find_opt baselines src with
    | Some fp -> fp
    | None ->
      let fp = fingerprint (Driver.run ~options:keep_going src) in
      Hashtbl.add baselines src fp;
      fp
  in
  Test.make ~name:"traced faulted runs: spans well-formed, results unchanged"
    ~count:25
    (quad (int_bound 0x3FFFFFF) (int_bound 300) (int_bound 300)
       (int_bound (List.length fault_sources - 1)))
    (fun (seed, crash, io, src_ix) ->
      let src = List.nth fault_sources src_ix in
      let expect = baseline src in
      let cfg =
        { Faults.default with
          Faults.seed;
          worker_crash = float_of_int crash /. 1000.;
          io_error = float_of_int io /. 1000.
        }
      in
      with_tracing (fun () ->
          let pool = Pool.create ~jobs:3 in
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () ->
              let res =
                with_faults cfg (fun () ->
                    Obs.with_ctx "prop" (fun () ->
                        Driver.run ~options:keep_going ~pool src))
              in
              let evs = Obs.harvest () in
              (match check_wellformed evs with
              | Some e -> Test.fail_reportf "ill-formed stream: %s" e
              | None -> ());
              if evs = [] then Test.fail_report "traced run recorded no events";
              if fingerprint res <> expect then
                Test.fail_report "traced faulted result diverged from baseline";
              true)))

(* ------------------------------------------------------------------ *)
(* Satellite (a): the per-domain profile accumulators.  A pooled run
   must account for exactly the same units of work per phase as the
   sequential run — nothing dropped on worker domains, nothing
   double-counted by the merge. *)

let test_profile_pool_merge () =
  let src = Csources.max_c ^ "\n" ^ Csources.gcd_c in
  ignore (Driver.run ~options:keep_going src);
  let seq = Profile.snapshot () in
  Alcotest.(check bool) "sequential run recorded phases" true (seq <> []);
  let pool = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> ignore (Driver.run ~options:keep_going ~pool src));
  let par = Profile.snapshot () in
  let calls phase entries =
    match List.find_opt (fun e -> String.equal e.Profile.phase phase) entries with
    | Some e -> e.Profile.calls
    | None -> 0
  in
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Printf.sprintf "phase %s: same units of work pooled as sequential"
           e.Profile.phase)
        e.Profile.calls
        (calls e.Profile.phase par))
    seq;
  List.iter
    (fun e ->
      Alcotest.(check bool) (e.Profile.phase ^ ": wall time recorded") true
        (e.Profile.calls = 0 || e.Profile.wall_s >= 0.))
    par;
  Alcotest.(check bool) "pooled total wall positive" true (Profile.total_wall () > 0.)

(* ------------------------------------------------------------------ *)
(* CLI: --trace must not change a byte of output, and the trace must
   validate. *)

let acc_exe =
  let candidates =
    [
      Filename.concat (Sys.getcwd ()) "../bin/acc.exe";
      Filename.concat (Sys.getcwd ()) "_build/default/bin/acc.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_cli_trace_byte_identical () =
  let c = Filename.temp_file "obs" ".c" in
  let out_plain = Filename.temp_file "obs_plain" ".txt" in
  let err_plain = Filename.temp_file "obs_plain" ".err" in
  let out_traced = Filename.temp_file "obs_traced" ".txt" in
  let err_traced = Filename.temp_file "obs_traced" ".err" in
  let trace = Filename.temp_file "obs" ".trace.json" in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ c; out_plain; err_plain; out_traced; err_traced; trace ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      write_file c Csources.gcd_c;
      let q = Filename.quote in
      let run fmt =
        Printf.ksprintf
          (fun cmd ->
            let code = Sys.command cmd in
            Alcotest.(check int) (cmd ^ " exits 0") 0 code)
          fmt
      in
      run "%s translate --no-store %s > %s 2> %s" (q acc_exe) (q c) (q out_plain)
        (q err_plain);
      run "%s translate --no-store --trace %s %s > %s 2> %s" (q acc_exe) (q trace)
        (q c) (q out_traced) (q err_traced);
      Alcotest.(check bool) "stdout byte-identical with --trace" true
        (String.equal (read_file out_plain) (read_file out_traced));
      Alcotest.(check bool) "stderr byte-identical with --trace" true
        (String.equal (read_file err_plain) (read_file err_traced));
      let t = read_file trace in
      Alcotest.(check bool) "chrome trace emitted" true
        (contains t "{\"traceEvents\":[");
      Alcotest.(check bool) "per-function span args present" true
        (contains t "\"func\":\"gcd\"");
      run "%s trace --validate %s > /dev/null 2>&1" (q acc_exe) (q trace))

(* ------------------------------------------------------------------ *)
(* Serve: status grows latency percentiles, and the metrics verb dumps
   the registry. *)

let stdin_serve reqs =
  let req = Filename.temp_file "obs_req" ".txt" in
  let out = Filename.temp_file "obs_out" ".txt" in
  write_file req reqs;
  let cmd =
    Printf.sprintf "%s serve --no-store < %s > %s 2>/dev/null" (Filename.quote acc_exe)
      (Filename.quote req) (Filename.quote out)
  in
  let code = Sys.command cmd in
  Alcotest.(check int) "stdin serve exits 0" 0 code;
  let s = read_file out in
  Sys.remove req;
  Sys.remove out;
  s

let test_serve_status_latency_and_metrics () =
  let c = Filename.temp_file "obs_serve" ".c" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove c with Sys_error _ -> ())
    (fun () ->
      write_file c "int add(int a, int b) { return a + b; }\n";
      let resp =
        stdin_serve
          (Printf.sprintf "translate %s\nlint %s\nstatus\nmetrics\n" c c)
      in
      match String.split_on_char '\n' (String.trim resp) with
      | [ r1; r2; status; metrics ] ->
        Alcotest.(check bool) "translate ok" true (contains r1 "\"ok\":true");
        Alcotest.(check bool) "lint ok" true (contains r2 "\"ok\":true");
        (* the pre-PR status fields are still there, in place... *)
        Alcotest.(check bool) "status keeps requests counter" true
          (contains status "\"requests\":3");
        (* ...and the latency summary is appended at the end *)
        Alcotest.(check bool) "status has latency percentiles" true
          (contains status "\"latency_ms\":{\"p50\":");
        Alcotest.(check bool) "status p99 present" true (contains status "\"p99\":");
        Alcotest.(check bool) "metrics verb answers" true
          (contains metrics "\"cmd\":\"metrics\"");
        Alcotest.(check bool) "registry counters exported" true
          (contains metrics "\"serve.requests\":");
        Alcotest.(check bool) "latency histogram exported" true
          (contains metrics "\"serve.request_latency_s\":{\"count\":")
      | ls -> Alcotest.fail (Printf.sprintf "expected 4 response lines, got %d" (List.length ls)))

(* ------------------------------------------------------------------ *)
(* PR 10: flight-recorder ring mode.  A bounded per-domain buffer that
   overwrites the oldest events must still harvest — after [Obs.repair]
   — into a stream the validator accepts, whatever got truncated. *)

let with_ring cap f =
  with_tracing (fun () ->
      Obs.set_ring (Some cap);
      Fun.protect ~finally:(fun () -> Obs.set_ring None) f)

let test_ring_repair_identity () =
  with_ring 64 (fun () ->
      Obs.span ~cat:"t" "outer" (fun () ->
          Obs.instant ~cat:"t" "tick";
          Obs.span ~cat:"t" "inner" (fun () -> ()));
      let evs = Obs.harvest () in
      Alcotest.(check int) "fits the ring: nothing dropped" 0 (Obs.dropped ());
      Alcotest.(check bool) "repair is the identity on balanced streams" true
        (Obs.repair evs = evs))

let test_ring_overwrite_and_closers () =
  with_ring 8 (fun () ->
      for _ = 1 to 10 do
        Obs.span ~cat:"t" "s" (fun () -> Obs.instant ~cat:"t" "i")
      done;
      (* dump mid-span: the ring has overwritten early events, and the
         still-open span needs a synthetic closer *)
      Obs.span ~cat:"t" "open" (fun () ->
          let evs = Obs.repair (Obs.harvest ()) in
          Alcotest.(check bool) "ring overwrote the oldest events" true
            (Obs.dropped () > 0);
          Alcotest.(check (option string)) "repaired dump well-formed" None
            (check_wellformed evs);
          Alcotest.(check bool) "open span closed synthetically" true
            (List.exists
               (fun e -> e.Obs.ev_ph = Obs.E && String.equal e.Obs.ev_name "open")
               evs)))

(* qcheck: any (capacity, nesting depth, workload size), dumped while a
   span is still open — the repaired harvest is well-formed per tid
   (balanced B/E with stack discipline, strictly increasing seq,
   monotone ts), and the dropped counter fires exactly when the workload
   exceeded the ring. *)
let prop_ring_harvest_wellformed =
  let open QCheck in
  Test.make ~name:"ring-mode harvest repairs to a well-formed stream" ~count:100
    (triple (int_range 2 48) (int_range 1 6) (int_range 0 40))
    (fun (cap, depth, rounds) ->
      with_ring cap (fun () ->
          let rec nest d =
            if d = 0 then Obs.instant ~cat:"t" "leaf"
            else Obs.span ~cat:"t" (Printf.sprintf "d%d" d) (fun () -> nest (d - 1))
          in
          for _ = 1 to rounds do
            nest depth
          done;
          Obs.span ~cat:"t" "live" (fun () ->
              let evs = Obs.repair (Obs.harvest ()) in
              (match check_wellformed evs with
              | Some e -> Test.fail_reportf "ill-formed repaired dump: %s" e
              | None -> ());
              let emitted = (rounds * ((2 * depth) + 1)) + 1 in
              if emitted > cap && Obs.dropped () = 0 then
                Test.fail_report "overflow did not bump the dropped counter";
              if emitted <= cap && Obs.dropped () > 0 then
                Test.fail_report "no overflow but dropped > 0";
              true)))

(* ------------------------------------------------------------------ *)
(* PR 10: the kernel observation hook.  Hooked runs must be
   byte-identical to unhooked ones — the hook counts successful rule
   applications and cannot influence a theorem. *)

let test_effort_hook_invisible () =
  let src = Csources.gcd_c ^ "\n" ^ Csources.div_guarded_c in
  let clean = fingerprint (Driver.run ~options:keep_going src) in
  Ac_kernel.Thm.set_obs_hook (Some Ac_obs.Effort.on_rule);
  Ac_obs.Effort.set_enabled true;
  Ac_obs.Effort.reset ();
  Fun.protect
    ~finally:(fun () ->
      Ac_obs.Effort.set_enabled false;
      Ac_kernel.Thm.set_obs_hook None;
      Ac_obs.Effort.reset ())
    (fun () ->
      let hooked = fingerprint (Driver.run ~options:keep_going src) in
      Alcotest.(check bool) "hooked run fingerprint-identical to unhooked" true
        (String.equal clean hooked);
      Alcotest.(check bool) "rule applications counted" true
        (Ac_obs.Effort.total_applications () > 0);
      let counts = Ac_obs.Effort.rule_counts () in
      Alcotest.(check int) "per-rule counts sum to the total"
        (Ac_obs.Effort.total_applications ())
        (List.fold_left (fun a (_, n) -> a + n) 0 counts);
      let rec descending = function
        | (_, a) :: ((_, b) :: _ as tl) -> a >= b && descending tl
        | _ -> true
      in
      Alcotest.(check bool) "rule_counts most-applied first" true (descending counts);
      let json = Ac_obs.Effort.snapshot_json () in
      Alcotest.(check bool) "snapshot has rule_applications" true
        (contains json "\"rule_applications\":{");
      Alcotest.(check bool) "snapshot has provenance" true
        (contains json "\"discharge_provenance\":{");
      Ac_obs.Effort.reset ();
      Alcotest.(check int) "reset zeroes the tables" 0
        (Ac_obs.Effort.total_applications ()))

(* ------------------------------------------------------------------ *)
(* PR 10: OpenMetrics text exposition.  Every sample line must parse,
   histogram buckets are cumulative with per-bucket [le] bounds ending
   in [+Inf] = count, and [_sum]/[_count] match the observations. *)

let test_openmetrics_exposition () =
  Metrics.reset_all ();
  let c = Metrics.counter "t.om_req" in
  Metrics.add c 3;
  let h = Metrics.histogram "t.om_lat" in
  List.iter (Metrics.observe h) [ 0.002; 0.004; 0.3 ];
  let text = Metrics.to_openmetrics () in
  Alcotest.(check bool) "counter TYPE header" true
    (contains text "# TYPE acc_t_om_req counter");
  Alcotest.(check bool) "counter sample as _total" true
    (contains text "acc_t_om_req_total 3");
  Alcotest.(check bool) "histogram TYPE header" true
    (contains text "# TYPE acc_t_om_lat histogram");
  Alcotest.(check bool) "_count" true (contains text "acc_t_om_lat_count 3");
  Alcotest.(check (float 1e-9)) "hist_sum API" 0.306 (Metrics.hist_sum h);
  let total = ref 0 in
  for i = 0 to Metrics.num_buckets - 1 do
    total := !total + Metrics.bucket_count h i
  done;
  Alcotest.(check int) "bucket counts sum to count" 3 !total;
  Alcotest.(check bool) "bucket bounds increase" true
    (Metrics.bucket_ub 1 > Metrics.bucket_ub 0);
  let lines = String.split_on_char '\n' text in
  (* every non-comment line is "name[{labels}] value" with a float value *)
  List.iter
    (fun l ->
      if l <> "" && l.[0] <> '#' then
        match String.rindex_opt l ' ' with
        | None -> Alcotest.fail ("unparseable sample line: " ^ l)
        | Some i -> (
          match float_of_string_opt (String.sub l (i + 1) (String.length l - i - 1)) with
          | Some _ -> ()
          | None -> Alcotest.fail ("non-numeric sample value: " ^ l)))
    lines;
  let bucket_prefix = "acc_t_om_lat_bucket{le=\"" in
  let buckets =
    List.filter_map
      (fun l ->
        if Astring.String.is_prefix ~affix:bucket_prefix l then (
          let start = String.length bucket_prefix in
          let stop = String.index_from l start '"' in
          let le = String.sub l start (stop - start) in
          match String.rindex_opt l ' ' with
          | Some i ->
            Some (le, float_of_string (String.sub l (i + 1) (String.length l - i - 1)))
          | None -> None)
        else None)
      lines
  in
  Alcotest.(check bool) "at least two finite buckets plus +Inf" true
    (List.length buckets >= 3);
  let rec cumulative last = function
    | [] -> true
    | (_, v) :: tl -> v >= last && cumulative v tl
  in
  Alcotest.(check bool) "bucket series cumulative" true (cumulative 0. buckets);
  (match List.rev buckets with
  | (le, v) :: (le_prev, _) :: _ ->
    Alcotest.(check string) "last bucket is +Inf" "+Inf" le;
    Alcotest.(check (float 0.)) "+Inf bucket equals count" 3. v;
    (* finite le labels round-trip to the shared bucket layout *)
    let ub = float_of_string le_prev in
    let matches_layout =
      let rec go i =
        i < Metrics.num_buckets
        && (Float.abs (Metrics.bucket_ub i -. ub) <= 1e-9 *. ub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "finite le matches bucket_ub layout" true matches_layout
  | _ -> Alcotest.fail "missing buckets");
  Metrics.reset_all ()

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "metrics: counters and gauges" `Quick test_metrics_counter_gauge;
    Alcotest.test_case "metrics: histogram quantiles" `Quick
      test_metrics_histogram_quantiles;
    Alcotest.test_case "metrics: multi-domain counters exact" `Quick
      test_metrics_multidomain;
    Alcotest.test_case "spans: nesting, ctx, exports" `Quick test_span_nesting_unit;
    QCheck_alcotest.to_alcotest prop_traced_faulted_wellformed;
    Alcotest.test_case "profile: pooled run matches sequential units" `Slow
      test_profile_pool_merge;
    Alcotest.test_case "cli: --trace is byte-invisible and validates" `Slow
      test_cli_trace_byte_identical;
    Alcotest.test_case "serve: status latency + metrics verb" `Slow
      test_serve_status_latency_and_metrics;
    Alcotest.test_case "ring: repair is identity on balanced streams" `Quick
      test_ring_repair_identity;
    Alcotest.test_case "ring: overwrite + synthetic closers validate" `Quick
      test_ring_overwrite_and_closers;
    QCheck_alcotest.to_alcotest prop_ring_harvest_wellformed;
    Alcotest.test_case "kernel hook: counted, invisible in results" `Slow
      test_effort_hook_invisible;
    Alcotest.test_case "openmetrics: exposition parses and adds up" `Quick
      test_openmetrics_exposition;
  ]
