(* Tests for the WP/VC generator over pipeline output, discharged by the
   automatic prover: the paper's claim that abstracted programs verify with
   generic automation (Sec 4.5, Sec 5). *)

module B = Ac_bignum
module T = Ac_prover.Term
module Solver = Ac_prover.Solver
module Vc = Ac_hoare.Vc
module Driver = Autocorres.Driver
module M = Ac_monad.M

let prove_all vcs =
  List.iter
    (fun (label, vc) ->
      match fst (Solver.prove vc) with
      | Solver.Proved -> ()
      | Solver.Refuted _ -> Alcotest.failf "%s: refuted" label
      | Solver.Unknown _ -> Alcotest.failf "%s: not discharged" label)
    vcs

let heap c st = Vc.state_get st (Vc.heap_name c)
let valid c st = Vc.state_get st (Vc.valid_name c)
let fheap s f st = Vc.state_get st (Vc.field_heap_name s f)
let term = Vc.tv_to_term
let u32 : Ac_lang.Ty.cty = Ac_lang.Ty.Cword (Ac_lang.Ty.Unsigned, Ac_lang.Ty.W32)

let swap_c = "void swap(unsigned *a, unsigned *b) { unsigned t = *a; *a = *b; *b = t; }"

let suzuki_c =
  "struct node { struct node *next; unsigned data; };\n\
   unsigned suzuki(struct node *w, struct node *x, struct node *y, struct node *z) {\n\
  \  w->next = x; x->next = y; y->next = z; x->next = z;\n\
  \  w->data = 1u; x->data = 2u; y->data = 3u; z->data = 4u;\n\
  \  return w->next->next->data;\n}\n"

let countdown_c =
  "unsigned countdown(unsigned s, unsigned n) { while (n > 0u) { s = s + 1u; n = n - 1u; } \
   return s; }"

let mid_c = "unsigned mid(unsigned l, unsigned r) { unsigned m = (l + r) / 2u; return m; }"

let tests =
  [
    ( "swap's Hoare triple is automatic on the lifted heap (Sec 4.2)",
      fun () ->
        let options =
          { Driver.default_options with
            defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } }
        in
        let res = Driver.run ~options swap_c in
        let cfg = Vc.make_config res.Driver.final_prog in
        let x0 = T.Var ("x0", T.Sint) and y0 = T.Var ("y0", T.Sint) in
        let triple =
          {
            Vc.t_pre =
              (fun args st ->
                match args with
                | [ a; b ] ->
                  T.conj
                    [ T.select_t (valid u32 st) (term a);
                      T.select_t (valid u32 st) (term b);
                      T.eq_t (T.select_t (heap u32 st) (term a)) x0;
                      T.eq_t (T.select_t (heap u32 st) (term b)) y0 ]
                | _ -> assert false);
            t_post =
              (fun args _rv _st0 st ->
                match args with
                | [ a; b ] ->
                  T.and_t
                    (T.eq_t (T.select_t (heap u32 st) (term a)) y0)
                    (T.eq_t (T.select_t (heap u32 st) (term b)) x0)
                | _ -> assert false);
          }
        in
        (* Note: as in the paper, the triple needs no aliasing side
           conditions beyond validity — but a and b must be distinct for
           this postcondition, exactly as Sec 4.1 discusses. *)
        let triple_distinct =
          {
            triple with
            Vc.t_pre =
              (fun args st ->
                match args with
                | [ a; b ] ->
                  T.and_t (triple.Vc.t_pre args st) (T.not_t (T.eq_t (term a) (term b)))
                | _ -> assert false);
          }
        in
        prove_all (Vc.func_vcs cfg "swap" triple_distinct) );
    ( "swap with aliased pointers (a = b) still satisfies the symmetric triple",
      fun () ->
        let options =
          { Driver.default_options with
            defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } }
        in
        let res = Driver.run ~options swap_c in
        let cfg = Vc.make_config res.Driver.final_prog in
        let triple =
          {
            Vc.t_pre =
              (fun args st ->
                match args with
                | [ a; b ] ->
                  T.conj
                    [ T.eq_t (term a) (term b); T.select_t (valid u32 st) (term a) ]
                | _ -> assert false);
            Vc.t_post =
              (fun args _rv st0 st ->
                match args with
                | [ a; _ ] ->
                  T.eq_t
                    (T.select_t (heap u32 st) (term a))
                    (T.select_t (heap u32 st0) (term a))
                | _ -> assert false);
          }
        in
        prove_all (Vc.func_vcs cfg "swap" triple) );
    ( "suzuki's challenge through the full pipeline is automatic (Sec 4.5)",
      fun () ->
        let options =
          { Driver.default_options with
            defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = true } }
        in
        let res = Driver.run ~options suzuki_c in
        let cfg = Vc.make_config res.Driver.final_prog in
        let nodec : Ac_lang.Ty.cty = Ac_lang.Ty.Cstruct "node" in
        let triple =
          {
            Vc.t_pre =
              (fun args st ->
                let ts = List.map term args in
                let validity = List.map (fun p -> T.select_t (valid nodec st) p) ts in
                let rec distinct = function
                  | [] -> []
                  | p :: rest ->
                    List.map (fun q -> T.not_t (T.eq_t p q)) rest @ distinct rest
                in
                T.conj (validity @ distinct ts));
            Vc.t_post = (fun _args rv _st0 _st -> T.eq_t (term rv) (T.int_of 4));
          }
        in
        prove_all (Vc.func_vcs cfg "suzuki" triple) );
    ( "loops verify with invariant and measure (total correctness)",
      fun () ->
        let res = Driver.run countdown_c in
        let cfg = Vc.make_config res.Driver.final_prog in
        let s0 = T.Var ("arg_s", T.Sint) and n0 = T.Var ("arg_n", T.Sint) in
        let uint_max = T.Int (B.pred (B.pow2 32)) in
        (* The invariant carries the no-overflow bound that word
           abstraction's guard for s + 1 obliges us to prove (Sec 3.3). *)
        Vc.add_invariant cfg "countdown" 0
          (Vc.simple_invariant
             ~measure:(fun binds _st -> Vc.tv_to_term (List.assoc "n" binds))
             (fun binds _st ->
                let s = Vc.tv_to_term (List.assoc "s" binds) in
                let n = Vc.tv_to_term (List.assoc "n" binds) in
                T.conj
                  [ T.le_t T.zero s; T.le_t T.zero n;
                    T.eq_t (T.add_t s n) (T.add_t s0 n0);
                    T.le_t (T.add_t s0 n0) uint_max ]));
        let triple =
          {
            Vc.t_pre = (fun _ _ -> T.le_t (T.add_t s0 n0) uint_max);
            Vc.t_post = (fun _ rv _ _ -> T.eq_t (term rv) (T.add_t s0 n0));
          }
        in
        prove_all (Vc.func_vcs cfg "countdown" triple) );
    ( "midpoint guards are proof obligations discharged from the pre",
      fun () ->
        let res = Driver.run mid_c in
        let cfg = Vc.make_config res.Driver.final_prog in
        let uint_max = T.Int (B.pred (B.pow2 32)) in
        let triple =
          {
            Vc.t_pre =
              (fun args _ ->
                match args with
                | [ l; r ] ->
                  T.and_t (T.lt_t (term l) (term r)) (T.le_t (T.add_t (term l) (term r)) uint_max)
                | _ -> assert false);
            Vc.t_post =
              (fun args rv _ _ ->
                match args with
                | [ l; r ] -> T.and_t (T.le_t (term l) (term rv)) (T.lt_t (term rv) (term r))
                | _ -> assert false);
          }
        in
        prove_all (Vc.func_vcs cfg "mid" triple) );
    ( "word subtraction wraps correctly in VCs (regression)",
      fun () ->
        (* dec stays at the word level (WA off): x - 1 wraps at 0 *)
        let options =
          { Driver.default_options with
            defaults = { Driver.default_func_options with Driver.word_abs = false; heap_abs = false } }
        in
        let res = Driver.run ~options "unsigned dec(unsigned x) { return x - 1u; }" in
        let cfg = Vc.make_config res.Driver.final_prog in
        let triple_normal =
          {
            Vc.t_pre = (fun args _ -> T.le_t T.one (term (List.hd args)));
            Vc.t_post =
              (fun args rv _ _ ->
                T.eq_t (term rv) (T.sub_t (term (List.hd args)) T.one));
          }
        in
        prove_all (Vc.func_vcs cfg "dec" triple_normal);
        (* the wraparound case: dec 0 = 2^32 - 1 *)
        let triple_wrap =
          {
            Vc.t_pre = (fun args _ -> T.eq_t (term (List.hd args)) T.zero);
            Vc.t_post =
              (fun _ rv _ _ -> T.eq_t (term rv) (T.Int (B.pred (B.pow2 32))));
          }
        in
        prove_all (Vc.func_vcs cfg "dec" triple_wrap);
        (* and hypotheses about word subtraction must stay consistent:
           pre x = 0 must NOT prove rv = 0 *)
        let triple_false =
          {
            Vc.t_pre = (fun args _ -> T.eq_t (term (List.hd args)) T.zero);
            Vc.t_post = (fun _ rv _ _ -> T.eq_t (term rv) T.zero);
          }
        in
        let all_proved =
          List.for_all
            (fun (_, vc) -> Ac_prover.Solver.is_proved (fst (Ac_prover.Solver.prove vc)))
            (Vc.func_vcs cfg "dec" triple_false)
        in
        Alcotest.(check bool) "inconsistent hyps not provable" false all_proved );
    ( "negative dividends do not make div/mod facts inconsistent (regression)",
      fun () ->
        let open Ac_prover in
        let a = T.Var ("a", T.Sint) in
        (* hyp: m = (a - 5) mod 8 with a unconstrained; goal 0 = 1 must not
           be provable (the old elaboration asserted q >= 0 and was
           inconsistent for negative dividends) *)
        let m = T.App (T.Mod, [ T.sub_t a (T.int_of 5); T.int_of 8 ]) in
        let bogus =
          Solver.prove ~hyps:[ T.eq_t (T.Var ("m", T.Sint)) m; T.lt_t a T.zero ]
            (T.eq_t T.zero T.one)
        in
        (match fst bogus with
        | Solver.Proved -> Alcotest.fail "inconsistent elaboration"
        | _ -> ());
        (* truncated semantics: a = -3 -> (a - 5) mod 8 = 0, (a-6) mod 8 = -1 *)
        Alcotest.(check bool) "exact negative mod" true
          (Solver.holds
             ~hyps:[ T.eq_t a (T.int_of (-3)) ]
             (T.eq_t (T.App (T.Mod, [ T.sub_t a (T.int_of 6); T.int_of 8 ])) (T.int_of (-1)))) );
    ( "a wrong postcondition is refuted, not proved",
      fun () ->
        let res = Driver.run mid_c in
        let cfg = Vc.make_config res.Driver.final_prog in
        let triple =
          {
            Vc.t_pre = (fun _ _ -> T.tt);
            Vc.t_post = (fun _ rv _ _ -> T.eq_t (term rv) T.zero);
          }
        in
        let vcs = Vc.func_vcs cfg "mid" triple in
        let all_proved =
          List.for_all (fun (_, vc) -> Solver.is_proved (fst (Solver.prove vc))) vcs
        in
        Alcotest.(check bool) "not all proved" false all_proved );
  ]

let suite = List.map (fun (n, f) -> Alcotest.test_case n `Quick f) tests
