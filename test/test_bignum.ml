(* Unit and property tests for the bignum substrate.  Properties are checked
   against native [int] arithmetic on ranges where it is exact, and against
   algebraic laws (division identities, ring laws) elsewhere. *)

module B = Ac_bignum

let b = B.of_int
let s = B.to_string

let check_b msg expected actual = Alcotest.(check string) msg expected (s actual)

(* QCheck generator for moderately large bignums built from up to four
   63-bit chunks, so products exercise multi-digit paths. *)
let gen_big =
  let open QCheck.Gen in
  let chunk = map B.of_int (int_range (-0x3FFFFFFF) 0x3FFFFFFF) in
  let* n = int_range 1 4 in
  let* chunks = list_size (return n) chunk in
  return (List.fold_left (fun acc c -> B.add (B.mul acc (B.pow2 30)) c) B.zero chunks)

let arb_big = QCheck.make ~print:s gen_big

let arb_small_int = QCheck.int_range (-1000000) 1000000

let unit_tests =
  [
    ( "of_string/to_string round trips",
      fun () ->
        List.iter
          (fun str -> Alcotest.(check string) str str (s (B.of_string str)))
          [ "0"; "1"; "-1"; "42"; "-65536"; "4294967296"; "18446744073709551615";
            "-340282366920938463463374607431768211456" ] );
    ( "hex parsing",
      fun () ->
        check_b "0xff" "255" (B.of_string "0xff");
        check_b "0x100000000" "4294967296" (B.of_string "0x100000000");
        check_b "-0x10" "-16" (B.of_string "-0x10") );
    ( "of_int min_int/max_int",
      fun () ->
        check_b "max_int" (string_of_int max_int) (b max_int);
        check_b "min_int" (string_of_int min_int) (b min_int);
        Alcotest.(check (option int)) "round min_int" (Some min_int) (B.to_int_opt (b min_int)) );
    ( "known big product",
      fun () ->
        let m = B.pred (B.pow2 64) in
        (* (2^64-1)^2 = 2^128 - 2^65 + 1 *)
        check_b "(2^64-1)^2" "340282366920938463426481119284349108225" (B.mul m m) );
    ( "pow2 and shifts",
      fun () ->
        check_b "2^0" "1" (B.pow2 0);
        check_b "2^70" "1180591620717411303424" (B.pow2 70);
        check_b "shl" "1180591620717411303424" (B.shift_left B.one 70);
        check_b "shr" "1" (B.shift_right (B.pow2 70) 70);
        check_b "shr neg" "-1" (B.shift_right (b (-1)) 5);
        check_b "shr neg 2" "-2" (B.shift_right (b (-7)) 2) );
    ( "divmod truncates toward zero",
      fun () ->
        let q, r = B.divmod (b 7) (b 2) in
        check_b "q" "3" q;
        check_b "r" "1" r;
        let q, r = B.divmod (b (-7)) (b 2) in
        check_b "q neg" "-3" q;
        check_b "r neg" "-1" r;
        let q, r = B.divmod (b 7) (b (-2)) in
        check_b "q negd" "-3" q;
        check_b "r negd" "1" r );
    ( "fdivmod floors",
      fun () ->
        let q, r = B.fdivmod (b (-7)) (b 2) in
        check_b "fq" "-4" q;
        check_b "fr" "1" r );
    ( "division by zero raises",
      fun () ->
        Alcotest.check_raises "raise" B.Division_by_zero (fun () -> ignore (B.div B.one B.zero)) );
    ( "mod_pow2 and signed_mod_pow2",
      fun () ->
        check_b "u32 of 2^32" "0" (B.mod_pow2 (B.pow2 32) 32);
        check_b "u32 of -1" "4294967295" (B.mod_pow2 (b (-1)) 32);
        check_b "s32 of 2^31" "-2147483648" (B.signed_mod_pow2 (B.pow2 31) 32);
        check_b "s32 of 2^31-1" "2147483647" (B.signed_mod_pow2 (B.pred (B.pow2 31)) 32) );
    ( "gcd",
      fun () ->
        check_b "gcd" "6" (B.gcd (b 54) (b 24));
        check_b "gcd neg" "6" (B.gcd (b (-54)) (b 24));
        check_b "gcd zero" "7" (B.gcd (b 7) B.zero) );
    ( "bitwise",
      fun () ->
        check_b "and" "8" (B.logand (b 12) (b 10));
        check_b "or" "14" (B.logor (b 12) (b 10));
        check_b "xor" "6" (B.logxor (b 12) (b 10));
        Alcotest.check_raises "neg operand" (B.Negative_operand "logand") (fun () ->
            ignore (B.logand (b (-1)) (b 1))) );
    ( "bit_length and test_bit",
      fun () ->
        Alcotest.(check int) "bl 0" 0 (B.bit_length B.zero);
        Alcotest.(check int) "bl 1" 1 (B.bit_length B.one);
        Alcotest.(check int) "bl 255" 8 (B.bit_length (b 255));
        Alcotest.(check int) "bl 2^70" 71 (B.bit_length (B.pow2 70));
        Alcotest.(check bool) "bit set" true (B.test_bit (B.pow2 70) 70);
        Alcotest.(check bool) "bit clear" false (B.test_bit (B.pow2 70) 69) );
    ( "pow",
      fun () ->
        check_b "3^0" "1" (B.pow (b 3) 0);
        check_b "3^27" "7625597484987" (B.pow (b 3) 27) );
    ( "comparisons",
      fun () ->
        Alcotest.(check bool) "lt" true (B.lt (b (-5)) (b 3));
        Alcotest.(check bool) "le" true (B.le (b 3) (b 3));
        Alcotest.(check bool) "min" true (B.equal (B.min (b 2) (b 5)) (b 2));
        Alcotest.(check bool) "max" true (B.equal (B.max (b 2) (b 5)) (b 5)) );
  ]

let prop_tests =
  let open QCheck in
  [
    Test.make ~name:"add matches native" ~count:500 (pair arb_small_int arb_small_int)
      (fun (x, y) -> B.to_int_exn (B.add (b x) (b y)) = x + y);
    Test.make ~name:"mul matches native" ~count:500 (pair arb_small_int arb_small_int)
      (fun (x, y) -> B.to_int_exn (B.mul (b x) (b y)) = x * y);
    Test.make ~name:"div/mod match native" ~count:500 (pair arb_small_int arb_small_int)
      (fun (x, y) ->
        QCheck.assume (y <> 0);
        B.to_int_exn (B.div (b x) (b y)) = x / y && B.to_int_exn (B.rem (b x) (b y)) = x mod y);
    Test.make ~name:"string round trip" ~count:200 arb_big (fun x ->
        B.equal (B.of_string (s x)) x);
    Test.make ~name:"divmod identity" ~count:500 (pair arb_big arb_big) (fun (a, d) ->
        QCheck.assume (not (B.is_zero d));
        let q, r = B.divmod a d in
        B.equal a (B.add (B.mul q d) r)
        && B.lt (B.abs r) (B.abs d)
        && (B.is_zero r || B.sign r = B.sign a));
    Test.make ~name:"fdivmod identity" ~count:500 (pair arb_big arb_big) (fun (a, d) ->
        QCheck.assume (not (B.is_zero d));
        let q, r = B.fdivmod a d in
        B.equal a (B.add (B.mul q d) r)
        && B.lt (B.abs r) (B.abs d)
        && (B.is_zero r || B.sign r = B.sign d));
    Test.make ~name:"mul distributes over add" ~count:300 (triple arb_big arb_big arb_big)
      (fun (a, x, y) -> B.equal (B.mul a (B.add x y)) (B.add (B.mul a x) (B.mul a y)));
    Test.make ~name:"sub then add round trips" ~count:300 (pair arb_big arb_big) (fun (a, x) ->
        B.equal (B.add (B.sub a x) x) a);
    Test.make ~name:"compare antisymmetry" ~count:300 (pair arb_big arb_big) (fun (a, x) ->
        B.compare a x = -B.compare x a);
    Test.make ~name:"shift_left is mul pow2" ~count:200 (pair arb_big (int_range 0 100))
      (fun (a, n) -> B.equal (B.shift_left a n) (B.mul a (B.pow2 n)));
    Test.make ~name:"shift_right is fdiv pow2" ~count:200 (pair arb_big (int_range 0 100))
      (fun (a, n) -> B.equal (B.shift_right a n) (B.fdiv a (B.pow2 n)));
    Test.make ~name:"mod_pow2 in range" ~count:300 (pair arb_big (int_range 1 80)) (fun (a, n) ->
        let r = B.mod_pow2 a n in
        B.le B.zero r && B.lt r (B.pow2 n));
    Test.make ~name:"signed_mod_pow2 in range" ~count:300 (pair arb_big (int_range 1 80))
      (fun (a, n) ->
        let r = B.signed_mod_pow2 a n in
        B.le (B.neg (B.pow2 (n - 1))) r && B.lt r (B.pow2 (n - 1)));
    Test.make ~name:"mod_pow2 congruence" ~count:300 (pair arb_big (int_range 1 80)) (fun (a, n) ->
        B.is_zero (B.fmod (B.sub a (B.mod_pow2 a n)) (B.pow2 n)));
    Test.make ~name:"gcd divides both" ~count:200 (pair arb_big arb_big) (fun (a, x) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero x));
        let g = B.gcd a x in
        B.is_zero (B.rem a g) && B.is_zero (B.rem x g));
    Test.make ~name:"bitwise matches native" ~count:300
      (pair (int_range 0 0x3FFFFFFF) (int_range 0 0x3FFFFFFF)) (fun (x, y) ->
        B.to_int_exn (B.logand (b x) (b y)) = x land y
        && B.to_int_exn (B.logor (b x) (b y)) = x lor y
        && B.to_int_exn (B.logxor (b x) (b y)) = x lxor y);
  ]

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
  @ List.map QCheck_alcotest.to_alcotest prop_tests
