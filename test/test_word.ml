(* Tests for machine words: agreement with Int32/Int64 reference semantics,
   two's-complement laws, and the paper's Table 2 counter-examples. *)

module B = Ac_bignum
module W = Ac_word

let w32 = W.of_int W.W32
let w8 = W.of_int W.W8
let w64 n = W.of_int W.W64 n

let check_u msg expected actual = Alcotest.(check string) msg expected (W.to_string_u actual)
let check_s msg expected actual = Alcotest.(check string) msg expected (W.to_string_s actual)

let arb_i32 = QCheck.int_range (-0x40000000) 0x3FFFFFFF

(* Arbitrary 32-bit words, biased toward boundary values where overflow
   behaviour lives. *)
let gen_w32 =
  let open QCheck.Gen in
  frequency
    [
      (3, map w32 (int_range (-0x80000000) 0xFFFFFFFF));
      (1, oneofl [ w32 0; w32 1; w32 (-1); w32 0x7FFFFFFF; w32 0x80000000; w32 0xFFFFFFFF ]);
    ]

let arb_w32 = QCheck.make ~print:W.to_string_u gen_w32

let i32_of_word w = Int32.of_string (B.to_string (W.sint w))
let word_of_i32 v = w32 (Int32.to_int v)

let unit_tests =
  [
    ( "unat and sint views",
      fun () ->
        check_u "unat -1" "4294967295" (w32 (-1));
        check_s "sint -1" "-1" (w32 (-1));
        check_s "sint 2^31" "-2147483648" (w32 0x80000000);
        check_u "unat 2^31" "2147483648" (w32 0x80000000) );
    ( "unsigned wraparound (C99 modulo)",
      fun () ->
        (* Table 2: 2^31 * 2 = 0 on unsigned 32-bit words. *)
        check_u "2^31 * 2" "0" (W.mul W.Unsigned (w32 0x80000000) (w32 2));
        check_u "max + 1" "0" (W.add W.Unsigned (w32 0xFFFFFFFF) (w32 1)) );
    ( "table 2: s + 1 - 1 wraps at INT_MAX",
      fun () ->
        let s = w32 0x7FFFFFFF in
        Alcotest.(check bool) "overflow flagged" true (W.add_overflows W.Signed s (w32 1));
        check_s "wrapped" "-2147483648" (W.add W.Signed s (w32 1)) );
    ( "table 2: -(-s) overflows at INT_MIN",
      fun () ->
        let s = w32 0x80000000 in
        check_s "neg INT_MIN = INT_MIN" "-2147483648" (W.neg W.Signed s) );
    ( "table 2: u + 1 > u fails at UINT_MAX",
      fun () ->
        let u = w32 0xFFFFFFFF in
        Alcotest.(check bool) "u+1 <= u" true (W.compare_u (W.add W.Unsigned u (w32 1)) u < 0) );
    ( "table 2: u * 2 = 4 does not imply u = 2",
      fun () ->
        let u = w32 (0x80000000 + 2) in
        check_u "other preimage" "4" (W.mul W.Unsigned u (w32 2)) );
    ( "table 2: -u = u does not imply u = 0",
      fun () ->
        let u = w32 0x80000000 in
        Alcotest.(check bool) "-u = u" true (W.equal (W.neg W.Unsigned u) u);
        Alcotest.(check bool) "u <> 0" false (W.is_zero u) );
    ( "signed division truncates toward zero",
      fun () ->
        check_s "-7/2" "-3" (W.div W.Signed (w32 (-7)) (w32 2));
        check_s "-7%2" "-1" (W.rem W.Signed (w32 (-7)) (w32 2)) );
    ( "div overflow: INT_MIN / -1",
      fun () ->
        Alcotest.(check bool) "flagged" true
          (W.div_overflows W.Signed (w32 0x80000000) (w32 (-1)));
        Alcotest.(check bool) "not flagged" false (W.div_overflows W.Signed (w32 5) (w32 (-1))) );
    ( "shifts",
      fun () ->
        check_u "shl" "16" (W.shift_left (w32 1) (B.of_int 4));
        check_u "shl wrap" "0" (W.shift_left (w32 0x80000000) (B.of_int 1));
        check_u "lshr" "1" (W.shift_right_u (w32 16) (B.of_int 4));
        check_s "ashr keeps sign" "-1" (W.shift_right_s (w32 (-1)) (B.of_int 8));
        Alcotest.(check bool) "amount ok" true (W.shift_amount_ok (w32 1) (B.of_int 31));
        Alcotest.(check bool) "amount too big" false (W.shift_amount_ok (w32 1) (B.of_int 32)) );
    ( "bitwise",
      fun () ->
        check_u "not 0" "4294967295" (W.lognot (w32 0));
        check_u "and" "8" (W.logand (w32 12) (w32 10));
        check_u "or" "14" (W.logor (w32 12) (w32 10));
        check_u "xor" "6" (W.logxor (w32 12) (w32 10)) );
    ( "casts",
      fun () ->
        (* (unsigned char)(-1) = 255 *)
        check_u "s32->u8" "255" (W.cast ~to_sign:W.Unsigned ~to_width:W.W8 W.Signed (w32 (-1)));
        (* (int)(unsigned char)200 = 200 *)
        check_s "u8->s32" "200" (W.cast ~to_sign:W.Signed ~to_width:W.W32 W.Unsigned (w8 200));
        (* widening a signed negative sign-extends *)
        check_u "s8->u32 sign-extend" "4294967295"
          (W.cast ~to_sign:W.Unsigned ~to_width:W.W32 W.Signed (w8 0xFF)) );
    ( "cast_value",
      fun () ->
        Alcotest.(check string) "to u8" "255"
          (B.to_string (W.cast_value ~to_sign:W.Unsigned ~to_width:W.W8 (B.of_int (-1))));
        Alcotest.(check string) "to s8" "-1"
          (B.to_string (W.cast_value ~to_sign:W.Signed ~to_width:W.W8 (B.of_int 255))) );
    ( "byte round trip",
      fun () ->
        let w = w32 0x12345678 in
        Alcotest.(check (list int)) "bytes le" [ 0x78; 0x56; 0x34; 0x12 ] (W.to_bytes w);
        Alcotest.(check bool) "round" true (W.equal (W.of_bytes W.W32 (W.to_bytes w)) w);
        let v = w64 (-1) in
        Alcotest.(check bool) "w64 round" true (W.equal (W.of_bytes W.W64 (W.to_bytes v)) v) );
    ( "range bounds",
      fun () ->
        Alcotest.(check string) "INT_MIN" "-2147483648" (B.to_string (W.min_value W.Signed W.W32));
        Alcotest.(check string) "INT_MAX" "2147483647" (B.to_string (W.max_value W.Signed W.W32));
        Alcotest.(check string) "UINT_MAX" "4294967295"
          (B.to_string (W.max_value W.Unsigned W.W32));
        Alcotest.(check bool) "in range" true (W.in_range W.Signed W.W32 (B.of_int 5));
        Alcotest.(check bool) "not in range" false
          (W.in_range W.Signed W.W32 (B.of_int 0x80000000)) );
  ]

let prop_tests =
  let open QCheck in
  let i32 f32 fw (x, y) =
    let a = Int32.of_int x and c = Int32.of_int y in
    W.equal (word_of_i32 (f32 a c)) (fw (w32 x) (w32 y))
  in
  [
    Test.make ~name:"add matches Int32" ~count:500 (pair arb_i32 arb_i32)
      (i32 Int32.add (W.add W.Signed));
    Test.make ~name:"sub matches Int32" ~count:500 (pair arb_i32 arb_i32)
      (i32 Int32.sub (W.sub W.Signed));
    Test.make ~name:"mul matches Int32" ~count:500 (pair arb_i32 arb_i32)
      (i32 Int32.mul (W.mul W.Signed));
    Test.make ~name:"signed and unsigned add agree on representatives" ~count:500
      (pair arb_w32 arb_w32) (fun (a, c) ->
        W.equal (W.add W.Signed a c) (W.add W.Unsigned a c));
    Test.make ~name:"sub is add of neg" ~count:500 (pair arb_w32 arb_w32) (fun (a, c) ->
        W.equal (W.sub W.Unsigned a c) (W.add W.Unsigned a (W.neg W.Unsigned c)));
    Test.make ~name:"unat bounds" ~count:500 arb_w32 (fun a ->
        B.le B.zero (W.unat a) && B.lt (W.unat a) (B.pow2 32));
    Test.make ~name:"sint bounds" ~count:500 arb_w32 (fun a ->
        B.le (B.neg (B.pow2 31)) (W.sint a) && B.lt (W.sint a) (B.pow2 31));
    Test.make ~name:"unat/sint congruent mod 2^32" ~count:500 arb_w32 (fun a ->
        B.is_zero (B.fmod (B.sub (W.unat a) (W.sint a)) (B.pow2 32)));
    Test.make ~name:"no signed overflow implies exact add" ~count:500 (pair arb_w32 arb_w32)
      (fun (a, c) ->
        QCheck.assume (not (W.add_overflows W.Signed a c));
        B.equal (W.sint (W.add W.Signed a c)) (B.add (W.sint a) (W.sint c)));
    Test.make ~name:"no unsigned overflow implies exact add" ~count:500 (pair arb_w32 arb_w32)
      (fun (a, c) ->
        QCheck.assume (not (W.add_overflows W.Unsigned a c));
        B.equal (W.unat (W.add W.Unsigned a c)) (B.add (W.unat a) (W.unat c)));
    Test.make ~name:"lognot is max - x" ~count:500 arb_w32 (fun a ->
        B.equal (W.unat (W.lognot a)) (B.sub (W.max_value W.Unsigned W.W32) (W.unat a)));
    Test.make ~name:"cast round trip via wider" ~count:500 arb_w32 (fun a ->
        let up = W.cast ~to_sign:W.Unsigned ~to_width:W.W64 W.Unsigned a in
        W.equal (W.cast ~to_sign:W.Unsigned ~to_width:W.W32 W.Unsigned up) a);
    Test.make ~name:"byte round trip" ~count:500 arb_w32 (fun a ->
        W.equal (W.of_bytes W.W32 (W.to_bytes a)) a);
    Test.make ~name:"div identity" ~count:500 (pair arb_w32 arb_w32) (fun (a, c) ->
        QCheck.assume (not (W.is_zero c));
        QCheck.assume (not (W.div_overflows W.Signed a c));
        let q = W.div W.Signed a c and r = W.rem W.Signed a c in
        B.equal (W.sint a) (B.add (B.mul (W.sint q) (W.sint c)) (W.sint r)));
  ]

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
  @ List.map QCheck_alcotest.to_alcotest prop_tests
