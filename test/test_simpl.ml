(* Tests for the Simpl layer: heap lifting (paper Fig 4), the C->Simpl
   translation's guards (Fig 2), and the big-step semantics. *)

module B = Ac_bignum
module W = Ac_word
module Ty = Ac_lang.Ty
module Value = Ac_lang.Value
module E = Ac_lang.Expr
module Layout = Ac_lang.Layout
open Ac_simpl

let v32 n = Value.vword Ty.Signed (W.of_int W.W32 n)
let vu32 n = Value.vword Ty.Unsigned (W.of_int W.W32 n)

let fuel = 100000

let run ?(state = State.empty) src fname args =
  let prog = C2simpl.parse src in
  Sem.run_func prog ~fuel state fname args

let check_ret msg expected result =
  match result with
  | Sem.Returns (Some v, _) -> Alcotest.(check string) msg expected (Value.to_string v)
  | Sem.Returns (None, _) -> Alcotest.fail (msg ^ ": no return value")
  | Sem.Faults k -> Alcotest.fail (msg ^ ": fault " ^ Ir.guard_kind_name k)
  | Sem.Gets_stuck m -> Alcotest.fail (msg ^ ": stuck " ^ m)
  | Sem.Diverges -> Alcotest.fail (msg ^ ": diverged")

let check_fault msg kind result =
  match result with
  | Sem.Faults k when k = kind -> ()
  | Sem.Faults k -> Alcotest.fail (msg ^ ": wrong fault " ^ Ir.guard_kind_name k)
  | _ -> Alcotest.fail (msg ^ ": expected fault")

let max_c = "int max(int a, int b) {\n  if (a < b)\n    return b;\n  return a;\n}\n"

let gcd_c =
  "unsigned gcd(unsigned a, unsigned b) {\n\
  \  while (b != 0u) { unsigned t = b; b = a % b; a = t; }\n\
  \  return a;\n}\n"

let heap_tests =
  [
    ( "heap lift: tagged aligned object lifts (Fig 4)",
      fun () ->
        let lenv = Layout.empty in
        let c = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let addr, h = Heap.alloc lenv Heap.empty c in
        let h = Heap.write_obj lenv h c addr (vu32 0x11223344) in
        (match Heap.heap_lift lenv h c addr with
        | Some v -> Alcotest.(check string) "value" "287454020" (Value.to_string v)
        | None -> Alcotest.fail "expected Some");
        (* misaligned: reading two bytes in *)
        Alcotest.(check bool) "misaligned is None" true
          (Heap.heap_lift lenv h c (B.add addr B.two) = None);
        (* wrong type *)
        Alcotest.(check bool) "wrong type is None" true
          (Heap.heap_lift lenv h (Ty.Cword (Ty.Unsigned, Ty.W16)) addr = None);
        (* untyped address *)
        Alcotest.(check bool) "untagged is None" true
          (Heap.heap_lift lenv h c (B.add addr (B.of_int 64)) = None) );
    ( "heap lift: null never lifts",
      fun () ->
        let lenv = Layout.empty in
        let c = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let h = Heap.retype lenv Heap.empty c B.zero in
        Alcotest.(check bool) "null" true (Heap.heap_lift lenv h c B.zero = None) );
    ( "retype clears overlapping tags",
      fun () ->
        let lenv = Layout.empty in
        let c32 = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let c8 = Ty.Cword (Ty.Unsigned, Ty.W8) in
        let addr, h = Heap.alloc lenv Heap.empty c32 in
        let h = Heap.retype lenv h c8 (B.add addr B.one) in
        Alcotest.(check bool) "w32 tag gone" true (Heap.heap_lift lenv h c32 addr = None);
        Alcotest.(check bool) "w8 lifts" true
          (Heap.heap_lift lenv h c8 (B.add addr B.one) <> None) );
    ( "byte-level read/write round trip through structs",
      fun () ->
        let lenv =
          Layout.declare_struct Layout.empty "node"
            [ ("next", Ty.Cptr (Ty.Cstruct "node")); ("data", Ty.Cword (Ty.Unsigned, Ty.W32)) ]
        in
        let c = Ty.Cstruct "node" in
        let addr, h = Heap.alloc lenv Heap.empty c in
        let v =
          Value.Vstruct
            ("node", [ ("next", Value.vptr (B.of_int 0x2000) c); ("data", vu32 77) ])
        in
        let h = Heap.write_obj lenv h c addr v in
        match Heap.heap_lift lenv h c addr with
        | Some v' -> Alcotest.(check bool) "round trip" true (Value.equal v v')
        | None -> Alcotest.fail "lift failed" );
  ]

let translation_tests =
  [
    ( "max translates to the Fig 2 shape",
      fun () ->
        let prog = C2simpl.parse max_c in
        let f = Option.get (Ir.find_func prog "max") in
        let text = Print.func_to_string f in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (Astring.String.is_infix ~affix:needle text))
          [ "TRY"; "CATCH SKIP END"; "THROW"; "´ret :=="; "´global_exn_var :=="; "GUARD DontReach" ]
    );
    ( "signed addition emits overflow guard",
      fun () ->
        let prog = C2simpl.parse "int add(int a, int b) { return a + b; }" in
        let f = Option.get (Ir.find_func prog "add") in
        let guards = ref 0 in
        Ir.iter_stmts
          (fun s -> match s with Ir.Guard (Ir.Signed_overflow, _) -> incr guards | _ -> ())
          f.body;
        Alcotest.(check int) "one overflow guard" 1 !guards );
    ( "unsigned addition emits no overflow guard",
      fun () ->
        let prog = C2simpl.parse "unsigned add(unsigned a, unsigned b) { return a + b; }" in
        let f = Option.get (Ir.find_func prog "add") in
        let guards = ref 0 in
        Ir.iter_stmts (fun s -> match s with Ir.Guard _ -> incr guards | _ -> ()) f.body;
        (* only the DontReach fall-off guard *)
        Alcotest.(check int) "one guard" 1 !guards );
    ( "dereference emits pointer-validity guard",
      fun () ->
        let prog = C2simpl.parse "unsigned get(unsigned *p) { return *p; }" in
        let f = Option.get (Ir.find_func prog "get") in
        let found = ref false in
        Ir.iter_stmts
          (fun s -> match s with Ir.Guard (Ir.Ptr_valid, _) -> found := true | _ -> ())
          f.body;
        Alcotest.(check bool) "guard" true !found );
    ( "heap types collected for heap abstraction",
      fun () ->
        let prog =
          C2simpl.parse
            "struct node { struct node *next; unsigned data; };\n\
             unsigned f(struct node *p, unsigned *q) { return p->data + *q; }"
        in
        let f = Option.get (Ir.find_func prog "f") in
        let tys = Ir.heap_types_of_stmt f.body in
        Alcotest.(check int) "two heap types" 2 (List.length tys) );
  ]

let exec_tests =
  [
    ( "max computes max",
      fun () ->
        check_ret "max 3 7" "7" (run max_c "max" [ v32 3; v32 7 ]);
        check_ret "max 7 3" "7" (run max_c "max" [ v32 7; v32 3 ]);
        check_ret "max -5 -9" "-5" (run max_c "max" [ v32 (-5); v32 (-9) ]) );
    ( "gcd computes gcd",
      fun () ->
        check_ret "gcd 54 24" "6" (run gcd_c "gcd" [ vu32 54; vu32 24 ]);
        check_ret "gcd 17 5" "1" (run gcd_c "gcd" [ vu32 17; vu32 5 ]) );
    ( "signed overflow faults",
      fun () ->
        check_fault "INT_MAX + 1" Ir.Signed_overflow
          (run "int f(int a) { return a + 1; }" "f" [ v32 0x7FFFFFFF ]) );
    ( "unsigned overflow wraps silently",
      fun () ->
        check_ret "UINT_MAX + 1" "0"
          (run "unsigned f(unsigned a) { return a + 1u; }" "f" [ vu32 0xFFFFFFFF ]) );
    ( "division by zero faults",
      fun () ->
        check_fault "1/0" Ir.Div_by_zero (run "int f(int a) { return 1 / a; }" "f" [ v32 0 ]) );
    ( "INT_MIN / -1 faults",
      fun () ->
        check_fault "overflow div" Ir.Signed_overflow
          (run "int f(int a, int b) { return a / b; }" "f" [ v32 (-0x80000000); v32 (-1) ])
    );
    ( "null dereference faults",
      fun () ->
        check_fault "null" Ir.Ptr_valid
          (run "unsigned f(unsigned *p) { return *p; }" "f"
             [ Value.null (Ty.Cword (Ty.Unsigned, Ty.W32)) ]) );
    ( "short-circuit && does not fault on guarded right operand",
      fun () ->
        check_ret "null && deref" "0"
          (run "int f(unsigned *p) { if (p != NULL && *p == 1u) return 1; return 0; }" "f"
             [ Value.null (Ty.Cword (Ty.Unsigned, Ty.W32)) ]) );
    ( "loops with break and continue",
      fun () ->
        check_ret "sum of odds stopping at 7" "9"
          (run
             "int f() { int s = 0; int i = 0; while (1) { i = i + 1; if (i >= 7) break; \
              if (i % 2 == 0) continue; s = s + i; } return s; }"
             "f" []) );
    ( "for loop",
      fun () ->
        check_ret "sum 0..9" "45"
          (run "int f() { int s = 0; for (int i = 0; i < 10; i = i + 1) s = s + i; return s; }"
             "f" []) );
    ( "recursion: factorial",
      fun () ->
        check_ret "5!" "120"
          (run "unsigned fact(unsigned n) { if (n == 0u) return 1u; unsigned r; r = fact(n - 1u); return n * r; }"
             "fact" [ vu32 5 ]) );
    ( "mutual calls and globals",
      fun () ->
        let src =
          "unsigned counter;\n\
           void bump(unsigned by) { counter = counter + by; }\n\
           unsigned twice(unsigned x) { bump(x); bump(x); return counter; }\n"
        in
        let state = State.set_global State.empty "counter" (vu32 0) in
        check_ret "twice 21" "42" (run ~state src "twice" [ vu32 21 ]) );
    ( "swap via the heap",
      fun () ->
        let lenv = Layout.empty in
        let c = Ty.Cword (Ty.Unsigned, Ty.W32) in
        let a, h = Heap.alloc lenv Heap.empty c in
        let b, h = Heap.alloc lenv h c in
        let h = Heap.write_obj lenv h c a (vu32 1) in
        let h = Heap.write_obj lenv h c b (vu32 2) in
        let state = State.with_heap State.empty h in
        let src =
          "void swap(unsigned *a, unsigned *b) { unsigned t = *a; *a = *b; *b = t; }"
        in
        match run ~state src "swap" [ Value.vptr a c; Value.vptr b c ] with
        | Sem.Returns (_, s') ->
          Alcotest.(check string) "a" "2"
            (Value.to_string (Heap.read_obj lenv s'.State.heap c a));
          Alcotest.(check string) "b" "1"
            (Value.to_string (Heap.read_obj lenv s'.State.heap c b))
        | _ -> Alcotest.fail "swap failed" );
    ( "struct field access through pointers",
      fun () ->
        let lenv =
          Layout.declare_struct Layout.empty "node"
            [ ("next", Ty.Cptr (Ty.Cstruct "node")); ("data", Ty.Cword (Ty.Unsigned, Ty.W32)) ]
        in
        let c = Ty.Cstruct "node" in
        let addr, h = Heap.alloc lenv Heap.empty c in
        let h =
          Heap.write_obj lenv h c addr
            (Value.Vstruct ("node", [ ("next", Value.null c); ("data", vu32 5) ]))
        in
        let state = State.with_heap State.empty h in
        let src =
          "struct node { struct node *next; unsigned data; };\n\
           unsigned bump(struct node *p) { p->data = p->data + 1u; return p->data; }"
        in
        check_ret "bump" "6" (run ~state src "bump" [ Value.vptr addr c ]) );
    ( "infinite loop runs out of fuel",
      fun () ->
        match run "void f() { while (1) { } }" "f" [] with
        | Sem.Diverges -> ()
        | _ -> Alcotest.fail "expected divergence" );
    ( "shift out of bounds faults",
      fun () ->
        check_fault "1 << 32" Ir.Shift_bounds
          (run "int f(int n) { return 1 << n; }" "f" [ v32 32 ]) );
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    (heap_tests @ translation_tests @ exec_tests)
