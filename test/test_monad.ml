(* Tests for the monadic IR and its executable semantics: monad laws on the
   interpreter, exception flow, loops, state threading, and the L1/L2
   calling conventions. *)

module B = Ac_bignum
module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module M = Ac_monad.M
module Interp = Ac_monad.Interp
module State = Ac_simpl.State
module Ir = Ac_simpl.Ir
module SMap = Map.Make (String)

let lenv = Layout.empty

let prog body : M.program =
  {
    M.lenv;
    globals = [ ("g", Ty.Tword (Ty.Unsigned, Ty.W32)) ];
    funcs =
      [
        {
          M.name = "f";
          params = [];
          ret_ty = Ty.Tint;
          body;
          convention = M.Lambda_bound;
          heap_model = M.Byte_level;
          locals = [];
        };
      ];
    heap_types = [];
  }

let state0 = State.set_global State.empty "g" (Value.vword Ty.Unsigned (Ac_word.of_int Ac_word.W32 7))

let run body = Interp.run_func (prog body) ~fuel:10_000 state0 "f" []

let check_returns msg expected body =
  match run body with
  | Interp.Returns (v, _) -> Alcotest.(check string) msg expected (Value.to_string v)
  | Interp.Fails m -> Alcotest.failf "%s: failed (%s)" msg m
  | Interp.Throws _ -> Alcotest.failf "%s: threw" msg
  | Interp.Gets_stuck m -> Alcotest.failf "%s: stuck (%s)" msg m
  | Interp.Diverges -> Alcotest.failf "%s: diverged" msg

let vx = E.Var ("x", Ty.Tint)

let tests =
  [
    ( "return and bind (left identity)",
      fun () ->
        check_returns "bind" "42"
          (M.Bind (M.Return (E.int_e 41), M.Pvar ("x", Ty.Tint),
                   M.Return (E.Binop (E.Add, vx, E.int_e 1)))) );
    ( "tuple patterns destructure",
      fun () ->
        check_returns "tuple" "3"
          (M.Bind
             ( M.Return (E.Tuple [ E.int_e 1; E.int_e 2 ]),
               M.Ptuple [ M.Pvar ("a", Ty.Tint); M.Pvar ("b", Ty.Tint) ],
               M.Return (E.Binop (E.Add, E.Var ("a", Ty.Tint), E.Var ("b", Ty.Tint))) )) );
    ( "gets reads the state, modify writes it",
      fun () ->
        check_returns "global" "8"
          (M.Bind
             ( M.Modify [ M.Global_set ("g", E.word_e Ty.Unsigned Ty.W32 8) ],
               M.Pwild,
               M.Gets (E.OfWord (Ty.Tint, E.Global ("g", Ty.Tword (Ty.Unsigned, Ty.W32)))) )) );
    ( "guard true continues, guard false is the failure flag",
      fun () ->
        check_returns "guard" "1"
          (M.Bind (M.Guard (Ir.Dont_reach, E.true_e), M.Pwild, M.Return (E.int_e 1)));
        match run (M.Bind (M.Guard (Ir.Dont_reach, E.false_e), M.Pwild, M.Return (E.int_e 1))) with
        | Interp.Fails _ -> ()
        | _ -> Alcotest.fail "expected failure" );
    ( "throw skips the rest of a bind chain",
      fun () ->
        match run (M.Bind (M.Throw (E.int_e 9), M.Pwild, M.Return (E.int_e 1))) with
        | Interp.Throws (v, _) -> Alcotest.(check string) "payload" "9" (Value.to_string v)
        | _ -> Alcotest.fail "expected throw" );
    ( "try catches and binds the payload",
      fun () ->
        check_returns "catch" "10"
          (M.Try
             ( M.Throw (E.int_e 9),
               M.Pvar ("x", Ty.Tint),
               M.Return (E.Binop (E.Add, vx, E.int_e 1)) )) );
    ( "try passes normal results through",
      fun () ->
        check_returns "no catch" "5"
          (M.Try (M.Return (E.int_e 5), M.Pvar ("x", Ty.Tint), M.Return (E.int_e 0))) );
    ( "whileLoop threads the iterator",
      fun () ->
        (* sum 1..5 with iterator (i, acc) *)
        let i = E.Var ("i", Ty.Tint) and acc = E.Var ("acc", Ty.Tint) in
        check_returns "sum" "15"
          (M.Bind
             ( M.While
                 ( M.Ptuple [ M.Pvar ("i", Ty.Tint); M.Pvar ("acc", Ty.Tint) ],
                   E.Binop (E.Le, i, E.int_e 5),
                   M.Return (E.Tuple [ E.Binop (E.Add, i, E.int_e 1); E.Binop (E.Add, acc, i) ]),
                   E.Tuple [ E.int_e 1; E.int_e 0 ] ),
               M.Ptuple [ M.Pwild; M.Pvar ("acc", Ty.Tint) ],
               M.Return acc )) );
    ( "whileLoop with an always-true condition runs out of fuel",
      fun () ->
        match
          run (M.While (M.Pwild, E.true_e, M.Return E.unit_e, E.unit_e))
        with
        | Interp.Diverges -> ()
        | _ -> Alcotest.fail "expected divergence" );
    ( "a throw inside a loop body aborts the loop",
      fun () ->
        match
          run
            (M.While
               ( M.Pvar ("i", Ty.Tint),
                 E.true_e,
                 M.Cond
                   ( E.Binop (E.Ge, E.Var ("i", Ty.Tint), E.int_e 3),
                     M.Throw (E.Var ("i", Ty.Tint)),
                     M.Return (E.Binop (E.Add, E.Var ("i", Ty.Tint), E.int_e 1)) ),
                 E.int_e 0 ))
        with
        | Interp.Throws (v, _) -> Alcotest.(check string) "exit value" "3" (Value.to_string v)
        | _ -> Alcotest.fail "expected throw" );
    ( "lambda bindings shadow state locals",
      fun () ->
        (* at L1 locals live in the state; a lambda-bound x must win *)
        let p =
          {
            (prog M.skip) with
            M.funcs =
              [
                {
                  M.name = "f";
                  params = [ ("x", Ty.Tint) ];
                  ret_ty = Ty.Tint;
                  body =
                    M.Bind
                      (M.Return (E.int_e 99), M.Pvar ("x", Ty.Tint), M.Return vx);
                  convention = M.Lambda_bound;
                  heap_model = M.Byte_level;
                  locals = [];
                };
              ];
          }
        in
        match Interp.run_func p ~fuel:100 state0 "f" [ Value.Vint B.zero ] with
        | Interp.Returns (v, _) -> Alcotest.(check string) "shadow" "99" (Value.to_string v)
        | _ -> Alcotest.fail "failed" );
    ( "locals-in-state convention returns the ret ghost",
      fun () ->
        let p =
          {
            (prog M.skip) with
            M.funcs =
              [
                {
                  M.name = "f";
                  params = [];
                  ret_ty = Ty.Tint;
                  body = M.Modify [ M.Local_set (Ir.ret_var, E.int_e 123) ];
                  convention = M.Locals_in_state;
                  heap_model = M.Byte_level;
                  locals = [ (Ir.ret_var, Ty.Tint) ];
                };
              ];
          }
        in
        match Interp.run_func p ~fuel:100 state0 "f" [] with
        | Interp.Returns (v, _) -> Alcotest.(check string) "ret" "123" (Value.to_string v)
        | _ -> Alcotest.fail "failed" );
    ( "term size counts nodes",
      fun () ->
        let m = M.Bind (M.Return (E.int_e 1), M.Pvar ("x", Ty.Tint), M.Return vx) in
        Alcotest.(check bool) "positive" true (M.size m > 4) );
    ( "substitution respects binder shadowing",
      fun () ->
        let m =
          M.Bind (M.Return vx, M.Pvar ("x", Ty.Tint), M.Return vx)
        in
        let m' = M.subst [ ("x", E.int_e 7) ] m in
        match m' with
        | M.Bind (M.Return e1, _, M.Return e2) ->
          Alcotest.(check bool) "outer substituted" true (E.equal e1 (E.int_e 7));
          Alcotest.(check bool) "inner shadowed" true (E.equal e2 vx)
        | _ -> Alcotest.fail "shape" );
    ( "free_vars sees through binders correctly",
      fun () ->
        let m =
          M.Bind (M.Return (E.Var ("a", Ty.Tint)), M.Pvar ("b", Ty.Tint),
                  M.Return (E.Binop (E.Add, E.Var ("b", Ty.Tint), E.Var ("c", Ty.Tint))))
        in
        Alcotest.(check (list string)) "a and c free" [ "a"; "c" ] (M.free_vars m) );
  ]

let suite = List.map (fun (n, f) -> Alcotest.test_case n `Quick f) tests
