(* Aggregated alcotest runner: each [Test_*] module exports a [suite]. *)

let () =
  Alcotest.run "autocorres"
    [
      ("bignum", Test_bignum.suite);
      ("word", Test_word.suite);
      ("cfront", Test_cfront.suite);
      ("simpl", Test_simpl.suite);
      ("pipeline", Test_pipeline.suite);
      ("prover", Test_prover.suite);
      ("hoare", Test_hoare.suite);
      ("cases", Test_cases.suite);
      ("kernel", Test_kernel.suite);
      ("monad", Test_monad.suite);
      ("corpus", Test_corpus.suite);
      ("props", Test_props.suite);
      ("analysis", Test_analysis.suite);
      ("robustness", Test_robustness.suite);
      ("perf_layer", Test_perf_layer.suite);
      ("store", Test_store.suite);
    ]
