(* Aggregated alcotest runner: each [Test_*] module exports a [suite]. *)

let () =
  (* Out-of-process POSIX-lock probe for the store-lock tests: record
     locks are per-process, so whether THIS test process holds one can
     only be observed from another process — and [Unix.fork] is off the
     table once worker domains exist.  Re-exec'd with $ACC_LOCK_PROBE
     set, the binary tries a non-blocking lock and exits 1 if it got it
     (nobody held the lock), 0 if it couldn't (the parent holds it). *)
  match Sys.getenv_opt "ACC_LOCK_PROBE" with
  | Some path ->
    let code =
      match
        let fd = Unix.openfile path [ Unix.O_CREAT; Unix.O_WRONLY ] 0o644 in
        Unix.lockf fd Unix.F_TLOCK 0
      with
      | () -> 1
      | exception _ -> 0
    in
    exit code
  | None ->
  Alcotest.run "autocorres"
    [
      ("bignum", Test_bignum.suite);
      ("word", Test_word.suite);
      ("cfront", Test_cfront.suite);
      ("simpl", Test_simpl.suite);
      ("pipeline", Test_pipeline.suite);
      ("prover", Test_prover.suite);
      ("hoare", Test_hoare.suite);
      ("cases", Test_cases.suite);
      ("kernel", Test_kernel.suite);
      ("monad", Test_monad.suite);
      ("corpus", Test_corpus.suite);
      ("props", Test_props.suite);
      ("analysis", Test_analysis.suite);
      ("robustness", Test_robustness.suite);
      ("perf_layer", Test_perf_layer.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("obs", Test_obs.suite);
    ]
