(* Tests for the C front end: lexer, parser, typechecker/elaborator. *)

module B = Ac_bignum
open Ac_cfront

let parse = Parser.parse_program
let check_tc src = Typecheck.parse_and_check src

let expect_type_error src =
  match check_tc src with
  | exception Typecheck.Type_error _ -> ()
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail ("expected rejection: " ^ src)

let max_c =
  "int max(int a, int b) {\n  if (a < b)\n    return b;\n  return a;\n}\n"

let swap_c =
  "void swap(unsigned *a, unsigned *b) {\n  unsigned t = *a;\n  *a = *b;\n  *b = t;\n}\n"

let reverse_c =
  "struct node { struct node *next; unsigned data; };\n\
   struct node *reverse(struct node *list) {\n\
  \  struct node *rev = NULL;\n\
  \  while (list) {\n\
  \    struct node *next = list->next;\n\
  \    list->next = rev; rev = list; list = next;\n\
  \  }\n\
  \  return rev;\n\
   }\n"

let lexer_tests =
  [
    ( "tokenizes max",
      fun () ->
        let toks = Lexer.tokenize max_c in
        Alcotest.(check bool) "nonempty" true (List.length toks > 10) );
    ( "integer literals",
      fun () ->
        let toks = Lexer.tokenize "0x10 42u 7ull 5LL" in
        let lits =
          List.filter_map
            (fun (t : Lexer.loc_token) ->
              match t.tok with Lexer.INT_LIT (v, u, ll) -> Some (B.to_string v, u, ll) | _ -> None)
            toks
        in
        Alcotest.(check (list (triple string bool bool)))
          "values"
          [ ("16", false, false); ("42", true, false); ("7", true, true); ("5", false, true) ]
          lits );
    ( "comments and preprocessor lines are skipped",
      fun () ->
        let toks = Lexer.tokenize "#include <x.h>\n// c1\n/* c2\nc3 */ int x;" in
        Alcotest.(check int) "3 tokens + eof" 4 (List.length toks) );
    ( "lex error reported with position",
      fun () ->
        match Lexer.tokenize "int @;" with
        | exception Lexer.Lex_error (_, pos) -> Alcotest.(check int) "line" 1 pos.line
        | _ -> Alcotest.fail "expected lex error" );
  ]

let parser_tests =
  [
    ( "parses the paper's examples",
      fun () ->
        List.iter
          (fun src -> ignore (parse src))
          [ max_c; swap_c; reverse_c ] );
    ( "declarations and full operator set",
      fun () ->
        ignore
          (parse
             "int f(int x) { int y = x * 2 + 1; y <<= 2; y |= x & 7; y ^= ~x; \
              return y % 3 == 0 ? y / 3 : -y; }") );
    ( "for loops, do-while, break/continue",
      fun () ->
        ignore
          (parse
             "int g(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) { if (i == 3) \
              continue; s += i; } do { s--; } while (s > 10); while (1) { break; } return s; }")
    );
    ( "struct declarations and member access",
      fun () ->
        ignore
          (parse
             "struct pair { int fst; int snd; };\n\
              int sum(struct pair *p) { return p->fst + (*p).snd; }") );
    ( "sizeof and casts",
      fun () ->
        ignore
          (parse
             "unsigned h(unsigned char c) { return sizeof(int) + sizeof c + (unsigned) c; }")
    );
    ( "parse error carries position",
      fun () ->
        match parse "int f() { return 1 + ; }" with
        | exception Parser.Parse_error (_, pos) -> Alcotest.(check int) "line 1" 1 pos.line
        | _ -> Alcotest.fail "expected parse error" );
    ( "array indexing via pointers",
      fun () -> ignore (parse "int get(int *a, unsigned i) { return a[i]; }") );
  ]

let typecheck_tests =
  [
    ( "accepts the paper's examples",
      fun () ->
        List.iter (fun src -> ignore (check_tc src)) [ max_c; swap_c; reverse_c ] );
    ( "usual arithmetic conversions: int + unsigned = unsigned",
      fun () ->
        let prog = check_tc "unsigned f(int a, unsigned b) { return a + b; }" in
        let f = List.hd prog.Tir.tp_funcs in
        match f.tf_body.Tir.ts with
        | Tir.Treturn (Some e) ->
          Alcotest.(check string) "type" "unsigned int" (Ast.ctype_to_string e.tt)
        | _ -> Alcotest.fail "unexpected shape" );
    ( "integer promotion: char + char = int",
      fun () ->
        let prog = check_tc "int f(char a, char b) { return a + b; }" in
        let f = List.hd prog.Tir.tp_funcs in
        match f.tf_body.Tir.ts with
        | Tir.Treturn (Some e) -> Alcotest.(check string) "type" "int" (Ast.ctype_to_string e.tt)
        | _ -> Alcotest.fail "unexpected shape" );
    ( "long long arithmetic is 64-bit",
      fun () ->
        let prog = check_tc "long long f(long long a, int b) { return a * b; }" in
        let f = List.hd prog.Tir.tp_funcs in
        match f.tf_body.Tir.ts with
        | Tir.Treturn (Some e) ->
          Alcotest.(check string) "type" "long long" (Ast.ctype_to_string e.tt)
        | _ -> Alcotest.fail "unexpected shape" );
    ( "locals shadowing is alpha-renamed",
      fun () ->
        let prog =
          check_tc "int f(int x) { int y = x; { int y = 2; x = y; } return y; }"
        in
        let f = List.hd prog.Tir.tp_funcs in
        Alcotest.(check int) "two locals" 2 (List.length f.tf_locals);
        let names = List.map fst f.tf_locals in
        Alcotest.(check bool) "distinct" true (List.nth names 0 <> List.nth names 1) );
    ( "rejects address of a local (paper's subset)",
      fun () -> expect_type_error "int f() { int x = 1; int *p = &x; return *p; }" );
    ( "rejects calls nested in expressions",
      fun () ->
        expect_type_error "int g(int x) { return x; } int f() { return g(1) + 2; }" );
    ( "rejects undeclared identifiers and functions",
      fun () ->
        expect_type_error "int f() { return y; }";
        expect_type_error "int f() { g(); return 0; }" );
    ( "rejects pointer/int mixups",
      fun () ->
        expect_type_error "int f(int *p) { return p + p; }";
        expect_type_error "void f(int *p) { int x; x = p; }" );
    ( "rejects wrong arity calls",
      fun () -> expect_type_error "int g(int x) { return x; } void f() { g(); }" );
    ( "void function cannot return a value",
      fun () -> expect_type_error "void f() { return 1; }" );
    ( "accepts recursion",
      fun () ->
        ignore (check_tc "unsigned fact(unsigned n) { if (n == 0) return 1u; unsigned r; r = fact(n - 1); return n * r; }")
    );
    ( "null pointer constant",
      fun () ->
        ignore (check_tc "struct n { int v; }; int f(struct n *p) { if (p == NULL) return 0; return p->v; }")
    );
    ( "field address",
      fun () ->
        ignore
          (check_tc
             "struct n { int v; }; int g(int *p) { return *p; } \
              void f(struct n *p) { int x; x = g(&p->v); }") );
    ( "source_loc counts non-blank non-comment lines",
      fun () ->
        Alcotest.(check int) "loc" 5 (Tir.source_loc max_c);
        Alcotest.(check int) "loc with comments" 2
          (Tir.source_loc "/* hi\n  there */\nint x;\n\n// c\nint y;\n") );
  ]

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f) (lexer_tests @ parser_tests @ typecheck_tests)
