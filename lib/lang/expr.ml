(* The pure expression language shared by every pipeline level.

   A single AST covers expressions over machine words (C-parser output),
   ideal integers and naturals (word-abstraction output), the byte-level heap
   (concrete reads) and the typed split heaps (heap-abstraction output).
   Each abstraction phase is a source-to-source transformation on this
   language that eliminates the low-level constructs in favour of the
   high-level ones, together with a proof that doing so was sound. *)

module B = Ac_bignum
module W = Ac_word
module SMap = Map.Make (String)

type unop =
  | Neg (* arithmetic negation *)
  | Bnot (* bitwise complement, words only *)
  | Not (* boolean negation *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Imp

type t =
  | Const of Value.t
  | Var of string * Ty.t (* lambda/locally bound variable *)
  | Global of string * Ty.t (* global variable (part of state) *)
  | Unop of unop * t
  | Binop of binop * t * t (* operand types select machine vs ideal semantics *)
  | Ite of t * t * t
  | Cast of Ty.t * t (* C casts and ideal->word reconcretisation *)
  | OfWord of Ty.t * t (* unat / sint: word -> nat / int *)
  | HeapRead of Ty.cty * t (* concrete: decode bytes at pointer *)
  | TypedRead of Ty.cty * t (* abstract: s[p] on the typed heap *)
  | IsValid of Ty.cty * t (* abstract: is_valid_τ s p *)
  | PtrAligned of Ty.cty * t (* concrete guard: alignment *)
  | PtrSpan of Ty.cty * t (* concrete guard: 0 ∉ {p ..+ size τ} *)
  | PtrAdd of Ty.cty * t * t (* pointer arithmetic, scaled by sizeof *)
  | FieldAddr of string * string * t (* &(p->f) for struct sname *)
  | StructGet of string * string * t (* (v :: struct sname).f *)
  | StructSet of string * string * t * t (* v with field f := x *)
  | Tuple of t list
  | Proj of int * t

exception Type_error of string

let type_error fmt = Format.kasprintf (fun m -> raise (Type_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Smart constructors for common shapes. *)

let unit_e = Const Vunit
let bool_e b = Const (Vbool b)
let true_e = bool_e true
let false_e = bool_e false
let int_e n = Const (Value.vint (B.of_int n))
let nat_e n = Const (Value.vnat (B.of_int n))
let word_e sign width n = Const (Value.vword sign (W.of_int width n))
let big_int_e n = Const (Value.vint n)
let big_nat_e n = Const (Value.vnat n)
let null_e cty = Const (Value.null cty)
let var v ty = Var (v, ty)

let not_e = function
  | Const (Value.Vbool b) -> bool_e (not b)
  | Unop (Not, e) -> e
  | e -> Unop (Not, e)

let and_e a b =
  match (a, b) with
  | Const (Value.Vbool true), x | x, Const (Value.Vbool true) -> x
  | Const (Value.Vbool false), _ | _, Const (Value.Vbool false) -> false_e
  | _ -> Binop (And, a, b)

let or_e a b =
  match (a, b) with
  | Const (Value.Vbool false), x | x, Const (Value.Vbool false) -> x
  | Const (Value.Vbool true), _ | _, Const (Value.Vbool true) -> true_e
  | _ -> Binop (Or, a, b)

let imp_e a b =
  match (a, b) with
  | Const (Value.Vbool true), x -> x
  | Const (Value.Vbool false), _ -> true_e
  | _, Const (Value.Vbool true) -> true_e
  | _ -> Binop (Imp, a, b)

let conj = function [] -> true_e | e :: es -> List.fold_left and_e e es

let eq_e a b = Binop (Eq, a, b)

(* ------------------------------------------------------------------ *)
(* Structural operations. *)

(* The physical fast path makes shared subterms compare in O(1) — the
   rewrite engine's congruence steps share every unchanged child, so deep
   re-comparison along the transitivity spine short-circuits. *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Const u, Const v -> Value.equal u v
  | Var (x, t), Var (y, u) -> String.equal x y && Ty.equal t u
  | Global (x, t), Global (y, u) -> String.equal x y && Ty.equal t u
  | Unop (o, x), Unop (p, y) -> o = p && equal x y
  | Binop (o, x1, x2), Binop (p, y1, y2) -> o = p && equal x1 y1 && equal x2 y2
  | Ite (c, x1, x2), Ite (d, y1, y2) -> equal c d && equal x1 y1 && equal x2 y2
  | Cast (t, x), Cast (u, y) | OfWord (t, x), OfWord (u, y) -> Ty.equal t u && equal x y
  | HeapRead (c, x), HeapRead (d, y)
  | TypedRead (c, x), TypedRead (d, y)
  | IsValid (c, x), IsValid (d, y)
  | PtrAligned (c, x), PtrAligned (d, y)
  | PtrSpan (c, x), PtrSpan (d, y) ->
    Ty.cty_equal c d && equal x y
  | PtrAdd (c, x1, x2), PtrAdd (d, y1, y2) -> Ty.cty_equal c d && equal x1 y1 && equal x2 y2
  | FieldAddr (s, f, x), FieldAddr (s', f', y) | StructGet (s, f, x), StructGet (s', f', y) ->
    String.equal s s' && String.equal f f' && equal x y
  | StructSet (s, f, x1, x2), StructSet (s', f', y1, y2) ->
    String.equal s s' && String.equal f f' && equal x1 y1 && equal x2 y2
  | Tuple xs, Tuple ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Proj (i, x), Proj (j, y) -> i = j && equal x y
  | ( ( Const _ | Var _ | Global _ | Unop _ | Binop _ | Ite _ | Cast _ | OfWord _ | HeapRead _
      | TypedRead _ | IsValid _ | PtrAligned _ | PtrSpan _ | PtrAdd _ | FieldAddr _ | StructGet _
      | StructSet _ | Tuple _ | Proj _ ),
      _ ) ->
    false

(* Bottom-up map over immediate subexpressions. *)
let map_children f e =
  match e with
  | Const _ | Var _ | Global _ -> e
  | Unop (o, x) -> Unop (o, f x)
  | Binop (o, x, y) -> Binop (o, f x, f y)
  | Ite (c, x, y) -> Ite (f c, f x, f y)
  | Cast (t, x) -> Cast (t, f x)
  | OfWord (t, x) -> OfWord (t, f x)
  | HeapRead (c, x) -> HeapRead (c, f x)
  | TypedRead (c, x) -> TypedRead (c, f x)
  | IsValid (c, x) -> IsValid (c, f x)
  | PtrAligned (c, x) -> PtrAligned (c, f x)
  | PtrSpan (c, x) -> PtrSpan (c, f x)
  | PtrAdd (c, x, y) -> PtrAdd (c, f x, f y)
  | FieldAddr (s, fl, x) -> FieldAddr (s, fl, f x)
  | StructGet (s, fl, x) -> StructGet (s, fl, f x)
  | StructSet (s, fl, x, y) -> StructSet (s, fl, f x, f y)
  | Tuple xs -> Tuple (List.map f xs)
  | Proj (i, x) -> Proj (i, f x)

(* Rebuild a node with the given children, in [children] order.  (Unlike
   [map_children], the association is positional and explicit — constructor
   argument evaluation order cannot scramble it.) *)
let replace_children e (cs : t list) =
  match (e, cs) with
  | (Const _ | Var _ | Global _), [] -> e
  | Unop (o, _), [ x ] -> Unop (o, x)
  | Binop (o, _, _), [ x; y ] -> Binop (o, x, y)
  | Ite _, [ c; x; y ] -> Ite (c, x, y)
  | Cast (t, _), [ x ] -> Cast (t, x)
  | OfWord (t, _), [ x ] -> OfWord (t, x)
  | HeapRead (c, _), [ x ] -> HeapRead (c, x)
  | TypedRead (c, _), [ x ] -> TypedRead (c, x)
  | IsValid (c, _), [ x ] -> IsValid (c, x)
  | PtrAligned (c, _), [ x ] -> PtrAligned (c, x)
  | PtrSpan (c, _), [ x ] -> PtrSpan (c, x)
  | PtrAdd (c, _, _), [ x; y ] -> PtrAdd (c, x, y)
  | FieldAddr (s, f, _), [ x ] -> FieldAddr (s, f, x)
  | StructGet (s, f, _), [ x ] -> StructGet (s, f, x)
  | StructSet (s, f, _, _), [ x; y ] -> StructSet (s, f, x, y)
  | Tuple old, xs when List.length old = List.length xs -> Tuple xs
  | Proj (i, _), [ x ] -> Proj (i, x)
  | _ -> invalid_arg "Expr.replace_children: arity mismatch"

let children e =
  match e with
  | Const _ | Var _ | Global _ -> []
  | Unop (_, x)
  | Cast (_, x)
  | OfWord (_, x)
  | HeapRead (_, x)
  | TypedRead (_, x)
  | IsValid (_, x)
  | PtrAligned (_, x)
  | PtrSpan (_, x)
  | FieldAddr (_, _, x)
  | StructGet (_, _, x)
  | Proj (_, x) ->
    [ x ]
  | Binop (_, x, y) | PtrAdd (_, x, y) | StructSet (_, _, x, y) -> [ x; y ]
  | Ite (c, x, y) -> [ c; x; y ]
  | Tuple xs -> xs

let rec fold f acc e = List.fold_left (fold f) (f acc e) (children e)

(* Term size: the number of AST nodes.  This is the paper's "term size"
   metric for Table 5 ("the number of nodes in the abstract syntax tree of a
   specification"). *)
let size e = fold (fun n _ -> n + 1) 0 e

let free_vars e =
  fold (fun acc e -> match e with Var (v, _) -> SMap.add v () acc | _ -> acc) SMap.empty e
  |> SMap.bindings |> List.map fst

let mem_var v e = List.mem v (free_vars e)

let rec subst (bindings : (string * t) list) e =
  match e with
  | Var (v, _) -> ( match List.assoc_opt v bindings with Some x -> x | None -> e)
  | _ -> map_children (subst bindings) e

let rename_var old_name new_name ty e = subst [ (old_name, Var (new_name, ty)) ] e

(* Does the expression read the state (heap, typed heaps, globals)?  Pure
   expressions can be hoisted out of [gets] into plain [return]s. *)
let rec reads_state e =
  match e with
  | Global _ | HeapRead _ | TypedRead _ | IsValid _ -> true
  | _ -> List.exists reads_state (children e)

(* Does the expression mention the concrete (byte-level) heap? *)
let rec reads_concrete_heap e =
  match e with
  | HeapRead _ -> true
  | _ -> List.exists reads_concrete_heap (children e)

(* ------------------------------------------------------------------ *)
(* Typing. *)

let numeric_binop = function
  | Add | Sub | Mul | Div | Rem | Shl | Shr | Band | Bor | Bxor -> true
  | _ -> false

let comparison_binop = function Lt | Le | Gt | Ge -> true | _ -> false
let boolean_binop = function And | Or | Imp -> true | _ -> false

let type_of (lenv : Layout.env) (venv : Ty.t SMap.t) (e : t) : Ty.t =
  let rec go e : Ty.t =
    match e with
    | Const v -> Value.ty_of v
    | Var (v, ty) -> (
      match SMap.find_opt v venv with
      | Some declared ->
        if Ty.equal declared ty then ty
        else type_error "variable %s: annotation %a conflicts with %a" v Ty.pp ty Ty.pp declared
      | None -> ty)
    | Global (_, ty) -> ty
    | Unop (Neg, x) ->
      let t = go x in
      if Ty.is_numeric t then (if Ty.equal t Tnat then Ty.Tint else t)
      else type_error "negation of %a" Ty.pp t
    | Unop (Bnot, x) -> (
      match go x with
      | Tword _ as t -> t
      | t -> type_error "bitwise complement of %a" Ty.pp t)
    | Unop (Not, x) -> (
      match go x with
      | Tbool -> Tbool
      | t -> type_error "boolean negation of %a" Ty.pp t)
    | Binop (op, x, y) -> (
      let tx = go x and ty_ = go y in
      if numeric_binop op then begin
        if not (Ty.equal tx ty_) then
          type_error "operands of %a and %a" Ty.pp tx Ty.pp ty_
        else begin
          match tx with
          | Tword _ | Tint | Tnat -> tx
          | _ -> type_error "arithmetic on %a" Ty.pp tx
        end
      end
      else if comparison_binop op then begin
        if Ty.equal tx ty_ && (Ty.is_numeric tx || match tx with Tptr _ -> true | _ -> false)
        then Ty.Tbool
        else type_error "comparison of %a and %a" Ty.pp tx Ty.pp ty_
      end
      else if boolean_binop op then begin
        match (tx, ty_) with
        | Tbool, Tbool -> Tbool
        | _ -> type_error "connective on %a, %a" Ty.pp tx Ty.pp ty_
      end
      else begin
        (* Eq / Ne *)
        if Ty.equal tx ty_ then Ty.Tbool
        else type_error "equality of %a and %a" Ty.pp tx Ty.pp ty_
      end)
    | Ite (c, x, y) ->
      if not (Ty.equal (go c) Tbool) then type_error "if condition not bool";
      let tx = go x and ty_ = go y in
      if Ty.equal tx ty_ then tx else type_error "if branches %a vs %a" Ty.pp tx Ty.pp ty_
    | Cast (target, x) -> (
      let src = go x in
      match (target, src) with
      | Tword _, (Tword _ | Tint | Tnat) -> target
      | (Tint | Tnat), (Tint | Tnat) -> target
      | Tptr _, Tword _ | Tword _, Tptr _ -> target
      | Tptr _, Tptr _ -> target
      | _ -> type_error "cast %a <- %a" Ty.pp target Ty.pp src)
    | OfWord (target, x) -> (
      match (target, go x) with
      | Tnat, Tword _ | Tint, Tword _ -> target
      | t, s -> type_error "of_word %a <- %a" Ty.pp t Ty.pp s)
    | HeapRead (c, p) | TypedRead (c, p) -> (
      match go p with
      | Tptr pc when Ty.cty_equal pc c -> Ty.of_cty c
      | Tptr pc -> type_error "read at %a via %a ptr" Ty.pp_cty c Ty.pp_cty pc
      | t -> type_error "read at non-pointer %a" Ty.pp t)
    | IsValid (c, p) | PtrAligned (c, p) | PtrSpan (c, p) -> (
      match go p with
      | Tptr pc when Ty.cty_equal pc c -> Ty.Tbool
      | t -> type_error "validity of %a (want %a ptr)" Ty.pp t Ty.pp_cty c)
    | PtrAdd (c, p, n) -> (
      match (go p, go n) with
      | Tptr pc, (Tword _ | Tint | Tnat) when Ty.cty_equal pc c -> Ty.Tptr c
      | tp, tn -> type_error "ptr add %a + %a" Ty.pp tp Ty.pp tn)
    | FieldAddr (sname, fname, p) -> (
      match go p with
      | Tptr (Cstruct n) when String.equal n sname ->
        Ty.Tptr (Layout.field_type lenv sname fname)
      | t -> type_error "field addr of %a" Ty.pp t)
    | StructGet (sname, fname, v) -> (
      match go v with
      | Tstruct n when String.equal n sname -> Ty.of_cty (Layout.field_type lenv sname fname)
      | t -> type_error "field get of %a" Ty.pp t)
    | StructSet (sname, fname, v, x) -> (
      match go v with
      | Tstruct n when String.equal n sname ->
        let ft = Ty.of_cty (Layout.field_type lenv sname fname) in
        let tx = go x in
        if Ty.equal ft tx then Ty.Tstruct sname
        else type_error "field set %a := %a" Ty.pp ft Ty.pp tx
      | t -> type_error "field set of %a" Ty.pp t)
    | Tuple xs -> Ty.Ttuple (List.map go xs)
    | Proj (i, x) -> (
      match go x with
      | Ttuple ts when i >= 0 && i < List.length ts -> List.nth ts i
      | t -> type_error "projection %d of %a" i Ty.pp t)
  in
  go e

(* ------------------------------------------------------------------ *)
(* Evaluation.  The [view] record abstracts over the state representation;
   the Simpl semantics supplies a byte-heap view, the monadic semantics at
   each level supplies the corresponding one. *)

type view = {
  read_global : string -> Value.t;
  read_heap : Ty.cty -> B.t -> Value.t; (* concrete decode at address *)
  typed_read : Ty.cty -> B.t -> Value.t; (* abstract s[p] *)
  is_valid : Ty.cty -> B.t -> bool; (* abstract is_valid_τ *)
  lenv : Layout.env;
}

exception Eval_stuck of string

let stuck fmt = Format.kasprintf (fun m -> raise (Eval_stuck m)) fmt

(* Alignment and span checks shared by semantics and heap lifting. *)
let aligned lenv c addr = B.is_zero (B.fmod addr (B.of_int (Layout.align_of lenv c)))

let span_ok lenv c addr =
  (* 0 ∉ {p ..+ size}: p ≠ 0 and p + size does not wrap past 2^ptr_bits. *)
  let size = B.of_int (Layout.size_of lenv c) in
  let limit = B.pow2 (W.bits (Layout.ptr_width lenv)) in
  (not (B.is_zero addr)) && B.le (B.add addr size) limit

let eval_binop op (a : Value.t) (b : Value.t) : Value.t =
  let module V = Value in
  let bool_result f = V.Vbool (f ()) in
  match (a, b) with
  | V.Vword (s, x), V.Vword (_, y) -> (
    let arith f = V.Vword (s, f s x y) in
    match op with
    | Add -> arith W.add
    | Sub -> arith W.sub
    | Mul -> arith W.mul
    | Div -> if W.is_zero y then stuck "division by zero" else arith W.div
    | Rem -> if W.is_zero y then stuck "remainder by zero" else arith W.rem
    | Shl -> V.Vword (s, W.shift_left x (W.unat y))
    | Shr -> V.Vword (s, W.shift_right s x (W.unat y))
    | Band -> V.Vword (s, W.logand x y)
    | Bor -> V.Vword (s, W.logor x y)
    | Bxor -> V.Vword (s, W.logxor x y)
    | Eq -> bool_result (fun () -> W.equal x y)
    | Ne -> bool_result (fun () -> not (W.equal x y))
    | Lt -> bool_result (fun () -> W.compare s x y < 0)
    | Le -> bool_result (fun () -> W.compare s x y <= 0)
    | Gt -> bool_result (fun () -> W.compare s x y > 0)
    | Ge -> bool_result (fun () -> W.compare s x y >= 0)
    | And | Or | Imp -> stuck "boolean op on words")
  | (V.Vint x | V.Vnat x), (V.Vint y | V.Vnat y) -> (
    let is_nat = match (a, b) with V.Vnat _, V.Vnat _ -> true | _ -> false in
    let wrap n = if is_nat then V.Vnat n else V.Vint n in
    match op with
    | Add -> wrap (B.add x y)
    | Sub ->
      (* ℕ subtraction is truncated (Isabelle's monus); ℤ is exact. *)
      if is_nat then V.Vnat (B.max B.zero (B.sub x y)) else V.Vint (B.sub x y)
    | Mul -> wrap (B.mul x y)
    | Div -> if B.is_zero y then stuck "division by zero" else wrap (B.div x y)
    | Rem -> if B.is_zero y then stuck "remainder by zero" else wrap (B.rem x y)
    | Shl -> wrap (B.shift_left x (B.to_int_exn y))
    | Shr -> wrap (B.shift_right x (B.to_int_exn y))
    | Band -> wrap (B.logand x y)
    | Bor -> wrap (B.logor x y)
    | Bxor -> wrap (B.logxor x y)
    | Eq -> bool_result (fun () -> B.equal x y)
    | Ne -> bool_result (fun () -> not (B.equal x y))
    | Lt -> bool_result (fun () -> B.lt x y)
    | Le -> bool_result (fun () -> B.le x y)
    | Gt -> bool_result (fun () -> B.gt x y)
    | Ge -> bool_result (fun () -> B.ge x y)
    | And | Or | Imp -> stuck "boolean op on ideals")
  | V.Vptr (x, c), V.Vptr (y, _) -> (
    match op with
    | Eq -> bool_result (fun () -> B.equal x y)
    | Ne -> bool_result (fun () -> not (B.equal x y))
    | Lt -> bool_result (fun () -> B.lt x y)
    | Le -> bool_result (fun () -> B.le x y)
    | Gt -> bool_result (fun () -> B.gt x y)
    | Ge -> bool_result (fun () -> B.ge x y)
    | Sub -> V.Vint (B.sub x y)
    | _ -> stuck "pointer op %s" (Ty.cty_to_string c))
  | V.Vbool x, V.Vbool y -> (
    match op with
    | And -> V.Vbool (x && y)
    | Or -> V.Vbool (x || y)
    | Imp -> V.Vbool ((not x) || y)
    | Eq -> V.Vbool (x = y)
    | Ne -> V.Vbool (x <> y)
    | _ -> stuck "arith on bools")
  | _ -> stuck "binop on %s and %s" (V.to_string a) (V.to_string b)

let rec eval (view : view) (env : Value.t SMap.t) (e : t) : Value.t =
  let module V = Value in
  match e with
  | Const v -> v
  | Var (v, _) -> (
    match SMap.find_opt v env with
    | Some x -> x
    | None -> stuck "unbound variable %s" v)
  | Global (g, _) -> view.read_global g
  | Unop (op, x) -> (
    let v = eval view env x in
    match (op, v) with
    | Neg, V.Vword (s, w) -> V.Vword (s, W.neg s w)
    | Neg, V.Vint n -> V.Vint (B.neg n)
    | Neg, V.Vnat n -> V.Vint (B.neg n)
    | Bnot, V.Vword (s, w) -> V.Vword (s, W.lognot w)
    | Not, V.Vbool b -> V.Vbool (not b)
    | _ -> stuck "unop on %s" (V.to_string v))
  | Binop (And, x, y) ->
    (* Short-circuit, so guards can protect later conjuncts. *)
    if V.as_bool (eval view env x) then eval view env y else V.Vbool false
  | Binop (Or, x, y) ->
    if V.as_bool (eval view env x) then V.Vbool true else eval view env y
  | Binop (Imp, x, y) ->
    if V.as_bool (eval view env x) then eval view env y else V.Vbool true
  | Binop (op, x, y) -> eval_binop op (eval view env x) (eval view env y)
  | Ite (c, x, y) -> if V.as_bool (eval view env c) then eval view env x else eval view env y
  | Cast (target, x) -> (
    let v = eval view env x in
    match (target, v) with
    | Ty.Tword (s, w), (V.Vword _ | V.Vint _ | V.Vnat _) ->
      V.Vword (s, W.of_bignum w (V.numeric v))
    | Ty.Tword (s, w), V.Vptr (a, _) -> V.Vword (s, W.of_bignum w a)
    | Ty.Tptr c, (V.Vword _ | V.Vptr _) ->
      V.Vptr (B.mod_pow2 (V.numeric v) (W.bits (Layout.ptr_width view.lenv)), c)
    | Ty.Tint, (V.Vint n | V.Vnat n) -> V.Vint n
    | Ty.Tnat, (V.Vint n | V.Vnat n) ->
      if B.sign n < 0 then stuck "nat cast of negative" else V.Vnat n
    | _ -> stuck "cast %s <- %s" (Ty.to_string target) (V.to_string v))
  | OfWord (target, x) -> (
    let w = V.as_word (eval view env x) in
    match target with
    | Ty.Tnat -> V.Vnat (W.unat w)
    | Ty.Tint -> V.Vint (W.sint w)
    | _ -> stuck "of_word to %s" (Ty.to_string target))
  | HeapRead (c, p) ->
    let a, _ = V.as_ptr (eval view env p) in
    view.read_heap c a
  | TypedRead (c, p) ->
    let a, _ = V.as_ptr (eval view env p) in
    view.typed_read c a
  | IsValid (c, p) ->
    let a, _ = V.as_ptr (eval view env p) in
    V.Vbool (view.is_valid c a)
  | PtrAligned (c, p) ->
    let a, _ = V.as_ptr (eval view env p) in
    V.Vbool (aligned view.lenv c a)
  | PtrSpan (c, p) ->
    let a, _ = V.as_ptr (eval view env p) in
    V.Vbool (span_ok view.lenv c a)
  | PtrAdd (c, p, n) ->
    let a, _ = V.as_ptr (eval view env p) in
    let count = V.numeric (eval view env n) in
    let size = B.of_int (Layout.size_of view.lenv c) in
    let bits = W.bits (Layout.ptr_width view.lenv) in
    (* Count is interpreted signedly when the index is a signed word. *)
    let count =
      match eval view env n with
      | V.Vword (Signed, w) -> W.sint w
      | _ -> count
    in
    V.Vptr (B.mod_pow2 (B.add a (B.mul count size)) bits, c)
  | FieldAddr (sname, fname, p) ->
    let a, _ = V.as_ptr (eval view env p) in
    let off = B.of_int (Layout.field_offset view.lenv sname fname) in
    let bits = W.bits (Layout.ptr_width view.lenv) in
    V.Vptr (B.mod_pow2 (B.add a off) bits, Layout.field_type view.lenv sname fname)
  | StructGet (_, fname, v) -> V.struct_field (eval view env v) fname
  | StructSet (_, fname, v, x) -> V.struct_update (eval view env v) fname (eval view env x)
  | Tuple xs -> V.Vtuple (List.map (eval view env) xs)
  | Proj (i, x) -> (
    match eval view env x with
    | V.Vtuple vs when i < List.length vs -> List.nth vs i
    | v -> stuck "projection %d of %s" i (V.to_string v))

(* Evaluate an expression that does not touch the state. *)
let pure_view lenv : view =
  {
    read_global = (fun g -> stuck "pure evaluation read global %s" g);
    read_heap = (fun _ _ -> stuck "pure evaluation read heap");
    typed_read = (fun _ _ -> stuck "pure evaluation read typed heap");
    is_valid = (fun _ _ -> stuck "pure evaluation read validity");
    lenv;
  }

let eval_pure lenv env e = eval (pure_view lenv) env e
