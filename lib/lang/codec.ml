(* Byte-level encoding of storable values: the bridge between the byte
   heap (word32 => word8, paper Sec 4.1) and typed values.  Little-endian,
   matching the architecture fixed in [Layout]. *)

module B = Ac_bignum
module W = Ac_word

exception Not_storable of string

(* [encode env v] is the little-endian byte image of [v]; padding bytes in
   structs are zero. *)
let rec encode env (v : Value.t) : int list =
  match v with
  | Vword (_, w) -> W.to_bytes w
  | Vptr (a, _) -> W.to_bytes (W.of_bignum (Layout.ptr_width env) a)
  | Vstruct (n, fs) ->
    let def = Layout.find_struct env n in
    let img = Array.make def.ssize 0 in
    List.iter
      (fun (f : Layout.field) ->
        let fv =
          match List.assoc_opt f.fname fs with
          | Some fv -> fv
          | None -> raise (Not_storable ("missing field " ^ f.fname))
        in
        List.iteri (fun i byte -> img.(f.foffset + i) <- byte) (encode env fv))
      def.fields;
    Array.to_list img
  | Vunit | Vbool _ | Vint _ | Vnat _ | Vtuple _ ->
    raise (Not_storable (Value.to_string v))

(* [decode env c read_byte addr] reconstructs a value of C type [c] from the
   bytes at [addr].  Total: any byte pattern decodes (the heap model has no
   trap representations). *)
let rec decode env (c : Ty.cty) (read_byte : B.t -> int) (addr : B.t) : Value.t =
  let byte i = read_byte (B.add addr (B.of_int i)) in
  let bytes n = List.init n byte in
  match c with
  | Cword (s, w) -> Vword (s, W.of_bytes w (bytes (W.bits w / 8)))
  | Cptr pointee ->
    let w = W.of_bytes (Layout.ptr_width env) (bytes (Layout.ptr_bytes env)) in
    Vptr (W.unat w, pointee)
  | Cstruct n ->
    let def = Layout.find_struct env n in
    Vstruct
      ( n,
        List.map
          (fun (f : Layout.field) ->
            (f.fname, decode env f.fty read_byte (B.add addr (B.of_int f.foffset))))
          def.fields )
