(* Pretty printer for expressions, in an Isabelle/HOL-flavoured concrete
   syntax close to the paper's listings.  The rendered text also drives the
   "lines of specification" metric of Table 5, so the output is line-broken
   the way Isabelle's pretty printer would break it. *)

open Format
module W = Ac_word

let word_suffix sign width =
  match (sign : W.sign) with
  | Unsigned -> Printf.sprintf "w%d" (W.bits width)
  | Signed -> Printf.sprintf "s%d" (W.bits width)

(* Operator spelling depends on operand level: machine-word operators carry
   the paper's subscripts (+w, div_w, <s ...), ideal operators are bare. *)
let binop_name (op : Expr.binop) (annot : string) =
  let base =
    match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "div"
    | Rem -> "mod"
    | Shl -> "<<"
    | Shr -> ">>"
    | Band -> "&&w"
    | Bor -> "||w"
    | Bxor -> "^w"
    | Eq -> "="
    | Ne -> "≠"
    | Lt -> "<"
    | Le -> "≤"
    | Gt -> ">"
    | Ge -> "≥"
    | And -> "∧"
    | Or -> "∨"
    | Imp -> "⟶"
  in
  match op with
  | Add | Sub | Mul | Div | Rem | Lt | Le | Gt | Ge when annot <> "" -> base ^ annot
  | _ -> base

let prec (op : Expr.binop) =
  match op with
  | Mul | Div | Rem -> 70
  | Add | Sub -> 65
  | Shl | Shr -> 60
  | Band | Bor | Bxor -> 55
  | Eq | Ne | Lt | Le | Gt | Ge -> 50
  | And -> 35
  | Or -> 30
  | Imp -> 25

(* Annotation for a machine-level operator, derived from an operand when it
   is a word-typed leaf; empty for ideal operands. *)
let rec operand_annot (e : Expr.t) =
  match e with
  | Const (Value.Vword (s, w)) -> word_suffix s (W.width_of w)
  | Const _ -> ""
  | Var (_, Tword (s, w)) | Global (_, Tword (s, w)) | Cast (Tword (s, w), _) -> word_suffix s w
  | OfWord _ -> ""
  | Unop (_, x) -> operand_annot x
  | Binop (_, x, y) ->
    let a = operand_annot x in
    if a <> "" then a else operand_annot y
  | HeapRead (Cword (s, w), _) | TypedRead (Cword (s, w), _) -> word_suffix s w
  | _ -> ""

let rec pp_expr ?(ctx = 0) fmt (e : Expr.t) =
  let paren p body =
    if p < ctx then fprintf fmt "(%t)" body else body fmt
  in
  match e with
  | Expr.Const v -> Value.pp fmt v
  | Var (x, _) -> pp_print_string fmt x
  | Global (g, _) -> fprintf fmt "´%s" g
  | Unop (Neg, x) -> paren 75 (fun fmt -> fprintf fmt "- %a" (pp_expr ~ctx:76) x)
  | Unop (Bnot, x) -> paren 75 (fun fmt -> fprintf fmt "~~ %a" (pp_expr ~ctx:76) x)
  | Unop (Not, x) -> paren 40 (fun fmt -> fprintf fmt "¬ %a" (pp_expr ~ctx:41) x)
  | Binop (op, x, y) ->
    let p = prec op in
    let annot = if Expr.numeric_binop op || Expr.comparison_binop op then operand_annot x else "" in
    paren p (fun fmt ->
        fprintf fmt "@[<hov 2>%a %s@ %a@]" (pp_expr ~ctx:(p + 1)) x (binop_name op annot)
          (pp_expr ~ctx:(p + 1)) y)
  | Ite (c, x, y) ->
    paren 10 (fun fmt ->
        fprintf fmt "@[<hv>if %a@ then %a@ else %a@]" (pp_expr ~ctx:0) c (pp_expr ~ctx:0) x
          (pp_expr ~ctx:0) y)
  | Cast (Tword (s, w), x) ->
    paren 90 (fun fmt ->
        let name =
          match Expr.(x) with
          | _ -> (match s with W.Unsigned -> "of_nat" | W.Signed -> "of_int")
        in
        fprintf fmt "%s[%s] %a" name (word_suffix s w) (pp_expr ~ctx:91) x)
  | Cast (t, x) -> paren 90 (fun fmt -> fprintf fmt "(%a) %a" Ty.pp t (pp_expr ~ctx:91) x)
  | OfWord (Tnat, x) -> paren 90 (fun fmt -> fprintf fmt "unat %a" (pp_expr ~ctx:91) x)
  | OfWord (Tint, x) -> paren 90 (fun fmt -> fprintf fmt "sint %a" (pp_expr ~ctx:91) x)
  | OfWord (t, x) -> paren 90 (fun fmt -> fprintf fmt "of_word[%a] %a" Ty.pp t (pp_expr ~ctx:91) x)
  | HeapRead (c, p) ->
    paren 90 (fun fmt -> fprintf fmt "read[%a] s %a" Ty.pp_cty c (pp_expr ~ctx:91) p)
  | TypedRead (_, p) -> fprintf fmt "s[%a]" (pp_expr ~ctx:0) p
  | IsValid (c, p) ->
    paren 90 (fun fmt ->
        fprintf fmt "is_valid_%s s %a" (Ty.cty_mangle c) (pp_expr ~ctx:91) p)
  | PtrAligned (_, p) -> paren 90 (fun fmt -> fprintf fmt "ptr_aligned %a" (pp_expr ~ctx:91) p)
  | PtrSpan (_, p) ->
    paren 50 (fun fmt -> fprintf fmt "0 ∉ {%a ..+ obj_size}" (pp_expr ~ctx:0) p)
  | PtrAdd (_, p, n) ->
    paren 65 (fun fmt -> fprintf fmt "%a +p %a" (pp_expr ~ctx:66) p (pp_expr ~ctx:66) n)
  | FieldAddr (_, f, p) -> paren 90 (fun fmt -> fprintf fmt "&(%a→%s)" (pp_expr ~ctx:91) p f)
  | StructGet (_, f, v) -> paren 95 (fun fmt -> fprintf fmt "%a.%s" (pp_expr ~ctx:95) v f)
  | StructSet (_, f, v, x) ->
    paren 90 (fun fmt ->
        fprintf fmt "%a(|%s := %a|)" (pp_expr ~ctx:95) v f (pp_expr ~ctx:0) x)
  | Tuple xs ->
    fprintf fmt "(%a)" (pp_print_list ~pp_sep:(fun f () -> fprintf f ",@ ") (pp_expr ~ctx:0)) xs
  | Proj (i, x) -> paren 95 (fun fmt -> fprintf fmt "%a.%d" (pp_expr ~ctx:95) x (i + 1))

let expr_to_string e = Format.asprintf "@[<hov 2>%a@]" (pp_expr ~ctx:0) e
