(* Types of the specification language.

   The language spans both ends of the paper's pipeline: machine types
   ([Tword]) as produced by the C parser, and ideal types ([Tint], [Tnat]) as
   produced by word abstraction.  C object types ([cty]) classify what can
   live in memory and index the typed heaps of the heap-abstraction phase. *)

module W = Ac_word

type sign = W.sign = Signed | Unsigned
type width = W.width = W8 | W16 | W32 | W64

(* C object types: things with a size that can be stored in the heap. *)
type cty =
  | Cword of sign * width
  | Cptr of cty
  | Cstruct of string

(* Specification types. *)
type t =
  | Tunit
  | Tbool
  | Tword of sign * width (* machine integer *)
  | Tint (* ideal integer, ℤ *)
  | Tnat (* ideal natural, ℕ *)
  | Tptr of cty
  | Tstruct of string
  | Ttuple of t list

let rec cty_equal a b =
  a == b
  ||
  match (a, b) with
  | Cword (s1, w1), Cword (s2, w2) -> s1 = s2 && w1 = w2
  | Cptr a, Cptr b -> cty_equal a b
  | Cstruct n, Cstruct m -> String.equal n m
  | (Cword _ | Cptr _ | Cstruct _), _ -> false

let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Tunit, Tunit | Tbool, Tbool | Tint, Tint | Tnat, Tnat -> true
  | Tword (s1, w1), Tword (s2, w2) -> s1 = s2 && w1 = w2
  | Tptr a, Tptr b -> cty_equal a b
  | Tstruct n, Tstruct m -> String.equal n m
  | Ttuple xs, Ttuple ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Tunit | Tbool | Tword _ | Tint | Tnat | Tptr _ | Tstruct _ | Ttuple _), _ -> false

let rec compare_cty a b = Stdlib.compare (cty_key a) (cty_key b)

and cty_key c =
  match c with
  | Cword (s, w) -> Printf.sprintf "w:%s%d" (match s with Signed -> "s" | Unsigned -> "u") (W.bits w)
  | Cptr c -> "p:" ^ cty_key c
  | Cstruct n -> "t:" ^ n

(* The type a heap object of C type [c] has in specifications. *)
let of_cty c =
  match c with
  | Cword (s, w) -> Tword (s, w)
  | Cptr c' -> Tptr c'
  | Cstruct n -> Tstruct n

(* The C object type corresponding to a storable specification type. *)
let to_cty t =
  match t with
  | Tword (s, w) -> Some (Cword (s, w))
  | Tptr c -> Some (Cptr c)
  | Tstruct n -> Some (Cstruct n)
  | Tunit | Tbool | Tint | Tnat | Ttuple _ -> None

let is_word = function Tword _ -> true | _ -> false
let is_ideal = function Tint | Tnat -> true | _ -> false
let is_numeric = function Tword _ | Tint | Tnat -> true | _ -> false

(* The ideal type that word abstraction assigns to a machine type:
   unsigned words become naturals, signed words become integers (Sec 3.2). *)
let ideal_of_word_sign = function Unsigned -> Tnat | Signed -> Tint

let rec pp_cty fmt c =
  match c with
  | Cword (Unsigned, W8) -> Format.pp_print_string fmt "u8"
  | Cword (Signed, W8) -> Format.pp_print_string fmt "s8"
  | Cword (Unsigned, W16) -> Format.pp_print_string fmt "u16"
  | Cword (Signed, W16) -> Format.pp_print_string fmt "s16"
  | Cword (Unsigned, W32) -> Format.pp_print_string fmt "u32"
  | Cword (Signed, W32) -> Format.pp_print_string fmt "s32"
  | Cword (Unsigned, W64) -> Format.pp_print_string fmt "u64"
  | Cword (Signed, W64) -> Format.pp_print_string fmt "s64"
  | Cptr c -> Format.fprintf fmt "%a ptr" pp_cty c
  | Cstruct n -> Format.fprintf fmt "struct %s" n

let rec pp fmt t =
  match t with
  | Tunit -> Format.pp_print_string fmt "unit"
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tword (Unsigned, w) -> Format.fprintf fmt "word%d" (W.bits w)
  | Tword (Signed, w) -> Format.fprintf fmt "sword%d" (W.bits w)
  | Tint -> Format.pp_print_string fmt "int"
  | Tnat -> Format.pp_print_string fmt "nat"
  | Tptr c -> Format.fprintf fmt "%a ptr" pp_cty c
  | Tstruct n -> Format.fprintf fmt "%s_C" n
  | Ttuple ts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " × ") pp)
      ts

let to_string t = Format.asprintf "%a" pp t
let cty_to_string c = Format.asprintf "%a" pp_cty c

(* A short identifier-friendly name, used to name the per-type heaps of the
   heap abstraction phase (heap_w32, is_valid_node_C, ...). *)
let rec cty_mangle c =
  match c with
  | Cword (Unsigned, w) -> Printf.sprintf "w%d" (W.bits w)
  | Cword (Signed, w) -> Printf.sprintf "sw%d" (W.bits w)
  | Cptr c -> cty_mangle c ^ "_ptr"
  | Cstruct n -> n ^ "_C"
