(* Memory layout: sizes, alignments and struct field offsets.

   The paper's model fixes a 32-bit two's-complement architecture; we keep
   the pointer width in the environment so the model's assumptions are
   explicit (cf. Sec 6: "our model makes explicit compiler and architecture
   assumptions"). *)

module W = Ac_word
module SMap = Map.Make (String)

type field = {
  fname : string;
  fty : Ty.cty;
  foffset : int; (* bytes from the start of the struct *)
}

type struct_def = {
  sname : string;
  fields : field list; (* in declaration order *)
  ssize : int; (* bytes, padded to alignment *)
  salign : int;
}

type env = {
  ptr_width : W.width;
  structs : struct_def SMap.t;
}

exception Unknown_struct of string
exception Unknown_field of string * string

let empty = { ptr_width = W.W32; structs = SMap.empty }

let ptr_width env = env.ptr_width
let ptr_bytes env = W.bits env.ptr_width / 8

let find_struct env name =
  match SMap.find_opt name env.structs with
  | Some d -> d
  | None -> raise (Unknown_struct name)

let rec size_of env (c : Ty.cty) =
  match c with
  | Cword (_, w) -> W.bits w / 8
  | Cptr _ -> ptr_bytes env
  | Cstruct n -> (find_struct env n).ssize

let rec align_of env (c : Ty.cty) =
  match c with
  | Cword (_, w) -> W.bits w / 8
  | Cptr _ -> ptr_bytes env
  | Cstruct n -> (find_struct env n).salign

let round_up n a = (n + a - 1) / a * a

(* Standard C layout: each field at the next offset aligned for its type;
   struct alignment is the max field alignment; size padded to alignment. *)
let declare_struct env name field_tys =
  if field_tys = [] then invalid_arg "Layout.declare_struct: empty struct";
  let fields, size, align =
    List.fold_left
      (fun (fields, off, align) (fname, fty) ->
        let a = align_of env fty in
        let off = round_up off a in
        ({ fname; fty; foffset = off } :: fields, off + size_of env fty, max align a))
      ([], 0, 1) field_tys
  in
  let fields = List.rev fields in
  let def = { sname = name; fields; ssize = round_up size align; salign = align } in
  { env with structs = SMap.add name def env.structs }

let field_def env sname fname =
  let d = find_struct env sname in
  match List.find_opt (fun f -> String.equal f.fname fname) d.fields with
  | Some f -> f
  | None -> raise (Unknown_field (sname, fname))

let field_offset env sname fname = (field_def env sname fname).foffset
let field_type env sname fname = (field_def env sname fname).fty
let fields_of env sname = (find_struct env sname).fields
let struct_names env = SMap.bindings env.structs |> List.map fst
let has_struct env name = SMap.mem name env.structs

(* All object types reachable from [c] by following struct fields: a struct
   heap entails heaps for its field types when the program reads fields
   directly. *)
let rec component_types env (c : Ty.cty) =
  match c with
  | Cword _ | Cptr _ -> [ c ]
  | Cstruct n ->
    c :: List.concat_map (fun f -> component_types env f.fty) (fields_of env n)
