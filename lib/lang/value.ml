(* Runtime values of the specification language. *)

module B = Ac_bignum
module W = Ac_word

type t =
  | Vunit
  | Vbool of bool
  | Vword of W.sign * W.t
  | Vint of B.t
  | Vnat of B.t (* invariant: non-negative *)
  | Vptr of B.t * Ty.cty (* address (unsigned, within ptr width) *)
  | Vstruct of string * (string * t) list (* fields in declaration order *)
  | Vtuple of t list

exception Type_mismatch of string

let vnat n = if B.sign n < 0 then raise (Type_mismatch "vnat: negative") else Vnat n
let vint n = Vint n
let vword sign w = Vword (sign, w)
let vptr addr cty = Vptr (addr, cty)
let null cty = Vptr (B.zero, cty)

let rec ty_of (v : t) : Ty.t =
  match v with
  | Vunit -> Tunit
  | Vbool _ -> Tbool
  | Vword (s, w) -> Tword (s, W.width_of w)
  | Vint _ -> Tint
  | Vnat _ -> Tnat
  | Vptr (_, c) -> Tptr c
  | Vstruct (n, _) -> Tstruct n
  | Vtuple vs -> Ttuple (List.map ty_of vs)

let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Vunit, Vunit -> true
  | Vbool x, Vbool y -> Bool.equal x y
  | Vword (_, x), Vword (_, y) -> W.equal x y
  | Vint x, Vint y | Vnat x, Vnat y -> B.equal x y
  | Vptr (x, c), Vptr (y, d) -> B.equal x y && Ty.cty_equal c d
  | Vstruct (n, fs), Vstruct (m, gs) ->
    String.equal n m
    && List.length fs = List.length gs
    && List.for_all2 (fun (f, v) (g, w) -> String.equal f g && equal v w) fs gs
  | Vtuple xs, Vtuple ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Vunit | Vbool _ | Vword _ | Vint _ | Vnat _ | Vptr _ | Vstruct _ | Vtuple _), _ -> false

let as_bool = function Vbool b -> b | _ -> raise (Type_mismatch "expected bool")
let as_word = function Vword (_, w) -> w | _ -> raise (Type_mismatch "expected word")

let as_ptr = function
  | Vptr (a, c) -> (a, c)
  | _ -> raise (Type_mismatch "expected pointer")

let as_int = function Vint n -> n | _ -> raise (Type_mismatch "expected int")
let as_nat = function Vnat n -> n | _ -> raise (Type_mismatch "expected nat")

(* The underlying ideal number of any numeric value. *)
let numeric = function
  | Vword (s, w) -> W.value s w
  | Vint n | Vnat n -> n
  | Vptr (a, _) -> a
  | _ -> raise (Type_mismatch "expected numeric")

let as_struct = function
  | Vstruct (n, fs) -> (n, fs)
  | _ -> raise (Type_mismatch "expected struct")

let as_tuple = function Vtuple vs -> vs | v -> [ v ]

let struct_field v fname =
  let _, fs = as_struct v in
  match List.assoc_opt fname fs with
  | Some x -> x
  | None -> raise (Type_mismatch ("no field " ^ fname))

let struct_update v fname x =
  let n, fs = as_struct v in
  if not (List.mem_assoc fname fs) then raise (Type_mismatch ("no field " ^ fname));
  Vstruct (n, List.map (fun (f, w) -> if String.equal f fname then (f, x) else (f, w)) fs)

(* A deterministic default value of each storable type: what an untagged or
   freshly-retyped heap cell decodes to before being written. *)
let rec default env (c : Ty.cty) =
  match c with
  | Cword (s, w) -> Vword (s, W.zero w)
  | Cptr c' -> null c'
  | Cstruct n ->
    Vstruct (n, List.map (fun (f : Layout.field) -> (f.fname, default env f.fty)) (Layout.fields_of env n))

let rec pp fmt v =
  match v with
  | Vunit -> Format.pp_print_string fmt "()"
  | Vbool b -> Format.pp_print_bool fmt b
  | Vword (Unsigned, w) -> Format.pp_print_string fmt (W.to_string_u w)
  | Vword (Signed, w) -> Format.pp_print_string fmt (W.to_string_s w)
  | Vint n -> B.pp fmt n
  | Vnat n -> B.pp fmt n
  | Vptr (a, c) ->
    if B.is_zero a then Format.pp_print_string fmt "NULL"
    else Format.fprintf fmt "(Ptr %s : %a)" (B.to_string a) Ty.pp_cty c
  | Vstruct (n, fs) ->
    Format.fprintf fmt "(|%s: %a|)" n
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         (fun f (fl, v) -> Format.fprintf f "%s=%a" fl pp v))
      fs
  | Vtuple vs ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
      vs

let to_string v = Format.asprintf "%a" pp v
