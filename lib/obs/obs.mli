(** Structured tracing: begin/end spans with monotonic timestamps,
    buffered per domain (no cross-domain locking on the hot path) and
    harvested into Chrome [trace_event] JSON or a JSONL stream.

    Everything here is observation only — span buffers live outside the
    kernel trust boundary.  Nothing in [lib/kernel] reads them, and no
    theorem can be minted or influenced through this module; dropping
    every event (or disabling tracing entirely) changes no result.

    Cost model: every instrumentation site performs exactly one atomic
    load when tracing is off ({!enabled} is the single gate).  When on,
    an event append takes the owning domain's buffer mutex — uncontended
    in steady state, since only the owner appends; harvest and reset are
    the only cross-domain readers. *)

(** {1 Enable gate} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Clock} *)

(** Monotonic seconds ([CLOCK_MONOTONIC]); same clock as
    [Profile.mono_s].  Only differences are meaningful. *)
val mono_s : unit -> float

(** {1 Events} *)

type ph =
  | B  (** span begin *)
  | E  (** span end *)
  | I  (** instant *)
  | X  (** complete span: [ts] + [dur] *)

type ev = {
  ev_name : string;
  ev_cat : string;
  ev_ph : ph;
  ev_ts : float;  (** monotonic seconds *)
  ev_dur : float;  (** seconds; [X] events only, 0 otherwise *)
  ev_tid : int;  (** recording domain id *)
  ev_seq : int;  (** per-buffer append index; orders ties *)
  ev_args : (string * string) list;
}

(** {1 Recording} *)

(** [span ~cat ?args name f] wraps [f ()] in a begin/end pair on the
    calling domain.  The end event is emitted even when [f] raises
    ([Fun.protect]), so harvested B/E events stay balanced under crash
    injection.  When tracing is off this is a single atomic load and a
    tail call to [f]. *)
val span : cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Point event (Chrome "instant"). *)
val instant : cat:string -> ?args:(string * string) list -> string -> unit

(** Retrospective span: an interval measured with {!mono_s} before the
    decision to record it (queue waits, flushes).  [ts0] is the interval
    start, [dur] its length in seconds. *)
val complete :
  cat:string -> ?args:(string * string) list -> ts0:float -> dur:float -> string -> unit

(** [with_ctx id f] attaches trace id [id] (a per-request or per-function
    label) as a ["ctx"] argument to every event recorded by the calling
    domain inside [f].  Nests; restored on exit or exception. *)
val with_ctx : string -> (unit -> 'a) -> 'a

(** {1 Harvest} *)

(** All events from every domain's buffer, merged deterministically:
    sorted by [(ts, tid, seq)].  Per-domain order is preserved ([ts] is
    non-decreasing per buffer and [seq] breaks ties). *)
val harvest : unit -> ev list

(** Events discarded because a domain buffer hit its cap — in ring mode,
    events overwritten by newer ones. *)
val dropped : unit -> int

(** {1 Flight-recorder ring mode}

    [set_ring (Some n)] bounds every domain buffer to [n] slots and
    switches overflow from drop-newest to overwrite-OLDEST, so the
    buffers always hold the most recent window — dumpable after the
    interesting thing has already happened.  Per-buffer sequence numbers
    keep increasing across overwrites, so harvest merge order is
    preserved.  Arm before recording; [set_ring None] returns new pushes
    to unbounded append mode. *)

val set_ring : int option -> unit

(** The armed ring capacity, if any. *)
val ring : unit -> int option

(** Truncation repair for mid-run dumps: drops E events whose B was lost
    to the ring, and closes spans still open at dump time with synthetic
    E events at the thread's last timestamp — the output always passes
    [acc trace --validate].  The identity on balanced streams.  Apply to
    a {!harvest} result before export. *)
val repair : ev list -> ev list

(** Clear every buffer and the dropped counter. *)
val reset : unit -> unit

(** {1 Export} *)

(** Chrome [trace_event] JSON ([{"traceEvents":[...]}]), one event per
    line, timestamps in microseconds relative to the earliest event.
    Loads in about:tracing and Perfetto. *)
val to_chrome : ev list -> string

(** One JSON object per line, same fields, no array wrapper — for
    streaming consumers. *)
val to_jsonl : ev list -> string
