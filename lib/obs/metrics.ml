(* Metrics registry.  Counters and histogram buckets are [Atomic] ints,
   so increments from worker domains need no lock; the registry table
   itself is mutex-guarded (creation is rare).  Float cells (gauges, the
   histogram sum) are [float Atomic.t]: the float is boxed, and
   [compare_and_set] compares the box physically — correct for the
   read-modify-CAS loop below, which always CASes against the box it
   read.  (Packing float bits into an int Atomic would truncate 64 bits
   into OCaml's 63-bit int and flip the sign of any value with
   bit 62 set, i.e. anything >= 2.0.) *)

type counter = { c_name : string; c_v : int Atomic.t }
type gauge = { g_name : string; g_v : float Atomic.t }

(* Log-bucketed histogram: bucket i covers [lo·r^i, lo·r^(i+1)) with
   lo = 1e-6 and r = 2^(1/4).  128 buckets reach lo·2^32 ≈ 4295 s.
   An observation is one float log2 + one atomic increment. *)
let h_lo = 1e-6
let h_buckets = 128

type histogram = {
  h_name : string;
  h_counts : int Atomic.t array;
  h_total : int Atomic.t;
  h_sum : float Atomic.t;  (* CAS loop on observe *)
}

type metric = C of counter | G of gauge | H of histogram

let mu = Mutex.create ()
let tbl : (string, metric) Hashtbl.t = Hashtbl.create 32

let kind_mismatch name = invalid_arg ("Metrics: kind mismatch for " ^ name)

let counter name : counter =
  Mutex.lock mu;
  let r =
    match Hashtbl.find_opt tbl name with
    | Some (C c) -> Some c
    | Some _ -> None
    | None ->
      let c = { c_name = name; c_v = Atomic.make 0 } in
      Hashtbl.add tbl name (C c);
      Some c
  in
  Mutex.unlock mu;
  match r with Some c -> c | None -> kind_mismatch name

let gauge name : gauge =
  Mutex.lock mu;
  let r =
    match Hashtbl.find_opt tbl name with
    | Some (G g) -> Some g
    | Some _ -> None
    | None ->
      let g = { g_name = name; g_v = Atomic.make 0. } in
      Hashtbl.add tbl name (G g);
      Some g
  in
  Mutex.unlock mu;
  match r with Some g -> g | None -> kind_mismatch name

let histogram name : histogram =
  Mutex.lock mu;
  let r =
    match Hashtbl.find_opt tbl name with
    | Some (H h) -> Some h
    | Some _ -> None
    | None ->
      let h =
        { h_name = name;
          h_counts = Array.init h_buckets (fun _ -> Atomic.make 0);
          h_total = Atomic.make 0;
          h_sum = Atomic.make 0. }
      in
      Hashtbl.add tbl name (H h);
      Some h
  in
  Mutex.unlock mu;
  match r with Some h -> h | None -> kind_mismatch name

let incr c = Atomic.incr c.c_v
let add c n = ignore (Atomic.fetch_and_add c.c_v n)
let counter_value c = Atomic.get c.c_v

(* For counters that mirror a value owned elsewhere (e.g. the span
   buffers' dropped-event count): overwrite rather than accumulate. *)
let set_counter c n = Atomic.set c.c_v n

let set_gauge g v = Atomic.set g.g_v v
let gauge_value g = Atomic.get g.g_v

let bucket_of v =
  if Float.is_nan v || v <= h_lo then 0
  else
    let i = int_of_float (Float.floor (Float.log2 (v /. h_lo) *. 4.)) in
    if i < 0 then 0 else if i >= h_buckets then h_buckets - 1 else i

let observe h v =
  Atomic.incr h.h_counts.(bucket_of v);
  Atomic.incr h.h_total;
  let rec loop () =
    let old = Atomic.get h.h_sum in
    if not (Atomic.compare_and_set h.h_sum old (old +. v)) then loop ()
  in
  loop ()

let hist_count h = Atomic.get h.h_total
let hist_sum h = Atomic.get h.h_sum

let reset_histogram h =
  Array.iter (fun a -> Atomic.set a 0) h.h_counts;
  Atomic.set h.h_total 0;
  Atomic.set h.h_sum 0.

(* Geometric midpoint of bucket i: lo·r^(i+0.5). *)
let bucket_mid i = h_lo *. Float.pow 2. ((float_of_int i +. 0.5) /. 4.)

(* Exclusive upper bound of bucket i: lo·r^(i+1).  This is the value an
   OpenMetrics exposition needs for the cumulative [le] label — the
   midpoints alone cannot express the bucket layout. *)
let num_buckets = h_buckets
let bucket_ub i = h_lo *. Float.pow 2. (float_of_int (i + 1) /. 4.)
let bucket_count h i = Atomic.get h.h_counts.(i)

let quantile h p =
  let total = hist_count h in
  if total = 0 then 0.
  else begin
    let target =
      let t = int_of_float (Float.ceil (p *. float_of_int total)) in
      if t < 1 then 1 else if t > total then total else t
    in
    let rec go i cum =
      if i >= h_buckets then bucket_mid (h_buckets - 1)
      else
        let cum = cum + Atomic.get h.h_counts.(i) in
        if cum >= target then bucket_mid i else go (i + 1) cum
    in
    go 0 0
  end

let json_num v =
  (* Stable float rendering for JSON: no exponent surprises for the
     magnitudes we emit (seconds, ratios). *)
  Printf.sprintf "%.6f" v

let to_json () =
  Mutex.lock mu;
  let all = Hashtbl.fold (fun _ m acc -> m :: acc) tbl [] in
  Mutex.unlock mu;
  let name_of = function C c -> c.c_name | G g -> g.g_name | H h -> h.h_name in
  let all = List.sort (fun a b -> String.compare (name_of a) (name_of b)) all in
  let cs = List.filter_map (function C c -> Some c | _ -> None) all in
  let gs = List.filter_map (function G g -> Some g | _ -> None) all in
  let hs = List.filter_map (function H h -> Some h | _ -> None) all in
  let counters =
    String.concat ","
      (List.map (fun c -> Printf.sprintf "\"%s\":%d" c.c_name (counter_value c)) cs)
  in
  let gauges =
    String.concat ","
      (List.map (fun g -> Printf.sprintf "\"%s\":%s" g.g_name (json_num (gauge_value g))) gs)
  in
  let hists =
    String.concat ","
      (List.map
         (fun h ->
           let n = hist_count h in
           let mean = if n = 0 then 0. else hist_sum h /. float_of_int n in
           Printf.sprintf
             "\"%s\":{\"count\":%d,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
             h.h_name n (json_num mean)
             (json_num (quantile h 0.50))
             (json_num (quantile h 0.95))
             (json_num (quantile h 0.99)))
         hs)
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}" counters gauges
    hists

(* --- OpenMetrics / Prometheus text exposition --- *)

(* Registry names use dots ("serve.requests"); a Prometheus metric name
   is [a-zA-Z_:][a-zA-Z0-9_:]*.  Map every other byte to '_' and prefix
   "acc_" so the series namespace is ours. *)
let om_name name =
  let b = Bytes.of_string ("acc_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

(* Stable float rendering for sample values and [le] bounds: shortest
   round-trippable decimal keeps the labels identical across scrapes. *)
let om_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* The whole registry in Prometheus/OpenMetrics text exposition:
   counters as [_total] samples, gauges plain, histograms as cumulative
   [_bucket{le="..."}] series (non-empty buckets plus the mandatory
   [+Inf]) with [_sum] and [_count].  No trailing [# EOF] — the caller
   composes additional series and terminates the exposition. *)
let to_openmetrics () =
  Mutex.lock mu;
  let all = Hashtbl.fold (fun _ m acc -> m :: acc) tbl [] in
  Mutex.unlock mu;
  let name_of = function C c -> c.c_name | G g -> g.g_name | H h -> h.h_name in
  let all = List.sort (fun a b -> String.compare (name_of a) (name_of b)) all in
  let buf = Buffer.create 4096 in
  List.iter
    (fun m ->
      match m with
      | C c ->
        let n = om_name c.c_name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string buf (Printf.sprintf "%s_total %d\n" n (counter_value c))
      | G g ->
        let n = om_name g.g_name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" n (om_num (gauge_value g)))
      | H h ->
        let n = om_name h.h_name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
        let cum = ref 0 in
        for i = 0 to h_buckets - 1 do
          let c = Atomic.get h.h_counts.(i) in
          if c > 0 then begin
            cum := !cum + c;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (om_num (bucket_ub i)) !cum)
          end
        done;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (hist_count h));
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (om_num (hist_sum h)));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (hist_count h)))
    all;
  Buffer.contents buf

let reset_all () =
  Mutex.lock mu;
  let all = Hashtbl.fold (fun _ m acc -> m :: acc) tbl [] in
  Mutex.unlock mu;
  List.iter
    (function
      | C c -> Atomic.set c.c_v 0
      | G g -> Atomic.set g.g_v 0.
      | H h ->
        Array.iter (fun a -> Atomic.set a 0) h.h_counts;
        Atomic.set h.h_total 0;
        Atomic.set h.h_sum 0.)
    all
