(** Proof-effort accounting: per-rule kernel application counters,
    refinement-chain shape histograms, and guard-discharge provenance.

    Fed by the kernel's observation hook ([Thm.set_obs_hook] — installed
    from the CLI, never by the kernel itself; the kernel has zero
    dependencies on this library) and by the driver's discharge/chain
    call sites.  Everything here observes; nothing can influence a
    theorem, and hooked runs are byte-identical to unhooked ones (CI
    asserts it). *)

(** Master gate, like [Obs.enabled]: when off, the installed hook and
    every recording entry point below are a single atomic load. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** The kernel hook body: count one successful application of the rule
    with the given dense id ([Rules.rule_id]; -1 for custom rules) and
    name.  Counts are unsynchronised on the hot path, so concurrent
    domains may drop the odd increment — exact when single-domain or
    quiescent.  Install with [Thm.set_obs_hook (Some Effort.on_rule)]. *)
val on_rule : int -> string -> unit

(** Record one completed end-to-end refinement chain:
    [depth] = longest premise path, [size] = rule applications in the
    derivation. *)
val observe_chain : depth:int -> size:int -> unit

(** Which pass paid for a discharged guard: the purely intraprocedural
    certificate walk, or one strengthened by interprocedural
    summaries. *)
type provenance = Intra | Interproc

(** [record_discharge p ~proven ~scrubbed]: of the guards a discharge
    pass removed, [proven] were proven true by the analysis under
    provenance [p] and [scrubbed] disappeared with dead code scrubbed by
    the certificate walk. *)
val record_discharge : provenance -> proven:int -> scrubbed:int -> unit

(** Merged per-rule counts, most-applied first (ties by name). *)
val rule_counts : unit -> (string * int) list

val total_applications : unit -> int

(** One JSON object: rule counts, chain depth/size histograms
    (count/sum/p50/p95/p99), discharge provenance. *)
val snapshot_json : unit -> string

(** The per-rule family as labelled OpenMetrics series
    ([acc_kernel_rule_applications_total{rule="..."}]).  Chain and
    provenance series ride [Metrics.to_openmetrics] (they live in the
    registry). *)
val to_openmetrics : unit -> string

(** Zero the per-rule tables and the chain/provenance metrics. *)
val reset : unit -> unit
