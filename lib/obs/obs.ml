(* Tracing runtime.  Design constraints, in order:

   1. Zero cost when off: one [Atomic.get] per site, nothing else — no
      allocation, no clock read.  Callers with non-trivial argument
      lists should gate on [enabled ()] themselves so the list is never
      built when tracing is off.
   2. No cross-domain locking on the hot path: each domain appends to
      its own buffer under its own mutex.  Only the owner appends, so
      the lock is uncontended except during harvest/reset — it exists
      to make those two cross-domain readers safe, not to arbitrate
      writers.
   3. Crash-tolerant balance: [span] emits its end event from
      [Fun.protect ~finally], so a [Pool.Crash] (or any exception)
      escaping the traced work still closes the span and harvested B/E
      events stay balanced under fault injection.

   Trust boundary: this module is observation only.  The kernel never
   reads these buffers; no certificate or theorem depends on them. *)

let mono_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

type ph = B | E | I | X

type ev = {
  ev_name : string;
  ev_cat : string;
  ev_ph : ph;
  ev_ts : float;
  ev_dur : float;
  ev_tid : int;
  ev_seq : int;
  ev_args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Cap per domain: a runaway traced loop degrades to dropped events, not
   to unbounded memory.  2^20 events ~ 100MB worst case per domain. *)
let max_events_per_domain = 1 lsl 20

let dropped_total = Atomic.make 0
let dropped () = Atomic.get dropped_total

let dummy_ev =
  { ev_name = ""; ev_cat = ""; ev_ph = I; ev_ts = 0.; ev_dur = 0.; ev_tid = 0;
    ev_seq = 0; ev_args = [] }

type buf = {
  b_tid : int;
  b_mu : Mutex.t;
  mutable b_evs : ev array;
  mutable b_len : int;
}

let reg_mu = Mutex.create ()
let registry : buf list ref = ref []

(* One buffer per domain, created lazily on first event and registered
   for harvest.  A respawned worker domain gets a fresh buffer; dead
   domains' buffers stay registered (their events are still wanted) —
   growth is bounded by the number of respawns. *)
let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { b_tid = (Domain.self () :> int); b_mu = Mutex.create ();
          b_evs = Array.make 256 dummy_ev; b_len = 0 }
      in
      Mutex.lock reg_mu;
      registry := b :: !registry;
      Mutex.unlock reg_mu;
      b)

let ctx_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let push (b : buf) (e : ev) =
  Mutex.lock b.b_mu;
  let n = b.b_len in
  if n >= max_events_per_domain then Atomic.incr dropped_total
  else begin
    if n = Array.length b.b_evs then begin
      let bigger = Array.make (2 * n) dummy_ev in
      Array.blit b.b_evs 0 bigger 0 n;
      b.b_evs <- bigger
    end;
    b.b_evs.(n) <- { e with ev_seq = n };
    b.b_len <- n + 1
  end;
  Mutex.unlock b.b_mu

let emit ~cat ~ph ?(dur = 0.) ?(ts = nan) ~args name =
  let b = Domain.DLS.get buf_key in
  let args =
    match Domain.DLS.get ctx_key with
    | Some c -> ("ctx", c) :: args
    | None -> args
  in
  let ts = if Float.is_nan ts then mono_s () else ts in
  push b
    { ev_name = name; ev_cat = cat; ev_ph = ph; ev_ts = ts; ev_dur = dur;
      ev_tid = b.b_tid; ev_seq = 0; ev_args = args }

let span ~cat ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    emit ~cat ~ph:B ~args name;
    Fun.protect ~finally:(fun () -> emit ~cat ~ph:E ~args:[] name) f
  end

let instant ~cat ?(args = []) name =
  if Atomic.get enabled_flag then emit ~cat ~ph:I ~args name

let complete ~cat ?(args = []) ~ts0 ~dur name =
  if Atomic.get enabled_flag then emit ~cat ~ph:X ~dur ~ts:ts0 ~args name

let with_ctx id f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let old = Domain.DLS.get ctx_key in
    Domain.DLS.set ctx_key (Some id);
    Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key old) f
  end

let harvest () : ev list =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  let all =
    List.concat_map
      (fun b ->
        Mutex.lock b.b_mu;
        let l = Array.to_list (Array.sub b.b_evs 0 b.b_len) in
        Mutex.unlock b.b_mu;
        l)
      bufs
  in
  (* Deterministic merge: [ts] is non-decreasing within a buffer (the
     clock is monotonic), so sorting by (ts, tid, seq) preserves each
     domain's append order while interleaving domains stably. *)
  List.sort
    (fun a b ->
      match Float.compare a.ev_ts b.ev_ts with
      | 0 -> (
        match Int.compare a.ev_tid b.ev_tid with
        | 0 -> Int.compare a.ev_seq b.ev_seq
        | c -> c)
      | c -> c)
    all

let reset () =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  List.iter
    (fun b ->
      Mutex.lock b.b_mu;
      b.b_len <- 0;
      Mutex.unlock b.b_mu)
    bufs;
  Atomic.set dropped_total 0

(* --- export --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ph_str = function B -> "B" | E -> "E" | I -> "i" | X -> "X"

(* One event rendered as a single-line JSON object.  [t0] rebases the
   monotonic timestamps so traces start near 0; Chrome wants ts (and
   dur) in microseconds. *)
let render_ev buf ~pid ~t0 e =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f"
       (json_escape e.ev_name) (json_escape e.ev_cat) (ph_str e.ev_ph) pid e.ev_tid
       ((e.ev_ts -. t0) *. 1e6));
  if e.ev_ph = X then Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" (e.ev_dur *. 1e6));
  if e.ev_ph = I then Buffer.add_string buf ",\"s\":\"t\"";
  (match e.ev_args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      args;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let min_ts evs = List.fold_left (fun acc e -> Float.min acc e.ev_ts) infinity evs

let to_chrome evs =
  let pid = Unix.getpid () in
  let t0 = match evs with [] -> 0. | _ -> min_ts evs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      render_ev buf ~pid ~t0 e)
    evs;
  Buffer.add_string buf
    (Printf.sprintf "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"%d\"}}\n"
       (dropped ()));
  Buffer.contents buf

let to_jsonl evs =
  let pid = Unix.getpid () in
  let t0 = match evs with [] -> 0. | _ -> min_ts evs in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      render_ev buf ~pid ~t0 e;
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf
