(* Tracing runtime.  Design constraints, in order:

   1. Zero cost when off: one [Atomic.get] per site, nothing else — no
      allocation, no clock read.  Callers with non-trivial argument
      lists should gate on [enabled ()] themselves so the list is never
      built when tracing is off.
   2. No cross-domain locking on the hot path: each domain appends to
      its own buffer under its own mutex.  Only the owner appends, so
      the lock is uncontended except during harvest/reset — it exists
      to make those two cross-domain readers safe, not to arbitrate
      writers.
   3. Crash-tolerant balance: [span] emits its end event from
      [Fun.protect ~finally], so a [Pool.Crash] (or any exception)
      escaping the traced work still closes the span and harvested B/E
      events stay balanced under fault injection.

   Trust boundary: this module is observation only.  The kernel never
   reads these buffers; no certificate or theorem depends on them. *)

let mono_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

type ph = B | E | I | X

type ev = {
  ev_name : string;
  ev_cat : string;
  ev_ph : ph;
  ev_ts : float;
  ev_dur : float;
  ev_tid : int;
  ev_seq : int;
  ev_args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Cap per domain: a runaway traced loop degrades to dropped events, not
   to unbounded memory.  2^20 events ~ 100MB worst case per domain. *)
let max_events_per_domain = 1 lsl 20

let dropped_total = Atomic.make 0
let dropped () = Atomic.get dropped_total

(* Flight-recorder ring mode: when [ring_cap] is positive, each domain
   buffer becomes a bounded ring of that many slots and a full buffer
   overwrites its OLDEST event instead of dropping the new one.  The
   per-buffer append counter [b_seq] keeps increasing across wraps, so
   (ts, tid, seq) merge order — and the validator's per-tid seq
   monotonicity — survive overwrites.  Overwritten events count as
   dropped: overflow stays visible either way.  Arm before recording
   (the CLI does, at startup); flipping modes mid-buffer is not
   supported. *)
let ring_cap = Atomic.make 0
let set_ring n = Atomic.set ring_cap (match n with Some c when c > 0 -> c | _ -> 0)
let ring () = match Atomic.get ring_cap with 0 -> None | c -> Some c

let dummy_ev =
  { ev_name = ""; ev_cat = ""; ev_ph = I; ev_ts = 0.; ev_dur = 0.; ev_tid = 0;
    ev_seq = 0; ev_args = [] }

type buf = {
  b_tid : int;
  b_mu : Mutex.t;
  mutable b_evs : ev array;
  mutable b_len : int;  (* live slots (= min b_seq cap in ring mode) *)
  mutable b_seq : int;  (* events ever appended; never decreases *)
}

let reg_mu = Mutex.create ()
let registry : buf list ref = ref []

(* One buffer per domain, created lazily on first event and registered
   for harvest.  A respawned worker domain gets a fresh buffer; dead
   domains' buffers stay registered (their events are still wanted) —
   growth is bounded by the number of respawns. *)
let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { b_tid = (Domain.self () :> int); b_mu = Mutex.create ();
          b_evs = Array.make 256 dummy_ev; b_len = 0; b_seq = 0 }
      in
      Mutex.lock reg_mu;
      registry := b :: !registry;
      Mutex.unlock reg_mu;
      b)

let ctx_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let grow_to (b : buf) (want : int) =
  if want > Array.length b.b_evs then begin
    let bigger = Array.make (max want (2 * Array.length b.b_evs)) dummy_ev in
    Array.blit b.b_evs 0 bigger 0 b.b_len;
    b.b_evs <- bigger
  end

let push (b : buf) (e : ev) =
  Mutex.lock b.b_mu;
  (match Atomic.get ring_cap with
  | 0 ->
    (* Unbounded append mode: drop when the per-domain cap is hit. *)
    let n = b.b_len in
    if n >= max_events_per_domain then Atomic.incr dropped_total
    else begin
      if n = Array.length b.b_evs then grow_to b (2 * n);
      b.b_evs.(n) <- { e with ev_seq = b.b_seq };
      b.b_len <- n + 1;
      b.b_seq <- b.b_seq + 1
    end
  | cap ->
    (* Ring mode: overwrite the oldest slot once full.  The array only
       ever grows up to [cap], so a quiet domain stays small. *)
    let slot = b.b_seq mod cap in
    grow_to b (min cap (slot + 1));
    if b.b_seq >= cap then Atomic.incr dropped_total;
    b.b_evs.(slot) <- { e with ev_seq = b.b_seq };
    b.b_seq <- b.b_seq + 1;
    b.b_len <- min b.b_seq cap);
  Mutex.unlock b.b_mu

let emit ~cat ~ph ?(dur = 0.) ?(ts = nan) ~args name =
  let b = Domain.DLS.get buf_key in
  let args =
    match Domain.DLS.get ctx_key with
    | Some c -> ("ctx", c) :: args
    | None -> args
  in
  let ts = if Float.is_nan ts then mono_s () else ts in
  push b
    { ev_name = name; ev_cat = cat; ev_ph = ph; ev_ts = ts; ev_dur = dur;
      ev_tid = b.b_tid; ev_seq = 0; ev_args = args }

let span ~cat ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    emit ~cat ~ph:B ~args name;
    Fun.protect ~finally:(fun () -> emit ~cat ~ph:E ~args:[] name) f
  end

let instant ~cat ?(args = []) name =
  if Atomic.get enabled_flag then emit ~cat ~ph:I ~args name

let complete ~cat ?(args = []) ~ts0 ~dur name =
  if Atomic.get enabled_flag then emit ~cat ~ph:X ~dur ~ts:ts0 ~args name

let with_ctx id f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let old = Domain.DLS.get ctx_key in
    Domain.DLS.set ctx_key (Some id);
    Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key old) f
  end

let harvest () : ev list =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  let all =
    List.concat_map
      (fun b ->
        Mutex.lock b.b_mu;
        let l = Array.to_list (Array.sub b.b_evs 0 b.b_len) in
        Mutex.unlock b.b_mu;
        l)
      bufs
  in
  (* Deterministic merge: [ts] is non-decreasing within a buffer (the
     clock is monotonic), so sorting by (ts, tid, seq) preserves each
     domain's append order while interleaving domains stably. *)
  List.sort
    (fun a b ->
      match Float.compare a.ev_ts b.ev_ts with
      | 0 -> (
        match Int.compare a.ev_tid b.ev_tid with
        | 0 -> Int.compare a.ev_seq b.ev_seq
        | c -> c)
      | c -> c)
    all

(* Truncation repair for flight-recorder dumps.  A ring overwrite cuts a
   prefix off each domain's stream, and a dump can land while spans are
   still open, so a raw harvest may contain:
   - E events whose B was overwritten (they close spans opened before
     the retained window), and
   - B events with no E yet (spans open at dump time).
   Repair restores the validator's invariants without touching any event
   that already pairs up: walking each tid in order, an E that matches
   no open B in the window is dropped; every B still open at the end is
   closed with a synthetic E at that tid's final timestamp.  On an
   already-balanced stream this is the identity. *)
let repair (evs : ev list) : ev list =
  let stacks : (int, (string * string) list ref) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  let kept =
    List.filter
      (fun e ->
        Hashtbl.replace last_ts e.ev_tid e.ev_ts;
        match e.ev_ph with
        | B ->
          let s = stack_of e.ev_tid in
          s := (e.ev_name, e.ev_cat) :: !s;
          true
        | E -> (
          let s = stack_of e.ev_tid in
          match !s with
          | (top, _) :: rest when top = e.ev_name ->
            s := rest;
            true
          | _ -> false (* closes a span lost to the ring: orphaned *))
        | I | X -> true)
      evs
  in
  (* Close every span still open, innermost first, at the tid's last
     seen timestamp (ts stays monotone per tid). *)
  let closers =
    Hashtbl.fold
      (fun tid s acc ->
        let ts = try Hashtbl.find last_ts tid with Not_found -> 0. in
        List.fold_left
          (fun acc (name, cat) ->
            { ev_name = name; ev_cat = cat; ev_ph = E; ev_ts = ts; ev_dur = 0.;
              ev_tid = tid; ev_seq = 0; ev_args = [] }
            :: acc)
          acc !s)
      stacks []
  in
  (* Synthetic closers get fresh sequence numbers above every real one,
     assigned in emission order, so per-tid seq stays strictly
     increasing through the repaired tail. *)
  let next = ref (List.fold_left (fun m e -> max m e.ev_seq) (-1) evs + 1) in
  kept
  @ List.map
      (fun e ->
        let s = !next in
        incr next;
        { e with ev_seq = s })
      (List.rev closers)

let reset () =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  List.iter
    (fun b ->
      Mutex.lock b.b_mu;
      b.b_len <- 0;
      b.b_seq <- 0;
      Mutex.unlock b.b_mu)
    bufs;
  Atomic.set dropped_total 0

(* --- export --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ph_str = function B -> "B" | E -> "E" | I -> "i" | X -> "X"

(* One event rendered as a single-line JSON object.  [t0] rebases the
   monotonic timestamps so traces start near 0; Chrome wants ts (and
   dur) in microseconds. *)
let render_ev buf ~pid ~t0 e =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f"
       (json_escape e.ev_name) (json_escape e.ev_cat) (ph_str e.ev_ph) pid e.ev_tid
       ((e.ev_ts -. t0) *. 1e6));
  if e.ev_ph = X then Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" (e.ev_dur *. 1e6));
  if e.ev_ph = I then Buffer.add_string buf ",\"s\":\"t\"";
  (match e.ev_args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      args;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let min_ts evs = List.fold_left (fun acc e -> Float.min acc e.ev_ts) infinity evs

let to_chrome evs =
  let pid = Unix.getpid () in
  let t0 = match evs with [] -> 0. | _ -> min_ts evs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      render_ev buf ~pid ~t0 e)
    evs;
  Buffer.add_string buf
    (Printf.sprintf "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"%d\"}}\n"
       (dropped ()));
  Buffer.contents buf

let to_jsonl evs =
  let pid = Unix.getpid () in
  let t0 = match evs with [] -> 0. | _ -> min_ts evs in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      render_ev buf ~pid ~t0 e;
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf
