(** Metrics registry: named counters, gauges and log-bucketed
    histograms.  Cheap enough to stay always-on (an increment is one
    [Atomic] op); spans are the gated, heavier half of [lib/obs].

    Like span buffers, metrics live outside the kernel trust boundary:
    they observe the pipeline, they cannot influence any theorem. *)

type counter
type gauge
type histogram

(** Find-or-create by name.  Registered metrics are process-global and
    survive across runs; names are unique per kind — asking for an
    existing name returns the same instance.  Raises [Invalid_argument]
    if the name is already registered as a different kind. *)

val counter : string -> counter

val gauge : string -> gauge

val histogram : string -> histogram

(** {1 Counters} *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** Overwrite the counter with an externally-owned value (e.g. mirroring
    the span buffers' dropped-event count into the registry). *)
val set_counter : counter -> int -> unit

(** {1 Gauges} *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Buckets are logarithmic: base 1e-6 (1µs when observing seconds),
    ratio 2^(1/4) per bucket (~19% relative width), 128 buckets —
    covering 1µs to ~71min.  Observations clamp into the edge
    buckets. *)

val observe : histogram -> float -> unit

val hist_count : histogram -> int

(** Sum of every observed value (CAS-accumulated float).  With
    {!hist_count} this is the OpenMetrics [_sum]/[_count] pair. *)
val hist_sum : histogram -> float

(** Number of buckets (fixed layout, shared by every histogram). *)
val num_buckets : int

(** Exclusive upper bound of bucket [i] — the OpenMetrics [le] label.
    [bucket_ub (num_buckets - 1)] is the bound of the clamp bucket;
    observations beyond it are still counted there. *)
val bucket_ub : int -> float

(** Observations landed in bucket [i] (non-cumulative). *)
val bucket_count : histogram -> int -> int

(** Zero one histogram (see {!reset_all} for the whole registry). *)
val reset_histogram : histogram -> unit

(** [quantile h p] for [p] in [0,1]: the geometric midpoint of the
    bucket containing the [p]-th ranked observation; 0 if empty.
    Accurate to one bucket width (~19%). *)
val quantile : histogram -> float -> float

(** {1 Registry} *)

(** All metrics as one JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{name:{"count":..,
    "mean":..,"p50":..,"p95":..,"p99":..}}}] — names sorted, floats
    rendered with [%.6g]-style stability. *)
val to_json : unit -> string

(** The whole registry in Prometheus/OpenMetrics text exposition —
    [# TYPE] headers, counters as [name_total], histograms as cumulative
    [name_bucket{le="..."}] series (non-empty buckets plus [+Inf]) with
    [name_sum] and [name_count].  Registry names are sanitised to
    Prometheus identifiers and prefixed [acc_].  The caller appends any
    extra series and the terminating [# EOF] line. *)
val to_openmetrics : unit -> string

(** Zero every registered metric (tests and bench rounds). *)
val reset_all : unit -> unit
