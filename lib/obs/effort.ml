(* Proof-effort accounting: where did the kernel's work go?

   The paper's pitch is proof-effort reduction, so the thing worth
   metering in production is kernel activity: how many times each
   inference rule was applied, how deep and large the per-function
   refinement chains come out, and which pass paid for each discharged
   guard (intraprocedural analysis, interprocedural summaries, or
   dead-code scrubbing inside the certificate walk).

   Trust boundary: the kernel exposes one observation hook
   ([Thm.set_obs_hook], an [int -> string -> unit] fed the dense rule id
   and rule name of every successful mint) and knows nothing about this
   module — the hook is installed from the CLI, defaults to a no-op, and
   observing changes no theorem.  CI byte-compares hooked vs unhooked
   runs.

   Cost model: rule minting is the kernel's hot path — the whole
   translation pipeline averages under 100 ns of work per mint, so the
   budget here is single-digit nanoseconds.  Per-rule counts are one
   unsynchronised flat-array increment indexed by the dense rule id:
   immediate ints, no hashing, no write barrier, no domain-local-state
   lookup.  Concurrent domains may lose an occasional increment to the
   race (plain int stores are memory-safe in the OCaml 5 model, just not
   atomic); telemetry counters are allowed to be approximate under
   contention and exact in the single-domain case the bench bounds.  The
   rule NAME is only stored the first time an id fires.  Custom rules
   (id -1, user-chosen names) take a mutex-guarded assoc-list slow path;
   they are rare by construction.  Chain shapes and discharge provenance
   are rare events (once per function) and go straight to the {!Metrics}
   registry, which also makes them scrapeable for free. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* --- per-rule application counters (per-domain tables) --- *)

(* Capacity of the dense-id fast path.  Must be >= the kernel's
   [Rules.num_rule_ids]; this module deliberately has no kernel
   dependency, so the bound is duplicated (generously) here and ids
   outside [0, id_capacity) simply take the slow path. *)
let id_capacity = 128

(* Sentinel for "no name recorded yet" — compared physically, so a fresh
   literal that can never be [==] to a real rule name. *)
let no_name = String.make 0 'x'

(* Fast path: applications of rule id [i] land in [counts.(i)] — an
   immediate-int store, no write barrier.  [names.(i)] is written once,
   on the id's first hit (racing writers store the same literal, so the
   race is benign; a reader either sees [no_name] and skips the slot or
   sees the name with whatever count has accumulated). *)
let counts = Array.make id_capacity 0
let names = Array.make id_capacity no_name

(* Slow path for custom rules (id -1): (name, count) assoc updated under
   a mutex.  Rare by construction — custom rules are explicit user
   registrations. *)
let custom_mu = Mutex.create ()
let custom : (string * int) list ref = ref []

(* The kernel hook body.  [enabled] is re-checked here because the hook
   stays installed for the life of the process once armed (bench rounds
   flip the flag instead of racing hook deinstallation against worker
   domains mid-map). *)
let on_rule (id : int) (rule : string) : unit =
  if Atomic.get enabled_flag then
    if id >= 0 && id < id_capacity then begin
      Array.unsafe_set counts id (Array.unsafe_get counts id + 1);
      if Array.unsafe_get names id == no_name then names.(id) <- rule
    end
    else begin
      Mutex.lock custom_mu;
      custom :=
        (match List.assoc_opt rule !custom with
        | Some n -> (rule, n + 1) :: List.remove_assoc rule !custom
        | None -> (rule, 1) :: !custom);
      Mutex.unlock custom_mu
    end

let rule_counts () : (string * int) list =
  let merged : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let add rule n =
    if n > 0 then
      Hashtbl.replace merged rule
        (n + Option.value ~default:0 (Hashtbl.find_opt merged rule))
  in
  for i = 0 to id_capacity - 1 do
    let name = names.(i) in
    if name != no_name then add name counts.(i)
  done;
  Mutex.lock custom_mu;
  let cust = !custom in
  Mutex.unlock custom_mu;
  List.iter (fun (rule, n) -> add rule n) cust;
  Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) merged []
  |> List.sort (fun (a, na) (b, nb) ->
         match Int.compare nb na with 0 -> String.compare a b | c -> c)

let total_applications () =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (rule_counts ())

(* --- chain shapes and discharge provenance (Metrics registry) --- *)

(* Find-or-create is mutex-guarded in [Metrics], so resolve handles
   lazily and cache them. *)
let h_chain_depth = lazy (Metrics.histogram "kernel.chain_depth")
let h_chain_size = lazy (Metrics.histogram "kernel.chain_size")
let c_chains = lazy (Metrics.counter "kernel.chains")
let c_intra = lazy (Metrics.counter "kernel.discharged_intra")
let c_inter = lazy (Metrics.counter "kernel.discharged_interproc")
let c_scrub = lazy (Metrics.counter "kernel.discharged_scrub_dead")

let observe_chain ~depth ~size =
  if Atomic.get enabled_flag then begin
    Metrics.incr (Lazy.force c_chains);
    Metrics.observe (Lazy.force h_chain_depth) (float_of_int depth);
    Metrics.observe (Lazy.force h_chain_size) (float_of_int size)
  end

type provenance = Intra | Interproc

let record_discharge (p : provenance) ~proven ~scrubbed =
  if Atomic.get enabled_flag then begin
    Metrics.add (Lazy.force (match p with Intra -> c_intra | Interproc -> c_inter))
      proven;
    Metrics.add (Lazy.force c_scrub) scrubbed
  end

(* --- reports --- *)

let reset () =
  Array.fill counts 0 id_capacity 0;
  Array.fill names 0 id_capacity no_name;
  Mutex.lock custom_mu;
  custom := [];
  Mutex.unlock custom_mu;
  List.iter
    (fun c -> Metrics.set_counter (Lazy.force c) 0)
    [ c_chains; c_intra; c_inter; c_scrub ];
  List.iter (fun h -> Metrics.reset_histogram (Lazy.force h)) [ h_chain_depth; h_chain_size ]

let snapshot_json () =
  let rules =
    String.concat ","
      (List.map
         (fun (rule, n) -> Printf.sprintf "\"%s\":%d" rule n)
         (rule_counts ()))
  in
  let hist h =
    let h = Lazy.force h in
    let n = Metrics.hist_count h in
    Printf.sprintf
      "{\"count\":%d,\"sum\":%.0f,\"p50\":%.0f,\"p95\":%.0f,\"p99\":%.0f}" n
      (Metrics.hist_sum h)
      (Metrics.quantile h 0.50) (Metrics.quantile h 0.95) (Metrics.quantile h 0.99)
  in
  Printf.sprintf
    "{\"rule_applications\":{%s},\"total_applications\":%d,\"chains\":%d,\"chain_depth\":%s,\"chain_size\":%s,\"discharge_provenance\":{\"intra\":%d,\"interproc\":%d,\"scrub_dead\":%d}}"
    rules (total_applications ())
    (Metrics.counter_value (Lazy.force c_chains))
    (hist h_chain_depth) (hist h_chain_size)
    (Metrics.counter_value (Lazy.force c_intra))
    (Metrics.counter_value (Lazy.force c_inter))
    (Metrics.counter_value (Lazy.force c_scrub))

(* Per-rule counters as labelled OpenMetrics series.  The chain
   histograms and provenance counters live in the [Metrics] registry and
   ride [Metrics.to_openmetrics]; only the labelled family is rendered
   here (the registry is flat-name only). *)
let to_openmetrics () =
  let buf = Buffer.create 1024 in
  (match rule_counts () with
  | [] -> ()
  | counts ->
    Buffer.add_string buf "# TYPE acc_kernel_rule_applications counter\n";
    List.iter
      (fun (rule, n) ->
        Buffer.add_string buf
          (Printf.sprintf "acc_kernel_rule_applications_total{rule=\"%s\"} %d\n" rule
             n))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) counts));
  Buffer.contents buf
