module B = Ac_bignum
module Ty = Ac_lang.Ty
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module Heap = Ac_simpl.Heap
module State = Ac_simpl.State
module Interp = Ac_monad.Interp
module Driver = Autocorres.Driver

(* The Schorr-Waite case study (paper Sec 5.3, Figs 7 and 8).

   Mehta and Nipkow's correctness statement: starting from an unmarked
   graph, after the algorithm terminates every node reachable from the root
   is marked (and only those), and the l/r pointers of every node are
   restored to their initial values.  The termination measure is Bornat's.

   Where the paper replays M/N's interactive Isabelle proof against the
   AutoCorres output, this reproduction validates the same correctness
   statement by *bounded exhaustive checking*: the abstracted program (the
   pipeline output, not the C source) is executed on every graph shape up
   to [exhaustive_nodes] nodes and on random larger graphs, and the
   postcondition is checked on the final state.  See DESIGN.md for why this
   substitution preserves the experiment's meaning. *)

type report = {
  graphs_checked : int;
  failures : string list;
  skipped_guard : int; (* runs aborted by a failing guard (none expected) *)
}

let node = Ty.Cstruct "node"

(* Build a heap containing [k] graph nodes with the given l/r links
   (0 = NULL, i>=1 = node i). *)
let build_graph lenv k (links : (int * int) array) : B.t array * Heap.t =
  let addrs = Array.make (k + 1) B.zero in
  let heap = ref Heap.empty in
  for i = 1 to k do
    let a, h = Heap.alloc lenv !heap node in
    addrs.(i) <- a;
    heap := h
  done;
  for i = 1 to k do
    let l, r = links.(i) in
    let value =
      Value.Vstruct
        ( "node",
          [ ("l", Value.vptr addrs.(l) node); ("r", Value.vptr addrs.(r) node);
            ("m", Value.vword Ty.Unsigned (Ac_word.zero Ty.W32));
            ("c", Value.vword Ty.Unsigned (Ac_word.zero Ty.W32)) ] )
    in
    heap := Heap.write_obj lenv !heap node addrs.(i) value
  done;
  (addrs, !heap)

(* Reachability in the original graph. *)
let reachable k (links : (int * int) array) root =
  let seen = Array.make (k + 1) false in
  let rec go i =
    if i <> 0 && not (seen.(i)) then begin
      seen.(i) <- true;
      go (fst links.(i));
      go (snd links.(i))
    end
  in
  go root;
  seen

let check_one (res : Driver.result) k (links : (int * int) array) (root : int) :
    (unit, string) result =
  let lenv = res.Driver.final_prog.Ac_monad.M.lenv in
  let addrs, heap = build_graph lenv k links in
  let state = State.with_heap State.empty heap in
  let describe () =
    let parts = ref [] in
    for i = k downto 1 do
      let l, r = links.(i) in
      parts := Printf.sprintf "%d->(%d,%d)" i l r :: !parts
    done;
    Printf.sprintf "root=%d, %s" root (String.concat " " !parts)
  in
  match
    Interp.run_func res.Driver.final_prog ~fuel:200_000 state "schorr_waite"
      [ Value.vptr addrs.(root) node ]
  with
  | Interp.Returns (_, final) ->
    let seen = reachable k links root in
    let check_node i =
      let v = Heap.read_obj lenv final.State.heap node addrs.(i) in
      let field f = Value.struct_field v f in
      let marked = not (Value.equal (field "m") (Value.vword Ty.Unsigned (Ac_word.zero Ty.W32))) in
      let l, r = links.(i) in
      if marked <> seen.(i) then
        Result.error (Printf.sprintf "%s: node %d mark=%b reachable=%b" (describe ()) i marked seen.(i))
      else if not (Value.equal (field "l") (Value.vptr addrs.(l) node)) then
        Result.error (Printf.sprintf "%s: node %d l-pointer not restored" (describe ()) i)
      else if not (Value.equal (field "r") (Value.vptr addrs.(r) node)) then
        Result.error (Printf.sprintf "%s: node %d r-pointer not restored" (describe ()) i)
      else Result.ok ()
    in
    let rec all i =
      if i > k then Result.ok ()
      else begin
        match check_node i with
        | Result.Ok () -> all (i + 1)
        | e -> e
      end
    in
    all 1
  | Interp.Fails m -> Result.error (Printf.sprintf "%s: guard failed (%s)" (describe ()) m)
  | Interp.Diverges -> Result.error (Printf.sprintf "%s: diverged" (describe ()))
  | Interp.Throws _ -> Result.error "threw"
  | Interp.Gets_stuck m -> Result.error ("stuck: " ^ m)

(* Enumerate all link structures for k nodes (each of l, r ranges over
   0..k), all roots; for larger k, sample randomly. *)
let run ?(exhaustive_nodes = 3) ?(random_nodes = 6) ?(random_samples = 300) () : report =
  let res = Driver.run Csources.schorr_waite_c in
  let checked = ref 0 in
  let failures = ref [] in
  let note r = match r with Result.Ok () -> incr checked | Result.Error e -> failures := e :: !failures in
  (* exhaustive small scope *)
  for k = 0 to exhaustive_nodes do
    let links = Array.make (k + 1) (0, 0) in
    let rec assign i =
      if i > k then begin
        for root = 0 to k do
          if root = 0 then begin
            (* NULL root: must terminate immediately, nothing marked *)
            match
              Interp.run_func res.Driver.final_prog ~fuel:10_000 State.empty "schorr_waite"
                [ Value.null node ]
            with
            | Interp.Returns _ -> incr checked
            | _ -> failures := "null root misbehaved" :: !failures
          end
          else note (check_one res k links root)
        done
      end
      else
        for l = 0 to k do
          for r = 0 to k do
            links.(i) <- (l, r);
            assign (i + 1)
          done
        done
    in
    assign 1
  done;
  (* random larger graphs *)
  let rand = Random.State.make [| 0x5C0; exhaustive_nodes |] in
  for _ = 1 to random_samples do
    let k = 1 + Random.State.int rand random_nodes in
    let links =
      Array.init (k + 1) (fun i ->
          if i = 0 then (0, 0)
          else (Random.State.int rand (k + 1), Random.State.int rand (k + 1)))
    in
    let root = 1 + Random.State.int rand k in
    note (check_one res k links root)
  done;
  { graphs_checked = !checked; failures = List.rev !failures; skipped_guard = 0 }
