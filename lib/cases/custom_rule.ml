module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module W = Ac_word
module B = Ac_bignum
module Rules = Ac_kernel.Rules
module J = Ac_kernel.Judgment
module Thm = Ac_kernel.Thm
module Wa = Autocorres.Wa
module Driver = Autocorres.Driver

(* The paper's rule-extension example (Sec 3.3): the C idiom

     x + y < x            (unsigned)

   tests whether the addition overflows.  Under plain word abstraction the
   user would be obliged to prove x + y does not overflow, "making the test
   useless"; the custom rule abstracts the test to

     UINT_MAX < x + y

   capturing the intent.  Here the rule is registered with the kernel (an
   explicit extension of the trusted rule base, as in the paper) and a
   matching strategy extension drives it. *)

let rule_name = "unsigned_overflow_test"

let uint_max w = B.pred (B.pow2 (W.bits w))

(* Kernel side: from abs_w_val P unat x x' and abs_w_val Q unat y y',
   conclude abs_w_val (P ∧ Q) id (UINT_MAX < x + y) (x' + y' < x'). *)
let () =
  Rules.register_custom_rule rule_name (fun _ctx prems ->
      match prems with
      | [ J.Abs_w_val (p, J.Cunat w1, a1, c1); J.Abs_w_val (q, J.Cunat w2, a2, c2) ]
        when w1 = w2 ->
        Result.ok
          (J.Abs_w_val
             ( E.and_e p q,
               J.Cid,
               E.Binop (E.Lt, E.big_nat_e (uint_max w1), E.Binop (E.Add, a1, a2)),
               E.Binop (E.Lt, E.Binop (E.Add, c1, c2), c1) ))
      | _ -> Result.error "expected two unat premises of equal width")

(* Strategy side: recognise the concrete idiom and drive the kernel rule. *)
let strategy_extension : Wa.strategy =
  {
    Wa.customs =
      [
        (fun ctx e ->
          match e with
          | E.Binop (E.Lt, E.Binop (E.Add, x, y), x') when E.equal x x' -> (
            match Wa.word_hint x with
            | Some (Ty.Unsigned, w) -> (
              match
                ( Wa.wv_ideal Wa.default_strategy ctx (Ty.Unsigned, w) x,
                  Wa.wv_ideal Wa.default_strategy ctx (Ty.Unsigned, w) y )
              with
              | Some tx, Some ty -> Thm.by_opt ctx (Rules.W_custom rule_name) [ tx; ty ]
              | _ -> None)
            | _ -> None)
          | _ -> None);
      ];
  }

(* The demonstration program: returns 1 iff x + y would overflow. *)
let overflow_test_c =
  "unsigned would_overflow(unsigned x, unsigned y)\n\
   {\n\
  \  if (x + y < x)\n\
  \    return 1u;\n\
  \  return 0u;\n\
   }\n"

type demo = {
  without_rule : string; (* abstraction using only the built-in rule set *)
  with_rule : string; (* abstraction with the registered extension *)
}

let run () : demo =
  let show options =
    let res = Driver.run ~options overflow_test_c in
    match Driver.find_result res "would_overflow" with
    | Some fr -> Ac_monad.Mprint.func_to_string fr.Driver.fr_final
    | None -> "<missing>"
  in
  {
    without_rule = show Driver.default_options;
    with_rule = show { Driver.default_options with strategy = strategy_extension };
  }
