module B = Ac_bignum
module T = Ac_prover.Term
module Seq = Ac_prover.Seq

(* The list lemma library: the "List definitions" component of the paper's
   Table 6.

   Mehta and Nipkow's proof rests on a small library of facts about the
   [List] predicate (here [islist], extended — as the paper describes in
   Sec 5.2 (ii) — to assert that every list element is a *valid* pointer).
   In Isabelle these lemmas are proved by induction; in this reproduction
   each lemma is validated by exhaustive-within-bounds and randomised
   testing over structured heap models (see DESIGN.md: interactive proof →
   bounded validation), and its *instances* are then fed to the automatic
   prover as hypotheses, playing the role of `simp add:` lemmas. *)

type lemma = {
  name : string;
  params : (string * T.sort) list;
  statement : T.t; (* free variables = params, implicitly universal *)
  sampler : Random.State.t -> (string * T.value) list;
}

let h = T.Var ("h", T.Sarr T.Sint)
let v = T.Var ("v", T.Sarr T.Sbool)
let p = T.Var ("p", T.Sint)
let q = T.Var ("q", T.Sint)
let x = T.Var ("x", T.Sint)
let y = T.Var ("y", T.Sint)
let ps = T.Var ("ps", T.Sseq)
let qs = T.Var ("qs", T.Sseq)
let sa = T.Var ("sa", T.Sseq)
let sb = T.Var ("sb", T.Sseq)
let sc = T.Var ("sc", T.Sseq)

(* ------------------------------------------------------------------ *)
(* Samplers: structured random heap lists (sometimes corrupted, so that
   hypotheses are genuinely exercised in both directions). *)

let sample_int rand = B.of_int (Random.State.int rand 9)

let sample_seq rand =
  T.Vseq (List.init (Random.State.int rand 4) (fun _ -> T.Vint (sample_int rand)))

(* A well-formed list heap: distinct non-zero addresses chained to null,
   all elements valid. *)
let sample_list rand =
  let pool = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let shuffled =
    List.sort (fun _ _ -> if Random.State.bool rand then 1 else -1) pool
  in
  let n = Random.State.int rand 5 in
  let chain = List.filteri (fun i _ -> i < n) shuffled in
  let rec links = function
    | [] -> []
    | [ last ] -> [ (B.of_int last, T.Vint B.zero) ]
    | a :: (b :: _ as rest) -> (B.of_int a, T.Vint (B.of_int b)) :: links rest
  in
  let next = T.Varr (links chain, T.Vint B.zero) in
  let valid =
    T.Varr (List.map (fun a -> (B.of_int a, T.Vbool true)) chain, T.Vbool (Random.State.bool rand))
  in
  let ptr = match chain with [] -> B.zero | a :: _ -> B.of_int a in
  let seq = T.Vseq (List.map (fun a -> T.Vint (B.of_int a)) chain) in
  (next, valid, ptr, seq, chain)

(* Corrupt a structured sample with some probability so the lemma's
   hypotheses also get falsified during testing. *)
let maybe_corrupt rand (next, valid, ptr, seq, chain) =
  match Random.State.int rand 5 with
  | 0 -> (next, valid, sample_int rand, seq, chain)
  | 1 -> (next, valid, ptr, sample_seq rand, chain)
  | 2 ->
    let broken =
      match next with
      | T.Varr (entries, d) -> T.Varr ((sample_int rand, T.Vint (sample_int rand)) :: entries, d)
      | other -> other
    in
    (broken, valid, ptr, seq, chain)
  | _ -> (next, valid, ptr, seq, chain)

let list_sampler extra rand =
  let next, valid, ptr, seq, chain = maybe_corrupt rand (sample_list rand) in
  [ ("h", next); ("v", valid); ("p", T.Vint ptr); ("ps", seq) ]
  @ extra rand chain

let no_extra _ _ = []

(* a second, disjoint chain through the same heap *)
let second_list rand chain =
  let pool = List.filter (fun a -> not (List.mem a chain)) [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let n = Random.State.int rand (1 + List.length pool) in
  let chain2 = List.filteri (fun i _ -> i < n) pool in
  let seq2 =
    if Random.State.int rand 4 = 0 then sample_seq rand
    else T.Vseq (List.map (fun a -> T.Vint (B.of_int a)) chain2)
  in
  [ ("q", T.Vint (match chain2 with [] -> B.zero | a :: _ -> B.of_int a));
    ("qs", seq2); ("x", T.Vint (sample_int rand)); ("y", T.Vint (sample_int rand)) ]

(* ------------------------------------------------------------------ *)
(* The lemmas. *)

let islist = Seq.islist
let lemmas : lemma list =
  [
    {
      name = "islist_nil_ptr";
      params = [ ("h", T.Sarr T.Sint); ("v", T.Sarr T.Sbool); ("p", T.Sint); ("ps", T.Sseq) ];
      statement =
        T.imp_t
          (T.and_t (islist h v p ps) (T.eq_t p T.zero))
          (T.eq_t ps Seq.nil);
      sampler = list_sampler no_extra;
    };
    {
      name = "islist_unfold";
      params = [ ("h", T.Sarr T.Sint); ("v", T.Sarr T.Sbool); ("p", T.Sint); ("ps", T.Sseq) ];
      statement =
        T.imp_t
          (T.and_t (islist h v p ps) (T.not_t (T.eq_t p T.zero)))
          (T.conj
             [ T.eq_t ps (Seq.cons p (Seq.stail ps));
               islist h v (T.select_t h p) (Seq.stail ps);
               T.select_t v p;
               T.not_t (Seq.mem p (Seq.stail ps));
               T.eq_t (Seq.len ps) (T.add_t (Seq.len (Seq.stail ps)) T.one);
               T.le_t T.zero (Seq.len (Seq.stail ps));
               Seq.mem p ps ]);
      sampler = list_sampler no_extra;
    };
    {
      name = "islist_frame";
      params =
        [ ("h", T.Sarr T.Sint); ("v", T.Sarr T.Sbool); ("q", T.Sint); ("qs", T.Sseq);
          ("x", T.Sint); ("y", T.Sint) ];
      statement =
        T.imp_t
          (T.and_t (islist h v q qs) (T.not_t (Seq.mem x qs)))
          (islist (T.store_t h x y) v q qs);
      sampler =
        (fun rand ->
          (* q/qs are the constructed chain; x is sometimes inside it *)
          let next, valid, _, _, chain = maybe_corrupt rand (sample_list rand) in
          [ ("h", next); ("v", valid);
            ("q", T.Vint (match chain with [] -> B.zero | a :: _ -> B.of_int a));
            ("qs", T.Vseq (List.map (fun a -> T.Vint (B.of_int a)) chain));
            ("x", T.Vint (sample_int rand)); ("y", T.Vint (sample_int rand)) ]);
    };
    {
      name = "disjoint_mem";
      params = [ ("sa", T.Sseq); ("sb", T.Sseq); ("x", T.Sint) ];
      statement =
        T.imp_t (T.and_t (Seq.disjoint sa sb) (Seq.mem x sa)) (T.not_t (Seq.mem x sb));
      sampler =
        (fun rand -> [ ("sa", sample_seq rand); ("sb", sample_seq rand); ("x", T.Vint (sample_int rand)) ]);
    };
    {
      name = "disjoint_tail_cons";
      params =
        [ ("h", T.Sarr T.Sint); ("v", T.Sarr T.Sbool); ("p", T.Sint); ("ps", T.Sseq);
          ("qs", T.Sseq) ];
      statement =
        T.imp_t
          (T.conj [ islist h v p ps; T.not_t (T.eq_t p T.zero); Seq.disjoint ps qs ])
          (Seq.disjoint (Seq.stail ps) (Seq.cons p qs));
      sampler =
        list_sampler (fun rand chain ->
            (* a disjoint-by-construction second sequence, sometimes
               corrupted by [second_list] itself *)
            let extras = second_list rand chain in
            [ ("qs", List.assoc "qs" extras) ]);
    };
    {
      name = "disjoint_nil";
      params = [ ("sa", T.Sseq) ];
      statement = Seq.disjoint sa Seq.nil;
      sampler = (fun rand -> [ ("sa", sample_seq rand) ]);
    };
    {
      name = "append_assoc";
      params = [ ("sa", T.Sseq); ("sb", T.Sseq); ("sc", T.Sseq) ];
      statement =
        T.eq_t (Seq.append (Seq.append sa sb) sc) (Seq.append sa (Seq.append sb sc));
      sampler =
        (fun rand -> [ ("sa", sample_seq rand); ("sb", sample_seq rand); ("sc", sample_seq rand) ]);
    };
    {
      name = "rev_step";
      (* the induction step of the reversal argument:
         rev s0 = rev sa @ sb and sa = x#sc give rev s0 = rev sc @ (x#sb) *)
      params =
        [ ("sa", T.Sseq); ("sb", T.Sseq); ("sc", T.Sseq); ("x", T.Sint); ("s0", T.Sseq) ];
      statement =
        (let s0 = T.Var ("s0", T.Sseq) in
         T.imp_t
           (T.and_t
              (T.eq_t (Seq.rev s0) (Seq.append (Seq.rev sa) sb))
              (T.eq_t sa (Seq.cons x sc)))
           (T.eq_t (Seq.rev s0) (Seq.append (Seq.rev sc) (Seq.cons x sb))));
      sampler =
        (fun rand ->
          (* bias towards satisfying instances: derive s0/sa from sc *)
          let vseq v = match v with T.Vseq l -> l | _ -> [] in
          let sc_v = sample_seq rand in
          let x_v = T.Vint (sample_int rand) in
          let sa_v =
            if Random.State.int rand 4 = 0 then sample_seq rand
            else T.Vseq (x_v :: vseq sc_v)
          in
          let sb_v = sample_seq rand in
          let s0_v =
            if Random.State.int rand 4 = 0 then sample_seq rand
            else T.Vseq (List.rev (List.rev (vseq sb_v) @ List.rev (vseq sa_v)))
            (* rev s0 = rev sa @ sb  ⟺  s0 = rev sb @ sa *)
          in
          [ ("sa", sa_v); ("sb", sb_v); ("sc", sc_v); ("x", x_v); ("s0", s0_v) ]);
    };
    {
      name = "rev_done";
      (* the exit step: rev s0 = rev sa @ sb and sa = nil give rev s0 = sb *)
      params = [ ("sa", T.Sseq); ("sb", T.Sseq); ("s0", T.Sseq) ];
      statement =
        (let s0 = T.Var ("s0", T.Sseq) in
         T.imp_t
           (T.and_t
              (T.eq_t (Seq.rev s0) (Seq.append (Seq.rev sa) sb))
              (T.eq_t sa Seq.nil))
           (T.eq_t (Seq.rev s0) sb));
      sampler =
        (fun rand ->
          let vseq v = match v with T.Vseq l -> l | _ -> [] in
          let sa_v = if Random.State.int rand 3 = 0 then sample_seq rand else T.Vseq [] in
          let sb_v = sample_seq rand in
          let s0_v =
            if Random.State.int rand 4 = 0 then sample_seq rand
            else T.Vseq (List.rev (List.rev (vseq sb_v) @ List.rev (vseq sa_v)))
          in
          [ ("sa", sa_v); ("sb", sb_v); ("s0", s0_v) ]);
    };
    {
      name = "rev_append";
      params = [ ("sa", T.Sseq); ("sb", T.Sseq) ];
      statement =
        T.eq_t (Seq.rev (Seq.append sa sb)) (Seq.append (Seq.rev sb) (Seq.rev sa));
      sampler = (fun rand -> [ ("sa", sample_seq rand); ("sb", sample_seq rand) ]);
    };
    {
      name = "len_nonneg";
      params = [ ("sa", T.Sseq) ];
      statement = T.le_t T.zero (Seq.len sa);
      sampler = (fun rand -> [ ("sa", sample_seq rand) ]);
    };
  ]

let find name =
  match List.find_opt (fun l -> String.equal l.name name) lemmas with
  | Some l -> l
  | None -> invalid_arg ("unknown lemma " ^ name)

(* An instance of a lemma, to be assumed as a hypothesis.  All parameters
   must be instantiated. *)
let instantiate name (args : (string * T.t) list) : T.t =
  let l = find name in
  List.iter
    (fun (param, _) ->
      if not (List.mem_assoc param args) then
        invalid_arg (Printf.sprintf "lemma %s: parameter %s not instantiated" name param))
    l.params;
  T.subst args l.statement

(* ------------------------------------------------------------------ *)
(* Validation by testing. *)

let validate ?(trials = 2000) (l : lemma) : (unit, string) result =
  let rand = Random.State.make [| 0x11DEA; Hashtbl.hash l.name |] in
  let rec go n =
    if n = 0 then Result.ok ()
    else begin
      let env = l.sampler rand in
      match T.eval ~interp:Seq.interp env l.statement with
      | T.Vbool true -> go (n - 1)
      | T.Vbool false ->
        Result.error
          (Printf.sprintf "lemma %s falsified (%s)" l.name
             (String.concat ", " (List.map fst env)))
      | _ -> Result.error (Printf.sprintf "lemma %s: non-boolean statement" l.name)
      | exception T.Eval_failed m ->
        Result.error (Printf.sprintf "lemma %s: evaluation failed (%s)" l.name m)
    end
  in
  go trials

let validate_all ?trials () : (unit, string) result =
  List.fold_left
    (fun acc l -> match acc with Result.Ok () -> validate ?trials l | e -> e)
    (Result.Ok ()) lemmas
