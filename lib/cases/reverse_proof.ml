module B = Ac_bignum
module T = Ac_prover.Term
module Seq = Ac_prover.Seq
module Solver = Ac_prover.Solver
module Vc = Ac_hoare.Vc
module Driver = Autocorres.Driver
module Ty = Ac_lang.Ty

(* The in-place list-reversal case study (paper Sec 5.2).

   We port Mehta and Nipkow's high-level proof to the AutoCorres output of
   the C implementation (Fig 6), resolving the three differences the paper
   enumerates:

   (i)   Null is the C NULL sentinel (address 0) rather than a datatype
         constructor — visible in [islist]'s base case;
   (ii)  the [List] predicate additionally asserts that every element is a
         valid pointer, which discharges the generated guards;
   (iii) the proof is extended from partial to total correctness with the
         measure |ps| (the unreversed suffix shrinks).

   The invariant and its ghost sequences ps/qs are exactly M/N's:

     ∃ps qs. List next p ps ∧ List next q qs ∧
             set ps ∩ set qs = ∅ ∧ rev Ps = rev ps @ qs                 *)

type report = {
  vcs : (string * Solver.outcome) list;
  all_proved : bool;
  lemma_check : (unit, string) result;
}

let node = Ty.Cstruct "node"

let next_heap st = Vc.state_get st (Vc.field_heap_name "node" "next")
let validity st = Vc.state_get st (Vc.valid_name node)

let ps0 = T.Var ("Ps0", T.Sseq)

let ghost gs name = List.assoc name gs
let iter binds name = Vc.tv_to_term (List.assoc name binds)

let invariant : Vc.invariant =
  {
    Vc.inv =
      (fun binds gs st ->
        let list = iter binds "list" and rv = iter binds "rev" in
        let ps = ghost gs "ps" and qs = ghost gs "qs" in
        T.conj
          [
            Seq.islist (next_heap st) (validity st) list ps;
            Seq.islist (next_heap st) (validity st) rv qs;
            Seq.disjoint ps qs;
            T.eq_t (Seq.rev ps0) (Seq.append (Seq.rev ps) qs);
          ]);
    measure = Some (fun _ gs _ -> Seq.len (ghost gs "ps"));
    ghosts = [ ("ps", T.Sseq); ("qs", T.Sseq) ];
    ghost_init = (fun _ _ -> [ ("ps", ps0); ("qs", Seq.nil) ]);
    ghost_step =
      (fun old_binds old_gs _old_st _new_binds _new_st ->
        (* the head of ps moves to the front of qs *)
        let list = iter old_binds "list" in
        [ ("ps", Seq.stail (ghost old_gs "ps"));
          ("qs", Seq.cons list (ghost old_gs "qs")) ]);
    hints =
      (fun binds gs st ->
        let list = iter binds "list" and rv = iter binds "rev" in
        let ps = ghost gs "ps" and qs = ghost gs "qs" in
        let h = next_heap st and v = validity st in
        [
          (* the M/N library lemmas, instantiated for this iteration *)
          Listlib.instantiate "islist_unfold"
            [ ("h", h); ("v", v); ("p", list); ("ps", ps) ];
          Listlib.instantiate "islist_frame"
            [ ("h", h); ("v", v); ("q", T.select_t h list); ("qs", Seq.stail ps);
              ("x", list); ("y", rv) ];
          Listlib.instantiate "islist_frame"
            [ ("h", h); ("v", v); ("q", rv); ("qs", qs); ("x", list); ("y", rv) ];
          Listlib.instantiate "disjoint_mem" [ ("sa", ps); ("sb", qs); ("x", list) ];
          Listlib.instantiate "disjoint_tail_cons"
            [ ("h", h); ("v", v); ("p", list); ("ps", ps); ("qs", qs) ];
          Listlib.instantiate "rev_step"
            [ ("s0", ps0); ("sa", ps); ("sb", qs); ("sc", Seq.stail ps); ("x", list) ];
          Listlib.instantiate "rev_done" [ ("s0", ps0); ("sa", ps); ("sb", qs) ];
          Listlib.instantiate "islist_nil_ptr"
            [ ("h", h); ("v", v); ("p", list); ("ps", ps) ];
        ]);
  }

let triple : Vc.triple =
  {
    Vc.t_pre =
      (fun args st ->
        match args with
        | [ list ] -> Seq.islist (next_heap st) (validity st) (Vc.tv_to_term list) ps0
        | _ -> assert false);
    t_post =
      (fun _args rv _st0 st ->
        Seq.islist (next_heap st) (validity st) (Vc.tv_to_term rv) (Seq.rev ps0));
  }

(* Run the whole case study: pipeline, VC generation, discharge. *)
let run ?(check_lemmas = true) () : report =
  let res = Driver.run Csources.reverse_c in
  let cfg = Vc.make_config res.Driver.final_prog in
  Vc.add_invariant cfg "reverse" 0 invariant;
  let func_hints = [ Listlib.instantiate "disjoint_nil" [ ("sa", ps0) ] ] in
  let vcs = Vc.func_vcs ~hints:func_hints cfg "reverse" triple in
  let outcomes = List.map (fun (label, vc) -> (label, fst (Solver.prove vc))) vcs in
  {
    vcs = outcomes;
    all_proved = List.for_all (fun (_, o) -> Solver.is_proved o) outcomes;
    lemma_check = (if check_lemmas then Listlib.validate_all () else Result.Ok ());
  }
