(* The C sources of the paper's examples and case studies, verbatim where
   the paper shows them (Figs 2, 3, 6, 8; Secs 3.2, 4.3, 4.6, 5.2, 5.3). *)

(* Fig 2 *)
let max_c = "int max(int a, int b) {\n  if (a < b)\n    return b;\n  return a;\n}\n"

(* Sec 3.3: Euclid's algorithm, whose abstraction equals gcd on ℕ *)
let gcd_c =
  "unsigned gcd(unsigned a, unsigned b) {\n\
  \  while (b != 0u) {\n\
  \    unsigned t = b;\n\
  \    b = a % b;\n\
  \    a = t;\n\
  \  }\n\
  \  return a;\n\
   }\n"

(* Fig 3 / Fig 5 *)
let swap_c =
  "void swap(unsigned *a, unsigned *b)\n\
   {\n\
  \  unsigned t = *a;\n\
  \  *a = *b;\n\
  \  *b = t;\n\
   }\n"

(* Sec 3.2: the binary-search midpoint *)
let mid_c =
  "unsigned mid(unsigned l, unsigned r)\n\
   {\n\
  \  unsigned m = (l + r) / 2u;\n\
  \  return m;\n\
   }\n"

(* Sec 4.3: Suzuki's challenge *)
let suzuki_c =
  "struct node {\n\
  \  struct node *next;\n\
  \  unsigned data;\n\
   };\n\
   unsigned suzuki(struct node *w, struct node *x, struct node *y, struct node *z)\n\
   {\n\
  \  w->next = x; x->next = y; y->next = z; x->next = z;\n\
  \  w->data = 1u; x->data = 2u; y->data = 3u; z->data = 4u;\n\
  \  return w->next->next->data;\n\
   }\n"

(* Fig 6: in-place list reversal *)
let reverse_c =
  "struct node {\n\
  \  struct node *next;\n\
  \  unsigned data;\n\
   };\n\
   struct node *reverse(struct node *list) {\n\
  \  struct node *rev = NULL;\n\
  \  while (list) {\n\
  \    struct node *next = list->next;\n\
  \    list->next = rev; rev = list; list = next;\n\
  \  }\n\
  \  return rev;\n\
   }\n"

(* Fig 8: the Schorr-Waite graph-marking algorithm *)
let schorr_waite_c =
  "struct node {\n\
  \  struct node *l;\n\
  \  struct node *r;\n\
  \  unsigned m;\n\
  \  unsigned c;\n\
   };\n\
   void schorr_waite(struct node *root) {\n\
  \  struct node *t = root, *p = NULL, *q;\n\
  \  while (p != NULL || (t != NULL && !t->m)) {\n\
  \    if (t == NULL || t->m) {\n\
  \      if (p->c) {\n\
  \        q = t; t = p; p = p->r; t->r = q;\n\
  \      } else {\n\
  \        q = t; t = p->r; p->r = p->l;\n\
  \        p->l = q; p->c = 1u;\n\
  \      }\n\
  \    } else {\n\
  \      q = p; p = t; t = t->l; p->l = q;\n\
  \      p->m = 1u; p->c = 0u;\n\
  \    }\n\
  \  }\n\
   }\n"

(* Sec 4.6: a type-unsafe memset, kept at the byte level, plus a lifted
   caller that reaches it through exec_concrete *)
let memset_c =
  "void my_memset(unsigned char *p, unsigned char v, unsigned n)\n\
   {\n\
  \  unsigned i = 0u;\n\
  \  while (i < n) {\n\
  \    p[i] = v;\n\
  \    i = i + 1u;\n\
  \  }\n\
   }\n"

let memset_mixed_c =
  memset_c
  ^ "unsigned zero_cell(unsigned *p)\n\
     {\n\
    \  my_memset((unsigned char *) p, 0, 4u);\n\
    \  return *p;\n\
     }\n"

(* Sec 3.2's motivating context: a binary search using the midpoint
   computation.  The early return inside the loop exercises the
   exception-monad output path. *)
let binary_search_c =
  "int binary_search(unsigned *a, unsigned n, unsigned key)\n\
   {\n\
  \  unsigned l = 0u;\n\
  \  unsigned r = n;\n\
  \  while (l < r) {\n\
  \    unsigned m = (l + r) / 2u;\n\
  \    if (a[m] == key)\n\
  \      return (int) m;\n\
  \    if (a[m] < key)\n\
  \      l = m + 1u;\n\
  \    else\n\
  \      r = m;\n\
  \  }\n\
  \  return -1;\n\
   }\n"

(* A pair of helpers exercising globals and calls. *)
let counter_c =
  "unsigned counter;\n\
   void bump(unsigned by) { counter = counter + by; }\n\
   unsigned twice(unsigned x) { bump(x); bump(x); return counter; }\n"

(* Flow-sensitive UB guards: provable only by following the branch
   conditions, so the abstract-interpretation discharge pass removes them
   where the syntactic rewrites cannot. *)
let shift_guarded_c =
  "unsigned shl_guarded(unsigned x, unsigned n) {\n\
  \  if (n < 32u) { return x << n; }\n\
  \  return 0u;\n\
   }\n\
   int sar_guarded(int x, int n) {\n\
  \  if (0 <= n) { if (n < 31) { return x >> n; } }\n\
  \  return 0;\n\
   }\n"

let div_guarded_c =
  "int div_pos(int a, int b) {\n\
  \  if (b > 0) { return a / b; }\n\
  \  return 0;\n\
   }\n\
   unsigned bucket(unsigned h, unsigned n) {\n\
  \  if (n != 0u) { return h % n; }\n\
  \  return 0u;\n\
   }\n"

(* Interprocedural discharge: the callee's summary bounds its return
   value (or its parity), so the caller-side shift/div guards are provable
   only with facts carried across the call. *)
let clamp_shift_c =
  "unsigned clamp(unsigned x) {\n\
  \  if (x > 15u) { return 15u; }\n\
  \  return x;\n\
   }\n\
   unsigned shl_clamped(unsigned v, unsigned n) {\n\
  \  unsigned k;\n\
  \  k = clamp(n);\n\
  \  return v << k;\n\
   }\n\
   unsigned div_clamped(unsigned v, unsigned n) {\n\
  \  unsigned d;\n\
  \  d = clamp(n);\n\
  \  d = d + 1u;\n\
  \  return v / d;\n\
   }\n"

let odd_divisor_c =
  "unsigned make_odd(unsigned x) {\n\
  \  return (x * 2u) + 1u;\n\
   }\n\
   unsigned halve_by_odd(unsigned v, unsigned x) {\n\
  \  unsigned d;\n\
  \  d = make_odd(x);\n\
  \  return v / d;\n\
   }\n"

(* A recursive callee: the summary fixpoint must converge over the SCC
   cycle before the caller's shift guard becomes provable. *)
let rec_bound_c =
  "unsigned walk_up(unsigned n) {\n\
  \  unsigned m;\n\
  \  unsigned r;\n\
  \  if (n >= 8u) { return 8u; }\n\
  \  m = n + 1u;\n\
  \  r = walk_up(m);\n\
  \  return r;\n\
   }\n\
   unsigned shl_walked(unsigned v) {\n\
  \  unsigned k;\n\
  \  k = walk_up(0u);\n\
  \  return v << k;\n\
   }\n"

let all : (string * string) list =
  [
    ("max", max_c);
    ("gcd", gcd_c);
    ("swap", swap_c);
    ("mid", mid_c);
    ("suzuki", suzuki_c);
    ("reverse", reverse_c);
    ("schorr_waite", schorr_waite_c);
    ("binary_search", binary_search_c);
    ("memset", memset_c);
    ("memset_mixed", memset_mixed_c);
    ("counter", counter_c);
    ("shift_guarded", shift_guarded_c);
    ("div_guarded", div_guarded_c);
    ("clamp_shift", clamp_shift_c);
    ("odd_divisor", odd_divisor_c);
    ("rec_bound", rec_bound_c);
  ]
