(* Fixed-width two's-complement machine words with C99 semantics.

   This is the concrete arithmetic that the paper's word-abstraction phase
   (Sec 3) removes from view.  Words are represented by their *unsigned*
   representative in [0, 2^width); the signedness lives in operations, not in
   the value, exactly as on hardware.  Signed operations that would overflow
   are undefined behaviour in C: here they return a value (wraparound) and it
   is the translation layer's job to emit guards ruling them out, mirroring
   Norrish's parser. *)

module B = Ac_bignum

type width = W8 | W16 | W32 | W64

type sign = Signed | Unsigned

let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let width_equal (a : width) (b : width) = a = b

let width_compare a b = compare (bits a) (bits b)

let width_of_bits = function
  | 8 -> Some W8
  | 16 -> Some W16
  | 32 -> Some W32
  | 64 -> Some W64
  | _ -> None

let width_name w = Printf.sprintf "word%d" (bits w)

let sign_equal (a : sign) (b : sign) = a = b

type t = {
  width : width;
  v : B.t; (* unsigned representative, 0 <= v < 2^width *)
}

let norm width v = { width; v = B.mod_pow2 v (bits width) }

let of_bignum width v = norm width v
let of_int width n = norm width (B.of_int n)

let zero width = of_int width 0
let one width = of_int width 1

let width_of w = w.width

(* The unsigned value: the paper's [unat]. *)
let unat w = w.v

(* The signed value: the paper's [sint]. *)
let sint w = B.signed_mod_pow2 w.v (bits w.width)

let value sign w = match sign with Unsigned -> unat w | Signed -> sint w

let to_int_exn w = B.to_int_exn w.v

let equal a b = width_equal a.width b.width && B.equal a.v b.v

let compare_u a b = B.compare a.v b.v
let compare_s a b = B.compare (sint a) (sint b)

let compare sign = match sign with Unsigned -> compare_u | Signed -> compare_s

(* Range bounds, per width and signedness: INT_MIN/INT_MAX/UINT_MAX etc. *)
let min_value sign width =
  match sign with
  | Unsigned -> B.zero
  | Signed -> B.neg (B.pow2 (bits width - 1))

let max_value sign width =
  match sign with
  | Unsigned -> B.pred (B.pow2 (bits width))
  | Signed -> B.pred (B.pow2 (bits width - 1))

let in_range sign width v = B.le (min_value sign width) v && B.le v (max_value sign width)

let max_word width = { width; v = max_value Unsigned width }

(* ------------------------------------------------------------------ *)
(* Arithmetic.  Every operation computes the exact ideal result of the
   operands' values (signed or unsigned view) and reduces modulo 2^width.
   [overflows] reports whether that reduction changed the value — the
   condition the guards emitted by the C translation test for. *)

let lift2 sign f a b =
  assert (width_equal a.width b.width);
  norm a.width (f (value sign a) (value sign b))

let ideal2 sign f a b = f (value sign a) (value sign b)

let add sign a b = lift2 sign B.add a b
let sub sign a b = lift2 sign B.sub a b
let mul sign a b = lift2 sign B.mul a b

let neg sign a = norm a.width (B.neg (value sign a))

(* C99 6.5.5: signed division truncates toward zero; unsigned is plain
   flooring (values are non-negative so the two agree). *)
let div sign a b =
  if B.is_zero b.v then raise B.Division_by_zero;
  lift2 sign B.div a b

let rem sign a b =
  if B.is_zero b.v then raise B.Division_by_zero;
  lift2 sign B.rem a b

let overflows2 sign f a b =
  let exact = ideal2 sign f a b in
  not (in_range sign a.width exact)

let add_overflows sign a b = overflows2 sign B.add a b
let sub_overflows sign a b = overflows2 sign B.sub a b
let mul_overflows sign a b = overflows2 sign B.mul a b

(* INT_MIN / -1 overflows; that is the only divisive overflow case. *)
let div_overflows sign a b =
  match sign with
  | Unsigned -> false
  | Signed -> B.is_zero (B.add (sint b) B.one) && B.equal (sint a) (min_value Signed a.width)

let lognot a = norm a.width (B.sub (max_value Unsigned a.width) a.v)

let logand a b = lift2 Unsigned B.logand a b
let logor a b = lift2 Unsigned B.logor a b
let logxor a b = lift2 Unsigned B.logxor a b

(* Shifts.  C99 6.5.7: the shift amount must be in [0, width); shifting a
   signed negative left, or shifting by >= width, is UB — we still return the
   wrapped value and let guards exclude it. *)
let shift_amount_ok a n = B.le B.zero n && B.lt n (B.of_int (bits a.width))

let shift_left a n =
  let n = Stdlib.min (B.to_int_exn (B.mod_pow2 n 16)) 512 in
  norm a.width (B.shift_left a.v n)

let shift_right_u a n =
  let n = Stdlib.min (B.to_int_exn (B.mod_pow2 n 16)) 512 in
  norm a.width (B.shift_right a.v n)

(* Arithmetic shift right replicates the sign bit. *)
let shift_right_s a n =
  let n = Stdlib.min (B.to_int_exn (B.mod_pow2 n 16)) 512 in
  norm a.width (B.shift_right (sint a) n)

let shift_right sign = match sign with Unsigned -> shift_right_u | Signed -> shift_right_s

(* Casts (C99 6.3.1.3).  To unsigned: reduce mod 2^width.  To signed: if the
   value fits, keep it; otherwise implementation-defined — we use the
   universal two's-complement truncation, which the paper's model ("matches a
   two's-complement 32-bit system") also assumes. *)
let cast ~to_sign ~to_width src_sign w =
  let v = value src_sign w in
  ignore to_sign;
  norm to_width v

let cast_value ~to_sign ~to_width v =
  match to_sign with
  | Unsigned -> B.mod_pow2 v (bits to_width)
  | Signed -> B.signed_mod_pow2 v (bits to_width)

let is_zero w = B.is_zero w.v

let to_bool w = not (is_zero w)

(* Byte-level view, little-endian: used by the byte-addressed heap model. *)
let to_bytes w =
  let n = bits w.width / 8 in
  List.init n (fun i -> B.to_int_exn (B.mod_pow2 (B.shift_right w.v (8 * i)) 8))

let of_bytes width bytes =
  let v =
    List.fold_left
      (fun (acc, i) b -> (B.add acc (B.shift_left (B.of_int (b land 0xff)) (8 * i)), i + 1))
      (B.zero, 0) bytes
    |> fst
  in
  norm width v

let pp fmt w = Format.fprintf fmt "0x%s:%s" (B.to_string w.v) (width_name w.width)

let to_string_u w = B.to_string w.v
let to_string_s w = B.to_string (sint w)

let hash w = Hashtbl.hash (w.width, B.hash w.v)
