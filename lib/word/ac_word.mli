(** Fixed-width two's-complement machine words with C99 semantics.

    Words carry their width and are stored as the unsigned representative in
    [0, 2{^width}); signedness is a property of each operation (the [sign]
    argument), mirroring hardware and the paper's [word32]/[sword32] split.
    Operations wrap; the [*_overflows] predicates are what the C translation
    layer turns into undefined-behaviour guards. *)

module B = Ac_bignum

type width = W8 | W16 | W32 | W64
type sign = Signed | Unsigned

type t

val bits : width -> int
val width_equal : width -> width -> bool
val width_compare : width -> width -> int
val width_of_bits : int -> width option
val width_name : width -> string
val sign_equal : sign -> sign -> bool

(** Construction reduces the argument modulo 2{^width}. *)
val of_bignum : width -> B.t -> t

val of_int : width -> int -> t
val zero : width -> t
val one : width -> t
val max_word : width -> t
val width_of : t -> width

(** The unsigned value — the paper's [unat] (always in [0, 2{^width})). *)
val unat : t -> B.t

(** The signed value — the paper's [sint] (in [-2{^w-1}, 2{^w-1})). *)
val sint : t -> B.t

val value : sign -> t -> B.t
val to_int_exn : t -> int
val is_zero : t -> bool
val to_bool : t -> bool

val equal : t -> t -> bool
val compare_u : t -> t -> int
val compare_s : t -> t -> int
val compare : sign -> t -> t -> int

val min_value : sign -> width -> B.t
val max_value : sign -> width -> B.t

(** [in_range sign width v] holds iff the ideal value [v] is representable. *)
val in_range : sign -> width -> B.t -> bool

val add : sign -> t -> t -> t
val sub : sign -> t -> t -> t
val mul : sign -> t -> t -> t
val neg : sign -> t -> t

(** @raise Ac_bignum.Division_by_zero *)
val div : sign -> t -> t -> t

(** @raise Ac_bignum.Division_by_zero *)
val rem : sign -> t -> t -> t

val add_overflows : sign -> t -> t -> bool
val sub_overflows : sign -> t -> t -> bool
val mul_overflows : sign -> t -> t -> bool
val div_overflows : sign -> t -> t -> bool

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** [shift_amount_ok w n] holds iff [0 <= n < width] — the C99 requirement. *)
val shift_amount_ok : t -> B.t -> bool

val shift_left : t -> B.t -> t
val shift_right_u : t -> B.t -> t
val shift_right_s : t -> B.t -> t
val shift_right : sign -> t -> B.t -> t

(** C99 6.3.1.3 integer conversion; two's-complement truncation. *)
val cast : to_sign:sign -> to_width:width -> sign -> t -> t

(** Reduce an ideal value into the range of the target type: the inverse of
    [unat]/[sint] used when word abstraction re-concretises a value. *)
val cast_value : to_sign:sign -> to_width:width -> B.t -> B.t

(** Little-endian byte decomposition, for the byte-addressed heap. *)
val to_bytes : t -> int list

val of_bytes : width -> int list -> t

val pp : Format.formatter -> t -> unit
val to_string_u : t -> string
val to_string_s : t -> string
val hash : t -> int
