module A = Ac_kernel.Absdom
module M = Ac_monad.M
module Layout = Ac_lang.Layout
module D = Domains

(* Interprocedural summary inference (the tentpole's untrusted half).

   Bottom-up over the call graph's SCC condensation ([Callgraph.sccs]
   emits callees first): each SCC gets an optimistic ascending fixpoint —
   claims start at ⊥ ("no outcome yet"), each round re-walks every member
   under the current claim table, joins for a few rounds then widens, and
   stops only after a full round in which no claim moved, so the
   committed table is self-consistent: walking any member under the
   final table yields outcomes within its claims.  That is exactly the
   property [Absdom.check_sums] verifies (by one walk per summary), so
   whatever this module emits either passes the kernel or is discarded
   wholesale — a bug here costs precision, never soundness.

   Around the bottom-up pass sits a bounded context-refinement loop:
   call sites report the abstract domains of their actuals (the
   [on_call] hook), and a callee observed under strictly-more-precise
   arguments gains an extra summary context (most specific first, capped
   at [!contexts] beyond the base ⊤-arguments context).  After any
   addition the whole table is recomputed bottom-up, so caller claims
   are always derived from the final callee claims.

   Budgets: SCC rounds are capped by the shared [!Domains.budget]
   (non-convergence drops that SCC's summaries — callers havoc across
   those calls, the intraprocedural result); refinement rounds are
   capped by [!rounds].  Either cap bumps [exhaustions], which the
   driver folds into `budget_hits`.  Inference never fails. *)

(* Outer context-refinement rounds; each round is a full bottom-up
   recompute, so this bounds whole-program passes. *)
let rounds = ref 4

(* Refined contexts per callee, beyond the base ⊤-arguments context. *)
let contexts = ref 3

(* Summary-budget exhaustions (SCC non-convergence, refinement cut
   short).  Reset by the driver per run, reported as budget hits. *)
let exhaustions = Atomic.make 0

(* Per-function inference statistics, for `acc stats --profile`. *)
type fstat = { fs_contexts : int; fs_size : int }

let base_args (f : M.func) : A.vdom list =
  List.map (fun (_, t) -> A.type_top t) f.M.params

(* Same binding the kernel's [check_sums] performs, so claims verify. *)
let bind_args (f : M.func) (args : A.vdom list) : A.aenv =
  List.fold_left2 (fun e (x, _) d -> A.set_var e x d) A.env_top f.M.params args

(* One walk of [f] from [args] under [table]: the claim it supports.
   Loop invariants are harvested from the solver so the kernel can
   replay them with a single inductiveness check each. *)
let claim_of lenv (table : A.sums) ~on_call (f : M.func) (args : A.vdom list) :
    A.summary =
  let tbl = Hashtbl.create 8 in
  let sv = D.fixpoint_solver ~sums:table ~on_call tbl in
  let _, out = A.walk lenv sv 0 (bind_args f args) f.M.body in
  let invs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    A.s_args = args;
    s_ret = (match out.A.onorm with Some (_, rv) -> rv | None -> A.Dtop);
    s_noret = out.A.onorm = None;
    s_throws = out.A.oexn <> None;
    s_invs = invs;
  }

exception Scc_budget

let compute (lenv : Layout.env) (fs : M.func list) :
    A.sums * (string * fstat) list =
  let cg = Callgraph.of_funcs fs in
  let fmap = List.map (fun f -> (f.M.name, f)) fs in
  let sccs = Callgraph.sccs cg in
  (* Contexts per function, most specific first; grows monotonically
     across refinement rounds. *)
  let ctxs : (string, A.vdom list list) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace ctxs f.M.name [ base_args f ]) fs;
  (* Call-site argument domains observed during the latest recompute, in
     walk order (compute is sequential, so this is deterministic and
     independent of [--jobs]). *)
  let calls : (string * A.vdom list) list ref = ref [] in
  let on_call g argds = calls := (g, argds) :: !calls in
  let recompute () : A.sums =
    calls := [];
    let committed = ref [] in
    List.iter
      (fun scc ->
        let members = List.filter_map (fun g -> List.assoc_opt g fmap) scc in
        if members <> [] then begin
          let claims =
            List.map
              (fun f ->
                ( f,
                  List.map
                    (fun c -> ref (D.sum_bottom c))
                    (Hashtbl.find ctxs f.M.name) ))
              members
          in
          let table_now () =
            List.map (fun (f, rs) -> (f.M.name, List.map (fun r -> !r) rs)) claims
            @ !committed
          in
          let step round =
            let changed = ref false in
            List.iter
              (fun (f, rs) ->
                List.iter
                  (fun r ->
                    let c =
                      claim_of lenv (table_now ()) ~on_call f !r.A.s_args
                    in
                    if D.sum_leq c !r then
                      (* Outcome stable: refresh the invariants so the
                         final round leaves them consistent with the
                         final table (invariants of other entries never
                         influence a walk, only outcomes do). *)
                      r := { !r with A.s_invs = c.A.s_invs }
                    else begin
                      changed := true;
                      r :=
                        (if round >= D.widen_after then D.sum_widen !r c
                         else D.sum_join !r c)
                    end)
                  rs)
              claims;
            !changed
          in
          match
            if Callgraph.scc_cyclic cg scc then begin
              let round = ref 0 in
              while step !round do
                incr round;
                if !round > !D.budget.max_rounds then raise Scc_budget
              done
            end
            else
              (* Acyclic: the claim cannot feed back into its own walk,
                 so one pass is already the fixpoint. *)
              List.iter
                (fun (f, rs) ->
                  List.iter
                    (fun r -> r := claim_of lenv (table_now ()) ~on_call f !r.A.s_args)
                    rs)
                claims
          with
          | () ->
            committed :=
              List.map (fun (f, rs) -> (f.M.name, List.map (fun r -> !r) rs)) claims
              @ !committed
          | exception Scc_budget ->
            (* Non-convergence: drop this SCC's summaries — callers
               havoc across these calls (the intraprocedural result). *)
            Atomic.incr exhaustions
        end)
      sccs;
    !committed
  in
  (* Add summary contexts for observed call-site argument domains that
     are strictly more precise than every context the callee already
     has.  Returns whether anything was added. *)
  let refine () : bool =
    let added = ref false in
    let seen = ref [] in
    List.iter
      (fun (g, argds) ->
        match List.assoc_opt g fmap with
        | None -> ()
        | Some f when List.length argds = List.length f.M.params ->
          if not (List.mem (g, argds) !seen) then begin
            seen := (g, argds) :: !seen;
            let existing = Hashtbl.find ctxs g in
            if
              List.length existing < 1 + !contexts
              && (not (List.mem argds existing))
              && List.for_all2 A.vdom_leq argds (base_args f)
            then begin
              Hashtbl.replace ctxs g (argds :: existing);
              added := true
            end
          end
        | Some _ -> ())
      (List.rev !calls);
    !added
  in
  let rec outer round =
    (* One span per refinement round — each is a whole-program bottom-up
       recompute, the unit of fixpoint work worth seeing on a trace. *)
    let table =
      if Ac_obs.Obs.enabled () then
        Ac_obs.Obs.span ~cat:"analysis"
          ~args:[ ("round", string_of_int round) ]
          "summary.round" recompute
      else recompute ()
    in
    if round >= !rounds then begin
      (* Out of refinement rounds; if more contexts were wanted, record
         the degradation (the table itself stays valid and checkable). *)
      if refine () then Atomic.incr exhaustions;
      table
    end
    else if refine () then outer (round + 1)
    else table
  in
  let table = outer 1 in
  let stats =
    List.map
      (fun (g, ss) ->
        ( g,
          {
            fs_contexts = List.length ss;
            fs_size = List.fold_left (fun a s -> a + D.summary_size s) 0 ss;
          } ))
      table
  in
  (table, stats)
