module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Layout = Ac_lang.Layout
module B = Ac_bignum
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Ast = Ac_cfront.Ast
module Tir = Ac_cfront.Tir
module A = Ac_kernel.Absdom
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

(* The untrusted half of the guard-discharge pass (ISSUE: `ac_analysis`).

   [Absdom] (in the kernel) owns the domains, transfer functions and the
   certificate-checking walk; this library owns everything that needs
   heuristics and therefore must stay out of the trusted base:

   - the widening fixpoint that solves for loop invariants,
   - packaging the solved invariants as a certificate and pushing it
     through the kernel as [Rules.Rule_guard_true],
   - `acc lint`: replaying the analysis to harvest *refuted* guards
     (definitely-failing UB checks) and definite-initialisation findings,
     mapped back to source positions recorded by the C front-end.

   A bug here can only lose precision or produce a certificate the kernel
   rejects — it cannot produce an unsound theorem. *)

(* ------------------------------------------------------------------ *)
(* Re-exports.  The budget and fixpoint-solver machinery moved to
   [Domains] so the interprocedural [Summary] engine can share it
   without a module cycle; these aliases keep every existing call site
   ([Driver], bench, tests) compiling unchanged.  [Callgraph] and
   [Summary] are the interprocedural subsystem (this PR's tentpole). *)

module Callgraph = Callgraph
module Domains = Domains
module Summary = Summary

type budget = Domains.budget = {
  max_rounds : int;  (* widen/join rounds per loop *)
  max_steps : int;  (* iterate calls per analysed function *)
  deadline_s : float option;  (* wall clock per analysed function *)
}

let default_budget = Domains.default_budget
let budget = Domains.budget
let exhaustions = Domains.exhaustions
let set_fault_hook = Domains.set_fault_hook
let fixpoint_solver = Domains.fixpoint_solver
let replay_solver = Domains.replay_solver

(* ------------------------------------------------------------------ *)
(* Certificates and kernel-checked discharge. *)

let infer_cert ?(sums = []) (lenv : Layout.env) (m : M.t) : A.cert =
  let tbl = Hashtbl.create 8 in
  let sv = fixpoint_solver ~sums tbl in
  let (_ : M.t * A.aout) = A.walk lenv sv 0 A.env_top m in
  let invs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { A.c_invs = invs; c_sums = sums }

(* Run the analysis on one function and, if any guard is provable, push the
   certificate through the kernel.  Returns the rewritten function and the
   [Equiv (new_body, old_body)] theorem, or [None] when nothing changed (or
   the kernel rejected the certificate — which only costs precision).
   [sums] is the (restricted) summary table the certificate embeds; the
   kernel re-verifies it against [ctx.fbodies] before trusting any of it. *)
let discharge_func (ctx : Rules.ctx) ?(sums = []) (f : M.func) : (M.func * Thm.t) option =
  let cert = infer_cert ~sums ctx.Rules.lenv f.M.body in
  match Thm.by_opt ctx (Rules.Rule_guard_true (f.M.body, cert)) [] with
  | None -> None
  | Some thm -> (
    match Thm.concl thm with
    | J.Equiv (m', m) when not (M.equal m' m) -> Some ({ f with M.body = m' }, thm)
    | _ -> None)

(* [discharge_func] fused with the provenance count: one fixpoint, one
   replay over the memoized invariant table to count analysis-proven
   guards, one kernel walk.  Same certificate (and so the same theorem
   and rewritten body) as [discharge_func]; the count is what
   [count_provable] would report, without re-solving the fixpoint.  The
   driver switches to this entry when effort accounting is armed. *)
let discharge_func_counted (ctx : Rules.ctx) ?(sums = []) (f : M.func) :
    (M.func * Thm.t) option * int =
  let tbl = Hashtbl.create 8 in
  (* [fixpoint_solver] mutes [on_guard] during speculative widening
     rounds and every loop body is re-walked once with its stable
     invariant, so counting here fires exactly once per reachable guard
     with the same verdict a [replay_solver] pass over [tbl] would
     report — the count is [count_provable]'s number without the extra
     walk, and the certificate (hence the theorem) is untouched. *)
  let proven = ref 0 in
  let on_guard _ _ v = if v = Some true then incr proven in
  let sv = fixpoint_solver ~on_guard ~sums tbl in
  let (_ : M.t * A.aout) = A.walk ctx.Rules.lenv sv 0 A.env_top f.M.body in
  let invs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let cert = { A.c_invs = invs; c_sums = sums } in
  let r =
    match Thm.by_opt ctx (Rules.Rule_guard_true (f.M.body, cert)) [] with
    | None -> None
    | Some thm -> (
      match Thm.concl thm with
      | J.Equiv (m', m) when not (M.equal m' m) -> Some ({ f with M.body = m' }, thm)
      | _ -> None)
  in
  (r, !proven)

(* How many guards of [m] the analysis proves true under [sums] — a pure
   analysis count, no kernel involved; the driver runs it with and
   without the summary table to attribute discharges intra vs inter for
   `acc stats --profile`. *)
let count_provable (lenv : Layout.env) ~(sums : A.sums) (m : M.t) : int =
  let tbl = Hashtbl.create 8 in
  let (_ : M.t * A.aout) = A.walk lenv (fixpoint_solver ~sums tbl) 0 A.env_top m in
  let n = ref 0 in
  let on_guard _ _ v = if v = Some true then incr n in
  let (_ : M.t * A.aout) =
    A.walk lenv (replay_solver ~on_guard ~sums tbl) 0 A.env_top m
  in
  !n

(* ------------------------------------------------------------------ *)
(* Lint: refuted guards and definite-initialisation findings. *)

type finding = {
  lf_func : string;
  lf_kind : Ir.guard_kind option; (* None: definite-initialisation finding *)
  lf_pos : Ast.pos option;
  lf_msg : string;
}

let guard_message (k : Ir.guard_kind) =
  match k with
  | Ir.Div_by_zero -> "division by zero"
  | Ir.Signed_overflow -> "signed overflow"
  | Ir.Shift_bounds -> "shift amount out of bounds"
  | Ir.Ptr_valid -> "invalid (null) pointer dereference"
  | Ir.Array_bounds -> "array index out of bounds"
  | Ir.Dont_reach -> "control reaches end of non-void function"
  | Ir.Unsigned_overflow -> "unsigned overflow"

(* Map the [n]th L2-level guard of kind [k] back to a source position using
   the positions the front-end recorded per emitted guard.  Exact match on
   the condition first; the L2 rewrites usually change the expression, so
   fall back to pairing occurrences of the same kind in order — valid when
   the pipeline kept them 1:1, refused otherwise. *)
let position_of (gsrc : (Ir.guard_kind * E.t * Ast.pos) list)
    (occurrences : (Ir.guard_kind * E.t) list) (k : Ir.guard_kind) (c : E.t) :
    Ast.pos option =
  let exact =
    List.filter_map
      (fun (k', c', p) -> if k = k' && E.equal c c' then Some p else None)
      gsrc
  in
  match exact with
  | [ p ] -> Some p
  | _ ->
    let of_kind l = List.filter (fun (k', _) -> k = k') l in
    let src_k = List.filter (fun (k', _, _) -> k = k') gsrc in
    let occ_k = of_kind occurrences in
    if List.length src_k = List.length occ_k then begin
      let rec nth_occ i = function
        | [] -> None
        | (_, c') :: rest ->
          if E.equal c' c then Some i else nth_occ (i + 1) rest
      in
      match nth_occ 0 occ_k with
      | Some i -> ( match List.nth_opt src_k i with Some (_, _, p) -> Some p | None -> None)
      | None -> None
    end
    else None

(* Definite initialisation, on the typed front-end IR (which still knows
   which locals were declared without an initialiser — after L1, locals are
   default-initialised, so the bug is invisible downstream).  A classic
   definite-assignment walk: a read of a declared local that is not
   definitely assigned on every path to it is reported, with the position
   of the reading statement. *)
module SSet = Set.Make (String)

let rec texpr_reads (e : Tir.texpr) : SSet.t =
  match e.Tir.te with
  | Tir.Tconst _ | Tir.Tnull _ | Tir.Tglobal _ -> SSet.empty
  | Tir.Tvar x -> SSet.singleton x
  | Tir.Tunop (_, a) | Tir.Tcast (_, a) | Tir.Ttobool a | Tir.Tofbool a -> texpr_reads a
  | Tir.Tbinop (_, a, b) | Tir.Tptradd (a, b) -> SSet.union (texpr_reads a) (texpr_reads b)
  | Tir.Tcond (c, a, b) ->
    SSet.union (texpr_reads c) (SSet.union (texpr_reads a) (texpr_reads b))
  | Tir.Tload lv | Tir.Taddr lv -> tlval_reads lv

(* Reads performed when evaluating the lvalue *as a value source* (for
   [Tload]): a register root counts as a read of that variable. *)
and tlval_reads (lv : Tir.tlval) : SSet.t =
  match lv with
  | Tir.Lvar (x, _) -> SSet.singleton x
  | Tir.Lglobal _ -> SSet.empty
  | Tir.Lmem (p, _) -> texpr_reads p
  | Tir.Lfield (base, _, _, _) -> tlval_reads base

(* Reads performed when *storing to* the lvalue: the address computation
   only — assigning to x (or a field of register x) is a write, not a read. *)
let rec tlval_addr_reads (lv : Tir.tlval) : SSet.t =
  match lv with
  | Tir.Lvar _ | Tir.Lglobal _ -> SSet.empty
  | Tir.Lmem (p, _) -> texpr_reads p
  | Tir.Lfield (base, _, _, _) -> tlval_addr_reads base

let rec written_var (lv : Tir.tlval) : string option =
  match lv with
  | Tir.Lvar (x, _) -> Some x
  | Tir.Lfield (base, _, _, _) -> written_var base
  | Tir.Lglobal _ | Tir.Lmem _ -> None

let uninit_findings (tf : Tir.tfunc) : finding list =
  let declared = SSet.of_list (List.map fst tf.Tir.tf_locals) in
  let findings = ref [] in
  let reported = ref SSet.empty in
  let check (pos : Ast.pos) defined reads =
    SSet.iter
      (fun x ->
        if SSet.mem x declared && (not (SSet.mem x defined)) && not (SSet.mem x !reported)
        then begin
          reported := SSet.add x !reported;
          findings :=
            {
              lf_func = tf.Tir.tf_name;
              lf_kind = None;
              lf_pos = Some pos;
              lf_msg = Printf.sprintf "'%s' may be used uninitialised" x;
            }
            :: !findings
        end)
      reads
  in
  let rec go defined (s : Tir.tstmt) : SSet.t =
    let pos = s.Tir.tsp in
    match s.Tir.ts with
    | Tir.Tskip | Tir.Tbreak | Tir.Tcontinue -> defined
    | Tir.Tassign (lv, rhs) -> (
      check pos defined (texpr_reads rhs);
      check pos defined (tlval_addr_reads lv);
      match written_var lv with Some x -> SSet.add x defined | None -> defined)
    | Tir.Tcall (dest, _, args) -> (
      List.iter (fun a -> check pos defined (texpr_reads a)) args;
      match Option.map written_var dest with
      | Some (Some x) -> SSet.add x defined
      | _ -> defined)
    | Tir.Tseq (a, b) -> go (go defined a) b
    | Tir.Tif (c, a, b) ->
      check pos defined (texpr_reads c);
      SSet.inter (go defined a) (go defined b)
    | Tir.Twhile (c, body) ->
      check pos defined (texpr_reads c);
      let (_ : SSet.t) = go defined body in
      defined
    | Tir.Treturn None -> defined
    | Tir.Treturn (Some e) ->
      check pos defined (texpr_reads e);
      defined
  in
  let (_ : SSet.t) = go (SSet.of_list (List.map fst tf.Tir.tf_params)) tf.Tir.tf_body in
  List.rev !findings

(* Survey one function: run the fixpoint, then replay under the solved
   invariants classifying every guard occurrence (spurious refutations
   against half-converged loop environments never surface, because the
   first pass reports nothing).  Refuted guards are definitely-failing
   UB checks; residual guards are merely unproved.  [sums] lets the
   classification use interprocedural facts. *)
type survey = { sv_refuted : finding list; sv_residual : finding list }

let survey_func (lenv : Layout.env) ?(simpl : Ir.func option) ?(sums = []) (f : M.func) :
    survey =
  let tbl = Hashtbl.create 8 in
  let sv = fixpoint_solver ~sums tbl in
  let (_ : M.t * A.aout) = A.walk lenv sv 0 A.env_top f.M.body in
  let occs = ref [] in
  let refuted = ref [] in
  let residual = ref [] in
  let seen l k c = List.exists (fun (k', c') -> k = k' && E.equal c c') l in
  let on_guard k c v =
    occs := (k, c) :: !occs;
    match v with
    | Some false -> if not (seen !refuted k c) then refuted := (k, c) :: !refuted
    | None -> if not (seen !residual k c) then residual := (k, c) :: !residual
    | Some true -> ()
  in
  let (_ : M.t * A.aout) =
    A.walk lenv (replay_solver ~on_guard ~sums tbl) 0 A.env_top f.M.body
  in
  let occurrences = List.rev !occs in
  let gsrc = match simpl with Some sf -> sf.Ir.gsrc | None -> [] in
  let findings_of msg l =
    List.rev_map
      (fun (k, c) ->
        {
          lf_func = f.M.name;
          lf_kind = Some k;
          lf_pos = position_of gsrc occurrences k c;
          lf_msg = msg k;
        })
      l
  in
  {
    sv_refuted = findings_of guard_message !refuted;
    sv_residual =
      findings_of (fun k -> "unproved guard: " ^ guard_message k) !residual;
  }

(* Lint one function: the refuted guards only. *)
let lint_func (lenv : Layout.env) ?(simpl : Ir.func option) ?(sums = []) (f : M.func) :
    finding list =
  (survey_func lenv ?simpl ~sums f).sv_refuted

(* ------------------------------------------------------------------ *)
(* Deterministic finding order. *)

let kind_rank (k : Ir.guard_kind option) : int =
  match k with
  | None -> -1 (* definite-initialisation findings first among ties *)
  | Some Ir.Div_by_zero -> 0
  | Some Ir.Signed_overflow -> 1
  | Some Ir.Shift_bounds -> 2
  | Some Ir.Ptr_valid -> 3
  | Some Ir.Array_bounds -> 4
  | Some Ir.Dont_reach -> 5
  | Some Ir.Unsigned_overflow -> 6

(* Sort findings by (line, col, guard kind, function, message) — findings
   without a source position last — and drop exact duplicates (budget
   degradation can re-lint a function and repeat its findings).  Callers
   group by file, so this fixes the order within each file regardless of
   [--jobs] scheduling. *)
let sort_findings (fs : finding list) : finding list =
  let key f =
    let l, c =
      match f.lf_pos with
      | Some p -> (p.Ast.line, p.Ast.col)
      | None -> (max_int, max_int)
    in
    (l, c, kind_rank f.lf_kind, f.lf_func, f.lf_msg)
  in
  List.sort_uniq (fun a b -> compare (key a) (key b)) fs

(* Discharge statistics for one body: how many guards remain. *)
let rec guard_count (m : M.t) : int =
  match m with
  | M.Guard _ -> 1
  | M.Return _ | M.Gets _ | M.Modify _ | M.Fail | M.Throw _ | M.Unknown _ | M.Call _
  | M.Exec_concrete _ ->
    0
  | M.Bind (a, _, b) | M.Try (a, _, b) | M.Cond (_, a, b) -> guard_count a + guard_count b
  | M.While (_, _, body, _) -> guard_count body
