module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Layout = Ac_lang.Layout
module B = Ac_bignum
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Ast = Ac_cfront.Ast
module Tir = Ac_cfront.Tir
module A = Ac_kernel.Absdom
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

(* The untrusted half of the guard-discharge pass (ISSUE: `ac_analysis`).

   [Absdom] (in the kernel) owns the domains, transfer functions and the
   certificate-checking walk; this library owns everything that needs
   heuristics and therefore must stay out of the trusted base:

   - the widening fixpoint that solves for loop invariants,
   - packaging the solved invariants as a certificate and pushing it
     through the kernel as [Rules.Rule_guard_true],
   - `acc lint`: replaying the analysis to harvest *refuted* guards
     (definitely-failing UB checks) and definite-initialisation findings,
     mapped back to source positions recorded by the C front-end.

   A bug here can only lose precision or produce a certificate the kernel
   rejects — it cannot produce an unsound theorem. *)

(* ------------------------------------------------------------------ *)
(* The fixpoint solver.  Joins for a few rounds, then widens; loop bodies
   walked during iteration report guard verdicts against not-yet-stable
   environments, so [on_guard] is muted inside [solve] and only the final
   stabilised walk (performed by [Absdom.walk] after [solve] returns)
   reports.

   The fixpoint runs under a resource budget: a per-loop round limit (as
   before), a per-function step limit (total [iterate] calls across all
   loops of one walk) and an optional wall-clock deadline.  Exhausting any
   of them answers ⊤ for the remaining loops — precision is lost (guards
   stay, nothing discharges), soundness and availability are not. *)

type budget = {
  max_rounds : int;  (* widen/join rounds per loop *)
  max_steps : int;  (* iterate calls per analysed function *)
  deadline_s : float option;  (* wall clock per analysed function *)
}

let default_budget = { max_rounds = 40; max_steps = 20_000; deadline_s = None }
let budget = ref default_budget

(* How many times the analysis ran out of budget (for `acc stats`).  Reset
   by the driver per run. *)
let exhaustions = Atomic.make 0

(* Test-only fault injection: answers [true] to make the current fixpoint
   behave as if its fuel were exhausted. *)
let fault_hook : (unit -> bool) option ref = ref None

let set_fault_hook h = fault_hook := h

let widen_after = 3

let fixpoint_solver ?(on_guard = fun _ _ _ -> ()) (tbl : (int, A.aenv) Hashtbl.t) : A.solver
    =
  let muted = ref false in
  let steps = ref 0 in
  let spent = ref false in
  (* Wall clock (see Solver): CPU time races ahead under parallel workers. *)
  let deadline = Option.map (fun d -> Unix.gettimeofday () +. d) !budget.deadline_s in
  let out_of_budget () =
    !spent
    || !steps >= !budget.max_steps
    || (match deadline with
       | Some d -> !steps land 15 = 0 && Unix.gettimeofday () > d
       | None -> false)
    || (match !fault_hook with Some f -> f () | None -> false)
  in
  let exhaust () =
    if not !spent then begin
      spent := true;
      Atomic.incr exhaustions
    end;
    A.env_top
  in
  {
    A.solve =
      (fun idx head iterate ->
        let was = !muted in
        muted := true;
        let rec go round cur =
          if round > !budget.max_rounds || out_of_budget () then exhaust ()
          else begin
            incr steps;
            match iterate cur with
            | None -> cur
            | Some nxt ->
              if A.env_leq nxt cur then cur
              else if round >= widen_after then go (round + 1) (A.env_widen cur nxt)
              else go (round + 1) (A.env_join cur nxt)
          end
        in
        let inv = go 0 head in
        muted := was;
        Hashtbl.replace tbl idx inv;
        inv);
    A.on_guard = (fun k c v -> if not !muted then on_guard k c v);
  }

(* Replay with already-solved invariants: every guard is visited exactly
   once, under its final environment. *)
let replay_solver ~on_guard (tbl : (int, A.aenv) Hashtbl.t) : A.solver =
  {
    A.solve =
      (fun idx _head _iterate ->
        match Hashtbl.find_opt tbl idx with Some inv -> inv | None -> A.env_top);
    A.on_guard = on_guard;
  }

(* ------------------------------------------------------------------ *)
(* Certificates and kernel-checked discharge. *)

let infer_cert (lenv : Layout.env) (m : M.t) : A.cert =
  let tbl = Hashtbl.create 8 in
  let sv = fixpoint_solver tbl in
  let (_ : M.t * A.aout) = A.walk lenv sv 0 A.env_top m in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Run the analysis on one function and, if any guard is provable, push the
   certificate through the kernel.  Returns the rewritten function and the
   [Equiv (new_body, old_body)] theorem, or [None] when nothing changed (or
   the kernel rejected the certificate — which only costs precision). *)
let discharge_func (ctx : Rules.ctx) (f : M.func) : (M.func * Thm.t) option =
  let cert = infer_cert ctx.Rules.lenv f.M.body in
  match Thm.by_opt ctx (Rules.Rule_guard_true (f.M.body, cert)) [] with
  | None -> None
  | Some thm -> (
    match Thm.concl thm with
    | J.Equiv (m', m) when not (M.equal m' m) -> Some ({ f with M.body = m' }, thm)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Lint: refuted guards and definite-initialisation findings. *)

type finding = {
  lf_func : string;
  lf_kind : Ir.guard_kind option; (* None: definite-initialisation finding *)
  lf_pos : Ast.pos option;
  lf_msg : string;
}

let guard_message (k : Ir.guard_kind) =
  match k with
  | Ir.Div_by_zero -> "division by zero"
  | Ir.Signed_overflow -> "signed overflow"
  | Ir.Shift_bounds -> "shift amount out of bounds"
  | Ir.Ptr_valid -> "invalid (null) pointer dereference"
  | Ir.Array_bounds -> "array index out of bounds"
  | Ir.Dont_reach -> "control reaches end of non-void function"
  | Ir.Unsigned_overflow -> "unsigned overflow"

(* Map the [n]th L2-level guard of kind [k] back to a source position using
   the positions the front-end recorded per emitted guard.  Exact match on
   the condition first; the L2 rewrites usually change the expression, so
   fall back to pairing occurrences of the same kind in order — valid when
   the pipeline kept them 1:1, refused otherwise. *)
let position_of (gsrc : (Ir.guard_kind * E.t * Ast.pos) list)
    (occurrences : (Ir.guard_kind * E.t) list) (k : Ir.guard_kind) (c : E.t) :
    Ast.pos option =
  let exact =
    List.filter_map
      (fun (k', c', p) -> if k = k' && E.equal c c' then Some p else None)
      gsrc
  in
  match exact with
  | [ p ] -> Some p
  | _ ->
    let of_kind l = List.filter (fun (k', _) -> k = k') l in
    let src_k = List.filter (fun (k', _, _) -> k = k') gsrc in
    let occ_k = of_kind occurrences in
    if List.length src_k = List.length occ_k then begin
      let rec nth_occ i = function
        | [] -> None
        | (_, c') :: rest ->
          if E.equal c' c then Some i else nth_occ (i + 1) rest
      in
      match nth_occ 0 occ_k with
      | Some i -> ( match List.nth_opt src_k i with Some (_, _, p) -> Some p | None -> None)
      | None -> None
    end
    else None

(* Definite initialisation, on the typed front-end IR (which still knows
   which locals were declared without an initialiser — after L1, locals are
   default-initialised, so the bug is invisible downstream).  A classic
   definite-assignment walk: a read of a declared local that is not
   definitely assigned on every path to it is reported, with the position
   of the reading statement. *)
module SSet = Set.Make (String)

let rec texpr_reads (e : Tir.texpr) : SSet.t =
  match e.Tir.te with
  | Tir.Tconst _ | Tir.Tnull _ | Tir.Tglobal _ -> SSet.empty
  | Tir.Tvar x -> SSet.singleton x
  | Tir.Tunop (_, a) | Tir.Tcast (_, a) | Tir.Ttobool a | Tir.Tofbool a -> texpr_reads a
  | Tir.Tbinop (_, a, b) | Tir.Tptradd (a, b) -> SSet.union (texpr_reads a) (texpr_reads b)
  | Tir.Tcond (c, a, b) ->
    SSet.union (texpr_reads c) (SSet.union (texpr_reads a) (texpr_reads b))
  | Tir.Tload lv | Tir.Taddr lv -> tlval_reads lv

(* Reads performed when evaluating the lvalue *as a value source* (for
   [Tload]): a register root counts as a read of that variable. *)
and tlval_reads (lv : Tir.tlval) : SSet.t =
  match lv with
  | Tir.Lvar (x, _) -> SSet.singleton x
  | Tir.Lglobal _ -> SSet.empty
  | Tir.Lmem (p, _) -> texpr_reads p
  | Tir.Lfield (base, _, _, _) -> tlval_reads base

(* Reads performed when *storing to* the lvalue: the address computation
   only — assigning to x (or a field of register x) is a write, not a read. *)
let rec tlval_addr_reads (lv : Tir.tlval) : SSet.t =
  match lv with
  | Tir.Lvar _ | Tir.Lglobal _ -> SSet.empty
  | Tir.Lmem (p, _) -> texpr_reads p
  | Tir.Lfield (base, _, _, _) -> tlval_addr_reads base

let rec written_var (lv : Tir.tlval) : string option =
  match lv with
  | Tir.Lvar (x, _) -> Some x
  | Tir.Lfield (base, _, _, _) -> written_var base
  | Tir.Lglobal _ | Tir.Lmem _ -> None

let uninit_findings (tf : Tir.tfunc) : finding list =
  let declared = SSet.of_list (List.map fst tf.Tir.tf_locals) in
  let findings = ref [] in
  let reported = ref SSet.empty in
  let check (pos : Ast.pos) defined reads =
    SSet.iter
      (fun x ->
        if SSet.mem x declared && (not (SSet.mem x defined)) && not (SSet.mem x !reported)
        then begin
          reported := SSet.add x !reported;
          findings :=
            {
              lf_func = tf.Tir.tf_name;
              lf_kind = None;
              lf_pos = Some pos;
              lf_msg = Printf.sprintf "'%s' may be used uninitialised" x;
            }
            :: !findings
        end)
      reads
  in
  let rec go defined (s : Tir.tstmt) : SSet.t =
    let pos = s.Tir.tsp in
    match s.Tir.ts with
    | Tir.Tskip | Tir.Tbreak | Tir.Tcontinue -> defined
    | Tir.Tassign (lv, rhs) -> (
      check pos defined (texpr_reads rhs);
      check pos defined (tlval_addr_reads lv);
      match written_var lv with Some x -> SSet.add x defined | None -> defined)
    | Tir.Tcall (dest, _, args) -> (
      List.iter (fun a -> check pos defined (texpr_reads a)) args;
      match Option.map written_var dest with
      | Some (Some x) -> SSet.add x defined
      | _ -> defined)
    | Tir.Tseq (a, b) -> go (go defined a) b
    | Tir.Tif (c, a, b) ->
      check pos defined (texpr_reads c);
      SSet.inter (go defined a) (go defined b)
    | Tir.Twhile (c, body) ->
      check pos defined (texpr_reads c);
      let (_ : SSet.t) = go defined body in
      defined
    | Tir.Treturn None -> defined
    | Tir.Treturn (Some e) ->
      check pos defined (texpr_reads e);
      defined
  in
  let (_ : SSet.t) = go (SSet.of_list (List.map fst tf.Tir.tf_params)) tf.Tir.tf_body in
  List.rev !findings

(* Lint one function: run the fixpoint, then replay under the solved
   invariants collecting refuted guards (spurious refutations against
   half-converged loop environments never surface, because the first pass
   reports nothing). *)
let lint_func (lenv : Layout.env) ?(simpl : Ir.func option) (f : M.func) : finding list =
  let tbl = Hashtbl.create 8 in
  let sv = fixpoint_solver tbl in
  let (_ : M.t * A.aout) = A.walk lenv sv 0 A.env_top f.M.body in
  let occs = ref [] in
  let refuted = ref [] in
  let on_guard k c v =
    occs := (k, c) :: !occs;
    if v = Some false && not (List.exists (fun (k', c') -> k = k' && E.equal c c') !refuted)
    then refuted := (k, c) :: !refuted
  in
  let (_ : M.t * A.aout) = A.walk lenv (replay_solver ~on_guard tbl) 0 A.env_top f.M.body in
  let occurrences = List.rev !occs in
  let gsrc = match simpl with Some sf -> sf.Ir.gsrc | None -> [] in
  let guard_findings =
    List.rev_map
      (fun (k, c) ->
        {
          lf_func = f.M.name;
          lf_kind = Some k;
          lf_pos = position_of gsrc occurrences k c;
          lf_msg = guard_message k;
        })
      !refuted
  in
  guard_findings

(* Discharge statistics for one body: how many guards remain. *)
let rec guard_count (m : M.t) : int =
  match m with
  | M.Guard _ -> 1
  | M.Return _ | M.Gets _ | M.Modify _ | M.Fail | M.Throw _ | M.Unknown _ | M.Call _
  | M.Exec_concrete _ ->
    0
  | M.Bind (a, _, b) | M.Try (a, _, b) | M.Cond (_, a, b) -> guard_count a + guard_count b
  | M.While (_, _, body, _) -> guard_count body
