module A = Ac_kernel.Absdom

(* Analysis-side domain machinery, shared by the intraprocedural pass
   ([Ac_analysis], which re-exports most of this for compatibility) and
   the interprocedural summary engine ([Summary]):

   - the resource budget and the widening fixpoint solver over [A.aenv]
     (the kernel's [A.walk] is parameterised by a [solver]; the trusted
     one lives in [Absdom.check_solver], these untrusted ones may widen
     and may give up),
   - the lattice of summaries (ascending from a ⊥ "no outcome yet" claim,
     used by the bottom-up SCC fixpoint),
   - digests and restrictions of summary tables (store keys, certificate
     slimming).

   Nothing here is trusted: a bug loses precision or produces a summary
   table the kernel's [check_sums] rejects. *)

(* ------------------------------------------------------------------ *)
(* Budget. *)

type budget = {
  max_rounds : int;  (* widen/join rounds per loop *)
  max_steps : int;  (* iterate calls per analysed function *)
  deadline_s : float option;  (* wall clock per analysed function *)
}

let default_budget = { max_rounds = 40; max_steps = 20_000; deadline_s = None }
let budget = ref default_budget

(* How many times the analysis ran out of budget (for `acc stats`).  Reset
   by the driver per run. *)
let exhaustions = Atomic.make 0

(* Test-only fault injection: answers [true] to make the current fixpoint
   behave as if its fuel were exhausted. *)
let fault_hook : (unit -> bool) option ref = ref None

let set_fault_hook h = fault_hook := h

let widen_after = 3

(* ------------------------------------------------------------------ *)
(* Solvers.  Joins for a few rounds, then widens; loop bodies walked
   during iteration report guard verdicts against not-yet-stable
   environments, so [on_guard] is muted inside [solve] and only the final
   stabilised walk (performed by [A.walk] after [solve] returns) reports.

   The fixpoint runs under the budget above: a per-loop round limit, a
   per-function step limit (total [iterate] calls across all loops of one
   walk) and an optional wall-clock deadline.  Exhausting any of them
   answers ⊤ for the remaining loops — precision is lost (guards stay,
   nothing discharges), soundness and availability are not. *)

let fixpoint_solver ?(on_guard = fun _ _ _ -> ()) ?(sums = []) ?(on_call = fun _ _ -> ())
    (tbl : (int, A.aenv) Hashtbl.t) : A.solver =
  let muted = ref false in
  let steps = ref 0 in
  let spent = ref false in
  (* Wall clock (see Solver): CPU time races ahead under parallel workers. *)
  let deadline = Option.map (fun d -> Unix.gettimeofday () +. d) !budget.deadline_s in
  let out_of_budget () =
    !spent
    || !steps >= !budget.max_steps
    || (match deadline with
       | Some d -> !steps land 15 = 0 && Unix.gettimeofday () > d
       | None -> false)
    || (match !fault_hook with Some f -> f () | None -> false)
  in
  let exhaust () =
    if not !spent then begin
      spent := true;
      Atomic.incr exhaustions
    end;
    A.env_top
  in
  {
    A.solve =
      (fun idx head iterate ->
        let was = !muted in
        muted := true;
        let rec go round cur =
          if round > !budget.max_rounds || out_of_budget () then exhaust ()
          else begin
            incr steps;
            match iterate cur with
            | None -> cur
            | Some nxt ->
              if A.env_leq nxt cur then cur
              else if round >= widen_after then go (round + 1) (A.env_widen cur nxt)
              else go (round + 1) (A.env_join cur nxt)
          end
        in
        let inv = go 0 head in
        muted := was;
        Hashtbl.replace tbl idx inv;
        inv);
    A.on_guard = (fun k c v -> if not !muted then on_guard k c v);
    A.sums = sums;
    A.on_call = (fun g ds -> if not !muted then on_call g ds);
  }

(* Replay with already-solved invariants: every guard is visited exactly
   once, under its final environment. *)
let replay_solver ~on_guard ?(sums = []) ?(on_call = fun _ _ -> ())
    (tbl : (int, A.aenv) Hashtbl.t) : A.solver =
  {
    A.solve =
      (fun idx _head _iterate ->
        match Hashtbl.find_opt tbl idx with Some inv -> inv | None -> A.env_top);
    A.on_guard = on_guard;
    A.sums = sums;
    A.on_call = on_call;
  }

(* ------------------------------------------------------------------ *)
(* The summary lattice.  Ascending from [sum_bottom] ("no outcome yet"),
   as the optimistic SCC fixpoint wants; [s_invs] is not part of the
   order — the final harvest walk supplies it. *)

let sum_bottom (args : A.vdom list) : A.summary =
  { A.s_args = args; s_ret = A.Dtop; s_noret = true; s_throws = false; s_invs = [] }

let sum_leq (a : A.summary) (b : A.summary) : bool =
  (a.A.s_noret || ((not b.A.s_noret) && A.vdom_leq a.A.s_ret b.A.s_ret))
  && ((not a.A.s_throws) || b.A.s_throws)

let sum_combine f (a : A.summary) (b : A.summary) : A.summary =
  {
    a with
    A.s_noret = a.A.s_noret && b.A.s_noret;
    s_ret =
      (if a.A.s_noret then b.A.s_ret
       else if b.A.s_noret then a.A.s_ret
       else f a.A.s_ret b.A.s_ret);
    s_throws = a.A.s_throws || b.A.s_throws;
    s_invs = b.A.s_invs;
  }

let sum_join = sum_combine A.vdom_join
let sum_widen = sum_combine A.vdom_widen

(* ------------------------------------------------------------------ *)
(* Sizes (for `acc stats --profile`). *)

let rec vdom_size (d : A.vdom) : int =
  match d with
  | A.Dtuple ds -> 1 + List.fold_left (fun acc d -> acc + vdom_size d) 0 ds
  | _ -> 1

let env_size (e : A.aenv) : int =
  let m f = A.SMap.fold (fun _ d acc -> acc + vdom_size d) (f e) 0 in
  m (fun e -> e.A.avars) + m (fun e -> e.A.aglobs)

let summary_size (s : A.summary) : int =
  List.fold_left (fun acc d -> acc + vdom_size d) (vdom_size s.A.s_ret) s.A.s_args
  + List.fold_left (fun acc (_, e) -> acc + env_size e) 0 s.A.s_invs

(* ------------------------------------------------------------------ *)
(* Table plumbing: deterministic digests (a store-key/claim component —
   a replayed entry is only valid under the summary table it was banked
   with) and restriction to a callee cone (certificates only carry the
   summaries their verification walk can reach). *)

let restrict (sums : A.sums) (names : string list) : A.sums =
  List.filter (fun (g, _) -> List.exists (String.equal g) names) sums

(* Digest a canonical text rendering, not [Marshal] bytes: marshalling
   records physical sharing, which differs between a table computed from
   freshly-converted bodies and one computed from unmarshalled store
   images even when the tables are equal.  The Absdom printers are
   canonical (sorted [SMap.bindings], exact interval bounds), so equal
   tables digest equally whatever their heap layout.  The digest is a
   cache-coherence key only — replay soundness always rests on the
   kernel re-checking the certificate's own table. *)
let summary_to_string (s : A.summary) : string =
  Printf.sprintf "(%s)->%s%s%s[%s]"
    (String.concat "," (List.map A.vdom_to_string s.A.s_args))
    (A.vdom_to_string s.A.s_ret)
    (if s.A.s_noret then "!" else "")
    (if s.A.s_throws then "^" else "")
    (String.concat ";"
       (List.map
          (fun (i, e) -> string_of_int i ^ ":" ^ A.env_to_string e)
          s.A.s_invs))

let entry_to_string ((g, ss) : string * A.summary list) : string =
  g ^ " " ^ String.concat " | " (List.map summary_to_string ss)

let digest_of_entry_strings (entries : string list) : string =
  Digest.to_hex (Digest.string (String.concat "\n" entries))

let sums_digest (sums : A.sums) : string =
  digest_of_entry_strings (List.map entry_to_string sums)
