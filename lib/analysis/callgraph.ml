module M = Ac_monad.M
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* Call graphs over the unit's functions, and the generic SCC machinery
   they (and the proof store's invalidation cones, which extracted their
   Tarjan from here as of this PR) share.

   Everything is deterministic: nodes keep insertion order, successor
   lists keep first-occurrence order, and Tarjan's emission order is a
   function of those — so the bottom-up summary fixpoint, the store's
   cone keys and the per-function certificate restriction are all stable
   across runs and across [--jobs] levels. *)

type t = {
  nodes : string list; (* insertion order *)
  succs : string list SMap.t; (* per node, first-occurrence order *)
}

let successors (g : t) (n : string) : string list =
  match SMap.find_opt n g.succs with Some l -> l | None -> []

let of_edges (nodes : string list) (edges : (string * string list) list) : t =
  let succs =
    List.fold_left (fun acc (n, ss) -> SMap.add n ss acc) SMap.empty edges
  in
  { nodes; succs }

(* Direct callees of a body, in first-occurrence order.  [Exec_concrete]
   counts: it runs the named function's low-level body. *)
let callees (m : M.t) : string list =
  let seen = ref SSet.empty in
  let out = ref [] in
  let add f =
    if not (SSet.mem f !seen) then begin
      seen := SSet.add f !seen;
      out := f :: !out
    end
  in
  let rec go = function
    | M.Return _ | M.Gets _ | M.Modify _ | M.Guard _ | M.Fail | M.Throw _
    | M.Unknown _ ->
      ()
    | M.Call (f, _) | M.Exec_concrete (f, _) -> add f
    | M.Bind (a, _, b) | M.Try (a, _, b) | M.Cond (_, a, b) ->
      go a;
      go b
    | M.While (_, _, body, _) -> go body
  in
  go m;
  List.rev !out

let of_funcs (fs : M.func list) : t =
  of_edges
    (List.map (fun f -> f.M.name) fs)
    (List.map (fun f -> (f.M.name, callees f.M.body)) fs)

(* ------------------------------------------------------------------ *)
(* Tarjan's SCC algorithm (iterative).  Emission order is reverse
   topological on the condensation: every SCC appears after all SCCs it
   reaches — i.e. callees first — which is exactly the order a bottom-up
   summary pass wants.  Successors outside [nodes] are ignored. *)

let sccs (g : t) : string list list =
  let known = SSet.of_list g.nodes in
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if SSet.mem w known then
          if not (Hashtbl.mem index w) then begin
            strong w;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.mem on_stack w then
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) g.nodes;
  List.rev !out

(* Whether any member of [scc] has an edge back into the scc — a
   singleton without a self-edge needs no fixpoint. *)
let scc_cyclic (g : t) (scc : string list) : bool =
  match scc with
  | [ v ] -> List.exists (String.equal v) (successors g v)
  | _ -> true

(* Transitive successors of [n] (excluding [n] itself unless it sits on
   a cycle through itself), sorted for use as a digest/restriction key. *)
let reachable (g : t) (n : string) : string list =
  let seen = ref SSet.empty in
  let rec go v =
    List.iter
      (fun w ->
        if not (SSet.mem w !seen) then begin
          seen := SSet.add w !seen;
          go w
        end)
      (successors g v)
  in
  go n;
  List.sort String.compare (SSet.elements !seen)
