module B = Ac_bignum
open Term

(* Normalisation of prover terms:

   - arithmetic is flattened into canonical linear forms (sum of
     coefficient·atom products plus a constant, atoms sorted), so equal
     polynomials become syntactically equal;
   - integer comparisons become [0 <= lin] / [0 = lin];
   - select-over-store is expanded, stores at equal indices collapse;
   - boolean constants propagate.

   These mirror the "obvious" Isabelle simp rules the paper relies on once
   words have become ideal integers. *)

(* A linear form: constant + sum of coeff * atom. *)
module Lin = struct
  type t = { const : B.t; terms : (Term.t * B.t) list (* atoms sorted, coeff <> 0 *) }

  let of_const c = { const = c; terms = [] }
  let of_atom a = { const = B.zero; terms = [ (a, B.one) ] }

  let add a b =
    let rec merge xs ys =
      match (xs, ys) with
      | [], l | l, [] -> l
      | (xa, ca) :: xs', (ya, cb) :: ys' ->
        let c = Term.compare_t xa ya in
        if c = 0 then begin
          let s = B.add ca cb in
          if B.is_zero s then merge xs' ys' else (xa, s) :: merge xs' ys'
        end
        else if c < 0 then (xa, ca) :: merge xs' ys
        else (ya, cb) :: merge xs ys'
    in
    { const = B.add a.const b.const; terms = merge a.terms b.terms }

  let scale k a =
    if B.is_zero k then of_const B.zero
    else { const = B.mul k a.const; terms = List.map (fun (t, c) -> (t, B.mul k c)) a.terms }

  let neg a = scale B.minus_one a
  let sub a b = add a (neg b)
  let is_const a = a.terms = []

  (* Rebuild a canonical term. *)
  let to_term a =
    let monom (t, c) =
      if B.equal c B.one then t
      else if B.equal c B.minus_one then App (Neg, [ t ])
      else App (Mul, [ Int c; t ])
    in
    match a.terms with
    | [] -> Int a.const
    | m :: ms ->
      let sum = List.fold_left (fun acc m -> App (Add, [ acc; monom m ])) (monom m) ms in
      if B.is_zero a.const then sum else App (Add, [ sum; Int a.const ])

  (* gcd of all coefficients (not the constant). *)
  let coeff_gcd a =
    List.fold_left (fun g (_, c) -> B.gcd g c) B.zero a.terms
end

(* Try to view a term as a linear form; [atomize] handles the base case. *)
let rec linearize (t : Term.t) : Lin.t =
  match t with
  | Int n -> Lin.of_const n
  | App (Add, [ a; b ]) -> Lin.add (linearize a) (linearize b)
  | App (Sub, [ a; b ]) -> Lin.sub (linearize a) (linearize b)
  | App (Neg, [ a ]) -> Lin.neg (linearize a)
  | App (Mul, [ Int k; a ]) | App (Mul, [ a; Int k ]) -> Lin.scale k (linearize a)
  | App (Mul, [ a; b ]) -> (
    (* constant folding through nested products *)
    let la = linearize a and lb = linearize b in
    match (Lin.is_const la, Lin.is_const lb) with
    | true, _ -> Lin.scale la.Lin.const lb
    | _, true -> Lin.scale lb.Lin.const la
    | _ -> Lin.of_atom t)
  | _ -> Lin.of_atom t

let rec simp (t : Term.t) : Term.t =
  let t = match t with App (f, args) -> App (f, List.map simp args) | _ -> t in
  match Seq.reduce t with
  | Some t' -> simp t'
  | None -> (
  match t with
  | App ((Add | Sub | Neg), _) | App (Mul, _) -> (
    let lin = linearize t in
    match t with
    | App (Mul, [ a; b ])
      when (not (Lin.is_const (linearize a))) && not (Lin.is_const (linearize b)) ->
      t (* non-linear product: leave as an atom *)
    | _ -> Lin.to_term lin)
  | App (Div, [ a; Int k ]) when B.equal k B.one -> a
  | App (Div, [ Int a; Int k ]) when not (B.is_zero k) -> Int (B.div a k)
  | App (Mod, [ Int a; Int k ]) when not (B.is_zero k) -> Int (B.rem a k)
  | App (Le, [ a; b ]) -> (
    let d = Lin.sub (linearize b) (linearize a) in
    if Lin.is_const d then Bool (B.ge d.Lin.const B.zero)
    else begin
      (* divide by the coefficient gcd, rounding the constant soundly *)
      let g = Lin.coeff_gcd d in
      let d =
        if B.gt g B.one then
          { Lin.const = B.fdiv d.Lin.const g;
            terms = List.map (fun (t, c) -> (t, B.div c g)) d.Lin.terms }
        else d
      in
      App (Le, [ zero; Lin.to_term d ])
    end)
  | App (Lt, [ a; b ]) ->
    (* integer: a < b = a + 1 <= b *)
    simp (App (Le, [ App (Add, [ a; one ]); b ]))
  | App (Eq, [ a; b ]) when sort_equal (sort_of a) Sint && sort_equal (sort_of b) Sint -> (
    let d = Lin.sub (linearize b) (linearize a) in
    if Lin.is_const d then Bool (B.is_zero d.Lin.const)
    else begin
      (* orient: first coefficient positive *)
      let d =
        match d.Lin.terms with
        | (_, c) :: _ when B.sign c < 0 -> Lin.neg d
        | _ -> d
      in
      App (Eq, [ zero; Lin.to_term d ])
    end)
  | App (Eq, [ a; b ]) when equal a b -> tt
  | App (Eq, [ Bool x; Bool y ]) -> Bool (Bool.equal x y)
  | App (Eq, [ a; Bool true ]) | App (Eq, [ Bool true; a ]) -> a
  | App (Eq, [ a; Bool false ]) | App (Eq, [ Bool false; a ]) -> not_t a
  | App (Not, [ a ]) -> not_t a
  | App (And, [ a; b ]) -> and_t a b
  | App (Or, [ a; b ]) -> or_t a b
  | App (Imp, [ a; b ]) -> imp_t a b
  | App (Ite, [ Bool true; a; _ ]) -> a
  | App (Ite, [ Bool false; _; b ]) -> b
  | App (Ite, [ _; a; b ]) when equal a b -> a
  | App (Select, [ App (Store, [ arr; i; v ]); j ]) ->
    if equal i j then v
    else begin
      let iej = simp (App (Eq, [ i; j ])) in
      match iej with
      | Bool true -> v
      | Bool false -> simp (App (Select, [ arr; j ]))
      | _ -> ite_t iej v (simp (App (Select, [ arr; j ])))
    end
  | App (Store, [ App (Store, [ arr; i; _ ]); j; v ]) when equal i j ->
    App (Store, [ arr; i; v ])
  | t -> t)

(* Simplify to a fixed point (bounded). *)
let normalize ?(max_rounds = 6) (t : Term.t) : Term.t =
  let rec go n t =
    if n >= max_rounds then t
    else begin
      let t' = simp t in
      if equal t' t then t else go (n + 1) t'
    end
  in
  go 0 t
