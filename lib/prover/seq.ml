module B = Ac_bignum
open Term

(* A small theory of finite sequences (Isabelle's 'a list), enough for the
   Mehta-Nipkow pointer proofs: nil/cons constructors, append, rev, length,
   membership, and the heap-list predicate

     islist(next, valid, p, ps)

   relating a pointer chain in the split heap [next] to the ghost sequence
   [ps], requiring every element valid (the adjustment the paper describes
   when porting M/N's proof to C, Sec 5.2 (ii)).

   The constructors and defined functions are encoded as [Uf] symbols; the
   simplifier knows their computation rules, and the lemma library
   (lib/cases) provides the inductive facts. *)

let nil = App (Uf "nil", [])
let cons h t = App (Uf "cons", [ h; t ])
let append a b = App (Uf "append", [ a; b ])
let rev a = App (Uf "rev", [ a ])
let len a = App (Uf "len", [ a ])
let mem x s = App (Uf "mem", [ x; s ])
let shead s = App (Uf "shead", [ s ])
let stail s = App (Uf "stail", [ s ])
let disjoint a b = App (Uf "disjoint", [ a; b ])

(* islist next valid p ps *)
let islist next valid p ps = App (Uf "islist", [ next; valid; p; ps ])

let rec of_list = function [] -> nil | x :: rest -> cons x (of_list rest)

(* Computation rules, applied by the simplifier on constructor-headed
   arguments.  Each is the defining equation of the function. *)
let reduce (t : Term.t) : Term.t option =
  match t with
  | App (Uf "append", [ App (Uf "nil", []); s ]) -> Some s
  | App (Uf "append", [ s; App (Uf "nil", []) ]) -> Some s
  | App (Uf "append", [ App (Uf "cons", [ h; tl ]); s ]) -> Some (cons h (append tl s))
  | App (Uf "rev", [ App (Uf "nil", []) ]) -> Some nil
  | App (Uf "rev", [ App (Uf "cons", [ h; tl ]) ]) -> Some (append (rev tl) (cons h nil))
  | App (Uf "len", [ App (Uf "nil", []) ]) -> Some zero
  | App (Uf "len", [ App (Uf "cons", [ _; tl ]) ]) -> Some (add_t (len tl) one)
  | App (Uf "len", [ App (Uf "append", [ a; b ]) ]) -> Some (add_t (len a) (len b))
  | App (Uf "mem", [ _; App (Uf "nil", []) ]) -> Some ff
  | App (Uf "mem", [ x; App (Uf "cons", [ h; tl ]) ]) -> Some (or_t (eq_t x h) (mem x tl))
  | App (Uf "mem", [ x; App (Uf "append", [ a; b ]) ]) -> Some (or_t (mem x a) (mem x b))
  | App (Uf "shead", [ App (Uf "cons", [ h; _ ]) ]) -> Some h
  | App (Uf "stail", [ App (Uf "cons", [ _; tl ]) ]) -> Some tl
  | App (Uf "islist", [ _; _; p; App (Uf "nil", []) ]) -> Some (eq_t p zero)
  | App (Uf "islist", [ next; valid; p; App (Uf "cons", [ h; tl ]) ]) ->
    Some
      (conj
         [ eq_t p h;
           not_t (eq_t p zero);
           select_t valid p;
           islist next valid (select_t next p) tl ])
  (* injectivity/distinctness of constructors *)
  | App (Eq, [ App (Uf "nil", []); App (Uf "cons", _) ])
  | App (Eq, [ App (Uf "cons", _); App (Uf "nil", []) ]) ->
    Some ff
  | App (Eq, [ App (Uf "cons", [ h1; t1 ]); App (Uf "cons", [ h2; t2 ]) ]) ->
    Some (and_t (eq_t h1 h2) (eq_t t1 t2))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Executable semantics, for validating the lemma library by testing. *)

let rec interp (f : string) (args : value list) : value =
  let as_seq = function Vseq xs -> xs | _ -> raise (Eval_failed "seq expected") in
  let as_int = function Vint n -> n | _ -> raise (Eval_failed "int expected") in
  match (f, args) with
  | "nil", [] -> Vseq []
  | "cons", [ h; t ] -> Vseq (h :: as_seq t)
  | "append", [ a; b ] -> Vseq (as_seq a @ as_seq b)
  | "rev", [ a ] -> Vseq (List.rev (as_seq a))
  | "len", [ a ] -> Vint (B.of_int (List.length (as_seq a)))
  | "mem", [ x; s ] -> Vbool (List.exists (veq x) (as_seq s))
  | "disjoint", [ a; b ] ->
    Vbool (not (List.exists (fun x -> List.exists (veq x) (as_seq b)) (as_seq a)))
  | "shead", [ s ] -> (
    match as_seq s with h :: _ -> h | [] -> Vint B.zero)
  | "stail", [ s ] -> ( match as_seq s with _ :: t -> Vseq t | [] -> Vseq [])
  | "islist", [ next; valid; p; ps ] ->
    let sel arr i =
      match arr with
      | Varr (entries, d) -> (
        match List.assoc_opt i entries with Some v -> v | None -> d)
      | _ -> raise (Eval_failed "array expected")
    in
    let rec go p ps =
      match ps with
      | [] -> B.is_zero p
      | h :: tl ->
        B.equal p (as_int h)
        && (not (B.is_zero p))
        && sel valid p = Vbool true
        && go (as_int (sel next p)) tl
    in
    Vbool (go (as_int p) (as_seq ps))
  | _ -> raise (Eval_failed ("no interpretation for " ^ f))
