module B = Ac_bignum
open Term

(* Linear integer arithmetic by Fourier-Motzkin elimination with integer
   tightening (a small slice of the Omega test).  Decides unsatisfiability
   of conjunctions of constraints of the form  0 <= c0 + Σ ci·xi  and
   0 = c0 + Σ ci·xi; sound and complete enough for the verification
   conditions this code base produces (refutation-complete for rationals,
   with normalised-coefficient tightening catching the common integer
   cases). *)

(* constraint: is_eq, constant, atom coefficients (atom -> coeff) *)
type constr = {
  is_eq : bool;
  const : B.t;
  coeffs : (Term.t * B.t) list; (* sorted by Term.compare_t *)
}

let pp_constr fmt c =
  Format.fprintf fmt "0 %s %s" (if c.is_eq then "=" else "<=") (B.to_string c.const);
  List.iter
    (fun (a, k) -> Format.fprintf fmt " + %s*%s" (B.to_string k) (Term.to_string a))
    c.coeffs

(* Build from a simplified comparison (as produced by Simp). *)
let of_term (t : Term.t) : constr option =
  let to_lin t =
    let l = Simp.linearize t in
    (l.Simp.Lin.const, l.Simp.Lin.terms)
  in
  match t with
  | App (Le, [ a; b ]) ->
    let ca, ta = to_lin a and cb, tb = to_lin b in
    (* 0 <= b - a *)
    let l = Simp.Lin.sub { Simp.Lin.const = cb; terms = tb } { Simp.Lin.const = ca; terms = ta } in
    Some { is_eq = false; const = l.Simp.Lin.const; coeffs = l.Simp.Lin.terms }
  | App (Lt, [ a; b ]) ->
    let l = Simp.Lin.sub (Simp.linearize b) (Simp.linearize a) in
    Some { is_eq = false; const = B.pred l.Simp.Lin.const; coeffs = l.Simp.Lin.terms }
  | App (Eq, [ a; b ]) when sort_equal (sort_of a) Sint ->
    let l = Simp.Lin.sub (Simp.linearize b) (Simp.linearize a) in
    Some { is_eq = true; const = l.Simp.Lin.const; coeffs = l.Simp.Lin.terms }
  | _ -> None

let negate_term (t : Term.t) : Term.t option =
  (* ¬(a <= b) = b + 1 <= a  etc.; equalities under negation are handled by
     the solver's case split. *)
  match t with
  | App (Le, [ a; b ]) -> Some (App (Le, [ App (Add, [ b; one ]); a ]))
  | App (Lt, [ a; b ]) -> Some (App (Le, [ b; a ]))
  | _ -> None

let coeff_of atom c =
  match List.find_opt (fun (a, _) -> Term.equal a atom) c.coeffs with
  | Some (_, k) -> k
  | None -> B.zero

let drop_atom atom c =
  { c with coeffs = List.filter (fun (a, _) -> not (Term.equal a atom)) c.coeffs }

let scale_constr k c =
  { c with
    const = B.mul k c.const;
    coeffs = List.map (fun (a, x) -> (a, B.mul k x)) c.coeffs }

let add_constr a b =
  let l =
    Simp.Lin.add
      { Simp.Lin.const = a.const; terms = a.coeffs }
      { Simp.Lin.const = b.const; terms = b.coeffs }
  in
  { is_eq = a.is_eq && b.is_eq; const = l.Simp.Lin.const; coeffs = l.Simp.Lin.terms }

(* Normalise: divide an inequality by the gcd of its coefficients, flooring
   the constant (integer tightening); detect ground (un)satisfiability. *)
let tighten c =
  match c.coeffs with
  | [] -> Some c
  | _ ->
    let g = List.fold_left (fun g (_, k) -> B.gcd g k) B.zero c.coeffs in
    if B.le g B.one then Some c
    else if c.is_eq then
      if B.is_zero (B.rem c.const g) then
        Some
          { c with
            const = B.div c.const g;
            coeffs = List.map (fun (a, k) -> (a, B.div k g)) c.coeffs }
      else None (* 0 = c + g·(...) with g ∤ c: unsatisfiable *)
    else
      Some
        { c with
          const = B.fdiv c.const g;
          coeffs = List.map (fun (a, k) -> (a, B.div k g)) c.coeffs }

exception Unsat

let check_ground c =
  if c.coeffs = [] then begin
    if c.is_eq then begin
      if not (B.is_zero c.const) then raise Unsat
    end
    else if B.lt c.const B.zero then raise Unsat;
    false (* ground and satisfied: drop *)
  end
  else true

(* Eliminate one atom by Fourier-Motzkin / equality substitution. *)
let eliminate atom (cs : constr list) : constr list =
  let with_atom, without = List.partition (fun c -> not (B.is_zero (coeff_of atom c))) cs in
  (* Prefer an equality with ±1 coefficient for exact substitution. *)
  match
    List.find_opt
      (fun c -> c.is_eq && B.equal (B.abs (coeff_of atom c)) B.one)
      with_atom
  with
  | Some eq ->
    (* Exact substitution using an equality with a unit coefficient:
       c' = c - (kc/k)·eq eliminates the atom (k = ±1, so kc/k = kc·k). *)
    let k = coeff_of atom eq in
    List.filter_map
      (fun c ->
        if c == eq then None
        else begin
          let kc = coeff_of atom c in
          if B.is_zero kc then Some c
          else begin
            let c' = drop_atom atom (add_constr c (scale_constr (B.neg (B.mul kc k)) eq)) in
            match tighten c' with
            | None -> raise Unsat
            | Some t -> if check_ground t then Some t else None
          end
        end)
      (with_atom @ without)
  | None ->
    (* Split equalities into two inequalities first. *)
    let with_atom =
      List.concat_map
        (fun c ->
          if c.is_eq then
            [ { c with is_eq = false };
              { is_eq = false;
                const = B.neg c.const;
                coeffs = List.map (fun (a, k) -> (a, B.neg k)) c.coeffs } ]
          else [ c ])
        with_atom
    in
    let lower, upper =
      List.partition (fun c -> B.gt (coeff_of atom c) B.zero) with_atom
    in
    let combos =
      List.concat_map
        (fun lo ->
          List.map
            (fun up ->
              let kl = coeff_of atom lo and ku = B.neg (coeff_of atom up) in
              (* kl > 0, ku > 0: ku·lo + kl·up cancels the atom *)
              let c = add_constr (scale_constr ku lo) (scale_constr kl up) in
              drop_atom atom c)
            upper)
        lower
    in
    List.filter_map
      (fun c ->
        match tighten c with
        | None -> raise Unsat
        | Some t -> if check_ground t then Some t else None)
      (combos @ without)

(* Decide unsatisfiability of a conjunction of (already simplified)
   arithmetic literals.  Returns true iff definitely unsatisfiable. *)
let unsat (terms : Term.t list) : bool =
  match
    List.fold_left
      (fun acc t ->
        match acc with
        | None -> None
        | Some cs -> (
          match of_term t with
          | Some c -> (
            match tighten c with
            | None -> raise Unsat
            | Some c -> if check_ground c then Some (c :: cs) else Some cs)
          | None -> Some cs))
      (Some []) terms
  with
  | exception Unsat -> true
  | None -> false
  | Some cs -> (
    (* Eliminate atoms with a unit-coefficient equality first: substitution
       is exact (integrality-preserving), whereas Fourier-Motzkin is only
       rationally complete, so doing FM first can lose divisibility facts
       (e.g. a = 8q + r with bounded r). *)
    let atoms_of cs =
      List.sort_uniq Term.compare_t (List.concat_map (fun c -> List.map fst c.coeffs) cs)
    in
    let has_unit_eq cs atom =
      List.exists (fun c -> c.is_eq && B.equal (B.abs (coeff_of atom c)) B.one) cs
    in
    let rec subst_round cs =
      match List.find_opt (has_unit_eq cs) (atoms_of cs) with
      | Some atom -> subst_round (eliminate atom cs)
      | None -> cs
    in
    match
      let cs = subst_round cs in
      List.fold_left (fun cs atom -> eliminate atom cs) cs (atoms_of cs)
    with
    | _ -> false
    | exception Unsat -> true)
