module B = Ac_bignum

(* The prover's term language.

   Verification conditions over the abstracted programs live here: ideal
   integers (naturals carry explicit non-negativity facts), booleans, and
   the split heaps as select/store arrays indexed by addresses-as-integers.
   This is deliberately the vocabulary of Mehta and Nipkow's high-level
   proofs [18]: the heap-abstraction phase is what makes C code fit it. *)

type sort =
  | Sint (* ideal integers; also pointers (addresses) *)
  | Sbool
  | Sarr of sort (* integer-indexed arrays: split heaps, validity maps *)
  | Sseq (* finite sequences (ghost lists) *)

let rec sort_equal a b =
  match (a, b) with
  | Sint, Sint | Sbool, Sbool | Sseq, Sseq -> true
  | Sarr x, Sarr y -> sort_equal x y
  | (Sint | Sbool | Sarr _ | Sseq), _ -> false

(* Total order on sorts, consistent with [sort_equal]. *)
let rec sort_compare a b =
  let rank = function Sint -> 0 | Sbool -> 1 | Sarr _ -> 2 | Sseq -> 3 in
  match (a, b) with
  | Sarr x, Sarr y -> sort_compare x y
  | _ -> Int.compare (rank a) (rank b)

let rec pp_sort fmt = function
  | Sint -> Format.pp_print_string fmt "int"
  | Sbool -> Format.pp_print_string fmt "bool"
  | Sarr s -> Format.fprintf fmt "(array %a)" pp_sort s
  | Sseq -> Format.pp_print_string fmt "seq"

(* Sorts of the sequence-theory function symbols (see Seq). *)
let uf_sort = function
  | "islist" | "mem" | "disjoint" -> Sbool
  | "nil" | "cons" | "append" | "rev" | "stail" -> Sseq
  | _ -> Sint

type sym =
  | Add
  | Sub
  | Neg
  | Mul
  | Div (* truncated, matching the spec language *)
  | Mod
  | Le
  | Lt
  | Eq (* polymorphic *)
  | Not
  | And
  | Or
  | Imp
  | Ite (* polymorphic *)
  | Select (* array read *)
  | Store (* array write *)
  | Uf of string (* uninterpreted / user-defined function *)

let sym_name = function
  | Add -> "+"
  | Sub -> "-"
  | Neg -> "neg"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"
  | Le -> "<="
  | Lt -> "<"
  | Eq -> "="
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Imp -> "=>"
  | Ite -> "ite"
  | Select -> "select"
  | Store -> "store"
  | Uf f -> f

(* Explicit equality and order on symbols: [Uf] carries a string, and the
   constant constructors get a fixed rank, so neither relies on the
   polymorphic primitives (a requirement for anything used as a hash-cons
   or map key — see [compare_t]/[hash_t] below). *)
let sym_equal f g =
  match (f, g) with
  | Uf a, Uf b -> String.equal a b
  | Uf _, _ | _, Uf _ -> false
  | _ -> f = g (* both constant constructors: immediate *)

let sym_rank = function
  | Add -> 0 | Sub -> 1 | Neg -> 2 | Mul -> 3 | Div -> 4 | Mod -> 5
  | Le -> 6 | Lt -> 7 | Eq -> 8 | Not -> 9 | And -> 10 | Or -> 11
  | Imp -> 12 | Ite -> 13 | Select -> 14 | Store -> 15 | Uf _ -> 16

let sym_compare f g =
  match (f, g) with
  | Uf a, Uf b -> String.compare a b
  | _ -> Int.compare (sym_rank f) (sym_rank g)

type t =
  | Int of B.t
  | Bool of bool
  | Var of string * sort
  | App of sym * t list

let tt = Bool true
let ff = Bool false
let zero = Int B.zero
let one = Int B.one
let int_of n = Int (B.of_int n)

(* ------------------------------------------------------------------ *)
(* Structure. *)

(* The physical fast path makes equality O(1) on hash-consed terms (see
   [hc] below): two interned terms are equal iff they are the same node,
   and structurally-compared terms short-circuit on shared subterms. *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Int x, Int y -> B.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Var (x, s), Var (y, u) -> String.equal x y && sort_equal s u
  | App (f, xs), App (g, ys) ->
    sym_equal f g && List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Int _ | Bool _ | Var _ | App _), _ -> false

(* Total order, consistent with [equal]: [compare_t a b = 0 <=> equal a b].
   In particular variables are ordered by name *and then sort*, matching
   the name-and-sort equality above (two same-named variables of different
   sorts must not collapse in a [compare_t]-keyed map), and no case falls
   back to the polymorphic primitives. *)
let rec compare_t a b =
  if a == b then 0
  else
    match (a, b) with
    | Int x, Int y -> B.compare x y
    | Bool x, Bool y -> Bool.compare x y
    | Var (x, s), Var (y, u) ->
      let c = String.compare x y in
      if c <> 0 then c else sort_compare s u
    | App (f, xs), App (g, ys) ->
      let c = sym_compare f g in
      if c <> 0 then c
      else begin
        let c = Int.compare (List.length xs) (List.length ys) in
        if c <> 0 then c
        else
          List.fold_left2 (fun acc x y -> if acc <> 0 then acc else compare_t x y) 0 xs ys
      end
    | Int _, _ -> -1
    | _, Int _ -> 1
    | Bool _, _ -> -1
    | _, Bool _ -> 1
    | Var _, _ -> -1
    | _, Var _ -> 1

(* Hashtables keyed on *physical* identity.  [Hashtbl.hash] is fine as
   the bucket function: it bounds its own traversal (so it is O(1) even
   on deep terms), and any collision is resolved by a pointer compare. *)
module PhysTbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* Per-domain memo of the full structural hash of interned nodes (see the
   hash-consing section below; [intern] populates it, [hc_clear] drops
   it).  A node is in this table iff it is this domain's canonical
   representative — [intern] also uses membership as its O(1) fast path. *)
let hash_memo_key : int PhysTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> PhysTbl.create 1024)

(* Full structural hash, consistent with [equal]: integer leaves go
   through [B.hash] (the polymorphic hash would be wrong on any
   non-canonical bignum representation).  The traversal is NOT
   depth-bounded — truncating made every deep term that agrees near the
   root land in one bucket, degrading the hash-cons table and the cc
   index to linear scans — instead the hash of every interned node is
   memoized, so hashing a term built from interned children is O(arity),
   and interning a fresh term is O(1) amortized per node. *)
let comb acc h = ((acc * 65599) + h) land max_int

let rec hash_t (t : t) : int =
  match PhysTbl.find_opt (Domain.DLS.get hash_memo_key) t with
  | Some h -> h
  | None -> (
    match t with
    | Int n -> comb 3 (B.hash n)
    | Bool b -> if b then 5 else 7
    | Var (x, s) -> comb (comb 11 (Hashtbl.hash x)) (Hashtbl.hash s)
    | App (f, xs) ->
      List.fold_left
        (fun acc x -> comb acc (hash_t x))
        (comb (comb 13 (Hashtbl.hash (sym_name f))) (List.length xs))
        xs)

(* Hashtables keyed on terms (structural equality, [B]-aware hash).  Used
   by the hash-cons table below and by the congruence closure's term
   index. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash_t
end)

(* ------------------------------------------------------------------ *)
(* Hash-consing.

   [hc] returns the canonical, maximally-shared representative of a term:
   for any [a] and [b], [hc a == hc b <=> equal a b] (within one domain).
   Canonical nodes also carry a unique id ([hc_id]), usable as a cheap
   hash key.  This is a pure performance layer: nothing in the kernel or
   the prover *relies* on sharing for soundness — the tables live outside
   any trusted code, and [equal] falls back to the structural walk for
   non-interned terms.

   The state is domain-local (each worker of the parallel driver interns
   into its own table), so no locking is needed and physical-identity
   claims never cross domains.  The driver clears the main domain's table
   per run; worker tables die with their domain. *)

type hc_state = {
  hc_tbl : t Tbl.t; (* structural term -> canonical representative *)
  hc_ids : int Tbl.t; (* canonical representative -> unique id *)
  mutable hc_next : int;
}

let hc_key =
  Domain.DLS.new_key (fun () ->
      { hc_tbl = Tbl.create 1024; hc_ids = Tbl.create 1024; hc_next = 0 })

(* A/B switch for the bench harness: with interning off, [hc] is the
   identity, [equal]/[compare_t] lose their physical fast path on solver
   terms, and the pipeline behaves as it did before hash-consing — the
   honest baseline a speedup is measured against.  Everything stays
   correct either way ([equal] always falls back to the structural
   walk). *)
let hc_enabled = ref true

let rec intern (t : t) : t =
  let memo = Domain.DLS.get hash_memo_key in
  if PhysTbl.mem memo t then t (* already this domain's canonical node *)
  else begin
    (* Canonicalise the children first (sharing them), THEN look the
       rebuilt node up: its children are interned, so hashing it costs
       O(arity) via the memo rather than a full structural walk. *)
    let c =
      match t with
      | Int _ | Bool _ | Var _ -> t
      | App (f, xs) ->
        let xs' = List.map intern xs in
        if List.for_all2 ( == ) xs xs' then t else App (f, xs')
    in
    let st = Domain.DLS.get hc_key in
    match Tbl.find_opt st.hc_tbl c with
    | Some canon -> canon
    | None ->
      Tbl.replace st.hc_tbl c c;
      st.hc_next <- st.hc_next + 1;
      Tbl.replace st.hc_ids c st.hc_next;
      PhysTbl.replace memo c (hash_t c);
      c
  end

let hc (t : t) : t = if !hc_enabled then intern t else t

(* The unique id of a term's canonical representative (interns [t] even
   when the [hc] fast path is switched off, so ids are always total). *)
let hc_id (t : t) : int =
  let st = Domain.DLS.get hc_key in
  match Tbl.find_opt st.hc_ids (intern t) with Some i -> i | None -> assert false

(* Number of distinct terms interned in this domain's table. *)
let hc_size () = Tbl.length (Domain.DLS.get hc_key).hc_tbl

(* Drop this domain's table (the driver calls this per run, so canonical
   nodes — and their ids — never leak across runs). *)
let hc_clear () =
  let st = Domain.DLS.get hc_key in
  Tbl.reset st.hc_tbl;
  Tbl.reset st.hc_ids;
  st.hc_next <- 0;
  PhysTbl.reset (Domain.DLS.get hash_memo_key)

let children = function App (_, xs) -> xs | _ -> []

let rec fold f acc t = List.fold_left (fold f) (f acc t) (children t)

let size t = fold (fun n _ -> n + 1) 0 t

let free_vars t =
  let module SSet = Set.Make (String) in
  fold (fun acc t -> match t with Var (x, _) -> SSet.add x acc | _ -> acc) SSet.empty t
  |> SSet.elements

let var_sorts t =
  fold
    (fun acc t ->
      match t with
      | Var (x, s) -> if List.mem_assoc x acc then acc else (x, s) :: acc
      | _ -> acc)
    [] t

let rec subst (bindings : (string * t) list) t =
  match t with
  | Var (x, _) -> ( match List.assoc_opt x bindings with Some v -> v | None -> t)
  | App (f, xs) -> App (f, List.map (subst bindings) xs)
  | Int _ | Bool _ -> t

(* ------------------------------------------------------------------ *)
(* Constructors with light simplification. *)

let not_t = function
  | Bool b -> Bool (not b)
  | App (Not, [ x ]) -> x
  | x -> App (Not, [ x ])

let and_t a b =
  match (a, b) with
  | Bool true, x | x, Bool true -> x
  | Bool false, _ | _, Bool false -> ff
  | _ -> App (And, [ a; b ])

let or_t a b =
  match (a, b) with
  | Bool false, x | x, Bool false -> x
  | Bool true, _ | _, Bool true -> tt
  | _ -> App (Or, [ a; b ])

let imp_t a b =
  match (a, b) with
  | Bool true, x -> x
  | Bool false, _ | _, Bool true -> tt
  | _ -> App (Imp, [ a; b ])

let conj = function [] -> tt | x :: xs -> List.fold_left and_t x xs
let disj = function [] -> ff | x :: xs -> List.fold_left or_t x xs

let eq_t a b = if equal a b then tt else App (Eq, [ a; b ])
let le_t a b = App (Le, [ a; b ])
let lt_t a b = App (Lt, [ a; b ])
let add_t a b = App (Add, [ a; b ])
let sub_t a b = App (Sub, [ a; b ])
let mul_t a b = App (Mul, [ a; b ])
let ite_t c a b = match c with Bool true -> a | Bool false -> b | _ -> App (Ite, [ c; a; b ])
let select_t a i = App (Select, [ a; i ])
let store_t a i v = App (Store, [ a; i; v ])

(* ------------------------------------------------------------------ *)
(* Sort inference (best effort; terms are constructed well-sorted). *)

let rec sort_of (t : t) : sort =
  match t with
  | Int _ -> Sint
  | Bool _ -> Sbool
  | Var (_, s) -> s
  | App (f, args) -> (
    match f with
    | Add | Sub | Neg | Mul | Div | Mod -> Sint
    | Le | Lt | Eq | Not | And | Or | Imp -> Sbool
    | Ite -> ( match args with [ _; a; _ ] -> sort_of a | _ -> Sint)
    | Select -> (
      match args with
      | [ a; _ ] -> ( match sort_of a with Sarr s -> s | _ -> Sint)
      | _ -> Sint)
    | Store -> ( match args with a :: _ -> sort_of a | _ -> Sarr Sint)
    | Uf f -> uf_sort f)

(* ------------------------------------------------------------------ *)
(* Printing. *)

let rec pp fmt (t : t) =
  match t with
  | Int n -> B.pp fmt n
  | Bool b -> Format.pp_print_bool fmt b
  | Var (x, _) -> Format.pp_print_string fmt x
  | App (f, args) ->
    Format.fprintf fmt "@[<hov 1>(%s%a)@]" (sym_name f)
      (fun fmt -> List.iter (fun a -> Format.fprintf fmt "@ %a" pp a))
      args

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Ground evaluation under an assignment, for counter-model checking.
   Arrays are association lists with a default. *)

type value =
  | Vint of B.t
  | Vbool of bool
  | Varr of (B.t * value) list * value
  | Vseq of value list

exception Eval_failed of string

let rec veq a b =
  match (a, b) with
  | Vint x, Vint y -> B.equal x y
  | Vbool x, Vbool y -> Bool.equal x y
  | Varr (xs, dx), Varr (ys, dy) ->
    (* compare on the union of defined indices *)
    let keys = List.sort_uniq B.compare (List.map fst xs @ List.map fst ys) in
    veq dx dy
    && List.for_all
         (fun k ->
           let look l = match List.assoc_opt k l with Some v -> v | None -> dx in
           let looky l = match List.assoc_opt k l with Some v -> v | None -> dy in
           veq (look xs) (looky ys))
         keys
  | Vseq xs, Vseq ys -> List.length xs = List.length ys && List.for_all2 veq xs ys
  | (Vint _ | Vbool _ | Varr _ | Vseq _), _ -> false

let rec eval ?(interp : (string -> value list -> value) option) (env : (string * value) list)
    (t : t) : value =
  let eval env t = eval ?interp env t in
  let int_v t = match eval env t with Vint n -> n | _ -> raise (Eval_failed "int expected") in
  let bool_v t =
    match eval env t with Vbool b -> b | _ -> raise (Eval_failed "bool expected")
  in
  match t with
  | Int n -> Vint n
  | Bool b -> Vbool b
  | Var (x, _) -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> raise (Eval_failed ("unbound " ^ x)))
  | App (f, args) -> (
    match (f, args) with
    | Add, [ a; b ] -> Vint (B.add (int_v a) (int_v b))
    | Sub, [ a; b ] -> Vint (B.sub (int_v a) (int_v b))
    | Neg, [ a ] -> Vint (B.neg (int_v a))
    | Mul, [ a; b ] -> Vint (B.mul (int_v a) (int_v b))
    | Div, [ a; b ] ->
      let d = int_v b in
      Vint (if B.is_zero d then B.zero else B.div (int_v a) d)
    | Mod, [ a; b ] ->
      let d = int_v b in
      Vint (if B.is_zero d then int_v a else B.rem (int_v a) d)
    | Le, [ a; b ] -> Vbool (B.le (int_v a) (int_v b))
    | Lt, [ a; b ] -> Vbool (B.lt (int_v a) (int_v b))
    | Eq, [ a; b ] -> Vbool (veq (eval env a) (eval env b))
    | Not, [ a ] -> Vbool (not (bool_v a))
    | And, [ a; b ] -> Vbool (bool_v a && bool_v b)
    | Or, [ a; b ] -> Vbool (bool_v a || bool_v b)
    | Imp, [ a; b ] -> Vbool ((not (bool_v a)) || bool_v b)
    | Ite, [ c; a; b ] -> if bool_v c then eval env a else eval env b
    | Select, [ a; i ] -> (
      match eval env a with
      | Varr (entries, d) -> (
        match List.assoc_opt (int_v i) entries with Some v -> v | None -> d)
      | _ -> raise (Eval_failed "array expected"))
    | Store, [ a; i; v ] -> (
      match eval env a with
      | Varr (entries, d) -> Varr ((int_v i, eval env v) :: entries, d)
      | _ -> raise (Eval_failed "array expected"))
    | Uf f, _ -> (
      match interp with
      | Some i -> i f (List.map (eval env) args)
      | None -> raise (Eval_failed ("uninterpreted " ^ f)))
    | _ -> raise (Eval_failed ("arity: " ^ sym_name f)))
