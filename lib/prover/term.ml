module B = Ac_bignum

(* The prover's term language.

   Verification conditions over the abstracted programs live here: ideal
   integers (naturals carry explicit non-negativity facts), booleans, and
   the split heaps as select/store arrays indexed by addresses-as-integers.
   This is deliberately the vocabulary of Mehta and Nipkow's high-level
   proofs [18]: the heap-abstraction phase is what makes C code fit it. *)

type sort =
  | Sint (* ideal integers; also pointers (addresses) *)
  | Sbool
  | Sarr of sort (* integer-indexed arrays: split heaps, validity maps *)
  | Sseq (* finite sequences (ghost lists) *)

let rec sort_equal a b =
  match (a, b) with
  | Sint, Sint | Sbool, Sbool | Sseq, Sseq -> true
  | Sarr x, Sarr y -> sort_equal x y
  | (Sint | Sbool | Sarr _ | Sseq), _ -> false

let rec pp_sort fmt = function
  | Sint -> Format.pp_print_string fmt "int"
  | Sbool -> Format.pp_print_string fmt "bool"
  | Sarr s -> Format.fprintf fmt "(array %a)" pp_sort s
  | Sseq -> Format.pp_print_string fmt "seq"

(* Sorts of the sequence-theory function symbols (see Seq). *)
let uf_sort = function
  | "islist" | "mem" | "disjoint" -> Sbool
  | "nil" | "cons" | "append" | "rev" | "stail" -> Sseq
  | _ -> Sint

type sym =
  | Add
  | Sub
  | Neg
  | Mul
  | Div (* truncated, matching the spec language *)
  | Mod
  | Le
  | Lt
  | Eq (* polymorphic *)
  | Not
  | And
  | Or
  | Imp
  | Ite (* polymorphic *)
  | Select (* array read *)
  | Store (* array write *)
  | Uf of string (* uninterpreted / user-defined function *)

let sym_name = function
  | Add -> "+"
  | Sub -> "-"
  | Neg -> "neg"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"
  | Le -> "<="
  | Lt -> "<"
  | Eq -> "="
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Imp -> "=>"
  | Ite -> "ite"
  | Select -> "select"
  | Store -> "store"
  | Uf f -> f

type t =
  | Int of B.t
  | Bool of bool
  | Var of string * sort
  | App of sym * t list

let tt = Bool true
let ff = Bool false
let zero = Int B.zero
let one = Int B.one
let int_of n = Int (B.of_int n)

(* ------------------------------------------------------------------ *)
(* Structure. *)

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> B.equal x y
  | Bool x, Bool y -> x = y
  | Var (x, s), Var (y, u) -> String.equal x y && sort_equal s u
  | App (f, xs), App (g, ys) ->
    f = g && List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Int _ | Bool _ | Var _ | App _), _ -> false

let rec compare_t a b =
  match (a, b) with
  | Int x, Int y -> B.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Var (x, _), Var (y, _) -> String.compare x y
  | App (f, xs), App (g, ys) ->
    let c = Stdlib.compare f g in
    if c <> 0 then c
    else begin
      let c = Stdlib.compare (List.length xs) (List.length ys) in
      if c <> 0 then c
      else
        List.fold_left2 (fun acc x y -> if acc <> 0 then acc else compare_t x y) 0 xs ys
    end
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Var _, _ -> -1
  | _, Var _ -> 1

let children = function App (_, xs) -> xs | _ -> []

let rec fold f acc t = List.fold_left (fold f) (f acc t) (children t)

let size t = fold (fun n _ -> n + 1) 0 t

let free_vars t =
  let module SSet = Set.Make (String) in
  fold (fun acc t -> match t with Var (x, _) -> SSet.add x acc | _ -> acc) SSet.empty t
  |> SSet.elements

let var_sorts t =
  fold
    (fun acc t ->
      match t with
      | Var (x, s) -> if List.mem_assoc x acc then acc else (x, s) :: acc
      | _ -> acc)
    [] t

let rec subst (bindings : (string * t) list) t =
  match t with
  | Var (x, _) -> ( match List.assoc_opt x bindings with Some v -> v | None -> t)
  | App (f, xs) -> App (f, List.map (subst bindings) xs)
  | Int _ | Bool _ -> t

(* ------------------------------------------------------------------ *)
(* Constructors with light simplification. *)

let not_t = function
  | Bool b -> Bool (not b)
  | App (Not, [ x ]) -> x
  | x -> App (Not, [ x ])

let and_t a b =
  match (a, b) with
  | Bool true, x | x, Bool true -> x
  | Bool false, _ | _, Bool false -> ff
  | _ -> App (And, [ a; b ])

let or_t a b =
  match (a, b) with
  | Bool false, x | x, Bool false -> x
  | Bool true, _ | _, Bool true -> tt
  | _ -> App (Or, [ a; b ])

let imp_t a b =
  match (a, b) with
  | Bool true, x -> x
  | Bool false, _ | _, Bool true -> tt
  | _ -> App (Imp, [ a; b ])

let conj = function [] -> tt | x :: xs -> List.fold_left and_t x xs
let disj = function [] -> ff | x :: xs -> List.fold_left or_t x xs

let eq_t a b = if equal a b then tt else App (Eq, [ a; b ])
let le_t a b = App (Le, [ a; b ])
let lt_t a b = App (Lt, [ a; b ])
let add_t a b = App (Add, [ a; b ])
let sub_t a b = App (Sub, [ a; b ])
let mul_t a b = App (Mul, [ a; b ])
let ite_t c a b = match c with Bool true -> a | Bool false -> b | _ -> App (Ite, [ c; a; b ])
let select_t a i = App (Select, [ a; i ])
let store_t a i v = App (Store, [ a; i; v ])

(* ------------------------------------------------------------------ *)
(* Sort inference (best effort; terms are constructed well-sorted). *)

let rec sort_of (t : t) : sort =
  match t with
  | Int _ -> Sint
  | Bool _ -> Sbool
  | Var (_, s) -> s
  | App (f, args) -> (
    match f with
    | Add | Sub | Neg | Mul | Div | Mod -> Sint
    | Le | Lt | Eq | Not | And | Or | Imp -> Sbool
    | Ite -> ( match args with [ _; a; _ ] -> sort_of a | _ -> Sint)
    | Select -> (
      match args with
      | [ a; _ ] -> ( match sort_of a with Sarr s -> s | _ -> Sint)
      | _ -> Sint)
    | Store -> ( match args with a :: _ -> sort_of a | _ -> Sarr Sint)
    | Uf f -> uf_sort f)

(* ------------------------------------------------------------------ *)
(* Printing. *)

let rec pp fmt (t : t) =
  match t with
  | Int n -> B.pp fmt n
  | Bool b -> Format.pp_print_bool fmt b
  | Var (x, _) -> Format.pp_print_string fmt x
  | App (f, args) ->
    Format.fprintf fmt "@[<hov 1>(%s%a)@]" (sym_name f)
      (fun fmt -> List.iter (fun a -> Format.fprintf fmt "@ %a" pp a))
      args

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Ground evaluation under an assignment, for counter-model checking.
   Arrays are association lists with a default. *)

type value =
  | Vint of B.t
  | Vbool of bool
  | Varr of (B.t * value) list * value
  | Vseq of value list

exception Eval_failed of string

let rec veq a b =
  match (a, b) with
  | Vint x, Vint y -> B.equal x y
  | Vbool x, Vbool y -> x = y
  | Varr (xs, dx), Varr (ys, dy) ->
    (* compare on the union of defined indices *)
    let keys = List.sort_uniq B.compare (List.map fst xs @ List.map fst ys) in
    veq dx dy
    && List.for_all
         (fun k ->
           let look l = match List.assoc_opt k l with Some v -> v | None -> dx in
           let looky l = match List.assoc_opt k l with Some v -> v | None -> dy in
           veq (look xs) (looky ys))
         keys
  | Vseq xs, Vseq ys -> List.length xs = List.length ys && List.for_all2 veq xs ys
  | (Vint _ | Vbool _ | Varr _ | Vseq _), _ -> false

let rec eval ?(interp : (string -> value list -> value) option) (env : (string * value) list)
    (t : t) : value =
  let eval env t = eval ?interp env t in
  let int_v t = match eval env t with Vint n -> n | _ -> raise (Eval_failed "int expected") in
  let bool_v t =
    match eval env t with Vbool b -> b | _ -> raise (Eval_failed "bool expected")
  in
  match t with
  | Int n -> Vint n
  | Bool b -> Vbool b
  | Var (x, _) -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> raise (Eval_failed ("unbound " ^ x)))
  | App (f, args) -> (
    match (f, args) with
    | Add, [ a; b ] -> Vint (B.add (int_v a) (int_v b))
    | Sub, [ a; b ] -> Vint (B.sub (int_v a) (int_v b))
    | Neg, [ a ] -> Vint (B.neg (int_v a))
    | Mul, [ a; b ] -> Vint (B.mul (int_v a) (int_v b))
    | Div, [ a; b ] ->
      let d = int_v b in
      Vint (if B.is_zero d then B.zero else B.div (int_v a) d)
    | Mod, [ a; b ] ->
      let d = int_v b in
      Vint (if B.is_zero d then int_v a else B.rem (int_v a) d)
    | Le, [ a; b ] -> Vbool (B.le (int_v a) (int_v b))
    | Lt, [ a; b ] -> Vbool (B.lt (int_v a) (int_v b))
    | Eq, [ a; b ] -> Vbool (veq (eval env a) (eval env b))
    | Not, [ a ] -> Vbool (not (bool_v a))
    | And, [ a; b ] -> Vbool (bool_v a && bool_v b)
    | Or, [ a; b ] -> Vbool (bool_v a || bool_v b)
    | Imp, [ a; b ] -> Vbool ((not (bool_v a)) || bool_v b)
    | Ite, [ c; a; b ] -> if bool_v c then eval env a else eval env b
    | Select, [ a; i ] -> (
      match eval env a with
      | Varr (entries, d) -> (
        match List.assoc_opt (int_v i) entries with Some v -> v | None -> d)
      | _ -> raise (Eval_failed "array expected"))
    | Store, [ a; i; v ] -> (
      match eval env a with
      | Varr (entries, d) -> Varr ((int_v i, eval env v) :: entries, d)
      | _ -> raise (Eval_failed "array expected"))
    | Uf f, _ -> (
      match interp with
      | Some i -> i f (List.map (eval env) args)
      | None -> raise (Eval_failed ("uninterpreted " ^ f)))
    | _ -> raise (Eval_failed ("arity: " ^ sym_name f)))
