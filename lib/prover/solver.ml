module B = Ac_bignum
open Term

(* The automatic prover ("auto"): simplification, case splitting, congruence
   closure and linear integer arithmetic.

   This is deliberately a *generic* prover over ideal integers and split
   heaps: the paper's thesis is that, once AutoCorres has removed machine
   words and byte-level memory, ordinary automation of this kind discharges
   the verification conditions (Sec 5).  The same prover, pointed at
   word-level goals, fails exactly where Isabelle users report pain
   (footnote 2) — see the benchmarks. *)

type outcome =
  | Proved
  | Unknown of Term.t list list (* open branches (their remaining facts) *)
  | Refuted of (string * Term.value) list (* countermodel for the original goal *)

type stats = { mutable branches : int; mutable cc_closed : int; mutable la_closed : int }

let new_stats () = { branches = 0; cc_closed = 0; la_closed = 0 }

(* ------------------------------------------------------------------ *)
(* Div/mod elaboration: replace div/mod by fresh variables constrained by
   the division identity, making the arithmetic linear. *)

let elaborate_divmod (facts : Term.t list) : Term.t list =
  let counter = ref 0 in
  let table : (Term.t * (Term.t * Term.t)) list ref = ref [] in
  (* association by [Term.equal], not the polymorphic equality *)
  let assoc_term key l =
    List.find_map (fun (k, v) -> if Term.equal k key then Some v else None) l
  in
  let extra = ref [] in
  let rec walk (t : Term.t) : Term.t =
    match t with
    | App (((Div | Mod) as op), [ a; (Int k as divisor) ]) when B.gt k B.zero -> (
      let a = walk a in
      let key = App (Div, [ a; divisor ]) in
      let q, r =
        match assoc_term key !table with
        | Some qr -> qr
        | None ->
          incr counter;
          let q = Var (Printf.sprintf "q%d'" !counter, Sint) in
          let r = Var (Printf.sprintf "r%d'" !counter, Sint) in
          table := (key, (q, r)) :: !table;
          (* Truncated division identity, valid for dividends of either
             sign (the remainder takes the dividend's sign):
               a = k*q + r  ∧  (a ≥ 0 → 0 ≤ r < k ∧ q ≥ 0)
                            ∧  (a < 0 → -k < r ≤ 0 ∧ q ≤ 0) *)
          extra :=
            eq_t a (add_t (mul_t (Int k) q) r)
            :: imp_t (le_t zero a)
                 (conj [ le_t zero r; lt_t r (Int k); le_t zero q ])
            :: imp_t (lt_t a zero)
                 (conj [ lt_t (Int (B.neg k)) r; le_t r zero; le_t q zero ])
            :: !extra;
          (q, r)
      in
      match op with Div -> q | _ -> r)
    | App (f, args) -> App (f, List.map walk args)
    | _ -> t
  in
  let facts = List.map walk facts in
  facts @ !extra

(* ------------------------------------------------------------------ *)
(* Splitting: one step of tableau expansion on a composite fact; facts are
   things assumed true on the current branch. *)

let rec split_fact (t : Term.t) : [ `Units of Term.t list | `Branch of Term.t list list | `Literal ]
    =
  match t with
  | App (And, [ a; b ]) -> `Units [ a; b ]
  | App (Not, [ App (Or, [ a; b ]) ]) -> `Units [ not_t a; not_t b ]
  | App (Not, [ App (Imp, [ a; b ]) ]) -> `Units [ a; not_t b ]
  | App (Not, [ App (Not, [ a ]) ]) -> `Units [ a ]
  | App (Or, [ a; b ]) -> `Branch [ [ a ]; [ b ] ]
  | App (Imp, [ a; b ]) -> `Branch [ [ not_t a ]; [ b ] ]
  | App (Not, [ App (And, [ a; b ]) ]) -> `Branch [ [ not_t a ]; [ not_t b ] ]
  | App (Eq, [ a; b ]) when sort_equal (sort_of a) Sbool && sort_equal (sort_of b) Sbool ->
    `Branch [ [ a; b ]; [ not_t a; not_t b ] ]
  | App (Not, [ App (Eq, [ a; b ]) ])
    when sort_equal (sort_of a) Sbool && sort_equal (sort_of b) Sbool ->
    `Branch [ [ a; not_t b ]; [ not_t a; b ] ]
  | App (Ite, [ c; a; b ]) when sort_equal (sort_of t) Sbool ->
    `Branch [ [ c; a ]; [ not_t c; b ] ]
  | App (Not, [ App (Ite, [ c; a; b ]) ]) -> `Branch [ [ c; not_t a ]; [ not_t c; not_t b ] ]
  | _ -> `Literal

and find_ite (t : Term.t) : Term.t option =
  (* an ite in a non-boolean position, to split on *)
  match t with
  | App (Ite, [ c; _; _ ]) when not (sort_equal (sort_of t) Sbool) -> Some c
  | App (_, args) ->
    List.fold_left
      (fun acc a -> match acc with Some _ -> acc | None -> find_ite a)
      None args
  | _ -> None

(* Replace ites under a decided condition. *)
let rec resolve_ite cond value (t : Term.t) : Term.t =
  match t with
  | App (Ite, [ c; a; b ]) when Term.equal c cond ->
    if value then resolve_ite cond value a else resolve_ite cond value b
  | App (f, args) -> App (f, List.map (resolve_ite cond value) args)
  | _ -> t

(* ------------------------------------------------------------------ *)
(* Branch closing. *)

(* Recover an equation pair from a linear-canonicalised integer equality
   (0 = u - v, 0 = u - c, ...), so congruence closure sees through the
   simplifier's normal form. *)
let as_eq_pair a b : (Term.t * Term.t) option =
  let d = Simp.Lin.sub (Simp.linearize b) (Simp.linearize a) in
  match d.Simp.Lin.terms with
  | [ (u, c1); (v, c2) ]
    when B.is_zero d.Simp.Lin.const && B.equal (B.abs c1) B.one && B.equal (B.add c1 c2) B.zero
    ->
    Some (u, v)
  | [ (u, c1) ] when B.equal (B.abs c1) B.one ->
    let rhs = if B.equal c1 B.one then B.neg d.Simp.Lin.const else d.Simp.Lin.const in
    Some (u, Int rhs)
  | _ -> Some (a, b)

let close_with_cc (lits : Term.t list) : bool =
  let cc = Cc.create () in
  (* Intern everything first so later merges re-congruence all
     applications, then equalities, then disequalities. *)
  List.iter (fun l -> ignore (Cc.intern cc l)) lits;
  List.iter
    (fun l ->
      match l with
      | App (Eq, [ a; b ]) -> (
        (match as_eq_pair a b with
        | Some (u, v) -> Cc.assert_eq cc u v
        | None -> ());
        Cc.assert_eq cc a b)
      | App (Not, [ _ ]) | Bool _ -> ()
      | a -> Cc.assert_eq cc a tt)
    lits;
  List.iter
    (fun l ->
      match l with
      | App (Not, [ App (Eq, [ a; b ]) ]) -> (
        (match as_eq_pair a b with
        | Some (u, v) -> Cc.assert_neq cc u v
        | None -> ());
        Cc.assert_neq cc a b)
      | App (Not, [ a ]) -> Cc.assert_neq cc a tt
      | Bool false -> Cc.assert_neq cc tt tt
      | _ -> ())
    lits;
  Cc.inconsistent cc

let close_with_la (lits : Term.t list) : bool =
  let arith =
    List.filter_map
      (fun l ->
        match l with
        | App ((Le | Lt), _) -> Some l
        | App (Eq, [ a; _ ]) when sort_equal (sort_of a) Sint -> Some l
        | App (Not, [ (App ((Le | Lt), _) as cmp) ]) -> La.negate_term cmp
        | _ -> None)
      lits
  in
  (* Disequalities over integers: try both strict sides on at most two of
     them (cheap completeness boost). *)
  let diseqs =
    List.filter_map
      (fun l ->
        match l with
        | App (Not, [ App (Eq, [ a; b ]) ]) when sort_equal (sort_of a) Sint -> Some (a, b)
        | _ -> None)
      lits
  in
  let rec with_diseqs base = function
    | [] -> La.unsat base
    | (a, b) :: rest when List.length rest < 3 ->
      with_diseqs (lt_t a b :: base) rest && with_diseqs (lt_t b a :: base) rest
    | _ :: rest -> with_diseqs base rest
  in
  if arith = [] then false else with_diseqs arith (if List.length diseqs <= 3 then diseqs else [])

let complementary (lits : Term.t list) : bool =
  List.exists (fun l -> Term.equal l ff) lits
  || List.exists
       (fun l ->
         match l with
         | App (Not, [ a ]) -> List.exists (Term.equal a) lits
         | _ -> List.exists (fun l' -> Term.equal l' (not_t l)) lits)
       lits

(* ------------------------------------------------------------------ *)
(* The tableau loop, under a resource budget: a branch limit (as before)
   plus an optional per-goal deadline.  Exhausting either aborts the
   refutation ([Too_hard]) and the caller degrades to [Unknown] — the goal
   stays open, soundness is untouched, and the prover cannot hang a
   pipeline that embeds it. *)

type budget = { max_branches : int; deadline_s : float option (* seconds per goal *) }

let default_budget = { max_branches = 40000; deadline_s = None }
let budget = ref default_budget

(* How many times a proof attempt ran out of budget (for `acc stats` /
   degradation reporting).  Reset by the driver per run; atomic because
   the driver's worker domains prove goals concurrently. *)
let exhaustions = Atomic.make 0

(* Test-only fault injection: answers [true] to abort the current proof
   attempt as if the budget had run out (a simulated solver timeout). *)
let fault_hook : (unit -> bool) option ref = ref None

let set_fault_hook h = fault_hook := h

exception Too_hard

(* Absolute deadline for the goal currently being proved; [prove] is not
   reentrant (nothing in the code base re-enters it), but the parallel
   driver does prove goals in several domains at once, so the deadline is
   domain-local.  Wall clock, not [Sys.time]: process CPU time advances
   [jobs] times faster than the wall when every worker is busy, which
   would make per-goal deadlines fire early. *)
let deadline_key : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let out_of_time () =
  match Domain.DLS.get deadline_key with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let rec refute (stats : stats) (pending : Term.t list) (lits : Term.t list) : bool =
  stats.branches <- stats.branches + 1;
  if stats.branches > !budget.max_branches then raise Too_hard;
  (* Wall clock is polled on the first branch and then every 64th, keeping
     the Sys.time cost off the hot path. *)
  if stats.branches land 63 = 1 && out_of_time () then raise Too_hard;
  (match !fault_hook with Some f when f () -> raise Too_hard | _ -> ());
  match pending with
  | [] ->
    (* leaf: try the closing procedures *)
    if complementary lits then true
    else if close_with_cc lits then begin
      stats.cc_closed <- stats.cc_closed + 1;
      true
    end
    else if close_with_la lits then begin
      stats.la_closed <- stats.la_closed + 1;
      true
    end
    else begin
      (* last resort: split on an ite condition buried in a literal *)
      match
        List.fold_left
          (fun acc l -> match acc with Some _ -> acc | None -> find_ite l)
          None lits
      with
      | Some c ->
        let with_c =
          c :: List.map (fun l -> hc (Simp.normalize (resolve_ite c true l))) lits
        in
        let without_c =
          not_t c :: List.map (fun l -> hc (Simp.normalize (resolve_ite c false l))) lits
        in
        refute stats with_c [] && refute stats without_c []
      | None -> false
    end
  | f :: rest -> (
    (* Normalised facts are hash-consed: branch literals end up maximally
       shared, so the membership tests above ([complementary], the literal
       lookups) hit [Term.equal]'s physical fast path. *)
    let f = hc (Simp.normalize f) in
    match f with
    | Bool true -> refute stats rest lits
    | Bool false -> true
    | _ -> (
      match split_fact f with
      | `Units us -> refute stats (us @ rest) lits
      | `Branch branches ->
        List.for_all (fun br -> refute stats (br @ rest) lits) branches
      | `Literal ->
        if List.exists (Term.equal (not_t f)) lits then true
        else refute stats rest (f :: lits)))

(* ------------------------------------------------------------------ *)
(* Countermodel search: random assignments evaluated against the goal. *)

let try_refute ?(attempts = 400) (hyps : Term.t list) (goal : Term.t) :
    (string * Term.value) list option =
  let vars =
    List.sort_uniq
      (fun (x, s) (y, u) ->
        let c = String.compare x y in
        if c <> 0 then c else sort_compare s u)
      (List.concat_map var_sorts (goal :: hyps))
  in
  let rand = Random.State.make [| 0xBEEF |] in
  let sample (s : sort) : Term.value =
    match s with
    | Sbool -> Vbool (Random.State.bool rand)
    | Sint -> (
      match Random.State.int rand 8 with
      | 0 -> Vint B.zero
      | 1 -> Vint B.one
      | 2 -> Vint (B.pred (B.pow2 32))
      | 3 -> Vint (B.pow2 31)
      | 4 -> Vint (B.neg (B.of_int (Random.State.int rand 1000)))
      | _ -> Vint (B.of_int (Random.State.int rand 1_000_000)))
    | Sarr _ -> Varr ([], Vint B.zero)
    | Sseq ->
      Vseq
        (List.init (Random.State.int rand 4) (fun _ ->
             Vint (B.of_int (Random.State.int rand 6))))
  in
  let rec go n =
    if n <= 0 then None
    else begin
      let env = List.map (fun (x, s) -> (x, sample s)) vars in
      let interp = Seq.interp in
      let is_bool b t =
        match Term.eval ~interp env t with Vbool b' -> Bool.equal b b' | _ -> false
      in
      match List.for_all (is_bool true) hyps && is_bool false goal with
      | true -> Some env
      | false -> go (n - 1)
      | exception Term.Eval_failed _ -> go (n - 1)
    end
  in
  go attempts

(* ------------------------------------------------------------------ *)

let prove ?(hyps = []) (goal : Term.t) : outcome * stats =
  let stats = new_stats () in
  Domain.DLS.set deadline_key
    (Option.map (fun d -> Unix.gettimeofday () +. d) !budget.deadline_s);
  let facts =
    List.map hc (elaborate_divmod (List.map Simp.normalize (not_t goal :: hyps)))
  in
  let refuted =
    match refute stats facts [] with
    | r -> r
    | exception Too_hard ->
      Atomic.incr exhaustions;
      false
  in
  Domain.DLS.set deadline_key None;
  match refuted with
  | true -> (Proved, stats)
  | false -> (
    match try_refute hyps goal with
    | Some model -> (Refuted model, stats)
    | None -> (Unknown [], stats))

let is_proved = function Proved -> true | _ -> false

(* Convenience: prove and return a boolean. *)
let holds ?hyps goal = is_proved (fst (prove ?hyps goal))
