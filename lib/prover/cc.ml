module B = Ac_bignum
open Term

(* Congruence closure over ground terms: decides the theory of equality
   with uninterpreted functions.  Used to close proof branches whose facts
   include equations between heap reads, pointers and ghost values. *)

type node = {
  term : Term.t;
  mutable parent : int; (* union-find *)
  mutable uses : (int * Term.t) list; (* parent applications *)
}

type t = {
  mutable nodes : node array;
  mutable count : int;
  (* Keyed with [Term.equal]/[Term.hash_t], not the polymorphic primitives:
     terms carry [B.t] leaves whose representation the generic hash must
     not be trusted with. *)
  index : int Term.Tbl.t;
  mutable disequalities : (int * int) list;
  mutable contradiction : bool;
  mutable merges : int;
  mutable spent : bool;
}

(* Budget: union operations per closure instance.  The re-congruence
   cascade in [merge] is the only super-linear loop here; when the budget
   runs out the closure stops merging, which only *under*-approximates the
   equalities — a proof branch may fail to close (the goal stays open),
   but nothing unsound is ever concluded.  The driver installs the per-run
   value; [exhaustions] feeds `acc stats`. *)
let merge_budget = ref 50_000
let exhaustions = Atomic.make 0

let create () =
  { nodes = Array.make 64 { term = tt; parent = 0; uses = [] };
    count = 0;
    index = Term.Tbl.create 64;
    disequalities = [];
    contradiction = false;
    merges = 0;
    spent = false }

let rec find cc i =
  let n = cc.nodes.(i) in
  if n.parent = i then i
  else begin
    let r = find cc n.parent in
    n.parent <- r;
    r
  end

let rec intern cc (t : Term.t) : int =
  match Term.Tbl.find_opt cc.index t with
  | Some i -> i
  | None ->
    let i = cc.count in
    if i >= Array.length cc.nodes then begin
      let bigger = Array.make (2 * Array.length cc.nodes) cc.nodes.(0) in
      Array.blit cc.nodes 0 bigger 0 i;
      cc.nodes <- bigger
    end;
    cc.nodes.(i) <- { term = t; parent = i; uses = [] };
    cc.count <- i + 1;
    Term.Tbl.replace cc.index t i;
    (match t with
    | App (_, args) ->
      List.iter
        (fun a ->
          let j = intern cc a in
          let r = find cc j in
          cc.nodes.(r).uses <- (i, t) :: cc.nodes.(r).uses)
        args
    | _ -> ());
    (* two distinct integer constants are disequal *)
    (match t with
    | Int _ ->
      Term.Tbl.iter
        (fun t' j ->
          match t' with
          | Int _ when not (Term.equal t t') -> cc.disequalities <- (i, j) :: cc.disequalities
          | _ -> ())
        cc.index
    | _ -> ());
    i

(* The congruence signature of an application under current classes. *)
let signature cc (t : Term.t) =
  match t with
  | App (f, args) -> Some (f, List.map (fun a -> find cc (intern cc a)) args)
  | _ -> None

let rec merge cc i j =
  if cc.merges >= !merge_budget then begin
    if not cc.spent then begin
      cc.spent <- true;
      Atomic.incr exhaustions
    end
  end
  else begin
    cc.merges <- cc.merges + 1;
    merge_classes cc i j
  end

and merge_classes cc i j =
  let ri = find cc i and rj = find cc j in
  if ri <> rj then begin
    (* collect users before the union *)
    let users = cc.nodes.(ri).uses @ cc.nodes.(rj).uses in
    cc.nodes.(ri).parent <- rj;
    cc.nodes.(rj).uses <- users;
    (* re-congruence: any two parent applications with equal signatures
       (compared explicitly — a signature carries a [sym]) *)
    let sig_equal (f, args1) (g, args2) =
      Term.sym_equal f g && List.equal Int.equal args1 args2
    in
    let with_sigs =
      List.filter_map
        (fun (idx, t) -> match signature cc t with Some s -> Some (idx, s) | None -> None)
        users
    in
    List.iter
      (fun (idx1, s1) ->
        List.iter
          (fun (idx2, s2) -> if idx1 <> idx2 && sig_equal s1 s2 then merge cc idx1 idx2)
          with_sigs)
      with_sigs;
    (* check disequalities *)
    if
      List.exists (fun (a, b) -> find cc a = find cc b) cc.disequalities
    then cc.contradiction <- true
  end

let assert_eq cc a b =
  let i = intern cc a and j = intern cc b in
  merge cc i j;
  if List.exists (fun (x, y) -> find cc x = find cc y) cc.disequalities then
    cc.contradiction <- true

let assert_neq cc a b =
  let i = intern cc a and j = intern cc b in
  if find cc i = find cc j then cc.contradiction <- true
  else cc.disequalities <- (i, j) :: cc.disequalities

let equal_terms cc a b =
  let i = intern cc a and j = intern cc b in
  find cc i = find cc j

let inconsistent cc = cc.contradiction
