(** Concurrent socket front-end for [acc serve]: many clients over a
    Unix-domain socket (and optionally localhost TCP), newline-delimited
    framing identical to stdin mode, all feeding one bounded in-flight
    scheduler on a single-threaded [Unix.select] event loop.

    Failure model (summary; DESIGN.md has the full contract):
    - at most [max_inflight] requests queued/executing across all
      connections; beyond that, requests are shed with the structured
      line {!overloaded_response} — in request order, because shed
      markers ride the same FIFO as real requests;
    - when [shutting] flips, the loop closes its listeners, harvests
      requests already sent by clients (one final fault-free read
      sweep), answers everything queued, flushes, and returns;
    - injected [Io_error] faults skip one read/write syscall and retry
      next iteration (transient, never lossy); [Slow] delays accept. *)

type config = {
  socket_path : string option;
  tcp_port : int option;  (** bound on 127.0.0.1 only *)
  max_inflight : int;
  backlog : int;
  shutting : bool Atomic.t;  (** flipped by the CLI's signal handlers *)
}

type sched_stats = {
  active_conns : int;  (** connections currently open *)
  total_conns : int;  (** connections ever accepted *)
  queued : int;  (** items waiting in the scheduler (incl. shed markers) *)
  shed : int;  (** requests refused with {!overloaded_response} *)
  drained : int;  (** requests completed during shutdown drain *)
  net_io_faults : int;  (** injected socket I/O faults absorbed *)
}

type t

(** The exact line sent for a shed request (without the trailing
    newline).  Stable: ci and clients match on it byte-for-byte. *)
val overloaded_response : string

(** Bind and listen.  Unix path: a stale socket file left by a dead
    server is replaced; any other existing file is an error.  TCP binds
    loopback only. *)
val create : config -> (t, string) result

(** Event loop.  [handler] maps one trimmed, non-empty request line to
    its one-line JSON response (no trailing newline) and MUST be total —
    serve's handler answers malformed requests with an error object
    rather than raising.  [on_shed] is invoked once per shed request so
    the CLI can count it against its request/failure counters.  Returns
    after a drain completes. *)
val run : t -> handler:(string -> string) -> on_shed:(unit -> unit) -> unit

val stats : t -> sched_stats
