(** Concurrent socket front-end for [acc serve]: many clients over a
    Unix-domain socket (and optionally localhost TCP), newline-delimited
    framing identical to stdin mode, all feeding one bounded in-flight
    scheduler on a single-threaded [Unix.select] event loop.

    Failure model (summary; DESIGN.md has the full contract):
    - at most [max_inflight] requests queued/executing across all
      connections; beyond that, requests are shed with the structured
      line {!overloaded_response} — in request order, because shed
      markers ride the same FIFO as real requests;
    - when [shutting] flips, the loop closes its listeners, harvests
      requests already sent by clients (one final fault-free read
      sweep), answers everything queued, flushes, and returns;
    - injected [Io_error] faults skip one read/write syscall and retry
      next iteration (transient, never lossy); [Slow] delays accept. *)

type config = {
  socket_path : string option;
  tcp_port : int option;  (** bound on 127.0.0.1 only *)
  metrics_port : int option;
      (** scrape/health HTTP plane ([GET /metrics] etc.), 127.0.0.1 only.
          Served by the same select loop — scrapes are answered between
          request executions, so a render always sees the metrics
          registry quiescent, and request output stays byte-identical
          whether or not anyone is scraping. *)
  max_inflight : int;
  backlog : int;
  shutting : bool Atomic.t;  (** flipped by the CLI's signal handlers *)
}

type sched_stats = {
  active_conns : int;  (** connections currently open *)
  total_conns : int;  (** connections ever accepted *)
  queued : int;  (** items waiting in the scheduler (incl. shed markers) *)
  shed : int;  (** requests refused with {!overloaded_response} *)
  drained : int;  (** requests completed during shutdown drain *)
  net_io_faults : int;  (** injected socket I/O faults absorbed *)
}

type t

(** The exact line sent for a shed request (without the trailing
    newline).  Stable: ci and clients match on it byte-for-byte. *)
val overloaded_response : string

(** Bind and listen.  Unix path: a stale socket file left by a dead
    server is replaced; any other existing file is an error.  TCP binds
    loopback only. *)
val create : config -> (t, string) result

(** Event loop.  [handler] maps one trimmed, non-empty request line to
    its one-line JSON response (no trailing newline) and MUST be total —
    serve's handler answers malformed requests with an error object
    rather than raising.  [queued_s] is the time the request spent in
    the scheduler queue before execution (feeds the slow-request log).
    [on_shed] is invoked once per shed request so the CLI can count it
    against its request/failure counters.

    [http] answers one metrics-plane request: path -> (status, body);
    the server adds the HTTP framing and closes the connection after the
    response.  Only consulted when [metrics_port] is set.  [on_tick]
    runs once per loop iteration, between I/O and execution — the CLI
    uses it to honour SIGUSR1 flight-recorder dumps promptly.

    Returns after a drain completes. *)
val run :
  ?http:(string -> int * string) ->
  ?on_tick:(unit -> unit) ->
  handler:(queued_s:float -> string -> string) ->
  on_shed:(unit -> unit) ->
  t ->
  unit

val stats : t -> sched_stats
