(* Concurrent socket front-end for `acc serve`.

   Many clients, one scheduler.  The server accepts connections on a
   Unix-domain socket (and optionally a localhost TCP port), frames
   requests per connection with newline-delimited lines — the exact
   grammar and JSON response shape of stdin serve mode, byte for byte —
   and feeds every connection's requests into ONE bounded in-flight
   scheduler running over the process's shared Pool + Supervisor +
   Store.

   Architecture: a single-threaded [Unix.select] event loop.  Request
   execution is serialized on the main domain (the handler may run the
   full translation pipeline, which parallelizes *internally* via the
   worker pool under [--jobs]); the event loop interleaves socket I/O
   with execution by running at most one request between select calls.
   This keeps the translation core — whose global state (profile
   counters, check cache, store counters) is reset per run — on one
   domain, exactly as stdin mode has always run it, so socket mode
   inherits its correctness unchanged.

   Backpressure: at most [max_inflight] requests may be queued or
   executing across all connections.  A request arriving beyond that is
   *shed*: the client gets a structured
   [{"ok":false,"error":"overloaded"}] line instead of the server
   buffering without bound or hanging the accept loop.  Shed responses
   ride the same FIFO queue as real ones (as [i_req = None] markers) so
   each connection still sees exactly one response per request line, in
   order — a client that pipelines 10 requests into a full server gets
   its successes and its overloads in request order, never reordered.

   Shutdown: on SIGTERM/SIGINT the CLI flips [cfg.shutting]; the loop
   then stops accepting, closes the listeners, performs one final
   non-blocking read sweep per connection (harvesting requests the
   client had already sent — these were promised a response), executes
   everything queued, flushes all output, and returns so the process
   can exit 0.  Requests completed during this phase are counted in
   [drained].

   Fault injection: the PR 7 harness extends to the socket layer.
   [Io_error] fires ahead of connection reads and writes — the syscall
   is *skipped* for that loop iteration, modelling a transient EIO; the
   data stays in the kernel buffer (reads) or our queue (writes) and
   the next iteration retries, so injected faults degrade latency but
   never correctness.  [Slow] fires ahead of accept.  The drain sweep
   and drain-time flushes bypass injection: shutdown must terminate. *)

module Faults = Autocorres.Faults
module Obs = Ac_obs.Obs

type config = {
  socket_path : string option;
  tcp_port : int option;  (* bound on 127.0.0.1 only *)
  metrics_port : int option;  (* scrape/health HTTP plane, 127.0.0.1 only *)
  max_inflight : int;
  backlog : int;
  shutting : bool Atomic.t;  (* flipped by the CLI's signal handlers *)
}

type sched_stats = {
  active_conns : int;
  total_conns : int;
  queued : int;
  shed : int;
  drained : int;
  net_io_faults : int;
}

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Line_buf.t;
  (* Responses awaiting write, each '\n'-terminated, paired with their
     enqueue timestamp (0. when tracing is off) so the flush latency can
     be emitted as a span when the last byte leaves. *)
  c_out : (Bytes.t * float) Queue.t;
  mutable c_out_bytes : int;
  mutable c_ofs : int;  (* partial-write offset into the head of c_out *)
  mutable c_eof : bool;
  mutable c_pending : int;  (* this conn's items still in the scheduler queue *)
  mutable c_dead : bool;
}

(* [i_req = None] is a shed marker: it occupies the connection's slot in
   the FIFO so the overload response comes out in request order, but it
   does not count against [max_inflight] (shedding under load must not
   itself consume capacity).  [i_ts] is the ingest timestamp (0. when
   tracing is off) from which queue wait is measured. *)
type item = { i_conn : conn; i_req : string option; i_ts : float }

(* One scrape connection on the metrics plane: read until the blank line
   ending the request head, answer once, close.  Scrapes are handled in
   the select loop itself — between request executions, never during one
   — so a [/metrics] render always sees the registry quiescent with
   respect to the translation core. *)
type hconn = {
  h_fd : Unix.file_descr;
  h_buf : Buffer.t;
  mutable h_out : Bytes.t;  (* empty until the request head is complete *)
  mutable h_ofs : int;
  mutable h_responded : bool;
  mutable h_dead : bool;
}

(* A request head larger than this is not a scrape; answer 400. *)
let max_http_head = 8192

type t = {
  cfg : config;
  mutable listeners : Unix.file_descr list;
  mutable mlistener : Unix.file_descr option;  (* metrics plane *)
  mutable conns : conn list;
  mutable hconns : hconn list;
  queue : item Queue.t;
  mutable inflight : int;  (* real requests queued or executing *)
  mutable total_conns : int;
  mutable shed : int;
  mutable drained : int;
  mutable net_io_faults : int;
  mutable draining : bool;
}

let overloaded_response = "{\"ok\":false,\"error\":\"overloaded\"}"

(* Cap on un-flushed response bytes per connection before we stop
   *reading* from it: a client that pipelines requests but never reads
   responses must stall, not balloon our memory. *)
let max_unflushed = 1 lsl 20

let listen_unix path backlog =
  (match Unix.stat path with
  | st when st.Unix.st_kind = Unix.S_SOCK ->
    (* Stale socket from a previous (crashed) server; safe to replace.
       Anything else at that path is the operator's, and an error. *)
    Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  fd

let listen_tcp port backlog =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  fd

let create (cfg : config) : (t, string) result =
  match
    let ls = ref [] in
    (match cfg.socket_path with
    | Some p -> ls := listen_unix p cfg.backlog :: !ls
    | None -> ());
    (match cfg.tcp_port with
    | Some p -> ls := listen_tcp p cfg.backlog :: !ls
    | None -> ());
    if !ls = [] then failwith "socket server: no listen address (need --socket or --tcp)";
    let ml = Option.map (fun p -> listen_tcp p cfg.backlog) cfg.metrics_port in
    (!ls, ml)
  with
  | listeners, mlistener ->
    Ok
      {
        cfg;
        listeners;
        mlistener;
        conns = [];
        hconns = [];
        queue = Queue.create ();
        inflight = 0;
        total_conns = 0;
        shed = 0;
        drained = 0;
        net_io_faults = 0;
        draining = false;
      }
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, fn, arg) ->
    Error (Printf.sprintf "socket server: %s(%s): %s" fn arg (Unix.error_message e))

let stats (t : t) : sched_stats =
  {
    active_conns = List.length t.conns;
    total_conns = t.total_conns;
    queued = Queue.length t.queue;
    shed = t.shed;
    drained = t.drained;
    net_io_faults = t.net_io_faults;
  }

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let enqueue_out (c : conn) (resp : string) =
  if not c.c_dead then begin
    let b = Bytes.of_string (resp ^ "\n") in
    Queue.push (b, if Obs.enabled () then Obs.mono_s () else 0.) c.c_out;
    c.c_out_bytes <- c.c_out_bytes + Bytes.length b
  end

(* Minimal HTTP/1.0-style framing for the metrics plane: status line,
   Content-Length, Connection: close.  [body] is rendered by the CLI's
   [http] callback; scrapers (Prometheus, curl) need nothing more. *)
let http_response (status : int) (body : string) : Bytes.t =
  let reason =
    match status with
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  Bytes.of_string
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: text/plain; version=0.0.4; \
        charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status reason (String.length body) body)

(* First token after the verb in the request line ("GET /metrics
   HTTP/1.1" -> "/metrics"); None if the head is not a GET. *)
let http_path (head : string) : string option =
  let line =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> ( match String.index_opt head '\n' with
      | Some i -> String.sub head 0 i
      | None -> head)
  in
  match String.split_on_char ' ' line with
  | "GET" :: path :: _ when path <> "" -> Some path
  | _ -> None

let run ?(http = fun (_ : string) -> (404, "not found\n"))
    ?(on_tick = fun () -> ()) ~(handler : queued_s:float -> string -> string)
    ~(on_shed : unit -> unit) (t : t) : unit =
  let chunk = Bytes.create 65536 in

  (* One trimmed request line enters the scheduler — or is shed.  Empty
     lines are skipped here, exactly as stdin mode skips them, so they
     neither get a response nor count as requests.  The ingest timestamp
     is always taken (queue wait feeds the slow-request log and the
     latency breakdown even with tracing off); only the span emission
     stays gated on [Obs.enabled]. *)
  let ingest (c : conn) raw =
    let line = String.trim raw in
    if line <> "" then begin
      let ts = Obs.mono_s () in
      if t.inflight >= t.cfg.max_inflight then begin
        t.shed <- t.shed + 1;
        on_shed ();
        Obs.instant ~cat:"serve" "req.shed";
        c.c_pending <- c.c_pending + 1;
        Queue.push { i_conn = c; i_req = None; i_ts = ts } t.queue
      end
      else begin
        t.inflight <- t.inflight + 1;
        c.c_pending <- c.c_pending + 1;
        Queue.push { i_conn = c; i_req = Some line; i_ts = ts } t.queue
      end
    end
  in
  let drain_lines (c : conn) =
    let rec go () =
      match Line_buf.next c.c_buf with
      | Some l ->
        ingest c l;
        go ()
      | None -> ()
    in
    go ()
  in
  let on_eof (c : conn) =
    c.c_eof <- true;
    (* A final unterminated line is still a request: stdin mode serves
       it at EOF, so socket mode must too. *)
    match Line_buf.take_rest c.c_buf with Some tail -> ingest c tail | None -> ()
  in

  let do_accept lfd =
    Faults.sleep_if_slow ();
    match Unix.accept ~cloexec:true lfd with
    | cfd, _ ->
      Unix.set_nonblock cfd;
      let c =
        {
          c_fd = cfd;
          c_buf = Line_buf.create ();
          c_out = Queue.create ();
          c_out_bytes = 0;
          c_ofs = 0;
          c_eof = false;
          c_pending = 0;
          c_dead = false;
        }
      in
      t.total_conns <- t.total_conns + 1;
      if Obs.enabled () then
        Obs.instant ~cat:"serve" ~args:[ ("total", string_of_int t.total_conns) ]
          "conn.accept";
      t.conns <- c :: t.conns
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      ()
  in

  (* An injected read fault is transient by construction — the fd stays
     readable, so select reschedules it and the retry sees the same
     bytes.  Injection degrades latency, never drops a request. *)
  let do_read (c : conn) =
    if Faults.fire Faults.Io_error then
      t.net_io_faults <- t.net_io_faults + 1
    else
      match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
      | 0 -> on_eof c
      | n ->
        Line_buf.add c.c_buf chunk 0 n;
        drain_lines c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error _ -> c.c_dead <- true
  in

  let do_write (c : conn) =
    if (not t.draining) && Faults.fire Faults.Io_error then
      t.net_io_faults <- t.net_io_faults + 1
    else if not (Queue.is_empty c.c_out) then begin
      let b, enq_ts = Queue.peek c.c_out in
      match Unix.write c.c_fd b c.c_ofs (Bytes.length b - c.c_ofs) with
      | n ->
        c.c_ofs <- c.c_ofs + n;
        c.c_out_bytes <- c.c_out_bytes - n;
        if c.c_ofs = Bytes.length b then begin
          ignore (Queue.pop c.c_out);
          c.c_ofs <- 0;
          (* Response fully handed to the kernel: the flush interval runs
             from response enqueue to last byte written. *)
          if enq_ts > 0. then
            Obs.complete ~cat:"serve" ~ts0:enq_ts ~dur:(Obs.mono_s () -. enq_ts)
              "req.flush"
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error _ ->
        (* EPIPE/ECONNRESET: peer is gone; drop its output. *)
        c.c_dead <- true;
        Queue.clear c.c_out;
        c.c_out_bytes <- 0;
        c.c_ofs <- 0
    end
  in

  (* --- metrics plane (scrape/health HTTP) ---
     No fault injection here: the ops plane must stay readable precisely
     when the request plane is being tortured. *)
  let http_accept lfd =
    match Unix.accept ~cloexec:true lfd with
    | cfd, _ ->
      Unix.set_nonblock cfd;
      t.hconns <-
        { h_fd = cfd; h_buf = Buffer.create 256; h_out = Bytes.empty; h_ofs = 0;
          h_responded = false; h_dead = false }
        :: t.hconns
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      ()
  in
  let http_respond (h : hconn) =
    let head = Buffer.contents h.h_buf in
    let status, body =
      match http_path head with
      | Some path -> http path
      | None -> (400, "bad request\n")
    in
    h.h_out <- http_response status body;
    h.h_responded <- true
  in
  let head_complete (h : hconn) =
    let s = Buffer.contents h.h_buf in
    let mem sub =
      let n = String.length sub and l = String.length s in
      let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    mem "\r\n\r\n" || mem "\n\n"
  in
  let http_read (h : hconn) =
    match Unix.read h.h_fd chunk 0 (Bytes.length chunk) with
    | 0 -> if not h.h_responded then h.h_dead <- true
    | n ->
      Buffer.add_subbytes h.h_buf chunk 0 n;
      if head_complete h then http_respond h
      else if Buffer.length h.h_buf > max_http_head then begin
        h.h_out <- http_response 400 "bad request\n";
        h.h_responded <- true
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> h.h_dead <- true
  in
  let http_write (h : hconn) =
    match Unix.write h.h_fd h.h_out h.h_ofs (Bytes.length h.h_out - h.h_ofs) with
    | n ->
      h.h_ofs <- h.h_ofs + n;
      (* Connection: close — one answer per scrape connection. *)
      if h.h_ofs = Bytes.length h.h_out then h.h_dead <- true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> h.h_dead <- true
  in
  let http_reap () =
    let live, finished = List.partition (fun h -> not h.h_dead) t.hconns in
    List.iter (fun h -> close_quietly h.h_fd) finished;
    t.hconns <- live
  in

  (* Run at most ONE queued request, then return to the select loop so
     I/O stays responsive while a long translation runs between
     iterations. *)
  let execute_one () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some { i_conn = c; i_req = None; i_ts = _ } ->
      c.c_pending <- c.c_pending - 1;
      enqueue_out c overloaded_response
    | Some { i_conn = c; i_req = Some req; i_ts } ->
      let queued_s = Obs.mono_s () -. i_ts in
      if Obs.enabled () then
        Obs.complete ~cat:"serve" ~ts0:i_ts ~dur:queued_s "req.queue_wait";
      (* The handler runs even if the client vanished: counters and
         store effects must not depend on connection lifetime. *)
      let resp = handler ~queued_s req in
      t.inflight <- t.inflight - 1;
      c.c_pending <- c.c_pending - 1;
      if t.draining then t.drained <- t.drained + 1;
      enqueue_out c resp
  in

  let reap () =
    let live, finished =
      List.partition
        (fun c ->
          (not c.c_dead)
          && not (c.c_eof && c.c_pending = 0 && Queue.is_empty c.c_out))
        t.conns
    in
    List.iter
      (fun c ->
        close_quietly c.c_fd;
        Obs.instant ~cat:"serve" "conn.close")
      finished;
    t.conns <- live
  in

  let enter_drain () =
    t.draining <- true;
    List.iter close_quietly t.listeners;
    t.listeners <- [];
    (* The metrics plane dies immediately: scrapes, unlike request
       lines, are not promised an answer across shutdown. *)
    Option.iter close_quietly t.mlistener;
    t.mlistener <- None;
    List.iter (fun h -> close_quietly h.h_fd) t.hconns;
    t.hconns <- [];
    (* Final read sweep: harvest everything each client already sent —
       those requests were promised a response.  Non-blocking, and
       bypassing fault injection (shutdown must make progress).  After
       this sweep, reads stop for good. *)
    List.iter
      (fun c ->
        if (not c.c_dead) && not c.c_eof then begin
          let continue = ref true in
          while !continue do
            match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              on_eof c;
              continue := false
            | n ->
              Line_buf.add c.c_buf chunk 0 n;
              drain_lines c
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
              ->
              continue := false
            | exception Unix.Unix_error _ ->
              c.c_dead <- true;
              continue := false
          done
        end)
      t.conns
  in

  let finished () =
    t.draining
    && Queue.is_empty t.queue
    && List.for_all (fun c -> Queue.is_empty c.c_out) t.conns
  in

  let stop = ref false in
  while not !stop do
    on_tick ();
    if Atomic.get t.cfg.shutting && not t.draining then enter_drain ();
    if finished () then begin
      List.iter (fun c -> close_quietly c.c_fd) t.conns;
      t.conns <- [];
      (match t.cfg.socket_path with
      | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      | None -> ());
      stop := true
    end
    else begin
      let rds =
        (if t.draining then [] else t.listeners)
        @ (match t.mlistener with Some fd when not t.draining -> [ fd ] | _ -> [])
        @ List.filter_map
            (fun h -> if h.h_dead || h.h_responded then None else Some h.h_fd)
            t.hconns
        @ List.filter_map
            (fun c ->
              if c.c_dead || c.c_eof || t.draining || c.c_out_bytes > max_unflushed
              then None
              else Some c.c_fd)
            t.conns
      in
      let wrs =
        List.filter_map
          (fun h ->
            if (not h.h_dead) && h.h_responded && h.h_ofs < Bytes.length h.h_out
            then Some h.h_fd
            else None)
          t.hconns
        @ List.filter_map
            (fun c ->
              if (not c.c_dead) && not (Queue.is_empty c.c_out) then Some c.c_fd
              else None)
            t.conns
      in
      let timeout = if Queue.is_empty t.queue then 0.5 else 0.0 in
      let r_ready, w_ready =
        match Unix.select rds wrs [] timeout with
        | r, w, _ -> (r, w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      in
      List.iter
        (fun fd ->
          if List.memq fd t.listeners then do_accept fd
          else if (match t.mlistener with Some m -> fd == m | None -> false) then
            http_accept fd
          else
            match List.find_opt (fun h -> h.h_fd == fd) t.hconns with
            | Some h -> http_read h
            | None -> (
              match List.find_opt (fun c -> c.c_fd == fd) t.conns with
              | Some c -> do_read c
              | None -> ()))
        r_ready;
      List.iter
        (fun fd ->
          match List.find_opt (fun h -> h.h_fd == fd) t.hconns with
          | Some h -> http_write h
          | None -> (
            match List.find_opt (fun c -> c.c_fd == fd) t.conns with
            | Some c -> do_write c
            | None -> ()))
        w_ready;
      execute_one ();
      reap ();
      http_reap ()
    end
  done
