(* Built-in line client for the socket server: `acc serve --connect
   PATH` relays stdin to the server and server output to stdout, so
   shell scripts (ci.sh, the test suite) can talk to the socket without
   depending on socat/netcat being installed.

   The relay is intentionally dumb — it forwards bytes as they arrive,
   which makes it a *pipelining* client: requests written to its stdin
   go out immediately, without waiting for earlier responses.  On stdin
   EOF it half-closes the socket ([SHUTDOWN_SEND]) so the server sees
   EOF while responses can still flow back; it exits when the server
   closes the connection (after answering everything, per the server's
   reap rule). *)

let write_all fd b ofs len =
  let off = ref ofs and remaining = ref len in
  while !remaining > 0 do
    match Unix.write fd b !off !remaining with
    | n ->
      off := !off + n;
      remaining := !remaining - n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let run ~path : int =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "acc serve --connect: %s: %s\n%!" path (Unix.error_message e);
    1
  | () ->
    let buf = Bytes.create 65536 in
    let stdin_open = ref true in
    let srv_open = ref true in
    let rc = ref 0 in
    (try
       while !srv_open do
         let rds = if !stdin_open then [ Unix.stdin; fd ] else [ fd ] in
         match Unix.select rds [] [] (-1.0) with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | rs, _, _ ->
           if List.memq Unix.stdin rs then begin
             match Unix.read Unix.stdin buf 0 (Bytes.length buf) with
             | 0 ->
               stdin_open := false;
               (try Unix.shutdown fd Unix.SHUTDOWN_SEND
                with Unix.Unix_error _ -> ())
             | n -> write_all fd buf 0 n
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
           end;
           if List.memq fd rs then begin
             match Unix.read fd buf 0 (Bytes.length buf) with
             | 0 -> srv_open := false
             | n -> write_all Unix.stdout buf 0 n
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> srv_open := false
           end
       done
     with Unix.Unix_error (e, _, _) ->
       (* Server died mid-conversation (EPIPE on write, etc.). *)
       Printf.eprintf "acc serve --connect: connection lost: %s\n%!"
         (Unix.error_message e);
       rc := 1);
    (try Unix.close fd with Unix.Unix_error _ -> ());
    !rc
