(** Incremental newline-delimited framing buffer: O(total bytes)
    regardless of how input is chunked, replacing the O(n²)
    [Buffer.contents]-per-line reader in the original serve loop.
    Bytes go in via {!add}/{!add_string}; complete lines (without their
    terminating ['\n']) come out via {!next}. *)

type t

val create : ?capacity:int -> unit -> t

(** Bytes buffered but not yet returned as lines. *)
val pending : t -> int

(** [add t chunk ofs n] appends [chunk.[ofs .. ofs+n-1]]. *)
val add : t -> Bytes.t -> int -> int -> unit

val add_string : t -> string -> unit

(** Next complete line, consuming it; [None] when no ['\n'] is
    buffered.  A partial line stays buffered (and stays scanned —
    re-calling [next] does not rescan it). *)
val next : t -> string option

(** The unterminated tail, if any — for EOF handling, where a final
    line without ['\n'] must still be served.  Empties the buffer. *)
val take_rest : t -> string option
