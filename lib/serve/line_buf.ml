(* Incremental newline-delimited framing buffer.

   The serve loop's original reader kept one [Buffer.t] and called
   [Buffer.contents] + [String.index_from] for every extracted line —
   each extraction copied the *whole* remaining buffer, so a pipelined
   batch of n requests arriving in one chunk cost O(n²) bytes of
   copying.  This buffer does the same job with two offsets:

   - [start]: the beginning of un-consumed data (everything before it
     has already been returned as lines);
   - [scan]:  where the newline search resumes.  Bytes in
     [start, scan) have already been scanned and contain no newline, so
     a long line fed in many chunks is still scanned once.

   Consumed space is reclaimed lazily: when the buffer must grow we
   first compact (shift [start, len) down to 0); when everything is
   consumed we reset the offsets.  Net effect: each byte is copied into
   the buffer once, scanned once, and copied out once — O(total bytes)
   for any chunking. *)

type t = {
  mutable buf : Bytes.t;
  mutable start : int;  (* consumed prefix ends here *)
  mutable len : int;  (* valid data ends here *)
  mutable scan : int;  (* newline search resumes here; start <= scan <= len *)
}

let create ?(capacity = 4096) () =
  { buf = Bytes.create (max capacity 16); start = 0; len = 0; scan = 0 }

let pending t = t.len - t.start

(* Make room for [n] more bytes: compact first (cheap, and usually
   enough once lines are being consumed), grow only if still needed. *)
let reserve t n =
  if t.len + n > Bytes.length t.buf then begin
    if t.start > 0 then begin
      Bytes.blit t.buf t.start t.buf 0 (t.len - t.start);
      t.len <- t.len - t.start;
      t.scan <- t.scan - t.start;
      t.start <- 0
    end;
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end
  end

let add t (chunk : Bytes.t) ofs n =
  if n > 0 then begin
    reserve t n;
    Bytes.blit chunk ofs t.buf t.len n;
    t.len <- t.len + n
  end

let add_string t s = add t (Bytes.unsafe_of_string s) 0 (String.length s)

let next t : string option =
  (* Manual bounded scan: [Bytes.index_from] would happily run past
     [len] into stale bytes from previously consumed lines. *)
  let i = ref t.scan in
  while !i < t.len && Bytes.get t.buf !i <> '\n' do
    incr i
  done;
  if !i >= t.len then begin
    t.scan <- t.len;
    None
  end
  else begin
    let line = Bytes.sub_string t.buf t.start (!i - t.start) in
    t.start <- !i + 1;
    t.scan <- t.start;
    if t.start = t.len then begin
      t.start <- 0;
      t.len <- 0;
      t.scan <- 0
    end;
    Some line
  end

let take_rest t : string option =
  if t.len = t.start then None
  else begin
    let s = Bytes.sub_string t.buf t.start (t.len - t.start) in
    t.start <- 0;
    t.len <- 0;
    t.scan <- 0;
    Some s
  end
