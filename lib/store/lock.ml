(* Advisory inter-process locking for the proof store directory.

   Uses POSIX record locks ([Unix.lockf]) on a dedicated [.lock] file
   inside the store directory.  Record locks have exactly the semantics
   we need for crash tolerance: they are owned by the *process* (so a
   re-entrant acquire from the same process never self-deadlocks the way
   flock-between-fds can) and they evaporate when the owning process
   dies — including a hard [kill -9] — so a crashed writer can never
   wedge the store for everyone else.

   But process ownership has a notorious sharp edge (SUSv4, fcntl):
   closing *any* descriptor on the locked file drops *all* of the
   process's locks on it, no matter which descriptor took them.  The
   original implementation opened a fresh fd per [acquire] and closed it
   on [release] — so inside a long-lived serve process, a best-effort
   writer finishing its [with_lock] would silently evaporate a strict
   lock concurrently held by [gc]/[doctor] in the same process,
   mid-scan, exactly when exclusion mattered.

   The fix: one refcounted singleton handle per lock path, process-wide.
   The fd is opened on first use and *never closed*; a process-level
   mutex guards the refcount table and the lockf calls (lockf state is
   per-process, so within-process callers must not race each other on
   it).  While any caller holds the lock, later same-process acquires
   simply share it (refcount++), preserving the record-lock re-entrancy
   the store already relied on; the kernel-level F_ULOCK happens only
   when the last same-process holder releases.  Leaking one fd per
   distinct store directory for the life of the process is the cost, and
   it is the point: no close, no dropped locks.

   The lock is advisory: it serializes the store's own maintenance
   operations (gc, doctor, tmp-file recovery) against writers.  Entry
   publication itself stays crash-safe without the lock — entries are
   written to a tmp file and published with an atomic [rename] — so
   writers only take the lock best-effort (see [with_lock]); maintenance
   takes it strictly (see [acquire]). *)

(* Backoff deadlines are measured on the monotonic clock: a serve
   process holding stores open for days must not have its lock waits cut
   short (or stretched) by an NTP step.  ac_store sits below the
   autocorres library, so it cannot use [Profile.mono_s]; this is the
   same one-line bechamel stub. *)
let mono_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* One per lock path, kept forever.  [h_refs] counts live same-process
   holders; the kernel lock is held iff [h_refs > 0]. *)
type handle = { h_fd : Unix.file_descr; mutable h_refs : int }

type t = { l_handle : handle; mutable l_released : bool }

let mu = Mutex.create ()
let handles : (string, handle) Hashtbl.t = Hashtbl.create 4

let lock_path dir = Filename.concat dir ".lock"

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The singleton handle for [path], opening it on first use.  Called
   with [mu] held. *)
let handle_of path =
  match Hashtbl.find_opt handles path with
  | Some h -> Ok h
  | None -> (
    match
      Unix.openfile path [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644
    with
    | exception (Unix.Unix_error _ | Sys_error _) ->
      Error (Printf.sprintf "store lock: cannot open %s" path)
    | fd ->
      let h = { h_fd = fd; h_refs = 0 } in
      Hashtbl.add handles path h;
      Ok h)

(* Try to take the lock, retrying with exponential backoff until
   [timeout_s] elapses.  [F_TLOCK] is the non-blocking probe; blocking
   [F_LOCK] would be simpler but gives no way to bound the wait — and
   must never run under [mu] anyway.  The mutex is held only across the
   refcount check and the probe itself, so a caller backing off never
   inflates another caller's wait. *)
let acquire ?(timeout_s = 5.0) ~dir () =
  Ac_obs.Obs.span ~cat:"store" "store.lock_wait" @@ fun () ->
  mkdirs dir;
  let path = lock_path dir in
  let deadline = mono_s () +. timeout_s in
  let rec try_lock delay =
    Mutex.lock mu;
    let outcome =
      match handle_of path with
      | Error e -> Error (`Fatal e)
      | Ok h ->
        if h.h_refs > 0 then begin
          (* Another caller in this process already holds the kernel
             lock; share it.  This is the refcounted form of the
             re-entrancy POSIX record locks gave the old code for free
             (minus the drop-on-close bug). *)
          h.h_refs <- h.h_refs + 1;
          Ok h
        end
        else begin
          match Unix.lockf h.h_fd Unix.F_TLOCK 0 with
          | () ->
            h.h_refs <- 1;
            Ok h
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES | Unix.EINTR), _, _)
            ->
            Error `Busy
          | exception e ->
            Error (`Fatal (Printf.sprintf "store lock: %s" (Printexc.to_string e)))
        end
    in
    Mutex.unlock mu;
    match outcome with
    | Ok h -> Ok { l_handle = h; l_released = false }
    | Error (`Fatal e) -> Error e
    | Error `Busy ->
      if mono_s () >= deadline then
        Error
          (Printf.sprintf "store lock: timed out after %.1fs waiting for %s"
             timeout_s path)
      else begin
        Unix.sleepf delay;
        try_lock (Float.min 0.05 (delay *. 1.7))
      end
  in
  try_lock 0.002

let release (l : t) =
  Mutex.lock mu;
  if not l.l_released then begin
    l.l_released <- true;
    let h = l.l_handle in
    h.h_refs <- h.h_refs - 1;
    if h.h_refs = 0 then
      (* Last same-process holder: give the lock back to other
         processes.  The fd stays open for the life of the process —
         closing it is precisely the bug this module exists to avoid. *)
      try Unix.lockf h.h_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock mu

(* Best-effort critical section for writers: run [f ~locked:true] under
   the lock when it can be had within [timeout_s], and [f ~locked:false]
   otherwise.  Availability wins over exclusion here because the atomic
   tmp+rename publication protocol is what actually guarantees entry
   integrity; the lock only narrows the window in which gc can observe
   (and must grace-period-skip) an in-flight tmp file. *)
let with_lock ?(timeout_s = 1.0) ~dir (f : locked:bool -> 'a) : 'a =
  match acquire ~timeout_s ~dir () with
  | Error _ -> f ~locked:false
  | Ok l -> Fun.protect ~finally:(fun () -> release l) (fun () -> f ~locked:true)
