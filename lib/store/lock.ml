(* Advisory inter-process locking for the proof store directory.

   Uses POSIX record locks ([Unix.lockf]) on a dedicated [.lock] file
   inside the store directory.  Record locks have exactly the semantics
   we need for crash tolerance: they are owned by the *process* (so a
   re-entrant acquire from the same process never self-deadlocks the way
   flock-between-fds can) and they evaporate when the owning process
   dies — including a hard [kill -9] — so a crashed writer can never
   wedge the store for everyone else.

   The lock is advisory: it serializes the store's own maintenance
   operations (gc, doctor, tmp-file recovery) against writers.  Entry
   publication itself stays crash-safe without the lock — entries are
   written to a tmp file and published with an atomic [rename] — so
   writers only take the lock best-effort (see [with_lock]); maintenance
   takes it strictly (see [acquire]). *)

type t = { fd : Unix.file_descr }

let lock_path dir = Filename.concat dir ".lock"

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Try to take the lock, retrying with exponential backoff until
   [timeout_s] elapses.  [F_TLOCK] is the non-blocking probe; blocking
   [F_LOCK] would be simpler but gives no way to bound the wait. *)
let acquire ?(timeout_s = 5.0) ~dir () =
  mkdirs dir;
  match
    Unix.openfile (lock_path dir) [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644
  with
  | exception (Unix.Unix_error _ | Sys_error _) ->
    Error (Printf.sprintf "store lock: cannot open %s" (lock_path dir))
  | fd ->
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec try_lock delay =
      match Unix.lockf fd Unix.F_TLOCK 0 with
      | () -> Ok { fd }
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES | Unix.EINTR), _, _) ->
        if Unix.gettimeofday () >= deadline then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "store lock: timed out after %.1fs waiting for %s"
               timeout_s (lock_path dir))
        end
        else begin
          Unix.sleepf delay;
          try_lock (Float.min 0.05 (delay *. 1.7))
        end
      | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "store lock: %s" (Printexc.to_string e))
    in
    try_lock 0.002

let release { fd } =
  (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Best-effort critical section for writers: run [f ~locked:true] under
   the lock when it can be had within [timeout_s], and [f ~locked:false]
   otherwise.  Availability wins over exclusion here because the atomic
   tmp+rename publication protocol is what actually guarantees entry
   integrity; the lock only narrows the window in which gc can observe
   (and must grace-period-skip) an in-flight tmp file. *)
let with_lock ?(timeout_s = 1.0) ~dir (f : locked:bool -> 'a) : 'a =
  match acquire ~timeout_s ~dir () with
  | Error _ -> f ~locked:false
  | Ok l -> Fun.protect ~finally:(fun () -> release l) (fun () -> f ~locked:true)
