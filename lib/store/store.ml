module Ty = Ac_lang.Ty
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module J = Ac_kernel.Judgment

(* The persistent proof store: a content-addressed, on-disk cache of
   per-function translation results together with the derivation traces
   needed to re-mint their theorems.

   Trust story (see DESIGN.md): the store is OUTSIDE the trusted computing
   base.  An entry never contains a theorem — only programs (plain data)
   and [Trace.t] recipes.  On a hit the driver replays every trace
   through [Thm.by]/[Rules.infer] under a context rebuilt from the
   current run, and anchors the replayed conclusions against the freshly
   parsed source; a stale, corrupted or malicious entry can therefore
   fail (and degrade to a full translation) but can never smuggle in a
   judgment the kernel would not derive itself.

   Integrity: entries carry a digest over the serialized payload, checked
   before deserialization, so random corruption (the bit-flip test) is
   caught before [Marshal.from_string] ever runs.  A hand-crafted entry
   with a matching digest still faces the replay + anchor gauntlet.

   Keying: an entry is addressed by a digest over
     - the format/ruleset version tag (bumped whenever the kernel's rule
       base or the pipeline's semantics change),
     - the per-function driver option vector (and that of every function
       in the cone, since each member's local digest includes its own),
     - the preprocessed source of the function — its pretty-printed Simpl
       image, which is stable under comments/whitespace/reordering of
       unrelated code,
     - the layout environment and globals (struct layouts change
       semantics),
     - the digests of all transitively called functions ("the cone"),
       computed over the call graph's SCC condensation so mutual
       recursion needs no special-casing.
   Editing one function therefore invalidates exactly the functions whose
   cone contains it. *)

(* Bump when the kernel rule base, the trace format, or anything else
   that replay depends on changes shape.  ruleset-2: [Absdom.cert]
   became a record carrying a summary table, entries gained
   [e_sums_digest]. *)
let ruleset_tag = "acc-store-1/ruleset-2"

let magic = "ACC-STORE v1\n"

(* ------------------------------------------------------------------ *)
(* Content keys. *)

let hex s = Digest.to_hex (Digest.string s)

(* Direct call targets of a Simpl function body. *)
let callees_of_func (f : Ir.func) : string list =
  let acc = ref [] in
  Ir.iter_stmts
    (function
      | Ir.Call (_, g, _) -> if not (List.mem g !acc) then acc := g :: !acc
      | _ -> ())
    f.Ir.body;
  List.sort String.compare !acc

(* [cone_keys ~tag ~opt_string prog] returns [(fname, key)] for every
   function of [prog].  [opt_string fname] must render every driver
   option that can influence that function's translation result.

   A function's key must cover its whole transitive call cone, including
   through mutual-recursion cycles, so we condense the call graph into
   strongly connected components (Tarjan) and digest the condensation
   bottom-up: every member of an SCC gets the digest of the whole
   component (the sorted local digests of its members plus the component
   digests of everything the component calls), which is exactly the
   "editing any member of a cycle invalidates the cycle and its callers"
   semantics, in one linear pass instead of a quadratic chained-digest
   fixpoint. *)
let cone_keys ~(tag : string) ~(opt_string : string -> string) (prog : Ir.program) :
    (string * string) list =
  let lenv_d = hex (Marshal.to_string prog.Ir.lenv []) in
  let globals_d = hex (Marshal.to_string prog.Ir.globals []) in
  let funcs = prog.Ir.funcs in
  let local (f : Ir.func) =
    (* Digest the semantic fields of the parsed Simpl image only: name,
       signature, locals and body are position-free, so the digest is
       stable under comments, whitespace and edits to unrelated functions
       (which only shift [fpos]/[gsrc] positions). *)
    let image =
      Marshal.to_string (f.Ir.name, f.Ir.params, f.Ir.locals, f.Ir.ret_ty, f.Ir.body) []
    in
    hex
      (String.concat "\x00" [ tag; opt_string f.Ir.name; image; lenv_d; globals_d ])
  in
  let locals = Hashtbl.create 64 in
  let callees = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Hashtbl.replace locals f.Ir.name (local f);
      Hashtbl.replace callees f.Ir.name (callees_of_func f))
    funcs;
  (* SCC condensation via the analysis library's call-graph module (the
     Tarjan that used to live here moved there so the interprocedural
     summary pass and the store share one implementation).  Emission is
     callees-first, so digesting components in order sees every callee
     component before its callers. *)
  let cg =
    Ac_analysis.Callgraph.of_edges
      (List.map (fun f -> f.Ir.name) funcs)
      (List.map (fun f -> (f.Ir.name, callees_of_func f)) funcs)
  in
  let sccs = Ac_analysis.Callgraph.sccs cg in
  let comp_of = Hashtbl.create 64 (* function -> SCC id, emission order *) in
  List.iteri
    (fun id members -> List.iter (fun m -> Hashtbl.replace comp_of m id) members)
    sccs;
  let comp_digest = Hashtbl.create 64 in
  List.iteri
    (fun id members ->
      let member_parts =
        List.sort String.compare
          (List.map (fun m -> m ^ "=" ^ Hashtbl.find locals m) members)
      in
      let callee_parts =
        List.concat_map
          (fun m ->
            List.filter_map
              (fun g ->
                match Hashtbl.find_opt comp_of g with
                | Some gid when gid <> id -> Some (g ^ "@" ^ Hashtbl.find comp_digest gid)
                | Some _ -> None (* same component: covered by member_parts *)
                | None -> Some ("extern:" ^ g))
              (Hashtbl.find callees m))
          members
        |> List.sort_uniq String.compare
      in
      Hashtbl.replace comp_digest id
        (hex (String.concat "\x00" (member_parts @ callee_parts))))
    sccs;
  (* A function's key: its own local digest chained with its component's
     cone digest (so two members of one cycle still get distinct keys). *)
  List.map
    (fun f ->
      let cd = Hashtbl.find comp_digest (Hashtbl.find comp_of f.Ir.name) in
      (f.Ir.name, hex (Hashtbl.find locals f.Ir.name ^ "\x00" ^ cd)))
    funcs

(* ------------------------------------------------------------------ *)
(* Entries. *)

(* Everything the driver needs to reconstitute a clean [func_result]
   without re-running any phase: the intermediate and final programs and
   the derivation traces.  [e_nothrow] and [e_fsig] are the function's own
   contributions to the run's inter-function fixpoints (nothrow set,
   word-abstraction signatures); the driver seeds the fixpoints with them
   for hit functions and validates them against the recomputed values
   once the whole unit is assembled — a mismatch demotes the entry to a
   miss.  Only clean results are stored (no diagnostics, chain theorem
   assembled), so replaying an entry never has to reproduce diagnostics. *)
type fentry = {
  e_name : string;
  e_l1 : M.func;
  e_l2g : M.func;
      (* the L2 image *before* guard discharge: the body the
         interprocedural summary pass analyses.  Kept so a warm run
         rebuilds the exact summary table a cold run computed (the
         post-discharge [e_l2] would do in practice, but "guard removal
         never changes an abstract walk" is a theorem about the analysis,
         not an invariant the store should lean on). *)
  e_l2 : M.func;
  e_hl : M.func option;
  e_wa : M.func option;
  e_final : M.func;
  e_wvars : (string * (Ty.sign * Ty.width)) list;
  e_skipped : (string * string) list;
  e_nothrow : bool; (* this function's own membership in the nothrow set *)
  e_fsig : J.conv list * J.conv; (* its word-abstraction signature *)
  e_sums_digest : string;
      (* digest of the interprocedural summary table restricted to this
         function's transitive callees — the slice its certificates may
         reference.  Replay validates it against the current run's table
         (a mismatch demotes to a miss): a callee body edit already
         changes the cone key, but summary *budgets/rounds* can change
         the table for identical sources, and an entry minted under a
         different table could otherwise replay against summaries the
         kernel would now reject or resolve differently. *)
  e_trace : Trace.t;
      (* the end-to-end chain derivation.  The premises of its root are
         exactly the component theorems in pipeline order —
         [l1_thm :: l2_thm :: hl_thms @ wa_thms] — so one trace serves the
         whole [func_result], and replaying it preserves the physical
         sharing between the chain and its components that the memoized
         checker exploits. *)
  e_n_hl : int; (* length of the [hl_thms] segment of the root's premises *)
}

(* ------------------------------------------------------------------ *)
(* Fault-tolerant I/O plumbing. *)

let rec mkdirs d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The store cannot depend on the core library (the dependency points the
   other way), so fault injection reaches it through this hook rather
   than through [Faults] directly; [Faults.install] wires it up.  The
   hook is consulted at the top of every I/O attempt and may raise
   [Sys_error] to simulate a transient failure. *)
let io_hook : (string -> unit) option ref = ref None
let set_io_hook h = io_hook := h

(* Retry a whole I/O operation a few times with exponential backoff.
   Each attempt re-runs [f] from scratch (reopening files), so a failure
   mid-attempt never leaves a half-consumed channel behind.  Only
   plausibly-transient exceptions ([Sys_error], [Unix_error]) are
   retried; anything else propagates immediately. *)
let io_attempts = 3

let with_io_retry (op : string) (f : unit -> 'a) : 'a =
  let rec go attempt =
    match
      (match !io_hook with Some h -> h op | None -> ());
      f ()
    with
    | v -> v
    | exception ((Sys_error _ | Unix.Unix_error _) as e) ->
      if attempt >= io_attempts then raise e
      else begin
        Unix.sleepf (0.002 *. Float.pow 2.0 (float_of_int (attempt - 1)));
        go (attempt + 1)
      end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Quarantine: where damaged files go instead of aborting the run. *)

let quarantine_dirname = ".quarantine"
let quarantine_dir dir = Filename.concat dir quarantine_dirname

(* Tmp files from [save]'s atomic-publication protocol: skipping anything
   younger than the grace window is what keeps recovery/gc from deleting
   a live writer's in-flight file out from under it. *)
let default_tmp_grace_s = 60.
let is_tmp_file f =
  String.length f >= 13
  && String.sub f 0 8 = ".acc-tmp"
  && Filename.check_suffix f ".part"

(* Move a damaged file into [.quarantine/]; best-effort (a concurrent
   process may have quarantined or replaced it already). *)
let quarantine_file ~dir fname =
  try
    mkdirs (quarantine_dir dir);
    Unix.rename (Filename.concat dir fname)
      (Filename.concat (quarantine_dir dir) fname);
    true
  with Unix.Unix_error _ | Sys_error _ -> false

(* Sweep orphaned tmp files (a writer killed mid-write leaves its
   [.acc-tmp*.part] behind) into quarantine.  Cheap enough to run on
   every open; full entry verification is [doctor]'s job. *)
let recover_scan ?(grace_s = default_tmp_grace_s) ~(dir : string) () : int =
  if not (Sys.file_exists dir) then 0
  else begin
    let now = Unix.gettimeofday () in
    let moved = ref 0 in
    Array.iter
      (fun f ->
        if is_tmp_file f then begin
          match Unix.stat (Filename.concat dir f) with
          | st ->
            if now -. st.Unix.st_mtime > grace_s && quarantine_file ~dir f then
              incr moved
          | exception Unix.Unix_error _ -> ()
        end)
      (try Sys.readdir dir with Sys_error _ -> [||]);
    !moved
  end

(* ------------------------------------------------------------------ *)
(* The on-disk store. *)

type t = {
  dir : string;
  tag : string;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
}

let dir t = t.dir
let tag t = t.tag
let hits t = t.hits
let misses t = t.misses
let corrupt_count t = t.corrupt
let reset_counters t = t.hits <- 0; t.misses <- 0; t.corrupt <- 0

(* A hit that later fails replay or post-run validation is really a miss;
   the driver reclassifies it so counters describe usable entries. *)
let demote_hit t =
  t.hits <- max 0 (t.hits - 1);
  t.misses <- t.misses + 1

let open_ ?(tag = ruleset_tag) ?grace_s ~(dir : string) () : (t, string) result =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    Result.error (Printf.sprintf "store: %s exists and is not a directory" dir)
  else begin
    (* Crash recovery on open: orphaned tmp files from a killed writer are
       quarantined (never deleted — they may be evidence) so the directory
       listing stays clean for gc and stat. *)
    ignore (recover_scan ?grace_s ~dir ());
    Result.ok { dir; tag; hits = 0; misses = 0; corrupt = 0 }
  end

let entry_path dir key = Filename.concat dir (key ^ ".acc")

type load_result = Hit of fentry | Miss | Corrupt of string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse "<magic><key>\n<digest>\n<payload>"; digest is checked before the
   payload is deserialized. *)
let decode ~key (raw : string) : (fentry, string) result =
  let fail m = Result.error m in
  let mlen = String.length magic in
  if String.length raw < mlen || String.sub raw 0 mlen <> magic then
    fail "bad magic (format version mismatch?)"
  else begin
    match String.index_from_opt raw mlen '\n' with
    | None -> fail "truncated header"
    | Some key_end -> (
      let stored_key = String.sub raw mlen (key_end - mlen) in
      if stored_key <> key then fail "key mismatch (entry stored under wrong name)"
      else
        match String.index_from_opt raw (key_end + 1) '\n' with
        | None -> fail "truncated header"
        | Some dg_end ->
          let dg = String.sub raw (key_end + 1) (dg_end - key_end - 1) in
          let pofs = dg_end + 1 in
          if Digest.to_hex (Digest.substring raw pofs (String.length raw - pofs)) <> dg
          then fail "payload digest mismatch (corrupt entry)"
          else begin
            match (Marshal.from_string raw pofs : fentry) with
            | e -> Result.ok e
            | exception _ -> fail "payload deserialization failed"
          end)
  end

let load (t : t) ~(key : string) : load_result =
  Ac_obs.Obs.span ~cat:"store" "store.load" @@ fun () ->
  let path = entry_path t.dir key in
  if not (Sys.file_exists path) then begin
    t.misses <- t.misses + 1;
    Miss
  end
  else begin
    (* A damaged entry degrades to a miss *and* is moved aside, so the
       next run doesn't pay the read-and-reject cost again and [doctor]
       can report what was found.  Quarantining is best-effort: if the
       rename loses a race the entry was concurrently repaired or
       quarantined by someone else. *)
    let poison m =
      t.corrupt <- t.corrupt + 1;
      t.misses <- t.misses + 1;
      ignore (quarantine_file ~dir:t.dir (key ^ ".acc"));
      Corrupt m
    in
    match with_io_retry "read" (fun () -> read_file path) with
    | exception e ->
      poison (Printf.sprintf "unreadable entry %s: %s" path (Printexc.to_string e))
    | raw -> (
      match decode ~key raw with
      | Result.Ok e ->
        t.hits <- t.hits + 1;
        Hit e
      | Result.Error m -> poison (Printf.sprintf "corrupt entry %s: %s" path m))
  end

(* Atomic publication: write a temp file in the store directory, then
   rename over the final name.  Concurrent writers of the same key race
   benignly (same content — keys are content addresses).  Writes are
   retried on transient I/O errors (each attempt starts over with a
   fresh tmp file), and publication happens under the store lock when it
   can be had quickly — the lock is best-effort here because the atomic
   rename is what carries correctness; it exists to shrink the window in
   which gc can observe the in-flight tmp file. *)
let save (t : t) ~(key : string) (e : fentry) : (unit, string) result =
  Ac_obs.Obs.span ~cat:"store" "store.save" @@ fun () ->
  try
    mkdirs t.dir;
    let payload = Marshal.to_string e [] in
    let dg = Digest.to_hex (Digest.string payload) in
    with_io_retry "write" (fun () ->
        let tmp = Filename.temp_file ~temp_dir:t.dir ".acc-tmp" ".part" in
        let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
        match
          let oc = open_out_bin tmp in
          (try
             output_string oc magic;
             output_string oc (key ^ "\n");
             output_string oc (dg ^ "\n");
             output_string oc payload;
             close_out oc
           with e ->
             close_out_noerr oc;
             raise e);
          Lock.with_lock ~timeout_s:1.0 ~dir:t.dir (fun ~locked:_ ->
              Sys.rename tmp (entry_path t.dir key))
        with
        | () -> ()
        | exception e -> cleanup (); raise e);
    Result.ok ()
  with e -> Result.error (Printf.sprintf "store: cannot save entry: %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Maintenance (the `acc cache` subcommands). *)

let entry_files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".acc")
    |> List.map (Filename.concat dir)

type dstat = { entries : int; bytes : int }

let stat ~(dir : string) : (dstat, string) result =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    Result.error (Printf.sprintf "store: %s is not a directory" dir)
  else
    try
      let files = entry_files dir in
      let bytes =
        List.fold_left (fun acc f -> acc + (Unix.stat f).Unix.st_size) 0 files
      in
      Result.ok { entries = List.length files; bytes }
    with e -> Result.error (Printf.sprintf "store: %s" (Printexc.to_string e))

let clear ~(dir : string) : (int, string) result =
  try
    let files = entry_files dir in
    List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files;
    Result.ok (List.length files)
  with e -> Result.error (Printf.sprintf "store: %s" (Printexc.to_string e))

(* Keep the newest [max_entries] by modification time, remove the rest.

   Runs under the store lock (strictly — gc is maintenance, so failing
   loudly beats racing) and sweeps orphaned tmp files older than the
   grace window into quarantine first.  Young tmp files are left alone:
   they belong to a writer that is mid-publication right now, and
   deleting one would make its rename fail.  A concurrently *published*
   entry is never at risk — it either predates the listing (counted) or
   postdates it (untouched). *)
let gc ?grace_s ~(dir : string) ~(max_entries : int) () : (int, string) result =
  match Lock.acquire ~timeout_s:10.0 ~dir () with
  | Error m -> Result.error m
  | Ok lock ->
    Fun.protect
      ~finally:(fun () -> Lock.release lock)
      (fun () ->
        try
          ignore (recover_scan ?grace_s ~dir ());
          let files = entry_files dir in
          let with_mtime =
            List.filter_map
              (fun f ->
                (* A load may quarantine an entry between listing and
                   stat; skip it rather than abort the whole gc. *)
                match Unix.stat f with
                | st -> Some (f, st.Unix.st_mtime)
                | exception Unix.Unix_error _ -> None)
              files
            |> List.sort (fun (_, a) (_, b) -> compare b a)
          in
          let doomed = List.filteri (fun i _ -> i >= max 0 max_entries) with_mtime in
          List.iter (fun (f, _) -> try Sys.remove f with Sys_error _ -> ()) doomed;
          Result.ok (List.length doomed)
        with e -> Result.error (Printf.sprintf "store: %s" (Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Doctor: full integrity scan (the heavyweight sibling of the cheap
   open-time [recover_scan]). *)

type doctor_report = {
  dr_scanned : int; (* entries examined *)
  dr_ok : int; (* entries whose digest and payload decode cleanly *)
  dr_quarantined : int; (* damaged entries moved to .quarantine/ now *)
  dr_tmp_quarantined : int; (* orphaned tmp files moved now *)
  dr_quarantine_files : int; (* files sitting in .quarantine/ after the scan *)
  dr_purged : int; (* quarantined files deleted (with ~purge:true) *)
}

(* Verify every entry end-to-end: read, digest-check, deserialize.  Any
   failure quarantines the entry.  After the scan every surviving entry
   is replayable as far as the store format is concerned (replay itself
   re-derives the theorems, so format integrity is all doctor owes).
   With [purge] the quarantine directory is emptied afterwards. *)
let doctor ?grace_s ?(purge = false) ~(dir : string) () : (doctor_report, string) result =
  match Lock.acquire ~timeout_s:10.0 ~dir () with
  | Error m -> Result.error m
  | Ok lock ->
    Fun.protect
      ~finally:(fun () -> Lock.release lock)
      (fun () ->
        try
          let tmp_quarantined = recover_scan ?grace_s ~dir () in
          let scanned = ref 0 and ok = ref 0 and quarantined = ref 0 in
          List.iter
            (fun path ->
              incr scanned;
              let fname = Filename.basename path in
              let key = Filename.chop_suffix fname ".acc" in
              let damaged =
                match read_file path with
                | exception _ -> true
                | raw -> Result.is_error (decode ~key raw)
              in
              if damaged then begin
                if quarantine_file ~dir fname then incr quarantined
              end
              else incr ok)
            (entry_files dir);
          let qdir = quarantine_dir dir in
          let qfiles =
            if Sys.file_exists qdir then
              (try Array.to_list (Sys.readdir qdir) with Sys_error _ -> [])
            else []
          in
          let purged = ref 0 in
          if purge then
            List.iter
              (fun f ->
                let p = Filename.concat qdir f in
                (* Quarantined "files" can be directories (an entry path
                   replaced by a directory is how an unreadable entry
                   manifests); remove either shape. *)
                try
                  if Sys.is_directory p then Unix.rmdir p else Sys.remove p;
                  incr purged
                with Sys_error _ | Unix.Unix_error _ -> ())
              qfiles;
          Result.ok
            {
              dr_scanned = !scanned;
              dr_ok = !ok;
              dr_quarantined = !quarantined;
              dr_tmp_quarantined = tmp_quarantined;
              dr_quarantine_files = (if purge then List.length qfiles - !purged else List.length qfiles);
              dr_purged = !purged;
            }
        with e -> Result.error (Printf.sprintf "store: %s" (Printexc.to_string e)))
