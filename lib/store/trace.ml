module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm

(* Derivation traces: the serializable image of a kernel derivation.

   A [Thm.t] already carries its entire derivation (rule + premises) — the
   kernel keeps it so [Thm.check] can re-validate independently.  This
   module flattens that DAG into a plain data value ([t]) that can be
   marshalled to disk, and replays it back into real theorems by
   re-running every recorded rule application through [Thm.by] (and hence
   [Rules.infer]).

   This is the certificate discipline of CH2O/VeriFast-style proof
   caching: what is persisted is never a theorem, only a *recipe* for one.
   Replay re-mints each node through the kernel, so a trace read from an
   untrusted medium can fail to replay (stale, corrupted, or malicious),
   but it can never produce a theorem the kernel would not have produced
   itself — the store adds zero trusted code.

   Recording is deliberately OUTSIDE the kernel: it only reads the
   observation API ([Thm.rule]/[Thm.premises]/[Thm.id]) that the memoized
   checker already uses, so the kernel's forgery-free surface is
   untouched.

   Representation: a postorder array of nodes whose premise references are
   strictly-smaller indices, so sharing in the derivation DAG is recorded
   once and replayed once (the same economy [Check_cache] exploits when
   re-checking).  The root is the last node. *)

type node = {
  n_rule : Rules.rule;
  n_prems : int list; (* indices into the array, each < this node's index *)
}

type t = node array

let length (tr : t) = Array.length tr

(* Total rule applications if the DAG were expanded to a tree (matches
   [Thm.size] of the replayed theorem). *)
let tree_size (tr : t) : int =
  let sizes = Array.make (Array.length tr) 0 in
  Array.iteri
    (fun i n ->
      sizes.(i) <- 1 + List.fold_left (fun acc p -> acc + sizes.(p)) 0 n.n_prems)
    tr;
  if Array.length tr = 0 then 0 else sizes.(Array.length tr - 1)

(* ------------------------------------------------------------------ *)
(* Recording. *)

let record (thm : Thm.t) : t =
  let nodes = ref [] in
  let count = ref 0 in
  (* Memoize on the kernel's per-node id so shared subderivations are
     emitted once. *)
  let memo : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec go (t : Thm.t) : int =
    match Hashtbl.find_opt memo (Thm.id t) with
    | Some i -> i
    | None ->
      let prems = List.map go (Thm.premises t) in
      let i = !count in
      incr count;
      nodes := { n_rule = Thm.rule t; n_prems = prems } :: !nodes;
      Hashtbl.add memo (Thm.id t) i;
      i
  in
  ignore (go thm);
  let arr = Array.of_list (List.rev !nodes) in
  arr

(* ------------------------------------------------------------------ *)
(* Replay. *)

(* Re-mint every node through the kernel.  Malformed indices and failing
   side conditions both surface as [Error]; the caller treats any error as
   a cache miss and falls back to full translation. *)
let replay (ctx : Rules.ctx) (tr : t) : (Thm.t, string) result =
  let n = Array.length tr in
  if n = 0 then Result.error "empty trace"
  else begin
    let minted : Thm.t option array = Array.make n None in
    let exception Bad of string in
    try
      Array.iteri
        (fun i node ->
          let prems =
            List.map
              (fun p ->
                if p < 0 || p >= i then
                  raise (Bad (Printf.sprintf "node %d: premise index %d out of range" i p))
                else
                  match minted.(p) with
                  | Some t -> t
                  | None -> raise (Bad "internal: unminted premise"))
              node.n_prems
          in
          match Thm.by ctx node.n_rule prems with
          | t -> minted.(i) <- Some t
          | exception Thm.Kernel_error m ->
            raise (Bad (Printf.sprintf "%s: %s" (Rules.rule_name node.n_rule) m)))
        tr;
      match minted.(n - 1) with
      | Some t -> Result.ok t
      | None -> Result.error "internal: no root"
    with Bad m -> Result.error ("replay: " ^ m)
  end
