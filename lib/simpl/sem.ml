module Ty = Ac_lang.Ty
module Value = Ac_lang.Value
module Expr = Ac_lang.Expr
module B = Ac_bignum
module SMap = Map.Make (String)
open Ir

(* Big-step operational semantics for Simpl.

   Outcomes distinguish normal termination, abrupt termination (THROW, with
   the reason recorded in the ghost variable), guard faults (undefined
   behaviour the guards rule out), stuck evaluation (type errors — never
   reachable from typechecked input) and fuel exhaustion (used by the
   differential tester to bound loops/recursion). *)

type outcome =
  | Normal of State.t
  | Abrupt of State.t
  | Fault of guard_kind
  | Stuck of string
  | Out_of_fuel

exception Exec_error of string

(* Declared locals are default-initialised at function entry: a deterministic
   semantics for uninitialised reads, shared with the monadic levels so the
   local-lifting phase's default-substitution is exact. *)
let default_of_ty lenv (t : Ty.t) : Value.t =
  let module B = Ac_bignum in
  match t with
  | Ty.Tunit -> Value.Vunit
  | Ty.Tbool -> Value.Vbool false
  | Ty.Tword (s, w) -> Value.vword s (Ac_word.zero w)
  | Ty.Tint -> Value.Vint B.zero
  | Ty.Tnat -> Value.Vnat B.zero
  | Ty.Tptr c -> Value.null c
  | Ty.Tstruct n -> Value.default lenv (Ty.Cstruct n)
  | Ty.Ttuple _ -> Expr.stuck "tuple-typed local"

let frame_locals lenv (f : func) (args : Value.t list) =
  let with_params =
    List.fold_left2 (fun m (p, _) v -> SMap.add p v m) SMap.empty f.params args
  in
  List.fold_left
    (fun m (x, t) -> if SMap.mem x m then m else SMap.add x (default_of_ty lenv t) m)
    with_params f.locals

let rec exec (prog : program) (fuel : int) (s : State.t) (stmt : stmt) : outcome =
  if fuel <= 0 then Out_of_fuel
  else begin
    let eval e = State.eval prog.lenv s e in
    match stmt with
    | Skip -> Normal s
    | Seq (a, b) -> (
      match exec prog fuel s a with
      | Normal s' -> exec prog fuel s' b
      | other -> other)
    | Local_set (x, e) -> (
      match eval e with
      | v -> Normal (State.set_local s x v)
      | exception Expr.Eval_stuck m -> Stuck m)
    | Global_set (x, e) -> (
      match eval e with
      | v -> Normal (State.set_global s x v)
      | exception Expr.Eval_stuck m -> Stuck m)
    | Heap_write (c, p, e) -> (
      match (eval p, eval e) with
      | Value.Vptr (addr, _), v ->
        Normal (State.with_heap s (Heap.write_obj prog.lenv s.heap c addr v))
      | _ -> Stuck "heap write through non-pointer"
      | exception Expr.Eval_stuck m -> Stuck m)
    | Retype (c, p) -> (
      match eval p with
      | Value.Vptr (addr, _) -> Normal (State.with_heap s (Heap.retype prog.lenv s.heap c addr))
      | _ -> Stuck "retype through non-pointer"
      | exception Expr.Eval_stuck m -> Stuck m)
    | Cond (c, a, b) -> (
      match eval c with
      | Value.Vbool true -> exec prog fuel s a
      | Value.Vbool false -> exec prog fuel s b
      | _ -> Stuck "non-boolean condition"
      | exception Expr.Eval_stuck m -> Stuck m)
    | While (c, body) -> (
      match eval c with
      | Value.Vbool false -> Normal s
      | Value.Vbool true -> (
        match exec prog (fuel - 1) s body with
        | Normal s' -> exec prog (fuel - 1) s' stmt
        | other -> other)
      | _ -> Stuck "non-boolean loop condition"
      | exception Expr.Eval_stuck m -> Stuck m)
    | Guard (kind, e) -> (
      match eval e with
      | Value.Vbool true -> Normal s
      | Value.Vbool false -> Fault kind
      | _ -> Stuck "non-boolean guard"
      | exception Expr.Eval_stuck m -> Stuck m)
    | Throw -> Abrupt s
    | Try (body, handler) -> (
      match exec prog fuel s body with
      | Abrupt s' -> exec prog fuel s' handler
      | other -> other)
    | Call (dest, fname, args) -> (
      match find_func prog fname with
      | None -> Stuck ("call to unknown function " ^ fname)
      | Some f -> (
        match List.map eval args with
        | exception Expr.Eval_stuck m -> Stuck m
        | arg_vals -> (
          let s_callee = { s with State.locals = frame_locals prog.lenv f arg_vals } in
          match exec prog (fuel - 1) s_callee f.body with
          | Normal s' | Abrupt s' -> (
            let s_return = { s' with State.locals = s.State.locals } in
            match dest with
            | None -> Normal s_return
            | Some d -> (
              match SMap.find_opt ret_var s'.State.locals with
              | Some v -> Normal (State.set_local s_return d v)
              | None -> Stuck (fname ^ " returned no value")))
          | other -> other)))
  end

(* Run a function on given argument values; the result is the returned value
   (if any) plus the final state. *)
type run_result =
  | Returns of Value.t option * State.t
  | Faults of guard_kind
  | Gets_stuck of string
  | Diverges

let run_func (prog : program) ~fuel (s : State.t) fname (args : Value.t list) : run_result =
  match find_func prog fname with
  | None -> Gets_stuck ("unknown function " ^ fname)
  | Some f -> (
    let s0 = { s with State.locals = frame_locals prog.lenv f args } in
    match exec prog fuel s0 f.body with
    | Normal s' | Abrupt s' ->
      let rv = SMap.find_opt ret_var s'.State.locals in
      Returns (rv, { s' with State.locals = s.State.locals })
    | Fault k -> Faults k
    | Stuck m -> Gets_stuck m
    | Out_of_fuel -> Diverges)
