module E = Ac_lang.Expr
module P = Ac_lang.Pretty
open Format
open Ir

(* Pretty printer for Simpl, in the concrete syntax of the paper's Fig 2:
   ´x :== e, IF/THEN/ELSE/FI, WHILE/DO/OD, TRY/CATCH/END, GUARD. *)

let rec pp_stmt fmt (s : stmt) =
  match s with
  | Skip -> pp_print_string fmt "SKIP"
  | Seq (a, b) -> fprintf fmt "%a;;@ %a" pp_stmt a pp_stmt b
  | Local_set (x, e) -> fprintf fmt "@[<hov 2>´%s :==@ %a@]" x (P.pp_expr ~ctx:0) e
  | Global_set (x, e) -> fprintf fmt "@[<hov 2>´globals.%s :==@ %a@]" x (P.pp_expr ~ctx:0) e
  | Heap_write (c, p, v) ->
    fprintf fmt "@[<hov 2>´heap :== write[%a]@ %a@ %a@]" Ac_lang.Ty.pp_cty c (P.pp_expr ~ctx:91)
      p (P.pp_expr ~ctx:91) v
  | Retype (c, p) ->
    fprintf fmt "@[<hov 2>´tags :== retype[%a]@ %a@]" Ac_lang.Ty.pp_cty c (P.pp_expr ~ctx:91) p
  | Cond (c, a, Skip) ->
    fprintf fmt "@[<v 2>IF {|%a|} THEN@ %a@]@ FI" (P.pp_expr ~ctx:0) c pp_stmt a
  | Cond (c, a, b) ->
    fprintf fmt "@[<v 2>IF {|%a|} THEN@ %a@]@ @[<v 2>ELSE@ %a@]@ FI" (P.pp_expr ~ctx:0) c
      pp_stmt a pp_stmt b
  | While (c, body) ->
    fprintf fmt "@[<v 2>WHILE {|%a|} DO@ %a@]@ OD" (P.pp_expr ~ctx:0) c pp_stmt body
  | Guard (k, e) -> fprintf fmt "@[<hov 2>GUARD %s@ {|%a|}@]" (guard_kind_name k) (P.pp_expr ~ctx:0) e
  | Throw -> pp_print_string fmt "THROW"
  | Try (body, Skip) -> fprintf fmt "@[<v 2>TRY@ %a@]@ CATCH SKIP END" pp_stmt body
  | Try (body, handler) ->
    fprintf fmt "@[<v 2>TRY@ %a@]@ @[<v 2>CATCH@ %a@]@ END" pp_stmt body pp_stmt handler
  | Call (None, f, args) ->
    fprintf fmt "@[<hov 2>CALL %s(%a)@]" f
      (pp_print_list ~pp_sep:(fun f () -> fprintf f ",@ ") (P.pp_expr ~ctx:0))
      args
  | Call (Some d, f, args) ->
    fprintf fmt "@[<hov 2>´%s :== CALL %s(%a)@]" d f
      (pp_print_list ~pp_sep:(fun f () -> fprintf f ",@ ") (P.pp_expr ~ctx:0))
      args

let pp_func fmt (f : func) =
  fprintf fmt "@[<v 2>%s_body ≡@ @[<v>%a@]@]" f.name pp_stmt f.body

let func_to_string f = asprintf "%a@." pp_func f

let stmt_to_string s = asprintf "@[<v>%a@]@." pp_stmt s

(* Lines of specification: how many lines the pretty-printed definition
   occupies at the standard margin — the paper's Table 5 "Lines of Spec"
   metric for C-parser output. *)
let lines_of_spec (f : func) =
  let s = func_to_string f in
  List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s))
