module Ty = Ac_lang.Ty
module Layout = Ac_lang.Layout
module Value = Ac_lang.Value
module E = Ac_lang.Expr
module B = Ac_bignum
module W = Ac_word
module Ast = Ac_cfront.Ast
module Tir = Ac_cfront.Tir
open Ir

(* Translation of typed C into Simpl: the back half of the trusted "C
   parser" stage (paper Fig 1, dashed arrow).

   The translation is deliberately literal and conservative: every source
   construct that may exhibit undefined behaviour gets an explicit inline
   guard (signed overflow, division by zero, shift bounds, pointer validity,
   falling off the end of a non-void function), and abrupt control flow is
   encoded via the ghost variable [global_exn_var] and THROW/TRY-CATCH,
   exactly as in the paper's Fig 2. *)

exception Unsupported of string

type guard = guard_kind * E.t

(* Guards arising from a subexpression evaluated only under condition [c]
   (the right operand of &&, ||, ?:) are weakened to implications, which is
   how a conservative translation keeps short-circuit semantics sound. *)
let under_condition c (gs : guard list) : guard list =
  List.map (fun (k, g) -> (k, E.imp_e c g)) gs

let rec ty_of_ctype (t : Tir.ctype) : Ty.t =
  match t with
  | Ast.Integer (s, w) -> Ty.Tword (s, w)
  | Ast.Bool -> Ty.Tbool
  | Ast.Pointer Ast.Void -> Ty.Tptr (Ty.Cword (Unsigned, W8))
  | Ast.Pointer t' -> (
    match cty_of_ctype t' with
    | Some c -> Ty.Tptr c
    | None -> raise (Unsupported "pointer to void-like type"))
  | Ast.StructRef n -> Ty.Tstruct n
  | Ast.Void -> Ty.Tunit

and cty_of_ctype (t : Tir.ctype) : Ty.cty option =
  match t with
  | Ast.Integer (s, w) -> Some (Ty.Cword (s, w))
  | Ast.Bool -> Some (Ty.Cword (Unsigned, W8))
  | Ast.Pointer Ast.Void -> Some (Ty.Cptr (Ty.Cword (Unsigned, W8)))
  | Ast.Pointer t' -> (
    match cty_of_ctype t' with Some c -> Some (Ty.Cptr c) | None -> None)
  | Ast.StructRef n -> Some (Ty.Cstruct n)
  | Ast.Void -> None

let cty_exn t =
  match cty_of_ctype t with
  | Some c -> c
  | None -> raise (Unsupported ("no object type for " ^ Ast.ctype_to_string t))

(* Bounds of a signed type as ideal-integer constants. *)
let int_min_e w = E.big_int_e (W.min_value Signed w)
let int_max_e w = E.big_int_e (W.max_value Signed w)

(* The signed-overflow guard the C parser emits around signed arithmetic:
   INT_MIN <= ideal <= INT_MAX, with the ideal result expressed via sint. *)
let signed_range_guard (ideal : E.t) (w : Ty.width) : guard =
  ( Signed_overflow,
    E.and_e (E.Binop (E.Le, int_min_e w, ideal)) (E.Binop (E.Le, ideal, int_max_e w)) )

let sint e = E.OfWord (Ty.Tint, e)
let unat e = E.OfWord (Ty.Tnat, e)

let binop_of : Ast.binop -> E.binop = function
  | Badd -> E.Add
  | Bsub -> E.Sub
  | Bmul -> E.Mul
  | Bdiv -> E.Div
  | Bmod -> E.Rem
  | Bshl -> E.Shl
  | Bshr -> E.Shr
  | Bband -> E.Band
  | Bbor -> E.Bor
  | Bbxor -> E.Bxor
  | Beq -> E.Eq
  | Bne -> E.Ne
  | Blt -> E.Lt
  | Ble -> E.Le
  | Bgt -> E.Gt
  | Bge -> E.Ge
  | Bland -> E.And
  | Blor -> E.Or

(* Per-function translation context. *)
type ctx = {
  lenv : Layout.env;
  venv : Ty.t Map.Make(String).t; (* local name -> type *)
  mutable extra_locals : (string * Ty.t) list;
  mutable tmp_counter : int;
  mutable gsrc : (guard_kind * E.t * Ast.pos) list;
      (* guards emitted so far, most recent first *)
}

module SMap = Map.Make (String)

(* Turn guards into statements while recording, per guard, the source
   position of the statement that required it (consumed by `acc lint`). *)
let emit ctx (pos : Ast.pos) (gs : guard list) : stmt list =
  ctx.gsrc <- List.fold_left (fun acc (k, e) -> (k, e, pos) :: acc) ctx.gsrc gs;
  guards_to_stmts gs

let fresh_tmp ctx ty =
  ctx.tmp_counter <- ctx.tmp_counter + 1;
  let name = Printf.sprintf "tmp__%d" ctx.tmp_counter in
  ctx.extra_locals <- (name, ty) :: ctx.extra_locals;
  name

(* ------------------------------------------------------------------ *)
(* Expressions: produce (guards, expression). *)

let rec tr_expr ctx (e : Tir.texpr) : guard list * E.t =
  match e.te with
  | Tconst (v, t) -> (
    match t with
    | Ast.Integer (s, w) -> ([], E.Const (Value.vword s (W.of_bignum w v)))
    | Ast.Bool -> ([], E.Const (Value.vword Unsigned (W.of_bignum W8 v)))
    | _ -> raise (Unsupported "non-integer constant"))
  | Tnull t -> (
    match ty_of_ctype t with
    | Ty.Tptr c -> ([], E.null_e c)
    | _ -> raise (Unsupported "null of non-pointer type"))
  | Tvar x -> ([], E.Var (x, var_type ctx x))
  | Tglobal x -> ([], E.Global (x, var_type ctx x))
  | Tunop (Ast.Uneg, x) -> (
    let gs, x' = tr_expr ctx x in
    match x.tt with
    | Ast.Integer (Signed, w) ->
      (gs @ [ signed_range_guard (E.Unop (E.Neg, sint x')) w ], E.Unop (E.Neg, x'))
    | Ast.Integer (Unsigned, _) -> (gs, E.Unop (E.Neg, x'))
    | _ -> raise (Unsupported "negation of non-integer"))
  | Tunop (Ast.Ubnot, x) ->
    let gs, x' = tr_expr ctx x in
    (gs, E.Unop (E.Bnot, x'))
  | Tunop (Ast.Ulnot, x) ->
    let gs, x' = tr_expr ctx x in
    (gs, E.not_e x')
  | Tbinop ((Ast.Bland | Ast.Blor) as op, x, y) ->
    let gx, x' = tr_expr ctx x in
    let gy, y' = tr_expr ctx y in
    let cond = if op = Ast.Bland then x' else E.not_e x' in
    if op = Ast.Bland then (gx @ under_condition cond gy, E.and_e x' y')
    else (gx @ under_condition cond gy, E.or_e x' y')
  | Tbinop (op, x, y) -> tr_arith ctx op x y
  | Tcast (t, x) -> (
    let gs, x' = tr_expr ctx x in
    match (t, x.tt) with
    | Ast.Bool, _ -> (gs, E.Cast (Ty.Tword (Unsigned, W8), x'))
    | Ast.Integer (s, w), _ -> (gs, E.Cast (Ty.Tword (s, w), x'))
    | Ast.Pointer _, _ -> (
      match ty_of_ctype t with
      | Ty.Tptr c -> (gs, E.Cast (Ty.Tptr c, x'))
      | _ -> raise (Unsupported "cast to void pointer-like type"))
    | _ -> raise (Unsupported ("cast to " ^ Ast.ctype_to_string t)))
  | Tload lv -> tr_load ctx lv
  | Taddr lv -> (
    let gs, addr = lval_addr ctx lv in
    (gs, addr))
  | Tptradd (p, n) -> (
    let gp, p' = tr_expr ctx p in
    let gn, n' = tr_expr ctx n in
    match ty_of_ctype p.tt with
    | Ty.Tptr c -> (gp @ gn, E.PtrAdd (c, p', n'))
    | _ -> raise (Unsupported "pointer arithmetic on non-pointer"))
  | Ttobool x -> (
    let gs, x' = tr_expr ctx x in
    match ty_of_ctype x.tt with
    | Ty.Tword (s, w) -> (gs, E.Binop (E.Ne, x', E.word_e s w 0))
    | Ty.Tptr c -> (gs, E.Binop (E.Ne, x', E.null_e c))
    | Ty.Tbool -> (gs, x')
    | _ -> raise (Unsupported "condition on non-scalar"))
  | Tofbool b ->
    let gs, b' = tr_expr ctx b in
    (gs, E.Ite (b', E.word_e Signed W32 1, E.word_e Signed W32 0))
  | Tcond (c, x, y) ->
    let gc, c' = tr_expr ctx c in
    let gx, x' = tr_expr ctx x in
    let gy, y' = tr_expr ctx y in
    (gc @ under_condition c' gx @ under_condition (E.not_e c') gy, E.Ite (c', x', y'))

and var_type ctx x =
  match SMap.find_opt x ctx.venv with
  | Some t -> t
  | None -> raise (Unsupported ("unknown variable " ^ x))

and tr_arith ctx op x y : guard list * E.t =
  let gx, x' = tr_expr ctx x in
  let gy, y' = tr_expr ctx y in
  let gs = gx @ gy in
  let e = E.Binop (binop_of op, x', y') in
  match (op, x.tt) with
  | (Ast.Badd | Ast.Bsub | Ast.Bmul), Ast.Integer (Signed, w) ->
    let ideal = E.Binop (binop_of op, sint x', sint y') in
    (gs @ [ signed_range_guard ideal w ], e)
  | (Ast.Badd | Ast.Bsub | Ast.Bmul), _ -> (gs, e)
  | (Ast.Bdiv | Ast.Bmod), Ast.Integer (Signed, w) ->
    let nonzero = (Div_by_zero, E.Binop (E.Ne, y', E.word_e Signed w 0)) in
    let ideal = E.Binop (E.Div, sint x', sint y') in
    (* INT_MIN div -1 is the only in-type overflow; the range guard rules
       it out.  The guard is vacuous for Bmod but emitted for Bdiv. *)
    let range = signed_range_guard ideal w in
    (gs @ (nonzero :: (if op = Ast.Bdiv then [ range ] else [])), e)
  | (Ast.Bdiv | Ast.Bmod), Ast.Integer (Unsigned, w) ->
    (gs @ [ (Div_by_zero, E.Binop (E.Ne, y', E.word_e Unsigned w 0)) ], e)
  | (Ast.Bshl | Ast.Bshr), Ast.Integer (sx, w) ->
    let bits = E.big_nat_e (B.of_int (W.bits w)) in
    let amount_ok =
      match y.tt with
      | Ast.Integer (Unsigned, _) -> E.Binop (E.Lt, unat y', bits)
      | _ ->
        E.and_e
          (E.Binop (E.Le, E.int_e 0, sint y'))
          (E.Binop (E.Lt, sint y', E.big_int_e (B.of_int (W.bits w))))
    in
    let value_ok =
      (* shifting a negative signed value is UB for << *)
      if sx = Ty.Signed && op = Ast.Bshl then
        E.and_e amount_ok (E.Binop (E.Le, E.int_e 0, sint x'))
      else amount_ok
    in
    (gs @ [ (Shift_bounds, value_ok) ], e)
  | (Ast.Bband | Ast.Bbor | Ast.Bbxor), _ -> (gs, e)
  | (Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge), _ -> (gs, e)
  | (Ast.Bland | Ast.Blor), _ -> assert false
  | _, t -> raise (Unsupported ("arithmetic on " ^ Ast.ctype_to_string t))

(* The C-level validity guard for dereferencing a τ pointer: alignment plus
   0 ∉ {p ..+ size τ} (paper Sec 4.1). *)
and deref_guard (c : Ty.cty) (p : E.t) : guard =
  (Ptr_valid, E.and_e (E.PtrAligned (c, p)) (E.PtrSpan (c, p)))

(* Address of a memory lvalue: (guards, address expression, object type).
   Also reports the *root* pointer and its type, whose validity guards
   dereferences (a field access p->f is guarded via the struct pointer p). *)
and lval_mem_addr ctx (lv : Tir.tlval) : guard list * E.t * Ty.cty * (E.t * Ty.cty) =
  match lv with
  | Tir.Lmem (p, t) ->
    let gp, p' = tr_expr ctx p in
    let c = cty_exn t in
    (gp, p', c, (p', c))
  | Tir.Lfield (base, sname, fname, fty) ->
    let gb, base_addr, _bc, root = lval_mem_addr ctx base in
    let fc = cty_exn fty in
    ignore fc;
    (gb, E.FieldAddr (sname, fname, base_addr), Layout.field_type ctx.lenv sname fname, root)
  | Tir.Lvar _ | Tir.Lglobal _ ->
    raise (Unsupported "address of register lvalue")

(* Loading an lvalue. *)
and tr_load ctx (lv : Tir.tlval) : guard list * E.t =
  match lv with
  | Tir.Lvar (x, _) -> ([], E.Var (x, var_type ctx x))
  | Tir.Lglobal (x, t) -> ([], E.Global (x, ty_of_ctype t))
  | Tir.Lfield (base, sname, fname, _) when is_register_lval base ->
    let gs, b = tr_load ctx base in
    (gs, E.StructGet (sname, fname, b))
  | Tir.Lmem _ | Tir.Lfield _ ->
    let gs, addr, c, (root, root_c) = lval_mem_addr ctx lv in
    (gs @ [ deref_guard root_c root ], E.HeapRead (c, addr))

and is_register_lval = function
  | Tir.Lvar _ | Tir.Lglobal _ -> true
  | Tir.Lfield (base, _, _, _) -> is_register_lval base
  | Tir.Lmem _ -> false

(* Address expression for AddrOf: no dereference, hence no validity guard. *)
and lval_addr ctx (lv : Tir.tlval) : guard list * E.t =
  let gs, addr, _, _ = lval_mem_addr ctx lv in
  (gs, addr)

(* ------------------------------------------------------------------ *)
(* Statements. *)

let rec tr_stmt ctx (ret_ty : Ty.t) (s : Tir.tstmt) : stmt =
  let pos = s.Tir.tsp in
  match s.Tir.ts with
  | Tir.Tskip -> Skip
  | Tir.Tseq (a, b) ->
    (* explicit lets: [gsrc] must record guards in program order *)
    let a' = tr_stmt ctx ret_ty a in
    let b' = tr_stmt ctx ret_ty b in
    Seq (a', b')
  | Tir.Tassign (lv, rhs) ->
    let g_rhs, rhs' = tr_expr ctx rhs in
    let stmt, g_lhs = tr_assign ctx lv rhs' in
    seq_of_list (emit ctx pos (g_rhs @ g_lhs) @ [ stmt ])
  | Tir.Tcall (dest, fname, args) -> (
    let g_args, args' =
      List.fold_left
        (fun (gs, acc) a ->
          let g, a' = tr_expr ctx a in
          (gs @ g, a' :: acc))
        ([], []) args
    in
    let args' = List.rev args' in
    let pre = emit ctx pos g_args in
    match dest with
    | None -> seq_of_list (pre @ [ Call (None, fname, args') ])
    | Some (Tir.Lvar (x, _)) -> seq_of_list (pre @ [ Call (Some x, fname, args') ])
    | Some lv ->
      (* call into a temporary, then a normal assignment *)
      let t = ty_of_ctype (Tir.lval_type lv) in
      let tmp = fresh_tmp ctx t in
      let stmt, g_lhs = tr_assign ctx lv (E.Var (tmp, t)) in
      seq_of_list (pre @ [ Call (Some tmp, fname, args') ] @ emit ctx pos g_lhs @ [ stmt ]))
  | Tir.Tif (c, a, b) ->
    let gc, c' = tr_expr ctx c in
    let pre = emit ctx pos gc in
    let a' = tr_stmt ctx ret_ty a in
    let b' = tr_stmt ctx ret_ty b in
    seq_of_list (pre @ [ Cond (c', a', b') ])
  | Tir.Twhile (c, body) ->
    let gc, c' = tr_expr ctx c in
    let pre = emit ctx pos gc in
    let body' = tr_stmt ctx ret_ty body in
    (* Catch continue at the body level, break at the loop level; re-raise
       anything else (i.e. return).  Condition guards run before the loop
       and after each iteration. *)
    let catch_continue = Cond (exn_is Xcontinue, Skip, Throw) in
    let loop_body = Seq (Try (body', catch_continue), seq_of_list (emit ctx pos gc)) in
    let catch_break = Cond (exn_is Xbreak, Skip, Throw) in
    seq_of_list (pre @ [ Try (While (c', loop_body), catch_break) ])
  | Tir.Tbreak -> Seq (Local_set (exn_var, E.word_e Unsigned W32 (exit_code Xbreak)), Throw)
  | Tir.Tcontinue -> Seq (Local_set (exn_var, E.word_e Unsigned W32 (exit_code Xcontinue)), Throw)
  | Tir.Treturn None ->
    Seq (Local_set (exn_var, E.word_e Unsigned W32 (exit_code Xreturn)), Throw)
  | Tir.Treturn (Some e) ->
    ignore ret_ty;
    let gs, e' = tr_expr ctx e in
    seq_of_list
      (emit ctx pos gs
      @ [
          Local_set (ret_var, e');
          Local_set (exn_var, E.word_e Unsigned W32 (exit_code Xreturn));
          Throw;
        ])

(* Assignment to an lvalue: returns the statement plus lvalue guards. *)
and tr_assign ctx (lv : Tir.tlval) (rhs : E.t) : stmt * guard list =
  match lv with
  | Tir.Lvar (x, _) -> (Local_set (x, rhs), [])
  | Tir.Lglobal (x, _) -> (Global_set (x, rhs), [])
  | Tir.Lfield (base, sname, fname, _) when is_register_lval base ->
    let _, base_e = tr_load ctx base in
    tr_assign ctx base (E.StructSet (sname, fname, base_e, rhs))
  | Tir.Lmem _ | Tir.Lfield _ ->
    let gs, addr, c, (root, root_c) = lval_mem_addr ctx lv in
    (Heap_write (c, addr, rhs), gs @ [ deref_guard root_c root ])

(* ------------------------------------------------------------------ *)
(* Functions and programs. *)

let tr_func lenv (f : Tir.tfunc) : func =
  let params = List.map (fun (n, t) -> (n, ty_of_ctype t)) f.tf_params in
  let declared = List.map (fun (n, t) -> (n, ty_of_ctype t)) f.tf_locals in
  let ret_ty = ty_of_ctype f.tf_ret in
  let venv =
    List.fold_left (fun m (n, t) -> SMap.add n t m) SMap.empty (params @ declared)
  in
  let venv = SMap.add ret_var ret_ty (SMap.add exn_var exn_ty venv) in
  let ctx = { lenv; venv; extra_locals = []; tmp_counter = 0; gsrc = [] } in
  let body = tr_stmt ctx ret_ty f.tf_body in
  (* Fig 2 shape: TRY body [;; GUARD DontReach] CATCH SKIP END *)
  let fall_off =
    if Ty.equal ret_ty Ty.Tunit then []
    else emit ctx f.tf_pos [ (Dont_reach, E.false_e) ]
  in
  let wrapped = Try (seq_of_list ((body :: fall_off)), Skip) in
  let ghost = [ (ret_var, ret_ty); (exn_var, exn_ty) ] in
  let ghost = if Ty.equal ret_ty Ty.Tunit then [ (exn_var, exn_ty) ] else ghost in
  {
    name = f.tf_name;
    params;
    locals = declared @ List.rev ctx.extra_locals @ ghost;
    ret_ty;
    body = wrapped;
    fpos = f.tf_pos;
    gsrc = List.rev ctx.gsrc;
  }

let tr_program (p : Tir.tprog) : program =
  {
    lenv = p.tp_lenv;
    globals = List.map (fun (n, t) -> (n, ty_of_ctype t)) p.tp_globals;
    funcs = List.map (tr_func p.tp_lenv) p.tp_funcs;
  }

(* One-stop front end: C source to Simpl program. *)
let parse (src : string) : program = tr_program (Ac_cfront.Typecheck.parse_and_check src)
