module Ty = Ac_lang.Ty
module E = Ac_lang.Expr

(* The Simpl intermediate language (Schirmer), as emitted by the C parser.

   Deliberately verbose and literal (paper Sec 2): abrupt termination
   (return/break/continue) goes through a ghost variable [global_exn_var]
   plus THROW/TRY-CATCH, and every potential undefined behaviour is guarded
   explicitly.  This is the trusted input to the AutoCorres pipeline. *)

type guard_kind =
  | Div_by_zero
  | Signed_overflow
  | Shift_bounds
  | Ptr_valid
  | Array_bounds
  | Dont_reach (* control falls off the end of a non-void function *)
  | Unsigned_overflow (* introduced by word abstraction, never by the parser *)

let guard_kind_name = function
  | Div_by_zero -> "Div0"
  | Signed_overflow -> "SignedOverflow"
  | Shift_bounds -> "ShiftBounds"
  | Ptr_valid -> "PtrValid"
  | Array_bounds -> "ArrayBounds"
  | Dont_reach -> "DontReach"
  | Unsigned_overflow -> "UnsignedOverflow"

(* Exit reasons recorded in the ghost variable, encoded as small words so
   that handlers can branch on them with ordinary expressions. *)
type exit_kind = Xreturn | Xbreak | Xcontinue

let exit_code = function Xreturn -> 0 | Xbreak -> 1 | Xcontinue -> 2
let exit_name = function Xreturn -> "Return" | Xbreak -> "Break" | Xcontinue -> "Continue"

(* The ghost/pseudo locals used by the translation. *)
let exn_var = "global_exn_var"
let ret_var = "ret"

let exn_ty : Ty.t = Ty.Tword (Unsigned, W32)

(* Expression testing the recorded exit reason. *)
let exn_is kind =
  E.Binop (E.Eq, E.Var (exn_var, exn_ty), E.word_e Ty.Unsigned Ty.W32 (exit_code kind))

type stmt =
  | Skip
  | Seq of stmt * stmt
  | Local_set of string * E.t (* ´x :== e *)
  | Global_set of string * E.t
  | Heap_write of Ty.cty * E.t * E.t (* object write at pointer *)
  | Retype of Ty.cty * E.t (* ghost type-tag update at pointer *)
  | Cond of E.t * stmt * stmt
  | While of E.t * stmt
  | Guard of guard_kind * E.t
  | Throw
  | Try of stmt * stmt (* TRY body CATCH handler END *)
  | Call of string option * string * E.t list (* dest local, callee, args *)

(* Explicit structural equality with a physical fast path.  Not the
   polymorphic [=]: statements carry expressions whose [Value.t] leaves
   hold bignums, and those compare via [B.equal] (representation-proof),
   not field-by-field. *)
let rec stmt_equal a b =
  a == b
  ||
  match (a, b) with
  | Skip, Skip | Throw, Throw -> true
  | Seq (x1, y1), Seq (x2, y2) | Try (x1, y1), Try (x2, y2) ->
    stmt_equal x1 x2 && stmt_equal y1 y2
  | Local_set (x, e1), Local_set (y, e2) | Global_set (x, e1), Global_set (y, e2) ->
    String.equal x y && E.equal e1 e2
  | Heap_write (c1, p1, v1), Heap_write (c2, p2, v2) ->
    Ty.cty_equal c1 c2 && E.equal p1 p2 && E.equal v1 v2
  | Retype (c1, e1), Retype (c2, e2) -> Ty.cty_equal c1 c2 && E.equal e1 e2
  | Cond (c1, x1, y1), Cond (c2, x2, y2) ->
    E.equal c1 c2 && stmt_equal x1 x2 && stmt_equal y1 y2
  | While (c1, b1), While (c2, b2) -> E.equal c1 c2 && stmt_equal b1 b2
  | Guard (k1, e1), Guard (k2, e2) ->
    k1 = k2 (* constant constructors: immediate *) && E.equal e1 e2
  | Call (d1, f1, a1), Call (d2, f2, a2) ->
    Option.equal String.equal d1 d2 && String.equal f1 f2
    && List.length a1 = List.length a2 && List.for_all2 E.equal a1 a2
  | ( ( Skip | Seq _ | Local_set _ | Global_set _ | Heap_write _ | Retype _ | Cond _
      | While _ | Guard _ | Throw | Try _ | Call _ ),
      _ ) ->
    false

type func = {
  name : string;
  params : (string * Ty.t) list;
  locals : (string * Ty.t) list; (* includes ret/exn ghosts *)
  ret_ty : Ty.t; (* Tunit for void *)
  body : stmt;
  fpos : Ac_cfront.Ast.pos; (* source position of the function definition *)
  gsrc : (guard_kind * E.t * Ac_cfront.Ast.pos) list;
      (* every guard emitted by the parser, in emission order, with the
         source position of the statement it protects — the map `acc lint`
         uses to report findings as file:line:col *)
}

type program = {
  lenv : Ac_lang.Layout.env;
  globals : (string * Ty.t) list;
  funcs : func list;
}

let find_func prog name = List.find_opt (fun f -> String.equal f.name name) prog.funcs

let rec seq_of_list = function
  | [] -> Skip
  | [ s ] -> s
  | s :: rest -> Seq (s, seq_of_list rest)

let guards_to_stmts gs = List.map (fun (k, e) -> Guard (k, e)) gs

(* Number of AST nodes in a statement, counting embedded expressions: the
   term-size metric of Table 5 for parser output. *)
let rec size = function
  | Skip | Throw -> 1
  | Seq (a, b) | Try (a, b) -> 1 + size a + size b
  | Local_set (_, e) | Global_set (_, e) | Guard (_, e) | Retype (_, e) -> 1 + E.size e
  | Heap_write (_, p, v) -> 1 + E.size p + E.size v
  | Cond (c, a, b) -> 1 + E.size c + size a + size b
  | While (c, b) -> 1 + E.size c + size b
  | Call (_, _, args) -> 1 + List.fold_left (fun n e -> n + E.size e) 0 args

let func_size f = size f.body

let rec iter_stmts f s =
  f s;
  match s with
  | Seq (a, b) | Try (a, b) ->
    iter_stmts f a;
    iter_stmts f b
  | Cond (_, a, b) ->
    iter_stmts f a;
    iter_stmts f b
  | While (_, b) -> iter_stmts f b
  | Skip | Throw | Local_set _ | Global_set _ | Heap_write _ | Retype _ | Guard _ | Call _ -> ()

(* Every C object type read or written through the heap by [s], the input to
   the heap-abstraction phase's state construction (paper Sec 4.4). *)
let heap_types_of_stmt s =
  let acc = ref [] in
  let add c = if not (List.exists (Ty.cty_equal c) !acc) then acc := c :: !acc in
  let rec scan_expr (e : E.t) =
    (match e with
    | E.HeapRead (c, _) | E.TypedRead (c, _) | E.IsValid (c, _)
    | E.PtrAligned (c, _) | E.PtrSpan (c, _) ->
      add c
    | E.FieldAddr (sname, _, _) -> add (Ty.Cstruct sname)
    | _ -> ());
    List.iter scan_expr (E.children e)
  in
  iter_stmts
    (fun s ->
      match s with
      | Heap_write (c, p, v) ->
        add c;
        scan_expr p;
        scan_expr v
      | Retype (c, p) ->
        add c;
        scan_expr p
      | Local_set (_, e) | Global_set (_, e) | Guard (_, e) -> scan_expr e
      | Cond (c, _, _) -> scan_expr c
      | While (c, _) -> scan_expr c
      | Call (_, _, args) -> List.iter scan_expr args
      | Skip | Throw | Seq _ | Try _ -> ())
    s;
  List.rev !acc
