module Ty = Ac_lang.Ty
module Layout = Ac_lang.Layout
module Value = Ac_lang.Value
module Expr = Ac_lang.Expr
module B = Ac_bignum
module SMap = Map.Make (String)

(* Concrete program states at the Simpl and L1 levels: local variables (one
   frame), global variables, and the tagged byte heap. *)

type t = {
  locals : Value.t SMap.t;
  globals : Value.t SMap.t;
  heap : Heap.t;
}

let empty = { locals = SMap.empty; globals = SMap.empty; heap = Heap.empty }

let get_local s x =
  match SMap.find_opt x s.locals with
  | Some v -> v
  | None -> Expr.stuck "unbound local %s" x

let set_local s x v = { s with locals = SMap.add x v s.locals }

let get_global s x =
  match SMap.find_opt x s.globals with
  | Some v -> v
  | None -> Expr.stuck "unbound global %s" x

let set_global s x v = { s with globals = SMap.add x v s.globals }

let with_heap s h = { s with heap = h }

(* Expression-evaluation view at the concrete level: locals are *not* part
   of the view (they are bound in the evaluation environment); the typed
   heaps do not exist yet. *)
let view lenv s : Expr.view =
  {
    Expr.read_global = get_global s;
    read_heap = (fun c addr -> Heap.read_obj lenv s.heap c addr);
    typed_read = (fun _ _ -> Expr.stuck "typed heap read at concrete level");
    is_valid = (fun _ _ -> Expr.stuck "is_valid at concrete level");
    lenv;
  }

(* Evaluate an expression in state [s]: locals come from [s.locals]. *)
let eval lenv s e = Expr.eval (view lenv s) s.locals e

let equal a b =
  SMap.equal Value.equal a.locals b.locals
  && SMap.equal Value.equal a.globals b.globals
  && Heap.equal a.heap b.heap
