module Ty = Ac_lang.Ty
module Layout = Ac_lang.Layout
module Value = Ac_lang.Value
module Codec = Ac_lang.Codec
module Expr = Ac_lang.Expr
module B = Ac_bignum

(* The byte-level heap with ghost type tags (Tuch's model, paper Sec 4.1-2).

   Memory is a map from addresses to bytes.  The ghost tag map marks an
   address as the *first byte* of an object of some C type; footprint bytes
   are implied by the layout.  [heap_lift] (paper Fig 4) projects this heap
   into a partial typed heap: an address holds a valid object iff it is
   correctly tagged, aligned, non-NULL and does not wrap the address
   space. *)

module BMap = Map.Make (struct
  type t = B.t

  let compare = B.compare
end)

type t = {
  bytes : int BMap.t; (* absent addresses read as 0 *)
  tags : Ty.cty BMap.t; (* object starts *)
}

let empty = { bytes = BMap.empty; tags = BMap.empty }

let read_byte h addr = match BMap.find_opt addr h.bytes with Some b -> b | None -> 0

let write_byte h addr b = { h with bytes = BMap.add addr (b land 0xff) h.bytes }

let write_bytes h addr bs =
  let _, h =
    List.fold_left
      (fun (i, h) b -> (B.succ i, write_byte h i b))
      (addr, h) bs
  in
  h

(* Object-level access, ignoring tags: this is the raw [read]/[write] of the
   concrete model, always defined. *)
let read_obj lenv h (c : Ty.cty) addr : Value.t = Codec.decode lenv c (read_byte h) addr

let write_obj lenv h (_c : Ty.cty) addr (v : Value.t) = write_bytes h addr (Codec.encode lenv v)

let tag_at h addr = BMap.find_opt addr h.tags

(* Retype the object at [addr] to type [c]: clears any tag whose footprint
   overlaps the new object, then tags [addr].  This is the ghost annotation
   emitted at malloc/free-style reuse points (paper Sec 4.2). *)
let retype lenv h (c : Ty.cty) addr =
  let size = B.of_int (Layout.size_of lenv c) in
  let hi = B.add addr size in
  let overlapping a c' =
    let size' = B.of_int (Layout.size_of lenv c') in
    B.lt a hi && B.lt addr (B.add a size')
  in
  let tags = BMap.filter (fun a c' -> not (overlapping a c')) h.tags in
  { h with tags = BMap.add addr c tags }

let untype h addr = { h with tags = BMap.remove addr h.tags }

(* type_tag_valid: the address is tagged as the start of an object of [c]. *)
let type_tag_valid h (c : Ty.cty) addr =
  match tag_at h addr with Some c' -> Ty.cty_equal c c' | None -> false

(* heap_lift (paper Fig 4): Some v iff tagged, aligned and spanning no
   forbidden addresses. *)
let heap_lift lenv h (c : Ty.cty) addr : Value.t option =
  if type_tag_valid h c addr && Expr.aligned lenv c addr && Expr.span_ok lenv c addr then
    Some (read_obj lenv h c addr)
  else None

let lift_valid lenv h c addr = heap_lift lenv h c addr <> None

(* All (address, type) pairs currently tagged: the domain over which the
   abstraction function [st] builds the typed heaps. *)
let tagged_objects h = BMap.bindings h.tags

(* Allocate a fresh tagged object at the next free aligned address; a test
   convenience standing in for malloc. *)
let alloc lenv h (c : Ty.cty) : B.t * t =
  let align = B.of_int (Layout.align_of lenv c) in
  let size = B.of_int (Layout.size_of lenv c) in
  let next =
    BMap.fold
      (fun a c' acc ->
        let e = B.add a (B.of_int (Layout.size_of lenv c')) in
        B.max acc e)
      h.tags (B.of_int 0x1000)
  in
  let next = BMap.fold (fun a _ acc -> B.max acc (B.succ a)) h.bytes next in
  let addr = B.mul (B.fdiv (B.add next (B.pred align)) align) align in
  let h = retype lenv h c addr in
  (* zero-initialise *)
  let h = write_bytes h addr (List.init (B.to_int_exn size) (fun _ -> 0)) in
  (addr, h)

let equal a b = BMap.equal ( = ) a.bytes b.bytes && BMap.equal Ty.cty_equal a.tags b.tags
