module Ty = Ac_lang.Ty
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment
module Store = Ac_store.Store
module Trace = Ac_store.Trace

(* The AutoCorres driver: runs the full pipeline of Fig 1 over a C program
   and returns every intermediate representation together with the
   refinement theorems connecting them.

   Per-function options select word abstraction and heap abstraction
   individually (paper Sec 3.2: "we allow the user to select whether to use
   word abstraction or not on a per-function basis"; Sec 4.6: "allow the
   user to indicate which functions should be abstracted and which should
   remain in the low-level memory model").

   Fault isolation (the resilience layer): every phase runs per function
   behind [attempt] below, so one function failing L1, L2, guard
   discharge, heap or word abstraction, or the clean-up rewrites degrades
   *that function* to its last certified level — the same graceful
   degradation the paper applies to unliftable functions (Sec 4.5) —
   while the rest of the unit completes and every surviving theorem still
   chains and re-validates.  With [keep_going = false] (the default) the
   first non-recoverable failure raises [Diag.Error] carrying the
   structured diagnostic instead. *)

type func_options = {
  word_abs : bool;
  heap_abs : bool;
  discharge_guards : bool;
      (* statically discharge provably-true UB guards (abstract
         interpretation, kernel-checked certificates) *)
}

let default_func_options = { word_abs = true; heap_abs = true; discharge_guards = true }

(* Resource budgets for every unbounded engine the pipeline embeds.
   Exhaustion degrades (the guard is kept, the rewrite stops, the proof
   stays open) instead of hanging. *)
type budgets = {
  solver_branches : int;  (* tableau branches per prover goal *)
  solver_deadline_s : float option;  (* wall clock per prover goal *)
  cc_merges : int;  (* congruence-closure unions per closure instance *)
  analysis_rounds : int;  (* widen/join rounds per loop *)
  analysis_steps : int;  (* fixpoint iterations per analysed function *)
  analysis_deadline_s : float option;  (* wall clock per analysed function *)
  rewrite_fuel : int;  (* head rewrites per kernel normalize call *)
  summary_rounds : int;  (* interprocedural context-refinement rounds *)
  summary_contexts : int;  (* refined summary contexts per callee *)
}

let default_budgets =
  {
    solver_branches = 40000;
    solver_deadline_s = None;
    cc_merges = 50_000;
    analysis_rounds = 40;
    analysis_steps = 20_000;
    analysis_deadline_s = None;
    rewrite_fuel = Rewrite.default_fuel;
    summary_rounds = 4;
    summary_contexts = 3;
  }

type options = {
  defaults : func_options;
  overrides : (string * func_options) list;
  strategy : Wa.strategy;
  (* Run the certified clean-up rewrites (guard discharge, inlining,
     return-flow straightening).  Off only for the ablation study. *)
  polish : bool;
  (* Fault isolation: degrade failing functions to their last certified
     level and keep translating the rest of the unit.  Off: raise
     [Diag.Error] at the first non-recoverable per-function failure. *)
  keep_going : bool;
  budgets : budgets;
  (* Worker domains for the per-function phases (the calling domain
     counts).  1 = fully sequential.  Output is deterministic at any
     value: [Pool.map] preserves input order and first-failure
     semantics. *)
  jobs : int;
  (* Reuse L2 conversions across nothrow-fixpoint rounds when the
     function's observable environment (the nothrow status of its own
     callees) is unchanged.  A/B switch for benchmarking: off reproduces
     the pre-memo cost model (every function re-converted every round);
     output is identical either way. *)
  l2_memo : bool;
  (* Interprocedural guard discharge: compute per-function summaries
     bottom-up over the call graph and let the analysis carry facts
     across calls (every discharge still goes through the kernel, which
     re-verifies the summary table).  Off falls back to the purely
     intraprocedural PR 1 pass. *)
  interproc : bool;
  (* Also measure [result.iprof] (per-function intra-vs-inter discharge
     attribution for `acc stats --profile`).  Two extra analysis passes
     per function, so off by default; display-only, never in the store
     key. *)
  summary_profile : bool;
}

let default_options =
  { defaults = default_func_options; overrides = []; strategy = Wa.default_strategy;
    polish = true; keep_going = false; budgets = default_budgets; jobs = 1;
    l2_memo = true; interproc = true; summary_profile = false }

let options_for options fname =
  match List.assoc_opt fname options.overrides with
  | Some o -> o
  | None -> options.defaults

(* The per-function option vector rendered for the proof store's content
   key: every knob that can change what the pipeline produces for one
   function must appear here, so flipping any of them misses the store
   instead of replaying a result computed under different settings.
   [jobs] and [l2_memo] are deliberately absent — they change scheduling
   and cost, never output. *)
let opt_string (options : options) (fname : string) : string =
  let o = options_for options fname in
  let b = options.budgets in
  let fl = function None -> "-" | Some f -> string_of_float f in
  Printf.sprintf
    "wa=%b ha=%b dg=%b polish=%b sb=%d sd=%s cc=%d ar=%d as=%d ad=%s rf=%d ip=%b sr=%d sc=%d"
    o.word_abs o.heap_abs o.discharge_guards options.polish b.solver_branches
    (fl b.solver_deadline_s) b.cc_merges b.analysis_rounds b.analysis_steps
    (fl b.analysis_deadline_s) b.rewrite_fuel options.interproc b.summary_rounds
    b.summary_contexts

(* The degradation ladder: the last certified level a function reached. *)
type level = Lsimpl | Ll1 | Ll2 | Lhl | Lwa

let level_name = function
  | Lsimpl -> "Simpl"
  | Ll1 -> "L1"
  | Ll2 -> "L2"
  | Lhl -> "HL"
  | Lwa -> "WA"

(* Everything the pipeline produced for one function. *)
type func_result = {
  fr_name : string;
  fr_simpl : Ir.func;
  fr_l1 : M.func;
  fr_l1_thm : Thm.t;
  fr_l2 : M.func;
  fr_l2_thm : Thm.t;
  fr_hl : M.func option; (* None when heap abstraction was off or inapplicable *)
  fr_hl_thm : Thm.t option; (* the abs_h_stmt step *)
  fr_hl_thms : Thm.t list; (* all heap-abstraction steps *)
  fr_wa : M.func option;
  fr_wa_thm : Thm.t option; (* the abs_w_stmt step *)
  fr_wa_thms : Thm.t list;
  fr_wa_wvars : (string * (Ty.sign * Ty.width)) list;
      (* the word-abstraction variable registration the W_* derivations
         and the chain were built under; [check_all] re-checks them under
         [res.ctx] extended with exactly this *)
  fr_chain : Thm.t option; (* the end-to-end Fn_refines theorem *)
  fr_final : M.func;
  fr_skipped : (string * string) list; (* phase, reason *)
  fr_diags : Diag.t list; (* structured diagnostics collected for this function *)
}

(* A function that could not be carried past L1: it keeps whatever was
   certified (the Simpl image always, the L1 image plus its [Corres_l1]
   theorem when monadic conversion succeeded) and the diagnostics
   explaining the degradation. *)
type degraded = {
  dg_name : string;
  dg_simpl : Ir.func;
  dg_l1 : (M.func * Thm.t) option;
  dg_diags : Diag.t list;
}

let level_of (fr : func_result) : level =
  match (fr.fr_wa, fr.fr_hl) with
  | Some _, _ -> Lwa
  | None, Some _ -> Lhl
  | None, None -> Ll2

let degraded_level (d : degraded) : level =
  match d.dg_l1 with Some _ -> Ll1 | None -> Lsimpl

(* Per-function interprocedural-analysis profile (`acc stats --profile`):
   how many summary contexts the function ended up with, their total
   abstract size, and how many of its guards the analysis proves without
   vs with the summary table (the difference is the interprocedural
   win).  Counts are pure analysis verdicts, not kernel discharges. *)
type iprof = {
  ip_contexts : int;
  ip_size : int;
  ip_intra : int;
  ip_inter : int;
}

type result = {
  source : string;
  simpl : Ir.program;
  l1_prog : M.program;
  final_prog : M.program; (* the program a verification engineer works on *)
  funcs : func_result list;
  degraded : degraded list; (* functions that fell below L2 (keep_going) *)
  diags : Diag.t list; (* every diagnostic, unit-level ones included *)
  budget_hits : int; (* budget exhaustions during this run *)
  ctx : Rules.ctx;
  heap_types : Ty.cty list;
  store_hits : int; (* store entries used by this run (0 without a store) *)
  store_misses : int; (* functions translated from scratch despite a store *)
  retries : int; (* lost pool items re-attempted by the supervisor *)
  quarantined : int; (* items re-run masked after repeated worker crashes *)
  restarts : int; (* worker domains respawned during this run *)
  sums : Ac_kernel.Absdom.sums;
      (* the kernel-checkable summary table this run's certificates drew
         from ([] when [interproc] is off); `acc analyze` reuses it *)
  iprof : (string * iprof) list; (* per function, source order *)
}

let find_result res name = List.find_opt (fun r -> String.equal r.fr_name name) res.funcs

let all_diags res = res.diags

let ( ||> ) x f = f x

(* ------------------------------------------------------------------ *)
(* Budget plumbing.  The engines own their knobs (they cannot depend on
   this library); the driver installs the per-run values and aggregates
   the exhaustion counters. *)

let install_budgets (b : budgets) =
  Ac_prover.Solver.budget :=
    { Ac_prover.Solver.max_branches = b.solver_branches; deadline_s = b.solver_deadline_s };
  Ac_prover.Cc.merge_budget := b.cc_merges;
  Ac_analysis.budget :=
    { Ac_analysis.max_rounds = b.analysis_rounds; max_steps = b.analysis_steps;
      deadline_s = b.analysis_deadline_s };
  Ac_analysis.Summary.rounds := b.summary_rounds;
  Ac_analysis.Summary.contexts := b.summary_contexts;
  Rewrite.fuel := b.rewrite_fuel

let budget_exhaustions () =
  Atomic.get Ac_prover.Solver.exhaustions
  + Atomic.get Ac_prover.Cc.exhaustions
  + Atomic.get Ac_analysis.exhaustions
  + Atomic.get Ac_analysis.Summary.exhaustions
  + Atomic.get Rewrite.exhaustions

let reset_budget_counters () =
  Atomic.set Ac_prover.Solver.exhaustions 0;
  Atomic.set Ac_prover.Cc.exhaustions 0;
  Atomic.set Ac_analysis.exhaustions 0;
  Atomic.set Ac_analysis.Summary.exhaustions 0;
  Atomic.set Rewrite.exhaustions 0

(* ------------------------------------------------------------------ *)
(* Fault isolation. *)

(* The function a phase is currently processing; the fault-injection
   harness reads this to target failures at one function.  Domain-local:
   under [options.jobs > 1] each worker processes its own function, and
   the injection hooks run on the worker's domain. *)
let processing_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let processing () = Domain.DLS.get processing_key

(* Run one phase for one function.  Any escaping exception becomes a
   structured diagnostic: recorded (and the phase skipped) when the
   pipeline can degrade, raised as [Diag.Error] when it cannot and
   [keep_going] is off.  [Diag.Error] itself always propagates — it is
   already structured and already decided. *)
let attempt ~(keep_going : bool) ~(phase : Diag.phase) ~(fname : string)
    ~(recoverable : bool) (diags : Diag.t list ref) (f : unit -> 'a) : 'a option =
  let was = Domain.DLS.get processing_key in
  Domain.DLS.set processing_key (Some fname);
  let restore () = Domain.DLS.set processing_key was in
  match f () with
  | v ->
    restore ();
    Some v
  | exception (Diag.Error _ as e) ->
    restore ();
    raise e
  | exception e ->
    restore ();
    let d =
      Diag.make ~func:fname
        ~severity:(if recoverable then Diag.Warning else Diag.Error)
        ~recoverable phase (Diag.message_of_exn e)
    in
    if recoverable || keep_going then begin
      diags := d :: !diags;
      None
    end
    else raise (Diag.Error d)

(* ------------------------------------------------------------------ *)
(* Proof-store replay.

   Reconstitute a [func_result] from a store entry by re-minting its
   entire derivation through the kernel and anchoring the replayed
   conclusions against the *current* run: the freshly parsed Simpl body,
   the assembled unit's nothrow set and word-abstraction signatures.  An
   entry that is stale (the source or a callee changed in a way the key
   missed), corrupted past its digest, or hand-crafted can fail any of
   these gates — and then it is simply re-translated — but it can never
   contribute a theorem the kernel would not derive itself, because every
   theorem in the result comes out of [Thm.by] right here.

   [ctx] is the run's final context (post WA-demotion fixpoint): its
   [nothrows]/[fsigs] already include this entry's own claims, which were
   used to seed the fixpoints; the claim-vs-recomputation checks below
   close that loop, so a wrong seed demotes the entry instead of
   distorting the unit. *)
let replay_entry (ctx : Rules.ctx) ~(sums_digest : string) (f : Ir.func) (e : Store.fentry) :
    (func_result, string) Stdlib.result =
  let name = f.Ir.name in
  let l1_body = e.Store.e_l1.M.body in
  let l2_body = e.Store.e_l2.M.body in
  if not (String.equal e.Store.e_sums_digest sums_digest) then
    (* The summary slice this function's certificates could draw from
       differs from the one the entry was banked under (summary budgets
       changed, or interprocedural analysis was toggled): certificates
       might replay against summaries the kernel now resolves
       differently, so re-translate instead. *)
    Result.error "interprocedural summary table changed"
  else if Rules.nothrow_in ctx.Rules.nothrows l2_body <> e.Store.e_nothrow then
    Result.error "nothrow claim inconsistent with the assembled unit"
  else begin
    let conv_sig_equal (ps1, r1) (ps2, r2) =
      List.length ps1 = List.length ps2
      && List.for_all2 J.conv_equal ps1 ps2
      && J.conv_equal r1 r2
    in
    if
      not
        (conv_sig_equal e.Store.e_fsig
           (Wa.func_sig ~enabled:(e.Store.e_wa <> None) e.Store.e_l2))
    then Result.error "signature claim inconsistent with the assembled unit"
    else begin
      let after_hl = match e.Store.e_hl with Some h -> h | None -> e.Store.e_l2 in
      if Wa.collect_wvars ctx.Rules.fsigs after_hl <> e.Store.e_wvars then
        Result.error "word-abstraction variable registration mismatch"
      else begin
        let rctx = { ctx with Rules.wvars = e.Store.e_wvars } in
        match Trace.replay rctx e.Store.e_trace with
        | Result.Error m -> Result.error m
        | Result.Ok chain -> (
          match Thm.premises chain with
          | l1_thm :: l2_thm :: rest
            when e.Store.e_n_hl >= 0 && List.length rest >= e.Store.e_n_hl ->
            let hl_thms = List.filteri (fun i _ -> i < e.Store.e_n_hl) rest in
            let wa_thms = List.filteri (fun i _ -> i >= e.Store.e_n_hl) rest in
            (* Walk the chain the way [Fn_chain] folds it, collecting the
               intermediate program after every step: the stored L2/HL/WA
               images must be exactly the walk states at their segment
               boundaries, so an entry cannot present one program to the
               kernel and a different one to the user. *)
            let step cur (t : Thm.t) =
              match Thm.concl t with
              | (J.Equiv (a, c) | J.Abs_h_stmt (a, c)) when M.equal c cur -> Some a
              | J.Abs_w_stmt (_, _, _, a, c) when M.equal c cur -> Some a
              | _ -> None
            in
            let states =
              (* state after l2_thm, after each HL step, after each WA step *)
              List.fold_left
                (fun acc t ->
                  match acc with
                  | None -> None
                  | Some (cur, sts) -> (
                    match step cur t with
                    | Some a -> Some (a, a :: sts)
                    | None -> None))
                (Some (l1_body, []))
                (l2_thm :: rest)
              |> Option.map (fun (_, sts) -> List.rev sts)
            in
            (* [e_l2g] (the pre-discharge L2 image, a [Rules.fbodies]
               contribution) must be tied to the verified chain: either
               no guard was discharged at L2 (it IS the anchored L2
               state), or the L2 slot is the transitivity node whose
               premises — both re-minted by the kernel during replay —
               prove Equiv(l2, l2g) and Equiv(l2g, l1).  See DESIGN.md
               ("summary trust story") for why this anchoring plus the
               kernel's call-depth induction rules out mutually-forged
               entry sets. *)
            let l2g_body = e.Store.e_l2g.M.body in
            let l2g_anchored =
              M.equal l2g_body l2_body
              || (let prems = Thm.premises l2_thm in
                  List.exists
                    (fun t ->
                      J.judgment_equal (Thm.concl t) (J.Equiv (l2_body, l2g_body)))
                    prems
                  && List.exists
                       (fun t ->
                         J.judgment_equal (Thm.concl t) (J.Equiv (l2g_body, l1_body)))
                       prems)
            in
            let anchored =
              match states with
              | None -> false
              | Some sts ->
                let state_is i b =
                  match List.nth_opt sts i with Some s -> M.equal s b | None -> false
                in
                l2g_anchored
                && J.judgment_equal (Thm.concl chain)
                     (J.Fn_refines (name, e.Store.e_final.M.body, l1_body))
                && J.judgment_equal (Thm.concl l1_thm) (J.Corres_l1 (f.Ir.body, l1_body))
                && state_is 0 l2_body
                && state_is e.Store.e_n_hl after_hl.M.body
                && (match e.Store.e_wa with
                   | None -> true
                   | Some wf ->
                     List.exists (fun s -> M.equal s wf.M.body)
                       (List.filteri (fun i _ -> i > e.Store.e_n_hl) sts))
            in
            if not anchored then
              Result.error "replayed derivation does not anchor to the current source"
            else
              Result.ok
                {
                  fr_name = name;
                  fr_simpl = f;
                  fr_l1 = e.Store.e_l1;
                  fr_l1_thm = l1_thm;
                  fr_l2 = e.Store.e_l2;
                  fr_l2_thm = l2_thm;
                  fr_hl = e.Store.e_hl;
                  fr_hl_thm =
                    (if e.Store.e_hl <> None then
                       match hl_thms with t :: _ -> Some t | [] -> None
                     else None);
                  fr_hl_thms = hl_thms;
                  fr_wa = e.Store.e_wa;
                  fr_wa_thm =
                    (if e.Store.e_wa <> None then
                       match wa_thms with t :: _ -> Some t | [] -> None
                     else None);
                  fr_wa_thms = wa_thms;
                  fr_wa_wvars = e.Store.e_wvars;
                  fr_chain = Some chain;
                  fr_final = e.Store.e_final;
                  fr_skipped = e.Store.e_skipped;
                  fr_diags = [];
                }
          | _ -> Result.error "chain derivation has unexpected premise shape")
      end
    end
  end

let run ?(options = default_options) ?store ?pool:ext_pool ?supervisor
    ?(fresh_tables = true) (source : string) : result =
  Ac_obs.Obs.span ~cat:"driver" "driver.run" @@ fun () ->
  install_budgets options.budgets;
  reset_budget_counters ();
  (* Per-run invalidation of the hash-cons intern table (worker domains
     get fresh domain-local tables and drop them at join).  A batch server
     passes [~fresh_tables:false] to keep the tables warm across
     requests. *)
  if fresh_tables then Ac_prover.Term.hc_clear ();
  Profile.reset ();
  (* One persistent pool per run: worker domains are spawned here once and
     reused by every per-function phase (spawning per phase costs more than
     a whole phase on small units).  Cap at the hardware like any thread
     pool — extra domains on a saturated machine only add stop-the-world
     GC synchronisation.  A caller-supplied pool ([?pool]) is used as-is
     and left running, so a batch server amortises the spawn across
     requests. *)
  let jobs = min (max 1 options.jobs) (Domain.recommended_domain_count ()) in
  let pool =
    match ext_pool with
    | Some _ -> ext_pool
    | None -> if jobs > 1 then Some (Pool.create ~jobs) else None
  in
  Fun.protect
    ~finally:(fun () -> if Option.is_none ext_pool then Option.iter Pool.shutdown pool)
  @@ fun () ->
  let keep_going = options.keep_going in
  (* Per-function phases run on the pool under supervision; order and
     first-failure semantics match the sequential [List.map], and a
     worker-domain crash never loses a function result — the supervisor
     respawns workers and retries (or quarantines) the lost items.  A
     caller-supplied supervisor ([?supervisor]) lets a batch server
     accumulate retry/quarantine counters across requests. *)
  let sup = match supervisor with Some s -> s | None -> Supervisor.create () in
  let sup_base = Supervisor.stats sup in
  let pmap f xs = Supervisor.map sup ?pool f xs in
  let simpl = Profile.record "parse" (fun () -> Ac_simpl.C2simpl.parse source) in
  let lenv = simpl.Ir.lenv in
  (* Which functions get which treatment. *)
  let lifted =
    List.filter_map
      (fun (f : Ir.func) ->
        if (options_for options f.Ir.name).heap_abs then Some f.Ir.name else None)
      simpl.Ir.funcs
  in
  let base_ctx = { (Rules.empty_ctx lenv) with Rules.lifted } in
  (* ---- proof store: content keys and candidate entries ---- *)
  let store =
    (* Custom word-abstraction rules are closures: they cannot be rendered
       into a stable content key, so the store stands down rather than
       risk replaying entries built under a different rule base. *)
    if options.strategy.Wa.customs <> [] then None else store
  in
  let store_base =
    match store with Some st -> (Store.hits st, Store.misses st) | None -> (0, 0)
  in
  let store_keys =
    match store with
    | None -> []
    | Some st ->
      Profile.record "store_keys" (fun () ->
          Store.cone_keys ~tag:(Store.tag st) ~opt_string:(opt_string options) simpl)
  in
  let store_diags = ref [] in
  let store_diag ~fname msg =
    store_diags :=
      Diag.make ~func:fname ~severity:Diag.Warning ~recoverable:true Diag.Store msg
      :: !store_diags
  in
  let candidates : (string * Store.fentry) list =
    match store with
    | None -> []
    | Some st ->
      List.filter_map
        (fun (f : Ir.func) ->
          let name = f.Ir.name in
          match List.assoc_opt name store_keys with
          | None -> None
          | Some key -> (
            match Profile.record ~func:name "store_load" (fun () -> Store.load st ~key) with
            | Store.Hit e when String.equal e.Store.e_name name -> Some (name, e)
            | Store.Hit _ ->
              Store.demote_hit st;
              store_diag ~fname:name "store entry names a different function; ignored";
              None
            | Store.Miss -> None
            | Store.Corrupt msg ->
              store_diag ~fname:name msg;
              None))
        simpl.Ir.funcs
  in
  (* ---- the translation proper, parameterized by the set of store
     entries still trusted.  A hit that later fails replay or claim
     validation is demoted and the translation re-entered without it;
     [entries] shrinks strictly each retry, so this terminates (at worst
     as a full cold run). ---- *)
  let rec translate (entries : (string * Store.fentry) list) : result =
  let is_hit n = List.mem_assoc n entries in
  let miss_funcs =
    List.filter (fun (f : Ir.func) -> not (is_hit f.Ir.name)) simpl.Ir.funcs
  in
  (* L1 for every function translated this run; a failure here degrades
     the function to its Simpl image (the bottom of the ladder). *)
  let l1_results, simpl_only =
    pmap
      (fun (f : Ir.func) ->
        let diags = ref [] in
        match
          Profile.record ~func:f.Ir.name "l1" (fun () ->
              attempt ~keep_going ~phase:Diag.L1 ~fname:f.Ir.name ~recoverable:false diags
                (fun () -> L1.convert_func base_ctx f))
        with
        | Some (l1f, thm) -> Either.Left (f, l1f, thm, diags)
        | None ->
          Either.Right
            { dg_name = f.Ir.name; dg_simpl = f; dg_l1 = None; dg_diags = List.rev !diags })
      miss_funcs
    |> List.partition_map Fun.id
  in
  (* Source order, hits contributing their stored L1 image. *)
  let l1_prog : M.program =
    {
      M.lenv;
      globals = simpl.Ir.globals;
      funcs =
        List.filter_map
          (fun (f : Ir.func) ->
            match List.assoc_opt f.Ir.name entries with
            | Some e -> Some e.Store.e_l1
            | None ->
              List.find_map
                (fun (_, (m : M.func), _, _) ->
                  if String.equal m.M.name f.Ir.name then Some m else None)
                l1_results)
          simpl.Ir.funcs;
      heap_types = [];
    }
  in
  (* L2.  The nothrow analysis is a fixpoint across functions: once a
     callee's exception wrapper is eliminated, callers can eliminate theirs
     too, so iterate until the nothrow set stabilises.  A function whose
     conversion fails with the clean-up rewrites on is retried without
     them ([Polish] degradation); failing even then drops it to L1.

     Diagnostics go into a per-conversion buffer, not the function's
     stream: only the buffer of the *final* conversion (under the
     stabilised nothrow set) is banked into the stream, so a failing
     function reports its failure once, not once per fixpoint round. *)
  let l2_convert ctx diags (l1f : M.func) : (M.func * Thm.t) option =
    let fname = l1f.M.name in
    let plain () = L2.convert_func ~polish:false ctx l1f in
    if not options.polish then
      attempt ~keep_going ~phase:Diag.L2 ~fname ~recoverable:false diags plain
    else begin
      match
        let was = Domain.DLS.get processing_key in
        Domain.DLS.set processing_key (Some fname);
        Fun.protect ~finally:(fun () -> Domain.DLS.set processing_key was) (fun () ->
            L2.convert_func ~polish:true ctx l1f)
      with
      | ok -> Some ok
      | exception (Diag.Error _ as e) -> raise e
      | exception e ->
        (* Degrade the polish, keep the level. *)
        diags :=
          Diag.make ~func:fname ~severity:Diag.Warning ~recoverable:true Diag.Polish
            (Diag.message_of_exn e)
          :: !diags;
        attempt ~keep_going ~phase:Diag.L2 ~fname ~recoverable:false diags plain
    end
  in
  (* A conversion observes [ctx.nothrows] only through the call targets in
     the function's body ([Rules.nothrow_in]; rewriting never invents
     calls), so it is a function of the nothrow status of the function's
     own callees.  Memoise on that projection: a fixpoint round re-converts
     a function only when one of its callees changed status. *)
  let rec callees_of (m : M.t) acc =
    match m with
    | M.Call (g, _) | M.Exec_concrete (g, _) -> g :: acc
    | M.Bind (a, _, b) | M.Try (a, _, b) -> callees_of a (callees_of b acc)
    | M.Cond (_, a, b) -> callees_of a (callees_of b acc)
    | M.While (_, _, body, _) -> callees_of body acc
    | M.Return _ | M.Gets _ | M.Modify _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _ ->
      acc
  in
  (* fname -> (nothrow callees at conversion time, (result, emitted diags
     in emission order)).  Local to this run; written only from the
     calling domain. *)
  let l2_memo :
      (string, string list * ((M.func * Thm.t) option * Diag.t list)) Hashtbl.t =
    Hashtbl.create 64
  in
  let l2_round nothrows =
    let ctx = { base_ctx with Rules.nothrows } in
    let rows =
      List.map
        (fun ((_, l1f, _, _) as row) ->
          let key =
            List.sort_uniq String.compare
              (List.filter
                 (fun g -> List.mem g nothrows)
                 (callees_of (l1f : M.func).M.body []))
          in
          let hit =
            if not options.l2_memo then None
            else
              match Hashtbl.find_opt l2_memo l1f.M.name with
              | Some (k, entry) when List.equal String.equal k key -> Some entry
              | _ -> None
          in
          (row, key, hit))
        l1_results
    in
    let converted =
      pmap
        (fun ((_, l1f, _, _), _, hit) ->
          match hit with
          | Some entry -> entry
          | None ->
            let buf = ref [] in
            let r = Profile.record ~func:l1f.M.name "l2" (fun () -> l2_convert ctx buf l1f) in
            (r, List.rev !buf))
        rows
    in
    List.iter2
      (fun ((_, (l1f : M.func), _, _), key, _) entry ->
        Hashtbl.replace l2_memo l1f.M.name (key, entry))
      rows converted;
    List.map2
      (fun ((sf, l1f, l1_thm, diags), _, _) (r, _) -> (sf, l1f, l1_thm, diags, r))
      rows converted
  in
  (* Store hits contribute their claimed nothrow status as a constant seed
     of the fixpoint (their L2 bodies are not re-derived); [replay_entry]
     re-checks each claim against the assembled unit afterwards, so a
     wrong seed costs a retry, never soundness. *)
  let seed_nothrows =
    List.filter_map (fun (n, e) -> if e.Store.e_nothrow then Some n else None) entries
  in
  let rec l2_fix nothrows round =
    let results = l2_round nothrows in
    let nothrows' =
      seed_nothrows
      @ List.filter_map
          (fun (_, _, _, _, l2) ->
            match l2 with
            | Some ((l2f : M.func), _) ->
              if Rules.nothrow_in nothrows l2f.M.body then Some l2f.M.name else None
            | None -> None)
          results
    in
    if round > List.length l1_results || List.length nothrows' = List.length nothrows then
      nothrows'
    else l2_fix nothrows' (round + 1)
  in
  let nothrows = l2_fix seed_nothrows 0 in
  (* The final round under the stabilised set: with the memo on this is
     pure lookup (the stable fixpoint round already converted under the
     same callee environments); with it off (bench baseline) it re-converts
     everything, reproducing the cost of the old recording round. *)
  let l2_rows =
    List.map
      (fun (sf, (l1f : M.func), l1_thm, diags, r) ->
        (match Hashtbl.find_opt l2_memo l1f.M.name with
        | Some (_, (_, banked)) when banked <> [] -> diags := List.rev banked @ !diags
        | _ -> ());
        (sf, l1f, l1_thm, diags, r))
      (l2_round nothrows)
  in
  let l2_results, l1_only =
    List.partition_map
      (fun (sf, l1f, l1_thm, diags, l2) ->
        match l2 with
        | Some (l2f, l2_thm) -> Either.Left (sf, l1f, l1_thm, l2f, l2_thm, diags)
        | None ->
          Either.Right
            { dg_name = (l1f : M.func).M.name; dg_simpl = sf; dg_l1 = Some (l1f, l1_thm);
              dg_diags = List.rev !diags })
      l2_rows
  in
  (* ---- interprocedural summary inference (the tentpole) ----
     The summary table is computed once per translation attempt,
     sequentially, from the *pre-discharge* L2 images of the whole unit
     (stored [e_l2g] for hits, this run's conversions for misses), so it
     is deterministic across [--jobs] and identical between cold and
     warm runs.  The table is an untrusted hint: every certificate that
     draws on a slice of it re-proves that slice inside the kernel
     against [Rules.fbodies] (same trust class as [nothrows] — see the
     summary-trust section of DESIGN.md for why replayed entries may
     contribute to [fbodies]). *)
  let fbodies : M.func list =
    List.filter_map
      (fun (f : Ir.func) ->
        match List.assoc_opt f.Ir.name entries with
        | Some e -> Some e.Store.e_l2g
        | None ->
          List.find_map
            (fun (_, _, _, (l2f : M.func), _, _) ->
              if String.equal l2f.M.name f.Ir.name then Some l2f else None)
            l2_results)
      simpl.Ir.funcs
  in
  let sums, sum_stats =
    if not options.interproc then ([], [])
    else Profile.record "summary" (fun () -> Ac_analysis.Summary.compute lenv fbodies)
  in
  let callgraph = Ac_analysis.Callgraph.of_funcs fbodies in
  (* The slice a function's certificates may draw from: the table
     restricted to its transitive callees (self included on cycles).
     Its digest is the function's store-key claim component.  Built
     eagerly so lookups under [pmap] are read-only. *)
  let sums_slices =
    List.map
      (fun (fb : M.func) ->
        ( fb.M.name,
          Ac_analysis.Domains.restrict sums
            (Ac_analysis.Callgraph.reachable callgraph fb.M.name) ))
      fbodies
  in
  let sums_for name =
    match List.assoc_opt name sums_slices with Some s -> s | None -> []
  in
  (* Slice digests share the table entries, so stringify each entry once
     (the slices are [restrict]ions of one table: same pairs) instead of
     per cone; equal to [Domains.sums_digest] of the slice by
     construction.  Eager, like the slices: read-only under [pmap]. *)
  let entry_strings =
    List.map (fun entry -> (fst entry, Ac_analysis.Domains.entry_to_string entry)) sums
  in
  let sums_digest_for name =
    Ac_analysis.Domains.digest_of_entry_strings
      (List.filter_map
         (fun (g, _) -> List.assoc_opt g entry_strings)
         (sums_for name))
  in
  (* Per-function analysis profile, with and without the table. *)
  let iprof =
    if not (options.interproc && options.summary_profile) then []
    else
      Profile.record "iprof" (fun () ->
          pmap
            (fun (fb : M.func) ->
              let intra = Ac_analysis.count_provable lenv ~sums:[] fb.M.body in
              let inter =
                Ac_analysis.count_provable lenv ~sums:(sums_for fb.M.name) fb.M.body
              in
              let cx, sz =
                match List.assoc_opt fb.M.name sum_stats with
                | Some st ->
                  (st.Ac_analysis.Summary.fs_contexts, st.Ac_analysis.Summary.fs_size)
                | None -> (0, 0)
              in
              (fb.M.name, { ip_contexts = cx; ip_size = sz; ip_intra = intra; ip_inter = inter }))
            fbodies)
  in
  let base_ctx = { base_ctx with Rules.fbodies } in
  (* Guard discharge, round 1 (after L2): the abstract-interpretation pass
     proves guards true and removes them through the kernel
     ([Rules.Rule_guard_true]); its [Equiv] theorem composes with the L2
     theorem by transitivity, so the chain below is unchanged.  The pass
     is untrusted and optional, so any failure merely keeps the guards.
     This round is the interprocedural one: each function gets its
     summary slice.  Round 2 (post HL/WA) stays intraprocedural — the
     summaries describe L2-level calling conventions and types, and the
     abstracted bodies no longer match them. *)
  let discharge_ctx = { base_ctx with Rules.nothrows } in
  let discharge ~phase ?(sums = []) ctx diags (f : M.func) : (M.func * Thm.t) option =
    Profile.record ~func:f.M.name "guard_discharge" (fun () ->
        (* Proof-effort provenance (display/telemetry only, gated): of
           the guards this pass removed, how many did the analysis prove
           true — under the summary table when one was supplied
           (interprocedural) — and how many vanished with dead code
           scrubbed by the certificate walk.  The counted entry fuses
           the count into the discharge (one extra replay walk, paid
           only when effort accounting is armed) and produces the same
           certificate, so results are byte-identical either way. *)
        let counted = Ac_obs.Effort.enabled () in
        match
          attempt ~keep_going ~phase ~fname:f.M.name ~recoverable:true diags (fun () ->
              if counted then Ac_analysis.discharge_func_counted ctx ~sums f
              else (Ac_analysis.discharge_func ctx ~sums f, 0))
        with
        | Some ((Some (f', _) as r), provable) ->
          if counted then begin
            let removed =
              Ac_analysis.guard_count f.M.body - Ac_analysis.guard_count f'.M.body
            in
            Ac_obs.Effort.record_discharge
              (if sums <> [] then Ac_obs.Effort.Interproc else Ac_obs.Effort.Intra)
              ~proven:(min removed provable)
              ~scrubbed:(max 0 (removed - provable))
          end;
          r
        | Some (r, _) -> r
        | None -> None)
  in
  let l2_results =
    pmap
      (fun ((sf, l1f, l1_thm, l2f, l2_thm, diags) as row) ->
        if not (options_for options (l2f : M.func).M.name).discharge_guards then row
        else begin
          match
            discharge ~phase:Diag.Guard_discharge ~sums:(sums_for l2f.M.name)
              discharge_ctx diags l2f
          with
          | None -> row
          | Some (l2f', dthm) -> (
            match
              attempt ~keep_going ~phase:Diag.Guard_discharge ~fname:l2f.M.name
                ~recoverable:true diags (fun () ->
                  Thm.by discharge_ctx Rules.Eq_trans [ dthm; l2_thm ])
            with
            | Some l2_thm' -> (sf, l1f, l1_thm, l2f', l2_thm', diags)
            | None -> row)
        end)
      l2_results
  in
  (* Word-abstraction signatures, fixed up front so recursion and mutual
     calls are consistent; functions whose abstraction fails are demoted to
     identity signatures and the rest re-run (fixpoint). *)
  (* Hits contribute their stored (post-demotion) signatures, constant
     across the demotion fixpoint below; [replay_entry] re-validates them
     against the entry's own L2 image afterwards. *)
  let hit_fsigs = List.map (fun (n, e) -> (n, e.Store.e_fsig)) entries in
  let fsigs_for enabled_names =
    hit_fsigs
    @ List.map
        (fun (_, _, _, (l2f : M.func), _, _) ->
          let enabled = List.mem l2f.M.name enabled_names in
          (l2f.M.name, Wa.func_sig ~enabled l2f))
        l2_results
  in
  let initially_enabled =
    List.filter_map
      (fun (_, _, _, (l2f : M.func), _, _) ->
        if (options_for options l2f.M.name).word_abs then Some l2f.M.name else None)
      l2_results
  in
  let ctx = { base_ctx with Rules.fsigs = fsigs_for initially_enabled; nothrows } in
  (* HL per function, with graceful fallback to the byte-level model. *)
  let hl_results =
    pmap
      (fun (sf, l1f, l1_thm, l2f, l2_thm, diags) ->
        let name = (l2f : M.func).M.name in
        let opts = options_for options name in
        let skipped = ref [] in
        let hl =
          if not opts.heap_abs then None
          else begin
            match
              Profile.record ~func:name "heap_abs" (fun () ->
                  attempt ~keep_going ~phase:Diag.Heap_abs ~fname:name ~recoverable:true
                    diags (fun () -> Hl.convert_func ~polish:options.polish ctx l2f))
            with
            | Some r -> Some r
            | None ->
              (* [attempt] recorded the diagnostic; mirror the reason into
                 the legacy skip list. *)
              (match !diags with
              | d :: _ when d.Diag.d_phase = Diag.Heap_abs ->
                skipped := ("heap_abstraction", d.Diag.d_msg) :: !skipped
              | _ -> skipped := ("heap_abstraction", "failed") :: !skipped);
              None
          end
        in
        (sf, l1f, l1_thm, l2f, l2_thm, hl, skipped, diags))
      l2_results
  in
  (* WA with the demotion fixpoint. *)
  let try_wa wa_ctx diags after_hl =
    let name = (after_hl : M.func).M.name in
    let probe () =
      match Wa.convert_func ~strategy:options.strategy ~polish:options.polish wa_ctx after_hl with
      | r -> Result.Ok r
      | exception Wa.Not_abstractable reason -> Result.Error reason
      | exception Thm.Kernel_error reason -> Result.Error reason
    in
    match
      Profile.record ~func:name "word_abs" (fun () ->
          attempt ~keep_going ~phase:Diag.Word_abs ~fname:name ~recoverable:true diags
            probe)
    with
    | Some r -> r
    | None -> Result.Error "word abstraction failed"
  in
  let rec wa_fix enabled =
    let wa_ctx = { ctx with Rules.fsigs = fsigs_for enabled } in
    let attempts =
      pmap
        (fun (_, _, _, (l2f : M.func), _, hl, _, diags) ->
          let name = l2f.M.name in
          if not (List.mem name enabled) then (name, None)
          else begin
            let after_hl = match hl with Some (hf, _) -> hf | None -> l2f in
            match try_wa wa_ctx diags after_hl with
            | Result.Ok r -> (name, Some (Result.Ok r))
            | Result.Error e -> (name, Some (Result.Error e))
          end)
        hl_results
    in
    let failures =
      List.filter_map
        (fun (n, r) -> match r with Some (Result.Error _) -> Some n | _ -> None)
        attempts
    in
    if failures = [] then (wa_ctx, attempts)
    else wa_fix (List.filter (fun n -> not (List.mem n failures)) enabled)
  in
  let wa_ctx, wa_attempts = wa_fix initially_enabled in
  let ctx = wa_ctx in
  let miss_frs =
    pmap
      (fun (sf, l1f, l1_thm, l2f, l2_thm, hl, skipped, diags) ->
        let name = (l2f : M.func).M.name in
        let opts = options_for options name in
        let wa =
          match List.assoc name wa_attempts with
          | Some (Result.Ok r) -> Some r
          | Some (Result.Error e) ->
            skipped := ("word_abstraction", e) :: !skipped;
            None
          | None ->
            if opts.word_abs && not (List.mem name (List.map fst ctx.Rules.fsigs)) then
              skipped := ("word_abstraction", "demoted") :: !skipped;
            None
        in
        (* Report demotion even when this function itself never failed. *)
        (if opts.word_abs && wa = None && not (List.mem_assoc "word_abstraction" !skipped)
         then skipped := ("word_abstraction", "demoted after a callee failed") :: !skipped);
        let after_hl = match hl with Some (hf, _) -> hf | None -> l2f in
        let final0 = match wa with Some (wf, _) -> wf | None -> after_hl in
        (* Guard discharge, round 2: heap and word abstraction introduce new
           guards (typed validity, Unsigned_overflow) and rewrite old ones,
           so run the pass again on the final body.  Its [Equiv] theorem is
           appended to the WA steps, where [Fn_chain] folds it. *)
        let post_discharge =
          if
            opts.discharge_guards
            && (Option.is_some hl || Option.is_some wa)
          then discharge ~phase:Diag.Guard_discharge ctx diags final0
          else None
        in
        let final, post_thms =
          match post_discharge with
          | Some (f', dthm) -> (f', [ dthm ])
          | None -> (final0, [])
        in
        let hl_thms = match hl with Some (_, ts) -> ts | None -> [] in
        let wa_thms = (match wa with Some (_, ts) -> ts | None -> []) @ post_thms in
        (* The end-to-end refinement theorem: Corres_l1, the L2
           equivalence, heap abstraction, word abstraction — the paper's
           "chain of proofs linking the original C-Simpl input to the
           final AutoCorres output". *)
        let wa_wvars = Wa.collect_wvars ctx.Rules.fsigs after_hl in
        let chain =
          let wa_chain_ctx = { ctx with Rules.wvars = wa_wvars } in
          match
            Profile.record ~func:name "chain" (fun () ->
                attempt ~keep_going ~phase:Diag.Chain ~fname:name ~recoverable:true diags
                  (fun () ->
                    Thm.by_opt wa_chain_ctx (Rules.Fn_chain name)
                      ((l1_thm :: l2_thm :: hl_thms) @ wa_thms)))
          with
          | Some c -> c
          | None -> None
        in
        (match chain with
        | Some c when Ac_obs.Effort.enabled () ->
          Ac_obs.Effort.observe_chain ~depth:(Thm.depth c) ~size:(Thm.size c)
        | _ -> ());
        (if chain = None then
           diags :=
             Diag.make ~func:name ~severity:Diag.Warning ~recoverable:true Diag.Chain
               "end-to-end refinement chain could not be assembled"
             :: !diags);
        {
          fr_name = name;
          fr_simpl = sf;
          fr_l1 = l1f;
          fr_l1_thm = l1_thm;
          fr_l2 = l2f;
          fr_l2_thm = l2_thm;
          fr_hl = Option.map fst hl;
          fr_hl_thm = (match hl with Some (_, t :: _) -> Some t | _ -> None);
          fr_hl_thms = hl_thms;
          fr_wa = Option.map fst wa;
          fr_wa_thm = (match wa with Some (_, t :: _) -> Some t | _ -> None);
          fr_wa_thms = wa_thms;
          fr_wa_wvars = wa_wvars;
          fr_chain = chain;
          fr_final = final;
          fr_skipped = List.rev !skipped;
          fr_diags = List.rev !diags;
        })
      hl_results
  in
  (* Replay the store hits under the final context.  The whole derivation
     is re-minted through [Thm.by]; failures demote the entry and re-enter
     the translation without it. *)
  let hit_results =
    pmap
      (fun (f : Ir.func) ->
        let e = List.assoc f.Ir.name entries in
        let r =
          Profile.record ~func:f.Ir.name "store_replay" (fun () ->
              match replay_entry ctx ~sums_digest:(sums_digest_for f.Ir.name) f e with
              | r -> r
              | exception ex -> Result.error (Diag.message_of_exn ex))
        in
        (f.Ir.name, r))
      (List.filter (fun (f : Ir.func) -> is_hit f.Ir.name) simpl.Ir.funcs)
  in
  let failed =
    List.filter_map
      (fun (n, r) -> match r with Result.Error m -> Some (n, m) | Result.Ok _ -> None)
      hit_results
  in
  if failed <> [] then begin
    List.iter
      (fun (n, m) ->
        Option.iter Store.demote_hit store;
        store_diag ~fname:n ("stale or invalid store entry (re-translating): " ^ m))
      failed;
    translate (List.filter (fun (n, _) -> not (List.mem_assoc n failed)) entries)
  end
  else begin
    let hit_frs =
      List.filter_map
        (fun (n, r) -> match r with Result.Ok fr -> Some (n, fr) | Result.Error _ -> None)
        hit_results
    in
    (* Source order, hits and fresh translations interleaved exactly as a
       cold run would produce them. *)
    let funcs =
      List.filter_map
        (fun (f : Ir.func) ->
          match List.assoc_opt f.Ir.name hit_frs with
          | Some fr -> Some fr
          | None -> List.find_opt (fun fr -> String.equal fr.fr_name f.Ir.name) miss_frs)
        simpl.Ir.funcs
    in
    let degraded = simpl_only @ l1_only in
    let heap_types =
      funcs
      ||> List.concat_map (fun fr ->
              match fr.fr_hl with Some hf -> Hl.heap_types_of_func hf | None -> [])
      ||> List.fold_left
            (fun acc c -> if List.exists (Ty.cty_equal c) acc then acc else c :: acc)
            []
      ||> List.rev
    in
    let final_prog : M.program =
      {
        M.lenv;
        globals = simpl.Ir.globals;
        funcs = List.map (fun fr -> fr.fr_final) funcs;
        heap_types;
      }
    in
    (* Bank every clean fresh translation (no diagnostics, end-to-end
       chain assembled): only such entries can reproduce a byte-identical
       result on a later hit, and degraded functions must keep
       re-translating so their diagnostics reappear. *)
    (match store with
    | None -> ()
    | Some st ->
      Profile.record "store_save" (fun () ->
          List.iter
            (fun fr ->
              if (not (is_hit fr.fr_name)) && fr.fr_diags = [] then begin
                match (fr.fr_chain, List.assoc_opt fr.fr_name store_keys) with
                | Some chain, Some key ->
                  let e =
                    {
                      Store.e_name = fr.fr_name;
                      e_l1 = fr.fr_l1;
                      e_l2g =
                        (match
                           List.find_opt
                             (fun (fb : M.func) -> String.equal fb.M.name fr.fr_name)
                             fbodies
                         with
                        | Some fb -> fb
                        | None -> fr.fr_l2);
                      e_l2 = fr.fr_l2;
                      e_hl = fr.fr_hl;
                      e_wa = fr.fr_wa;
                      e_final = fr.fr_final;
                      e_wvars = fr.fr_wa_wvars;
                      e_skipped = fr.fr_skipped;
                      e_nothrow = List.mem fr.fr_name ctx.Rules.nothrows;
                      e_fsig =
                        (match List.assoc_opt fr.fr_name ctx.Rules.fsigs with
                        | Some s -> s
                        | None -> Wa.func_sig ~enabled:false fr.fr_l2);
                      e_sums_digest = sums_digest_for fr.fr_name;
                      e_trace = Trace.record chain;
                      e_n_hl = List.length fr.fr_hl_thms;
                    }
                  in
                  (match Store.save st ~key e with
                  | Result.Ok () -> ()
                  | Result.Error m -> store_diag ~fname:fr.fr_name m)
                | _ -> ()
              end)
            miss_frs))
    ;
    let diags =
      List.rev !store_diags
      @ List.concat_map (fun fr -> fr.fr_diags) funcs
      @ List.concat_map (fun d -> d.dg_diags) degraded
    in
    { source; simpl; l1_prog; final_prog; funcs; degraded; diags;
      budget_hits = budget_exhaustions (); ctx; heap_types;
      store_hits = (match store with Some st -> Store.hits st - fst store_base | None -> 0);
      store_misses =
        (match store with Some st -> Store.misses st - snd store_base | None -> 0);
      retries = (Supervisor.stats sup).Supervisor.retries - sup_base.Supervisor.retries;
      quarantined =
        (Supervisor.stats sup).Supervisor.quarantined - sup_base.Supervisor.quarantined;
      restarts = (Supervisor.stats sup).Supervisor.restarts - sup_base.Supervisor.restarts;
      sums; iprof }
  end
  in
  translate candidates

(* Re-validate every derivation the pipeline produced (the independent
   checker pass), including the [Corres_l1] theorems of functions that
   degraded before L2.

   Theorems are grouped by function and each group is checked under that
   function's word-abstraction context (the context the end-to-end chain
   was built under).  This is semantically identical to checking the
   L1/L2/HL components under [res.ctx]: the two contexts differ only in
   [Rules.wvars], which [Rules.infer] consults solely in the W_* rules,
   and those appear only in derivations built under that same [wvars].
   That wvars-locality invariant is stated (and must be maintained) next
   to [Rules.infer] in rules.ml, and the test suite pins it down by also
   checking every component theorem under [res.ctx] ("components check
   under the run context" in test_perf_layer.ml).  Grouping this way lets
   the cached mode share one memo table between a function's component
   theorems and its chain — the chain holds the components as physical
   premises, so its re-walk is pure cache hits.

   [cached] routes the walk through [Check_cache] (memoized on physical
   node identity, one cache per context, dropped when this call returns).
   The uncached walk via [Thm.check] stays available as ground truth; the
   test suite runs both over the corpus and asserts identical verdicts. *)
let check_all ?(cached = true) (res : result) : (unit, string) Result.t =
  Profile.record "check" @@ fun () ->
  let check_group (ctx, thms) =
    let step =
      if cached then begin
        let cache = Check_cache.create ctx in
        Check_cache.check cache
      end
      else Thm.check ctx
    in
    let rec go = function
      | [] -> Result.ok ()
      | t :: rest -> (
        match step t with Result.Ok () -> go rest | Result.Error _ as e -> e)
    in
    go thms
  in
  let groups =
    List.map
      (fun fr ->
        (* The word-abstraction derivations were built under the
           function's variable registration, recorded in [fr_wa_wvars] at
           translation time; re-check under exactly that. *)
        let wa_ctx = { res.ctx with Rules.wvars = fr.fr_wa_wvars } in
        ( wa_ctx,
          [ fr.fr_l1_thm; fr.fr_l2_thm ] @ fr.fr_hl_thms @ fr.fr_wa_thms
          @ match fr.fr_chain with Some t -> [ t ] | None -> [] ))
      res.funcs
    @ [ ( res.ctx,
          List.filter_map (fun d -> Option.map snd d.dg_l1) res.degraded ) ]
  in
  let rec go = function
    | [] -> Result.ok ()
    | g :: rest -> (
      match check_group g with Result.Ok () -> go rest | Result.Error _ as e -> e)
  in
  go groups
