module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

(* The AutoCorres driver: runs the full pipeline of Fig 1 over a C program
   and returns every intermediate representation together with the
   refinement theorems connecting them.

   Per-function options select word abstraction and heap abstraction
   individually (paper Sec 3.2: "we allow the user to select whether to use
   word abstraction or not on a per-function basis"; Sec 4.6: "allow the
   user to indicate which functions should be abstracted and which should
   remain in the low-level memory model"). *)

type func_options = {
  word_abs : bool;
  heap_abs : bool;
  discharge_guards : bool;
      (* statically discharge provably-true UB guards (abstract
         interpretation, kernel-checked certificates) *)
}

let default_func_options = { word_abs = true; heap_abs = true; discharge_guards = true }

type options = {
  defaults : func_options;
  overrides : (string * func_options) list;
  strategy : Wa.strategy;
  (* Run the certified clean-up rewrites (guard discharge, inlining,
     return-flow straightening).  Off only for the ablation study. *)
  polish : bool;
}

let default_options =
  { defaults = default_func_options; overrides = []; strategy = Wa.default_strategy;
    polish = true }

let options_for options fname =
  match List.assoc_opt fname options.overrides with
  | Some o -> o
  | None -> options.defaults

(* Everything the pipeline produced for one function. *)
type func_result = {
  fr_name : string;
  fr_simpl : Ir.func;
  fr_l1 : M.func;
  fr_l1_thm : Thm.t;
  fr_l2 : M.func;
  fr_l2_thm : Thm.t;
  fr_hl : M.func option; (* None when heap abstraction was off or inapplicable *)
  fr_hl_thm : Thm.t option; (* the abs_h_stmt step *)
  fr_hl_thms : Thm.t list; (* all heap-abstraction steps *)
  fr_wa : M.func option;
  fr_wa_thm : Thm.t option; (* the abs_w_stmt step *)
  fr_wa_thms : Thm.t list;
  fr_chain : Thm.t option; (* the end-to-end Fn_refines theorem *)
  fr_final : M.func;
  fr_skipped : (string * string) list; (* phase, reason *)
}

type result = {
  source : string;
  simpl : Ir.program;
  l1_prog : M.program;
  final_prog : M.program; (* the program a verification engineer works on *)
  funcs : func_result list;
  ctx : Rules.ctx;
  heap_types : Ty.cty list;
}

let find_result res name = List.find_opt (fun r -> String.equal r.fr_name name) res.funcs

let ( ||> ) x f = f x

let run ?(options = default_options) (source : string) : result =
  let simpl = Ac_simpl.C2simpl.parse source in
  let lenv = simpl.Ir.lenv in
  (* Which functions get which treatment. *)
  let lifted =
    List.filter_map
      (fun (f : Ir.func) ->
        if (options_for options f.Ir.name).heap_abs then Some f.Ir.name else None)
      simpl.Ir.funcs
  in
  let base_ctx = { (Rules.empty_ctx lenv) with Rules.lifted } in
  (* L1 for every function. *)
  let l1_results =
    List.map
      (fun (f : Ir.func) ->
        let l1f, thm = L1.convert_func base_ctx f in
        (f, l1f, thm))
      simpl.Ir.funcs
  in
  let l1_prog : M.program =
    {
      M.lenv;
      globals = simpl.Ir.globals;
      funcs = List.map (fun (_, f, _) -> f) l1_results;
      heap_types = [];
    }
  in
  (* L2.  The nothrow analysis is a fixpoint across functions: once a
     callee's exception wrapper is eliminated, callers can eliminate theirs
     too, so iterate until the nothrow set stabilises. *)
  let l2_round nothrows =
    let ctx = { base_ctx with Rules.nothrows } in
    List.map
      (fun (sf, l1f, l1_thm) ->
        let l2f, l2_thm = L2.convert_func ~polish:options.polish ctx l1f in
        (sf, l1f, l1_thm, l2f, l2_thm))
      l1_results
  in
  let rec l2_fix nothrows round =
    let results = l2_round nothrows in
    let nothrows' =
      List.filter_map
        (fun (_, _, _, (l2f : M.func), _) ->
          if Rules.nothrow_in nothrows l2f.M.body then Some l2f.M.name else None)
        results
    in
    if round > List.length l1_results || List.length nothrows' = List.length nothrows then
      (results, nothrows')
    else l2_fix nothrows' (round + 1)
  in
  let l2_results, nothrows = l2_fix [] 0 in
  (* Guard discharge, round 1 (after L2): the abstract-interpretation pass
     proves guards true and removes them through the kernel
     ([Rules.Rule_guard_true]); its [Equiv] theorem composes with the L2
     theorem by transitivity, so the chain below is unchanged. *)
  let discharge_ctx = { base_ctx with Rules.nothrows } in
  let l2_results =
    List.map
      (fun ((sf, l1f, l1_thm, l2f, l2_thm) as row) ->
        if not (options_for options (l2f : M.func).M.name).discharge_guards then row
        else begin
          match Ac_analysis.discharge_func discharge_ctx l2f with
          | None -> row
          | Some (l2f', dthm) ->
            let l2_thm' = Thm.by discharge_ctx Rules.Eq_trans [ dthm; l2_thm ] in
            (sf, l1f, l1_thm, l2f', l2_thm')
        end)
      l2_results
  in
  (* Word-abstraction signatures, fixed up front so recursion and mutual
     calls are consistent; functions whose abstraction fails are demoted to
     identity signatures and the rest re-run (fixpoint). *)
  let fsigs_for enabled_names =
    List.map
      (fun (_, _, _, (l2f : M.func), _) ->
        let enabled = List.mem l2f.M.name enabled_names in
        (l2f.M.name, Wa.func_sig ~enabled l2f))
      l2_results
  in
  let initially_enabled =
    List.filter_map
      (fun (_, _, _, (l2f : M.func), _) ->
        if (options_for options l2f.M.name).word_abs then Some l2f.M.name else None)
      l2_results
  in
  let ctx = { base_ctx with Rules.fsigs = fsigs_for initially_enabled; nothrows } in
  (* HL per function, with graceful fallback to the byte-level model. *)
  let hl_results =
    List.map
      (fun (sf, l1f, l1_thm, l2f, l2_thm) ->
        let name = (l2f : M.func).M.name in
        let opts = options_for options name in
        let skipped = ref [] in
        let hl =
          if not opts.heap_abs then None
          else begin
            match Hl.convert_func ~polish:options.polish ctx l2f with
            | hf, thm -> Some (hf, thm)
            | exception Hl.Not_liftable reason ->
              skipped := ("heap_abstraction", reason) :: !skipped;
              None
            | exception Thm.Kernel_error reason ->
              skipped := ("heap_abstraction", reason) :: !skipped;
              None
          end
        in
        (sf, l1f, l1_thm, l2f, l2_thm, hl, skipped))
      l2_results
  in
  (* WA with the demotion fixpoint. *)
  let try_wa wa_ctx after_hl =
    match Wa.convert_func ~strategy:options.strategy ~polish:options.polish wa_ctx after_hl with
    | wf, thm -> Result.Ok (wf, thm)
    | exception Wa.Not_abstractable reason -> Result.Error reason
    | exception Thm.Kernel_error reason -> Result.Error reason
  in
  let rec wa_fix enabled =
    let wa_ctx = { ctx with Rules.fsigs = fsigs_for enabled } in
    let attempts =
      List.map
        (fun (_, _, _, (l2f : M.func), _, hl, _) ->
          let name = l2f.M.name in
          if not (List.mem name enabled) then (name, None)
          else begin
            let after_hl = match hl with Some (hf, _) -> hf | None -> l2f in
            match try_wa wa_ctx after_hl with
            | Result.Ok r -> (name, Some (Result.Ok r))
            | Result.Error e -> (name, Some (Result.Error e))
          end)
        hl_results
    in
    let failures =
      List.filter_map
        (fun (n, r) -> match r with Some (Result.Error _) -> Some n | _ -> None)
        attempts
    in
    if failures = [] then (wa_ctx, attempts)
    else wa_fix (List.filter (fun n -> not (List.mem n failures)) enabled)
  in
  let wa_ctx, wa_attempts = wa_fix initially_enabled in
  let ctx = wa_ctx in
  let funcs =
    List.map
      (fun (sf, l1f, l1_thm, l2f, l2_thm, hl, skipped) ->
        let name = (l2f : M.func).M.name in
        let opts = options_for options name in
        let wa =
          match List.assoc name wa_attempts with
          | Some (Result.Ok r) -> Some r
          | Some (Result.Error e) ->
            skipped := ("word_abstraction", e) :: !skipped;
            None
          | None ->
            if opts.word_abs && not (List.mem name (List.map fst ctx.Rules.fsigs)) then
              skipped := ("word_abstraction", "demoted") :: !skipped;
            None
        in
        (* Report demotion even when this function itself never failed. *)
        (if opts.word_abs && wa = None && not (List.mem_assoc "word_abstraction" !skipped)
         then skipped := ("word_abstraction", "demoted after a callee failed") :: !skipped);
        let after_hl = match hl with Some (hf, _) -> hf | None -> l2f in
        let final0 = match wa with Some (wf, _) -> wf | None -> after_hl in
        (* Guard discharge, round 2: heap and word abstraction introduce new
           guards (typed validity, Unsigned_overflow) and rewrite old ones,
           so run the pass again on the final body.  Its [Equiv] theorem is
           appended to the WA steps, where [Fn_chain] folds it. *)
        let post_discharge =
          if
            opts.discharge_guards
            && (Option.is_some hl || Option.is_some wa)
          then Ac_analysis.discharge_func ctx final0
          else None
        in
        let final, post_thms =
          match post_discharge with
          | Some (f', dthm) -> (f', [ dthm ])
          | None -> (final0, [])
        in
        let hl_thms = match hl with Some (_, ts) -> ts | None -> [] in
        let wa_thms = (match wa with Some (_, ts) -> ts | None -> []) @ post_thms in
        (* The end-to-end refinement theorem: Corres_l1, the L2
           equivalence, heap abstraction, word abstraction — the paper's
           "chain of proofs linking the original C-Simpl input to the
           final AutoCorres output". *)
        let chain =
          let wa_chain_ctx =
            { ctx with Rules.wvars = Wa.collect_wvars ctx.Rules.fsigs after_hl }
          in
          Thm.by_opt wa_chain_ctx (Rules.Fn_chain name)
            ((l1_thm :: l2_thm :: hl_thms) @ wa_thms)
        in
        {
          fr_name = name;
          fr_simpl = sf;
          fr_l1 = l1f;
          fr_l1_thm = l1_thm;
          fr_l2 = l2f;
          fr_l2_thm = l2_thm;
          fr_hl = Option.map fst hl;
          fr_hl_thm = (match hl with Some (_, t :: _) -> Some t | _ -> None);
          fr_hl_thms = hl_thms;
          fr_wa = Option.map fst wa;
          fr_wa_thm = (match wa with Some (_, t :: _) -> Some t | _ -> None);
          fr_wa_thms = wa_thms;
          fr_chain = chain;
          fr_final = final;
          fr_skipped = List.rev !skipped;
        })
      hl_results
  in
  let heap_types =
    funcs
    ||> List.concat_map (fun fr ->
            match fr.fr_hl with Some hf -> Hl.heap_types_of_func hf | None -> [])
    ||> List.fold_left
          (fun acc c -> if List.exists (Ty.cty_equal c) acc then acc else c :: acc)
          []
    ||> List.rev
  in
  let final_prog : M.program =
    {
      M.lenv;
      globals = simpl.Ir.globals;
      funcs = List.map (fun fr -> fr.fr_final) funcs;
      heap_types;
    }
  in
  { source; simpl; l1_prog; final_prog; funcs; ctx; heap_types }

(* Re-validate every derivation the pipeline produced (the independent
   checker pass). *)
let check_all (res : result) : (unit, string) Result.t =
  let rec check_thms = function
    | [] -> Result.ok ()
    | (ctx, t) :: rest -> (
      match Thm.check ctx t with
      | Result.Ok () -> check_thms rest
      | Result.Error e -> Result.error e)
  in
  let all_thms =
    List.concat_map
      (fun fr ->
        (* The word-abstraction derivation was built under the function's
           variable registration; recompute it (deterministically) for the
           re-check. *)
        let wa_ctx =
          let base = match fr.fr_hl with Some hf -> hf | None -> fr.fr_l2 in
          { res.ctx with Rules.wvars = Wa.collect_wvars res.ctx.Rules.fsigs base }
        in
        [ (res.ctx, fr.fr_l1_thm); (res.ctx, fr.fr_l2_thm) ]
        @ List.map (fun t -> (res.ctx, t)) fr.fr_hl_thms
        @ List.map (fun t -> (wa_ctx, t)) fr.fr_wa_thms
        @ match fr.fr_chain with Some t -> [ (wa_ctx, t) ] | None -> [])
      res.funcs
  in
  check_thms all_thms
