module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module B = Ac_bignum
module W = Ac_word
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module Heap = Ac_simpl.Heap
module State = Ac_simpl.State
module Sem = Ac_simpl.Sem
module M = Ac_monad.M
module Interp = Ac_monad.Interp
module Rules = Ac_kernel.Rules
module J = Ac_kernel.Judgment

(* Differential refinement testing.

   The kernel guarantees that each theorem follows from the rule base; this
   module provides the complementary empirical check that the *rule base
   itself* means what it claims: it executes the original Simpl program and
   the final abstraction side by side on randomised states and checks the
   refinement relation of the paper's abs_w_stmt/abs_h_stmt definitions —
   if the abstraction does not fail, the concrete program must not fail
   either and must produce the related result and state. *)

type verdict =
  | Agree (* both executed; results and states related *)
  | Abstract_failed (* the abstraction failed: no claim about the source *)
  | Skipped of string (* divergence/fuel: no verdict *)
  | Violation of string

let fuel = 50_000

(* ------------------------------------------------------------------ *)
(* Random state and argument generation. *)

type gen = {
  rand : Random.State.t;
  lenv : Layout.env;
  mutable heap : Heap.t;
  mutable ptr_pool : (Ty.cty * B.t) list;
}

let rand_word g width =
  let bits = W.bits width in
  let rec go acc remaining =
    if remaining <= 0 then acc
    else
      go
        (B.add (B.shift_left acc 16) (B.of_int (Random.State.int g.rand 0x10000)))
        (remaining - 16)
  in
  (* Bias toward boundary values, where overflow behaviour lives. *)
  match Random.State.int g.rand 6 with
  | 0 -> W.of_int width (Random.State.int g.rand 8)
  | 1 -> W.of_bignum width (B.pred (B.pow2 bits))
  | 2 -> W.of_bignum width (B.pow2 (bits - 1))
  | 3 -> W.of_bignum width (B.pred (B.pow2 (bits - 1)))
  | _ -> W.of_bignum width (go B.zero bits)

let rec alloc_object g (c : Ty.cty) : B.t =
  let addr, h = Heap.alloc g.lenv g.heap c in
  g.heap <- h;
  (* Fill with a random value of the right type. *)
  let v = rand_value g (Ty.of_cty c) in
  g.heap <- Heap.write_obj g.lenv g.heap c addr v;
  g.ptr_pool <- (c, addr) :: g.ptr_pool;
  addr

and rand_ptr g (c : Ty.cty) : B.t =
  let existing = List.filter (fun (c', _) -> Ty.cty_equal c c') g.ptr_pool in
  match Random.State.int g.rand 10 with
  | 0 -> B.zero (* NULL *)
  | _ when List.length existing >= 8 || (existing <> [] && Random.State.bool g.rand) ->
    snd (List.nth existing (Random.State.int g.rand (List.length existing)))
  | _ -> alloc_object g c

and rand_value g (t : Ty.t) : Value.t =
  match t with
  | Ty.Tunit -> Value.Vunit
  | Ty.Tbool -> Value.Vbool (Random.State.bool g.rand)
  | Ty.Tword (s, w) -> Value.vword s (rand_word g w)
  | Ty.Tint ->
    Value.Vint (B.of_int (Random.State.int g.rand 2_000_001 - 1_000_000))
  | Ty.Tnat -> Value.vnat (B.of_int (Random.State.int g.rand 1_000_000))
  | Ty.Tptr c -> Value.vptr (rand_ptr g c) c
  | Ty.Tstruct n ->
    Value.Vstruct
      ( n,
        List.map
          (fun (f : Layout.field) -> (f.Layout.fname, rand_value g (Ty.of_cty f.Layout.fty)))
          (Layout.fields_of g.lenv n) )
  | Ty.Ttuple ts -> Value.Vtuple (List.map (rand_value g) ts)

(* Random initial state + concrete arguments for a Simpl function. *)
let random_case (res : Driver.result) (rand : Random.State.t) (fname : string) :
    Value.t list * State.t =
  let simpl = res.Driver.simpl in
  let f = Option.get (Ac_simpl.Ir.find_func simpl fname) in
  let g = { rand; lenv = simpl.Ac_simpl.Ir.lenv; heap = Heap.empty; ptr_pool = [] } in
  (* Seed the heap with a few extra objects of the program's heap types so
     pointer chains (e.g. linked lists) have somewhere to point. *)
  List.iter
    (fun c -> ignore (alloc_object g c))
    (List.concat_map (fun c -> [ c; c ]) res.Driver.heap_types);
  let args = List.map (fun (_, t) -> rand_value g t) f.Ac_simpl.Ir.params in
  let globals =
    List.fold_left
      (fun s (x, t) -> State.set_global s x (rand_value g t))
      State.empty simpl.Ac_simpl.Ir.globals
  in
  (args, State.with_heap globals g.heap)

(* ------------------------------------------------------------------ *)
(* The refinement check itself. *)

let ret_conv (res : Driver.result) fname : J.conv =
  match List.assoc_opt fname res.Driver.ctx.Rules.fsigs with
  | Some (_, rc) -> rc
  | None -> J.Cid

let param_convs (res : Driver.result) fname : J.conv list option =
  match List.assoc_opt fname res.Driver.ctx.Rules.fsigs with
  | Some (pcs, _) -> Some pcs
  | None -> None

let run_case (res : Driver.result) fname (args : Value.t list) (state : State.t) : verdict =
  let concrete () = Sem.run_func res.Driver.simpl ~fuel state fname args in
  let abstract_args =
    match param_convs res fname with
    | Some pcs -> List.map2 J.apply_conv pcs args
    | None -> args
  in
  match Interp.run_func res.Driver.final_prog ~fuel state fname abstract_args with
  | Interp.Fails _ -> Abstract_failed
  | Interp.Diverges -> Skipped "abstract diverges (fuel)"
  | Interp.Gets_stuck m -> Violation ("abstract stuck: " ^ m)
  | Interp.Throws _ -> Violation "abstract threw at function level"
  | Interp.Returns (va, sa) -> (
    match concrete () with
    | Sem.Faults k ->
      Violation
        (Printf.sprintf "concrete faults (%s) while the abstraction succeeds"
           (Ac_simpl.Ir.guard_kind_name k))
    | Sem.Gets_stuck m -> Violation ("concrete stuck: " ^ m)
    | Sem.Diverges -> Skipped "concrete diverges (fuel)"
    | Sem.Returns (rv, sc) ->
      let vc = match rv with Some v -> v | None -> Value.Vunit in
      let expected = J.apply_conv (ret_conv res fname) vc in
      if not (Value.equal expected va) then
        Violation
          (Printf.sprintf "results differ: abstract %s, concrete %s"
             (Value.to_string va) (Value.to_string vc))
      else if not (Heap.equal sa.State.heap sc.State.heap) then Violation "final heaps differ"
      else if
        not
          (List.for_all
             (fun (x, _) ->
               Value.equal (State.get_global sa x) (State.get_global sc x))
             res.Driver.simpl.Ac_simpl.Ir.globals)
      then Violation "final globals differ"
      else Agree)

type report = {
  cases : int;
  agreed : int;
  abstract_failed : int;
  skipped : int;
  violations : (string * string) list; (* function, description *)
}

let check_function ?(cases = 100) ?(seed = 0xC0FFEE) (res : Driver.result) fname : report =
  let rand = Random.State.make [| seed; Hashtbl.hash fname |] in
  let agreed = ref 0 and failed = ref 0 and skipped = ref 0 in
  let violations = ref [] in
  for _ = 1 to cases do
    let args, state = random_case res rand fname in
    match run_case res fname args state with
    | Agree -> incr agreed
    | Abstract_failed -> incr failed
    | Skipped _ -> incr skipped
    | Violation d -> violations := (fname, d) :: !violations
  done;
  {
    cases;
    agreed = !agreed;
    abstract_failed = !failed;
    skipped = !skipped;
    violations = List.rev !violations;
  }

let check_program ?(cases = 100) ?seed (res : Driver.result) : report =
  List.fold_left
    (fun acc fr ->
      let r = check_function ~cases ?seed res fr.Driver.fr_name in
      {
        cases = acc.cases + r.cases;
        agreed = acc.agreed + r.agreed;
        abstract_failed = acc.abstract_failed + r.abstract_failed;
        skipped = acc.skipped + r.skipped;
        violations = acc.violations @ r.violations;
      })
    { cases = 0; agreed = 0; abstract_failed = 0; skipped = 0; violations = [] }
    res.Driver.funcs
