(* Per-phase profiling counters for the pipeline.

   [record phase f] measures one unit of phase work — wall-clock seconds
   and bytes allocated on the executing domain — and folds it into the
   global per-phase accumulator.  Workers call it concurrently, so the
   accumulator is mutex-protected; the measurement itself runs outside
   the lock.

   Two readings to keep straight:
   - wall seconds are summed across workers, so under [--jobs N] a
     phase's total can exceed the elapsed time of the run (it is
     cumulative work, the quantity a speedup is computed against);
   - allocation is per-domain ([Gc.allocated_bytes] is domain-local in
     OCaml 5), which is exactly right: the delta is taken on the domain
     running the work.

   The driver resets the counters at the start of every [Driver.run], so
   a snapshot taken after [run] (+ [check_all]) describes that run. *)

(* Monotonic wall clock in seconds (bechamel's CLOCK_MONOTONIC stub).
   This is the clock for every deadline and watchdog in the service path
   — serve's request watchdog, [Supervisor.timed], lock backoff — which
   must not jump when the system clock is stepped (NTP slew, manual
   `date`, VM resume).  [Unix.gettimeofday] remains correct only for
   calendar timestamps and file-mtime comparisons. *)
let mono_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

type entry = {
  phase : string;
  calls : int;
  wall_s : float;  (* cumulative across workers *)
  alloc_bytes : float;
}

type cell = { mutable c_calls : int; mutable c_wall : float; mutable c_alloc : float }

let mu = Mutex.create ()
let tbl : (string, cell) Hashtbl.t = Hashtbl.create 16

(* Phases in pipeline order, so snapshots render in a stable, meaningful
   order regardless of which phase happened to be recorded first. *)
let canonical_order =
  [ "parse"; "l1"; "l2"; "guard_discharge"; "heap_abs"; "word_abs"; "chain"; "check" ]

let reset () =
  Mutex.lock mu;
  Hashtbl.reset tbl;
  Mutex.unlock mu

let add phase dt da =
  Mutex.lock mu;
  let c =
    match Hashtbl.find_opt tbl phase with
    | Some c -> c
    | None ->
      let c = { c_calls = 0; c_wall = 0.; c_alloc = 0. } in
      Hashtbl.add tbl phase c;
      c
  in
  c.c_calls <- c.c_calls + 1;
  c.c_wall <- c.c_wall +. dt;
  c.c_alloc <- c.c_alloc +. da;
  Mutex.unlock mu

let record (phase : string) (f : unit -> 'a) : 'a =
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  Fun.protect
    ~finally:(fun () ->
      add phase (Unix.gettimeofday () -. t0) (Gc.allocated_bytes () -. a0))
    f

let snapshot () : entry list =
  Mutex.lock mu;
  let all =
    Hashtbl.fold
      (fun phase c acc ->
        { phase; calls = c.c_calls; wall_s = c.c_wall; alloc_bytes = c.c_alloc } :: acc)
      tbl []
  in
  Mutex.unlock mu;
  let rank p =
    let rec go i = function
      | [] -> List.length canonical_order
      | q :: rest -> if String.equal p q then i else go (i + 1) rest
    in
    go 0 canonical_order
  in
  List.sort
    (fun a b ->
      match Int.compare (rank a.phase) (rank b.phase) with
      | 0 -> String.compare a.phase b.phase
      | c -> c)
    all

let total_wall () = List.fold_left (fun acc e -> acc +. e.wall_s) 0. (snapshot ())

let to_json () : string =
  let entries =
    List.map
      (fun e ->
        Printf.sprintf
          "{\"phase\":\"%s\",\"calls\":%d,\"wall_s\":%.6f,\"alloc_bytes\":%.0f}"
          e.phase e.calls e.wall_s e.alloc_bytes)
      (snapshot ())
  in
  Printf.sprintf "{\"phases\":[%s]}" (String.concat "," entries)
