(* Per-phase profiling counters for the pipeline.

   [record phase f] measures one unit of phase work — wall-clock seconds
   and bytes allocated on the executing domain — and folds it into the
   executing domain's own accumulator table.  Accumulation is per-domain
   (each table has its own mutex, uncontended on the hot path because
   only the owning domain writes to it); [snapshot] merges every
   domain's table at harvest time.  Workers under [--jobs N] therefore
   contribute their phase work with no cross-domain lock traffic, and
   nothing is silently attributed to the main domain.

   Two readings to keep straight:
   - wall seconds are summed across workers, so under [--jobs N] a
     phase's total can exceed the elapsed time of the run (it is
     cumulative work, the quantity a speedup is computed against);
   - allocation is per-domain ([Gc.allocated_bytes] is domain-local in
     OCaml 5), which is exactly right: the delta is taken on the domain
     running the work.

   The driver resets the counters at the start of every [Driver.run], so
   a snapshot taken after [run] (+ [check_all]) describes that run. *)

(* Monotonic wall clock in seconds (bechamel's CLOCK_MONOTONIC stub).
   This is the clock for every deadline and watchdog in the service path
   — serve's request watchdog, [Supervisor.timed], lock backoff — which
   must not jump when the system clock is stepped (NTP slew, manual
   `date`, VM resume).  [Unix.gettimeofday] remains correct only for
   calendar timestamps and file-mtime comparisons. *)
let mono_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

type entry = {
  phase : string;
  calls : int;
  wall_s : float;  (* cumulative across workers *)
  alloc_bytes : float;
}

type cell = { mutable c_calls : int; mutable c_wall : float; mutable c_alloc : float }

(* One table per domain.  The per-table mutex exists for the benefit of
   the cross-domain readers ([snapshot]/[reset]); the owning domain is
   the only writer, so [add] never contends in steady state. *)
type dtab = { dt_mu : Mutex.t; dt_tbl : (string, cell) Hashtbl.t }

let reg_mu = Mutex.create ()
let registry : dtab list ref = ref []

let tab_key : dtab Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t = { dt_mu = Mutex.create (); dt_tbl = Hashtbl.create 16 } in
      Mutex.lock reg_mu;
      registry := t :: !registry;
      Mutex.unlock reg_mu;
      t)

(* Phases in pipeline order, so snapshots render in a stable, meaningful
   order regardless of which phase happened to be recorded first. *)
let canonical_order =
  [ "parse"; "l1"; "l2"; "guard_discharge"; "heap_abs"; "word_abs"; "chain"; "check" ]

let all_tabs () =
  Mutex.lock reg_mu;
  let tabs = !registry in
  Mutex.unlock reg_mu;
  tabs

let reset () =
  List.iter
    (fun t ->
      Mutex.lock t.dt_mu;
      Hashtbl.reset t.dt_tbl;
      Mutex.unlock t.dt_mu)
    (all_tabs ())

let add phase dt da =
  let t = Domain.DLS.get tab_key in
  Mutex.lock t.dt_mu;
  let c =
    match Hashtbl.find_opt t.dt_tbl phase with
    | Some c -> c
    | None ->
      let c = { c_calls = 0; c_wall = 0.; c_alloc = 0. } in
      Hashtbl.add t.dt_tbl phase c;
      c
  in
  c.c_calls <- c.c_calls + 1;
  c.c_wall <- c.c_wall +. dt;
  c.c_alloc <- c.c_alloc +. da;
  Mutex.unlock t.dt_mu

let record ?(cat = "driver") ?func (phase : string) (f : unit -> 'a) : 'a =
  let measured () =
    let t0 = Unix.gettimeofday () in
    let a0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () ->
        add phase (Unix.gettimeofday () -. t0) (Gc.allocated_bytes () -. a0))
      f
  in
  (* Gate here (not just inside [Obs.span]) so the args list is never
     allocated when tracing is off. *)
  if Ac_obs.Obs.enabled () then
    let args = match func with Some fn -> [ ("func", fn) ] | None -> [] in
    Ac_obs.Obs.span ~cat ~args phase measured
  else measured ()

let snapshot () : entry list =
  (* Merge every domain's table into one per-phase map. *)
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun t ->
      Mutex.lock t.dt_mu;
      Hashtbl.iter
        (fun phase c ->
          let m =
            match Hashtbl.find_opt merged phase with
            | Some m -> m
            | None ->
              let m = { c_calls = 0; c_wall = 0.; c_alloc = 0. } in
              Hashtbl.add merged phase m;
              m
          in
          m.c_calls <- m.c_calls + c.c_calls;
          m.c_wall <- m.c_wall +. c.c_wall;
          m.c_alloc <- m.c_alloc +. c.c_alloc)
        t.dt_tbl;
      Mutex.unlock t.dt_mu)
    (all_tabs ());
  let all =
    Hashtbl.fold
      (fun phase c acc ->
        { phase; calls = c.c_calls; wall_s = c.c_wall; alloc_bytes = c.c_alloc } :: acc)
      merged []
  in
  let rank p =
    let rec go i = function
      | [] -> List.length canonical_order
      | q :: rest -> if String.equal p q then i else go (i + 1) rest
    in
    go 0 canonical_order
  in
  List.sort
    (fun a b ->
      match Int.compare (rank a.phase) (rank b.phase) with
      | 0 -> String.compare a.phase b.phase
      | c -> c)
    all

let total_wall () = List.fold_left (fun acc e -> acc +. e.wall_s) 0. (snapshot ())

let to_json () : string =
  let entries =
    List.map
      (fun e ->
        Printf.sprintf
          "{\"phase\":\"%s\",\"calls\":%d,\"wall_s\":%.6f,\"alloc_bytes\":%.0f}"
          e.phase e.calls e.wall_s e.alloc_bytes)
      (snapshot ())
  in
  Printf.sprintf "{\"phases\":[%s]}" (String.concat "," entries)
