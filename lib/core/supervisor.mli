(** Supervision for the worker pool: restart crashed domains, retry lost
    tasks with bounded exponential backoff + jitter, quarantine items
    that keep killing workers (re-run in-process with fault injection
    masked, under the normal degradation ladder).

    {!map} preserves the {!Pool.map_on} contract — results in input
    order, lowest-indexed failure re-raised — and adds the guarantee
    that a worker-domain crash never loses an item's result.  Because
    crash injection happens at task dispatch (before the work function
    runs), the work function runs exactly once per item and the final
    output is byte-identical to a fault-free run. *)

type t

type stats = {
  retries : int;  (** lost items re-attempted *)
  quarantined : int;  (** items re-run masked after repeated crashes *)
  restarts : int;  (** worker domains respawned *)
  crashes : int;  (** worker-domain deaths observed *)
  deadline_blown : int;  (** items that overran the task deadline *)
}

val zero_stats : stats

val create :
  ?max_retries:int ->
  ?backoff_base_s:float ->
  ?task_deadline_s:float ->
  ?seed:int ->
  unit ->
  t
(** [max_retries] (default 1) bounds how often a lost item is retried
    before quarantine — the default quarantines an item that kills
    workers twice.  [task_deadline_s] arms the after-the-fact deadline
    watchdog ({!stats}.deadline_blown); domains cannot be preempted, so
    the watchdog counts rather than kills — the in-phase budget plumbing
    is what bounds the work. *)

val map : t -> ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** Supervised map.  With a pool (and more than one item) the map runs
    on the pool; lost items trigger a worker respawn and are retried on
    the calling domain with backoff.  Without a pool, items run
    sequentially under the same retry/quarantine ladder. *)

val stats : t -> stats
(** Snapshot of the counters (atomics; safe from any domain). *)
