(** Configurable, deterministic fault injection for the service path.

    A fault spec ({!parse}, surfaced as [ACC_FAULTS] / [acc serve
    --inject]) names per-decision-point probabilities for transient I/O
    errors, worker-domain crashes, and request stalls.  Decisions are a
    pure function of (seed, global decision index), so a failing schedule
    reproduces exactly.  Injection is process-global ({!install} /
    {!clear}); {!with_mask} suppresses it on the current domain, which is
    how quarantined work gets to finish. *)

type kind = Io_error | Worker_crash | Slow

type config = {
  seed : int;
  io_error : float;
  worker_crash : float;
  slow : float;
  slow_s : float;
}

val default : config
(** All rates zero, seed zero; [slow_s] = 10ms. *)

val parse : string -> (config, string) result
(** Parse a spec like ["io_error:0.05,worker_crash:0.02,seed:42,slow_ms:20"].
    Rates are clamped to [0,1]; unknown names are errors. *)

val install : config -> unit
(** Make [cfg] the active configuration, reset the decision counter and
    per-kind injected counts, and wire the store's I/O hook. *)

val clear : unit -> unit
(** Deactivate injection and unhook the store. *)

val active : unit -> config option

val fire : kind -> bool
(** Decide (and record) whether the fault fires at this decision point.
    Always false when no config is installed or the domain is masked. *)

val injected : kind -> int
(** Faults of this kind injected since the last {!install}. *)

val injected_io_error_msg : string
(** Message of the [Sys_error] the store hook raises, so tests can tell
    injected faults from real ones. *)

val sleep_if_slow : unit -> unit
(** Stall for [slow_s] if the [Slow] fault fires (serve request path). *)

val with_mask : (unit -> 'a) -> 'a
(** Run with injection suppressed on the current domain. *)
