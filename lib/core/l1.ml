module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

(* Phase L1: monadic conversion (paper Sec 2, Table 1).

   A plain structural translation of Simpl into the monadic language; every
   step is a kernel rule application, so the result comes with a
   [Corres_l1] theorem. *)

let rec convert (ctx : Rules.ctx) (s : Ir.stmt) : Thm.t =
  match s with
  | Ir.Skip | Ir.Local_set _ | Ir.Global_set _ | Ir.Heap_write _ | Ir.Retype _ | Ir.Guard _
  | Ir.Throw | Ir.Call _ ->
    Thm.by ctx (Rules.L1 s) []
  | Ir.Seq (a, b) | Ir.Try (a, b) -> Thm.by ctx (Rules.L1 s) [ convert ctx a; convert ctx b ]
  | Ir.Cond (_, a, b) -> Thm.by ctx (Rules.L1 s) [ convert ctx a; convert ctx b ]
  | Ir.While (_, body) -> Thm.by ctx (Rules.L1 s) [ convert ctx body ]

let monad_of (thm : Thm.t) : M.t =
  match Thm.concl thm with
  | J.Corres_l1 (_, m) -> m
  | _ -> invalid_arg "L1.monad_of"

(* Convert a whole function.  The L1 function keeps its locals in the state
   (paper Fig 1: local-variable lifting comes later). *)
let convert_func (ctx : Rules.ctx) (f : Ir.func) : M.func * Thm.t =
  let thm = convert ctx f.Ir.body in
  ( {
      M.name = f.Ir.name;
      params = f.Ir.params;
      ret_ty = f.Ir.ret_ty;
      body = monad_of thm;
      convention = M.Locals_in_state;
      heap_model = M.Byte_level;
      locals = f.Ir.locals;
    },
    thm )
