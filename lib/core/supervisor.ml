(* Supervision for the worker pool: restart crashed domains, retry lost
   tasks with bounded backoff, quarantine repeat offenders.

   The policy mirrors classic supervisor trees, adapted to the pool's
   semantics: a map reports per-item outcomes ([Pool.map_outcomes]); any
   [Lost] item means worker domains died holding it.  Dead workers are
   respawned once per map, and each lost item is retried *in-process*
   (on the supervisor's own domain) with exponential backoff + jitter.
   An item that crashes more than [max_retries] times is quarantined:
   re-run with fault injection masked, so it completes under the normal
   degradation ladder instead of poisoning the pool forever.  Because
   crash injection happens at dispatch (before the work function runs),
   a retried item runs the work function exactly once — the final output
   is byte-identical to a fault-free run.

   All counters are atomics: the supervisor is shared across requests by
   `acc serve`, whose status verb reports them. *)

type stats = {
  retries : int;
  quarantined : int;
  restarts : int;
  crashes : int;
  deadline_blown : int;
}

let zero_stats =
  { retries = 0; quarantined = 0; restarts = 0; crashes = 0; deadline_blown = 0 }

type t = {
  retries : int Atomic.t;
  quarantined : int Atomic.t;
  restarts : int Atomic.t;
  crashes : int Atomic.t;
  deadline_blown : int Atomic.t;
  max_retries : int;
  backoff_base_s : float;
  task_deadline_s : float option;
  rng : int Atomic.t; (* jitter state; contention-tolerant LCG *)
}

let create ?(max_retries = 1) ?(backoff_base_s = 0.002) ?task_deadline_s ?(seed = 0) () =
  {
    retries = Atomic.make 0;
    quarantined = Atomic.make 0;
    restarts = Atomic.make 0;
    crashes = Atomic.make 0;
    deadline_blown = Atomic.make 0;
    max_retries;
    backoff_base_s;
    task_deadline_s;
    rng = Atomic.make (seed lxor 0x5DEECE6);
  }

let stats (t : t) : stats =
  {
    retries = Atomic.get t.retries;
    quarantined = Atomic.get t.quarantined;
    restarts = Atomic.get t.restarts;
    crashes = Atomic.get t.crashes;
    deadline_blown = Atomic.get t.deadline_blown;
  }

(* Jitter in [0, 1).  A racy read-modify-write is fine: jitter only needs
   to decorrelate backoffs, not be a sound RNG. *)
let jitter (t : t) =
  let s = Atomic.get t.rng in
  let s' = ((s * 0x41C64E6D) + 0x3039) land 0x3FFFFFFF in
  ignore (Atomic.compare_and_set t.rng s s');
  float_of_int (s' land 0xFFFF) /. 65536.

(* Exponential backoff with jitter in [0.5x, 1.5x] of the nominal delay:
   full-synchronization of retries is exactly what jitter exists to
   avoid. *)
let backoff (t : t) ~attempt =
  let nominal = t.backoff_base_s *. Float.pow 2.0 (float_of_int (attempt - 1)) in
  Unix.sleepf (nominal *. (0.5 +. jitter t))

(* Run one work item, timing it against the task deadline.  Domains
   cannot be preempted, so a blown deadline is detected after the fact
   and *counted* (the budget plumbing inside the phases is what actually
   bounds the work); the service degrades rather than kills.

   Measured on the monotonic clock ([Profile.mono_s]): the deadline is
   the step-proof watchdog of a serve session that may run for days, so
   an NTP step or VM resume must not spuriously blow (or mask) it —
   [Unix.gettimeofday] did both before PR 8. *)
let timed (t : t) (f : 'a -> 'b) (x : 'a) : 'b =
  match t.task_deadline_s with
  | None -> f x
  | Some d ->
    let t0 = Profile.mono_s () in
    let finish () = if Profile.mono_s () -. t0 > d then Atomic.incr t.deadline_blown in
    let r = try f x with e -> finish (); raise e in
    finish ();
    r

(* Retry ladder for one item on the current domain.  [prior] counts
   crashes this item has already caused.  Injection stays live during
   retries (a retried item can crash again); only quarantine masks it. *)
let rec run_item (t : t) ~prior (f : 'a -> 'b) (x : 'a) : 'b =
  if prior > t.max_retries then begin
    (* Killed workers [max_retries + 1] times: quarantine.  Masked, the
       item runs under the ordinary degradation ladder — any real
       failure inside [f] surfaces normally. *)
    Atomic.incr t.quarantined;
    if Ac_obs.Obs.enabled () then
      Ac_obs.Obs.instant ~cat:"sup" ~args:[ ("prior", string_of_int prior) ]
        "sup.quarantine";
    Faults.with_mask (fun () -> timed t f x)
  end
  else begin
    if prior > 0 then begin
      backoff t ~attempt:prior;
      Atomic.incr t.retries;
      if Ac_obs.Obs.enabled () then
        Ac_obs.Obs.instant ~cat:"sup" ~args:[ ("attempt", string_of_int prior) ]
          "sup.retry"
    end;
    match
      if Faults.fire Faults.Worker_crash then
        raise (Pool.Crash "injected worker-domain crash");
      timed t f x
    with
    | v -> v
    | exception Pool.Crash _ ->
      Atomic.incr t.crashes;
      run_item t ~prior:(prior + 1) f x
  end

(* Supervised map: [Pool.map_on] semantics (input order, lowest-index
   failure re-raised) plus crash recovery — no result is ever lost to a
   worker-domain death. *)
let map (t : t) ?pool (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match pool with
  | Some p when List.length xs > 1 ->
    let slots = Pool.map_outcomes p (timed t f) xs in
    let items = Array.of_list xs in
    let lost = Array.fold_left (fun n -> function Pool.Lost _ -> n + 1 | _ -> n) 0 slots in
    if lost > 0 then begin
      (* Workers died during this map.  Restore pool capacity first so
         the *next* map runs at full parallelism, then retry the lost
         items here. *)
      ignore (Atomic.fetch_and_add t.crashes lost);
      ignore (Atomic.fetch_and_add t.restarts (Pool.respawn p));
      if Ac_obs.Obs.enabled () then
        Ac_obs.Obs.instant ~cat:"sup" ~args:[ ("lost", string_of_int lost) ] "sup.recover"
    end;
    let resolved =
      Array.mapi
        (fun i outcome ->
          match outcome with
          | Pool.Done v -> Ok v
          | Pool.Failed (e, bt) -> Error (e, bt)
          | Pool.Lost _ -> (
            (* First retry: the pool-side dispatch already crashed once,
               so enter the ladder at [prior = 1].  [run_item] calls
               [timed] itself. *)
            match run_item t ~prior:1 f items.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())))
        slots
    in
    Array.iter
      (function Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
      resolved;
    Array.to_list (Array.map (function Ok v -> v | Error _ -> assert false) resolved)
  | _ -> List.map (fun x -> run_item t ~prior:0 f x) xs
