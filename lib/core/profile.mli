(** Per-phase profiling counters for the pipeline (wall clock and
    allocation), aggregated across worker domains.  {!Driver.run} resets
    the counters at its start and records each phase's per-function work;
    a snapshot taken afterwards describes that run.  Wall seconds are
    summed across workers, so under [jobs > 1] a phase total can exceed
    the run's elapsed time — it is cumulative work. *)

(** Monotonic wall clock in seconds ([CLOCK_MONOTONIC]): the clock for
    deadlines and watchdogs (serve's request watchdog, {!Supervisor},
    store-lock backoff), immune to system-clock steps.  Only its
    differences are meaningful. *)
val mono_s : unit -> float

type entry = {
  phase : string;
  calls : int;  (** units of work recorded (usually functions processed) *)
  wall_s : float;  (** cumulative wall-clock seconds across workers *)
  alloc_bytes : float;  (** bytes allocated on the recording domains *)
}

val reset : unit -> unit

(** [record phase f] runs [f ()], folding its wall time and allocation
    into [phase]'s accumulator (thread-safe; measurement outside the
    lock).  Exceptions propagate, with the partial work still counted. *)
val record : string -> (unit -> 'a) -> 'a

(** Per-phase totals in pipeline order. *)
val snapshot : unit -> entry list

(** Sum of wall seconds over all phases. *)
val total_wall : unit -> float

(** The snapshot as a JSON object [{"phases":[...]}]. *)
val to_json : unit -> string
