(** Per-phase profiling counters for the pipeline (wall clock and
    allocation), accumulated per domain and merged at harvest.
    {!Driver.run} resets the counters at its start and records each
    phase's per-function work; a snapshot taken afterwards describes
    that run.  Workers write to their own domain-local table (no
    cross-domain lock traffic on the hot path) and {!snapshot} merges
    all tables, so work done inside pool workers is never silently
    dropped or attributed to the main domain.  Wall seconds are summed
    across workers, so under [jobs > 1] a phase total can exceed the
    run's elapsed time — it is cumulative work. *)

(** Monotonic wall clock in seconds ([CLOCK_MONOTONIC]): the clock for
    deadlines and watchdogs (serve's request watchdog, {!Supervisor},
    store-lock backoff), immune to system-clock steps.  Only its
    differences are meaningful. *)
val mono_s : unit -> float

type entry = {
  phase : string;
  calls : int;  (** units of work recorded (usually functions processed) *)
  wall_s : float;  (** cumulative wall-clock seconds across workers *)
  alloc_bytes : float;  (** bytes allocated on the recording domains *)
}

val reset : unit -> unit

(** [record ?cat ?func phase f] runs [f ()], folding its wall time and
    allocation into [phase]'s accumulator on the executing domain
    (thread-safe; measurement outside the lock).  Exceptions propagate,
    with the partial work still counted.  When tracing is enabled the
    unit of work is also emitted as an [Obs] span named [phase] in
    category [cat] (default ["driver"]) with [func] (the function being
    processed, when known) attached as a span argument. *)
val record : ?cat:string -> ?func:string -> string -> (unit -> 'a) -> 'a

(** Per-phase totals in pipeline order. *)
val snapshot : unit -> entry list

(** Sum of wall seconds over all phases. *)
val total_wall : unit -> float

(** The snapshot as a JSON object [{"phases":[...]}]. *)
val to_json : unit -> string
