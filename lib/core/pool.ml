(* A persistent domain-based worker pool for the per-function pipeline
   phases.

   The driver creates one pool per run and pushes every per-function map
   through it, so worker domains are spawned once per run instead of once
   per phase (domain startup plus the first minor-heap faults cost more
   than an entire small phase).  Workers block on a condition variable
   between maps.

   [map] behaves exactly like [List.map]: results come back in input
   order, and if any application raises, the exception of the
   *lowest-indexed* failing item is re-raised (with its backtrace) — the
   same one sequential evaluation would have surfaced first.  Workers
   pull items off a shared atomic index, so scheduling is dynamic but the
   output is deterministic.

   The pool is safe for the pipeline because PR 2 made every phase
   per-function fault-isolated and the engines keep their per-goal state
   in domain-local storage (hash-cons tables, solver deadlines) or
   atomics (budget-exhaustion counters); see DESIGN.md. *)

type task = { run : int -> unit; items : int }
(* [run i] processes item [i]; workers grab indices from [t.next]. *)

type t = {
  mutable workers : unit Domain.t list;
  mu : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable task : task option;
  mutable next : int Atomic.t;
  mutable active : int; (* workers currently inside task.run *)
  mutable generation : int; (* bumped per map, wakes workers *)
  mutable stop : bool;
}

let worker_loop (t : t) () =
  let gen = ref 0 in
  let rec loop () =
    Mutex.lock t.mu;
    (* Proceed only on a NEW map whose task is still installed.  A worker
       can sleep through an entire map: [map_on] waits only for workers
       that entered the task ([t.active]), so if every item was drained
       before this worker woke, the map is torn down ([t.task = None])
       with [t.generation] already bumped.  Waking on generation alone
       would then crash on the missing task — treat it as a missed map
       and go back to waiting for the next one.  (Committing is safe:
       task and generation are read and [active] is bumped under the same
       lock [map_on] needs to observe [active = 0].) *)
    while (not t.stop) && (t.generation = !gen || Option.is_none t.task) do
      Condition.wait t.work_ready t.mu
    done;
    if t.stop then Mutex.unlock t.mu
    else begin
      gen := t.generation;
      let task = Option.get t.task in
      t.active <- t.active + 1;
      Mutex.unlock t.mu;
      let rec drain () =
        let i = Atomic.fetch_and_add t.next 1 in
        if i < task.items then begin
          task.run i;
          drain ()
        end
      in
      drain ();
      Mutex.lock t.mu;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mu;
      loop ()
    end
  in
  loop ()

let create ~(jobs : int) : t =
  let t =
    {
      workers = [];
      mu = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      task = None;
      next = Atomic.make 0;
      active = 0;
      generation = 0;
      stop = false;
    }
  in
  (* The calling domain participates in every map, so spawn jobs - 1. *)
  t.workers <- List.init (max 0 (jobs - 1)) (fun _ -> Domain.spawn (worker_loop t));
  t

let shutdown (t : t) =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

let map_on (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let items = Array.of_list xs in
    let results : 'b option array = Array.make n None in
    let failures : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let run i =
      match f items.(i) with
      | v -> results.(i) <- Some v
      | exception e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let next = Atomic.make 0 in
    Mutex.lock t.mu;
    t.task <- Some { run; items = n };
    t.next <- next;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mu;
    (* The calling domain drains alongside the workers. *)
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run i;
        drain ()
      end
    in
    drain ();
    (* Wait for stragglers still inside [run]. *)
    Mutex.lock t.mu;
    while t.active > 0 do
      Condition.wait t.work_done t.mu
    done;
    t.task <- None;
    Mutex.unlock t.mu;
    Array.iteri
      (fun _ slot ->
        match slot with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* no failure, all filled *))
         results)
  end

(* One-shot convenience used when no pool is alive: sequential for
   [jobs <= 1], otherwise a throwaway pool. *)
let map ~(jobs : int) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  if jobs <= 1 || List.length xs <= 1 then List.map f xs
  else begin
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map_on t f xs)
  end
