(* A persistent domain-based worker pool for the per-function pipeline
   phases.

   The driver creates one pool per run and pushes every per-function map
   through it, so worker domains are spawned once per run instead of once
   per phase (domain startup plus the first minor-heap faults cost more
   than an entire small phase).  Workers block on a condition variable
   between maps.

   [map] behaves exactly like [List.map]: results come back in input
   order, and if any application raises, the exception of the
   *lowest-indexed* failing item is re-raised (with its backtrace) — the
   same one sequential evaluation would have surfaced first.  Workers
   pull items off a shared atomic index, so scheduling is dynamic but the
   output is deterministic.

   Crash tolerance (this PR): OCaml domains cannot be killed from
   outside, so a "worker crash" is modelled as the [Crash] exception
   escaping a task — which is also exactly what the fault-injection
   harness raises at task dispatch.  A crash kills the worker domain
   (it exits its loop; the pool records it dead) but never the pool
   itself: the affected item is reported as [Lost] in [map_outcomes],
   and [Supervisor] decides whether to respawn workers and retry or to
   quarantine the item.  A crash on the *calling* domain is recorded the
   same way without unwinding the caller.

   The pool is safe for the pipeline because PR 2 made every phase
   per-function fault-isolated and the engines keep their per-goal state
   in domain-local storage (hash-cons tables, solver deadlines) or
   atomics (budget-exhaustion counters); see DESIGN.md. *)

exception Crash of string
(* A worker-domain death.  Deliberately not caught by the driver's
   per-function [attempt] wrapper (it escapes to the pool layer), so it
   faithfully models losing the domain mid-task. *)

type task = { run : int -> unit; items : int }
(* [run i] processes item [i]; workers grab indices from [t.next]. *)

type worker = { dom : unit Domain.t; alive : bool ref }

type t = {
  mutable workers : worker list;
  mu : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable task : task option;
  mutable next : int Atomic.t;
  mutable active : int; (* workers currently inside task.run *)
  mutable generation : int; (* bumped per map, wakes workers *)
  mutable stop : bool;
  crashed : int Atomic.t; (* worker domains lost to Crash, ever *)
}

let worker_loop (t : t) (alive : bool ref) () =
  let gen = ref 0 in
  let rec loop () =
    Mutex.lock t.mu;
    (* Proceed only on a NEW map whose task is still installed.  A worker
       can sleep through an entire map: [map_outcomes] waits only for
       workers that entered the task ([t.active]), so if every item was
       drained before this worker woke, the map is torn down
       ([t.task = None]) with [t.generation] already bumped.  Waking on
       generation alone would then crash on the missing task — treat it
       as a missed map and go back to waiting for the next one.  (This
       also covers freshly respawned workers, whose local [gen] starts at
       0 while [t.generation] is arbitrary.) *)
    while (not t.stop) && (t.generation = !gen || Option.is_none t.task) do
      Condition.wait t.work_ready t.mu
    done;
    if t.stop then Mutex.unlock t.mu
    else begin
      gen := t.generation;
      let task = Option.get t.task in
      t.active <- t.active + 1;
      Mutex.unlock t.mu;
      let rec drain () =
        let i = Atomic.fetch_and_add t.next 1 in
        if i < task.items then begin
          task.run i;
          drain ()
        end
      in
      (* [task.run] confines ordinary exceptions to its result slot; only
         [Crash] (a worker death) can escape.  The dying worker still
         signs off under the lock — otherwise [map_outcomes] would wait
         forever on [t.active] — then falls off its loop. *)
      let died = match drain () with () -> false | exception _ -> true in
      Mutex.lock t.mu;
      t.active <- t.active - 1;
      if died then begin
        alive := false;
        Atomic.incr t.crashed;
        Ac_obs.Obs.instant ~cat:"pool" "pool.worker_death"
      end;
      if t.active = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mu;
      if not died then loop ()
    end
  in
  loop ()

let spawn_worker t =
  let alive = ref true in
  { dom = Domain.spawn (worker_loop t alive); alive }

let create ~(jobs : int) : t =
  let t =
    {
      workers = [];
      mu = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      task = None;
      next = Atomic.make 0;
      active = 0;
      generation = 0;
      stop = false;
      crashed = Atomic.make 0;
    }
  in
  (* The calling domain participates in every map, so spawn jobs - 1. *)
  t.workers <- List.init (max 0 (jobs - 1)) (fun _ -> spawn_worker t);
  t

let shutdown (t : t) =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mu;
  List.iter (fun w -> Domain.join w.dom) t.workers;
  t.workers <- []

let crashes (t : t) = Atomic.get t.crashed

(* Join dead workers and spawn replacements; returns how many were
   replaced.  Joining a crashed domain is immediate (it already exited
   its loop).  Intended between maps — the supervisor calls it after a
   map reported [Lost] items. *)
let respawn (t : t) : int =
  let dead, live = List.partition (fun w -> not !(w.alive)) t.workers in
  List.iter (fun w -> Domain.join w.dom) dead;
  let fresh = List.map (fun _ -> spawn_worker t) dead in
  t.workers <- live @ fresh;
  let n = List.length fresh in
  if n > 0 && Ac_obs.Obs.enabled () then
    Ac_obs.Obs.instant ~cat:"pool" ~args:[ ("count", string_of_int n) ] "pool.respawn";
  n

type 'b outcome =
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace
  | Lost of string (* worker crashed while holding this item *)

(* The crash-aware primitive: every item gets exactly one outcome, and a
   worker crash surfaces as [Lost] instead of an exception or a hang.
   Fault injection happens here, at task dispatch — *before* [f] runs —
   so under the supervisor's retry policy [f] still runs at most once
   per item and the final output stays byte-identical to a fault-free
   run. *)
let map_outcomes (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b outcome array =
  let n = List.length xs in
  if n = 0 then [||]
  else begin
    let items = Array.of_list xs in
    let slots : 'b outcome array = Array.make n (Lost "not attempted") in
    let caller = Domain.self () in
    let run_item i =
      match
        if Faults.fire Faults.Worker_crash then
          raise (Crash "injected worker-domain crash");
        f items.(i)
      with
      | v -> slots.(i) <- Done v
      | exception Crash m ->
        slots.(i) <- Lost m;
        (* Kill the worker domain; the caller domain merely records the
           loss and keeps draining (the pool must survive its owner). *)
        if Domain.self () <> caller then raise (Crash m)
      | exception e -> slots.(i) <- Failed (e, Printexc.get_raw_backtrace ())
    in
    (* Span per dispatched item, on the executing domain.  The injected
       [Crash] above is raised inside the span, and [Obs.span] closes it
       from [Fun.protect], so traced B/E events stay balanced even when
       the worker domain dies. *)
    let run i =
      if Ac_obs.Obs.enabled () then
        Ac_obs.Obs.span ~cat:"pool" ~args:[ ("item", string_of_int i) ] "pool.task"
          (fun () -> run_item i)
      else run_item i
    in
    let next = Atomic.make 0 in
    Mutex.lock t.mu;
    t.task <- Some { run; items = n };
    t.next <- next;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mu;
    (* The calling domain drains alongside the workers. *)
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run i;
        drain ()
      end
    in
    drain ();
    (* Wait for stragglers still inside [run] — including dying workers,
       which sign off ([active] decrement) before exiting. *)
    Mutex.lock t.mu;
    while t.active > 0 do
      Condition.wait t.work_done t.mu
    done;
    t.task <- None;
    Mutex.unlock t.mu;
    slots
  end

let map_on (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let slots = map_outcomes t f xs in
  (* Deterministic failure semantics: surface the lowest-indexed failure,
     exactly as sequential evaluation would.  An unsupervised [Lost]
     becomes a [Crash] here — [map_on] never silently drops items; use
     [Supervisor.map] for retry/quarantine. *)
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Lost m -> raise (Crash m)
      | Done _ -> ())
    slots;
  Array.to_list (Array.map (function Done v -> v | _ -> assert false) slots)

(* One-shot convenience used when no pool is alive: sequential for
   [jobs <= 1], otherwise a throwaway pool. *)
let map ~(jobs : int) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  if jobs <= 1 || List.length xs <= 1 then List.map f xs
  else begin
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map_on t f xs)
  end
