(** Memoized re-validation of kernel derivations.

    Derivations are DAGs — the end-to-end chain theorems hold the per-phase
    theorems as premises — so the plain [Thm.check] re-walks shared
    sub-derivations once per occurrence.  A cache memoizes the walk on the
    identity of theorem nodes — the ids ([Thm.id], the kernel's read-only
    per-node key) of nodes that check out Ok are recorded in a flat int
    set private to the cache, making a revisit one set lookup — so each
    node is re-inferred once per run.

    The cache lives outside the kernel's trusted core: it can only make
    auditing faster or wrongly report a failure, never mint a theorem, and
    the uncached [Thm.check] remains the ground truth.  A cache is bound
    to the inference context given at [create] (node verdicts depend on
    it); create one per context and drop it at the end of the run — its
    memo table dies with it. *)

type t

val create : Ac_kernel.Rules.ctx -> t

(** Re-validate the derivation, memoized.  Equivalent to
    [Thm.check ctx thm] for the context the cache was created with. *)
val check : t -> Ac_kernel.Thm.t -> (unit, string) result

(** Memoization counters, for `acc stats` and the bench harness. *)
val hits : t -> int

val misses : t -> int
