module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Layout = Ac_lang.Layout
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

(* Phase HL: heap abstraction (paper Sec 4).

   Byte-level heap operations become functional accesses of per-type split
   heaps, pointer-validity guards become [is_valid] checks, and calls into
   non-lifted (type-unsafe) functions are wrapped in [exec_concrete]
   (Sec 4.6).  Each step is a Table 4 rule application in the kernel. *)

exception Not_liftable of string

let abs_of_stmt (thm : Thm.t) : M.t =
  match Thm.concl thm with
  | J.Abs_h_stmt (a, _) -> a
  | _ -> invalid_arg "Hl.abs_of_stmt"

(* Value abstraction (abs_h_val). *)
let rec hv (ctx : Rules.ctx) (e : E.t) : Thm.t =
  match e with
  | E.HeapRead (_, E.FieldAddr (sname, fname, p)) ->
    Thm.by ctx (Rules.Hv_read_field (sname, fname)) [ hv ctx p ]
  | E.HeapRead (c, p) -> Thm.by ctx (Rules.Hv_read c) [ hv ctx p ]
  | _ when not (E.reads_concrete_heap e) -> Thm.by ctx (Rules.Hv_id e) []
  (* Short-circuit connectives weaken the right operand's validity
     obligations by the left operand's value (cf. the translation's
     conditional guards). *)
  | E.Binop (((E.And | E.Or) as op), a, b) ->
    Thm.by ctx (Rules.Hv_shortcircuit op) [ hv ctx a; hv ctx b ]
  | E.Ite (c, a, b) -> Thm.by ctx Rules.Hv_ite [ hv ctx c; hv ctx a; hv ctx b ]
  | _ -> Thm.by ctx (Rules.Hv_node e) (List.map (hv ctx) (E.children e))

(* Statement abstraction (abs_h_stmt). *)
let rec hs (ctx : Rules.ctx) (m : M.t) : Thm.t =
  match m with
  | M.Return e -> Thm.by ctx Rules.Hs_ret [ hv ctx e ]
  | M.Gets e -> Thm.by ctx Rules.Hs_gets [ hv ctx e ]
  | M.Guard (Ir.Ptr_valid, E.Binop (E.And, E.PtrAligned (c, p), E.PtrSpan (c', p')))
    when Ty.cty_equal c c' && E.equal p p' ->
    Thm.by ctx (Rules.Hs_guard_ptr c) [ hv ctx p ]
  | M.Guard (k, g) ->
    let g' = Rules.strengthen_positive g in
    if E.equal g' g then Thm.by ctx (Rules.Hs_guard k) [ hv ctx g ]
    else Thm.by ctx (Rules.Hs_guard_strengthen k) [ hv ctx g' ]
  | M.Modify [ M.Heap_write (_, E.FieldAddr (sname, fname, p), v) ] ->
    Thm.by ctx (Rules.Hs_write_field (sname, fname)) [ hv ctx p; hv ctx v ]
  | M.Modify [ M.Heap_write (c, p, v) ] -> Thm.by ctx (Rules.Hs_write c) [ hv ctx p; hv ctx v ]
  | M.Modify sms ->
    if List.exists (function M.Retype _ -> true | _ -> false) sms then
      raise (Not_liftable "retype in heap-lifted code")
    else begin
      let prems =
        List.map
          (function
            | M.Global_set (_, e) | M.Local_set (_, e) -> hv ctx e
            | M.Heap_write _ | M.Typed_write _ | M.Retype _ ->
              raise (Not_liftable "compound heap modify"))
          sms
      in
      Thm.by ctx (Rules.Hs_modify sms) prems
    end
  | M.Fail -> Thm.by ctx Rules.Hs_fail []
  | M.Unknown t -> Thm.by ctx (Rules.Hs_unknown t) []
  | M.Throw e -> Thm.by ctx Rules.Hs_throw [ hv ctx e ]
  | M.Bind (a, p, b) -> Thm.by ctx (Rules.Hs_bind p) [ hs ctx a; hs ctx b ]
  | M.Try (a, p, h) -> Thm.by ctx (Rules.Hs_try p) [ hs ctx a; hs ctx h ]
  | M.Cond (c, a, b) -> Thm.by ctx Rules.Hs_cond [ hv ctx c; hs ctx a; hs ctx b ]
  | M.While (p, c, body, init) ->
    Thm.by ctx (Rules.Hs_while p) [ hv ctx init; hv ctx c; hs ctx body ]
  | M.Call (f, args) ->
    let prems = List.map (hv ctx) args in
    if List.mem f ctx.Rules.lifted then Thm.by ctx (Rules.Hs_call f) prems
    else Thm.by ctx (Rules.Hs_call_concrete f) prems
  | M.Exec_concrete _ -> raise (Not_liftable "exec_concrete below heap abstraction")

(* Abstract one function, then run the certified clean-up (de-duplicating
   and discharging the freshly introduced validity guards). *)
(* Returns the function plus the derivation steps: the abs_h_stmt theorem
   and the clean-up equivalence, chained by the driver into the
   per-function refinement theorem. *)
let convert_func ?(polish = true) (ctx : Rules.ctx) (f : M.func) : M.func * Thm.t list =
  let thm = hs ctx f.M.body in
  let abs = abs_of_stmt thm in
  let final_abs, cleaned =
    if polish then begin
      let cleaned = Rewrite.normalize ctx abs in
      (Rewrite.abs_of cleaned, cleaned)
    end
    else (abs, Thm.by ctx (Ac_kernel.Rules.Eq_refl abs) [])
  in
  ( { f with M.body = final_abs; heap_model = M.Typed_split },
    if M.equal final_abs abs then [ thm ] else [ thm; cleaned ] )

(* The split heaps required by a set of lifted functions: every C type the
   code reads or writes through the heap (paper Sec 4.4). *)
let heap_types_of_func (f : M.func) : Ty.cty list =
  let acc = ref [] in
  let add c = if not (List.exists (Ty.cty_equal c) !acc) then acc := c :: !acc in
  let scan_expr e =
    let rec go e =
      (match e with
      | E.HeapRead (c, _) | E.TypedRead (c, _) | E.IsValid (c, _)
      | E.PtrAligned (c, _) | E.PtrSpan (c, _) ->
        add c
      | E.FieldAddr (sname, _, _) -> add (Ty.Cstruct sname)
      | _ -> ());
      List.iter go (E.children e)
    in
    go e
  in
  M.iter_exprs scan_expr f.M.body;
  let rec scan_writes m =
    match m with
    | M.Modify sms ->
      List.iter
        (function
          | M.Heap_write (c, _, _) | M.Typed_write (c, _, _) | M.Retype (c, _) -> add c
          | M.Global_set _ | M.Local_set _ -> ())
        sms
    | M.Bind (a, _, b) | M.Try (a, _, b) ->
      scan_writes a;
      scan_writes b
    | M.Cond (_, a, b) ->
      scan_writes a;
      scan_writes b
    | M.While (_, _, body, _) -> scan_writes body
    | _ -> ()
  in
  scan_writes f.M.body;
  List.rev !acc
