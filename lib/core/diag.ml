module Ast = Ac_cfront.Ast

(* Structured diagnostics for the pipeline's failure model.

   Every phase boundary reports failures as a value of type [t] instead of
   a stringly exception: which phase failed, in which function, where in
   the source (when the front end recorded a position), how severe it is,
   and whether the pipeline degraded past it ([recoverable = true]) or had
   to give the function up.  The driver collects these per function; the
   CLI renders them compiler-style ([file:line:col: severity: ...]) or as
   machine-readable JSON ([--diag-json]).

   The failure model (DESIGN.md "Failure model and degradation ladder"):
   a diagnostic never aborts the translation unit.  In [keep_going] mode
   the function that produced it falls back to its last certified level
   (WA -> HL -> L2 -> L1 -> Simpl); in fail-fast mode the driver raises
   [Error] carrying the same structured value, so even fatal paths present
   one uniform shape to callers. *)

type phase =
  | Parse
  | Typecheck
  | Simpl
  | L1
  | L2
  | Polish
  | Guard_discharge
  | Heap_abs
  | Word_abs
  | Chain
  | Check
  | Budget
  | Store

type severity = Error | Warning | Note

type t = {
  d_phase : phase;
  d_func : string option;  (* None: a unit-level diagnostic *)
  d_pos : Ast.pos option;
  d_severity : severity;
  d_recoverable : bool;  (* did the pipeline degrade and continue? *)
  d_msg : string;
}

exception Error of t

let make ?func ?pos ?(severity : severity = Error) ?(recoverable = false) phase msg =
  { d_phase = phase; d_func = func; d_pos = pos; d_severity = severity;
    d_recoverable = recoverable; d_msg = msg }

let phase_name = function
  | Parse -> "parse"
  | Typecheck -> "typecheck"
  | Simpl -> "simpl"
  | L1 -> "l1"
  | L2 -> "l2"
  | Polish -> "polish"
  | Guard_discharge -> "guard-discharge"
  | Heap_abs -> "heap-abstraction"
  | Word_abs -> "word-abstraction"
  | Chain -> "chain"
  | Check -> "check"
  | Budget -> "budget"
  | Store -> "store"

let severity_name (s : severity) =
  match s with Error -> "error" | Warning -> "warning" | Note -> "note"

(* Classify an arbitrary exception escaping a phase.  Structured phase
   exceptions keep their message; anything else is a tagged internal error
   (an invariant violation, not a property of the input). *)
let message_of_exn (e : exn) : string =
  match e with
  | Ac_kernel.Thm.Kernel_error m -> m
  | Ac_kernel.Lift.Lift_failure m -> "local-variable lifting: " ^ m
  | Invalid_argument m | Failure m -> "internal error: " ^ m
  | Stack_overflow -> "internal error: stack overflow (diverging rewrite?)"
  | Out_of_memory -> "internal error: out of memory"
  | e -> "internal error: " ^ Printexc.to_string e

let to_string ?file (d : t) : string =
  let where =
    match (file, d.d_pos) with
    | Some f, Some p -> Printf.sprintf "%s:%d:%d: " f p.Ast.line p.Ast.col
    | Some f, None -> f ^ ": "
    | None, Some p -> Printf.sprintf "%d:%d: " p.Ast.line p.Ast.col
    | None, None -> ""
  in
  let ctx = match d.d_func with Some f -> Printf.sprintf " (in %s)" f | None -> "" in
  Printf.sprintf "%s%s: [%s] %s%s%s" where (severity_name d.d_severity)
    (phase_name d.d_phase) d.d_msg ctx
    (if d.d_recoverable then " [degraded]" else "")

(* ------------------------------------------------------------------ *)
(* JSON rendering, dependency-free. *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (d : t) : string =
  let fields =
    [ Some (Printf.sprintf "\"phase\":\"%s\"" (phase_name d.d_phase));
      Option.map (fun f -> Printf.sprintf "\"function\":\"%s\"" (json_escape f)) d.d_func;
      Option.map
        (fun (p : Ast.pos) -> Printf.sprintf "\"line\":%d,\"col\":%d" p.Ast.line p.Ast.col)
        d.d_pos;
      Some (Printf.sprintf "\"severity\":\"%s\"" (severity_name d.d_severity));
      Some (Printf.sprintf "\"recoverable\":%b" d.d_recoverable);
      Some (Printf.sprintf "\"message\":\"%s\"" (json_escape d.d_msg)) ]
  in
  "{" ^ String.concat "," (List.filter_map Fun.id fields) ^ "}"

let list_to_json (ds : t list) : string =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"
