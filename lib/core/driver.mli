(** The AutoCorres driver: the library's main entry point.

    [run] executes the full pipeline of the paper's Fig 1 over a C source
    string — parsing, conservative Simpl translation, L1 monadic
    conversion, L2 control-flow simplification and local-variable lifting,
    heap abstraction (Sec 4) and word abstraction (Sec 3) — and returns
    every intermediate representation together with kernel theorems
    connecting them, culminating in one end-to-end refinement theorem per
    function. *)

module Ty = Ac_lang.Ty
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm

(** Per-function abstraction switches (paper Secs 3.2 and 4.6). *)
type func_options = {
  word_abs : bool;  (** abstract machine words to ideal ℕ/ℤ *)
  heap_abs : bool;  (** lift the byte heap to typed split heaps *)
  discharge_guards : bool;
      (** statically remove provably-true UB guards: an untrusted
          abstract-interpretation pass ({!Ac_analysis}) proposes loop
          invariants, and the kernel re-checks them when applying
          [Rule_guard_true], so every discharge is certificate-checked *)
}

val default_func_options : func_options

type options = {
  defaults : func_options;
  overrides : (string * func_options) list;  (** per-function exceptions *)
  strategy : Wa.strategy;  (** word-abstraction rule-set extensions (Sec 3.3) *)
  polish : bool;
      (** run the certified clean-up rewrites; disable only for ablation *)
}

val default_options : options

(** Everything the pipeline produced for one function. *)
type func_result = {
  fr_name : string;
  fr_simpl : Ir.func;  (** the C parser's Simpl translation *)
  fr_l1 : M.func;  (** after monadic conversion *)
  fr_l1_thm : Thm.t;  (** [Corres_l1] for the L1 image *)
  fr_l2 : M.func;  (** after flow simplification + local lifting *)
  fr_l2_thm : Thm.t;  (** L1 ≡ L2 equivalence *)
  fr_hl : M.func option;  (** after heap abstraction, when selected *)
  fr_hl_thm : Thm.t option;  (** the [Abs_h_stmt] step *)
  fr_hl_thms : Thm.t list;
  fr_wa : M.func option;  (** after word abstraction, when selected *)
  fr_wa_thm : Thm.t option;  (** the [Abs_w_stmt] step *)
  fr_wa_thms : Thm.t list;
  fr_chain : Thm.t option;
      (** the end-to-end [Fn_refines] theorem: the final output refines the
          Simpl input through every phase *)
  fr_final : M.func;  (** what the verification engineer reasons about *)
  fr_skipped : (string * string) list;
      (** phases that fell back (phase, reason), e.g. type-unsafe code that
          could not be heap-lifted *)
}

type result = {
  source : string;
  simpl : Ir.program;
  l1_prog : M.program;
  final_prog : M.program;
  funcs : func_result list;
  ctx : Rules.ctx;  (** the kernel context the derivations live in *)
  heap_types : Ty.cty list;  (** the split heaps of the abstract state *)
}

val options_for : options -> string -> func_options
val find_result : result -> string -> func_result option

(** Run the pipeline on a C source string.
    @raise Ac_cfront.Typecheck.Type_error or {!Ac_cfront.Parser.Parse_error}
    on inputs outside the supported subset. *)
val run : ?options:options -> string -> result

(** Independently re-validate every derivation the pipeline produced
    (including the per-function end-to-end chains). *)
val check_all : result -> (unit, string) Result.t
