(** The AutoCorres driver: the library's main entry point.

    [run] executes the full pipeline of the paper's Fig 1 over a C source
    string — parsing, conservative Simpl translation, L1 monadic
    conversion, L2 control-flow simplification and local-variable lifting,
    heap abstraction (Sec 4) and word abstraction (Sec 3) — and returns
    every intermediate representation together with kernel theorems
    connecting them, culminating in one end-to-end refinement theorem per
    function.

    The pipeline is fault-isolated: each phase runs per function, and a
    failure degrades that function to its last certified level (the
    degradation ladder WA → HL → L2 → L1 → Simpl-only) while the rest of
    the unit completes.  With {!options.keep_going} off (the default),
    non-recoverable per-function failures raise {!Diag.Error} instead. *)

module Ty = Ac_lang.Ty
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm

(** Per-function abstraction switches (paper Secs 3.2 and 4.6). *)
type func_options = {
  word_abs : bool;  (** abstract machine words to ideal ℕ/ℤ *)
  heap_abs : bool;  (** lift the byte heap to typed split heaps *)
  discharge_guards : bool;
      (** statically remove provably-true UB guards: an untrusted
          abstract-interpretation pass ({!Ac_analysis}) proposes loop
          invariants, and the kernel re-checks them when applying
          [Rule_guard_true], so every discharge is certificate-checked *)
}

val default_func_options : func_options

(** Resource budgets for the unbounded engines the pipeline embeds.
    Exhaustion degrades the result (guards kept, rewriting stopped,
    proof left open) instead of hanging; it is counted in
    {!result.budget_hits} and never costs soundness. *)
type budgets = {
  solver_branches : int;  (** tableau branches per prover goal *)
  solver_deadline_s : float option;  (** wall clock per prover goal *)
  cc_merges : int;  (** congruence-closure unions per closure instance *)
  analysis_rounds : int;  (** widen/join rounds per loop *)
  analysis_steps : int;  (** fixpoint iterations per analysed function *)
  analysis_deadline_s : float option;  (** wall clock per analysed function *)
  rewrite_fuel : int;  (** head rewrites per kernel normalize call *)
  summary_rounds : int;
      (** interprocedural context-refinement rounds (whole-program
          bottom-up passes of the summary engine) *)
  summary_contexts : int;
      (** refined summary contexts per callee, beyond the base
          ⊤-arguments context *)
}

val default_budgets : budgets

type options = {
  defaults : func_options;
  overrides : (string * func_options) list;  (** per-function exceptions *)
  strategy : Wa.strategy;  (** word-abstraction rule-set extensions (Sec 3.3) *)
  polish : bool;
      (** run the certified clean-up rewrites; disable only for ablation *)
  keep_going : bool;
      (** degrade failing functions to their last certified level and keep
          translating the rest of the unit; off: raise {!Diag.Error} at the
          first non-recoverable per-function failure *)
  budgets : budgets;
  jobs : int;
      (** worker domains for the per-function phases (the calling domain
          counts; 1 = sequential; capped at the hardware's
          [Domain.recommended_domain_count]).  Any value produces identical
          output: {!Pool.map_on} preserves input order and first-failure
          semantics, engine counters are atomic, and per-goal state is
          domain-local *)
  l2_memo : bool;
      (** reuse L2 conversions across nothrow-fixpoint rounds when the
          function's observable environment (the nothrow status of its own
          callees) is unchanged.  A/B switch for benchmarking — off
          re-converts every function every round; output is identical
          either way *)
  interproc : bool;
      (** interprocedural guard discharge (default on): compute
          kernel-checkable per-function summaries bottom-up over the call
          graph and let guard discharge carry facts across calls; off
          reproduces the purely intraprocedural pass exactly *)
  summary_profile : bool;
      (** also measure {!result.iprof}, the per-function intra-vs-inter
          discharge attribution behind [acc stats --profile].  Costs two
          extra analysis passes per function, so it is off by default and
          never part of the store key (it cannot change any output) *)
}

val default_options : options

(** The degradation ladder: the last certified level a function reached. *)
type level = Lsimpl | Ll1 | Ll2 | Lhl | Lwa

val level_name : level -> string

(** Everything the pipeline produced for one function. *)
type func_result = {
  fr_name : string;
  fr_simpl : Ir.func;  (** the C parser's Simpl translation *)
  fr_l1 : M.func;  (** after monadic conversion *)
  fr_l1_thm : Thm.t;  (** [Corres_l1] for the L1 image *)
  fr_l2 : M.func;  (** after flow simplification + local lifting *)
  fr_l2_thm : Thm.t;  (** L1 ≡ L2 equivalence *)
  fr_hl : M.func option;  (** after heap abstraction, when selected *)
  fr_hl_thm : Thm.t option;  (** the [Abs_h_stmt] step *)
  fr_hl_thms : Thm.t list;
  fr_wa : M.func option;  (** after word abstraction, when selected *)
  fr_wa_thm : Thm.t option;  (** the [Abs_w_stmt] step *)
  fr_wa_thms : Thm.t list;
  fr_wa_wvars : (string * (Ty.sign * Ty.width)) list;
      (** the word-abstraction variable registration the W_* derivations and
          the chain were built under ([check_all] audits them under [ctx]
          extended with exactly this) *)
  fr_chain : Thm.t option;
      (** the end-to-end [Fn_refines] theorem: the final output refines the
          Simpl input through every phase *)
  fr_final : M.func;  (** what the verification engineer reasons about *)
  fr_skipped : (string * string) list;
      (** phases that fell back (phase, reason), e.g. type-unsafe code that
          could not be heap-lifted *)
  fr_diags : Diag.t list;  (** structured diagnostics for this function *)
}

(** A function that could not be carried past L1: it keeps whatever was
    certified (the Simpl image always; the L1 image and its [Corres_l1]
    theorem when monadic conversion succeeded). *)
type degraded = {
  dg_name : string;
  dg_simpl : Ir.func;
  dg_l1 : (M.func * Thm.t) option;
  dg_diags : Diag.t list;
}

(** The highest certified level of a fully-translated function ([Ll2],
    [Lhl] or [Lwa], by which abstractions applied). *)
val level_of : func_result -> level

(** [Ll1] or [Lsimpl]. *)
val degraded_level : degraded -> level

(** Per-function interprocedural-analysis profile (surfaced by
    `acc stats --profile`): summary contexts and their total abstract
    size, plus how many of the function's guards the analysis proves
    without ([ip_intra]) and with ([ip_inter]) the summary table.  Pure
    analysis verdicts — kernel-checked discharge can only be lower. *)
type iprof = {
  ip_contexts : int;
  ip_size : int;
  ip_intra : int;
  ip_inter : int;
}

type result = {
  source : string;
  simpl : Ir.program;
  l1_prog : M.program;
  final_prog : M.program;
  funcs : func_result list;
  degraded : degraded list;
      (** functions that fell below L2 (only with [keep_going]); they are
          excluded from [l1_prog]/[final_prog] *)
  diags : Diag.t list;  (** every diagnostic collected during the run *)
  budget_hits : int;  (** budget exhaustions during this run *)
  ctx : Rules.ctx;  (** the kernel context the derivations live in *)
  heap_types : Ty.cty list;  (** the split heaps of the abstract state *)
  store_hits : int;
      (** proof-store entries this run replayed instead of re-translating
          (0 when no store was supplied) *)
  store_misses : int;
      (** functions translated from scratch despite a store (includes
          entries demoted after failing replay or validation) *)
  retries : int;
      (** pool items lost to worker-domain crashes and re-attempted by the
          supervisor during this run *)
  quarantined : int;
      (** items that kept crashing workers and were re-run in-process with
          fault injection masked *)
  restarts : int;  (** worker domains respawned during this run *)
  sums : Ac_kernel.Absdom.sums;
      (** the kernel-checkable summary table this run's certificates drew
          from ([] when {!options.interproc} is off); `acc analyze`
          reuses it to classify residual guards *)
  iprof : (string * iprof) list;  (** per function, source order *)
}

val options_for : options -> string -> func_options
val find_result : result -> string -> func_result option
val all_diags : result -> Diag.t list

(** The function a phase is currently processing, if any.  The
    fault-injection harness reads this to target failures at a single
    function. *)
val processing : unit -> string option

(** Total budget exhaustions since the last {!run} started (solver +
    analysis + rewrite engines). *)
val budget_exhaustions : unit -> int

(** Run the pipeline on a C source string.

    [store] makes the run incremental: each function's content key (its
    preprocessed source, the keys of its transitive callees, the option
    vector, the ruleset tag) is looked up in the persistent proof store;
    a hit replays the stored derivation trace through the kernel instead
    of re-translating, so editing one function re-translates only the
    functions whose call cone contains it.  The store sits outside the
    TCB: every theorem in the result is minted by [Thm.by] either during
    translation or during replay, and a stale/corrupt/forged entry fails
    replay (or its anchor checks against the freshly parsed source) and
    falls back to full translation with a [Diag.Store] warning.  Runs
    with custom word-abstraction rules ignore the store (closures have no
    stable content key).

    [pool] supplies an external worker pool, used as-is and left running
    (the batch server amortises domain spawn across requests); without it
    the run creates and tears down its own pool when [options.jobs > 1].

    [supervisor] supplies the supervisor that oversees the pool maps
    (crash retry, worker respawn, quarantine — see {!Supervisor}); a
    batch server passes its own so retry/quarantine counters accumulate
    across requests.  Without it the run creates a fresh one, whose
    per-run deltas surface as {!result.retries} / [quarantined] /
    [restarts].

    [fresh_tables] (default [true]) clears the hash-consing intern tables
    at the start of the run; a batch server passes [false] to keep them
    warm across requests.

    @raise Ac_cfront.Typecheck.Type_error or {!Ac_cfront.Parser.Parse_error}
    on inputs outside the supported subset.
    @raise Diag.Error on a non-recoverable per-function failure when
    [keep_going] is off. *)
val run :
  ?options:options ->
  ?store:Ac_store.Store.t ->
  ?pool:Pool.t ->
  ?supervisor:Supervisor.t ->
  ?fresh_tables:bool ->
  string ->
  result

(** Independently re-validate every derivation the pipeline produced
    (including the per-function end-to-end chains and the L1 theorems of
    degraded functions).  [cached] (the default) memoizes the walk on
    physical node identity via {!Check_cache}, so derivation DAGs shared
    between a function's component theorems and its end-to-end chain are
    re-inferred once; [~cached:false] re-walks every occurrence with the
    kernel's own [Thm.check].  Both modes accept and reject exactly the
    same derivations — the cache sits outside the trusted core and cannot
    mint a theorem. *)
val check_all : ?cached:bool -> result -> (unit, string) Result.t
