(* Configurable fault injection for the long-running service path.

   PR 2 gave the kernel, solver and analysis test-only fault hooks; this
   module grows them into an operator-facing harness: a parseable spec
   (`ACC_FAULTS` / `--inject`, e.g. "io_error:0.05,worker_crash:0.02")
   drives a deterministic seeded RNG threaded through store I/O, pool
   task dispatch, and serve request handling.

   Determinism matters more than statistical quality here: a CI failure
   under "io_error:0.05,seed:42" must reproduce byte-for-byte, so each
   decision hashes (seed, global decision counter) rather than consuming
   a shared mutable RNG stream whose interleaving would vary across
   domains.  The counter is a single atomic, so decision *indices* can
   still interleave across domains — but every index yields the same
   verdict for a given seed, and the properties we assert (byte-identical
   output when the run completes, structured degradation otherwise) are
   schedule-independent by design. *)

type kind = Io_error | Worker_crash | Slow

type config = {
  seed : int;
  io_error : float; (* per-I/O-attempt probability of a transient Sys_error *)
  worker_crash : float; (* per-task probability of a worker-domain crash *)
  slow : float; (* per-request probability of an injected stall *)
  slow_s : float; (* stall duration *)
}

let default = { seed = 0; io_error = 0.; worker_crash = 0.; slow = 0.; slow_s = 0.01 }

let state : config option Atomic.t = Atomic.make None
let tick = Atomic.make 0
let injected_io = Atomic.make 0
let injected_crash = Atomic.make 0
let injected_slow = Atomic.make 0

(* Quarantined tasks re-run with injection masked (the whole point of
   quarantine is to finish the work); the mask is per-domain state. *)
let masked_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let with_mask f =
  let old = Domain.DLS.get masked_key in
  Domain.DLS.set masked_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set masked_key old) f

let active () = Atomic.get state

let injected = function
  | Io_error -> Atomic.get injected_io
  | Worker_crash -> Atomic.get injected_crash
  | Slow -> Atomic.get injected_slow

(* A cheap integer mix (murmur-style finalizer) mapped into [0, 2^30). *)
let mix seed n =
  let h = ((seed + 0x9E37) * 0x9E3779B1) lxor ((n + 1) * 0x85EBCA6B) in
  let h = h lxor (h lsr 15) in
  let h = h * 0xC2B2AE35 in
  let h = h lxor (h lsr 13) in
  h land 0x3FFFFFFF

let rate_of cfg = function
  | Io_error -> cfg.io_error
  | Worker_crash -> cfg.worker_crash
  | Slow -> cfg.slow

let counter_of = function
  | Io_error -> injected_io
  | Worker_crash -> injected_crash
  | Slow -> injected_slow

(* Decide whether fault [k] fires at this decision point. *)
let fire (k : kind) : bool =
  match Atomic.get state with
  | None -> false
  | Some cfg ->
    if Domain.DLS.get masked_key then false
    else begin
      let rate = rate_of cfg k in
      if rate <= 0. then false
      else begin
        let n = Atomic.fetch_and_add tick 1 in
        let hit = float_of_int (mix cfg.seed n) < rate *. 1073741824. in
        if hit then Atomic.incr (counter_of k);
        hit
      end
    end

let injected_io_error_msg = "injected transient I/O fault"

let sleep_if_slow () =
  match Atomic.get state with
  | Some cfg when fire Slow -> Unix.sleepf cfg.slow_s
  | _ -> ()

let install (cfg : config) : unit =
  Atomic.set state (Some cfg);
  Atomic.set tick 0;
  Atomic.set injected_io 0;
  Atomic.set injected_crash 0;
  Atomic.set injected_slow 0;
  (* The store library sits below this one, so its injection point is a
     hook rather than a direct call. *)
  Ac_store.Store.set_io_hook
    (if cfg.io_error > 0. then
       Some (fun _op -> if fire Io_error then raise (Sys_error injected_io_error_msg))
     else None)

let clear () =
  Atomic.set state None;
  Ac_store.Store.set_io_hook None

(* Parse "io_error:0.05,worker_crash:0.02,slow:0.01,seed:42,slow_ms:20".
   Unknown names and malformed values are hard errors — a typo in a
   fault spec silently injecting nothing would defeat the soak. *)
let parse (spec : string) : (config, string) result =
  let clamp01 x = Float.max 0. (Float.min 1. x) in
  let parse_pair acc pair =
    match acc with
    | Error _ as e -> e
    | Ok cfg -> (
      match String.index_opt pair ':' with
      | None -> Error (Printf.sprintf "fault spec: expected name:value, got %S" pair)
      | Some i -> (
        let name = String.sub pair 0 i in
        let value = String.sub pair (i + 1) (String.length pair - i - 1) in
        let rate k =
          match float_of_string_opt value with
          | Some r -> Ok (k (clamp01 r))
          | None -> Error (Printf.sprintf "fault spec: bad rate %S for %s" value name)
        in
        match name with
        | "io_error" -> rate (fun r -> { cfg with io_error = r })
        | "worker_crash" -> rate (fun r -> { cfg with worker_crash = r })
        | "slow" -> rate (fun r -> { cfg with slow = r })
        | "seed" -> (
          match int_of_string_opt value with
          | Some s -> Ok { cfg with seed = s }
          | None -> Error (Printf.sprintf "fault spec: bad seed %S" value))
        | "slow_ms" -> (
          match int_of_string_opt value with
          | Some ms when ms >= 0 -> Ok { cfg with slow_s = float_of_int ms /. 1000. }
          | _ -> Error (Printf.sprintf "fault spec: bad slow_ms %S" value))
        | _ -> Error (Printf.sprintf "fault spec: unknown fault %S" name)))
  in
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map String.trim
  |> List.fold_left parse_pair (Ok default)
