(** A persistent domain-based worker pool.

    The driver creates one pool per run ([create]), pushes every
    per-function phase through [map_on] (or, supervised, through
    {!Supervisor.map} which uses [map_outcomes]), and tears the domains
    down with [shutdown].  This amortises domain-spawn cost across all
    phases of a run instead of paying it per phase. *)

exception Crash of string
(** A worker-domain death.  Raised by the fault-injection harness at
    task dispatch, or by a task that genuinely takes its domain down.
    Escaping a task on a worker domain kills that domain (the pool
    records it dead and survives); on the calling domain it is recorded
    without unwinding the caller. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (the domain calling
    [map_on] participates in every map, so [jobs] is the total
    parallelism).  [jobs <= 1] spawns no domains. *)

val shutdown : t -> unit
(** Stop and join all worker domains.  The pool must not be used after
    shutdown. *)

val crashes : t -> int
(** Worker domains lost to {!Crash} over the pool's lifetime. *)

val respawn : t -> int
(** Join dead worker domains and spawn replacements; returns the number
    replaced.  Call between maps (the supervisor does, after a map
    reports lost items). *)

type 'b outcome =
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace
  | Lost of string  (** a worker crashed while holding this item *)

val map_outcomes : t -> ('a -> 'b) -> 'a list -> 'b outcome array
(** The crash-aware primitive: apply [f] across the pool and report one
    outcome per item, in input order.  A worker crash never raises and
    never hangs the map — the affected item comes back [Lost] and the
    domain is recorded dead (see {!respawn}).  Ordinary exceptions from
    [f] come back [Failed] with their backtrace. *)

val map_on : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_on pool f xs] applies [f] to every element of [xs] across the
    pool's domains (plus the calling domain) and returns the results in
    input order.

    Deterministic failure semantics: if any application raises, the
    exception of the {e lowest-indexed} failing item is re-raised with
    its original backtrace — the same exception sequential evaluation
    would have surfaced first.  A lost item (worker crash) re-raises
    {!Crash}.  Callers that need per-item isolation must catch inside
    [f] (the driver's phase wrappers do); callers that need retry and
    quarantine use {!Supervisor.map}. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [map ~jobs f xs] is [List.map f xs] when
    [jobs <= 1] or [xs] has at most one element, otherwise it creates a
    throwaway pool, maps, and shuts it down.  Prefer [create]/[map_on]
    when several maps share the same pool. *)
