(** A persistent domain-based worker pool.

    The driver creates one pool per run ([create]), pushes every
    per-function phase through [map_on], and tears the domains down with
    [shutdown].  This amortises domain-spawn cost across all phases of a
    run instead of paying it per phase. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (the domain calling
    [map_on] participates in every map, so [jobs] is the total
    parallelism).  [jobs <= 1] spawns no domains. *)

val shutdown : t -> unit
(** Stop and join all worker domains.  The pool must not be used after
    shutdown. *)

val map_on : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_on pool f xs] applies [f] to every element of [xs] across the
    pool's domains (plus the calling domain) and returns the results in
    input order.

    Deterministic failure semantics: if any application raises, the
    exception of the {e lowest-indexed} failing item is re-raised with
    its original backtrace — the same exception sequential evaluation
    would have surfaced first.  Callers that need per-item isolation
    must catch inside [f] (the driver's phase wrappers do). *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [map ~jobs f xs] is [List.map f xs] when
    [jobs <= 1] or [xs] has at most one element, otherwise it creates a
    throwaway pool, maps, and shuts it down.  Prefer [create]/[map_on]
    when several maps share the same pool. *)
