module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module W = Ac_word
module B = Ac_bignum
module Value = Ac_lang.Value
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

(* Phase WA: word abstraction (paper Sec 3).

   Local variables and arguments of machine-word type become ideal naturals
   (unsigned) or integers (signed).  The strategy below drives the kernel's
   Table 3 rule set:

   - arithmetic whose operands abstract ideally becomes ideal arithmetic,
     with no-overflow preconditions collected and emitted as guards;
   - anything outside the ruleset falls back to re-concretisation
     (of_nat/of_int around the ideal variables), which is always sound;
   - users can extend the strategy with custom rules (Sec 3.3), e.g. for
     overflow-test idioms. *)

exception Not_abstractable of string

(* A user extension: tries to produce an Abs_w_val theorem for an
   expression; consulted before the built-in strategy. *)
type custom_value_rule = Rules.ctx -> E.t -> Thm.t option

let conv_of_sign = Rules.conv_of_sign

(* Lightweight type hint for concrete expressions, from annotations. *)
let rec ty_hint (e : E.t) : Ty.t option =
  match e with
  | E.Const v -> Some (Value.ty_of v)
  | E.Var (_, t) | E.Global (_, t) -> Some t
  | E.Unop (E.Not, _) -> Some Ty.Tbool
  | E.Unop (_, x) -> ty_hint x
  | E.Binop ((E.Eq | E.Ne | E.Lt | E.Le | E.Gt | E.Ge | E.And | E.Or | E.Imp), _, _) ->
    Some Ty.Tbool
  | E.Binop (_, x, y) -> ( match ty_hint x with Some t -> Some t | None -> ty_hint y)
  | E.Ite (_, x, y) -> ( match ty_hint x with Some t -> Some t | None -> ty_hint y)
  | E.Cast (t, _) | E.OfWord (t, _) -> Some t
  | E.HeapRead (c, _) | E.TypedRead (c, _) -> Some (Ty.of_cty c)
  | E.IsValid _ | E.PtrAligned _ | E.PtrSpan _ -> Some Ty.Tbool
  | E.PtrAdd (c, _, _) -> Some (Ty.Tptr c)
  | E.FieldAddr _ | E.StructGet _ | E.StructSet _ | E.Tuple _ | E.Proj _ -> None

let word_hint e =
  match ty_hint e with Some (Ty.Tword (s, w)) -> Some (s, w) | _ -> None

type strategy = { customs : custom_value_rule list }

let default_strategy = { customs = [] }

(* ------------------------------------------------------------------ *)
(* Value abstraction. *)

(* Ideal-route abstraction of a word-typed expression: produce a theorem
   with conv = unat/sint.  Fails (None) outside the ruleset. *)
let rec wv_ideal strat ctx (sign, w) (e : E.t) : Thm.t option =
  let custom =
    List.fold_left
      (fun acc rule ->
        match acc with
        | Some _ -> acc
        | None -> (
          match rule ctx e with
          | Some thm -> (
            match Thm.concl thm with
            | J.Abs_w_val (_, f, _, _) when J.conv_equal f (conv_of_sign sign w) -> Some thm
            | _ -> None)
          | None -> None))
      None strat.customs
  in
  match custom with
  | Some thm -> Some thm
  | None -> (
    match e with
    | E.Const (Value.Vword (s, word)) when s = sign && W.width_of word = w ->
      Thm.by_opt ctx (Rules.W_const (sign, w, W.unat word)) []
    | E.Var (x, Ty.Tword (s, w')) when s = sign && w' = w -> (
      match List.assoc_opt x ctx.Rules.wvars with
      | Some _ -> Thm.by_opt ctx (Rules.W_var x) []
      | None -> None)
    | E.Binop (((E.Add | E.Sub | E.Mul | E.Div | E.Rem) as op), a, b) -> (
      match (wv_ideal strat ctx (sign, w) a, wv_ideal strat ctx (sign, w) b) with
      | Some ta, Some tb -> Thm.by_opt ctx (Rules.W_binop (op, sign, w)) [ ta; tb ]
      | _ -> None)
    | E.Unop (E.Neg, a) when sign = Ty.Signed -> (
      match wv_ideal strat ctx (sign, w) a with
      | Some ta -> Thm.by_opt ctx (Rules.W_neg (sign, w)) [ ta ]
      | None -> None)
    | E.Ite (c, a, b) -> (
      let tc = wv_cid ~safe:true strat ctx c in
      match (wv_ideal strat ctx (sign, w) a, wv_ideal strat ctx (sign, w) b) with
      | Some ta, Some tb -> Thm.by_opt ctx Rules.W_ite [ tc; ta; tb ]
      | _ -> None)
    | _ -> None)

(* Cid abstraction: always succeeds.  [safe] avoids rules that introduce
   preconditions (used for loop conditions, which cannot be guarded). *)
and wv_cid ?(safe = false) strat ctx (e : E.t) : Thm.t =
  let custom =
    List.fold_left
      (fun acc rule ->
        match acc with
        | Some _ -> acc
        | None -> (
          match rule ctx e with
          | Some thm -> (
            match Thm.concl thm with
            | J.Abs_w_val (p, J.Cid, _, _) when (not safe) || E.equal p E.true_e -> Some thm
            | _ -> None)
          | None -> None))
      None strat.customs
  in
  match custom with
  | Some thm -> thm
  | None -> (
    if not (Rules.mentions_wvar ctx e) then Thm.by ctx (Rules.W_id e) []
    else begin
      match e with
      | E.Var (x, Ty.Tword (s, w)) when List.mem_assoc x ctx.Rules.wvars ->
        Thm.by ctx (Rules.W_recon (s, w)) [ Thm.by ctx (Rules.W_var x) [] ]
      | E.OfWord (Ty.Tint, x) -> (
        match word_hint x with
        | Some (Ty.Signed, w) -> (
          match wv_ideal strat ctx (Ty.Signed, w) x with
          | Some t when (not safe) || precond_trivial t ->
            Thm.by ctx (Rules.W_unconv (Ty.Signed, w)) [ t ]
          | _ -> node_fallback ~safe strat ctx e)
        | _ -> node_fallback ~safe strat ctx e)
      | E.OfWord (Ty.Tnat, x) -> (
        match word_hint x with
        | Some (Ty.Unsigned, w) -> (
          match wv_ideal strat ctx (Ty.Unsigned, w) x with
          | Some t when (not safe) || precond_trivial t ->
            Thm.by ctx (Rules.W_unconv (Ty.Unsigned, w)) [ t ]
          | _ -> node_fallback ~safe strat ctx e)
        | _ -> node_fallback ~safe strat ctx e)
      | E.Binop (((E.Lt | E.Le | E.Gt | E.Ge | E.Eq | E.Ne) as op), a, b) -> (
        (* Prefer the ideal comparison when both operands lift. *)
        match word_hint a with
        | Some (s, w) -> (
          match (wv_ideal strat ctx (s, w) a, wv_ideal strat ctx (s, w) b) with
          | Some ta, Some tb -> (
            match Thm.by_opt ctx (Rules.W_binop (op, s, w)) [ ta; tb ] with
            | Some t when (not safe) || precond_trivial t -> t
            | _ -> node_fallback ~safe strat ctx e)
          | _ -> node_fallback ~safe strat ctx e)
        | None -> node_fallback ~safe strat ctx e)
      | _ -> node_fallback ~safe strat ctx e
    end)

and precond_trivial (t : Thm.t) =
  match Thm.concl t with
  | J.Abs_w_val (p, _, _, _) -> E.equal p E.true_e
  | _ -> false

and node_fallback ~safe strat ctx (e : E.t) : Thm.t =
  match e with
  | E.Var (x, _) when List.mem_assoc x ctx.Rules.wvars -> (
    match List.assoc_opt x ctx.Rules.wvars with
    | Some (s, w) -> Thm.by ctx (Rules.W_recon (s, w)) [ Thm.by ctx (Rules.W_var x) [] ]
    | None -> assert false)
  | E.Binop (((E.And | E.Or) as op), a, b) when not safe ->
    Thm.by ctx (Rules.W_shortcircuit op)
      [ wv_cid ~safe strat ctx a; wv_cid ~safe strat ctx b ]
  | _ ->
    Thm.by ctx (Rules.W_node e) (List.map (wv_cid ~safe strat ctx) (E.children e))

(* Abstraction at a target conv. *)
let rec wv strat ctx (want : J.conv) (e : E.t) : Thm.t =
  match want with
  | J.Cid -> wv_cid strat ctx e
  | J.Cunat w -> (
    match wv_ideal strat ctx (Ty.Unsigned, w) e with
    | Some t -> t
    | None -> Thm.by ctx (Rules.W_abs_any (Ty.Unsigned, w)) [ wv_cid strat ctx e ])
  | J.Csint w -> (
    match wv_ideal strat ctx (Ty.Signed, w) e with
    | Some t -> t
    | None -> Thm.by ctx (Rules.W_abs_any (Ty.Signed, w)) [ wv_cid strat ctx e ])
  | J.Ctuple cs -> (
    match e with
    | E.Tuple es when List.length es = List.length cs ->
      Thm.by ctx Rules.W_tuple (List.map2 (wv strat ctx) cs es)
    | E.Ite (c, a, b) ->
      (* distribute the tuple conv over the conditional *)
      Thm.by ctx Rules.W_ite
        [ wv_cid strat ctx c; wv strat ctx want a; wv strat ctx want b ]
    | _ when cs = [] -> Thm.by ctx Rules.W_tuple []
    | _ -> (
      match cs with
      | [ c1 ] -> wv strat ctx c1 e
      | _ ->
        raise
          (Not_abstractable
             (Format.asprintf "tuple-conv (%d comps: %a) of expression: %a" (List.length cs)
                (Format.pp_print_list J.pp_conv) cs
                (Ac_lang.Pretty.pp_expr ~ctx:0) e))))

(* ------------------------------------------------------------------ *)
(* Statement abstraction.  Always returns a theorem with trivial
   precondition (guards are prepended by the kernel's wrap rule). *)

let wrap ctx (t : Thm.t) : Thm.t =
  match Thm.concl t with
  | J.Abs_w_stmt (p, _, _, _, _) when E.equal p E.true_e -> t
  | J.Abs_w_stmt _ -> Thm.by ctx Rules.Ws_wrap_guard [ t ]
  | _ -> invalid_arg "Wa.wrap"

let rec ws strat ctx (want : J.conv) (m : M.t) : Thm.t =
  match m with
  | M.Return e -> wrap ctx (Thm.by ctx Rules.Ws_ret [ wv strat ctx want e ])
  | M.Gets e -> wrap ctx (Thm.by ctx Rules.Ws_gets [ wv strat ctx want e ])
  | M.Guard (k, g) -> wrap ctx (Thm.by ctx (Rules.Ws_guard k) [ wv_cid strat ctx g ])
  | M.Modify sms ->
    let prems =
      List.concat_map
        (function
          | M.Heap_write (_, p, v) | M.Typed_write (_, p, v) ->
            [ wv_cid strat ctx p; wv_cid strat ctx v ]
          | M.Global_set (_, e) | M.Local_set (_, e) | M.Retype (_, e) ->
            [ wv_cid strat ctx e ])
        sms
    in
    wrap ctx (Thm.by ctx (Rules.Ws_modify sms) prems)
  | M.Fail -> Thm.by ctx (Rules.Ws_fail (want, J.Cid)) []
  | M.Unknown t -> Thm.by ctx (Rules.Ws_unknown t) []
  | M.Throw e ->
    (* the exception conv mirrors the registration of the carried locals *)
    let ex_conv = throw_conv ctx e in
    wrap ctx (Thm.by ctx (Rules.Ws_throw want) [ wv strat ctx ex_conv e ])
  | M.Bind (a, p, b) ->
    let pconv = Rules.pat_conv ctx p in
    let ta = ws strat ctx pconv a in
    let tb = ws strat ctx want b in
    Thm.by ctx (Rules.Ws_bind p) [ ta; tb ]
  | M.Try (a, p, h) ->
    let ta = ws strat ctx want a in
    let th = ws strat ctx want h in
    Thm.by ctx (Rules.Ws_try p) [ ta; th ]
  | M.Cond (c, a, b) ->
    let tc = wv_cid strat ctx c in
    let ta = ws strat ctx want a in
    let tb = ws strat ctx want b in
    wrap ctx (Thm.by ctx Rules.Ws_cond [ tc; ta; tb ])
  | M.While (p, c, body, init) ->
    let iconv = Rules.pat_conv ctx p in
    let ti = wv strat ctx iconv init in
    let tc = wv_cid ~safe:true strat ctx c in
    let tb = ws strat ctx iconv body in
    wrap ctx (Thm.by ctx (Rules.Ws_while p) [ ti; tc; tb ])
  | M.Call (f, args) -> (
    match List.assoc_opt f ctx.Rules.fsigs with
    | None -> raise (Not_abstractable ("no word-abstraction signature for " ^ f))
    | Some (param_convs, _) ->
      let prems = List.map2 (wv strat ctx) param_convs args in
      wrap ctx (Thm.by ctx (Rules.Ws_call f) prems))
  | M.Exec_concrete (f, args) ->
    let prems = List.map (wv_cid strat ctx) args in
    wrap ctx (Thm.by ctx (Rules.Ws_exec_concrete f) prems)

(* The conv of a thrown (code, ret, locals...) tuple under the current
   registration. *)
and throw_conv ctx (e : E.t) : J.conv =
  match e with
  | E.Tuple es ->
    (* Every word-typed component is abstracted by its type, so that all
       throw sites and the catch pattern agree on one exception conv. *)
    J.Ctuple
      (List.map
         (fun el ->
           match word_hint el with
           | Some (s, w) -> conv_of_sign s w
           | None -> J.Cid)
         es)
  | _ -> J.Cid

(* ------------------------------------------------------------------ *)
(* Registration: which variables are abstracted. *)

(* Collect every word-typed binder of the function: parameters, bind
   patterns, loop iterators and catch patterns.  A name bound at two
   different word types is left unregistered (the re-concretisation
   fallback covers it). *)
let collect_wvars (fsigs : (string * (J.conv list * J.conv)) list) (f : M.func) :
    (string * (Ty.sign * Ty.width)) list =
  let table : (string, (Ty.sign * Ty.width) option) Hashtbl.t = Hashtbl.create 16 in
  let exclude x = Hashtbl.replace table x None in
  let note (x, (t : Ty.t)) =
    match t with
    | Ty.Tword (s, w) -> (
      match Hashtbl.find_opt table x with
      | None -> Hashtbl.replace table x (Some (s, w))
      | Some (Some (s', w')) when s = s' && w = w' -> ()
      | Some _ -> exclude x)
    | _ -> exclude x
  in
  List.iter note f.M.params;
  let rec scan m =
    match m with
    | M.Bind (a, p, b) ->
      (* Results of calls follow the callee's signature: variables bound to
         a non-abstracted result stay at the machine level. *)
      (match (a, p) with
      | (M.Call (g, _) | M.Exec_concrete (g, _)), M.Pvar (x, _) -> (
        match List.assoc_opt g fsigs with
        | Some (_, J.Cid) | None -> exclude x
        | Some _ -> List.iter note (M.pat_vars p))
      | _ -> List.iter note (M.pat_vars p));
      scan a;
      scan b
    | M.Try (a, p, b) ->
      List.iter note (M.pat_vars p);
      scan a;
      scan b
    | M.Cond (_, a, b) ->
      scan a;
      scan b
    | M.While (p, _, body, _) ->
      List.iter note (M.pat_vars p);
      scan body
    | _ -> ()
  in
  scan f.M.body;
  Hashtbl.fold (fun x v acc -> match v with Some sw -> (x, sw) :: acc | None -> acc) table []

(* The word-abstraction signature of a function: how its parameters and
   result abstract.  Functions not selected for WA keep Cid everywhere. *)
let func_sig ~enabled (f : M.func) : J.conv list * J.conv =
  if not enabled then (List.map (fun _ -> J.Cid) f.M.params, J.Cid)
  else begin
    let pconv (_, t) =
      match (t : Ty.t) with Ty.Tword (s, w) -> conv_of_sign s w | _ -> J.Cid
    in
    let rconv =
      match f.M.ret_ty with Ty.Tword (s, w) -> conv_of_sign s w | _ -> J.Cid
    in
    (List.map pconv f.M.params, rconv)
  end

(* Abstract one function. *)
(* Returns the function plus the derivation steps (abs_w_stmt, then the
   clean-up equivalence when it changed anything). *)
let convert_func ?(strategy = default_strategy) ?(polish = true) (ctx : Rules.ctx) (f : M.func) :
    M.func * Thm.t list =
  if f.M.convention <> M.Lambda_bound then invalid_arg "Wa.convert_func: not an L2+ function";
  let wvars = collect_wvars ctx.Rules.fsigs f in
  let ctx = { ctx with Rules.wvars } in
  let _, ret_conv =
    match List.assoc_opt f.M.name ctx.Rules.fsigs with
    | Some s -> s
    | None -> func_sig ~enabled:true f
  in
  let thm = ws strategy ctx ret_conv f.M.body in
  let abs =
    match Thm.concl thm with
    | J.Abs_w_stmt (_, _, _, a, _) -> a
    | _ -> assert false
  in
  (* Certified clean-up of the freshly introduced overflow guards. *)
  let cleaned =
    if polish then Rewrite.normalize ctx abs
    else Thm.by ctx (Rules.Eq_refl abs) []
  in
  let final = Rewrite.abs_of cleaned in
  let params =
    List.map
      (fun (x, t) ->
        match (t : Ty.t) with
        | Ty.Tword (s, _) when List.mem_assoc x wvars ->
          (x, Ty.ideal_of_word_sign s)
        | _ -> (x, t))
      f.M.params
  in
  let ret_ty =
    match (ret_conv, f.M.ret_ty) with
    | J.Cunat _, _ -> Ty.Tnat
    | J.Csint _, _ -> Ty.Tint
    | _, t -> t
  in
  ( { f with M.body = final; params; ret_ty },
    if M.equal final abs then [ thm ] else [ thm; cleaned ] )
