module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

(* The certified rewrite engine.

   Applies the kernel's equivalence rules bottom-up to a fixed point,
   composing the steps with transitivity and congruence, so the result is a
   single [Equiv (simplified, original)] theorem.  This engine drives the
   paper's L2 clean-up steps: plain translation artefacts, guard
   de-duplication and discharging, and exception-flow simplification. *)

let abs_of (thm : Thm.t) : M.t =
  match Thm.concl thm with
  | J.Equiv (a, _) -> a
  | _ -> invalid_arg "Rewrite.abs_of"

(* Equiv(b, m) ∘ Equiv(a, b) = Equiv(a, m). *)
let trans ctx (newer : Thm.t) (older : Thm.t) : Thm.t =
  Thm.by ctx Rules.Eq_trans [ newer; older ]

(* The head-rewrite table: candidate rules in priority order; the first one
   whose side conditions hold wins. *)
let head_rules (m : M.t) : Rules.rule list =
  let cond_rules =
    match m with
    | M.Cond (E.Const (Ac_lang.Value.Vbool true), a, b) -> [ Rules.Rw_cond_true (a, b) ]
    | M.Cond (E.Const (Ac_lang.Value.Vbool false), a, b) -> [ Rules.Rw_cond_false (a, b) ]
    | M.Cond (c, a, b) when M.equal a b -> [ Rules.Rw_cond_same (c, a) ]
    | M.Cond (c, ((M.Return _ | M.Gets _) as x), ((M.Return _ | M.Gets _) as y)) ->
      [ Rules.Rw_cond_return (c, x, y) ]
    | _ -> []
  in
  let bind_rules =
    match m with
    | M.Bind (M.Throw e, p, b) -> [ Rules.Rw_dead_after_throw (e, p, b) ]
    | M.Bind (M.Fail, p, b) -> [ Rules.Rw_dead_after_fail (p, b) ]
    | M.Bind ((M.Return e as a), p, b) -> [ Rules.Rw_return_bind (a, p, b) ]
    | M.Bind ((M.Gets e as a), p, b) when not (E.reads_state e) ->
      [ Rules.Rw_gets_bind (a, p, b) ]
    | _ -> []
  in
  let tail_rules =
    match m with
    | M.Bind (a, ((M.Pvar _ | M.Ptuple _) as p), M.Return e)
      when E.equal e (M.pat_expr p) ->
      [ Rules.Rw_bind_return (a, p) ]
    | _ -> []
  in
  let assoc_rules =
    match m with
    | M.Bind (M.Bind (a, p, b), q, c) -> [ Rules.Rw_bind_assoc (a, p, b, q, c) ]
    | _ -> []
  in
  let prune_rules =
    match m with
    | M.Bind (M.While ((M.Ptuple ips as ip), c, body, init), (M.Ptuple _ as qp), k) ->
      List.mapi (fun i _ -> Rules.Rw_prune_loop (i, ip, c, body, init, qp, k)) ips
    | _ -> []
  in
  let other =
    match m with
    | M.Gets e -> [ Rules.Rw_gets_pure e ]
    | M.Guard (k, E.Const (Ac_lang.Value.Vbool true)) -> [ Rules.Rw_guard_true k ]
    | M.Try (a, p, h) -> [ Rules.Rw_try_nothrow (a, p, h) ]
    | _ -> []
  in
  cond_rules @ bind_rules @ tail_rules @ prune_rules @ assoc_rules @ other

(* Inline only cheap expressions to avoid size blow-up (standard
   let-inlining heuristic); the kernel rule itself is indifferent. *)
let cheap e =
  match e with
  | E.Var _ | E.Const _ | E.Global _ | E.Tuple _ -> true
  | _ -> E.size e <= 8

let want_head_rewrite (m : M.t) =
  match m with
  | M.Bind (M.Return e, _, _) when not (cheap e) -> false
  | M.Bind (M.Gets e, M.Pvar (x, _), b) when not (cheap e) ->
    (* still inline single-use bindings *)
    let uses = ref 0 in
    M.iter_exprs
      (fun expr ->
        List.iter (fun v -> if String.equal v x then incr uses) (E.free_vars expr))
      b;
    !uses <= 1
  | _ -> true

(* Fuel budget: a cap on head rewrites per [normalize] call.  Running dry
   stops rewriting where it stands — the accumulated theorem is already a
   valid [Equiv], so exhaustion only costs polish, never soundness.  The
   default is far above anything the corpus needs; the driver installs the
   per-run value from [Driver.options.budgets]. *)
let default_fuel = 1_000_000
let fuel = ref default_fuel

(* How many [normalize] calls ran out of fuel (for `acc stats`).  Reset by
   the driver per run; atomic, workers rewrite concurrently. *)
let exhaustions = Atomic.make 0

let rec try_head (ctx : Rules.ctx) (m : M.t) : Thm.t option =
  if not (want_head_rewrite m) then None
  else
    List.fold_left
      (fun acc rule -> match acc with Some _ -> acc | None -> Thm.by_opt ctx rule [])
      None (head_rules m)

(* One bottom-up pass: normalise children via congruence, then rewrite the
   head to a fixed point.  [tank] is the remaining fuel for this
   [normalize] call. *)
let rec pass (ctx : Rules.ctx) (tank : int ref) (m : M.t) : Thm.t =
  let congr =
    match m with
    | M.Bind (a, p, b) -> Thm.by ctx (Rules.Eq_bind p) [ pass ctx tank a; pass ctx tank b ]
    | M.Try (a, p, b) -> Thm.by ctx (Rules.Eq_try p) [ pass ctx tank a; pass ctx tank b ]
    | M.Cond (c, a, b) -> Thm.by ctx (Rules.Eq_cond c) [ pass ctx tank a; pass ctx tank b ]
    | M.While (p, c, body, init) ->
      Thm.by ctx (Rules.Eq_while (p, c, init)) [ pass ctx tank body ]
    | _ -> Thm.by ctx (Rules.Eq_refl m) []
  in
  head_fix ctx tank congr

and head_fix ctx (tank : int ref) (thm : Thm.t) : Thm.t =
  if !tank <= 0 then thm
  else begin
    match try_head ctx (abs_of thm) with
    | Some step ->
      decr tank;
      head_fix ctx tank (trans ctx step thm)
    | None -> thm
  end

(* Normalise to a global fixed point (with the expression simplifier run
   between passes), bounded for safety by a pass limit and the fuel
   budget. *)
let normalize ?(max_passes = 12) (ctx : Rules.ctx) (m : M.t) : Thm.t =
  let tank = ref !fuel in
  let rec go n thm =
    if n >= max_passes || !tank <= 0 then thm
    else begin
      let before = abs_of thm in
      let simped = trans ctx (Thm.by ctx (Rules.Rw_simp before) []) thm in
      let discharged =
        trans ctx (Thm.by ctx (Rules.Rw_discharge (abs_of simped)) []) simped
      in
      let next = trans ctx (pass ctx tank (abs_of discharged)) discharged in
      if M.equal (abs_of next) before then next else go (n + 1) next
    end
  in
  let out = go 0 (Thm.by ctx (Rules.Eq_refl m) []) in
  if !tank <= 0 then Atomic.incr exhaustions;
  out
