module Rules = Ac_kernel.Rules
module Judgment = Ac_kernel.Judgment
module Thm = Ac_kernel.Thm

(* Memoized derivation checking.

   [Thm.check] re-walks the stored derivation tree and re-runs every
   inference.  Derivations are DAGs, not trees: the end-to-end [Fn_chain]
   theorem holds the per-phase theorems as premises, and the rewrite
   engine's transitivity spine shares sub-derivations liberally, so the
   same physical node is re-walked once per occurrence.  This module
   memoizes the walk on the *identity* of theorem nodes, which is sound
   because a [Thm.t] is immutable and, under one inference context,
   re-checking the same node always yields the same verdict.

   Mechanism: every cache owns a private set of the [Thm.id]s (the
   kernel's read-only per-node key) that checked out Ok; a revisit is
   then one set lookup.  The set is open-addressing over a flat int
   array — ids are allocated densely, so [id land mask] spreads nearly
   collision-free and a lookup is typically a single array read, with
   capacity proportional to the nodes this cache actually verified (ids
   are process-wide and ever-growing, so anything indexed from 0 would
   pay for every theorem ever allocated).  Only successes are recorded —
   a failing node fails the whole audit immediately, so there is nothing
   to memoize.  The set is private to the cache value, so nothing
   outside this module can pre-seed it: the only way a node gets
   recorded is this module re-running its inference.

   Deliberately OUTSIDE the kernel (see DESIGN.md): a cache bug can only
   affect this module's answer — it cannot mint a theorem (the kernel
   exposes no constructor that bypasses [Rules.infer], and [Thm.id] is
   read-only), and the uncached [Thm.check] remains available as the
   ground truth (the test suite runs both on every corpus theorem).

   A cache is bound to the [Rules.ctx] it was created with, because the
   verdict of a node depends on the context ([wvars] for the W_* rules);
   callers create one cache per context and drop it when the run ends
   (per-run invalidation — the memo dies with the cache, so no verdict
   survives into a later run). *)

type t = {
  ctx : Rules.ctx;
  mutable slots : int array; (* -1 = empty; linear probing *)
  mutable mask : int; (* capacity - 1; capacity a power of two *)
  mutable count : int;
  mutable hits : int;
  mutable misses : int;
}

(* Small initial capacity: the driver creates one cache per function
   group, and most groups verify a few hundred nodes at most — growth
   doubles with rehash, so a large group amortizes to O(1) anyway. *)
let create (ctx : Rules.ctx) : t =
  { ctx; slots = Array.make 256 (-1); mask = 255; count = 0; hits = 0; misses = 0 }

let hits c = c.hits
let misses c = c.misses

let rec probe slots mask id i =
  let v = Array.unsafe_get slots i in
  if v = id then true else v >= 0 && probe slots mask id ((i + 1) land mask)

let seen c id = probe c.slots c.mask id (id land c.mask)

let rec insert slots mask id i =
  if Array.unsafe_get slots i >= 0 then insert slots mask id ((i + 1) land mask)
  else Array.unsafe_set slots i id

let record c id =
  (* Keep the load factor under 1/2 so probe chains stay short. *)
  if 2 * (c.count + 1) > c.mask + 1 then begin
    let mask' = (2 * (c.mask + 1)) - 1 in
    let slots' = Array.make (mask' + 1) (-1) in
    Array.iter (fun v -> if v >= 0 then insert slots' mask' v (v land mask')) c.slots;
    c.slots <- slots';
    c.mask <- mask'
  end;
  insert c.slots c.mask id (id land c.mask);
  c.count <- c.count + 1

let rec check (c : t) (thm : Thm.t) : (unit, string) result =
  let id = Thm.id thm in
  if seen c id then begin
    c.hits <- c.hits + 1;
    Result.ok ()
  end
  else begin
    c.misses <- c.misses + 1;
    match check_node c thm with
    | Result.Ok () as ok ->
      record c id;
      ok
    | Result.Error _ as e -> e
  end

and check_node c thm =
  let rec check_prems = function
    | [] -> Result.ok ()
    | p :: rest -> (
      match check c p with Result.Ok () -> check_prems rest | Result.Error _ as e -> e)
  in
  let prems = Thm.premises thm in
  match check_prems prems with
  | Result.Error _ as e -> e
  | Result.Ok () -> (
    match Rules.infer c.ctx (Thm.rule thm) (List.map Thm.concl prems) with
    | Result.Ok concl ->
      if Judgment.judgment_equal concl (Thm.concl thm) then Result.ok ()
      else Result.error ("conclusion mismatch at rule " ^ Thm.rule_name thm)
    | Result.Error msg -> Result.error (Thm.rule_name thm ^ ": " ^ msg))
