module Rules = Ac_kernel.Rules
module Judgment = Ac_kernel.Judgment
module Thm = Ac_kernel.Thm

(* Memoized derivation checking.

   [Thm.check] re-walks the stored derivation tree and re-runs every
   inference.  Derivations are DAGs, not trees: the end-to-end [Fn_chain]
   theorem holds the per-phase theorems as premises, and the rewrite
   engine's transitivity spine shares sub-derivations liberally, so the
   same physical node is re-walked once per occurrence.  This module
   memoizes the walk on the *physical identity* of theorem nodes, which is
   sound because a [Thm.t] is immutable and, under one inference context,
   re-checking the same node always yields the same verdict.

   Mechanism: every cache gets a process-unique generation number, and a
   node that checked out Ok is stamped with it ([Thm.set_mark]); a
   revisit is then a single integer compare, with no hashing and no
   allocation.  Only successes are stamped — a failing node fails the
   whole audit immediately, so there is nothing to memoize.

   Deliberately OUTSIDE the kernel (see DESIGN.md): a cache bug (or a
   forged mark) can only affect this module's answer — it cannot mint a
   theorem, and the uncached [Thm.check] remains available as the ground
   truth (the test suite runs both on every corpus theorem).

   A cache is bound to the [Rules.ctx] it was created with, because the
   verdict of a node depends on the context ([wvars] for the W_* rules);
   callers create one cache per context and drop it when the run ends
   (per-run invalidation — a fresh cache's generation matches no existing
   stamp). *)

(* Generation 0 is reserved: fresh theorem nodes carry mark 0. *)
let next_generation = Atomic.make 1

type t = {
  ctx : Rules.ctx;
  generation : int;
  mutable hits : int;
  mutable misses : int;
}

let create (ctx : Rules.ctx) : t =
  { ctx; generation = Atomic.fetch_and_add next_generation 1; hits = 0; misses = 0 }

let hits c = c.hits
let misses c = c.misses

let rec check (c : t) (thm : Thm.t) : (unit, string) result =
  if Thm.mark thm = c.generation then begin
    c.hits <- c.hits + 1;
    Result.ok ()
  end
  else begin
    c.misses <- c.misses + 1;
    match check_node c thm with
    | Result.Ok () as ok ->
      Thm.set_mark thm c.generation;
      ok
    | Result.Error _ as e -> e
  end

and check_node c thm =
  let rec check_prems = function
    | [] -> Result.ok ()
    | p :: rest -> (
      match check c p with Result.Ok () -> check_prems rest | Result.Error _ as e -> e)
  in
  let prems = Thm.premises thm in
  match check_prems prems with
  | Result.Error _ as e -> e
  | Result.Ok () -> (
    match Rules.infer c.ctx (Thm.rule thm) (List.map Thm.concl prems) with
    | Result.Ok concl ->
      if Judgment.judgment_equal concl (Thm.concl thm) then Result.ok ()
      else Result.error ("conclusion mismatch at rule " ^ Thm.rule_name thm)
    | Result.Error msg -> Result.error (Thm.rule_name thm ^ ": " ^ msg))
