module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module Rules = Ac_kernel.Rules
module Thm = Ac_kernel.Thm
module J = Ac_kernel.Judgment

(* Phase L2 (paper Fig 1): local-variable lifting, control-flow
   simplification for abrupt return, elimination of conservative
   translation artefacts, and guard discharging.

   Every step goes through the kernel:
   - [Rw_lift] turns state-resident locals into lambda bindings,
   - the rewrite engine cleans up translation artefacts,
   - [Rw_elim_returns] straightens tail return-throws, after which
     [Rw_try_nothrow] removes the wrapper (type specialisation for
     functions that provably never throw). *)

let convert_func ?(polish = true) (ctx : Rules.ctx) (f : M.func) : M.func * Thm.t =
  if f.M.convention <> M.Locals_in_state then invalid_arg "L2.convert_func: not an L1 function";
  let lift_thm =
    Thm.by ctx (Rules.Rw_lift (f.M.params, f.M.locals, f.M.ret_ty, f.M.body)) []
  in
  let lifted = Rewrite.abs_of lift_thm in
  if not polish then
    ({ f with M.body = lifted; convention = M.Lambda_bound; locals = [] }, lift_thm)
  else begin
  (* Clean up the raw lifted output. *)
  let clean1 = Rewrite.trans ctx (Rewrite.normalize ctx lifted) lift_thm in
  (* Try straightening the return flow; fall back to the exception form. *)
  let final =
    let cur = Rewrite.abs_of clean1 in
    match Thm.by_opt ctx (Rules.Rw_elim_returns (cur, f.M.ret_ty)) [] with
    | Some elim ->
      let straightened = Rewrite.trans ctx elim clean1 in
      Rewrite.trans ctx (Rewrite.normalize ctx (Rewrite.abs_of straightened)) straightened
    | None -> clean1
  in
  ( {
      f with
      M.body = Rewrite.abs_of final;
      convention = M.Lambda_bound;
      locals = [];
    },
    final )
  end
