module Ir = Ac_simpl.Ir
module M = Ac_monad.M
module Driver = Autocorres.Driver

(* Table 5's metrics over a pipeline run:

   - lines of code of the C source (non-blank, non-comment);
   - number of functions;
   - CPU time of the parsing stage and of the AutoCorres stages;
   - lines of specification of the C-parser output (pretty-printed Simpl)
     and of the AutoCorres output (pretty-printed monadic definitions);
   - average term size (AST node count) of both;

   plus the robustness columns: how far down the degradation ladder each
   function landed (Simpl/L1/L2/HL/WA) and how many resource budgets were
   exhausted during the run. *)

type row = {
  name : string;
  loc : int;
  functions : int;
  parse_time : float; (* seconds *)
  autocorres_time : float;
  parser_spec_lines : int;
  ac_spec_lines : int;
  parser_term_size : int; (* average per function *)
  ac_term_size : int;
  guards_parser : int; (* UB guards emitted by the C parser *)
  guards_final : int; (* guards surviving in the final output *)
  (* Degradation ladder: functions whose final certified level is ... *)
  at_simpl : int;
  at_l1 : int;
  at_l2 : int;
  at_hl : int;
  at_wa : int;
  budget_hits : int; (* resource-budget exhaustions during the run *)
}

(* UB guards in a Simpl statement (the parser's output). *)
let ir_guard_count (s : Ir.stmt) : int =
  let n = ref 0 in
  Ir.iter_stmts (function Ir.Guard _ -> incr n | _ -> ()) s;
  !n

let measure ?options ?store ~name (source : string) : row * Driver.result =
  (* Measure with fault isolation on so a failing function shows up as a
     degradation count instead of aborting the whole measurement. *)
  let options =
    match options with
    | Some o -> o
    | None -> { Driver.default_options with Driver.keep_going = true }
  in
  (* Wall clock, not [Sys.time]: process CPU time advances [jobs]× faster
     than elapsed time once the driver runs functions on worker domains. *)
  let t0 = Unix.gettimeofday () in
  let simpl = Ac_simpl.C2simpl.parse source in
  let parse_time = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let res = Driver.run ~options ?store source in
  let autocorres_time = Unix.gettimeofday () -. t1 in
  let funcs = simpl.Ir.funcs in
  let n = max 1 (List.length funcs) in
  let parser_spec_lines =
    List.fold_left (fun acc f -> acc + Ac_simpl.Print.lines_of_spec f) 0 funcs
  in
  let parser_term_size = List.fold_left (fun acc f -> acc + Ir.func_size f) 0 funcs / n in
  let ac_spec_lines =
    List.fold_left
      (fun acc fr -> acc + Ac_monad.Mprint.lines_of_spec fr.Driver.fr_final)
      0 res.Driver.funcs
  in
  let ac_term_size =
    List.fold_left (fun acc fr -> acc + M.func_size fr.Driver.fr_final) 0 res.Driver.funcs / n
  in
  let guards_parser = List.fold_left (fun acc f -> acc + ir_guard_count f.Ir.body) 0 funcs in
  let guards_final =
    List.fold_left
      (fun acc fr -> acc + Ac_analysis.guard_count fr.Driver.fr_final.M.body)
      0 res.Driver.funcs
  in
  let count_level lv =
    List.length (List.filter (fun fr -> Driver.level_of fr = lv) res.Driver.funcs)
    + List.length
        (List.filter (fun d -> Driver.degraded_level d = lv) res.Driver.degraded)
  in
  ( {
      name;
      loc = Ac_cfront.Tir.source_loc source;
      functions = List.length funcs;
      parse_time;
      autocorres_time;
      parser_spec_lines;
      ac_spec_lines;
      parser_term_size;
      ac_term_size;
      guards_parser;
      guards_final;
      at_simpl = count_level Driver.Lsimpl;
      at_l1 = count_level Driver.Ll1;
      at_l2 = count_level Driver.Ll2;
      at_hl = count_level Driver.Lhl;
      at_wa = count_level Driver.Lwa;
      budget_hits = res.Driver.budget_hits;
    },
    res )

(* ------------------------------------------------------------------ *)
(* Plain-text table rendering (for the bench harness). *)

let render_table ~(header : string list) (rows : string list list) : string =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let line row = "  " ^ String.concat "   " (List.mapi pad row) in
  let sep = "  " ^ String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" ((line header :: sep :: List.map line rows) @ [ "" ])

let pct_smaller a b =
  if a = 0 then 0. else 100. *. (1. -. (float_of_int b /. float_of_int a))

(* Throughput/latency ratio column for scaling tables ("1.00x",
   "2.31x"); a non-positive baseline renders as "-" rather than inf. *)
let speedup ~baseline v =
  if baseline <= 0. then "-" else Printf.sprintf "%.2fx" (v /. baseline)

(* The ladder column: how many functions ended at each certified level,
   bottom-up — "S/1/2/H/W".  A fully healthy word-abstracted unit reads
   0/0/0/0/n. *)
let ladder_to_string (r : row) : string =
  Printf.sprintf "%d/%d/%d/%d/%d" r.at_simpl r.at_l1 r.at_l2 r.at_hl r.at_wa

let row_to_strings (r : row) : string list =
  [
    r.name;
    string_of_int r.loc;
    string_of_int r.functions;
    Printf.sprintf "%.2f" r.parse_time;
    Printf.sprintf "%.2f" r.autocorres_time;
    string_of_int r.parser_spec_lines;
    string_of_int r.ac_spec_lines;
    string_of_int r.parser_term_size;
    string_of_int r.ac_term_size;
    Printf.sprintf "%.0f%%" (pct_smaller r.parser_spec_lines r.ac_spec_lines);
    Printf.sprintf "%.0f%%" (pct_smaller r.parser_term_size r.ac_term_size);
    string_of_int r.guards_parser;
    string_of_int r.guards_final;
    Printf.sprintf "%.0f%%" (pct_smaller r.guards_parser r.guards_final);
    ladder_to_string r;
    string_of_int r.budget_hits;
  ]

let table5_header =
  [ "Program"; "LoC"; "Fns"; "Parse(s)"; "AC(s)"; "SpecLn(P)"; "SpecLn(AC)";
    "Term(P)"; "Term(AC)"; "SpecLn↓"; "Term↓"; "Guards(P)"; "Guards(AC)"; "Guards↓";
    "S/1/2/H/W"; "BudgetX" ]

(* ------------------------------------------------------------------ *)
(* Per-phase profile rendering (`acc stats --profile`).  Wall seconds
   are cumulative across worker domains, so with --jobs > 1 a phase can
   exceed the run's elapsed time. *)

let profile_header = [ "Phase"; "Calls"; "Wall(s)"; "Alloc(MB)" ]

(* Per-function interprocedural profile (`acc stats --profile`): how many
   summary contexts the engine kept for the function and their total
   abstract size, plus how many of its guards the pure analysis proves
   without (Intra) and with (Inter) the summary table.  The Gain column
   is what crossing call boundaries bought; kernel-checked discharge can
   only be lower than either analysis count. *)
let summary_header = [ "Function"; "Contexts"; "SumSize"; "Intra"; "Inter"; "Gain" ]

let summary_rows (res : Driver.result) : string list list =
  List.map
    (fun ((name, ip) : string * Driver.iprof) ->
      [
        name;
        string_of_int ip.Driver.ip_contexts;
        string_of_int ip.Driver.ip_size;
        string_of_int ip.Driver.ip_intra;
        string_of_int ip.Driver.ip_inter;
        string_of_int (ip.Driver.ip_inter - ip.Driver.ip_intra);
      ])
    res.Driver.iprof

let profile_rows (entries : Autocorres.Profile.entry list) : string list list =
  List.map
    (fun (e : Autocorres.Profile.entry) ->
      [
        e.Autocorres.Profile.phase;
        string_of_int e.Autocorres.Profile.calls;
        Printf.sprintf "%.3f" e.Autocorres.Profile.wall_s;
        Printf.sprintf "%.1f" (e.Autocorres.Profile.alloc_bytes /. 1_048_576.);
      ])
    entries
