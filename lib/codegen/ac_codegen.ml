(* Synthetic systems-code generator for the Table 5 experiment.

   The paper's Table 5 measures AutoCorres's pipeline statistics over four
   real code bases (seL4, CapDL SysInit, Piccolo, eChronos), which are not
   redistributable here.  The metrics in that table — translation time,
   lines of specification, term size — depend on the code's volume and
   structural mix (arithmetic, branching, loops, struct/heap traffic,
   calls), not on kernel semantics, so we generate deterministic synthetic
   code bases with a systems-code feature mix, sized to the paper's rows
   (see DESIGN.md's substitution note).

   Everything generated stays inside the supported C subset and
   typechecks. *)

type profile = {
  p_name : string;
  target_functions : int;
  stmts_per_function : int; (* controls LoC per function *)
  structs : int;
  globals : int;
  seed : int;
}

(* The paper's Table 5 rows (LoC targets are met by construction within a
   few percent; measured LoC is reported, not assumed). *)
let sel4_like = { p_name = "sel4-like"; target_functions = 551; stmts_per_function = 6;
                  structs = 10; globals = 18; seed = 4001 }

let capdl_like = { p_name = "capdl-sysinit-like"; target_functions = 163; stmts_per_function = 4;
                   structs = 6; globals = 10; seed = 4002 }

let piccolo_like = { p_name = "piccolo-like"; target_functions = 56; stmts_per_function = 5;
                     structs = 4; globals = 6; seed = 4003 }

let echronos_like = { p_name = "echronos-like"; target_functions = 40; stmts_per_function = 4;
                      structs = 3; globals = 5; seed = 4004 }

let profiles = [ sel4_like; capdl_like; piccolo_like; echronos_like ]

(* ------------------------------------------------------------------ *)

type gen = {
  rand : Random.State.t;
  buf : Buffer.t;
  mutable funcs : (string * bool) list; (* name, returns value *)
  n_structs : int;
}

let pf g fmt = Printf.ksprintf (Buffer.add_string g.buf) fmt

let choice g xs = List.nth xs (Random.State.int g.rand (List.length xs))

let struct_name i = Printf.sprintf "obj%d" i

(* Integer expressions over the in-scope integer variables. *)
let rec int_expr g depth vars =
  if depth = 0 || Random.State.int g.rand 3 = 0 then begin
    match Random.State.int g.rand 3 with
    | 0 -> string_of_int (Random.State.int g.rand 64)
    | _ -> choice g vars
  end
  else begin
    let op = choice g [ "+"; "-"; "*"; "&"; "|"; "^" ] in
    Printf.sprintf "(%s %s %s)" (int_expr g (depth - 1) vars) op (int_expr g (depth - 1) vars)
  end

let cond_expr g vars =
  let op = choice g [ "<"; "<="; "=="; "!="; ">" ] in
  Printf.sprintf "%s %s %s" (choice g vars) op (int_expr g 1 vars)

(* One function with a systems-code statement mix: local arithmetic,
   conditionals, bounded loops, struct-field traffic through a pointer
   parameter, global updates, and calls to earlier functions. *)
let gen_function g ~(profile : profile) idx =
  let name = Printf.sprintf "fn_%s_%d" (String.map (function '-' -> '_' | c -> c) profile.p_name) idx in
  let has_ptr = g.n_structs > 0 && Random.State.int g.rand 3 > 0 in
  let sname = struct_name (Random.State.int g.rand (max 1 g.n_structs)) in
  let returns = Random.State.int g.rand 4 > 0 in
  let ret_ty = if returns then "unsigned" else "void" in
  pf g "%s %s(unsigned a, unsigned b%s)\n{\n" ret_ty name
    (if has_ptr then Printf.sprintf ", struct %s *obj" sname else "");
  pf g "  unsigned x = a;\n  unsigned y = b;\n  unsigned i = 0u;\n";
  let vars = [ "x"; "y"; "a"; "b"; "i" ] in
  let stmts = max 2 (profile.stmts_per_function + Random.State.int g.rand 5 - 2) in
  for _ = 1 to stmts do
    match Random.State.int g.rand 10 with
    | 0 | 1 | 2 ->
      pf g "  %s = %s;\n" (choice g [ "x"; "y" ]) (int_expr g 2 vars)
    | 3 ->
      pf g "  if (%s) {\n    %s = %s;\n  } else {\n    %s = %s;\n  }\n" (cond_expr g vars)
        (choice g [ "x"; "y" ]) (int_expr g 1 vars) (choice g [ "x"; "y" ])
        (int_expr g 1 vars)
    | 4 ->
      (* a bounded loop in the canonical systems-code shape *)
      pf g "  i = 0u;\n  while (i < (%s & 31u)) {\n    x = x + %s;\n    i = i + 1u;\n  }\n"
        (choice g [ "a"; "b" ]) (choice g [ "y"; "1u"; "i" ])
    | 5 when has_ptr ->
      pf g "  if (obj != NULL) {\n    obj->f0 = %s;\n  }\n" (int_expr g 1 vars)
    | 6 when has_ptr ->
      pf g "  if (obj != NULL) {\n    y = obj->f1 + %s;\n  }\n" (choice g vars)
    | 7 when g.funcs <> [] ->
      let callee, callee_returns = choice g g.funcs in
      if callee_returns then pf g "  x = %s(y, x);\n" callee
      else pf g "  %s(y, x);\n" callee
    | 8 ->
      pf g "  g%d = g%d + %s;\n" (Random.State.int g.rand 4) (Random.State.int g.rand 4)
        (choice g [ "x"; "y"; "1u" ])
    | _ -> pf g "  y = (y >> 1) ^ %s;\n" (int_expr g 1 vars)
  done;
  if returns then pf g "  return x ^ y;\n";
  pf g "}\n\n";
  (* Calls take (unsigned, unsigned): only record zero-pointer functions. *)
  if not has_ptr then g.funcs <- (name, returns) :: g.funcs

let generate (profile : profile) : string =
  let g =
    {
      rand = Random.State.make [| profile.seed |];
      buf = Buffer.create (1 lsl 16);
      funcs = [];
      n_structs = profile.structs;
    }
  in
  pf g "/* synthetic %s code base (deterministic, seed %d) */\n\n" profile.p_name profile.seed;
  for i = 0 to profile.structs - 1 do
    pf g "struct %s {\n  unsigned f0;\n  unsigned f1;\n  struct %s *link;\n};\n\n"
      (struct_name i)
      (struct_name (max 0 (i - 1)))
  done;
  for i = 0 to max 3 profile.globals - 1 do
    pf g "unsigned g%d;\n" i
  done;
  pf g "\n";
  for i = 0 to profile.target_functions - 1 do
    gen_function g ~profile i
  done;
  Buffer.contents g.buf
