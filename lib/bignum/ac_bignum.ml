(* Arbitrary-precision signed integers.

   The paper abstracts machine words into Isabelle/HOL's unbounded [int] and
   [nat] types.  OCaml's native [int] is 63-bit, which cannot faithfully model
   ideal integers (e.g. products of 64-bit words), so we implement a small
   bignum substrate from scratch: sign-magnitude, little-endian base-2^16
   digit arrays.  Performance is a non-goal; values in this code base are a
   few hundred bits at most. *)

let base_bits = 16
let base = 1 lsl base_bits
let base_mask = base - 1

type t = {
  sign : int; (* -1, 0 or 1; sign = 0 iff mag = [||] *)
  mag : int array; (* little-endian digits in [0, base), no leading zeros *)
}

exception Division_by_zero
exception Negative_operand of string

(* ------------------------------------------------------------------ *)
(* Magnitude helpers.  Magnitudes are digit arrays with no trailing
   (high-order) zeros; [||] represents zero. *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_is_zero a = Array.length a = 0

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  mag_normalize r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let da = a.(i) in
    let db = if i < lb then b.(i) else 0 in
    let s = da - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    mag_normalize r
  end

let mag_bit_length a =
  let l = Array.length a in
  if l = 0 then 0
  else begin
    let top = a.(l - 1) in
    let rec width n = if top lsr n = 0 then n else width (n + 1) in
    ((l - 1) * base_bits) + width 1
  end

let mag_test_bit a i =
  let d = i / base_bits and o = i mod base_bits in
  if d >= Array.length a then false else (a.(d) lsr o) land 1 = 1

let mag_shift_left a n =
  if mag_is_zero a then [||]
  else begin
    let dig = n / base_bits and off = n mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + dig + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      r.(i + dig) <- r.(i + dig) lor (v land base_mask);
      r.(i + dig + 1) <- r.(i + dig + 1) lor (v lsr base_bits)
    done;
    mag_normalize r
  end

let mag_shift_right a n =
  let dig = n / base_bits and off = n mod base_bits in
  let la = Array.length a in
  if dig >= la then [||]
  else begin
    let lr = la - dig in
    let r = Array.make lr 0 in
    for i = 0 to lr - 1 do
      let lo = a.(i + dig) lsr off in
      let hi = if i + dig + 1 < la && off > 0 then (a.(i + dig + 1) lsl (base_bits - off)) land base_mask else 0 in
      r.(i) <- lo lor hi
    done;
    mag_normalize r
  end

(* Binary long division on magnitudes: returns (quotient, remainder).
   O(bits^2), which is ample for the word sizes in this code base. *)
let mag_divmod a b =
  if mag_is_zero b then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else begin
    let bits_a = mag_bit_length a and bits_b = mag_bit_length b in
    let shift = bits_a - bits_b in
    let q = Array.make (shift / base_bits + 1) 0 in
    let rem = ref a in
    for i = shift downto 0 do
      let d = mag_shift_left b i in
      if mag_compare !rem d >= 0 then begin
        rem := mag_sub !rem d;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (mag_normalize q, !rem)
  end

(* ------------------------------------------------------------------ *)
(* Construction. *)

let zero = { sign = 0; mag = [||] }

let of_mag sign mag =
  let mag = mag_normalize mag in
  if mag_is_zero mag then zero else { sign; mag }

let rec of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* abs min_int overflows; build it as -(max_int + 1). *)
    { sign = -1; mag = mag_add (of_int max_int).mag [| 1 |] }
  else begin
    let sign = if n < 0 then -1 else 1 in
    let rec digits acc n = if n = 0 then acc else digits ((n land base_mask) :: acc) (n lsr base_bits) in
    of_mag sign (Array.of_list (List.rev (digits [] (abs n))))
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let is_zero x = x.sign = 0
let sign x = x.sign

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0

let min a b = if le a b then a else b
let max a b = if ge a b then a else b

let neg x = if x.sign = 0 then zero else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = mag_add a.mag b.mag }
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = mag_sub a.mag b.mag }
    else { sign = b.sign; mag = mag_sub b.mag a.mag }
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mag_mul a.mag b.mag }

(* Truncated division (like OCaml's / and mod): quotient rounds toward zero,
   remainder has the sign of the dividend. *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = mag_divmod a.mag b.mag in
  let quot = of_mag (a.sign * b.sign) q in
  let rem = of_mag a.sign r in
  (quot, rem)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Flooring division: quotient rounds toward negative infinity; remainder has
   the sign of the divisor.  Used to implement modular reduction. *)
let fdivmod a b =
  let q, r = divmod a b in
  if is_zero r || r.sign = b.sign then (q, r) else (sub q one, add r b)

let fdiv a b = fst (fdivmod a b)
let fmod a b = snd (fdivmod a b)

let succ x = add x one
let pred x = sub x one

let pow2 n =
  if n < 0 then invalid_arg "Ac_bignum.pow2";
  of_mag 1 (mag_shift_left [| 1 |] n)

let pow b n =
  if n < 0 then invalid_arg "Ac_bignum.pow";
  let rec go acc b n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
    end
  in
  go one b n

let shift_left x n =
  if n < 0 then invalid_arg "Ac_bignum.shift_left";
  if x.sign = 0 then zero else { x with mag = mag_shift_left x.mag n }

(* Arithmetic shift right: floor (x / 2^n). *)
let shift_right x n =
  if n < 0 then invalid_arg "Ac_bignum.shift_right";
  if x.sign >= 0 then of_mag 1 (mag_shift_right x.mag n)
  else fdiv x (pow2 n)

let test_bit x i =
  if x.sign < 0 then raise (Negative_operand "test_bit");
  mag_test_bit x.mag i

let bit_length x = mag_bit_length x.mag

(* Bitwise operations, defined on non-negative values only.  The word layer
   normalises to the unsigned representative before calling these. *)
let bitwise name f a b =
  if a.sign < 0 || b.sign < 0 then raise (Negative_operand name);
  let la = Array.length a.mag and lb = Array.length b.mag in
  let lr = Stdlib.max la lb in
  let r = Array.make (Stdlib.max lr 1) 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.mag.(i) else 0 in
    let db = if i < lb then b.mag.(i) else 0 in
    r.(i) <- f da db
  done;
  of_mag 1 r

let logand a b = bitwise "logand" ( land ) a b
let logor a b = bitwise "logor" ( lor ) a b
let logxor a b = bitwise "logxor" ( lxor ) a b

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  go (abs a) (abs b)

(* ------------------------------------------------------------------ *)
(* Conversions. *)

let to_int_opt x =
  (* Valid for |x| <= max_int; min_int handled via the positive branch. *)
  let l = Array.length x.mag in
  if l * base_bits <= 62 then begin
    let v = ref 0 in
    for i = l - 1 downto 0 do
      v := (!v lsl base_bits) lor x.mag.(i)
    done;
    Some (if x.sign < 0 then - !v else !v)
  end
  else begin
    match compare x (of_int max_int) <= 0 && compare x (of_int min_int) >= 0 with
    | true ->
      let v = ref 0 in
      for i = l - 1 downto 0 do
        v := (!v * base) + x.mag.(i)
      done;
      Some (if x.sign < 0 then - !v else !v)
    | false -> None
  end

let to_int_exn x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Ac_bignum.to_int_exn: out of native range"

let to_float x =
  let l = Array.length x.mag in
  let v = ref 0.0 in
  for i = l - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  if x.sign < 0 then -. !v else !v

let ten = of_int 10

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec digits v = if is_zero v then () else begin
      let q, r = divmod v ten in
      digits q;
      Buffer.add_char buf (Char.chr (Char.code '0' + to_int_exn r))
    end
    in
    digits (abs x);
    (if x.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Ac_bignum.of_string: empty";
  let negative, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= String.length s then invalid_arg "Ac_bignum.of_string: sign only";
  let hex = String.length s - start > 2 && s.[start] = '0' && (s.[start + 1] = 'x' || s.[start + 1] = 'X') in
  let v = ref zero in
  if hex then begin
    let sixteen = of_int 16 in
    for i = start + 2 to String.length s - 1 do
      let c = s.[i] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> 10 + Char.code c - Char.code 'a'
        | 'A' .. 'F' -> 10 + Char.code c - Char.code 'A'
        | _ -> invalid_arg "Ac_bignum.of_string: bad hex digit"
      in
      v := add (mul !v sixteen) (of_int d)
    done
  end
  else
    for i = start to String.length s - 1 do
      match s.[i] with
      | '0' .. '9' as c -> v := add (mul !v ten) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Ac_bignum.of_string: bad digit"
    done;
  if negative then neg !v else !v

let pp fmt x = Format.pp_print_string fmt (to_string x)

let hash x = Hashtbl.hash (x.sign, x.mag)

(* Modular reduction to [0, 2^n): the C unsigned-overflow semantics. *)
let mod_pow2 x n = fmod x (pow2 n)

(* Reduction to the signed two's-complement range [-2^(n-1), 2^(n-1)). *)
let signed_mod_pow2 x n =
  let m = pow2 n in
  let r = fmod x m in
  if ge r (pow2 (n - 1)) then sub r m else r
