(** Arbitrary-precision signed integers.

    Substrate for the ideal [int]/[nat] types produced by word abstraction
    (paper Sec 3) and for intermediate results of 64-bit word arithmetic.
    Sign-magnitude representation over base-2^16 digit arrays; all operations
    are exact. *)

type t

exception Division_by_zero

(** Raised by bitwise operations and [test_bit] on negative operands; the
    word layer always normalises to the unsigned representative first. *)
exception Negative_operand of string

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t
val to_int_opt : t -> int option

(** @raise Failure if the value does not fit in a native [int]. *)
val to_int_exn : t -> int

val to_float : t -> float

(** Decimal or [0x]-prefixed hexadecimal, optional sign.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int

val is_zero : t -> bool

(** [-1], [0] or [1]. *)
val sign : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

(** Truncated division, like OCaml's [/] and [mod]: the quotient rounds
    toward zero and the remainder takes the dividend's sign.  This matches
    C99 signed division.
    @raise Division_by_zero *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** Flooring division: the quotient rounds toward negative infinity and the
    remainder takes the divisor's sign.
    @raise Division_by_zero *)
val fdivmod : t -> t -> t * t

val fdiv : t -> t -> t
val fmod : t -> t -> t

(** [pow2 n] is 2{^n}. @raise Invalid_argument if [n < 0]. *)
val pow2 : int -> t

(** [pow b n] is [b]{^n}. @raise Invalid_argument if [n < 0]. *)
val pow : t -> int -> t

val shift_left : t -> int -> t

(** Arithmetic right shift: floor division by 2{^n}. *)
val shift_right : t -> int -> t

(** @raise Negative_operand on negative values. *)
val test_bit : t -> int -> bool

(** Number of significant bits in the magnitude; 0 for zero. *)
val bit_length : t -> int

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val gcd : t -> t -> t

(** [mod_pow2 x n] reduces [x] to [0, 2{^n}): C's unsigned-overflow rule. *)
val mod_pow2 : t -> int -> t

(** [signed_mod_pow2 x n] reduces [x] to [-2{^n-1}, 2{^n-1}): the
    two's-complement reinterpretation used for value-preserving casts. *)
val signed_mod_pow2 : t -> int -> t
