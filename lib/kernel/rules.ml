module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module W = Ac_word
module B = Ac_bignum
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
open Judgment

(* The kernel's rule base.

   Each rule is a closed constructor; [infer] maps a rule instance and the
   conclusions of its premises to the rule's conclusion, or an error if the
   side conditions fail.  This mirrors the paper's use of Isabelle's
   resolution: the abstraction phases never write down an abstract program
   directly — they pick rules, and the conclusion (including the abstract
   program and the collected precondition) is *computed here*, so an
   unsound abstract program cannot be produced by a buggy phase.

   The rules for word abstraction implement Table 3 (plus the unlisted
   members of the ~40-rule set the paper describes); the rules for heap
   abstraction implement Table 4. *)

type ctx = {
  lenv : Layout.env;
  (* Word abstraction: which variables are abstracted, at which type.  The
     paper abstracts all local variables and arguments of selected
     functions (Sec 3.3). *)
  wvars : (string * (Ty.sign * Ty.width)) list;
  (* Word-abstraction signatures of callees: parameter and result convs. *)
  fsigs : (string * (conv list * conv)) list;
  (* Functions translated with the typed split-heap model (Sec 4.6). *)
  lifted : string list;
  (* Functions whose bodies provably never throw (after L2's type
     specialisation), extending the syntactic nothrow check across calls. *)
  nothrows : string list;
  (* The unit's (pre-discharge) L2 function bodies, for verifying the
     interprocedural summaries a [Rule_guard_true] certificate may carry.
     Same trust class as [nothrows]: driver-supplied facts about the
     translation unit — a wrong body here is a wrong unit, not a kernel
     hole, and the certificates themselves stay untrusted ([Absdom]
     re-verifies every summary against these bodies on each check). *)
  fbodies : M.func list;
}

let empty_ctx lenv = { lenv; wvars = []; fsigs = []; lifted = []; nothrows = []; fbodies = [] }

type rule =
  (* ---- L1: monadic conversion, Table 1 ---- *)
  | L1 of Ir.stmt
  (* ---- L2: semantic-preserving rewrites ---- *)
  | Eq_refl of M.t
  | Eq_trans
  | Eq_sym
  | Eq_bind of M.pat (* congruence *)
  | Eq_try of M.pat
  | Eq_cond of E.t
  | Eq_while of M.pat * E.t * E.t
  | Rw_return_bind of M.t * M.pat * M.t (* do v <- return e; B od = B[v:=e] *)
  | Rw_gets_bind of M.t * M.pat * M.t (* same for pure gets *)
  | Rw_bind_return of M.t * M.pat (* do v <- A; return v od = A *)
  | Rw_bind_assoc of M.t * M.pat * M.t * M.pat * M.t
  | Rw_gets_pure of E.t (* gets of a state-free expression is return *)
  | Rw_guard_true of Ir.guard_kind (* guard True = return () *)
  | Rw_cond_true of M.t * M.t
  | Rw_cond_false of M.t * M.t
  | Rw_cond_same of E.t * M.t
  | Rw_try_nothrow of M.t * M.pat * M.t (* body cannot throw *)
  | Rw_seq_unit of M.t (* do _ <- A; return () od = A when A : unit *)
  | Rw_lift of (string * Ty.t) list * (string * Ty.t) list * Ty.t * M.t
    (* reflective local-variable lifting of a whole L1 body:
       params, locals, return type, L1 body *)
  | Rw_simp of M.t (* map the kernel expression simplifier over a term *)
  | Rw_elim_returns of M.t * Ty.t (* tail-position return-throw elimination *)
  | Rw_dead_after_throw of E.t * M.pat * M.t
    (* do v <- throw e; B od = throw e *)
  | Rw_dead_after_fail of M.pat * M.t (* do v <- fail; B od = fail *)
  | Rw_cond_return of E.t * M.t * M.t
    (* condition c (return/gets x) (return/gets y) = gets (if c then x else y) *)
  | Rw_discharge of M.t
    (* reflective pass deleting guards whose condition is established by a
       dominating guard or branch condition *)
  | Rw_prune_loop of int * M.pat * E.t * M.t * E.t * M.pat * M.t
    (* drop dead iterator component [i] from
       do q <- whileLoop c (λp. body) init; k od *)
  | Rw_hoist_guard of M.t * M.pat * Ir.guard_kind * E.t * M.t
    (* do v <- A; _ <- guard g; B od = do _ <- guard g; v <- A; B od
       when A is state- and control-neutral (return/gets) and does not bind
       variables of g *)
  | Rw_guard_past_write of M.smod list * Ir.guard_kind * E.t * M.t
    (* is_valid guards commute backwards over retype-free writes *)
  | Rw_dup_guard of Ir.guard_kind * E.t * Ir.guard_kind * E.t * M.t
    (* consecutive guards: drop the second when implied by the first *)
  | Rw_discharge_cond_guard of E.t * M.t * M.t
    (* IF c THEN (guard g; A) ELSE B: drop g when c implies g *)
  | Rw_discharge_loop_guard of M.pat * E.t * M.t * E.t
    (* whileLoop c (λi. guard g; body) i: drop g when c implies g *)
  | Rule_guard_true of M.t * Absdom.cert
    (* abstract-interpretation guard discharge: rewrite away every guard
       whose condition the certified abstract walk proves.  The certificate
       (one invariant per loop) comes from the untrusted fixpoint engine in
       Ac_analysis; [Absdom.discharge] re-verifies it here, so [Thm.check]
       re-validates the side condition from scratch. *)
  (* ---- word abstraction: values (Table 3) ---- *)
  | W_triv of conv * E.t (* abs_w_val True f (f c) c *)
  | W_var of string (* an abstracted variable *)
  | W_const of Ty.sign * Ty.width * B.t
  | W_id of E.t (* expr free of abstracted vars abstracts to itself *)
  | W_binop of E.binop * Ty.sign * Ty.width (* arithmetic/comparison, 2 premises *)
  | W_neg of Ty.sign * Ty.width
  | W_recon of Ty.sign * Ty.width (* re-concretise: Cid via of_nat/of_int *)
  | W_ite (* premises: cond (Cid), then, else *)
  | W_tuple (* premises: one per component; conv = Ctuple *)
  | W_node of E.t (* congruence over a node with Cid children *)
  | W_shortcircuit of E.binop (* ∧/∨ with implication-weakened preconditions *)
  | W_unconv of Ty.sign * Ty.width
    (* from (P, sint/unat, a, c) conclude (P, id, a, sint/unat c) *)
  | W_abs_any of Ty.sign * Ty.width
    (* from (P, id, a, c : word) conclude (P, unat/sint, unat/sint a, c) *)
  | W_weaken of E.t (* strengthen precondition *)
  | W_custom of string (* user-registered extension rule, looked up at infer *)
  (* ---- word abstraction: statements ---- *)
  | Ws_ret
  | Ws_gets
  | Ws_guard of Ir.guard_kind
  | Ws_modify of M.smod list (* concrete modify skeleton *)
  | Ws_fail of conv * conv (* rx, ex: fail never returns, both free *)
  | Ws_unknown of Ty.t
  | Ws_throw of conv (* desired rx: a throw never returns normally *)
  | Ws_bind of M.pat (* concrete pattern; abstract pattern derived *)
  | Ws_try of M.pat
  | Ws_cond
  | Ws_while of M.pat (* concrete iterator pattern *)
  | Ws_call of string
  | Ws_exec_concrete of string
  | Ws_wrap_guard (* prepend the precondition as a guard *)
  (* ---- heap abstraction: values (Table 4) ---- *)
  | Hv_id of E.t (* no byte-heap access *)
  | Hv_read of Ty.cty (* read via lifted heap + validity *)
  | Hv_read_field of string * string (* p->f via struct heap *)
  | Hv_node of E.t (* congruence on a non-heap node *)
  | Hv_shortcircuit of E.binop (* ∧/∨: the right operand's precondition is
                                  weakened by the left's value *)
  | Hv_ite (* if-then-else with branch preconditions under the condition *)
  | Hv_weaken of E.t
  (* ---- heap abstraction: statements ---- *)
  | Hs_pure of M.t (* no heap access at all: program abstracts to itself *)
  | Hs_ret
  | Hs_gets
  | Hs_guard_ptr of Ty.cty (* alignment guard becomes is_valid *)
  | Hs_guard_strengthen of Ir.guard_kind
    (* pointer-validity subformulas in positive positions of a guard become
       is_valid checks (guards may fail more often under abstraction) *)
  | Hs_guard of Ir.guard_kind
  | Hs_modify of M.smod list
  | Hs_write of Ty.cty
  | Hs_write_field of string * string
  | Hs_fail
  | Hs_unknown of Ty.t
  | Hs_throw
  | Hs_bind of M.pat
  | Hs_try of M.pat
  | Hs_cond
  | Hs_while of M.pat
  | Hs_call of string (* lifted callee *)
  | Hs_call_concrete of string (* byte-level callee via exec_concrete *)
  (* ---- chaining ---- *)
  | Fn_chain of string (* Corres_l1 + Equiv* + Abs_h + Abs_w compose *)

(* User-registered extension rules (paper Sec 3.3: "the rule sets can be
   extended if the user wishes to abstract code-specific idioms").  An
   extension supplies its own inference function; registering it is an
   explicit act of trust, exactly as adding a rule to the Isabelle rule set
   requires proving it. *)
let custom_rules : (string, ctx -> judgment list -> (judgment, string) result) Hashtbl.t =
  Hashtbl.create 8

let register_custom_rule name f = Hashtbl.replace custom_rules name f

(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f
let ok x = Result.ok x
let fail fmt = Format.kasprintf (fun m -> Result.error m) fmt

let rule_name = function
  | L1 _ -> "l1"
  | Eq_refl _ -> "eq_refl"
  | Eq_trans -> "eq_trans"
  | Eq_sym -> "eq_sym"
  | Eq_bind _ -> "eq_bind"
  | Eq_try _ -> "eq_try"
  | Eq_cond _ -> "eq_cond"
  | Eq_while _ -> "eq_while"
  | Rw_return_bind _ -> "rw_return_bind"
  | Rw_gets_bind _ -> "rw_gets_bind"
  | Rw_bind_return _ -> "rw_bind_return"
  | Rw_bind_assoc _ -> "rw_bind_assoc"
  | Rw_gets_pure _ -> "rw_gets_pure"
  | Rw_guard_true _ -> "rw_guard_true"
  | Rw_cond_true _ -> "rw_cond_true"
  | Rw_cond_false _ -> "rw_cond_false"
  | Rw_cond_same _ -> "rw_cond_same"
  | Rw_try_nothrow _ -> "rw_try_nothrow"
  | Rw_seq_unit _ -> "rw_seq_unit"
  | Rw_lift _ -> "rw_lift"
  | Rw_simp _ -> "rw_simp"
  | Rw_elim_returns _ -> "rw_elim_returns"
  | Rw_dead_after_throw _ -> "rw_dead_after_throw"
  | Rw_dead_after_fail _ -> "rw_dead_after_fail"
  | Rw_cond_return _ -> "rw_cond_return"
  | Rw_discharge _ -> "rw_discharge"
  | Rw_prune_loop _ -> "rw_prune_loop"
  | Rw_hoist_guard _ -> "rw_hoist_guard"
  | Rw_guard_past_write _ -> "rw_guard_past_write"
  | Rw_dup_guard _ -> "rw_dup_guard"
  | Rw_discharge_cond_guard _ -> "rw_discharge_cond_guard"
  | Rw_discharge_loop_guard _ -> "rw_discharge_loop_guard"
  | Rule_guard_true _ -> "rule_guard_true"
  | W_triv _ -> "w_triv"
  | W_var _ -> "w_var"
  | W_const _ -> "w_const"
  | W_id _ -> "w_id"
  | W_binop (op, _, _) -> (
    match op with
    | E.Add -> "w_sum"
    | E.Sub -> "w_sub"
    | E.Mul -> "w_mul"
    | E.Div -> "w_div"
    | E.Rem -> "w_mod"
    | _ -> "w_cmp")
  | W_neg _ -> "w_neg"
  | W_recon _ -> "w_recon"
  | W_ite -> "w_ite"
  | W_tuple -> "w_tuple"
  | W_node _ -> "w_node"
  | W_shortcircuit _ -> "w_shortcircuit"
  | W_unconv _ -> "w_unconv"
  | W_abs_any _ -> "w_abs_any"
  | W_weaken _ -> "w_weaken"
  | W_custom n -> "w_custom:" ^ n
  | Ws_ret -> "ws_ret"
  | Ws_gets -> "ws_gets"
  | Ws_guard _ -> "ws_guard"
  | Ws_modify _ -> "ws_modify"
  | Ws_fail _ -> "ws_fail"
  | Ws_unknown _ -> "ws_unknown"
  | Ws_throw _ -> "ws_throw"
  | Ws_bind _ -> "ws_bind"
  | Ws_try _ -> "ws_try"
  | Ws_cond -> "ws_cond"
  | Ws_while _ -> "ws_while"
  | Ws_call _ -> "ws_call"
  | Ws_exec_concrete _ -> "ws_exec_concrete"
  | Ws_wrap_guard -> "ws_wrap_guard"
  | Hv_id _ -> "hv_id"
  | Hv_read _ -> "hv_read"
  | Hv_read_field _ -> "hv_read_field"
  | Hv_node _ -> "hv_node"
  | Hv_shortcircuit _ -> "hv_shortcircuit"
  | Hv_ite -> "hv_ite"
  | Hv_weaken _ -> "hv_weaken"
  | Hs_pure _ -> "hs_pure"
  | Hs_ret -> "hs_ret"
  | Hs_gets -> "hs_gets"
  | Hs_guard_ptr _ -> "hs_guard_ptr"
  | Hs_guard_strengthen _ -> "hs_guard_strengthen"
  | Hs_guard _ -> "hs_guard"
  | Hs_modify _ -> "hs_modify"
  | Hs_write _ -> "hs_write"
  | Hs_write_field _ -> "hs_write_field"
  | Hs_fail -> "hs_fail"
  | Hs_unknown _ -> "hs_unknown"
  | Hs_throw -> "hs_throw"
  | Hs_bind _ -> "hs_bind"
  | Hs_try _ -> "hs_try"
  | Hs_cond -> "hs_cond"
  | Hs_while _ -> "hs_while"
  | Hs_call _ -> "hs_call"
  | Hs_call_concrete _ -> "hs_call_concrete"
  | Fn_chain _ -> "fn_chain"

(* Dense numbering of the rule set, mirroring [rule_name]'s granularity
   (one id per reported name, so [W_binop] splits by operator).  Observers
   can count applications in a flat array instead of hashing the name on
   the minting hot path.  [W_custom] has no static id — its name is
   user-chosen — and maps to -1; ids of built-in rules are < [num_rule_ids]. *)
let num_rule_ids = 92

let rule_id = function
  | L1 _ -> 0
  | Eq_refl _ -> 1
  | Eq_trans -> 2
  | Eq_sym -> 3
  | Eq_bind _ -> 4
  | Eq_try _ -> 5
  | Eq_cond _ -> 6
  | Eq_while _ -> 7
  | Rw_return_bind _ -> 8
  | Rw_gets_bind _ -> 9
  | Rw_bind_return _ -> 10
  | Rw_bind_assoc _ -> 11
  | Rw_gets_pure _ -> 12
  | Rw_guard_true _ -> 13
  | Rw_cond_true _ -> 14
  | Rw_cond_false _ -> 15
  | Rw_cond_same _ -> 16
  | Rw_try_nothrow _ -> 17
  | Rw_seq_unit _ -> 18
  | Rw_lift _ -> 19
  | Rw_simp _ -> 20
  | Rw_elim_returns _ -> 21
  | Rw_dead_after_throw _ -> 22
  | Rw_dead_after_fail _ -> 23
  | Rw_cond_return _ -> 24
  | Rw_discharge _ -> 25
  | Rw_prune_loop _ -> 26
  | Rw_hoist_guard _ -> 27
  | Rw_guard_past_write _ -> 28
  | Rw_dup_guard _ -> 29
  | Rw_discharge_cond_guard _ -> 30
  | Rw_discharge_loop_guard _ -> 31
  | Rule_guard_true _ -> 32
  | W_triv _ -> 33
  | W_var _ -> 34
  | W_const _ -> 35
  | W_id _ -> 36
  | W_binop (op, _, _) -> (
    match op with
    | E.Add -> 37
    | E.Sub -> 38
    | E.Mul -> 39
    | E.Div -> 40
    | E.Rem -> 41
    | _ -> 42)
  | W_neg _ -> 43
  | W_recon _ -> 44
  | W_ite -> 45
  | W_tuple -> 46
  | W_node _ -> 47
  | W_shortcircuit _ -> 48
  | W_unconv _ -> 49
  | W_abs_any _ -> 50
  | W_weaken _ -> 51
  | W_custom _ -> -1
  | Ws_ret -> 52
  | Ws_gets -> 53
  | Ws_guard _ -> 54
  | Ws_modify _ -> 55
  | Ws_fail _ -> 56
  | Ws_unknown _ -> 57
  | Ws_throw _ -> 58
  | Ws_bind _ -> 59
  | Ws_try _ -> 60
  | Ws_cond -> 61
  | Ws_while _ -> 62
  | Ws_call _ -> 63
  | Ws_exec_concrete _ -> 64
  | Ws_wrap_guard -> 65
  | Hv_id _ -> 66
  | Hv_read _ -> 67
  | Hv_read_field _ -> 68
  | Hv_node _ -> 69
  | Hv_shortcircuit _ -> 70
  | Hv_ite -> 71
  | Hv_weaken _ -> 72
  | Hs_pure _ -> 73
  | Hs_ret -> 74
  | Hs_gets -> 75
  | Hs_guard_ptr _ -> 76
  | Hs_guard_strengthen _ -> 77
  | Hs_guard _ -> 78
  | Hs_modify _ -> 79
  | Hs_write _ -> 80
  | Hs_write_field _ -> 81
  | Hs_fail -> 82
  | Hs_unknown _ -> 83
  | Hs_throw -> 84
  | Hs_bind _ -> 85
  | Hs_try _ -> 86
  | Hs_cond -> 87
  | Hs_while _ -> 88
  | Hs_call _ -> 89
  | Hs_call_concrete _ -> 90
  | Fn_chain _ -> 91

(* ------------------------------------------------------------------ *)
(* Helpers shared by the word rules. *)

let wvar_conv ctx x =
  match List.assoc_opt x ctx.wvars with
  | Some (Ty.Unsigned, w) -> Some (Cunat w)
  | Some (Ty.Signed, w) -> Some (Csint w)
  | None -> None

(* Does an expression mention any abstracted variable? *)
let mentions_wvar ctx e =
  List.exists (fun v -> List.mem_assoc v ctx.wvars) (E.free_vars e)

let conv_of_sign sign w = match sign with Ty.Unsigned -> Cunat w | Ty.Signed -> Csint w

(* Abstract pattern: abstracted variables change type. *)
let rec abs_pat ctx (p : M.pat) : M.pat =
  match p with
  | M.Pwild -> M.Pwild
  | M.Ptuple ps -> M.Ptuple (List.map (abs_pat ctx) ps)
  | M.Pvar (x, t) -> (
    match (List.assoc_opt x ctx.wvars, t) with
    | Some (s, w), Ty.Tword (s', w') when s = s' && w = w' ->
      M.Pvar (x, Ty.ideal_of_word_sign s)
    | _ -> M.Pvar (x, t))

(* The conv taking a concrete pattern's value to the abstract pattern's. *)
let rec pat_conv ctx (p : M.pat) : conv =
  match p with
  | M.Pwild -> Cid
  | M.Ptuple ps -> Ctuple (List.map (pat_conv ctx) ps)
  | M.Pvar (x, t) -> (
    match (List.assoc_opt x ctx.wvars, t) with
    | Some (s, w), Ty.Tword (s', w') when s = s' && w = w' -> conv_of_sign s w
    | _ -> Cid)

let umax_e w = E.big_nat_e (W.max_value Ty.Unsigned w)
let imin_e w = E.big_int_e (W.min_value Ty.Signed w)
let imax_e w = E.big_int_e (W.max_value Ty.Signed w)

let in_srange_e w e = E.and_e (E.Binop (E.Le, imin_e w, e)) (E.Binop (E.Le, e, imax_e w))

(* Check a premise list has exactly n members. *)
let prems_n n prems =
  if List.length prems = n then ok prems else fail "expected %d premises" n

let as_wval = function
  | Abs_w_val (p, f, a, c) -> ok (p, f, a, c)
  | j -> fail "expected abs_w_val premise, got %a" pp_judgment j

let as_wstmt = function
  | Abs_w_stmt (p, rx, ex, a, c) -> ok (p, rx, ex, a, c)
  | j -> fail "expected abs_w_stmt premise, got %a" pp_judgment j

let as_hval = function
  | Abs_h_val (p, a, c) -> ok (p, a, c)
  | j -> fail "expected abs_h_val premise, got %a" pp_judgment j

let as_hstmt = function
  | Abs_h_stmt (a, c) -> ok (a, c)
  | j -> fail "expected abs_h_stmt premise, got %a" pp_judgment j

let as_equiv = function
  | Equiv (a, c) -> ok (a, c)
  | j -> fail "expected equivalence premise, got %a" pp_judgment j

(* A syntactic no-throw check: sound, incomplete.  Calls are conservatively
   assumed to throw unless the callee is known nothrow — the strategy layer
   only applies the rewrite after exception elimination, where this
   suffices. *)
let rec nothrow_in (nothrows : string list) (m : M.t) =
  let go = nothrow_in nothrows in
  match m with
  | M.Return _ | M.Gets _ | M.Modify _ | M.Guard _ | M.Fail | M.Unknown _ -> true
  | M.Throw _ -> false
  | M.Bind (a, _, b) -> go a && go b
  | M.Try (_, _, h) -> go h
  | M.Cond (_, a, b) -> go a && go b
  | M.While (_, _, body, _) -> go body
  | M.Call (f, _) | M.Exec_concrete (f, _) -> List.mem f nothrows

let nothrow (m : M.t) = nothrow_in [] m

(* Exception convs only constrain actually-thrown values: a side that
   provably never throws imposes no constraint. *)
let merge_ex nothrows (exl : conv) (la : M.t) (exr : conv) (ra : M.t) : (conv, string) result =
  if conv_equal exl exr then Result.ok exl
  else if nothrow_in nothrows la then Result.ok exr
  else if nothrow_in nothrows ra then Result.ok exl
  else Result.error "exception convs differ"

(* Does [m] assign local [x] through the state (Local_set), or observe it
   through anything other than [Var]?  Used by the lifting rewrites. *)
let rec assigns_local x (m : M.t) =
  let in_smod = function M.Local_set (y, _) -> String.equal x y | _ -> false in
  match m with
  | M.Modify ms -> List.exists in_smod ms
  | M.Return _ | M.Gets _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _ -> false
  | M.Bind (a, _, b) | M.Try (a, _, b) -> assigns_local x a || assigns_local x b
  | M.Cond (_, a, b) -> assigns_local x a || assigns_local x b
  | M.While (_, _, body, _) -> assigns_local x body
  | M.Call _ | M.Exec_concrete _ ->
    (* Callee frames are separate; calls cannot assign our locals. *)
    false

(* Locals assigned (via Local_set) anywhere in m. *)
let assigned_locals (m : M.t) =
  let acc = ref [] in
  let add x = if not (List.mem x !acc) then acc := x :: !acc in
  let rec go m =
    match m with
    | M.Modify ms ->
      List.iter (function M.Local_set (x, _) -> add x | _ -> ()) ms
    | M.Bind (a, _, b) | M.Try (a, _, b) ->
      go a;
      go b
    | M.Cond (_, a, b) ->
      go a;
      go b
    | M.While (_, _, body, _) -> go body
    | M.Return _ | M.Gets _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _ | M.Call _
    | M.Exec_concrete _ ->
      ()
  in
  go m;
  List.rev !acc

(* Exit codes statically known to be throwable by a term: used to prune dead
   re-throw branches.  [None] = unknown (dynamic code). *)
let thrown_codes (m : M.t) : Ir.exit_kind list option =
  let exception Dynamic in
  let acc = ref [] in
  let add k = if not (List.mem k !acc) then acc := k :: !acc in
  let code_of (e : E.t) =
    match e with
    | E.Tuple (E.Const (Value.Vword (_, w)) :: _) -> (
      match W.to_int_exn w with
      | 0 -> Ir.Xreturn
      | 1 -> Ir.Xbreak
      | 2 -> Ir.Xcontinue
      | _ -> raise Dynamic)
    | _ -> raise Dynamic
  in
  let rec go m =
    match m with
    | M.Throw e -> add (code_of e)
    | M.Try (a, _, h) ->
      (* codes from a are caught here; only the handler's escape *)
      ignore a;
      go h
    | M.Bind (a, _, b) -> go a; go b
    | M.Cond (_, a, b) -> go a; go b
    | M.While (_, _, body, _) -> go body
    | M.Call _ | M.Exec_concrete _ -> raise Dynamic
    | M.Return _ | M.Gets _ | M.Modify _ | M.Guard _ | M.Fail | M.Unknown _ -> ()
  in
  match go m with
  | () -> Some !acc
  | exception Dynamic -> None

(* Tail-position return-throw elimination (the L2 "simplifying control flow
   for abrupt return" step).  [str m (p, cont)] rewrites [m] so that normal
   completions continue as [Bind (m, p, cont)] and Return-throws become
   plain returns of the carried value; gives up (None) on anything that
   might throw dynamically. *)
let rec str nothrows (m : M.t) ((p, cont) : M.pat * M.t) : M.t option =
  let is_return_code (e : E.t) =
    match e with
    | E.Const (Value.Vword (_, w)) -> W.to_int_exn w = Ir.exit_code Ir.Xreturn
    | _ -> false
  in
  match m with
  | M.Throw (E.Tuple (code :: ret :: _)) when is_return_code code -> Some (M.Return ret)
  | M.Throw _ -> None
  | M.Cond (c, x, y) -> (
    match (str nothrows x (p, cont), str nothrows y (p, cont)) with
    | Some x', Some y' -> Some (M.Cond (c, x', y'))
    | _ -> None)
  | M.Bind (a, q, b) -> (
    match str nothrows b (p, cont) with
    | None -> None
    | Some b' ->
      if nothrow_in nothrows a then Some (M.Bind (a, q, b')) else str nothrows a (q, b'))
  | M.Try _ | M.While _ | M.Call _ | M.Exec_concrete _ ->
    if nothrow_in nothrows m then Some (M.Bind (m, p, cont)) else None
  | M.Return _ | M.Gets _ | M.Modify _ | M.Guard _ | M.Fail | M.Unknown _ ->
    Some (M.Bind (m, p, cont))

(* Map the kernel expression simplifier over every expression of a term. *)
let rec msimp lenv (m : M.t) : M.t =
  let s e = Esimp.simp lenv e in
  match m with
  | M.Return e -> M.Return (s e)
  | M.Gets e -> if E.reads_state (s e) then M.Gets (s e) else M.Return (s e)
  | M.Guard (k, e) -> M.Guard (k, s e)
  | M.Fail -> M.Fail
  | M.Unknown t -> M.Unknown t
  | M.Throw e -> M.Throw (s e)
  | M.Modify ms ->
    M.Modify
      (List.map
         (function
           | M.Heap_write (c, p, v) -> M.Heap_write (c, s p, s v)
           | M.Typed_write (c, p, v) -> M.Typed_write (c, s p, s v)
           | M.Global_set (x, e) -> M.Global_set (x, s e)
           | M.Local_set (x, e) -> M.Local_set (x, s e)
           | M.Retype (c, e) -> M.Retype (c, s e))
         ms)
  | M.Bind (a, p, b) -> M.Bind (msimp lenv a, p, msimp lenv b)
  | M.Try (a, p, b) -> M.Try (msimp lenv a, p, msimp lenv b)
  | M.Cond (c, a, b) -> M.Cond (s c, msimp lenv a, msimp lenv b)
  | M.While (p, c, body, init) -> M.While (p, s c, msimp lenv body, s init)
  | M.Call (f, args) -> M.Call (f, List.map s args)
  | M.Exec_concrete (f, args) -> M.Exec_concrete (f, List.map s args)

(* Syntactic implication: [implies_syn c g] holds when [g] is [c] itself, a
   conjunct of [c], or a conjunction of implied parts.  Used by the
   guard-discharging rewrites; anything subtler is the prover's job. *)
let rec implies_syn (c : E.t) (g : E.t) =
  E.equal c g
  || (match g with
     | E.Binop (E.And, a, b) -> implies_syn c a && implies_syn c b
     | E.Const (Value.Vbool true) -> true
     | _ -> false)
  ||
  match c with
  | E.Binop (E.And, a, b) -> implies_syn a g || implies_syn b g
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The guard-discharging pass (the L2 "discharging guards" step).

   Walks a term tracking the set of established conditions: conditions
   already guarded on the current path, branch conditions, and loop
   conditions.  A guard whose conjuncts are all established is deleted.
   Facts are invalidated by effects that could change their value:

   - state-free facts survive everything (modulo variable rebinding);
   - validity facts (reading the state only through is_valid) survive value
     writes, but not retyping or calls;
   - anything else dies at the first state change. *)

let conjuncts (e : E.t) =
  let rec go e acc =
    match e with
    | E.Binop (E.And, a, b) -> go a (go b acc)
    | e -> e :: acc
  in
  go e []

type fact_kind = Fpure | Fvalidity | Ffragile

let fact_kind (e : E.t) : fact_kind =
  let rec scan e (seen_valid, seen_other) =
    let acc =
      match e with
      | E.IsValid _ -> (true, seen_other)
      | E.HeapRead _ | E.TypedRead _ | E.Global _ -> (seen_valid, true)
      | _ -> (seen_valid, seen_other)
    in
    List.fold_left (fun acc c -> scan c acc) acc (E.children e)
  in
  match scan e (false, false) with
  | _, true -> Ffragile
  | true, false -> Fvalidity
  | false, false -> Fpure

type kills = { k_values : bool; k_retype_or_call : bool }

let no_kills = { k_values = false; k_retype_or_call = false }
let all_kills = { k_values = true; k_retype_or_call = true }

let kills_union a b =
  { k_values = a.k_values || b.k_values;
    k_retype_or_call = a.k_retype_or_call || b.k_retype_or_call }

let smod_kills = function
  | M.Heap_write _ | M.Typed_write _ | M.Global_set _ | M.Local_set _ ->
    { k_values = true; k_retype_or_call = false }
  | M.Retype _ -> all_kills

let rec term_kills (m : M.t) : kills =
  match m with
  | M.Return _ | M.Gets _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _ -> no_kills
  | M.Modify sms -> List.fold_left (fun k sm -> kills_union k (smod_kills sm)) no_kills sms
  | M.Bind (a, _, b) | M.Try (a, _, b) -> kills_union (term_kills a) (term_kills b)
  | M.Cond (_, a, b) -> kills_union (term_kills a) (term_kills b)
  | M.While (_, _, body, _) -> term_kills body
  | M.Call _ | M.Exec_concrete _ -> all_kills

let fact_survives (k : kills) (f : E.t) =
  match fact_kind f with
  | Fpure -> true
  | Fvalidity -> not k.k_retype_or_call
  | Ffragile -> not (k.k_values || k.k_retype_or_call)

let drop_rebound vars facts =
  List.filter (fun f -> not (List.exists (fun v -> List.mem v vars) (E.free_vars f))) facts

let established facts g = List.exists (E.equal g) facts

(* Returns the rewritten term and the facts established after it (on the
   normal path). *)
let rec discharge lenv (facts : E.t list) (m : M.t) : M.t * E.t list =
  match m with
  | M.Guard (k, g) ->
    let parts = conjuncts g in
    let remaining = List.filter (fun c -> not (established facts c)) parts in
    let m' =
      match remaining with
      | [] -> M.Return E.unit_e
      | parts' -> M.Guard (k, E.conj parts')
    in
    (m', parts @ facts)
  | M.Return _ | M.Gets _ | M.Throw _ | M.Fail | M.Unknown _ -> (m, facts)
  | M.Modify sms ->
    let k = List.fold_left (fun k sm -> kills_union k (smod_kills sm)) no_kills sms in
    (m, List.filter (fact_survives k) facts)
  | M.Bind (a, p, b) ->
    let a', facts1 = discharge lenv facts a in
    let facts2 = drop_rebound (List.map fst (M.pat_vars p)) facts1 in
    let b', facts3 = discharge lenv facts2 b in
    (M.Bind (a', p, b'), facts3)
  | M.Try (a, p, h) ->
    let a', facts_a = discharge lenv facts a in
    (* Handler entry: effects of an unknown prefix of [a] have happened. *)
    let facts_h_in =
      drop_rebound (List.map fst (M.pat_vars p))
        (List.filter (fact_survives (term_kills a)) facts)
    in
    let h', facts_h = discharge lenv facts_h_in h in
    (M.Try (a', p, h'), List.filter (fun f -> List.exists (E.equal f) facts_h) facts_a)
  | M.Cond (c, a, b) ->
    let a', facts_a = discharge lenv (conjuncts c @ facts) a in
    let b', facts_b = discharge lenv (E.not_e c :: facts) b in
    (M.Cond (c, a', b'), List.filter (fun f -> List.exists (E.equal f) facts_b) facts_a)
  | M.While (p, c, body, init) ->
    let k = term_kills body in
    let inner_facts =
      conjuncts c
      @ drop_rebound (List.map fst (M.pat_vars p)) (List.filter (fact_survives k) facts)
    in
    let body', _ = discharge lenv inner_facts body in
    (M.While (p, c, body', init), List.filter (fact_survives k) facts)
  | M.Call _ | M.Exec_concrete _ -> (m, List.filter (fact_survives all_kills) facts)

let discharge_guards lenv (m : M.t) : M.t = fst (discharge lenv [] m)

(* All variable names bound anywhere inside a term (by bind, catch or loop
   patterns).  Used to reject capturing substitutions. *)
let binder_names (m : M.t) : string list =
  let acc = ref [] in
  let add p = List.iter (fun (x, _) -> if not (List.mem x !acc) then acc := x :: !acc) (M.pat_vars p) in
  let rec go m =
    match m with
    | M.Bind (a, p, b) | M.Try (a, p, b) ->
      add p;
      go a;
      go b
    | M.Cond (_, a, b) ->
      go a;
      go b
    | M.While (p, _, body, _) ->
      add p;
      go body
    | M.Return _ | M.Gets _ | M.Modify _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _
    | M.Call _ | M.Exec_concrete _ ->
      ()
  in
  go m;
  !acc

(* Substituting [e] for pattern variables inside [b] is capture-free when no
   binder in [b] reuses a free variable of [e]. *)
let capture_free (e : E.t) (b : M.t) =
  let binders = binder_names b in
  not (List.exists (fun v -> List.mem v binders) (E.free_vars e))

(* Alpha-rename every binder of [m] whose name is in [avoid] to a fresh name
   (alpha conversion: semantics-preserving by construction). *)
let alpha_avoid (avoid : string list) (m : M.t) : M.t =
  let used = ref (avoid @ M.free_vars m @ binder_names m) in
  let fresh base =
    let rec go candidate =
      if List.mem candidate !used then go (candidate ^ "'") else candidate
    in
    let name = go (base ^ "'") in
    used := name :: !used;
    name
  in
  let rec freshen_pat (p : M.pat) : M.pat * (string * E.t) list =
    match p with
    | M.Pwild -> (M.Pwild, [])
    | M.Pvar (x, t) ->
      if List.mem x avoid then begin
        let x' = fresh x in
        (M.Pvar (x', t), [ (x, E.Var (x', t)) ])
      end
      else (p, [])
    | M.Ptuple ps ->
      let ps', subs = List.split (List.map freshen_pat ps) in
      (M.Ptuple ps', List.concat subs)
  in
  let rec go (m : M.t) : M.t =
    match m with
    | M.Bind (a, p, b) ->
      let p', sub = freshen_pat p in
      M.Bind (go a, p', go (M.subst sub b))
    | M.Try (a, p, b) ->
      let p', sub = freshen_pat p in
      M.Try (go a, p', go (M.subst sub b))
    | M.Cond (c, a, b) -> M.Cond (c, go a, go b)
    | M.While (p, c, body, init) ->
      let p', sub = freshen_pat p in
      M.While (p', E.subst sub c, go (M.subst sub body), init)
    | M.Return _ | M.Gets _ | M.Modify _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _
    | M.Call _ | M.Exec_concrete _ ->
      m
  in
  go m

(* Replace byte-level validity conjunctions by is_valid in the positive
   positions of a guard condition.  is_valid implies alignment and span
   (heap_lift's definition), so the result implies the original — a sound
   strengthening for guards. *)
let rec strengthen_positive (e : E.t) : E.t =
  match e with
  | E.Binop (E.And, E.PtrAligned (c, p), E.PtrSpan (c', p'))
    when Ty.cty_equal c c' && E.equal p p' ->
    E.IsValid (c, p)
  | E.Binop (E.And, a, b) -> E.and_e (strengthen_positive a) (strengthen_positive b)
  | E.Binop (E.Or, a, b) -> E.or_e (strengthen_positive a) (strengthen_positive b)
  | E.Binop (E.Imp, a, b) -> E.imp_e a (strengthen_positive b) (* a is negative: keep *)
  | _ -> e

(* Dead-iterator-component analysis for Rw_prune_loop: rewrite every
   tail-position [Return (Tuple es)] of a loop body, dropping component i.
   Fails (None) when the body's result is not in that shape. *)
let rec drop_tail_component i (m : M.t) : M.t option =
  match m with
  | M.Return (E.Tuple es) when i < List.length es ->
    Some (M.Return (tuple_or_single (List.filteri (fun j _ -> j <> i) es)))
  | M.Bind (a, p, b) -> (
    match drop_tail_component i b with
    | Some b' -> Some (M.Bind (a, p, b'))
    | None -> None)
  | M.Cond (c, a, b) -> (
    match (drop_tail_component i a, drop_tail_component i b) with
    | Some a', Some b' -> Some (M.Cond (c, a', b'))
    | _ -> None)
  | _ -> None

and tuple_or_single = function
  | [] -> E.unit_e
  | [ e ] -> e
  | es -> E.Tuple es

let pat_or_single = function
  | [] -> M.Pwild
  | [ p ] -> p
  | ps -> M.Ptuple ps

let drop_i i xs = List.filteri (fun j _ -> j <> i) xs

(* Prepend a guard when a precondition is non-trivial. *)
let guard_if kind (p : E.t) (m : M.t) : M.t =
  if E.equal p E.true_e then m else M.Bind (M.Guard (kind, p), M.Pwild, m)

(* ------------------------------------------------------------------ *)
(* The inference function: rule + premise conclusions -> conclusion.

   INVARIANT (wvars locality): [ctx.wvars] is consulted ONLY by the word
   rules — the [W_*] cases below and the [Fn_chain] fold over their
   conclusions — via [wvar_conv]/[mentions_wvar]/[abs_pat]/[pat_conv]
   above.  [Driver.check_all] relies on this: it re-checks each
   function's L1/L2/HL component theorems under that function's
   recomputed word-abstraction context, which is sound precisely because
   those derivations contain no wvars-sensitive rule and the two contexts
   differ only in [wvars].  If you make any non-W_* rule read
   [ctx.wvars], revisit the grouping in [Driver.check_all] (the
   "components check under the run context" test in
   [test/test_perf_layer.ml] guards this and will fail). *)

let rec infer (ctx : ctx) (rule : rule) (prems : judgment list) : (judgment, string) result =
  match rule with
  (* ================= L1: Table 1 ================= *)
  | L1 stmt -> infer_l1 ctx stmt prems
  (* ================= L2: equivalences ================= *)
  | Eq_refl m -> ok (Equiv (m, m))
  | Eq_sym ->
    let* prems = prems_n 1 prems in
    let* a, c = as_equiv (List.hd prems) in
    ok (Equiv (c, a))
  | Eq_trans ->
    let* prems = prems_n 2 prems in
    let* a, b1 = as_equiv (List.nth prems 0) in
    let* b2, c = as_equiv (List.nth prems 1) in
    if M.equal b1 b2 then ok (Equiv (a, c)) else fail "eq_trans: middle terms differ"
  | Eq_bind p ->
    let* prems = prems_n 2 prems in
    let* a1, c1 = as_equiv (List.nth prems 0) in
    let* a2, c2 = as_equiv (List.nth prems 1) in
    ok (Equiv (M.Bind (a1, p, a2), M.Bind (c1, p, c2)))
  | Eq_try p ->
    let* prems = prems_n 2 prems in
    let* a1, c1 = as_equiv (List.nth prems 0) in
    let* a2, c2 = as_equiv (List.nth prems 1) in
    ok (Equiv (M.Try (a1, p, a2), M.Try (c1, p, c2)))
  | Eq_cond c ->
    let* prems = prems_n 2 prems in
    let* a1, c1 = as_equiv (List.nth prems 0) in
    let* a2, c2 = as_equiv (List.nth prems 1) in
    ok (Equiv (M.Cond (c, a1, a2), M.Cond (c, c1, c2)))
  | Eq_while (p, cond, init) ->
    let* prems = prems_n 1 prems in
    let* a, c = as_equiv (List.hd prems) in
    ok (Equiv (M.While (p, cond, a, init), M.While (p, cond, c, init)))
  | Rw_return_bind (M.Return e, p, b) ->
    (* capturing binders are alpha-renamed away; the conclusion relates the
       substituted (renamed) body to the *original* term *)
    let b' = if capture_free e b then b else alpha_avoid (E.free_vars e) b in
    (match bind_expr_to_pat p e with
    | Some bs -> ok (Equiv (M.subst bs b', M.Bind (M.Return e, p, b)))
    | None -> fail "rw_return_bind: pattern does not destructure expression")
  | Rw_gets_bind (M.Gets e, p, b) ->
    if E.reads_state e then fail "rw_gets_bind: expression reads state"
    else begin
      let b' = if capture_free e b then b else alpha_avoid (E.free_vars e) b in
      match bind_expr_to_pat p e with
      | Some bs -> ok (Equiv (M.subst bs b', M.Bind (M.Gets e, p, b)))
      | None -> fail "rw_gets_bind: pattern mismatch"
    end
  | Rw_gets_bind _ -> fail "rw_gets_bind: not a gets"
  | Rw_bind_return (a, M.Pvar (x, t)) ->
    ok (Equiv (a, M.Bind (a, M.Pvar (x, t), M.Return (E.Var (x, t)))))
  | Rw_bind_return (a, (M.Ptuple _ as p)) ->
    ok (Equiv (a, M.Bind (a, p, M.Return (M.pat_expr p))))
  | Rw_bind_return (_, M.Pwild) -> fail "rw_bind_return: wildcard"
  | Rw_bind_assoc (a, p, b, q, c) ->
    (* (do v <- (do w <- A; B od); C od) = do w <- A; v <- B; C od,
       provided w's variables do not occur free in C *)
    let pvars = List.map fst (M.pat_vars p) in
    let cfree = M.free_vars c in
    if List.exists (fun v -> List.mem v cfree) pvars then
      fail "rw_bind_assoc: variable capture"
    else ok (Equiv (M.Bind (a, p, M.Bind (b, q, c)), M.Bind (M.Bind (a, p, b), q, c)))
  | Rw_gets_pure e ->
    if E.reads_state e then fail "rw_gets_pure: reads state"
    else ok (Equiv (M.Return e, M.Gets e))
  | Rw_guard_true k -> ok (Equiv (M.Return E.unit_e, M.Guard (k, E.true_e)))
  | Rw_cond_true (a, b) -> ok (Equiv (a, M.Cond (E.true_e, a, b)))
  | Rw_cond_false (a, b) -> ok (Equiv (b, M.Cond (E.false_e, a, b)))
  | Rw_cond_same (c, a) ->
    if E.reads_state c then fail "rw_cond_same: effectful condition"
    else ok (Equiv (a, M.Cond (c, a, a)))
  | Rw_try_nothrow (a, p, h) ->
    if nothrow_in ctx.nothrows a then ok (Equiv (a, M.Try (a, p, h)))
    else begin
      (* Dead re-throw pruning: a handler of shape
         condition (exn = K) H (throw ...) where the body can only throw K. *)
      match (thrown_codes a, h) with
      | Some codes, M.Cond (c, h1, M.Throw _)
        when List.length codes <= 1
             && List.for_all (fun k -> E.equal c (Ir.exn_is k)) codes ->
        ok (Equiv (M.Try (a, p, h1), M.Try (a, p, h)))
      | _ -> fail "rw_try_nothrow: body may throw"
    end
  | Rw_seq_unit a -> (
    match a with
    | M.Modify _ | M.Guard _ ->
      ok (Equiv (a, M.Bind (a, M.Pwild, M.Return E.unit_e)))
    | _ -> fail "rw_seq_unit: not a unit-valued statement")
  | Rw_lift (params, locals, ret_ty, body) -> (
    match Lift.lift_body ctx.lenv ~params ~locals ~ret_ty body with
    | lifted -> ok (Equiv (lifted, body))
    | exception Lift.Lift_failure m -> fail "rw_lift: %s" m)
  | Rw_simp m -> ok (Equiv (msimp ctx.lenv m, m))
  | Rw_elim_returns (m, ret_ty) -> (
    match m with
    | M.Try (body, _, M.Return (E.Var (rv, _))) when String.equal rv Ir.ret_var -> (
      (* Normal completion of the body yields the function result; throws
         carry it as the second exception component.  Straighten. *)
      let res = "fn_result'" in
      match str ctx.nothrows body (M.Pvar (res, ret_ty), M.Return (E.Var (res, ret_ty))) with
      | Some body' when nothrow_in ctx.nothrows body' -> ok (Equiv (body', m))
      | _ -> fail "rw_elim_returns: body not convertible")
    | _ -> fail "rw_elim_returns: not a return-wrapper")
  | Rw_dead_after_throw (e, p, b) ->
    ok (Equiv (M.Throw e, M.Bind (M.Throw e, p, b)))
  | Rw_dead_after_fail (p, b) -> ok (Equiv (M.Fail, M.Bind (M.Fail, p, b)))
  | Rw_cond_return (c, x, y) -> (
    let value_of = function
      | M.Return e | M.Gets e -> Some e
      | _ -> None
    in
    match (value_of x, value_of y) with
    | Some ex, Some ey ->
      let fused = E.Ite (c, ex, ey) in
      let m' = if E.reads_state fused then M.Gets fused else M.Return fused in
      ok (Equiv (m', M.Cond (c, x, y)))
    | _ -> fail "rw_cond_return: branches are not value computations")
  | Rw_discharge m -> ok (Equiv (discharge_guards ctx.lenv m, m))
  | Rule_guard_true (m, cert) -> (
    match Absdom.discharge ctx.lenv ctx.fbodies cert m with
    | Result.Ok m' -> ok (Equiv (m', m))
    | Result.Error msg -> fail "rule_guard_true: %s" msg)
  | Rw_prune_loop (i, ip, cond, body, init, qp, k) -> (
    match (ip, init, qp) with
    | M.Ptuple ips, E.Tuple inits, M.Ptuple qps
      when i < List.length ips
           && List.length ips = List.length inits
           && List.length ips = List.length qps -> (
      let flat = function
        | M.Pvar (x, _) -> Some [ x ]
        | M.Pwild -> Some []
        | M.Ptuple _ -> None (* nested: conservatively refuse *)
      in
      match (flat (List.nth ips i), flat (List.nth qps i)) with
      | None, _ | _, None -> fail "rw_prune_loop: nested component pattern"
      | Some n1, Some n2 ->
      let dead_names = n1 @ n2 in
      match drop_tail_component i body with
      | None -> fail "rw_prune_loop: body result is not a literal tuple"
      | Some body' ->
        let ips' = drop_i i ips and inits' = drop_i i inits and qps' = drop_i i qps in
        let new_loop =
          M.While (pat_or_single ips', cond, body', tuple_or_single inits')
        in
        let new_term = M.Bind (new_loop, pat_or_single qps', k) in
        (* the dropped component must be genuinely dead *)
        let mentions m =
          List.exists (fun x -> List.mem x (M.free_vars m)) dead_names
        in
        let cond_reads =
          List.exists (fun x -> List.mem x (E.free_vars cond)) dead_names
        in
        if cond_reads then fail "rw_prune_loop: condition reads the component"
        else if mentions body' then fail "rw_prune_loop: body reads the component"
        else if mentions k then fail "rw_prune_loop: continuation reads the component"
        else
          ok
            (Equiv
               ( new_term,
                 M.Bind (M.While (ip, cond, body, init), qp, k) )))
    | _ -> fail "rw_prune_loop: not a tuple-iterator loop")
  | Rw_hoist_guard (a, p, k, g, b) -> (
    match a with
    | M.Return _ | M.Gets _ ->
      let bound = List.map fst (M.pat_vars p) in
      if List.exists (fun v -> List.mem v bound) (E.free_vars g) then
        fail "rw_hoist_guard: guard uses the bound variable"
      else
        ok
          (Equiv
             ( M.Bind (M.Guard (k, g), M.Pwild, M.Bind (a, p, b)),
               M.Bind (a, p, M.Bind (M.Guard (k, g), M.Pwild, b)) ))
    | _ -> fail "rw_hoist_guard: prefix is not state-neutral")
  | Rw_guard_past_write (sms, k, g, b) ->
    let writes_ok =
      List.for_all
        (function
          | M.Typed_write _ | M.Heap_write _ | M.Global_set _ -> true
          | M.Retype _ | M.Local_set _ -> false)
        sms
    in
    let rec validity_only (e : E.t) =
      match e with
      | E.TypedRead _ | E.HeapRead _ | E.Global _ -> false
      | _ -> List.for_all validity_only (E.children e)
    in
    (* Validity predicates depend only on the tag map, which value writes
       never change; value reads in the guard would not commute. *)
    if not writes_ok then fail "rw_guard_past_write: retype or local write"
    else if not (validity_only g) then fail "rw_guard_past_write: guard reads heap values"
    else begin
      let uses_globals =
        List.exists (function M.Global_set _ -> true | _ -> false) sms
      in
      if uses_globals then fail "rw_guard_past_write: global write"
      else
        ok
          (Equiv
             ( M.Bind (M.Guard (k, g), M.Pwild, M.Bind (M.Modify sms, M.Pwild, b)),
               M.Bind (M.Modify sms, M.Pwild, M.Bind (M.Guard (k, g), M.Pwild, b)) ))
    end
  | Rw_dup_guard (k1, g1, k2, g2, b) ->
    if implies_syn g1 g2 then
      ok
        (Equiv
           ( M.Bind (M.Guard (k1, g1), M.Pwild, b),
             M.Bind (M.Guard (k1, g1), M.Pwild, M.Bind (M.Guard (k2, g2), M.Pwild, b)) ))
    else fail "rw_dup_guard: no syntactic implication"
  | Rw_discharge_cond_guard (c, thenb, elseb) -> (
    match thenb with
    | M.Bind (M.Guard (_, g), M.Pwild, a) when implies_syn c g ->
      ok (Equiv (M.Cond (c, a, elseb), M.Cond (c, thenb, elseb)))
    | _ -> fail "rw_discharge_cond_guard: no implication")
  | Rw_discharge_loop_guard (p, c, body, init) -> (
    match body with
    | M.Bind (M.Guard (_, g), M.Pwild, rest) when implies_syn c g ->
      ok (Equiv (M.While (p, c, rest, init), M.While (p, c, body, init)))
    | _ -> fail "rw_discharge_loop_guard: no implication")
  (* ================= Word abstraction: values ================= *)
  | W_triv (f, c) ->
    if mentions_wvar ctx c then fail "w_triv: mentions abstracted variables"
    else ok (Abs_w_val (E.true_e, f, conv_expr f c, c))
  | W_var x -> (
    match List.assoc_opt x ctx.wvars with
    | Some (s, w) ->
      ok
        (Abs_w_val
           ( E.true_e,
             conv_of_sign s w,
             E.Var (x, Ty.ideal_of_word_sign s),
             E.Var (x, Ty.Tword (s, w)) ))
    | None -> fail "w_var: %s is not abstracted" x)
  | W_const (s, w, v) ->
    let word = W.of_bignum w v in
    let ideal =
      match s with
      | Ty.Unsigned -> E.big_nat_e (W.unat word)
      | Ty.Signed -> E.big_int_e (W.sint word)
    in
    ok (Abs_w_val (E.true_e, conv_of_sign s w, ideal, E.Const (Value.vword s word)))
  | W_id e ->
    if mentions_wvar ctx e then fail "w_id: mentions abstracted variables"
    else ok (Abs_w_val (E.true_e, Cid, e, e))
  | W_binop (op, sign, w) -> infer_w_binop ctx op sign w prems
  | W_neg (sign, w) -> (
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    match (sign, f) with
    | Ty.Signed, Csint w' when w = w' ->
      let e = E.Unop (E.Neg, a) in
      ok (Abs_w_val (E.and_e p (in_srange_e w e), Csint w, e, E.Unop (E.Neg, c)))
    | Ty.Unsigned, _ -> fail "w_neg: unsigned negation is not abstracted (wraps)"
    | _ -> fail "w_neg: premise conv mismatch")
  | W_recon (sign, w) ->
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    let expected = conv_of_sign sign w in
    if conv_equal f expected then
      ok (Abs_w_val (p, Cid, E.Cast (Ty.Tword (sign, w), a), c))
    else fail "w_recon: conv mismatch"
  | W_ite ->
    let* prems = prems_n 3 prems in
    let* pc, fc, ac, cc = as_wval (List.nth prems 0) in
    let* pa, fa, aa, ca = as_wval (List.nth prems 1) in
    let* pb, fb, ab, cb = as_wval (List.nth prems 2) in
    if not (conv_equal fc Cid) then fail "w_ite: condition must abstract to itself"
    else if not (conv_equal fa fb) then fail "w_ite: branch convs differ"
    else
      ok
        (Abs_w_val
           ( E.and_e pc (E.and_e (E.imp_e ac pa) (E.imp_e (E.not_e ac) pb)),
             fa,
             E.Ite (ac, aa, ab),
             E.Ite (cc, ca, cb) ))
  | W_tuple ->
    let* triples =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* p, f, a, c = as_wval j in
          ok ((p, f, a, c) :: acc))
        (ok []) prems
    in
    let triples = List.rev triples in
    let p = List.fold_left (fun acc (pi, _, _, _) -> E.and_e acc pi) E.true_e triples in
    ok
      (Abs_w_val
         ( p,
           Ctuple (List.map (fun (_, f, _, _) -> f) triples),
           E.Tuple (List.map (fun (_, _, a, _) -> a) triples),
           E.Tuple (List.map (fun (_, _, _, c) -> c) triples) ))
  | W_node skel -> (
    match skel with
    | E.Var (x, _) when List.mem_assoc x ctx.wvars ->
      fail "w_node: abstracted variable needs w_var"
    | _ ->
      let children = E.children skel in
      if List.length prems <> List.length children then fail "w_node: premise count"
      else begin
        let* pairs =
          List.fold_left2
            (fun acc j c ->
              let* acc = acc in
              let* p, f, a, c' = as_wval j in
              if not (conv_equal f Cid) then fail "w_node: children must be Cid"
              else if not (E.equal c c') then fail "w_node: child mismatch"
              else ok ((p, a) :: acc))
            (ok []) prems children
        in
        let pairs = List.rev pairs in
        let p = List.fold_left (fun acc (pi, _) -> E.and_e acc pi) E.true_e pairs in
        ok (Abs_w_val (p, Cid, E.replace_children skel (List.map snd pairs), skel))
      end)
  | W_shortcircuit op -> (
    match op with
    | E.And | E.Or ->
      let* prems = prems_n 2 prems in
      let* pa, fa, aa, ca = as_wval (List.nth prems 0) in
      let* pb, fb, ab, cb = as_wval (List.nth prems 1) in
      if not (conv_equal fa Cid && conv_equal fb Cid) then
        fail "w_shortcircuit: operands must be Cid"
      else begin
        let gate = match op with E.And -> aa | _ -> E.not_e aa in
        ok
          (Abs_w_val
             (E.and_e pa (E.imp_e gate pb), Cid, E.Binop (op, aa, ab), E.Binop (op, ca, cb)))
      end
    | _ -> fail "w_shortcircuit: not a boolean connective")
  | W_unconv (sign, w) ->
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    if not (conv_equal f (conv_of_sign sign w)) then fail "w_unconv: conv mismatch"
    else begin
      let ideal = Ty.ideal_of_word_sign sign in
      ok (Abs_w_val (p, Cid, a, E.OfWord (ideal, c)))
    end
  | W_abs_any (sign, w) ->
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    if not (conv_equal f Cid) then fail "w_abs_any: premise must be Cid"
    else begin
      let ideal = Ty.ideal_of_word_sign sign in
      ok (Abs_w_val (p, conv_of_sign sign w, E.OfWord (ideal, a), c))
    end
  | W_weaken p' ->
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    (* Strengthening the precondition is always sound. *)
    ok (Abs_w_val (E.and_e p' p, f, a, c))
  | W_custom name -> (
    match Hashtbl.find_opt custom_rules name with
    | Some f -> f ctx prems
    | None -> fail "w_custom: unknown rule %s" name)
  (* ================= Word abstraction: statements ================= *)
  | Ws_ret ->
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    ok (Abs_w_stmt (p, f, Cid, M.Return a, M.Return c))
  | Ws_gets ->
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    ok (Abs_w_stmt (p, f, Cid, M.Gets a, M.Gets c))
  | Ws_guard k ->
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    if not (conv_equal f Cid) then fail "ws_guard: condition must abstract to itself"
    else
      (* The abstract guard also assumes the precondition: failing more
         often than the concrete program is sound for abs_w_stmt. *)
      ok (Abs_w_stmt (E.true_e, Cid, Cid, M.Guard (k, E.and_e p a), M.Guard (k, c)))
  | Ws_modify sms ->
    let rec consume prems sms acc_p acc =
      match sms with
      | [] ->
        if prems = [] then ok (acc_p, List.rev acc) else fail "ws_modify: surplus premises"
      | sm :: rest -> (
        match sm with
        | M.Heap_write (cty, cp, cv) | M.Typed_write (cty, cp, cv) -> (
          match prems with
          | j1 :: j2 :: prems' ->
            let* p1, f1, a1, c1 = as_wval j1 in
            let* p2, f2, a2, c2 = as_wval j2 in
            if not (conv_equal f1 Cid && conv_equal f2 Cid) then
              fail "ws_modify: operands must be re-concretised"
            else if not (E.equal c1 cp && E.equal c2 cv) then
              fail "ws_modify: premise/skeleton mismatch"
            else begin
              let mk p v =
                match sm with
                | M.Heap_write _ -> M.Heap_write (cty, p, v)
                | _ -> M.Typed_write (cty, p, v)
              in
              consume prems' rest (E.and_e acc_p (E.and_e p1 p2)) (mk a1 a2 :: acc)
            end
          | _ -> fail "ws_modify: missing premises")
        | M.Global_set (x, ce) | M.Local_set (x, ce) -> (
          match prems with
          | j1 :: prems' ->
            let* p1, f1, a1, c1 = as_wval j1 in
            if not (conv_equal f1 Cid) then fail "ws_modify: value must be re-concretised"
            else if not (E.equal c1 ce) then fail "ws_modify: premise/skeleton mismatch"
            else begin
              let mk e =
                match sm with M.Global_set _ -> M.Global_set (x, e) | _ -> M.Local_set (x, e)
              in
              consume prems' rest (E.and_e acc_p p1) (mk a1 :: acc)
            end
          | _ -> fail "ws_modify: missing premises")
        | M.Retype (cty, ce) -> (
          match prems with
          | j1 :: prems' ->
            let* p1, f1, a1, c1 = as_wval j1 in
            if not (conv_equal f1 Cid && E.equal c1 ce) then fail "ws_modify: retype mismatch"
            else consume prems' rest (E.and_e acc_p p1) (M.Retype (cty, a1) :: acc)
          | _ -> fail "ws_modify: missing premises"))
    in
    let* p, abs_sms = consume prems sms E.true_e [] in
    ok (Abs_w_stmt (p, Cid, Cid, M.Modify abs_sms, M.Modify sms))
  | Ws_fail (rx, ex) -> ok (Abs_w_stmt (E.true_e, rx, ex, M.Fail, M.Fail))
  | Ws_unknown t -> ok (Abs_w_stmt (E.true_e, Cid, Cid, M.Unknown t, M.Unknown t))
  | Ws_throw rx ->
    let* prems = prems_n 1 prems in
    let* p, f, a, c = as_wval (List.hd prems) in
    (* The thrown value may be abstracted: f plays the paper's ex role.
       A throw never returns normally, so rx is unconstrained. *)
    ok (Abs_w_stmt (p, rx, f, M.Throw a, M.Throw c))
  | Ws_bind cpat ->
    let* prems = prems_n 2 prems in
    let* pl, rx1, exl, la, lc = as_wstmt (List.nth prems 0) in
    let* pr, rx2, exr, ra, rc = as_wstmt (List.nth prems 1) in
    if not (E.equal pl E.true_e && E.equal pr E.true_e) then
      fail "ws_bind: premises must be guard-wrapped first"
    else begin
      match merge_ex ctx.nothrows exl la exr ra with
      | Result.Error m -> fail "ws_bind: %s" m
      | Result.Ok ex ->
        if not (conv_equal rx1 (pat_conv ctx cpat)) then
          fail "ws_bind: left conv does not match the bound pattern"
        else
          ok
            (Abs_w_stmt
               (E.true_e, rx2, ex, M.Bind (la, abs_pat ctx cpat, ra), M.Bind (lc, cpat, rc)))
    end
  | Ws_try cpat ->
    let* prems = prems_n 2 prems in
    let* pl, rx1, exl, la, lc = as_wstmt (List.nth prems 0) in
    let* pr, rx2, exr, ra, rc = as_wstmt (List.nth prems 1) in
    if not (E.equal pl E.true_e && E.equal pr E.true_e) then
      fail "ws_try: premises must be guard-wrapped first"
    else if not (conv_equal exl (pat_conv ctx cpat)) then
      fail "ws_try: body exception conv does not match the handler pattern"
    else if not (conv_equal rx1 rx2) then fail "ws_try: result convs differ"
    else
      ok
        (Abs_w_stmt
           (E.true_e, rx1, exr, M.Try (la, abs_pat ctx cpat, ra), M.Try (lc, cpat, rc)))
  | Ws_cond ->
    let* prems = prems_n 3 prems in
    let* pc, fc, ac, cc = as_wval (List.nth prems 0) in
    let* pa, rxa, exa, aa, ca = as_wstmt (List.nth prems 1) in
    let* pb, rxb, exb, ab, cb = as_wstmt (List.nth prems 2) in
    if not (conv_equal fc Cid) then fail "ws_cond: condition must abstract to itself"
    else if not (E.equal pa E.true_e && E.equal pb E.true_e) then
      fail "ws_cond: branches must be guard-wrapped first"
    else if not (conv_equal rxa rxb) then fail "ws_cond: branch result convs differ"
    else begin
      match merge_ex ctx.nothrows exa aa exb ab with
      | Result.Error m -> fail "ws_cond: %s" m
      | Result.Ok ex -> ok (Abs_w_stmt (pc, rxa, ex, M.Cond (ac, aa, ab), M.Cond (cc, ca, cb)))
    end
  | Ws_while cpat ->
    let* prems = prems_n 3 prems in
    let* pi, fi, ai, ci = as_wval (List.nth prems 0) in
    let* pc, fc, ac, cc = as_wval (List.nth prems 1) in
    let* pb, rxb, exb, ab, cb = as_wstmt (List.nth prems 2) in
    let iconv = pat_conv ctx cpat in
    if not (conv_equal fi iconv) then fail "ws_while: init conv mismatch"
    else if not (conv_equal fc Cid) then fail "ws_while: condition must abstract to itself"
    else if not (E.equal pc E.true_e) then fail "ws_while: condition precondition must be trivial"
    else if not (E.equal pb E.true_e) then fail "ws_while: body must be guard-wrapped first"
    else if not (conv_equal rxb iconv) then fail "ws_while: body conv mismatch"
    else
      ok
        (Abs_w_stmt
           ( pi,
             iconv,
             exb,
             M.While (abs_pat ctx cpat, ac, ab, ai),
             M.While (cpat, cc, cb, ci) ))
  | Ws_call fname -> (
    match List.assoc_opt fname ctx.fsigs with
    | None -> fail "ws_call: no signature for %s" fname
    | Some (param_convs, ret_conv) ->
      if List.length prems <> List.length param_convs then fail "ws_call: arity mismatch"
      else begin
        let* args =
          List.fold_left2
            (fun acc j expected ->
              let* acc = acc in
              let* p, f, a, c = as_wval j in
              if not (conv_equal f expected) then fail "ws_call: argument conv mismatch"
              else ok ((p, a, c) :: acc))
            (ok []) prems param_convs
        in
        let args = List.rev args in
        let p = List.fold_left (fun acc (pi, _, _) -> E.and_e acc pi) E.true_e args in
        ok
          (Abs_w_stmt
             ( p,
               ret_conv,
               Cid,
               M.Call (fname, List.map (fun (_, a, _) -> a) args),
               M.Call (fname, List.map (fun (_, _, c) -> c) args) ))
      end)
  | Ws_exec_concrete fname ->
    let* args =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* p, f, a, c = as_wval j in
          if not (conv_equal f Cid) then fail "ws_exec_concrete: args must be concrete"
          else ok ((p, a, c) :: acc))
        (ok []) prems
    in
    let args = List.rev args in
    let p = List.fold_left (fun acc (pi, _, _) -> E.and_e acc pi) E.true_e args in
    ok
      (Abs_w_stmt
         ( p,
           Cid,
           Cid,
           M.Exec_concrete (fname, List.map (fun (_, a, _) -> a) args),
           M.Exec_concrete (fname, List.map (fun (_, _, c) -> c) args) ))
  | Ws_wrap_guard ->
    let* prems = prems_n 1 prems in
    let* p, rx, ex, a, c = as_wstmt (List.hd prems) in
    ok (Abs_w_stmt (E.true_e, rx, ex, guard_if Ir.Unsigned_overflow p a, c))
  (* ================= Heap abstraction ================= *)
  | Hv_id e ->
    if E.reads_concrete_heap e then fail "hv_id: reads the byte heap"
    else ok (Abs_h_val (E.true_e, e, e))
  | Hv_read cty ->
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    ok
      (Abs_h_val
         (E.and_e p (E.IsValid (cty, a)), E.TypedRead (cty, a), E.HeapRead (cty, c)))
  | Hv_read_field (sname, fname) -> (
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    match Layout.field_type ctx.lenv sname fname with
    | fty ->
      ok
        (Abs_h_val
           ( E.and_e p (E.IsValid (Ty.Cstruct sname, a)),
             E.StructGet (sname, fname, E.TypedRead (Ty.Cstruct sname, a)),
             E.HeapRead (fty, E.FieldAddr (sname, fname, c)) ))
    | exception Layout.Unknown_field _ -> fail "hv_read_field: unknown field")
  | Hv_node skel -> (
    (* Congruence: rebuild a non-heap node from abstracted children. *)
    match skel with
    | E.HeapRead _ -> fail "hv_node: byte-heap reads need hv_read"
    | _ ->
      let children = E.children skel in
      if List.length prems <> List.length children then fail "hv_node: premise count"
      else begin
        let* triples =
          List.fold_left2
            (fun acc j c ->
              let* acc = acc in
              let* p, a, c' = as_hval j in
              if not (E.equal c c') then fail "hv_node: child mismatch" else ok ((p, a) :: acc))
            (ok []) prems children
        in
        let triples = List.rev triples in
        let p = List.fold_left (fun acc (pi, _) -> E.and_e acc pi) E.true_e triples in
        ok (Abs_h_val (p, E.replace_children skel (List.map snd triples), skel))
      end)
  | Hv_shortcircuit op -> (
    match op with
    | E.And | E.Or ->
      let* prems = prems_n 2 prems in
      let* pa, aa, ca = as_hval (List.nth prems 0) in
      let* pb, ab, cb = as_hval (List.nth prems 1) in
      (* b is evaluated only when a is true (∧) / false (∨). *)
      let gate = match op with E.And -> aa | _ -> E.not_e aa in
      ok
        (Abs_h_val
           (E.and_e pa (E.imp_e gate pb), E.Binop (op, aa, ab), E.Binop (op, ca, cb)))
    | _ -> fail "hv_shortcircuit: not a boolean connective")
  | Hv_ite ->
    let* prems = prems_n 3 prems in
    let* pc, ac, cc = as_hval (List.nth prems 0) in
    let* pa, aa, ca = as_hval (List.nth prems 1) in
    let* pb, ab, cb = as_hval (List.nth prems 2) in
    ok
      (Abs_h_val
         ( E.and_e pc (E.and_e (E.imp_e ac pa) (E.imp_e (E.not_e ac) pb)),
           E.Ite (ac, aa, ab),
           E.Ite (cc, ca, cb) ))
  | Hv_weaken p' ->
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    ok (Abs_h_val (E.and_e p' p, a, c))
  | Hs_pure m ->
    let ok_m = ref true in
    M.iter_exprs (fun e -> if E.reads_concrete_heap e then ok_m := false) m;
    let rec no_heap_write m =
      match m with
      | M.Modify ms ->
        List.for_all (function M.Heap_write _ | M.Retype _ -> false | _ -> true) ms
      | M.Bind (a, _, b) | M.Try (a, _, b) -> no_heap_write a && no_heap_write b
      | M.Cond (_, a, b) -> no_heap_write a && no_heap_write b
      | M.While (_, _, body, _) -> no_heap_write body
      | M.Call _ | M.Exec_concrete _ -> false
      | M.Return _ | M.Gets _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _ -> true
    in
    if !ok_m && no_heap_write m then ok (Abs_h_stmt (m, m))
    else fail "hs_pure: term touches the byte heap"
  | Hs_ret ->
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    ok (Abs_h_stmt (guard_if Ir.Ptr_valid p (M.Return a), M.Return c))
  | Hs_gets ->
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    ok (Abs_h_stmt (guard_if Ir.Ptr_valid p (M.Gets a), M.Gets c))
  | Hs_guard_ptr cty ->
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    (* HPTR: the abstract is_valid guard is stronger than the concrete
       alignment/span guard. *)
    let concrete = M.Guard (Ir.Ptr_valid, E.and_e (E.PtrAligned (cty, c)) (E.PtrSpan (cty, c))) in
    ok (Abs_h_stmt (guard_if Ir.Ptr_valid p (M.Guard (Ir.Ptr_valid, E.IsValid (cty, a))), concrete))
  | Hs_guard_strengthen k ->
    (* premise: abs_h_val for the *strengthened* condition; the concrete
       side is reconstructed by weakening is_valid back. *)
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    let rec weaken (e : E.t) : E.t =
      match e with
      | E.IsValid (cty, ptr) ->
        E.and_e (E.PtrAligned (cty, ptr)) (E.PtrSpan (cty, ptr))
      | E.Binop (E.And, x, y) -> E.and_e (weaken x) (weaken y)
      | E.Binop (E.Or, x, y) -> E.or_e (weaken x) (weaken y)
      | E.Binop (E.Imp, x, y) -> E.imp_e x (weaken y)
      | _ -> e
    in
    if not (E.equal (strengthen_positive (weaken c)) c) then
      fail "hs_guard_strengthen: premise does not round-trip"
    else ok (Abs_h_stmt (M.Guard (k, E.and_e p a), M.Guard (k, weaken c)))
  | Hs_guard k ->
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    ok (Abs_h_stmt (M.Guard (k, E.and_e p a), M.Guard (k, c)))
  | Hs_write cty ->
    let* prems = prems_n 2 prems in
    let* p1, a1, c1 = as_hval (List.nth prems 0) in
    let* p2, a2, c2 = as_hval (List.nth prems 1) in
    let p = E.and_e (E.and_e p1 p2) (E.IsValid (cty, a1)) in
    ok
      (Abs_h_stmt
         ( guard_if Ir.Ptr_valid p (M.Modify [ M.Typed_write (cty, a1, a2) ]),
           M.Modify [ M.Heap_write (cty, c1, c2) ] ))
  | Hs_write_field (sname, fname) -> (
    let* prems = prems_n 2 prems in
    let* p1, a1, c1 = as_hval (List.nth prems 0) in
    let* p2, a2, c2 = as_hval (List.nth prems 1) in
    match Layout.field_type ctx.lenv sname fname with
    | fty ->
      let sc = Ty.Cstruct sname in
      let p = E.and_e (E.and_e p1 p2) (E.IsValid (sc, a1)) in
      ok
        (Abs_h_stmt
           ( guard_if Ir.Ptr_valid p
               (M.Modify
                  [ M.Typed_write
                      (sc, a1, E.StructSet (sname, fname, E.TypedRead (sc, a1), a2)) ]),
             M.Modify [ M.Heap_write (fty, E.FieldAddr (sname, fname, c1), c2) ] ))
    | exception Layout.Unknown_field _ -> fail "hs_write_field: unknown field")
  | Hs_modify sms -> (
    (* Non-heap modifies (globals, local sets at L1). *)
    match
      List.for_all
        (function M.Global_set _ | M.Local_set _ -> true | _ -> false)
        sms
    with
    | false -> fail "hs_modify: heap writes need hs_write"
    | true ->
      let rec consume prems sms acc_p acc =
        match sms with
        | [] -> if prems = [] then ok (acc_p, List.rev acc) else fail "hs_modify: surplus"
        | sm :: rest -> (
          match (sm, prems) with
          | (M.Global_set (x, ce) | M.Local_set (x, ce)), j :: prems' ->
            let* p, a, c = as_hval j in
            if not (E.equal c ce) then fail "hs_modify: mismatch"
            else begin
              let mk e =
                match sm with M.Global_set _ -> M.Global_set (x, e) | _ -> M.Local_set (x, e)
              in
              consume prems' rest (E.and_e acc_p p) (mk a :: acc)
            end
          | _ -> fail "hs_modify: missing premise")
      in
      let* p, abs_sms = consume prems sms E.true_e [] in
      ok (Abs_h_stmt (guard_if Ir.Ptr_valid p (M.Modify abs_sms), M.Modify sms)))
  | Hs_fail -> ok (Abs_h_stmt (M.Fail, M.Fail))
  | Hs_unknown t -> ok (Abs_h_stmt (M.Unknown t, M.Unknown t))
  | Hs_throw ->
    let* prems = prems_n 1 prems in
    let* p, a, c = as_hval (List.hd prems) in
    ok (Abs_h_stmt (guard_if Ir.Ptr_valid p (M.Throw a), M.Throw c))
  | Hs_bind pat ->
    let* prems = prems_n 2 prems in
    let* la, lc = as_hstmt (List.nth prems 0) in
    let* ra, rc = as_hstmt (List.nth prems 1) in
    ok (Abs_h_stmt (M.Bind (la, pat, ra), M.Bind (lc, pat, rc)))
  | Hs_try pat ->
    let* prems = prems_n 2 prems in
    let* la, lc = as_hstmt (List.nth prems 0) in
    let* ra, rc = as_hstmt (List.nth prems 1) in
    ok (Abs_h_stmt (M.Try (la, pat, ra), M.Try (lc, pat, rc)))
  | Hs_cond ->
    let* prems = prems_n 3 prems in
    let* pc, ac, cc = as_hval (List.nth prems 0) in
    let* aa, ca = as_hstmt (List.nth prems 1) in
    let* ab, cb = as_hstmt (List.nth prems 2) in
    ok (Abs_h_stmt (guard_if Ir.Ptr_valid pc (M.Cond (ac, aa, ab)), M.Cond (cc, ca, cb)))
  | Hs_while pat ->
    let* prems = prems_n 3 prems in
    let* pi, ai, ci = as_hval (List.nth prems 0) in
    let* pc, ac, cc = as_hval (List.nth prems 1) in
    let* ab, cb = as_hstmt (List.nth prems 2) in
    (* A loop condition that reads the heap incurs validity obligations at
       every evaluation point: before entry and after each iteration. *)
    let entry_guard =
      if E.equal pc E.true_e then []
      else begin
        match bind_expr_to_pat pat ai with
        | Some bs -> [ M.Guard (Ir.Ptr_valid, E.subst bs pc) ]
        | None -> [ M.Guard (Ir.Ptr_valid, E.subst [] pc) ]
      end
    in
    let body' =
      if E.equal pc E.true_e then ab
      else begin
        let res = "loop_res'" in
        let rty = M.pat_ty pat in
        M.Bind
          ( ab,
            M.Pvar (res, rty),
            M.Bind
              ( M.Guard
                  ( Ir.Ptr_valid,
                    match bind_expr_to_pat pat (E.Var (res, rty)) with
                    | Some bs -> E.subst bs pc
                    | None -> pc ),
                M.Pwild,
                M.Return (E.Var (res, rty)) ) )
      end
    in
    let a_loop = M.While (pat, ac, body', ai) in
    let a = M.seq_of_list (entry_guard @ [ a_loop ]) in
    ok (Abs_h_stmt (guard_if Ir.Ptr_valid pi a, M.While (pat, cc, cb, ci)))
  | Hs_call fname ->
    if not (List.mem fname ctx.lifted) then fail "hs_call: %s is not heap-lifted" fname
    else begin
      let* args =
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            let* p, a, c = as_hval j in
            ok ((p, a, c) :: acc))
          (ok []) prems
      in
      let args = List.rev args in
      let p = List.fold_left (fun acc (pi, _, _) -> E.and_e acc pi) E.true_e args in
      ok
        (Abs_h_stmt
           ( guard_if Ir.Ptr_valid p (M.Call (fname, List.map (fun (_, a, _) -> a) args)),
             M.Call (fname, List.map (fun (_, _, c) -> c) args) ))
    end
  | Hs_call_concrete fname ->
    (* Sec 4.6: calls from lifted code to byte-level code go through
       exec_concrete. *)
    let* args =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* p, a, c = as_hval j in
          ok ((p, a, c) :: acc))
        (ok []) prems
    in
    let args = List.rev args in
    let p = List.fold_left (fun acc (pi, _, _) -> E.and_e acc pi) E.true_e args in
    ok
      (Abs_h_stmt
         ( guard_if Ir.Ptr_valid p
             (M.Exec_concrete (fname, List.map (fun (_, a, _) -> a) args)),
           M.Call (fname, List.map (fun (_, _, c) -> c) args) ))
  (* ================= chaining ================= *)
  | Fn_chain name -> (
    (* corres_l1 C m1, m1 == m2 (possibly several), abs_h m3 m2,
       abs_w m4 m3 ... the conclusion names the end points. *)
    match prems with
    | [] -> fail "fn_chain: no premises"
    | first :: rest ->
      let* src, cur =
        match first with
        | Corres_l1 (_, m) -> ok (m, m)
        | Equiv (a, c) -> ok (c, a)
        | Abs_h_stmt (a, c) -> ok (c, a)
        | Abs_w_stmt (p, _, _, a, c) ->
          if E.equal p E.true_e then ok (c, a) else fail "fn_chain: open precondition"
        | j -> fail "fn_chain: bad first premise %a" pp_judgment j
      in
      let* final =
        List.fold_left
          (fun acc j ->
            let* cur = acc in
            match j with
            | Equiv (a, c) when M.equal c cur -> ok a
            | Abs_h_stmt (a, c) when M.equal c cur -> ok a
            | Abs_w_stmt (p, _, _, a, c) when M.equal c cur ->
              if E.equal p E.true_e then ok a else fail "fn_chain: open precondition"
            | _ -> fail "fn_chain: break in the chain"
          )
          (ok cur) rest
      in
      ok (Fn_refines (name, final, src)))

(* Destructure an expression along a pattern for substitution-based
   rewrites: (x, y) <- (e1, e2) gives [x := e1; y := e2]. *)
and bind_expr_to_pat (p : M.pat) (e : E.t) : (string * E.t) list option =
  match (p, e) with
  | M.Pwild, _ -> Some []
  | M.Pvar (x, _), e -> Some [ (x, e) ]
  | M.Ptuple ps, E.Tuple es when List.length ps = List.length es ->
    List.fold_left2
      (fun acc p e ->
        match (acc, bind_expr_to_pat p e) with
        | Some acc, Some bs -> Some (acc @ bs)
        | _ -> None)
      (Some []) ps es
  | M.Ptuple ps, e ->
    (* project *)
    let rec go i = function
      | [] -> Some []
      | p :: rest -> (
        match (bind_expr_to_pat p (E.Proj (i, e)), go (i + 1) rest) with
        | Some bs, Some rest' -> Some (bs @ rest')
        | _ -> None)
    in
    go 0 ps

(* ---- L1 rules: Table 1 pairing ---- *)
and infer_l1 ctx (stmt : Ir.stmt) (prems : judgment list) : (judgment, string) result =
  ignore ctx;
  let as_corres = function
    | Corres_l1 (s, m) -> ok (s, m)
    | j -> fail "expected corres_l1 premise, got %a" pp_judgment j
  in
  match stmt with
  | Ir.Skip -> ok (Corres_l1 (stmt, M.Return E.unit_e))
  | Ir.Seq (a, b) ->
    let* prems = prems_n 2 prems in
    let* sa, ma = as_corres (List.nth prems 0) in
    let* sb, mb = as_corres (List.nth prems 1) in
    if sa = a && sb = b then ok (Corres_l1 (stmt, M.Bind (ma, M.Pwild, mb)))
    else fail "l1 seq: premise mismatch"
  | Ir.Local_set (x, e) -> ok (Corres_l1 (stmt, M.Modify [ M.Local_set (x, e) ]))
  | Ir.Global_set (x, e) -> ok (Corres_l1 (stmt, M.Modify [ M.Global_set (x, e) ]))
  | Ir.Heap_write (c, p, v) -> ok (Corres_l1 (stmt, M.Modify [ M.Heap_write (c, p, v) ]))
  | Ir.Retype (c, p) -> ok (Corres_l1 (stmt, M.Modify [ M.Retype (c, p) ]))
  | Ir.Cond (c, a, b) ->
    let* prems = prems_n 2 prems in
    let* sa, ma = as_corres (List.nth prems 0) in
    let* sb, mb = as_corres (List.nth prems 1) in
    if sa = a && sb = b then ok (Corres_l1 (stmt, M.Cond (c, ma, mb)))
    else fail "l1 cond: premise mismatch"
  | Ir.While (c, body) ->
    let* prems = prems_n 1 prems in
    let* sb, mb = as_corres (List.hd prems) in
    if sb = body then ok (Corres_l1 (stmt, M.While (M.Pwild, c, mb, E.unit_e)))
    else fail "l1 while: premise mismatch"
  | Ir.Guard (k, e) -> ok (Corres_l1 (stmt, M.Guard (k, e)))
  | Ir.Throw -> ok (Corres_l1 (stmt, M.Throw E.unit_e))
  | Ir.Try (a, b) ->
    let* prems = prems_n 2 prems in
    let* sa, ma = as_corres (List.nth prems 0) in
    let* sb, mb = as_corres (List.nth prems 1) in
    if sa = a && sb = b then ok (Corres_l1 (stmt, M.Try (ma, M.Pwild, mb)))
    else fail "l1 try: premise mismatch"
  | Ir.Call (None, f, args) ->
    ok (Corres_l1 (stmt, M.Bind (M.Call (f, args), M.Pwild, M.Return E.unit_e)))
  | Ir.Call (Some d, f, args) ->
    (* bind the call result, then store it in the destination local *)
    let rv = "ret'" in
    let t = Ty.Tunit in
    (* The temporary's type annotation is only used for display; the value
       itself is dynamically typed. *)
    ok
      (Corres_l1
         ( stmt,
           M.Bind
             ( M.Call (f, args),
               M.Pvar (rv, t),
               M.Modify [ M.Local_set (d, E.Var (rv, t)) ] ) ))

and infer_w_binop ctx (op : E.binop) sign w prems : (judgment, string) result =
  ignore ctx;
  let* prems = prems_n 2 prems in
  let* p1, f1, a1, c1 = as_wval (List.nth prems 0) in
  let* p2, f2, a2, c2 = as_wval (List.nth prems 1) in
  let expected = conv_of_sign sign w in
  if not (conv_equal f1 expected && conv_equal f2 expected) then
    fail "w_binop: premise conv mismatch"
  else begin
    let pq = E.and_e p1 p2 in
    let abs = E.Binop (op, a1, a2) in
    let conc = E.Binop (op, c1, c2) in
    let arith precond = ok (Abs_w_val (E.and_e pq precond, expected, abs, conc)) in
    let cmp () = ok (Abs_w_val (pq, Cid, abs, conc)) in
    match (op, sign) with
    | E.Add, Ty.Unsigned -> arith (E.Binop (E.Le, abs, umax_e w))
    | E.Sub, Ty.Unsigned -> arith (E.Binop (E.Le, a2, a1))
    | E.Mul, Ty.Unsigned -> arith (E.Binop (E.Le, abs, umax_e w))
    | (E.Div | E.Rem), Ty.Unsigned -> arith E.true_e
    | (E.Add | E.Sub | E.Mul | E.Div), Ty.Signed -> arith (in_srange_e w abs)
    | E.Rem, Ty.Signed -> arith E.true_e
    | (E.Lt | E.Le | E.Gt | E.Ge | E.Eq | E.Ne), _ -> cmp ()
    | _ -> fail "w_binop: operator not abstracted (use w_recon)"
  end
