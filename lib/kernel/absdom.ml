module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module W = Ac_word
module B = Ac_bignum
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module SMap = Map.Make (String)

(* Abstract interpretation over the monadic language, in the kernel.

   Three cooperating domains run in one pass: integer intervals over
   [Ac_bignum] (so ideal ℤ/ℕ after word abstraction and wrapped machine
   words before it are both representable), pointer nullness, and
   definite values for booleans.  The pass serves the certificate checker
   behind [Rules.Rule_guard_true]: the *untrusted* analysis in
   [Ac_analysis] runs a widening fixpoint and records one loop invariant
   per [While]; [discharge] below re-walks the term, *verifying* each
   recorded invariant by a single inductiveness check (no fixpoint, no
   widening), and rewrites every guard whose condition the abstract state
   decides to [return ()].  Everything the theorem depends on is in this
   file and re-runs identically under [Thm.check] — the fixpoint engine
   stays outside the trusted base, exactly the trust story of the
   existing reflection rules.

   Soundness baseline (shared with the rest of the kernel, cf. [Esimp]):
   environments and states are well-typed and well-scoped — a variable's
   binding matches its annotation and free variables are bound.  Beyond
   that, discharging [Guard (k, c)] requires not only that [c] *decides*
   to true but that its evaluation provably cannot get stuck ([clean]
   below): [guard c = return ()] only holds when [c] evaluates, to true,
   in every reachable state.  Abstract states over-approximate the
   concrete states *reaching* a program point; executions that fail or
   get stuck beforehand stop there in both programs, which is why
   stuck-refining transfers (e.g. a [nat] cast clamping to [0, ∞)) are
   sound. *)

(* ------------------------------------------------------------------ *)
(* Intervals with optional (= infinite) bounds. *)

type itv = { lo : B.t option; hi : B.t option }

let itv_top = { lo = None; hi = None }
let itv_const n = { lo = Some n; hi = Some n }
let itv_make lo hi = { lo; hi }
let nat_top = { lo = Some B.zero; hi = None }

let itv_is_empty i =
  match (i.lo, i.hi) with Some l, Some h -> B.gt l h | _ -> false

let itv_mem n i =
  (match i.lo with None -> true | Some l -> B.le l n)
  && match i.hi with None -> true | Some h -> B.le n h

(* a ⊆ b *)
let itv_leq a b =
  itv_is_empty a
  || (match b.lo with
     | None -> true
     | Some bl -> ( match a.lo with None -> false | Some al -> B.ge al bl))
     && (match b.hi with
        | None -> true
        | Some bh -> ( match a.hi with None -> false | Some ah -> B.le ah bh))

let itv_join a b =
  if itv_is_empty a then b
  else if itv_is_empty b then a
  else
    {
      lo = (match (a.lo, b.lo) with Some x, Some y -> Some (B.min x y) | _ -> None);
      hi = (match (a.hi, b.hi) with Some x, Some y -> Some (B.max x y) | _ -> None);
    }

(* May be empty; callers treat an empty meet as bottom. *)
let itv_meet a b =
  {
    lo = (match (a.lo, b.lo) with Some x, Some y -> Some (B.max x y) | x, None -> x | None, y -> y);
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (B.min x y) | x, None -> x | None, y -> y);
  }

(* a ∇ b: keep a's bounds where b stayed inside them, drop the rest. *)
let itv_widen a b =
  {
    lo =
      (match (a.lo, b.lo) with
      | Some x, Some y when B.ge y x -> Some x
      | _ -> None);
    hi =
      (match (a.hi, b.hi) with
      | Some x, Some y when B.le y x -> Some x
      | _ -> None);
  }

let opt_map2 f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

let itv_add a b = { lo = opt_map2 B.add a.lo b.lo; hi = opt_map2 B.add a.hi b.hi }
let itv_neg a = { lo = Option.map B.neg a.hi; hi = Option.map B.neg a.lo }
let itv_sub a b = itv_add a (itv_neg b)

let itv_all_finite is =
  List.for_all (fun i -> i.lo <> None && i.hi <> None) is

(* Extrema over box corners; valid for operations monotone along every
   axis-parallel line of the box (B.mul, and truncated B.div with a
   sign-pure divisor). *)
let itv_corners f a b =
  match (a.lo, a.hi, b.lo, b.hi) with
  | Some al, Some ah, Some bl, Some bh ->
    let cs = [ f al bl; f al bh; f ah bl; f ah bh ] in
    { lo = Some (List.fold_left B.min (List.hd cs) cs);
      hi = Some (List.fold_left B.max (List.hd cs) cs) }
  | _ -> itv_top

let itv_mul a b =
  if itv_all_finite [ a; b ] then itv_corners B.mul a b
  else if itv_leq a (itv_const B.zero) || itv_leq b (itv_const B.zero) then itv_const B.zero
  else itv_top

(* Requires 0 ∉ b (checked by the caller). *)
let itv_div a b =
  if itv_all_finite [ a; b ] then itv_corners B.div a b else itv_top

(* Largest |remainder| bound from the divisor: max(|lo|,|hi|) - 1. *)
let itv_rem_bound b =
  opt_map2 (fun l h -> B.sub (B.max (B.abs l) (B.abs h)) B.one) b.lo b.hi

let itv_to_string i =
  let b = function None -> "_" | Some n -> B.to_string n in
  Printf.sprintf "[%s,%s]" (b i.lo) (b i.hi)

(* ------------------------------------------------------------------ *)
(* Parity of the sign-interpreted value (= of bit 0 of the two's-
   complement representation, since rep ≡ value mod 2^w and w ≥ 1).  A
   second, independent component of the word domain: wrapping mod 2^w
   preserves it, so it survives exactly the overflows that force the
   interval component to the full range. *)

type parity = Peven | Podd | Ptop

let par_of_const n = if B.is_zero (B.rem n (B.of_int 2)) then Peven else Podd
let par_of_itv i =
  match (i.lo, i.hi) with
  | Some a, Some b when B.equal a b -> par_of_const a
  | _ -> Ptop

let par_leq a b = b = Ptop || a = b
let par_join a b = if a = b then a else Ptop

(* x + y and x xor y agree mod 2. *)
let par_add a b =
  match (a, b) with
  | Ptop, _ | _, Ptop -> Ptop
  | x, y -> if x = y then Peven else Podd

let par_mul a b =
  match (a, b) with
  | Peven, _ | _, Peven -> Peven
  | Podd, Podd -> Podd
  | _ -> Ptop

(* bit 0 of x land y / x lor y. *)
let par_and a b =
  match (a, b) with
  | Peven, _ | _, Peven -> Peven
  | Podd, Podd -> Podd
  | _ -> Ptop

let par_or a b =
  match (a, b) with
  | Podd, _ | _, Podd -> Podd
  | Peven, Peven -> Peven
  | _ -> Ptop

(* lognot x = -x - 1: parity flips. *)
let par_flip = function Peven -> Podd | Podd -> Peven | Ptop -> Ptop

let par_to_string = function Peven -> "e" | Podd -> "o" | Ptop -> ""

(* ------------------------------------------------------------------ *)
(* Value domains. *)

type nullness = Nnull | Nnonnull | Ntop

type vdom =
  | Dtop
  | Dword of Ty.sign * Ty.width * itv * parity
      (* interval × parity of the sign-interpreted value *)
  | Dint of itv (* definitely a Vint *)
  | Dnat of itv (* definitely a Vnat; itv within [0, ∞) *)
  | Dbool of bool option
  | Dptr of nullness
  | Dtuple of vdom list

let word_range s w = itv_make (Some (W.min_value s w)) (Some (W.max_value s w))

(* Reduced product: a singleton interval determines the parity (and wins
   over a contradictory claim — the state is then empty, and keeping the
   exact component is a sound over-approximation of ∅). *)
let mk_word s w i p =
  let p = match par_of_itv i with Ptop -> p | q -> q in
  Dword (s, w, i, p)

(* Result of a word operation: exact when in range, else the wrap can hit
   anything of the type.  The parity argument must be wrap-stable (all
   callers compute it mod 2, and 2 | 2^w). *)
let word_result s w i p =
  if itv_leq i (word_range s w) then mk_word s w i p
  else Dword (s, w, word_range s w, p)

let rec type_top (t : Ty.t) : vdom =
  match t with
  | Ty.Tword (s, w) -> Dword (s, w, word_range s w, Ptop)
  | Ty.Tint -> Dint itv_top
  | Ty.Tnat -> Dnat nat_top
  | Ty.Tbool -> Dbool None
  | Ty.Tptr _ -> Dptr Ntop
  | Ty.Ttuple ts -> Dtuple (List.map type_top ts)
  | Ty.Tunit | Ty.Tstruct _ -> Dtop

let rec vdom_leq a b =
  match (a, b) with
  | _, Dtop -> true
  | Dword (s1, w1, i1, p1), Dword (s2, w2, i2, p2) ->
    s1 = s2 && w1 = w2 && itv_leq i1 i2 && par_leq p1 p2
  | Dint i1, Dint i2 | Dnat i1, Dnat i2 -> itv_leq i1 i2
  | Dbool a, Dbool b -> b = None || a = b
  | Dptr a, Dptr b -> b = Ntop || a = b
  | Dtuple xs, Dtuple ys ->
    List.length xs = List.length ys && List.for_all2 vdom_leq xs ys
  | (Dtop | Dword _ | Dint _ | Dnat _ | Dbool _ | Dptr _ | Dtuple _), _ -> false

let rec vdom_join a b =
  match (a, b) with
  | Dword (s1, w1, i1, p1), Dword (s2, w2, i2, p2) when s1 = s2 && w1 = w2 ->
    Dword (s1, w1, itv_join i1 i2, par_join p1 p2)
  | Dint i1, Dint i2 -> Dint (itv_join i1 i2)
  | Dnat i1, Dnat i2 -> Dnat (itv_join i1 i2)
  | Dbool x, Dbool y -> Dbool (if x = y then x else None)
  | Dptr x, Dptr y -> Dptr (if x = y then x else Ntop)
  | Dtuple xs, Dtuple ys when List.length xs = List.length ys ->
    Dtuple (List.map2 vdom_join xs ys)
  | _ -> Dtop

let rec vdom_widen a b =
  match (a, b) with
  | Dword (s1, w1, i1, p1), Dword (s2, w2, i2, p2) when s1 = s2 && w1 = w2 ->
    (* Words stay finite: a dropped bound lands on the type extreme, so
       widening still terminates in at most two steps per bound.  Parity
       is a finite lattice, so joining it already terminates. *)
    let wd = itv_widen i1 i2 in
    Dword (s1, w1, itv_meet wd (word_range s1 w1), par_join p1 p2)
  | Dint i1, Dint i2 -> Dint (itv_widen i1 i2)
  | Dnat i1, Dnat i2 -> Dnat (itv_meet (itv_widen i1 i2) nat_top)
  | Dbool x, Dbool y -> Dbool (if x = y then x else None)
  | Dptr x, Dptr y -> Dptr (if x = y then x else Ntop)
  | Dtuple xs, Dtuple ys when List.length xs = List.length ys ->
    Dtuple (List.map2 vdom_widen xs ys)
  | _ -> Dtop

let to_bool3 = function Dbool b -> b | _ -> None

let rec vdom_to_string = function
  | Dtop -> "⊤"
  | Dword (s, w, i, p) ->
    Printf.sprintf "%s%d%s%s"
      (match s with Ty.Signed -> "s" | Ty.Unsigned -> "u")
      (W.bits w) (itv_to_string i) (par_to_string p)
  | Dint i -> "int" ^ itv_to_string i
  | Dnat i -> "nat" ^ itv_to_string i
  | Dbool None -> "bool"
  | Dbool (Some b) -> string_of_bool b
  | Dptr Nnull -> "null"
  | Dptr Nnonnull -> "nonnull"
  | Dptr Ntop -> "ptr"
  | Dtuple ds -> "(" ^ String.concat ", " (List.map vdom_to_string ds) ^ ")"

(* ------------------------------------------------------------------ *)
(* Abstract environments.  Absent key = top (constrained only by the
   variable's type annotation, injected at lookup). *)

type aenv = { avars : vdom SMap.t; aglobs : vdom SMap.t }

let env_top = { avars = SMap.empty; aglobs = SMap.empty }

let map_leq a b =
  SMap.for_all
    (fun x d ->
      match SMap.find_opt x a with Some da -> vdom_leq da d | None -> false)
    b

let env_leq a b = map_leq a.avars b.avars && map_leq a.aglobs b.aglobs

let map_join a b =
  SMap.merge
    (fun _ da db ->
      match (da, db) with
      | Some da, Some db -> (
        match vdom_join da db with Dtop -> None | d -> Some d)
      | _ -> None)
    a b

let env_join a b = { avars = map_join a.avars b.avars; aglobs = map_join a.aglobs b.aglobs }

let map_widen a b =
  SMap.merge
    (fun _ da db ->
      match (da, db) with
      | Some da, Some db -> (
        match vdom_widen da db with Dtop -> None | d -> Some d)
      | _ -> None)
    a b

let env_widen a b = { avars = map_widen a.avars b.avars; aglobs = map_widen a.aglobs b.aglobs }

let set_var env x d =
  match d with
  | Dtop -> { env with avars = SMap.remove x env.avars }
  | _ -> { env with avars = SMap.add x d env.avars }

let set_glob env x d =
  match d with
  | Dtop -> { env with aglobs = SMap.remove x env.aglobs }
  | _ -> { env with aglobs = SMap.add x d env.aglobs }

let lookup_var env x t =
  match SMap.find_opt x env.avars with Some d -> d | None -> type_top t

let lookup_glob env x t =
  match SMap.find_opt x env.aglobs with Some d -> d | None -> type_top t

let env_to_string env =
  let part name m =
    SMap.bindings m
    |> List.map (fun (x, d) -> Printf.sprintf "%s%s: %s" name x (vdom_to_string d))
  in
  "{" ^ String.concat "; " (part "" env.avars @ part "g:" env.aglobs) ^ "}"

(* ------------------------------------------------------------------ *)
(* Abstract evaluation: [aeval] returns the value domain together with a
   cleanliness bit — [true] means evaluation in any well-typed state
   described by [env] provably cannot get stuck.  The domain component is
   sound for possibly-stuck expressions too (it over-approximates the
   non-stuck results). *)

let and3 a b =
  match (a, b) with
  | Some false, _ -> Some false
  | Some true, b -> b
  | None, Some false -> Some false
  | None, _ -> None

let or3 a b =
  match (a, b) with
  | Some true, _ -> Some true
  | Some false, b -> b
  | None, Some true -> Some true
  | None, _ -> None

let not3 = Option.map not

let bool_shape = function Dbool _ -> true | _ -> false
let ptr_shape = function Dptr _ -> true | _ -> false
let numeric_shape = function Dword _ | Dint _ | Dnat _ -> true | _ -> false

(* Shifts of ideal integers call [B.to_int_exn] / reject negative counts;
   only certify (and only compute) genuinely small non-negative amounts. *)
let small_shift i = itv_leq i (itv_make (Some B.zero) (Some (B.of_int 256)))

let rec cmp_itv op i1 i2 =
  if itv_is_empty i1 || itv_is_empty i2 then None
  else begin
    let lt_def a b = opt_map2 (fun x y -> B.lt x y) a b in
    let le_def a b = opt_map2 (fun x y -> B.le x y) a b in
    match (op : E.binop) with
    | E.Lt -> (
      match lt_def i1.hi i2.lo with
      | Some true -> Some true
      | _ -> ( match le_def i2.hi i1.lo with Some true -> Some false | _ -> None))
    | E.Le -> (
      match le_def i1.hi i2.lo with
      | Some true -> Some true
      | _ -> ( match lt_def i2.hi i1.lo with Some true -> Some false | _ -> None))
    | E.Gt -> (
      match lt_def i2.hi i1.lo with
      | Some true -> Some true
      | _ -> ( match le_def i1.hi i2.lo with Some true -> Some false | _ -> None))
    | E.Ge -> (
      match le_def i2.hi i1.lo with
      | Some true -> Some true
      | _ -> ( match lt_def i1.hi i2.lo with Some true -> Some false | _ -> None))
    | E.Eq -> (
      match (i1.lo, i1.hi, i2.lo, i2.hi) with
      | Some a, Some b, Some c, Some d when B.equal a b && B.equal c d && B.equal a c ->
        Some true
      | _ ->
        if
          (match lt_def i1.hi i2.lo with Some true -> true | _ -> false)
          || (match lt_def i2.hi i1.lo with Some true -> true | _ -> false)
        then Some false
        else None)
    | E.Ne -> not3 (cmp_itv_eq i1 i2)
    | _ -> None
  end

and cmp_itv_eq i1 i2 = cmp_itv E.Eq i1 i2

let is_cmp = function
  | E.Eq | E.Ne | E.Lt | E.Le | E.Gt | E.Ge -> true
  | _ -> false

(* Word comparison: the interval verdict, refined by the parity component
   for (dis)equalities — values of different parity are never equal. *)
let cmp_word op i1 p1 i2 p2 =
  match cmp_itv op i1 i2 with
  | Some r -> Some r
  | None -> (
    let disjoint =
      match (p1, p2) with Peven, Podd | Podd, Peven -> true | _ -> false
    in
    match (op : E.binop) with
    | E.Eq when disjoint -> Some false
    | E.Ne when disjoint -> Some true
    | _ -> None)

(* Arithmetic and comparisons on two evaluated operands (the non-short-
   circuit binops).  Mirrors [Expr.eval_binop]: word results take the left
   operand's sign and wrap; ideal subtraction is monus on two naturals. *)
let binop_dom lenv op da db : vdom * bool =
  ignore lenv;
  match (da, db) with
  | Dword (s1, w1, i1, p1), Dword (s2, w2, i2, p2) when s1 = s2 && w1 = w2 -> (
    let s, w = (s1, w1) in
    match (op : E.binop) with
    | E.Add -> (word_result s w (itv_add i1 i2) (par_add p1 p2), true)
    | E.Sub -> (word_result s w (itv_sub i1 i2) (par_add p1 p2), true)
    | E.Mul -> (word_result s w (itv_mul i1 i2) (par_mul p1 p2), true)
    | E.Div ->
      (* An odd divisor is nonzero even when its interval straddles 0. *)
      if itv_mem B.zero i2 && p2 <> Podd then (Dword (s, w, word_range s w, Ptop), false)
      else if itv_mem B.zero i2 then (Dword (s, w, word_range s w, Ptop), true)
      else (word_result s w (itv_div i1 i2) Ptop, true)
    | E.Rem ->
      if itv_mem B.zero i2 && p2 <> Podd then (Dword (s, w, word_range s w, Ptop), false)
      else if itv_mem B.zero i2 then (Dword (s, w, word_range s w, Ptop), true)
      else
        let m = itv_rem_bound i2 in
        let i =
          match i1.lo with
          | Some l when B.ge l B.zero ->
            itv_meet (itv_make (Some B.zero) m) (itv_make (Some B.zero) i1.hi)
          | _ -> itv_make (Option.map B.neg m) m
        in
        (word_result s w i Ptop, true)
    | E.Shl ->
      (* The evaluator shifts by [unat count] and wraps.  [small_shift]
         forces the count's interpretation into [0, 256], where unat and
         the interpreted value agree; a shift by ≥ 1 is even mod 2^w
         whatever the count, so parity survives the wrap (and the
         non-finite fallback). *)
      let shl_par =
        if not (itv_mem B.zero i2) then Peven
        else if itv_leq i2 (itv_const B.zero) then p1
        else par_join p1 Peven
      in
      if small_shift i2 && itv_all_finite [ i1; i2 ] then
        (word_result s w
           (itv_corners (fun x n -> B.shift_left x (B.to_int_exn n)) i1 i2)
           shl_par,
         true)
      else (Dword (s, w, word_range s w, shl_par), true)
    | E.Shr ->
      (* Arithmetic shift of the interpretation for signed, logical for
         unsigned — either way ⌊x / 2^n⌋ of the interpreted value, which
         never leaves the type range.  Monotone along each axis, so box
         corners bound it. *)
      if small_shift i2 && itv_all_finite [ i1; i2 ] then
        (word_result s w
           (itv_corners (fun x n -> B.shift_right x (B.to_int_exn n)) i1 i2)
           Ptop,
         true)
      else (Dword (s, w, word_range s w, Ptop), true)
    | E.Band ->
      let i =
        match s with
        | Ty.Unsigned -> itv_meet (word_range s w) (itv_make (Some B.zero) (opt_map2 B.min i1.hi i2.hi))
        | Ty.Signed -> word_range s w
      in
      (mk_word s w i (par_and p1 p2), true)
    | E.Bor -> (Dword (s, w, word_range s w, par_or p1 p2), true)
    | E.Bxor -> (Dword (s, w, word_range s w, par_add p1 p2), true)
    | E.Eq | E.Ne | E.Lt | E.Le | E.Gt | E.Ge -> (Dbool (cmp_word op i1 p1 i2 p2), true)
    | E.And | E.Or | E.Imp -> (Dtop, false))
  | Dword (s, w, _, _), Dword _ ->
    (* Mixed signs or widths: ill-typed for arithmetic, and comparisons
       interpret the right word with the left sign — give up on both. *)
    if is_cmp op then (Dbool None, false) else (Dword (s, w, word_range s w, Ptop), false)
  | (Dint i1 | Dnat i1), (Dint i2 | Dnat i2) -> (
    let both_nat = match (da, db) with Dnat _, Dnat _ -> true | _ -> false in
    let wrap i = if both_nat then Dnat (itv_meet i nat_top) else Dint i in
    match (op : E.binop) with
    | E.Add -> (wrap (itv_add i1 i2), true)
    | E.Sub ->
      if both_nat then
        (* monus: max 0 (x - y) *)
        let i = itv_sub i1 i2 in
        (Dnat { lo = Some (match i.lo with Some l -> B.max B.zero l | None -> B.zero);
                hi = (match i.hi with Some h -> Some (B.max B.zero h) | None -> None) },
         true)
      else (Dint (itv_sub i1 i2), true)
    | E.Mul -> (wrap (itv_mul i1 i2), true)
    | E.Div ->
      if itv_mem B.zero i2 then ((if both_nat then Dnat nat_top else Dint itv_top), false)
      else if itv_all_finite [ i1; i2 ] then (wrap (itv_div i1 i2), true)
      else if both_nat then
        (* nat / (≥1) never grows *)
        (Dnat (itv_make (Some B.zero) i1.hi), true)
      else (Dint itv_top, true)
    | E.Rem ->
      if itv_mem B.zero i2 then ((if both_nat then Dnat nat_top else Dint itv_top), false)
      else
        let m = itv_rem_bound i2 in
        if both_nat then
          let hi =
            match (m, i1.hi) with
            | Some a, Some b -> Some (B.min a b)
            | Some a, None -> Some a
            | None, h -> h
          in
          (Dnat (itv_make (Some B.zero) hi), true)
        else (Dint (itv_make (Option.map B.neg m) m), true)
    | E.Shl ->
      if small_shift i2 && itv_all_finite [ i1; i2 ] then
        (wrap (itv_corners (fun x n -> B.shift_left x (B.to_int_exn n)) i1 i2), true)
      else ((if both_nat then Dnat nat_top else Dint itv_top), small_shift i2)
    | E.Shr ->
      if small_shift i2 && itv_all_finite [ i1; i2 ] then
        (wrap (itv_corners (fun x n -> B.shift_right x (B.to_int_exn n)) i1 i2), true)
      else ((if both_nat then Dnat nat_top else Dint itv_top), small_shift i2)
    | E.Band | E.Bor | E.Bxor ->
      (* [B.logand] raises on negative operands. *)
      let nonneg i = match i.lo with Some l -> B.ge l B.zero | None -> false in
      let ok = nonneg i1 && nonneg i2 in
      let i =
        if not ok then itv_top
        else
          match op with
          | E.Band -> itv_make (Some B.zero) (opt_map2 B.min i1.hi i2.hi)
          | _ -> itv_top
      in
      ((if both_nat then Dnat (itv_meet i nat_top) else Dint i), ok)
    | E.Eq | E.Ne | E.Lt | E.Le | E.Gt | E.Ge -> (Dbool (cmp_itv op i1 i2), true)
    | E.And | E.Or | E.Imp -> (Dtop, false))
  | Dptr n1, Dptr n2 -> (
    match (op : E.binop) with
    | E.Eq -> (
      match (n1, n2) with
      | Nnull, Nnull -> (Dbool (Some true), true)
      | Nnull, Nnonnull | Nnonnull, Nnull -> (Dbool (Some false), true)
      | _ -> (Dbool None, true))
    | E.Ne -> (
      match (n1, n2) with
      | Nnull, Nnull -> (Dbool (Some false), true)
      | Nnull, Nnonnull | Nnonnull, Nnull -> (Dbool (Some true), true)
      | _ -> (Dbool None, true))
    | E.Lt | E.Le | E.Gt | E.Ge -> (Dbool None, true)
    | E.Sub -> (Dint itv_top, true)
    | _ -> (Dtop, false))
  | Dbool b1, Dbool b2 -> (
    match (op : E.binop) with
    | E.Eq -> (Dbool (match (b1, b2) with Some x, Some y -> Some (x = y) | _ -> None), true)
    | E.Ne -> (Dbool (match (b1, b2) with Some x, Some y -> Some (x <> y) | _ -> None), true)
    | _ -> (Dtop, false))
  | _ -> if is_cmp op then (Dbool None, false) else (Dtop, false)

let dom_of_value (v : Value.t) : vdom =
  let rec go = function
    | Value.Vunit -> Dtop
    | Value.Vbool b -> Dbool (Some b)
    | Value.Vword (s, w) ->
      let v = W.value s w in
      Dword (s, W.width_of w, itv_const v, par_of_const v)
    | Value.Vint n -> Dint (itv_const n)
    | Value.Vnat n -> Dnat (itv_const n)
    | Value.Vptr (a, _) -> Dptr (if B.is_zero a then Nnull else Nnonnull)
    | Value.Vstruct _ -> Dtop
    | Value.Vtuple vs -> Dtuple (List.map go vs)
  in
  go v

let rec aeval (lenv : Layout.env) (env : aenv) (e : E.t) : vdom * bool =
  match e with
  | E.Const v -> (dom_of_value v, true)
  | E.Var (x, t) -> (lookup_var env x t, true)
  | E.Global (g, t) -> (lookup_glob env g t, true)
  | E.Unop (op, x) -> (
    let dx, cx = aeval lenv env x in
    match (op, dx) with
    | E.Neg, Dword (s, w, i, p) -> (word_result s w (itv_neg i) p, cx)
    | E.Neg, Dint i -> (Dint (itv_neg i), cx)
    | E.Neg, Dnat i -> (Dint (itv_neg i), cx) (* eval: Neg Vnat = Vint *)
    | E.Bnot, Dword (s, w, i, p) ->
      (* lognot x = -x - 1 two's-complement-wise; exact on the signed
         interpretation, full wrap on unsigned bounds crossing. *)
      let i' = itv_sub (itv_neg i) (itv_const B.one) in
      (word_result s w i' (par_flip p), cx)
    | E.Not, Dbool b -> (Dbool (not3 b), cx)
    | E.Neg, Dtop | E.Bnot, Dtop -> (Dtop, false)
    | E.Not, _ -> (Dbool None, false)
    | _ -> (Dtop, false))
  | E.Binop (E.And, a, b) -> (
    let da, ca = aeval lenv env a in
    let ca = ca && bool_shape da in
    match assume lenv env a true with
    | None -> (Dbool (Some false), ca)
    | Some enva ->
      let db, cb = aeval lenv enva b in
      ( Dbool (and3 (to_bool3 da) (to_bool3 db)),
        ca && (to_bool3 da = Some false || (cb && bool_shape db)) ))
  | E.Binop (E.Or, a, b) -> (
    let da, ca = aeval lenv env a in
    let ca = ca && bool_shape da in
    match assume lenv env a false with
    | None -> (Dbool (Some true), ca)
    | Some enva ->
      let db, cb = aeval lenv enva b in
      ( Dbool (or3 (to_bool3 da) (to_bool3 db)),
        ca && (to_bool3 da = Some true || (cb && bool_shape db)) ))
  | E.Binop (E.Imp, a, b) -> (
    let da, ca = aeval lenv env a in
    let ca = ca && bool_shape da in
    match assume lenv env a true with
    | None -> (Dbool (Some true), ca)
    | Some enva ->
      let db, cb = aeval lenv enva b in
      ( Dbool (or3 (not3 (to_bool3 da)) (to_bool3 db)),
        ca && (to_bool3 da = Some false || (cb && bool_shape db)) ))
  | E.Binop (op, a, b) ->
    let da, ca = aeval lenv env a in
    let db, cb = aeval lenv env b in
    let d, cop = binop_dom lenv op da db in
    (d, ca && cb && cop)
  | E.Ite (c, x, y) -> (
    let dc, cc = aeval lenv env c in
    let branch pol t =
      match assume lenv env c pol with None -> None | Some e -> Some (aeval lenv e t)
    in
    let cc = cc && bool_shape dc in
    match (branch true x, branch false y) with
    | Some (dx, cx), Some (dy, cy) -> (vdom_join dx dy, cc && cx && cy)
    | Some (dx, cx), None -> (dx, cc && cx)
    | None, Some (dy, cy) -> (dy, cc && cy)
    | None, None -> (Dtop, false))
  | E.Cast (t, x) -> (
    let dx, cx = aeval lenv env x in
    match (t, dx) with
    | Ty.Tword (s, w), (Dword _ | Dint _ | Dnat _) ->
      let i =
        match dx with Dword (_, _, i, _) | Dint i | Dnat i -> i | _ -> itv_top
      in
      (* Reduction mod 2^w preserves parity. *)
      let p = match dx with Dword (_, _, _, p) -> p | _ -> par_of_itv i in
      (* [of_bignum] reduces the source interpretation mod 2^w; when the
         value already lies in the target range the reinterpretation is
         the identity.  Mixed sign/width sources are fine: the source
         interval is an interval of the *interpreted* value either way. *)
      if itv_leq i (word_range s w) then (mk_word s w i p, cx)
      else (Dword (s, w, word_range s w, p), cx)
    | Ty.Tword (s, w), Dptr _ -> (Dword (s, w, word_range s w, Ptop), cx)
    | Ty.Tptr _, Dword (_, _, i, _) ->
      let pb = W.bits (Layout.ptr_width lenv) in
      let pr = itv_make (Some (B.neg (B.sub (B.pow2 pb) B.one))) (Some (B.sub (B.pow2 pb) B.one)) in
      let n =
        if itv_leq i (itv_const B.zero) then Nnull
        else if (not (itv_mem B.zero i)) && itv_leq i pr then Nnonnull
        else Ntop
      in
      (Dptr n, cx)
    | Ty.Tptr _, Dptr n -> (Dptr n, cx)
    | Ty.Tint, (Dint i | Dnat i) -> (Dint i, cx)
    | Ty.Tnat, (Dint i | Dnat i) ->
      (* Stuck-refining: a negative operand gets stuck, so states reaching
         the continuation satisfy the clamp. *)
      let nonneg = match i.lo with Some l -> B.ge l B.zero | None -> false in
      (Dnat (itv_meet i nat_top), cx && nonneg)
    | _ -> (Dtop, false))
  | E.OfWord (t, x) -> (
    let dx, cx = aeval lenv env x in
    match (t, dx) with
    | Ty.Tnat, Dword (Ty.Unsigned, _, i, _) -> (Dnat (itv_meet i nat_top), cx)
    | Ty.Tnat, Dword (Ty.Signed, w, i, _) ->
      if itv_leq i nat_top then (Dnat i, cx)
      else (Dnat (itv_make (Some B.zero) (Some (B.sub (B.pow2 (W.bits w)) B.one))), cx)
    | Ty.Tint, Dword (Ty.Signed, _, i, _) -> (Dint i, cx)
    | Ty.Tint, Dword (Ty.Unsigned, w, i, _) ->
      if itv_leq i (word_range Ty.Signed w) then (Dint i, cx)
      else (Dint (word_range Ty.Signed w), cx)
    | Ty.Tnat, _ -> (Dnat nat_top, false)
    | Ty.Tint, _ -> (Dint itv_top, false)
    | _ -> (Dtop, false))
  | E.HeapRead (c, p) | E.TypedRead (c, p) ->
    let dp, cp = aeval lenv env p in
    (type_top (Ty.of_cty c), cp && ptr_shape dp)
  | E.IsValid (_, p) -> (
    let dp, cp = aeval lenv env p in
    match dp with
    | Dptr Nnull -> (Dbool (Some false), cp) (* lift_valid needs span_ok, hence ≠ 0 *)
    | Dptr _ -> (Dbool None, cp)
    | _ -> (Dbool None, false))
  | E.PtrAligned (c, p) -> (
    let dp, cp = aeval lenv env p in
    match dp with
    | Dptr n ->
      if Layout.align_of lenv c = 1 then (Dbool (Some true), cp)
      else if n = Nnull then (Dbool (Some true), cp) (* 0 mod a = 0 *)
      else (Dbool None, cp)
    | _ -> (Dbool None, false))
  | E.PtrSpan (_, p) -> (
    let dp, cp = aeval lenv env p in
    match dp with
    | Dptr Nnull -> (Dbool (Some false), cp)
    | Dptr _ -> (Dbool None, cp)
    | _ -> (Dbool None, false))
  | E.PtrAdd (_, p, n) ->
    let dp, cp = aeval lenv env p in
    let dn, cn = aeval lenv env n in
    (Dptr Ntop, cp && cn && ptr_shape dp && numeric_shape dn)
  | E.FieldAddr (sname, fname, p) ->
    let dp, cp = aeval lenv env p in
    let known =
      match Layout.field_offset lenv sname fname with _ -> true | exception _ -> false
    in
    (Dptr Ntop, cp && ptr_shape dp && known)
  | E.StructGet (sname, fname, _) ->
    let d =
      match Layout.field_type lenv sname fname with
      | c -> type_top (Ty.of_cty c)
      | exception _ -> Dtop
    in
    (d, false)
  | E.StructSet _ -> (Dtop, false)
  | E.Tuple xs ->
    let ds = List.map (aeval lenv env) xs in
    (Dtuple (List.map fst ds), List.for_all snd ds)
  | E.Proj (i, x) -> (
    let dx, cx = aeval lenv env x in
    match dx with
    | Dtuple ds when i >= 0 && i < List.length ds -> (List.nth ds i, cx)
    | _ -> (Dtop, false))

(* ------------------------------------------------------------------ *)
(* Assuming a condition: [assume lenv env c pol] is an over-approximation
   of the states in [env] where [c] evaluates (without getting stuck) to
   [pol]; [None] means no such state exists. *)

and assume lenv (env : aenv) (e : E.t) (pol : bool) : aenv option =
  let ( >>= ) o f = match o with None -> None | Some x -> f x in
  match e with
  | E.Const (Value.Vbool b) -> if b = pol then Some env else None
  | E.Unop (E.Not, x) -> assume lenv env x (not pol)
  | E.Binop (E.And, a, b) when pol ->
    assume lenv env a true >>= fun env -> assume lenv env b true
  | E.Binop (E.Or, a, b) when not pol ->
    assume lenv env a false >>= fun env -> assume lenv env b false
  | E.Binop (E.Imp, a, b) when not pol ->
    assume lenv env a true >>= fun env -> assume lenv env b false
  | E.Binop (E.And, a, b) (* ¬(a ∧ b): a false, or a true and b false *) ->
    join_assume lenv
      (assume lenv env a false)
      (assume lenv env a true >>= fun env -> assume lenv env b false)
  | E.Binop (E.Or, a, b) ->
    join_assume lenv (assume lenv env a true) (assume lenv env a false >>= fun env -> assume lenv env b true)
  | E.Binop (E.Imp, a, b) ->
    join_assume lenv (assume lenv env a false) (assume lenv env a true >>= fun env -> assume lenv env b true)
  | E.Binop (op, a, b) when is_cmp op -> assume_cmp lenv env op a b pol
  | E.Var (x, Ty.Tbool) -> (
    match lookup_var env x Ty.Tbool with
    | Dbool (Some b) -> if b = pol then Some env else None
    | _ -> Some (set_var env x (Dbool (Some pol))))
  | E.IsValid (_, p) when pol -> assume_nonnull lenv env p
  | E.PtrSpan (_, p) when pol -> assume_nonnull lenv env p
  | E.Ite (c, x, y) ->
    join_assume lenv
      (assume lenv env c true >>= fun e -> assume lenv e x pol)
      (assume lenv env c false >>= fun e -> assume lenv e y pol)
  | _ -> (
    let d, _ = aeval lenv env e in
    match to_bool3 d with
    | Some b -> if b = pol then Some env else None
    | None -> Some env)

and join_assume _lenv a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some e1, Some e2 -> Some (env_join e1 e2)

and assume_nonnull lenv env p =
  match p with
  | E.Var (x, (Ty.Tptr _ as t)) -> (
    match lookup_var env x t with
    | Dptr Nnull -> None
    | Dptr Nnonnull -> Some env
    | _ -> Some (set_var env x (Dptr Nnonnull)))
  | _ -> (
    let d, _ = aeval lenv env p in
    match d with Dptr Nnull -> None | _ -> Some env)

(* Comparison assumption: decide outright when possible, then narrow
   variable (or unat/sint-of-variable) operands with the interval the
   comparison forces.  Only same-sign same-width word comparisons are
   meaningful (the evaluator interprets the right operand with the left
   operand's sign). *)
and assume_cmp lenv env op a b pol =
  let op = if pol then op else negate_cmp op in
  let da, _ = aeval lenv env a in
  let db, _ = aeval lenv env b in
  (* Pointer facts. *)
  let ptr_fact () =
    match (op, da, db) with
    | E.Eq, _, Dptr Nnull -> assume_null lenv env a
    | E.Eq, Dptr Nnull, _ -> assume_null lenv env b
    | E.Ne, _, Dptr Nnull -> assume_nonnull lenv env a
    | E.Ne, Dptr Nnull, _ -> assume_nonnull lenv env b
    | _ -> Some env
  in
  match (itv_of_dom da, itv_of_dom db) with
  | Some (sa, ia), Some (sb, ib) when sa = sb -> (
    match cmp_itv op ia ib with
    | Some r -> if r then Some env else None
    | None ->
      let ca = constraint_itv op ia ib `Left in
      let cb = constraint_itv op ia ib `Right in
      refine lenv env a ca >>== fun env -> refine lenv env b cb)
  | _ -> (
    match binop_dom lenv op da db with
    | Dbool (Some r), _ -> if r then Some env else None
    | _ -> ptr_fact ())

and ( >>== ) o f = match o with None -> None | Some x -> f x

and assume_null lenv env p =
  match p with
  | E.Var (x, (Ty.Tptr _ as t)) -> (
    match lookup_var env x t with
    | Dptr Nnonnull -> None
    | _ -> Some (set_var env x (Dptr Nnull)))
  | _ -> (
    let d, _ = aeval lenv env p in
    match d with Dptr Nnonnull -> None | _ -> Some env)

and negate_cmp = function
  | E.Eq -> E.Ne
  | E.Ne -> E.Eq
  | E.Lt -> E.Ge
  | E.Le -> E.Gt
  | E.Gt -> E.Le
  | E.Ge -> E.Lt
  | op -> op

(* The interpreted-value interval of a numeric domain, tagged with a sign
   marker so word comparisons only narrow when interpretations agree.
   Ideal ints and nats share the `I` marker (B comparisons are uniform). *)
and itv_of_dom = function
  | Dword (s, w, i, _) -> Some (`W (s, w), i)
  | Dint i | Dnat i -> Some (`I, i)
  | _ -> None

(* Interval forced on the chosen side by [a op b]. *)
and constraint_itv op ia ib side =
  let pred o = Option.map B.pred o in
  let succ o = Option.map B.succ o in
  match (op, side) with
  | E.Eq, `Left -> ib
  | E.Eq, `Right -> ia
  | E.Lt, `Left -> itv_make None (pred ib.hi)
  | E.Lt, `Right -> itv_make (succ ia.lo) None
  | E.Le, `Left -> itv_make None ib.hi
  | E.Le, `Right -> itv_make ia.lo None
  | E.Gt, `Left -> itv_make (succ ib.lo) None
  | E.Gt, `Right -> itv_make None (pred ia.hi)
  | E.Ge, `Left -> itv_make ib.lo None
  | E.Ge, `Right -> itv_make None ia.hi
  | E.Ne, `Left -> ne_itv ia ib
  | E.Ne, `Right -> ne_itv ib ia
  | _ -> itv_top

(* x ≠ y: when y is a single point sitting on one of x's bounds, shave it. *)
and ne_itv ix iy =
  match (iy.lo, iy.hi) with
  | Some c, Some c' when B.equal c c' -> (
    match (ix.lo, ix.hi) with
    | Some l, _ when B.equal l c -> itv_make (Some (B.succ c)) ix.hi
    | _, Some h when B.equal h c -> itv_make ix.lo (Some (B.pred c))
    | _ -> itv_top)
  | _ -> itv_top

(* Push an interval constraint onto a variable-like operand. *)
and refine lenv env e (c : itv) : aenv option =
  if c.lo = None && c.hi = None then Some env
  else begin
    let narrow_var x t interp_ok =
      if not interp_ok then Some env
      else begin
        let d = lookup_var env x t in
        match d with
        | Dword (s, w, i, p) ->
          let i' = itv_meet i c in
          if itv_is_empty i' then None else Some (set_var env x (mk_word s w i' p))
        | Dint i ->
          let i' = itv_meet i c in
          if itv_is_empty i' then None else Some (set_var env x (Dint i'))
        | Dnat i ->
          let i' = itv_meet (itv_meet i c) nat_top in
          if itv_is_empty i' then None else Some (set_var env x (Dnat i'))
        | _ -> Some env
      end
    in
    match e with
    | E.Var (x, (Ty.Tword _ | Ty.Tint | Ty.Tnat as t)) -> narrow_var x t true
    | E.OfWord (Ty.Tnat, E.Var (x, (Ty.Tword (Ty.Unsigned, _) as t))) ->
      (* unat of an unsigned word is its interpreted value *)
      narrow_var x t true
    | E.OfWord (Ty.Tint, E.Var (x, (Ty.Tword (Ty.Signed, _) as t))) -> narrow_var x t true
    | E.Cast (Ty.Tint, E.Var (x, ((Ty.Tint | Ty.Tnat) as t))) -> narrow_var x t true
    | _ -> Some env
  end

(* ------------------------------------------------------------------ *)
(* Certificates, summaries and the abstract walk. *)

(* A function summary: an untrusted interprocedural claim, verified by
   [check_sums] below before any walk is allowed to use it.

   [s_args] is the applicability constraint: a call site may use the
   summary only when the abstract domains of the actual arguments are
   pointwise ⊑ [s_args].  Under that constraint the claims are: a normal
   return (if any) yields a value in [s_ret] ([s_noret] claims there is
   none), and the call can throw only if [s_throws].  [s_invs] carries
   the callee's loop invariants for the verification walk, keyed like a
   certificate's.

   Soundness is by strong induction on the depth of the concrete call
   tree: an execution of the callee whose own calls have depth < n
   satisfies the claims because the verifying walk over-approximates it —
   each inner call either uses a summary (applicable because abstract
   actuals over-approximate concrete ones, and correct for depth < n by
   the induction hypothesis) or havocs.  The table is checked as a whole,
   so mutual recursion needs no stratification. *)
type summary = {
  s_args : vdom list;
  s_ret : vdom;
  s_noret : bool;
  s_throws : bool;
  s_invs : (int * aenv) list;
}

(* Contexts per callee, most specific first: [find_summary] takes the
   first applicable entry, so the order is part of the certificate and
   the analysis and the checker agree on which context a site uses. *)
type sums = (string * summary list) list

let find_summary (sums : sums) (g : string) (argds : vdom list) : summary option =
  match List.assoc_opt g sums with
  | None -> None
  | Some ss ->
    List.find_opt
      (fun s ->
        List.length s.s_args = List.length argds
        && List.for_all2 vdom_leq argds s.s_args)
      ss

(* One invariant per [While], keyed by structural preorder index, plus
   the summary table the walk may consult at call sites. *)
type cert = { c_invs : (int * aenv) list; c_sums : sums }

let cert_of_invs invs = { c_invs = invs; c_sums = [] }

let rec count_loops (m : M.t) : int =
  match m with
  | M.Return _ | M.Gets _ | M.Modify _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _
  | M.Call _ | M.Exec_concrete _ ->
    0
  | M.Bind (a, _, b) | M.Try (a, _, b) -> count_loops a + count_loops b
  | M.Cond (_, a, b) -> count_loops a + count_loops b
  | M.While (_, _, body, _) -> 1 + count_loops body

(* The checker (and the analysis) are parameterised by how loop
   invariants are obtained and what to do with per-guard verdicts: the
   analysis solves by widening fixpoint and harvests verdicts for
   lint, the checker looks the invariant up in the certificate and
   verifies a single inductiveness step. *)
type solver = {
  solve : int -> aenv -> (aenv -> aenv option) -> aenv;
  on_guard : Ir.guard_kind -> E.t -> bool option -> unit;
  sums : sums; (* summaries call sites may use (verified before any trusted walk) *)
  on_call : string -> vdom list -> unit; (* context-discovery hook; no-op in the checker *)
}

type aout = { onorm : (aenv * vdom) option; oexn : (aenv * vdom) option }

let dead_out = { onorm = None; oexn = None }

let join_res a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (e1, v1), Some (e2, v2) -> Some (env_join e1 e2, vdom_join v1 v2)

let join_out a b = { onorm = join_res a.onorm b.onorm; oexn = join_res a.oexn b.oexn }

let rec bind_pat_dom (env : aenv) (p : M.pat) (d : vdom) : aenv =
  match (p, d) with
  | M.Pwild, _ -> env
  | M.Pvar (x, _), d -> set_var env x d
  | M.Ptuple ps, Dtuple ds when List.length ps = List.length ds ->
    List.fold_left2 bind_pat_dom env ps ds
  | M.Ptuple [ p ], d -> bind_pat_dom env p d
  | M.Ptuple ps, _ ->
    (* Unknown tuple shape: every bound variable becomes top. *)
    List.fold_left (fun env (x, _) -> set_var env x Dtop) env (List.concat_map M.pat_vars ps)

let rec dom_of_pat (env : aenv) (p : M.pat) : vdom =
  match p with
  | M.Pwild -> Dtop
  | M.Pvar (x, t) -> lookup_var env x t
  | M.Ptuple ps -> Dtuple (List.map (dom_of_pat env) ps)

(* Pattern variables go out of scope when the binder's body ends; restore
   their outer domains (or absence) in the resulting environments. *)
let save_pat_vars env p = List.map (fun (x, _) -> (x, SMap.find_opt x env.avars)) (M.pat_vars p)

let restore_pat_vars saved env =
  List.fold_left
    (fun env (x, old) ->
      match old with
      | Some d -> { env with avars = SMap.add x d env.avars }
      | None -> { env with avars = SMap.remove x env.avars })
    env saved

let restore_out saved (o : aout) =
  {
    onorm = Option.map (fun (e, v) -> (restore_pat_vars saved e, v)) o.onorm;
    oexn = Option.map (fun (e, v) -> (restore_pat_vars saved e, v)) o.oexn;
  }

let apply_smod_abs lenv (env : aenv) (sm : M.smod) : aenv =
  match sm with
  | M.Heap_write _ | M.Typed_write _ | M.Retype _ -> env (* heap values untracked *)
  | M.Global_set (x, e) -> set_glob env x (fst (aeval lenv env e))
  | M.Local_set (x, e) ->
    (* L1 only: the state-resident local shares the namespace with lambda
       bindings in the evaluation environment; drop to top to stay safe. *)
    ignore e;
    set_var env x Dtop

exception Cert_error of string

let cert_error fmt = Printf.ksprintf (fun m -> raise (Cert_error m)) fmt

(* The walk: returns the (possibly rewritten) term and abstract outcomes
   for normal return and thrown exception; [None] means no concrete
   execution reaches that outcome.  Loop bodies inside [m] get the indices
   [idx .. idx + count_loops m - 1] in structural preorder, so indices are
   stable between the analysis and the checker. *)
let rec walk lenv (sv : solver) (idx : int) (env : aenv) (m : M.t) : M.t * aout =
  match m with
  | M.Return e | M.Gets e ->
    (m, { onorm = Some (env, fst (aeval lenv env e)); oexn = None })
  | M.Modify sms ->
    let env' = List.fold_left (apply_smod_abs lenv) env sms in
    (m, { onorm = Some (env', Dtop); oexn = None })
  | M.Guard (k, c) -> (
    let d, cl = aeval lenv env c in
    let verdict =
      match to_bool3 d with
      | Some true when cl -> Some true
      | Some false -> Some false
      | _ -> None
    in
    sv.on_guard k c verdict;
    match verdict with
    | Some true -> (M.Return E.unit_e, { onorm = Some (env, Dtop); oexn = None })
    | Some false -> (m, dead_out)
    | None -> (
      match assume lenv env c true with
      | Some env' -> (m, { onorm = Some (env', Dtop); oexn = None })
      | None -> (m, dead_out)))
  | M.Fail -> (m, dead_out)
  | M.Throw e -> (m, { onorm = None; oexn = Some (env, fst (aeval lenv env e)) })
  | M.Unknown t -> (m, { onorm = Some (env, type_top t); oexn = None })
  | M.Call (g, args) -> (
    (* Callees may write globals and the heap; caller-local bindings are
       lambda-bound or saved/restored, so [avars] survives.  With an
       applicable (verified) summary the return value and throw behaviour
       narrow from havoc to the summary's claims. *)
    let argds = List.map (fun a -> fst (aeval lenv env a)) args in
    sv.on_call g argds;
    let env' = { env with aglobs = SMap.empty } in
    match find_summary sv.sums g argds with
    | Some s ->
      ( m,
        { onorm = (if s.s_noret then None else Some (env', s.s_ret));
          oexn = (if s.s_throws then Some (env', Dtop) else None) } )
    | None -> (m, { onorm = Some (env', Dtop); oexn = Some (env', Dtop) }))
  | M.Exec_concrete _ ->
    let env' = { env with aglobs = SMap.empty } in
    (m, { onorm = Some (env', Dtop); oexn = Some (env', Dtop) })
  | M.Bind (a, p, b) -> (
    let a', oa = walk lenv sv idx env a in
    let bidx = idx + count_loops a in
    match oa.onorm with
    | None -> (mk_bind a' p (scrub_dead sv b), { onorm = None; oexn = oa.oexn })
    | Some (enva, va) ->
      let saved = save_pat_vars enva p in
      let envb = bind_pat_dom enva p va in
      let b', ob = walk lenv sv bidx envb b in
      let ob = restore_out saved ob in
      (mk_bind a' p b', { onorm = ob.onorm; oexn = join_res oa.oexn ob.oexn }))
  | M.Try (a, p, h) -> (
    let a', oa = walk lenv sv idx env a in
    let hidx = idx + count_loops a in
    match oa.oexn with
    | None -> (M.Try (a', p, scrub_dead sv h), { onorm = oa.onorm; oexn = None })
    | Some (enve, ve) ->
      let saved = save_pat_vars enve p in
      let envh = bind_pat_dom enve p ve in
      let h', oh = walk lenv sv hidx envh h in
      let oh = restore_out saved oh in
      (M.Try (a', p, h'), { onorm = join_res oa.onorm oh.onorm; oexn = oh.oexn }))
  | M.Cond (c, a, b) ->
    let a', oa =
      match assume lenv env c true with
      | None -> (scrub_dead sv a, dead_out)
      | Some ea -> walk lenv sv idx ea a
    in
    let b', ob =
      match assume lenv env c false with
      | None -> (scrub_dead sv b, dead_out)
      | Some eb -> walk lenv sv (idx + count_loops a) eb b
    in
    (M.Cond (c, a', b'), join_out oa ob)
  | M.While (p, cond, body, init) ->
    let dinit, _ = aeval lenv env init in
    let saved = save_pat_vars env p in
    let head0 = bind_pat_dom env p dinit in
    let iterate inv =
      match assume lenv inv cond true with
      | None -> None
      | Some envc -> (
        let _, ob = walk lenv sv (idx + 1) envc body in
        match ob.onorm with
        | None -> None
        | Some (envb, rv) -> Some (bind_pat_dom (restore_pat_vars saved envb) p rv))
    in
    let inv = sv.solve idx head0 iterate in
    let body', obody =
      match assume lenv inv cond true with
      | None -> (scrub_dead sv body, dead_out)
      | Some envc -> walk lenv sv (idx + 1) envc body
    in
    let onorm =
      match assume lenv inv cond false with
      | None -> None
      | Some envx ->
        let rv = dom_of_pat envx p in
        Some (restore_pat_vars saved envx, rv)
    in
    (M.While (p, cond, body', init), { onorm; oexn = Option.map (fun (e, v) -> (restore_pat_vars saved e, v)) obody.oexn })

(* Code the walk proved unreachable (a callee summary says the call never
   returns / never throws, a branch condition contradicts the environment,
   a loop condition is unsatisfiable): no concrete execution enters it, so
   every guard inside may be discharged outright.  Firing the solver hook
   with a definite verdict keeps the analysis' accounting aligned with the
   rewrite; the checker's hook ignores it.  Without this pass a *more*
   precise walk could keep guards a less precise one discharges, merely
   because precision proved their whole region dead. *)
and scrub_dead (sv : solver) (m : M.t) : M.t =
  match m with
  | M.Guard (k, c) ->
    sv.on_guard k c (Some true);
    M.Return E.unit_e
  | M.Bind (a, p, b) -> mk_bind (scrub_dead sv a) p (scrub_dead sv b)
  | M.Try (a, p, h) -> M.Try (scrub_dead sv a, p, scrub_dead sv h)
  | M.Cond (c, a, b) -> M.Cond (c, scrub_dead sv a, scrub_dead sv b)
  | M.While (p, c, body, init) -> M.While (p, c, scrub_dead sv body, init)
  | M.Return _ | M.Gets _ | M.Modify _ | M.Fail | M.Throw _ | M.Unknown _
  | M.Call _ | M.Exec_concrete _ -> m

(* Drop a discharged guard's [return ()] when nothing is bound to it; the
   constant cannot get stuck, so the bind is pure glue. *)
and mk_bind a p b =
  match (a, p) with
  | M.Return (E.Const Value.Vunit), M.Pwild -> b
  | _ -> M.Bind (a, p, b)

(* ------------------------------------------------------------------ *)
(* The certificate checker: no fixpoint — verify that each recorded
   invariant covers the loop head and is inductive, then reuse it.  A
   missing entry defaults to ⊤, which is trivially both. *)

let check_solver (sums : sums) (invs : (int * aenv) list) : solver =
  {
    solve =
      (fun idx head iterate ->
        let inv = match List.assoc_opt idx invs with Some e -> e | None -> env_top in
        if not (env_leq head inv) then
          cert_error "loop %d: head state %s not within invariant %s" idx
            (env_to_string head) (env_to_string inv);
        (match iterate inv with
        | None -> ()
        | Some nxt ->
          if not (env_leq nxt inv) then
            cert_error "loop %d: invariant %s not inductive (step gives %s)" idx
              (env_to_string inv) (env_to_string nxt));
        inv);
    on_guard = (fun _ _ _ -> ());
    sums;
    on_call = (fun _ _ -> ());
  }

(* Verify every summary in the table against the callee bodies the
   context supplies: one walk of the body from the claimed argument
   constraint, using the table itself at call sites (see the induction
   argument at [summary]).  No fixpoint — loop invariants ride in
   [s_invs] and get the same single inductiveness check as a
   certificate's.  Raises [Cert_error] on any violation. *)
let check_sums (lenv : Layout.env) (fbodies : M.func list) (sums : sums) : unit =
  List.iter
    (fun (g, ss) ->
      let f =
        match List.find_opt (fun f -> String.equal f.M.name g) fbodies with
        | Some f -> f
        | None -> cert_error "summary for unknown function %s" g
      in
      List.iter
        (fun s ->
          if List.length s.s_args <> List.length f.M.params then
            cert_error "summary %s: arity %d vs %d parameters" g
              (List.length s.s_args) (List.length f.M.params);
          let env =
            List.fold_left2
              (fun e (x, _) d -> set_var e x d)
              env_top f.M.params s.s_args
          in
          let sv = check_solver sums s.s_invs in
          let _, out = walk lenv sv 0 env f.M.body in
          (match out.onorm with
          | None -> ()
          | Some (_, rv) ->
            if s.s_noret then
              cert_error "summary %s: claims no normal return, body may return" g;
            if not (vdom_leq rv s.s_ret) then
              cert_error "summary %s: return %s exceeds claim %s" g
                (vdom_to_string rv) (vdom_to_string s.s_ret));
          match out.oexn with
          | Some _ when not s.s_throws -> cert_error "summary %s: body may throw" g
          | _ -> ())
        ss)
    sums

(* Kernel entry point, called from [Rules.infer] for [Rule_guard_true]:
   verify the certificate's summary table against the unit's callee
   bodies, then re-walk [m] under the certificate and return the
   rewritten term.  The walk is deterministic, so [Thm.check] reproduces
   it exactly. *)
let discharge (lenv : Layout.env) (fbodies : M.func list) (cert : cert) (m : M.t) :
    (M.t, string) result =
  match
    check_sums lenv fbodies cert.c_sums;
    walk lenv (check_solver cert.c_sums cert.c_invs) 0 env_top m
  with
  | m', _ -> Result.Ok m'
  | exception Cert_error msg -> Result.Error msg
