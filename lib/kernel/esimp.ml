module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout

(* The kernel's expression simplifier: a small set of local, obviously
   value-preserving rewrites, used by the L2 clean-up rule.  Everything here
   is semantics-preserving for *all* environments and states:

   - projections of literal tuples
   - constant folding of closed, state-free subterms
   - boolean algebra on literal true/false
   - if-then-else with a literal condition or identical branches

   In the Isabelle original these are simp-set lemmas; here they form part
   of the trusted rule base. *)

let rec is_closed_pure (e : E.t) =
  match e with
  | E.Var _ | E.Global _ | E.HeapRead _ | E.TypedRead _ | E.IsValid _ -> false
  | E.Binop ((E.Div | E.Rem), _, _) ->
    (* folding division would need the totalised semantics; fold only when
       the divisor is a non-zero literal *)
    List.for_all is_closed_pure (E.children e)
  | _ -> List.for_all is_closed_pure (E.children e)

let fold_constant lenv (e : E.t) : E.t =
  match e with
  | E.Const _ -> e
  | _ ->
    if is_closed_pure e then begin
      let module SM = Map.Make (String) in
      match E.eval_pure lenv SM.empty e with
      (* Tuples and structs stay structural: the abstraction rules match on
         their shape. *)
      | Value.Vtuple _ | Value.Vstruct _ -> e
      | v -> E.Const v
      | exception E.Eval_stuck _ -> e
    end
    else e

let rec simp lenv (e : E.t) : E.t =
  let e = E.map_children (simp lenv) e in
  let e =
    match e with
    | E.Proj (i, E.Tuple es) when i < List.length es -> List.nth es i
    | E.Binop (E.And, a, b) -> E.and_e a b
    | E.Binop (E.Or, a, b) -> E.or_e a b
    | E.Binop (E.Imp, a, b) -> E.imp_e a b
    | E.Unop (E.Not, x) -> E.not_e x
    | E.Ite (E.Const (Value.Vbool true), a, _) -> a
    | E.Ite (E.Const (Value.Vbool false), _, b) -> b
    | E.Ite (_, a, b) when E.equal a b -> a
    | E.Binop (E.Eq, a, b) when E.equal a b && not (E.reads_state a) -> E.true_e
    | e -> e
  in
  fold_constant lenv e
