module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Value = Ac_lang.Value
module Layout = Ac_lang.Layout
module M = Ac_monad.M
module Ir = Ac_simpl.Ir
module SMap = Map.Make (String)

(* Local-variable lifting (the paper's "Local Var Lifting" phase, Fig 1).

   Input: an L1 body, where locals live in the state (Modify/Local_set) and
   THROW communicates through the ghost locals global_exn_var and ret.
   Output: an L2 body where locals are lambda-bound, every sub-program
   returns the tuple of locals it modifies, and exceptions carry a tuple of
   (exit code, return value, live modified locals) so that abrupt exits
   transport local updates to their catch site — the same discipline the
   Isabelle AutoCorres uses for its L2 exception values.

   The transformation lives inside the kernel and is exposed through the
   single reflective rule [Rw_lift]; the refinement between its input and
   output (state-resident locals vs lambda bindings, with locals
   default-initialised at function entry) is exercised by the differential
   test suite on random programs and states.

   Invariants assumed of L1 input (checked, failing the rule otherwise):
   - non-wildcard [Bind] patterns only bind call results (never locals);
   - [Throw] carries unit;
   - every sub-program's value is unit. *)

exception Lift_failure of string

let failwith_lift fmt = Format.kasprintf (fun m -> raise (Lift_failure m)) fmt

type env = {
  lenv : Layout.env;
  var_tys : Ty.t SMap.t; (* declared locals and parameters *)
  ret_ty : Ty.t;
  bound : unit SMap.t; (* locals currently lambda-bound *)
  catch_shape : string list; (* locals transported by a throw to the
                                innermost enclosing catch *)
}

let default_expr env (t : Ty.t) : E.t =
  match t with
  | Ty.Tunit -> E.unit_e
  | Ty.Tbool -> E.false_e
  | Ty.Tword (s, w) -> E.word_e s w 0
  | Ty.Tint -> E.int_e 0
  | Ty.Tnat -> E.nat_e 0
  | Ty.Tptr c -> E.null_e c
  | Ty.Tstruct n -> E.Const (Value.default env.lenv (Ty.Cstruct n))
  | Ty.Ttuple _ -> failwith_lift "tuple-typed local"

let var_ty env x =
  match SMap.find_opt x env.var_tys with
  | Some t -> t
  | None -> failwith_lift "unknown local %s" x

let current_value env x =
  if SMap.mem x env.bound then E.Var (x, var_ty env x) else default_expr env (var_ty env x)

(* Replace reads of not-yet-assigned locals by their default value (locals
   are default-initialised at function entry). *)
let resolve env (e : E.t) : E.t =
  let unbound =
    List.filter
      (fun x -> SMap.mem x env.var_tys && not (SMap.mem x env.bound))
      (E.free_vars e)
  in
  E.subst (List.map (fun x -> (x, default_expr env (var_ty env x))) unbound) e

let canon vars = List.sort_uniq String.compare vars

let tuple_pat env vars =
  match vars with
  | [] -> M.Pwild
  | [ x ] -> M.Pvar (x, var_ty env x)
  | xs -> M.Ptuple (List.map (fun x -> M.Pvar (x, var_ty env x)) xs)

let bind_all env vars =
  { env with bound = List.fold_left (fun b x -> SMap.add x () b) env.bound vars }

let tuple_of_current env vars =
  match vars with
  | [] -> E.unit_e
  | [ x ] -> current_value env x
  | xs -> E.Tuple (List.map (current_value env) xs)

(* Locals assigned (Local_set) anywhere in an L1 term: the statically
   computed modified set. *)
let scan_modified (m : M.t) : string list =
  let acc = ref [] in
  (* The exit code and return value ride in the first two components of
     every exception tuple already. *)
  let add x =
    if (not (List.mem x !acc)) && not (String.equal x Ir.exn_var || String.equal x Ir.ret_var)
    then acc := x :: !acc
  in
  let rec scan m =
    match m with
    | M.Modify sms -> List.iter (function M.Local_set (x, _) -> add x | _ -> ()) sms
    | M.Bind (a, _, b) | M.Try (a, _, b) ->
      scan a;
      scan b
    | M.Cond (_, a, b) ->
      scan a;
      scan b
    | M.While (_, _, body, _) -> scan body
    | M.Return _ | M.Gets _ | M.Guard _ | M.Fail | M.Throw _ | M.Unknown _ | M.Call _
    | M.Exec_concrete _ ->
      ()
  in
  scan m;
  canon !acc

(* The value thrown to the innermost catch: exit code, return value, then
   the catch-shape locals' current values. *)
let throw_value env =
  E.Tuple
    ([ current_value env Ir.exn_var; current_value env Ir.ret_var ]
    @ List.map (current_value env) env.catch_shape)

(* The pattern a catch handler binds, for a given shape. *)
let exn_pat env shape =
  M.Ptuple
    ([ M.Pvar (Ir.exn_var, Ir.exn_ty); M.Pvar (Ir.ret_var, env.ret_ty) ]
    @ List.map (fun x -> M.Pvar (x, var_ty env x)) shape)

(* Wrap a lifted sub-program so its value is the canonical [modified] tuple
   (locals it did not touch keep their pre-existing values). *)
let complete env (m', mine) modified =
  let env_full = bind_all env mine in
  if mine = modified then m'
  else M.Bind (m', tuple_pat env mine, M.Return (tuple_of_current env_full modified))

(* [go env m] lifts [m], returning (m', modified) where [m'] computes the
   tuple of [modified] locals in canonical order. *)
let rec go env (m : M.t) : M.t * string list =
  match m with
  | M.Return _ -> (m, [])
  | M.Gets e -> (M.Gets (resolve env e), [])
  | M.Guard (k, e) -> (M.Guard (k, resolve env e), [])
  | M.Fail -> (M.Fail, [])
  | M.Unknown t -> (M.Unknown t, [])
  | M.Throw e ->
    if not (E.equal e E.unit_e) then failwith_lift "L1 throw carries a value";
    (M.Throw (throw_value env), [])
  | M.Modify sms -> (
    let locals, others =
      List.partition (function M.Local_set _ -> true | _ -> false) sms
    in
    match (locals, others) with
    | [], others ->
      let others =
        List.map
          (function
            | M.Heap_write (c, p, v) -> M.Heap_write (c, resolve env p, resolve env v)
            | M.Typed_write (c, p, v) -> M.Typed_write (c, resolve env p, resolve env v)
            | M.Global_set (x, e) -> M.Global_set (x, resolve env e)
            | M.Retype (c, e) -> M.Retype (c, resolve env e)
            | M.Local_set _ -> assert false)
          others
      in
      (M.Modify others, [])
    | [ M.Local_set (x, e) ], [] ->
      let e = resolve env e in
      let m' = if E.reads_state e then M.Gets e else M.Return e in
      (m', [ x ])
    | _ -> failwith_lift "mixed or multiple local updates in one modify")
  | M.Bind (a, M.Pwild, b) ->
    let a', ma = go env a in
    let env_a = bind_all env ma in
    let b', mb = go env_a b in
    let env_b = bind_all env_a mb in
    let modified = canon (ma @ mb) in
    ( M.Bind
        ( a',
          tuple_pat env_a ma,
          M.Bind (b', tuple_pat env_b mb, M.Return (tuple_of_current env_b modified)) ),
      modified )
  | M.Bind (a, p, b) ->
    let a', ma = go env a in
    if ma <> [] then failwith_lift "value bind of a local-modifying program";
    let vars = M.pat_vars p in
    let env_p =
      bind_all
        { env with var_tys = List.fold_left (fun m (x, t) -> SMap.add x t m) env.var_tys vars }
        (List.map fst vars)
    in
    let b', mb = go env_p b in
    (M.Bind (a', p, b'), mb)
  | M.Cond (c, a, b) ->
    let c = resolve env c in
    let a', ma = go env a in
    let b', mb = go env b in
    let modified = canon (ma @ mb) in
    (M.Cond (c, complete env (a', ma) modified, complete env (b', mb) modified), modified)
  | M.While (M.Pwild, cond, body, init) ->
    if not (E.equal init E.unit_e) then failwith_lift "L1 loop has an iterator";
    let carried = scan_modified body in
    let env_in = bind_all env carried in
    let body', mb = go env_in body in
    let body_wrapped = complete env_in (body', mb) carried in
    (M.While (tuple_pat env_in carried, resolve env_in cond, body_wrapped, tuple_of_current env carried),
      carried )
  | M.While _ -> failwith_lift "unexpected iterator pattern at L1"
  | M.Try (a, M.Pwild, handler) ->
    let shape = scan_modified a in
    let a', ma = go { env with catch_shape = shape } a in
    (* Handler entry: exit code, return value and the shape locals are all
       pattern-bound with their values at the throw site. *)
    let henv =
      bind_all
        { env with
          var_tys =
            SMap.add Ir.ret_var env.ret_ty (SMap.add Ir.exn_var Ir.exn_ty env.var_tys) }
        (Ir.exn_var :: Ir.ret_var :: shape)
    in
    let h', mh = go henv handler in
    let modified = canon (ma @ mh @ shape) in
    ( M.Try (complete env (a', ma) modified, exn_pat henv shape, complete henv (h', mh) modified),
      modified )
  | M.Try _ -> failwith_lift "unexpected catch pattern at L1"
  | M.Call (f, args) -> (M.Call (f, List.map (resolve env) args), [])
  | M.Exec_concrete (f, args) -> (M.Exec_concrete (f, List.map (resolve env) args), [])

(* Lift a whole L1 function body (shape: TRY inner [;; guard] CATCH SKIP). *)
let lift_body lenv ~(params : (string * Ty.t) list) ~(locals : (string * Ty.t) list)
    ~(ret_ty : Ty.t) (body : M.t) : M.t =
  let var_tys =
    List.fold_left (fun m (x, t) -> SMap.add x t m) SMap.empty (params @ locals)
  in
  let var_tys = SMap.add Ir.ret_var ret_ty (SMap.add Ir.exn_var Ir.exn_ty var_tys) in
  let env =
    {
      lenv;
      var_tys;
      ret_ty;
      bound = List.fold_left (fun b (x, _) -> SMap.add x () b) SMap.empty params;
      catch_shape = [];
    }
  in
  match body with
  | M.Try (inner, M.Pwild, M.Return u) when E.equal u E.unit_e ->
    let shape = scan_modified inner in
    let inner', mi = go { env with catch_shape = shape } inner in
    let normal_result =
      if Ty.equal ret_ty Ty.Tunit then E.unit_e else default_expr env ret_ty
    in
    let henv =
      bind_all
        { env with var_tys = SMap.add Ir.ret_var ret_ty (SMap.add Ir.exn_var Ir.exn_ty var_tys) }
        (Ir.exn_var :: Ir.ret_var :: shape)
    in
    (* Normal completion: a void function's unit result (non-void functions
       cannot complete normally — the DontReach guard precedes this point).
       Abrupt completion: the transported return value. *)
    M.Try
      ( M.Bind (inner', tuple_pat (bind_all env mi) mi, M.Return normal_result),
        exn_pat henv shape,
        M.Return (E.Var (Ir.ret_var, ret_ty)) )
  | _ -> failwith_lift "unexpected L1 function shape"
