module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module M = Ac_monad.M
module Ir = Ac_simpl.Ir

(* Judgment forms of the refinement kernel.

   These mirror the paper's definitions:

   - [Corres_l1 (c, m)]      : the monadic term [m] is a sound L1 image of
                               the Simpl statement [c] (Table 1 pairing).
   - [Equiv (a, c)]          : [a] and [c] are semantically equal monadic
                               programs (the L2 rewrite steps).
   - [Abs_w_val (P,f,a,c)]   : paper Sec 3.3: under precondition [P],
                               [a] = [f c] — the value abstraction judgment.
   - [Abs_w_stmt (P,rx,ex,a,c)] : paper's abs_w_stmt refinement between a
                               word-abstracted program and its concrete
                               original.
   - [Abs_h_val (P, a, c)]   : paper Sec 4.5: P (st s) --> c s = a (st s).
   - [Abs_h_stmt (a, c)]     : paper's abs_h_stmt heap-abstraction
                               refinement (st is fixed by the program's
                               heap-type inventory).
   - [Fn_refines]            : whole-function refinement, chaining a
                               function's pipeline stages. *)

(* Value abstraction functions (the paper's rx/ex/f).  [Cunat]/[Csint] are
   the unat/sint projections at a given width; [Ctuple] abstracts
   local-variable tuples componentwise. *)
type conv =
  | Cid
  | Cunat of Ty.width
  | Csint of Ty.width
  | Ctuple of conv list

let rec conv_equal a b =
  match (a, b) with
  | Cid, Cid -> true
  | Cunat w1, Cunat w2 | Csint w1, Csint w2 -> w1 = w2
  | Ctuple xs, Ctuple ys -> List.length xs = List.length ys && List.for_all2 conv_equal xs ys
  | (Cid | Cunat _ | Csint _ | Ctuple _), _ -> false

let rec pp_conv fmt = function
  | Cid -> Format.pp_print_string fmt "id"
  | Cunat _ -> Format.pp_print_string fmt "unat"
  | Csint _ -> Format.pp_print_string fmt "sint"
  | Ctuple cs ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " × ") pp_conv)
      cs

(* The ideal type a conversion produces. *)
let rec conv_target_ty (c : conv) (src : Ty.t) : Ty.t =
  match (c, src) with
  | Cid, t -> t
  | Cunat _, _ -> Ty.Tnat
  | Csint _, _ -> Ty.Tint
  | Ctuple cs, Ty.Ttuple ts when List.length cs = List.length ts ->
    Ty.Ttuple (List.map2 conv_target_ty cs ts)
  | Ctuple _, t -> t

(* Apply a conversion to a runtime value (used by the differential tester
   to realise the judgment semantics). *)
let rec apply_conv (c : conv) (v : Ac_lang.Value.t) : Ac_lang.Value.t =
  let module Value = Ac_lang.Value in
  let module W = Ac_word in
  match (c, v) with
  | Cid, v -> v
  | Cunat _, Value.Vword (_, w) -> Value.Vnat (W.unat w)
  | Csint _, Value.Vword (_, w) -> Value.Vint (W.sint w)
  | Ctuple cs, Value.Vtuple vs when List.length cs = List.length vs ->
    Value.Vtuple (List.map2 apply_conv cs vs)
  | _ -> raise (Value.Type_mismatch "apply_conv")

(* Syntactic application of a conversion to an expression: [f c]. *)
let rec conv_expr (c : conv) (e : E.t) : E.t =
  match c with
  | Cid -> e
  | Cunat _ -> E.OfWord (Ty.Tnat, e)
  | Csint _ -> E.OfWord (Ty.Tint, e)
  | Ctuple cs -> (
    match e with
    | E.Tuple es when List.length es = List.length cs -> E.Tuple (List.map2 conv_expr cs es)
    | _ -> E.Tuple (List.mapi (fun i ci -> conv_expr ci (E.Proj (i, e))) cs))

(* Re-concretisation: the word whose abstraction is [e].  Inverse of
   [conv_expr] on in-range values (of_nat/of_int). *)
let unconv_expr (c : conv) sign (e : E.t) : E.t =
  match c with
  | Cid -> e
  | Cunat w | Csint w -> E.Cast (Ty.Tword (sign, w), e)
  | Ctuple _ -> invalid_arg "unconv_expr: tuple"

type judgment =
  | Corres_l1 of Ir.stmt * M.t
  | Equiv of M.t * M.t
  | Abs_w_val of E.t * conv * E.t * E.t (* P, f, abstract, concrete *)
  | Abs_w_stmt of E.t * conv * conv * M.t * M.t (* P, rx, ex, A, C *)
  | Abs_h_val of E.t * E.t * E.t (* P, abstract, concrete *)
  | Abs_h_stmt of M.t * M.t
  | Fn_refines of string * M.t * M.t (* function name, final abstract body, source body *)

let judgment_equal a b =
  a == b
  ||
  match (a, b) with
  | Corres_l1 (s1, m1), Corres_l1 (s2, m2) -> Ir.stmt_equal s1 s2 && M.equal m1 m2
  | Equiv (a1, c1), Equiv (a2, c2) | Abs_h_stmt (a1, c1), Abs_h_stmt (a2, c2) ->
    M.equal a1 a2 && M.equal c1 c2
  | Abs_w_val (p1, f1, a1, c1), Abs_w_val (p2, f2, a2, c2) ->
    E.equal p1 p2 && conv_equal f1 f2 && E.equal a1 a2 && E.equal c1 c2
  | Abs_w_stmt (p1, r1, e1, a1, c1), Abs_w_stmt (p2, r2, e2, a2, c2) ->
    E.equal p1 p2 && conv_equal r1 r2 && conv_equal e1 e2 && M.equal a1 a2 && M.equal c1 c2
  | Abs_h_val (p1, a1, c1), Abs_h_val (p2, a2, c2) ->
    E.equal p1 p2 && E.equal a1 a2 && E.equal c1 c2
  | Fn_refines (n1, a1, c1), Fn_refines (n2, a2, c2) ->
    String.equal n1 n2 && M.equal a1 a2 && M.equal c1 c2
  | (Corres_l1 _ | Equiv _ | Abs_w_val _ | Abs_w_stmt _ | Abs_h_val _ | Abs_h_stmt _ | Fn_refines _), _
    ->
    false

let pp_judgment fmt (j : judgment) =
  let pe = Ac_lang.Pretty.pp_expr ~ctx:0 in
  let pm = Ac_monad.Mprint.pp in
  match j with
  | Corres_l1 (_, m) -> Format.fprintf fmt "corres_l1 ⟨simpl⟩ (%a)" pm m
  | Equiv (a, c) -> Format.fprintf fmt "(%a) ≡ (%a)" pm a pm c
  | Abs_w_val (p, f, a, c) ->
    Format.fprintf fmt "abs_w_val (%a) %a (%a) (%a)" pe p pp_conv f pe a pe c
  | Abs_w_stmt (p, rx, ex, a, c) ->
    Format.fprintf fmt "abs_w_stmt (%a) %a %a (%a) (%a)" pe p pp_conv rx pp_conv ex pm a pm c
  | Abs_h_val (p, a, c) -> Format.fprintf fmt "abs_h_val (%a) (%a) (%a)" pe p pe a pe c
  | Abs_h_stmt (a, c) -> Format.fprintf fmt "abs_h_stmt (%a) (%a)" pm a pm c
  | Fn_refines (n, _, _) -> Format.fprintf fmt "fn_refines %s" n
