(** LCF-style theorems: values of type [t] can only be produced by [by],
    which validates every rule application against the kernel's rule base
    ([Rules.infer]).  The stored derivation can be independently re-checked
    with [check]. *)

type t

exception Kernel_error of string

(** The judgment this theorem establishes. *)
val concl : t -> Judgment.judgment

val rule_name : t -> string
val premises : t -> t list

(** Apply a kernel rule to premise theorems.
    @raise Kernel_error if the rule's side conditions fail. *)
val by : Rules.ctx -> Rules.rule -> t list -> t

val by_opt : Rules.ctx -> Rules.rule -> t list -> t option

(** Test-only fault injection for the robustness harness: the hook receives
    each rule name about to be applied by [by]/[by_opt] and returns [true]
    to make that application fail ([by] raises {!Kernel_error}, [by_opt]
    returns [None]).  [check] is unaffected, so theorems that were
    constructed remain independently re-validatable.  Pass [None] to
    uninstall. *)
val set_fault_hook : (string -> bool) option -> unit

(** Independently re-validate the entire stored derivation. *)
val check : Rules.ctx -> t -> (unit, string) result

(** Number of rule applications in the derivation. *)
val size : t -> int

val pp_derivation : ?depth:int -> ?max_depth:int -> Format.formatter -> t -> unit
val derivation_to_string : ?max_depth:int -> t -> string
