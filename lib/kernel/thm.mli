(** LCF-style theorems: values of type [t] can only be produced by [by],
    which validates every rule application against the kernel's rule base
    ([Rules.infer]).  The stored derivation can be independently re-checked
    with [check]. *)

type t

exception Kernel_error of string

(** The judgment this theorem establishes. *)
val concl : t -> Judgment.judgment

val rule_name : t -> string
val premises : t -> t list

(** The kernel rule that concluded this theorem.  Exposed so external
    (untrusted) audit tooling — e.g. the memoized derivation checker in
    [Ac_core.Check_cache] — can re-run [Rules.infer] itself; exposing the
    rule reveals nothing the derivation printer does not already show, and
    grants no way to construct a theorem. *)
val rule : t -> Rules.rule

(** A unique id per theorem node (process-wide), usable as an O(1) hash
    key by external tooling.  Carries no logical content. *)
val id : t -> int

(** Scratch stamp for external audit tooling: the memoized checker in
    [Ac_core.Check_cache] stamps nodes it has verified with its own
    generation number, making the re-walk of a shared sub-derivation a
    single integer compare.  The mark carries no logical content and the
    kernel never reads it — a forged mark can only fool the (untrusted)
    cache, never {!check}.  Fresh nodes start at mark 0. *)
val mark : t -> int

val set_mark : t -> int -> unit

(** Apply a kernel rule to premise theorems.
    @raise Kernel_error if the rule's side conditions fail. *)
val by : Rules.ctx -> Rules.rule -> t list -> t

val by_opt : Rules.ctx -> Rules.rule -> t list -> t option

(** Test-only fault injection for the robustness harness: the hook receives
    each rule name about to be applied by [by]/[by_opt] and returns [true]
    to make that application fail ([by] raises {!Kernel_error}, [by_opt]
    returns [None]).  [check] is unaffected, so theorems that were
    constructed remain independently re-validatable.  Pass [None] to
    uninstall. *)
val set_fault_hook : (string -> bool) option -> unit

(** Test-only: build a theorem node WITHOUT running the kernel's inference.
    This deliberately violates the LCF discipline so the test suite can
    hand both [check] and the external cached checker a corrupted
    derivation and assert that both reject it.  Never call this outside
    tests — a forged theorem proves nothing. *)
val forge_for_tests : Judgment.judgment -> Rules.rule -> t list -> t

(** Independently re-validate the entire stored derivation. *)
val check : Rules.ctx -> t -> (unit, string) result

(** Number of rule applications in the derivation. *)
val size : t -> int

val pp_derivation : ?depth:int -> ?max_depth:int -> Format.formatter -> t -> unit
val derivation_to_string : ?max_depth:int -> t -> string
