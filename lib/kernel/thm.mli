(** LCF-style theorems: values of type [t] can only be produced by [by],
    which validates every rule application against the kernel's rule base
    ([Rules.infer]).  The stored derivation can be independently re-checked
    with [check]. *)

type t

exception Kernel_error of string

(** The judgment this theorem establishes. *)
val concl : t -> Judgment.judgment

val rule_name : t -> string
val premises : t -> t list

(** The kernel rule that concluded this theorem.  Exposed so external
    (untrusted) audit tooling — e.g. the memoized derivation checker in
    [Ac_core.Check_cache] — can re-run [Rules.infer] itself; exposing the
    rule reveals nothing the derivation printer does not already show, and
    grants no way to construct a theorem. *)
val rule : t -> Rules.rule

(** A unique id per theorem node (process-wide), usable as an O(1) hash
    key by external tooling — the memoized checker in
    [Ac_core.Check_cache] keys its per-run memo table on it.  Carries no
    logical content, and is read-only: external tooling can observe
    theorem nodes through it but cannot alter them. *)
val id : t -> int

(** Apply a kernel rule to premise theorems.
    @raise Kernel_error if the rule's side conditions fail. *)
val by : Rules.ctx -> Rules.rule -> t list -> t

val by_opt : Rules.ctx -> Rules.rule -> t list -> t option

(** Test-only fault injection for the robustness harness: the hook receives
    each rule name about to be applied by [by]/[by_opt] and returns [true]
    to make that application fail ([by] raises {!Kernel_error}, [by_opt]
    returns [None]).  [check] is unaffected, so theorems that were
    constructed remain independently re-validatable.  Pass [None] to
    uninstall. *)
val set_fault_hook : (string -> bool) option -> unit

(** Observation hook: receives the dense rule id ([Rules.rule_id]; -1
    for custom rules) and rule name of every SUCCESSFUL theorem mint
    ([by]/[by_opt]).  Write-only telemetry — the hook cannot veto, alter
    or construct a theorem, and the kernel reads nothing back, so it
    stays outside the trusted surface.  Installed from outside the
    kernel (the CLI's proof-effort accounting installs
    [Ac_obs.Effort.on_rule]); defaults to a no-op.  Pass [None] to
    uninstall. *)
val set_obs_hook : (int -> string -> unit) option -> unit

(** Independently re-validate the entire stored derivation.

    There is deliberately NO constructor that bypasses [Rules.infer] —
    not even a test-only one — so linked code cannot mint a theorem: the
    trusted surface is forgery-free by construction.  The corruption
    tests exercise the rejection paths by re-checking genuine derivations
    under a context other than the one they were built with (a theorem
    certifies its judgment only relative to its context, so a
    wrong-context derivation is exactly a corrupted certificate). *)
val check : Rules.ctx -> t -> (unit, string) result

(** Number of rule applications in the derivation. *)
val size : t -> int

(** Longest premise path in the derivation (a leaf has depth 1). *)
val depth : t -> int

val pp_derivation : ?depth:int -> ?max_depth:int -> Format.formatter -> t -> unit
val derivation_to_string : ?max_depth:int -> t -> string
