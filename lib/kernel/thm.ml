(* LCF-style theorems.

   [t] is abstract outside this module (see the interface): the only way to
   obtain one is [by], which runs the kernel's inference function.  A
   theorem therefore carries, by construction, a valid derivation of its
   conclusion from the rule base — exactly the discipline Isabelle enforces
   for the paper's abstraction proofs.  [check] independently re-walks the
   stored derivation, re-running every inference; it exists so that external
   audits do not need to trust the phase code at all. *)

type t = {
  concl : Judgment.judgment;
  rule : Rules.rule;
  prems : t list;
  id : int;
      (* Unique per node (process-wide, atomic), so external tooling — the
         memoized checker in particular — can key hash tables on theorem
         nodes in O(1) instead of hashing the judgment structurally.  The
         id carries no logical content: checking never consults it, and
         it is read-only, so nothing outside the kernel can alter a
         theorem node in any way. *)
  d_depth : int;
  d_size : int;
      (* Derivation shape, maintained incrementally at mint time (a fold
         over [prems], which the constructor is holding anyway).  The
         recursive definitions — depth = longest premise path, size =
         applications counted with multiplicity under sharing — would
         cost a full derivation walk per query, which telemetry performs
         once per function chain; these fields make that O(1).  Like
         [id], they carry no logical content and [check] never reads
         them. *)
}

exception Kernel_error of string

let next_id = Atomic.make 0

let concl t = t.concl
let rule_name t = Rules.rule_name t.rule
let rule t = t.rule
let premises t = t.prems
let id t = t.id

(* Test-only fault injection: when installed, the hook is consulted before
   every proof-constructing inference ([by]/[by_opt]) and, by answering
   [true], makes that rule application fail as if its side conditions had
   not held.  It deliberately does NOT affect [check]: theorems constructed
   before (or despite) injected faults remain re-validatable, which is
   exactly the property the robustness suite asserts.  Never installed in
   production code paths. *)
let fault_hook : (string -> bool) option ref = ref None

let set_fault_hook h = fault_hook := h

let injected rule =
  match !fault_hook with Some f -> f (Rules.rule_name rule) | None -> false

(* Observation hook: when installed, called with the dense rule id
   ([Rules.rule_id]; -1 for custom rules) and rule name of every
   SUCCESSFUL mint ([by]/[by_opt]).  Strictly write-only telemetry — the
   hook cannot veto, alter or construct a theorem, and the kernel never
   reads anything back from it, so the trusted surface is unchanged.  It
   is installed from outside (the CLI's effort accounting); the kernel
   itself depends on no observability code and defaults to a no-op.
   Cost when uninstalled: one ref read per mint. *)
let obs_hook : (int -> string -> unit) option ref = ref None

let set_obs_hook h = obs_hook := h

let observed rule =
  match !obs_hook with
  | Some f -> f (Rules.rule_id rule) (Rules.rule_name rule)
  | None -> ()

let rec shape d s = function
  | [] -> (d + 1, s + 1)
  | p :: tl -> shape (if p.d_depth > d then p.d_depth else d) (s + p.d_size) tl

let mint concl rule prems =
  let d_depth, d_size = shape 0 0 prems in
  { concl; rule; prems; id = Atomic.fetch_and_add next_id 1; d_depth; d_size }

let by (ctx : Rules.ctx) (rule : Rules.rule) (prems : t list) : t =
  if injected rule then
    raise (Kernel_error (Printf.sprintf "%s: injected fault" (Rules.rule_name rule)));
  match Rules.infer ctx rule (List.map (fun p -> p.concl) prems) with
  | Result.Ok concl ->
    observed rule;
    mint concl rule prems
  | Result.Error msg ->
    raise (Kernel_error (Printf.sprintf "%s: %s" (Rules.rule_name rule) msg))

let by_opt ctx rule prems =
  if injected rule then None
  else
    match Rules.infer ctx rule (List.map (fun p -> p.concl) prems) with
    | Result.Ok concl ->
      observed rule;
      Some (mint concl rule prems)
    | Result.Error _ -> None

(* Re-validate an entire derivation bottom-up. *)
let rec check (ctx : Rules.ctx) (t : t) : (unit, string) result =
  let rec check_all = function
    | [] -> Result.ok ()
    | p :: rest -> (
      match check ctx p with
      | Result.Ok () -> check_all rest
      | Result.Error _ as e -> e)
  in
  match check_all t.prems with
  | Result.Error _ as e -> e
  | Result.Ok () -> (
    match Rules.infer ctx t.rule (List.map (fun p -> p.concl) t.prems) with
    | Result.Ok concl ->
      if Judgment.judgment_equal concl t.concl then Result.ok ()
      else Result.error ("conclusion mismatch at rule " ^ Rules.rule_name t.rule)
    | Result.Error msg -> Result.error (Rules.rule_name t.rule ^ ": " ^ msg))

(* Statistics and display. *)
let size t = t.d_size
let depth t = t.d_depth

let rec pp_derivation ?(depth = 0) ?(max_depth = max_int) fmt t =
  if depth <= max_depth then begin
    Format.fprintf fmt "%s%s: %a@." (String.make (2 * depth) ' ') (rule_name t)
      Judgment.pp_judgment t.concl;
    List.iter (pp_derivation ~depth:(depth + 1) ~max_depth fmt) t.prems
  end

let derivation_to_string ?max_depth t =
  Format.asprintf "%a" (fun fmt -> pp_derivation ?max_depth fmt) t
