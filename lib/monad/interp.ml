module Ty = Ac_lang.Ty
module Value = Ac_lang.Value
module E = Ac_lang.Expr
module Layout = Ac_lang.Layout
module Heap = Ac_simpl.Heap
module State = Ac_simpl.State
module Ir = Ac_simpl.Ir
module B = Ac_bignum
module SMap = Map.Make (String)
open M

(* Executable semantics for the monadic language.

   The monad's mathematical type is state => (set of results × failed); the
   programs the pipeline produces are deterministic except for [Unknown], so
   the interpreter computes one result (plus a Failed outcome standing for
   the failure flag).  Differential testing of the refinement theorems
   (kernel judgments) runs concrete and abstract programs side by side.

   States are the same concrete states as Simpl's; the typed split heaps of
   heap-abstracted programs are *views*: [typed_read]/[is_valid] evaluate
   [heap_lift] on the byte heap, and [Typed_write] writes through it.  This
   realises the paper's abstraction function st as an evaluation-time
   projection, and makes [exec_concrete] executable without guessing a
   concrete witness. *)

type res = Rnorm of Value.t | Rexc of Value.t

type outcome =
  | Ok of res * State.t
  | Failed of string (* the monad's failure flag: guard violation or fail *)
  | Stuck of string
  | Out_of_fuel

(* The expression-evaluation view for monadic programs: both concrete and
   lifted heap operations are available. *)
let view lenv (s : State.t) : E.view =
  {
    E.read_global = State.get_global s;
    read_heap = (fun c addr -> Heap.read_obj lenv s.State.heap c addr);
    typed_read =
      (fun c addr ->
        match Heap.heap_lift lenv s.State.heap c addr with
        | Some v -> v
        | None -> Value.default lenv c);
    is_valid = (fun c addr -> Heap.lift_valid lenv s.State.heap c addr);
    lenv;
  }

let rec bind_pat (p : pat) (v : Value.t) (env : Value.t SMap.t) : Value.t SMap.t =
  match (p, v) with
  | Pwild, _ -> env
  | Pvar (x, _), v -> SMap.add x v env
  | Ptuple ps, Value.Vtuple vs when List.length ps = List.length vs ->
    List.fold_left2 (fun env p v -> bind_pat p v env) env ps vs
  | Ptuple [ p ], v -> bind_pat p v env
  | Ptuple _, _ -> E.stuck "tuple pattern mismatch against %s" (Value.to_string v)

let apply_smod lenv (s : State.t) (env : Value.t SMap.t) (sm : smod) : State.t =
  (* At L1 the evaluation environment is the locals map itself. *)
  let full_env = SMap.union (fun _ v _ -> Some v) env s.State.locals in
  let eval e = E.eval (view lenv s) full_env e in
  match sm with
  | Heap_write (c, p, v) -> (
    match eval p with
    | Value.Vptr (addr, _) -> State.with_heap s (Heap.write_obj lenv s.State.heap c addr (eval v))
    | _ -> E.stuck "heap write through non-pointer")
  | Typed_write (c, p, v) -> (
    match eval p with
    | Value.Vptr (addr, _) ->
      (* The abstract functional update s[p := v]; mirrored onto the byte
         heap, which is what st projects from. *)
      State.with_heap s (Heap.write_obj lenv s.State.heap c addr (eval v))
    | _ -> E.stuck "typed write through non-pointer")
  | Global_set (x, e) -> State.set_global s x (eval e)
  | Local_set (x, e) -> State.set_local s x (eval e)
  | Retype (c, p) -> (
    match eval p with
    | Value.Vptr (addr, _) -> State.with_heap s (Heap.retype lenv s.State.heap c addr)
    | _ -> E.stuck "retype through non-pointer")

let rec exec (prog : program) (fuel : int) (env : Value.t SMap.t) (s : State.t) (m : M.t) :
    outcome =
  if fuel <= 0 then Out_of_fuel
  else begin
    let lenv = prog.lenv in
    (* Lambda-bound variables shadow state-resident locals of the same name;
       at L1 env is empty and locals provide everything. *)
    let full_env = SMap.union (fun _ v _ -> Some v) env s.State.locals in
    let eval e = E.eval (view lenv s) full_env e in
    match m with
    | Return e -> ( try Ok (Rnorm (eval e), s) with E.Eval_stuck msg -> Stuck msg)
    | Gets e -> ( try Ok (Rnorm (eval e), s) with E.Eval_stuck msg -> Stuck msg)
    | Modify sms -> (
      try Ok (Rnorm Value.Vunit, List.fold_left (fun s sm -> apply_smod lenv s env sm) s sms)
      with E.Eval_stuck msg -> Stuck msg)
    | Guard (k, e) -> (
      match eval e with
      | Value.Vbool true -> Ok (Rnorm Value.Vunit, s)
      | Value.Vbool false -> Failed (Ir.guard_kind_name k)
      | _ -> Stuck "non-boolean guard"
      | exception E.Eval_stuck msg -> Stuck msg)
    | Fail -> Failed "fail"
    | Throw e -> ( try Ok (Rexc (eval e), s) with E.Eval_stuck msg -> Stuck msg)
    | Unknown t -> Ok (Rnorm (default_of_ty prog t), s)
    | Bind (a, p, b) -> (
      match exec prog fuel env s a with
      | Ok (Rnorm v, s') -> (
        match bind_pat p v env with
        | env' -> exec prog fuel env' s' b
        | exception E.Eval_stuck msg -> Stuck msg)
      | other -> other)
    | Try (a, p, handler) -> (
      match exec prog fuel env s a with
      | Ok (Rexc v, s') -> (
        match bind_pat p v env with
        | env' -> exec prog fuel env' s' handler
        | exception E.Eval_stuck msg -> Stuck msg)
      | other -> other)
    | Cond (c, a, b) -> (
      match eval c with
      | Value.Vbool true -> exec prog fuel env s a
      | Value.Vbool false -> exec prog fuel env s b
      | _ -> Stuck "non-boolean condition"
      | exception E.Eval_stuck msg -> Stuck msg)
    | While (p, cond, body, init) -> (
      match eval init with
      | exception E.Eval_stuck msg -> Stuck msg
      | i ->
        let rec loop fuel i s =
          if fuel <= 0 then Out_of_fuel
          else begin
            let env' = bind_pat p i env in
            let full' = SMap.union (fun _ v _ -> Some v) env' s.State.locals in
            match E.eval (view lenv s) full' cond with
            | Value.Vbool false -> Ok (Rnorm i, s)
            | Value.Vbool true -> (
              match exec prog (fuel - 1) env' s body with
              | Ok (Rnorm i', s') -> loop (fuel - 1) i' s'
              | other -> other)
            | _ -> Stuck "non-boolean loop condition"
            | exception E.Eval_stuck msg -> Stuck msg
          end
        in
        loop fuel i s)
    | Call (fname, args) | Exec_concrete (fname, args) -> (
      match find_func prog fname with
      | None -> Stuck ("call to unknown function " ^ fname)
      | Some f -> (
        match List.map eval args with
        | exception E.Eval_stuck msg -> Stuck msg
        | arg_vals -> exec_func prog (fuel - 1) s f arg_vals))
  end

and default_of_ty prog (t : Ty.t) : Value.t =
  match t with
  | Ty.Tunit -> Value.Vunit
  | Ty.Tbool -> Value.Vbool false
  | Ty.Tword (s, w) -> Value.vword s (Ac_word.zero w)
  | Ty.Tint -> Value.Vint B.zero
  | Ty.Tnat -> Value.Vnat B.zero
  | Ty.Tptr c -> Value.null c
  | Ty.Tstruct n -> Value.default prog.lenv (Ty.Cstruct n)
  | Ty.Ttuple ts -> Value.Vtuple (List.map (default_of_ty prog) ts)

(* Run a function body under its calling convention; the caller's locals are
   saved and restored around state-resident callees. *)
and exec_func prog fuel (s : State.t) (f : func) (args : Value.t list) : outcome =
  if List.length args <> List.length f.params then
    Stuck (Printf.sprintf "%s: arity mismatch" f.name)
  else begin
    match f.convention with
    | Lambda_bound -> (
      let env =
        List.fold_left2 (fun m (p, _) v -> SMap.add p v m) SMap.empty f.params args
      in
      match exec prog fuel env s f.body with
      | Ok (r, s') -> Ok (r, s')
      | other -> other)
    | Locals_in_state -> (
      (* Parameters bound, declared locals default-initialised (matching the
         Simpl semantics and the lifting phase's default substitution). *)
      let with_params =
        List.fold_left2 (fun m (p, _) v -> SMap.add p v m) SMap.empty f.params args
      in
      let callee_locals =
        List.fold_left
          (fun m (x, t) -> if SMap.mem x m then m else SMap.add x (default_of_ty prog t) m)
          with_params f.locals
      in
      let saved = s.State.locals in
      let s0 = { s with State.locals = callee_locals } in
      match exec prog fuel SMap.empty s0 f.body with
      | Ok (_, s') ->
        (* Result: the ret ghost local if the callee has one. *)
        let rv =
          match SMap.find_opt Ir.ret_var s'.State.locals with
          | Some v -> v
          | None -> Value.Vunit
        in
        Ok (Rnorm rv, { s' with State.locals = saved })
      | other -> other)
  end

(* Convenience runner mirroring Simpl's [run_func]. *)
type run_result =
  | Returns of Value.t * State.t
  | Throws of Value.t * State.t
  | Fails of string
  | Gets_stuck of string
  | Diverges

let run_func (prog : program) ~fuel (s : State.t) fname (args : Value.t list) : run_result =
  match find_func prog fname with
  | None -> Gets_stuck ("unknown function " ^ fname)
  | Some f -> (
    match exec_func prog fuel s f args with
    | Ok (Rnorm v, s') -> Returns (v, s')
    | Ok (Rexc v, s') -> Throws (v, s')
    | Failed m -> Fails m
    | Stuck m -> Gets_stuck m
    | Out_of_fuel -> Diverges)
