module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module Ir = Ac_simpl.Ir

(* The monadic intermediate language: a deep embedding of the paper's
   exception monad

     ('s, 'a, 'e) monadE = 's => (('e + 'a) × 's) set × bool

   All of L1, L2, HL and WA are programs in this language; the abstraction
   phases only change which expression constructs appear inside.  [Bind]
   binds the result of the left computation in the right one via a pattern
   (tuples arise from local-variable lifting). *)

type pat =
  | Pvar of string * Ty.t
  | Ptuple of pat list
  | Pwild

(* State updates used by [Modify]. *)
type smod =
  | Heap_write of Ty.cty * E.t * E.t (* concrete byte-heap object write *)
  | Typed_write of Ty.cty * E.t * E.t (* abstract s[p := v] *)
  | Global_set of string * E.t
  | Local_set of string * E.t (* L1 only: locals still live in the state *)
  | Retype of Ty.cty * E.t

type t =
  | Return of E.t
  | Bind of t * pat * t (* do v <- L; R od *)
  | Gets of E.t (* gets (λs. e): e reads the state *)
  | Modify of smod list (* modify (λs. ...) — simultaneous updates *)
  | Guard of Ir.guard_kind * E.t
  | Fail
  | Throw of E.t
  | Try of t * pat * t (* body <catch> (λe. handler) *)
  | Cond of E.t * t * t (* condition (λs. c) L R *)
  | While of pat * E.t * t * E.t (* whileLoop (λi s. c) (λi. B) init *)
  | Call of string * E.t list
  | Exec_concrete of string * E.t list (* run a non-lifted function (Sec 4.6) *)
  | Unknown of Ty.t (* nondeterministic value (uninitialised reads) *)

(* How a function receives its arguments and locals. *)
type convention =
  | Locals_in_state (* L1: parameters copied into state-resident locals *)
  | Lambda_bound (* L2+: parameters are lambda-bound *)

(* Which memory model the body uses (Sec 4.6: mixing levels). *)
type heap_model = Byte_level | Typed_split

type func = {
  name : string;
  params : (string * Ty.t) list;
  ret_ty : Ty.t;
  body : t;
  convention : convention;
  heap_model : heap_model;
  locals : (string * Ty.t) list; (* state-resident locals (L1 only) *)
}

type program = {
  lenv : Ac_lang.Layout.env;
  globals : (string * Ty.t) list;
  funcs : func list;
  (* Types with split heaps, fixed when any function is heap-abstracted. *)
  heap_types : Ty.cty list;
}

let find_func prog name = List.find_opt (fun f -> String.equal f.name name) prog.funcs

let replace_func prog f =
  {
    prog with
    funcs = List.map (fun g -> if String.equal g.name f.name then f else g) prog.funcs;
  }

(* ------------------------------------------------------------------ *)
(* Structure. *)

let rec pat_vars = function
  | Pvar (x, t) -> [ (x, t) ]
  | Ptuple ps -> List.concat_map pat_vars ps
  | Pwild -> []

let rec pat_ty = function
  | Pvar (_, t) -> t
  | Ptuple ps -> Ty.Ttuple (List.map pat_ty ps)
  | Pwild -> Ty.Tunit (* unknown; only used for display *)

let rec pat_expr = function
  | Pvar (x, t) -> E.Var (x, t)
  | Ptuple ps -> E.Tuple (List.map pat_expr ps)
  | Pwild -> E.unit_e

let skip = Return E.unit_e

let seq a b = Bind (a, Pwild, b)

let seq_of_list ms =
  match List.rev ms with
  | [] -> skip
  | last :: rev_init -> List.fold_left (fun acc m -> Bind (m, Pwild, acc)) last rev_init

(* Size of a monadic term (Table 5 term-size metric for AutoCorres output). *)
let rec size = function
  | Return e | Gets e | Guard (_, e) | Throw e -> 1 + E.size e
  | Fail -> 1
  | Bind (a, p, b) -> 1 + List.length (pat_vars p) + size a + size b
  | Modify ms ->
    1
    + List.fold_left
        (fun n m ->
          n
          +
          match m with
          | Heap_write (_, p, v) | Typed_write (_, p, v) -> E.size p + E.size v
          | Global_set (_, e) | Local_set (_, e) | Retype (_, e) -> E.size e)
        0 ms
  | Try (a, p, b) -> 1 + List.length (pat_vars p) + size a + size b
  | Cond (c, a, b) -> 1 + E.size c + size a + size b
  | While (p, c, body, init) -> 1 + List.length (pat_vars p) + E.size c + size body + E.size init
  | Call (_, args) | Exec_concrete (_, args) ->
    1 + List.fold_left (fun n e -> n + E.size e) 0 args
  | Unknown _ -> 1

let func_size f = size f.body

let rec map_sub f m =
  match m with
  | Return _ | Gets _ | Modify _ | Guard _ | Fail | Throw _ | Call _ | Exec_concrete _
  | Unknown _ ->
    m
  | Bind (a, p, b) -> Bind (f a, p, f b)
  | Try (a, p, b) -> Try (f a, p, f b)
  | Cond (c, a, b) -> Cond (c, f a, f b)
  | While (p, c, body, init) -> While (p, c, f body, init)

let rec iter_exprs f m =
  match m with
  | Return e | Gets e | Guard (_, e) | Throw e -> f e
  | Fail | Unknown _ -> ()
  | Modify ms ->
    List.iter
      (function
        | Heap_write (_, p, v) | Typed_write (_, p, v) ->
          f p;
          f v
        | Global_set (_, e) | Local_set (_, e) | Retype (_, e) -> f e)
      ms
  | Bind (a, _, b) | Try (a, _, b) ->
    iter_exprs f a;
    iter_exprs f b
  | Cond (c, a, b) ->
    f c;
    iter_exprs f a;
    iter_exprs f b
  | While (_, c, body, init) ->
    f c;
    iter_exprs f body;
    f init
  | Call (_, args) | Exec_concrete (_, args) -> List.iter f args

(* Structural equality (used by the proof checker), with a physical fast
   path: the rewrite engine rebuilds only the spine it changes, so shared
   children compare in O(1). *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Return x, Return y | Gets x, Gets y | Throw x, Throw y -> E.equal x y
  | Fail, Fail -> true
  | Guard (k1, x), Guard (k2, y) -> k1 = k2 && E.equal x y
  | Modify xs, Modify ys ->
    List.length xs = List.length ys && List.for_all2 smod_equal xs ys
  | Bind (a1, p1, b1), Bind (a2, p2, b2) | Try (a1, p1, b1), Try (a2, p2, b2) ->
    equal a1 a2 && pat_equal p1 p2 && equal b1 b2
  | Cond (c1, a1, b1), Cond (c2, a2, b2) -> E.equal c1 c2 && equal a1 a2 && equal b1 b2
  | While (p1, c1, b1, i1), While (p2, c2, b2, i2) ->
    pat_equal p1 p2 && E.equal c1 c2 && equal b1 b2 && E.equal i1 i2
  | Call (f1, a1), Call (f2, a2) | Exec_concrete (f1, a1), Exec_concrete (f2, a2) ->
    String.equal f1 f2 && List.length a1 = List.length a2 && List.for_all2 E.equal a1 a2
  | Unknown t1, Unknown t2 -> Ty.equal t1 t2
  | ( ( Return _ | Gets _ | Modify _ | Guard _ | Fail | Throw _ | Try _ | Cond _ | While _
      | Call _ | Exec_concrete _ | Unknown _ | Bind _ ),
      _ ) ->
    false

and pat_equal p q =
  p == q
  ||
  match (p, q) with
  | Pvar (x, t), Pvar (y, u) -> String.equal x y && Ty.equal t u
  | Ptuple ps, Ptuple qs -> List.length ps = List.length qs && List.for_all2 pat_equal ps qs
  | Pwild, Pwild -> true
  | (Pvar _ | Ptuple _ | Pwild), _ -> false

and smod_equal x y =
  x == y
  ||
  match (x, y) with
  | Heap_write (c1, p1, v1), Heap_write (c2, p2, v2)
  | Typed_write (c1, p1, v1), Typed_write (c2, p2, v2) ->
    Ty.cty_equal c1 c2 && E.equal p1 p2 && E.equal v1 v2
  | Global_set (x1, e1), Global_set (x2, e2) | Local_set (x1, e1), Local_set (x2, e2) ->
    String.equal x1 x2 && E.equal e1 e2
  | Retype (c1, e1), Retype (c2, e2) -> Ty.cty_equal c1 c2 && E.equal e1 e2
  | (Heap_write _ | Typed_write _ | Global_set _ | Local_set _ | Retype _), _ -> false

(* Substitute expressions for free variables throughout a term, respecting
   binder shadowing. *)
let rec subst (bindings : (string * E.t) list) m =
  if bindings = [] then m
  else begin
    let sub_e = E.subst bindings in
    let drop p bindings =
      let bound = List.map fst (pat_vars p) in
      List.filter (fun (x, _) -> not (List.mem x bound)) bindings
    in
    match m with
    | Return e -> Return (sub_e e)
    | Gets e -> Gets (sub_e e)
    | Throw e -> Throw (sub_e e)
    | Fail -> Fail
    | Unknown t -> Unknown t
    | Guard (k, e) -> Guard (k, sub_e e)
    | Modify ms ->
      Modify
        (List.map
           (function
             | Heap_write (c, p, v) -> Heap_write (c, sub_e p, sub_e v)
             | Typed_write (c, p, v) -> Typed_write (c, sub_e p, sub_e v)
             | Global_set (x, e) -> Global_set (x, sub_e e)
             | Local_set (x, e) -> Local_set (x, sub_e e)
             | Retype (c, e) -> Retype (c, sub_e e))
           ms)
    | Bind (a, p, b) -> Bind (subst bindings a, p, subst (drop p bindings) b)
    | Try (a, p, b) -> Try (subst bindings a, p, subst (drop p bindings) b)
    | Cond (c, a, b) -> Cond (sub_e c, subst bindings a, subst bindings b)
    | While (p, c, body, init) ->
      let inner = drop p bindings in
      While (p, E.subst inner c, subst inner body, sub_e init)
    | Call (f, args) -> Call (f, List.map sub_e args)
    | Exec_concrete (f, args) -> Exec_concrete (f, List.map sub_e args)
  end

(* Free variables of a monadic term. *)
let free_vars m =
  let module SSet = Set.Make (String) in
  let rec go bound m acc =
    let fv_e e acc =
      List.fold_left
        (fun acc v -> if SSet.mem v bound then acc else SSet.add v acc)
        acc (E.free_vars e)
    in
    match m with
    | Return e | Gets e | Guard (_, e) | Throw e -> fv_e e acc
    | Fail | Unknown _ -> acc
    | Modify ms ->
      List.fold_left
        (fun acc sm ->
          match sm with
          | Heap_write (_, p, v) | Typed_write (_, p, v) -> fv_e v (fv_e p acc)
          | Global_set (_, e) | Local_set (_, e) | Retype (_, e) -> fv_e e acc)
        acc ms
    | Bind (a, p, b) | Try (a, p, b) ->
      let acc = go bound a acc in
      let bound' = List.fold_left (fun s (x, _) -> SSet.add x s) bound (pat_vars p) in
      go bound' b acc
    | Cond (c, a, b) -> go bound b (go bound a (fv_e c acc))
    | While (p, c, body, init) ->
      let acc = fv_e init acc in
      let bound' = List.fold_left (fun s (x, _) -> SSet.add x s) bound (pat_vars p) in
      go bound' body
        (List.fold_left
           (fun acc v -> if SSet.mem v bound' then acc else SSet.add v acc)
           acc (E.free_vars c))
    | Call (_, args) | Exec_concrete (_, args) -> List.fold_left (fun acc e -> fv_e e acc) acc args
  in
  SSet.elements (go SSet.empty m SSet.empty)
