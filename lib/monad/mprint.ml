module Ty = Ac_lang.Ty
module E = Ac_lang.Expr
module P = Ac_lang.Pretty
module Ir = Ac_simpl.Ir
open Format
open M

(* Pretty printer for monadic programs in the paper's do-notation, e.g.

     do guard (λs. is_valid_w32 s a);
        t ← gets (λs. s[a]);
        modify (λs. s[a := s[b]]);
        modify (λs. s[b := t])
     od

   The rendered text drives the Table 5 "lines of spec" metric for
   AutoCorres output, so line breaking matters. *)

let rec pp_pat fmt = function
  | Pvar (x, _) -> pp_print_string fmt x
  | Pwild -> pp_print_string fmt "_"
  | Ptuple ps ->
    fprintf fmt "(%a)" (pp_print_list ~pp_sep:(fun f () -> fprintf f ", ") pp_pat) ps

let pp_smod fmt (sm : smod) =
  match sm with
  | Heap_write (c, p, v) ->
    fprintf fmt "@[<hov 2>heap_update[%a]@ %a@ %a@]" Ty.pp_cty c (P.pp_expr ~ctx:91) p
      (P.pp_expr ~ctx:91) v
  | Typed_write (_, p, v) ->
    fprintf fmt "@[<hov 2>s[%a :=@ %a]@]" (P.pp_expr ~ctx:0) p (P.pp_expr ~ctx:0) v
  | Global_set (x, e) -> fprintf fmt "@[<hov 2>%s_update@ %a@]" x (P.pp_expr ~ctx:91) e
  | Local_set (x, e) -> fprintf fmt "@[<hov 2>%s :=@ %a@]" x (P.pp_expr ~ctx:0) e
  | Retype (c, p) -> fprintf fmt "@[<hov 2>retype[%a]@ %a@]" Ty.pp_cty c (P.pp_expr ~ctx:91) p

(* Is this a multi-statement do-block? *)
let rec is_block = function
  | Bind _ -> true
  | Try _ -> false
  | _ -> false

let rec pp fmt (m : M.t) =
  match m with
  | Bind _ ->
    (* Render bind chains as a do ... od block. *)
    fprintf fmt "@[<v>do @[<v>%a@]@ od@]" pp_block m
  | other -> pp_atom fmt other

and pp_block fmt (m : M.t) =
  match m with
  | Bind (a, Pwild, b) ->
    fprintf fmt "%a;@ %a" pp_atom a pp_block b
  | Bind (a, p, b) -> fprintf fmt "@[<hov 2>%a ←@ %a@];@ %a" pp_pat p pp_atom a pp_block b
  | last -> pp_atom fmt last

and pp_atom fmt (m : M.t) =
  match m with
  | Return e -> fprintf fmt "@[<hov 2>return@ %a@]" (P.pp_expr ~ctx:91) e
  | Gets e ->
    if E.reads_state e then fprintf fmt "@[<hov 2>gets (λs.@ %a)@]" (P.pp_expr ~ctx:0) e
    else fprintf fmt "@[<hov 2>return@ %a@]" (P.pp_expr ~ctx:91) e
  | Modify [ sm ] -> fprintf fmt "@[<hov 2>modify (λs.@ %a)@]" pp_smod sm
  | Modify sms ->
    fprintf fmt "@[<hov 2>modify (λs.@ %a)@]"
      (pp_print_list ~pp_sep:(fun f () -> fprintf f ";@ ") pp_smod)
      sms
  | Guard (k, e) ->
    ignore k;
    fprintf fmt "@[<hov 2>guard (λs.@ %a)@]" (P.pp_expr ~ctx:0) e
  | Fail -> pp_print_string fmt "fail"
  | Throw e -> fprintf fmt "@[<hov 2>throw@ %a@]" (P.pp_expr ~ctx:91) e
  | Try (a, p, b) ->
    fprintf fmt "@[<v 2>try@ %a@]@ @[<v 2>catch %a ⇒@ %a@]@ end" pp a pp_pat p pp b
  | Cond (c, a, b) ->
    fprintf fmt "@[<v 2>condition (λs. %a)@ @[<v>(%a)@]@ @[<v>(%a)@]@]" (P.pp_expr ~ctx:0) c pp
      a pp b
  | While (p, c, body, init) ->
    fprintf fmt
      "@[<v 2>whileLoop (λ%a s. %a)@ @[<v 2>(λ%a.@ %a)@]@ @[<hov 2>(%a)@]@]" pp_pat p
      (P.pp_expr ~ctx:0) c pp_pat p pp body (P.pp_expr ~ctx:0) init
  | Call (f, args) ->
    fprintf fmt "@[<hov 2>%s'@ %a@]" f
      (pp_print_list ~pp_sep:(fun f () -> fprintf f "@ ") (P.pp_expr ~ctx:91))
      args
  | Exec_concrete (f, args) ->
    fprintf fmt "@[<hov 2>exec_concrete (%s'@ %a)@]" f
      (pp_print_list ~pp_sep:(fun f () -> fprintf f "@ ") (P.pp_expr ~ctx:91))
      args
  | Unknown t -> fprintf fmt "(select UNIV :: %a)" Ty.pp t
  | Bind _ -> pp fmt m

let pp_func fmt (f : func) =
  let params = String.concat " " (List.map fst f.params) in
  let sep = if params = "" then "" else " " in
  fprintf fmt "@[<v 2>%s'%s%s ≡@ %a@]" f.name sep params pp f.body

let func_to_string f = asprintf "%a@." pp_func f
let to_string m = asprintf "@[<v>%a@]@." pp m

(* Table 5's "lines of spec" metric for AutoCorres output. *)
let lines_of_spec (f : func) =
  let s = func_to_string f in
  List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s))
